#pragma once

// Running statistics and histograms used by telemetry and benches.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace psanim {

/// Welford-style online mean/variance with min/max tracking.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& o);
  void reset() { *this = RunningStats{}; }

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance (n in the denominator); 0 for fewer than 2 samples.
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0; }
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-range linear histogram. Out-of-range samples clamp to the edge
/// bins so counts are never lost.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const { return bin_lo(i + 1); }

  /// Render as a compact ASCII bar chart (one line per bin).
  std::string ascii(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Imbalance of a load vector: max(load) / mean(load). 1.0 is perfectly
/// balanced; the paper's dynamic balancer tries to drive this toward 1.
double load_imbalance(const std::vector<double>& loads);

/// Relative difference |a-b| / max(a,b); 0 when both are 0.
double rel_diff(double a, double b);

}  // namespace psanim

#include "math/rng.hpp"

#include <cmath>

namespace psanim {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9e3779b97f4a7c15ULL;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t n) {
  if (n == 0) return 0;
  // 128-bit multiply-shift; bias is O(n / 2^64).
  const unsigned __int128 m =
      static_cast<unsigned __int128>(next_u64()) * n;
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

float Rng::next_float() {
  return static_cast<float>(next_u64() >> 40) * 0x1.0p-24f;
}

float Rng::uniform(float lo, float hi) { return lo + (hi - lo) * next_float(); }

float Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  // Box-Muller. Avoid log(0) by nudging u1 away from zero.
  float u1 = next_float();
  if (u1 < 1e-12f) u1 = 1e-12f;
  const float u2 = next_float();
  const float r = std::sqrt(-2.0f * std::log(u1));
  const float theta = 6.28318530717958647692f * u2;
  spare_ = r * std::sin(theta);
  has_spare_ = true;
  return r * std::cos(theta);
}

Vec3 Rng::in_unit_ball() {
  // Rejection sampling: expected < 2 iterations.
  for (;;) {
    Vec3 p{uniform(-1, 1), uniform(-1, 1), uniform(-1, 1)};
    if (p.length2() <= 1.0f) return p;
  }
}

Vec3 Rng::on_unit_sphere() {
  // Marsaglia (1972).
  for (;;) {
    const float a = uniform(-1, 1);
    const float b = uniform(-1, 1);
    const float s = a * a + b * b;
    if (s >= 1.0f) continue;
    const float t = 2.0f * std::sqrt(1.0f - s);
    return {a * t, b * t, 1.0f - 2.0f * s};
  }
}

Vec3 Rng::in_box(Vec3 lo, Vec3 hi) {
  return {uniform(lo.x, hi.x), uniform(lo.y, hi.y), uniform(lo.z, hi.z)};
}

Vec3 Rng::in_disc(float radius, Vec3 normal) {
  const Vec3 n = normal.normalized();
  // Build an orthonormal basis {u, v} for the plane.
  const Vec3 helper = std::fabs(n.x) < 0.9f ? Vec3{1, 0, 0} : Vec3{0, 1, 0};
  const Vec3 u = n.cross(helper).normalized();
  const Vec3 v = n.cross(u);
  for (;;) {
    const float a = uniform(-1, 1);
    const float b = uniform(-1, 1);
    if (a * a + b * b > 1.0f) continue;
    return u * (a * radius) + v * (b * radius);
  }
}

}  // namespace psanim

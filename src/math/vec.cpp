#include "math/vec.hpp"

#include <ostream>

namespace psanim {

std::ostream& operator<<(std::ostream& os, Vec2 v) {
  return os << "(" << v.x << ", " << v.y << ")";
}

std::ostream& operator<<(std::ostream& os, Vec3 v) {
  return os << "(" << v.x << ", " << v.y << ", " << v.z << ")";
}

}  // namespace psanim

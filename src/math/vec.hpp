#pragma once

// Small fixed-size vector types used throughout psanim.
//
// Particle state is stored in single precision (`float`): the paper's
// workloads move millions of particles per frame and wire size matters for
// the network model, so we match the precision a 2005-era animation library
// would use. Virtual time and accumulated statistics use `double`.

#include <cmath>
#include <cstddef>
#include <iosfwd>

namespace psanim {

/// 2-component float vector (image-plane coordinates, 2-D scenes).
struct Vec2 {
  float x = 0.0f;
  float y = 0.0f;

  constexpr Vec2() = default;
  constexpr Vec2(float x_, float y_) : x(x_), y(y_) {}

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(float s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(float s) const { return {x / s, y / s}; }
  constexpr Vec2& operator+=(Vec2 o) { x += o.x; y += o.y; return *this; }
  constexpr Vec2& operator-=(Vec2 o) { x -= o.x; y -= o.y; return *this; }
  constexpr Vec2& operator*=(float s) { x *= s; y *= s; return *this; }
  constexpr bool operator==(const Vec2&) const = default;

  constexpr float dot(Vec2 o) const { return x * o.x + y * o.y; }
  constexpr float length2() const { return dot(*this); }
  float length() const { return std::sqrt(length2()); }
};

/// 3-component float vector: particle positions, velocities, orientations.
struct Vec3 {
  float x = 0.0f;
  float y = 0.0f;
  float z = 0.0f;

  constexpr Vec3() = default;
  constexpr Vec3(float x_, float y_, float z_) : x(x_), y(y_), z(z_) {}

  constexpr Vec3 operator+(Vec3 o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(Vec3 o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }
  constexpr Vec3 operator*(float s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(float s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3& operator+=(Vec3 o) { x += o.x; y += o.y; z += o.z; return *this; }
  constexpr Vec3& operator-=(Vec3 o) { x -= o.x; y -= o.y; z -= o.z; return *this; }
  constexpr Vec3& operator*=(float s) { x *= s; y *= s; z *= s; return *this; }
  constexpr Vec3& operator/=(float s) { x /= s; y /= s; z /= s; return *this; }
  constexpr bool operator==(const Vec3&) const = default;

  constexpr float dot(Vec3 o) const { return x * o.x + y * o.y + z * o.z; }
  constexpr Vec3 cross(Vec3 o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  constexpr float length2() const { return dot(*this); }
  float length() const { return std::sqrt(length2()); }

  /// Unit vector in the same direction; returns +X for a zero vector so
  /// orientation fields stay well defined.
  Vec3 normalized() const {
    const float l2 = length2();
    if (l2 <= 0.0f) return {1.0f, 0.0f, 0.0f};
    return *this / std::sqrt(l2);
  }

  /// Component along axis index (0 = x, 1 = y, 2 = z).
  constexpr float axis(int a) const { return a == 0 ? x : (a == 1 ? y : z); }
  constexpr float& axis_ref(int a) { return a == 0 ? x : (a == 1 ? y : z); }
};

constexpr Vec3 operator*(float s, Vec3 v) { return v * s; }
constexpr Vec2 operator*(float s, Vec2 v) { return v * s; }

/// Linear interpolation between two vectors; t in [0, 1].
constexpr Vec3 lerp(Vec3 a, Vec3 b, float t) { return a + (b - a) * t; }

std::ostream& operator<<(std::ostream& os, Vec2 v);
std::ostream& operator<<(std::ostream& os, Vec3 v);

}  // namespace psanim

#include "math/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace psanim {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(o.n_);
  const double delta = o.mean_ - mean_;
  const double n = na + nb;
  m2_ += o.m2_ + delta * delta * na * nb / n;
  mean_ = (na * mean_ + nb * o.mean_) / n;
  n_ += o.n_;
  sum_ += o.sum_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins == 0 ? 1 : bins, 0) {}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto i = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  i = std::clamp<std::ptrdiff_t>(i, 0,
                                 static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(i)];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

std::string Histogram::ascii(std::size_t width) const {
  const std::size_t peak = *std::max_element(counts_.begin(), counts_.end());
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::size_t bar =
        peak ? counts_[i] * width / peak : 0;
    os << "[" << bin_lo(i) << ", " << bin_hi(i) << ") "
       << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  return os.str();
}

double load_imbalance(const std::vector<double>& loads) {
  if (loads.empty()) return 1.0;
  const double total = std::accumulate(loads.begin(), loads.end(), 0.0);
  if (total <= 0.0) return 1.0;
  const double mean = total / static_cast<double>(loads.size());
  const double peak = *std::max_element(loads.begin(), loads.end());
  return peak / mean;
}

double rel_diff(double a, double b) {
  const double m = std::max(std::fabs(a), std::fabs(b));
  if (m == 0.0) return 0.0;
  return std::fabs(a - b) / m;
}

}  // namespace psanim

#pragma once

// Deterministic random number generation.
//
// psanim never uses std::random_device or global generators: every random
// stream is derived from an explicit (seed, stream-key) pair so that a
// simulation is bit-reproducible regardless of how many calculator
// processes it runs on. The manager derives one stream per
// (system, frame) for particle creation, and calculators derive streams
// per (system, frame, sub-key) for per-particle noise.

#include <cstdint>

#include "math/vec.hpp"

namespace psanim {

/// SplitMix64: used to expand seeds into xoshiro state and as a cheap
/// standalone mixer for key-derived streams.
inline constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Mix an arbitrary number of 64-bit keys into one seed. Order-sensitive.
constexpr std::uint64_t mix_keys(std::uint64_t a) {
  std::uint64_t s = a;
  return splitmix64(s);
}
constexpr std::uint64_t mix_keys(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a ^ (0x9e3779b97f4a7c15ULL + (b << 6) + (b >> 2));
  std::uint64_t m = splitmix64(s);
  s ^= b + 0x632be59bd9b4e019ULL;
  return m ^ splitmix64(s);
}
constexpr std::uint64_t mix_keys(std::uint64_t a, std::uint64_t b,
                                 std::uint64_t c) {
  return mix_keys(mix_keys(a, b), c);
}
constexpr std::uint64_t mix_keys(std::uint64_t a, std::uint64_t b,
                                 std::uint64_t c, std::uint64_t d) {
  return mix_keys(mix_keys(a, b, c), d);
}

/// xoshiro256** generator. Fast, 2^256-1 period, suitable for simulation
/// noise (not cryptography).
class Rng {
 public:
  /// Seeds the state by running splitmix64 over `seed`.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL);

  /// Derive an independent stream from this generator's seed and a key.
  /// Deterministic: the same (seed, key) always yields the same stream.
  Rng derive(std::uint64_t key) const { return Rng(mix_keys(seed_, key)); }
  Rng derive(std::uint64_t k1, std::uint64_t k2) const {
    return Rng(mix_keys(seed_, k1, k2));
  }
  Rng derive(std::uint64_t k1, std::uint64_t k2, std::uint64_t k3) const {
    return Rng(mix_keys(seed_, k1, k2, k3));
  }

  std::uint64_t seed() const { return seed_; }

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, n). Uses Lemire's multiply-shift reduction (slightly
  /// biased for astronomically large n; fine for simulation use).
  std::uint64_t next_below(std::uint64_t n);

  /// Uniform in [0, 1).
  double next_double();
  /// Uniform float in [0, 1).
  float next_float();
  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi);
  /// Standard normal via Box-Muller (one value per call; caches spare).
  float normal();
  /// Normal with given mean and standard deviation.
  float normal(float mean, float stddev) { return mean + stddev * normal(); }

  /// Uniform point inside the unit ball.
  Vec3 in_unit_ball();
  /// Uniform point on the unit sphere surface.
  Vec3 on_unit_sphere();
  /// Uniform point inside an axis-aligned box [lo, hi].
  Vec3 in_box(Vec3 lo, Vec3 hi);
  /// Uniform point inside the disc of given radius in the plane orthogonal
  /// to `normal` centered at origin.
  Vec3 in_disc(float radius, Vec3 normal);

  /// True with probability p.
  bool bernoulli(double p) { return next_double() < p; }

 private:
  std::uint64_t s_[4];
  std::uint64_t seed_;
  bool has_spare_ = false;
  float spare_ = 0.0f;
};

}  // namespace psanim

#pragma once

// Axis-aligned bounding box used for source domains, finite simulation
// spaces and collision objects.

#include <algorithm>
#include <limits>

#include "math/vec.hpp"

namespace psanim {

/// Axis-aligned box `[lo, hi]` in 3-space. An "infinite" box (the paper's
/// IS mode) is represented by +/- kHuge extents along the split axis.
struct Aabb {
  Vec3 lo{0, 0, 0};
  Vec3 hi{0, 0, 0};

  /// Finite stand-in for an unbounded coordinate. Large enough that no
  /// particle ever reaches it, small enough that float arithmetic on
  /// domain boundaries stays exact.
  static constexpr float kHuge = 1.0e6f;

  constexpr Aabb() = default;
  constexpr Aabb(Vec3 lo_, Vec3 hi_) : lo(lo_), hi(hi_) {}

  /// Box spanning kHuge in every direction (infinite simulated space).
  static constexpr Aabb infinite() {
    return {{-kHuge, -kHuge, -kHuge}, {kHuge, kHuge, kHuge}};
  }

  /// Empty box suitable as identity for `extend`.
  static constexpr Aabb empty() {
    constexpr float inf = std::numeric_limits<float>::infinity();
    return {{inf, inf, inf}, {-inf, -inf, -inf}};
  }

  constexpr bool operator==(const Aabb&) const = default;

  constexpr bool valid() const {
    return lo.x <= hi.x && lo.y <= hi.y && lo.z <= hi.z;
  }

  constexpr bool contains(Vec3 p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y &&
           p.z >= lo.z && p.z <= hi.z;
  }

  constexpr Vec3 size() const { return hi - lo; }
  constexpr Vec3 center() const { return (lo + hi) * 0.5f; }

  /// Grow to include point p.
  void extend(Vec3 p) {
    lo = {std::min(lo.x, p.x), std::min(lo.y, p.y), std::min(lo.z, p.z)};
    hi = {std::max(hi.x, p.x), std::max(hi.y, p.y), std::max(hi.z, p.z)};
  }

  /// Nearest point inside the box.
  constexpr Vec3 clamp(Vec3 p) const {
    return {std::clamp(p.x, lo.x, hi.x), std::clamp(p.y, lo.y, hi.y),
            std::clamp(p.z, lo.z, hi.z)};
  }

  /// Extent along axis index (0 = x, 1 = y, 2 = z).
  constexpr float extent(int axis) const {
    return hi.axis(axis) - lo.axis(axis);
  }
};

}  // namespace psanim

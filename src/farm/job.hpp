#pragma once

// psanim::farm job model: what a tenant submits (JobSpec), which slice of
// the shared cluster the scheduler granted it (Assignment), and what came
// back (JobResult).
//
// A job is one complete animation — scene + settings — that runs as its
// own mp runtime over a subset of the shared cluster's CPU slots. The
// assignment is self-contained: re-running `run_parallel` with the
// assignment's sub_spec/placement outside the farm reproduces the job's
// simulation bit-for-bit (the farm never perturbs a job's inputs, only
// stretches its *farm-level* completion time when neighbors contend).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster_spec.hpp"
#include "cluster/placement.hpp"
#include "core/simulation.hpp"
#include "core/wire.hpp"

namespace psanim::farm {

/// Queue disciplines. kFifo/kSjf are work-conserving with backfill: the
/// queue is scanned in policy order and every job that fits the free slots
/// starts, so capacity never idles while a runnable job waits.
/// kPriority/kFairShare are *preemptive* (when FarmOptions::preempt_interval
/// is positive): the head of the policy order reserves capacity strictly —
/// no backfill past a blocked head — and may evict running jobs by
/// checkpointing them into their vault (see the Farm header).
enum class Policy {
  kFifo,       ///< submission order (arrival time, then submission sequence)
  kSjf,        ///< shortest-virtual-job-first by estimated virtual cost
  kPriority,   ///< JobSpec::priority desc, then arrival; preempts lower
  kFairShare,  ///< least-served tenant first (per-tenant busy_rank_s)
};

std::string to_string(Policy p);

/// How the preemptive driver ranks eligible running jobs for eviction.
enum class VictimSelection {
  /// PR-9 behavior: lowest priority / most over-served tenant first, then
  /// the youngest segment (least sunk work re-queued).
  kLeastDeserving,
  /// Cheapest eviction first: the victim with the least work left to
  /// drain to its nearest upcoming checkpoint frame (farm-seconds lost to
  /// the drain), with deterministic (cost, deserve, seq) tie-breaks.
  kCostAware,
};

std::string to_string(VictimSelection v);

enum class JobState {
  kQueued,      ///< admitted, waiting for slots
  kRunning,     ///< occupying slots on the shared cluster
  kPreempting,  ///< marked for eviction; draining to its vacate checkpoint
  kSuspended,   ///< checkpointed out; waiting to be restored
  kDone,        ///< finished; JobResult::result is valid
  kFailed,      ///< run_parallel threw; JobResult::error holds the message
  kCancelled,   ///< cancelled while still queued
};

std::string to_string(JobState s);

/// One tenant's request: run `settings.frames` frames of `scene` with
/// `settings.ncalc` calculator ranks (plus manager and image generator).
struct JobSpec {
  std::string name;
  core::Scene scene;
  core::SimSettings settings;
  /// Virtual arrival time at the farm; jobs are invisible to the
  /// scheduler before this. When `after_seq` >= 0 this is instead a
  /// *think delay*: the job arrives that many virtual seconds after its
  /// predecessor reaches a terminal state (closed-loop arrivals).
  double submit_time_s = 0.0;
  /// SJF ranking key; <= 0 derives a default from frames x systems.
  double sjf_cost_hint = 0.0;
  /// Multi-tenancy: which tenant owns this job. kFairShare balances
  /// busy_rank_s across tenants; empty string is a tenant like any other.
  std::string tenant;
  /// kPriority ranking: higher runs first and may preempt lower. Ties
  /// break on arrival time, then submission sequence.
  int priority = 0;
  /// Closed-loop chaining: when >= 0, this job arrives only after the
  /// job with that submission sequence terminates (submit_time_s then
  /// acts as the think delay). Must reference an earlier submission.
  int after_seq = -1;

  int world_size() const { return core::world_size_for(settings.ncalc); }
};

/// Deterministic SJF ranking key: the hint when given, else a shape proxy
/// (frames x systems). Only the *ordering* matters — ties break on
/// submission sequence.
double estimate_virtual_cost(const JobSpec& spec);

/// The slots a job was granted: `shared_nodes[i]` is the shared-spec index
/// of sub_spec node i, `ranks_per_node[i]` how many of the job's ranks run
/// there. `placement` maps the job's world (manager, image generator,
/// calculators) onto sub_spec nodes.
struct Assignment {
  std::vector<int> shared_nodes;
  std::vector<int> ranks_per_node;
  cluster::ClusterSpec sub_spec;
  cluster::Placement placement;

  int world_size() const { return placement.world_size(); }
};

/// Grant `world` CPU slots out of `free_slots` (per shared node), packing
/// the fastest free nodes first (rate desc, index asc — deterministic).
/// Ranks fill a node's granted slots before spilling to the next node;
/// rank 0 (manager) lands on the fastest granted node, rank 1 (image
/// generator) next to it. Throws std::invalid_argument if the free slots
/// cannot hold `world` ranks.
Assignment assign_slots(const cluster::ClusterSpec& shared,
                        const std::vector<int>& free_slots, int world);

/// Re-grant a suspended job's original assignment onto whatever free slots
/// exist now: every original position needs one free node of the *same
/// type* (name, cpus, rate, ram) with enough free slots, found best-fit
/// (fewest free slots, then lowest index; positions matched largest rank
/// count first). The returned assignment reuses the original's
/// sub_spec/ranks_per_node/placement verbatim — only shared_nodes may
/// differ — so rank rates, splits and every other simulation input are
/// identical and the resumed run is bit-exact even across a node
/// migration. Returns nullopt when the free slots cannot host it yet.
std::optional<Assignment> match_assignment(const cluster::ClusterSpec& shared,
                                           const std::vector<int>& free_slots,
                                           const Assignment& original);

/// Everything known about a job after the farm ran it.
struct JobResult {
  JobState state = JobState::kQueued;
  /// Farm virtual times. start - submit is queueing delay; finish - start
  /// is the contention-stretched service time.
  double start_s = 0.0;
  double finish_s = 0.0;
  /// The job's own virtual makespan (== result.animation_s), bit-identical
  /// to a standalone run on assignment.sub_spec/placement.
  double standalone_makespan_s = 0.0;
  /// (finish - start) / standalone makespan: exactly 1.0 on an idle farm,
  /// > 1 when SMP-sharing neighbors slowed this job down.
  double stretch = 1.0;
  Assignment assignment;
  core::ParallelResult result;
  std::uint64_t fb_hash = 0;  ///< render::hash_framebuffer(result.final_frame)
  std::string error;          ///< non-empty iff state == kFailed
  /// How many times the farm checkpointed this job out of its slots.
  int preemptions = 0;
  /// True when any restore landed on a different shared-node set than the
  /// segment it resumed (the vault's cross-node bit-exactness in action).
  bool migrated = false;
  /// The checkpoint frame of each preemption, in order.
  std::vector<std::uint32_t> preempt_frames;
  /// True when the job started past a blocked higher-ranked job under EASY
  /// backfill (it provably could not delay that job's reservation).
  bool backfilled = false;
  /// The reservation pinned the first time this job blocked at the head of
  /// the policy order (farm virtual time it was promised to start by);
  /// -1 when the job never blocked. Backfill never moves a start past it.
  double reserved_at_s = -1.0;
};

}  // namespace psanim::farm

#pragma once

// psanim::farm job model: what a tenant submits (JobSpec), which slice of
// the shared cluster the scheduler granted it (Assignment), and what came
// back (JobResult).
//
// A job is one complete animation — scene + settings — that runs as its
// own mp runtime over a subset of the shared cluster's CPU slots. The
// assignment is self-contained: re-running `run_parallel` with the
// assignment's sub_spec/placement outside the farm reproduces the job's
// simulation bit-for-bit (the farm never perturbs a job's inputs, only
// stretches its *farm-level* completion time when neighbors contend).

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster_spec.hpp"
#include "cluster/placement.hpp"
#include "core/simulation.hpp"
#include "core/wire.hpp"

namespace psanim::farm {

/// Queue disciplines. Both are work-conserving with backfill: the queue is
/// scanned in policy order and every job that fits the free slots starts,
/// so capacity never idles while a runnable job waits.
enum class Policy {
  kFifo,  ///< submission order (arrival time, then submission sequence)
  kSjf,   ///< shortest-virtual-job-first by estimated virtual cost
};

std::string to_string(Policy p);

enum class JobState {
  kQueued,     ///< admitted, waiting for slots
  kRunning,    ///< occupying slots on the shared cluster
  kDone,       ///< finished; JobResult::result is valid
  kFailed,     ///< run_parallel threw; JobResult::error holds the message
  kCancelled,  ///< cancelled while still queued
};

std::string to_string(JobState s);

/// One tenant's request: run `settings.frames` frames of `scene` with
/// `settings.ncalc` calculator ranks (plus manager and image generator).
struct JobSpec {
  std::string name;
  core::Scene scene;
  core::SimSettings settings;
  /// Virtual arrival time at the farm; jobs are invisible to the
  /// scheduler before this.
  double submit_time_s = 0.0;
  /// SJF ranking key; <= 0 derives a default from frames x systems.
  double sjf_cost_hint = 0.0;

  int world_size() const { return core::world_size_for(settings.ncalc); }
};

/// Deterministic SJF ranking key: the hint when given, else a shape proxy
/// (frames x systems). Only the *ordering* matters — ties break on
/// submission sequence.
double estimate_virtual_cost(const JobSpec& spec);

/// The slots a job was granted: `shared_nodes[i]` is the shared-spec index
/// of sub_spec node i, `ranks_per_node[i]` how many of the job's ranks run
/// there. `placement` maps the job's world (manager, image generator,
/// calculators) onto sub_spec nodes.
struct Assignment {
  std::vector<int> shared_nodes;
  std::vector<int> ranks_per_node;
  cluster::ClusterSpec sub_spec;
  cluster::Placement placement;

  int world_size() const { return placement.world_size(); }
};

/// Grant `world` CPU slots out of `free_slots` (per shared node), packing
/// the fastest free nodes first (rate desc, index asc — deterministic).
/// Ranks fill a node's granted slots before spilling to the next node;
/// rank 0 (manager) lands on the fastest granted node, rank 1 (image
/// generator) next to it. Throws std::invalid_argument if the free slots
/// cannot hold `world` ranks.
Assignment assign_slots(const cluster::ClusterSpec& shared,
                        const std::vector<int>& free_slots, int world);

/// Everything known about a job after the farm ran it.
struct JobResult {
  JobState state = JobState::kQueued;
  /// Farm virtual times. start - submit is queueing delay; finish - start
  /// is the contention-stretched service time.
  double start_s = 0.0;
  double finish_s = 0.0;
  /// The job's own virtual makespan (== result.animation_s), bit-identical
  /// to a standalone run on assignment.sub_spec/placement.
  double standalone_makespan_s = 0.0;
  /// (finish - start) / standalone makespan: exactly 1.0 on an idle farm,
  /// > 1 when SMP-sharing neighbors slowed this job down.
  double stretch = 1.0;
  Assignment assignment;
  core::ParallelResult result;
  std::uint64_t fb_hash = 0;  ///< render::hash_framebuffer(result.final_frame)
  std::string error;          ///< non-empty iff state == kFailed
};

}  // namespace psanim::farm

#include "farm/job.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace psanim::farm {

std::string to_string(Policy p) {
  switch (p) {
    case Policy::kFifo:
      return "fifo";
    case Policy::kSjf:
      return "sjf";
    case Policy::kPriority:
      return "priority";
    case Policy::kFairShare:
      return "fair-share";
  }
  return "?";
}

std::string to_string(VictimSelection v) {
  switch (v) {
    case VictimSelection::kLeastDeserving:
      return "least-deserving";
    case VictimSelection::kCostAware:
      return "cost-aware";
  }
  return "?";
}

std::string to_string(JobState s) {
  switch (s) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kPreempting:
      return "preempting";
    case JobState::kSuspended:
      return "suspended";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "?";
}

double estimate_virtual_cost(const JobSpec& spec) {
  if (spec.sjf_cost_hint > 0.0) return spec.sjf_cost_hint;
  // Shape proxy: total frame-system passes. Good enough to rank "30-frame
  // clip" under "600-frame sequence"; tenants with better knowledge pass a
  // hint (e.g. a measured makespan of a previous run of the same scene).
  return static_cast<double>(spec.settings.frames) *
         static_cast<double>(std::max<std::size_t>(spec.scene.systems.size(),
                                                   1));
}

Assignment assign_slots(const cluster::ClusterSpec& shared,
                        const std::vector<int>& free_slots, int world) {
  if (free_slots.size() != shared.node_count()) {
    throw std::invalid_argument(
        "assign_slots: free_slots must have one entry per shared node");
  }
  if (world < 1) {
    throw std::invalid_argument("assign_slots: world must be >= 1");
  }
  // Fastest-first scan order: rate desc, then index for determinism.
  std::vector<std::size_t> order(shared.node_count());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double ra = shared.node_rate(a);
    const double rb = shared.node_rate(b);
    if (ra != rb) return ra > rb;
    return a < b;
  });

  Assignment a;
  int remaining = world;
  for (const std::size_t n : order) {
    if (remaining == 0) break;
    const int take = std::min(remaining, free_slots[n]);
    if (take <= 0) continue;
    a.shared_nodes.push_back(static_cast<int>(n));
    a.ranks_per_node.push_back(take);
    a.sub_spec.nodes.push_back(shared.nodes[n]);
    remaining -= take;
  }
  if (remaining > 0) {
    throw std::invalid_argument(
        "assign_slots: not enough free CPU slots for " +
        std::to_string(world) + " ranks (short by " +
        std::to_string(remaining) + ")");
  }
  a.sub_spec.preferred = shared.preferred;
  a.sub_spec.compiler = shared.compiler;
  // Ranks fill each granted node's slots in turn: rank 0 (manager) on the
  // fastest node, the image generator right after it, calculators onward.
  for (std::size_t i = 0; i < a.ranks_per_node.size(); ++i) {
    for (int s = 0; s < a.ranks_per_node[i]; ++s) {
      a.placement.node_of_rank.push_back(static_cast<int>(i));
    }
  }
  return a;
}

namespace {

/// Same hardware as far as the rate model and memory sizing care: rank
/// rates depend on (cpu rate under the spec compiler, cpus,
/// smp_contention), so two nodes agreeing on these (and name/ram, for
/// honesty) are interchangeable hosts for a resumed rank.
bool same_node_type(const cluster::ClusterSpec& spec, std::size_t a,
                    const cluster::NodeType& want, double want_rate) {
  const cluster::NodeType& have = spec.nodes[a];
  return have.name == want.name && have.cpus == want.cpus &&
         have.ram_mb == want.ram_mb && spec.node_rate(a) == want_rate;
}

}  // namespace

std::optional<Assignment> match_assignment(const cluster::ClusterSpec& shared,
                                           const std::vector<int>& free_slots,
                                           const Assignment& original) {
  if (free_slots.size() != shared.node_count()) {
    throw std::invalid_argument(
        "match_assignment: free_slots must have one entry per shared node");
  }
  const std::size_t k = original.shared_nodes.size();
  // Largest rank counts first: they are the hardest to place, and a
  // fixed order keeps the matching deterministic.
  std::vector<std::size_t> order(k);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (original.ranks_per_node[a] != original.ranks_per_node[b]) {
      return original.ranks_per_node[a] > original.ranks_per_node[b];
    }
    return a < b;
  });

  std::vector<int> remaining = free_slots;
  std::vector<int> matched(k, -1);
  for (const std::size_t pos : order) {
    const int need = original.ranks_per_node[pos];
    const cluster::NodeType& want = original.sub_spec.nodes[pos];
    const double want_rate =
        want.cpu.rate(original.sub_spec.compiler);
    int best = -1;
    for (std::size_t n = 0; n < shared.node_count(); ++n) {
      if (remaining[n] < need) continue;
      if (!same_node_type(shared, n, want, want_rate)) continue;
      // Best fit: tightest free count keeps big nodes open for big
      // positions of *other* jobs; index breaks ties.
      if (best < 0 ||
          remaining[n] < remaining[static_cast<std::size_t>(best)]) {
        best = static_cast<int>(n);
      }
    }
    if (best < 0) return std::nullopt;
    matched[pos] = best;
    remaining[static_cast<std::size_t>(best)] -= need;
  }

  Assignment a = original;
  a.shared_nodes.assign(matched.begin(), matched.end());
  return a;
}

}  // namespace psanim::farm

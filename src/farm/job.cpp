#include "farm/job.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace psanim::farm {

std::string to_string(Policy p) {
  switch (p) {
    case Policy::kFifo:
      return "fifo";
    case Policy::kSjf:
      return "sjf";
  }
  return "?";
}

std::string to_string(JobState s) {
  switch (s) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "?";
}

double estimate_virtual_cost(const JobSpec& spec) {
  if (spec.sjf_cost_hint > 0.0) return spec.sjf_cost_hint;
  // Shape proxy: total frame-system passes. Good enough to rank "30-frame
  // clip" under "600-frame sequence"; tenants with better knowledge pass a
  // hint (e.g. a measured makespan of a previous run of the same scene).
  return static_cast<double>(spec.settings.frames) *
         static_cast<double>(std::max<std::size_t>(spec.scene.systems.size(),
                                                   1));
}

Assignment assign_slots(const cluster::ClusterSpec& shared,
                        const std::vector<int>& free_slots, int world) {
  if (free_slots.size() != shared.node_count()) {
    throw std::invalid_argument(
        "assign_slots: free_slots must have one entry per shared node");
  }
  if (world < 1) {
    throw std::invalid_argument("assign_slots: world must be >= 1");
  }
  // Fastest-first scan order: rate desc, then index for determinism.
  std::vector<std::size_t> order(shared.node_count());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double ra = shared.node_rate(a);
    const double rb = shared.node_rate(b);
    if (ra != rb) return ra > rb;
    return a < b;
  });

  Assignment a;
  int remaining = world;
  for (const std::size_t n : order) {
    if (remaining == 0) break;
    const int take = std::min(remaining, free_slots[n]);
    if (take <= 0) continue;
    a.shared_nodes.push_back(static_cast<int>(n));
    a.ranks_per_node.push_back(take);
    a.sub_spec.nodes.push_back(shared.nodes[n]);
    remaining -= take;
  }
  if (remaining > 0) {
    throw std::invalid_argument(
        "assign_slots: not enough free CPU slots for " +
        std::to_string(world) + " ranks (short by " +
        std::to_string(remaining) + ")");
  }
  a.sub_spec.preferred = shared.preferred;
  a.sub_spec.compiler = shared.compiler;
  // Ranks fill each granted node's slots in turn: rank 0 (manager) on the
  // fastest node, the image generator right after it, calculators onward.
  for (std::size_t i = 0; i < a.ranks_per_node.size(); ++i) {
    for (int s = 0; s < a.ranks_per_node[i]; ++s) {
      a.placement.node_of_rank.push_back(static_cast<int>(i));
    }
  }
  return a;
}

}  // namespace psanim::farm

#include "farm/farm.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "mp/buffer_pool.hpp"
#include "obs/trace.hpp"
#include "render/compare.hpp"

namespace psanim::farm {

namespace detail {

/// One mutex + condvar for the whole farm: handle queries are rare and
/// driver writes are batched per scheduling event, so a single lock keeps
/// the state machine trivially consistent. Held in a shared_ptr so handles
/// outlive the Farm.
struct SharedState {
  mutable std::mutex mu;
  std::condition_variable cv;
};

struct JobRecord {
  JobSpec spec;   // immutable after submit
  int seq = 0;    // submission sequence (deterministic tiebreak)
  double est = 0; // SJF ranking key
  std::shared_ptr<SharedState> ss;
  JobResult result;  // guarded by ss->mu (state field is the job state)
};

}  // namespace detail

using detail::JobRecord;

// --- JobHandle ------------------------------------------------------------

namespace {

bool terminal(JobState s) {
  return s == JobState::kDone || s == JobState::kFailed ||
         s == JobState::kCancelled;
}

/// Accessor guard: a default-constructed handle refers to no job.
JobRecord& deref(const std::shared_ptr<JobRecord>& rec) {
  if (rec == nullptr) {
    throw std::logic_error(
        "JobHandle: empty handle — only handles returned by Farm::submit "
        "refer to a job");
  }
  return *rec;
}

}  // namespace

const std::string& JobHandle::name() const { return deref(rec_).spec.name; }

JobState JobHandle::poll() const {
  auto& rec = deref(rec_);
  const std::scoped_lock lock(rec.ss->mu);
  return rec.result.state;
}

const JobResult& JobHandle::await() const {
  auto& rec = deref(rec_);
  std::unique_lock lock(rec.ss->mu);
  rec.ss->cv.wait(lock, [&] { return terminal(rec.result.state); });
  return rec.result;
}

bool JobHandle::cancel() {
  auto& rec = deref(rec_);
  const std::scoped_lock lock(rec.ss->mu);
  if (rec.result.state != JobState::kQueued) return false;
  rec.result.state = JobState::kCancelled;
  rec.ss->cv.notify_all();
  return true;
}

// --- Farm: admission ------------------------------------------------------

Farm::Farm(cluster::ClusterSpec shared, FarmOptions options)
    : shared_(std::move(shared)), options_(std::move(options)) {
  if (shared_.node_count() == 0) {
    throw std::invalid_argument("Farm: shared cluster has no nodes");
  }
  for (const auto& n : shared_.nodes) {
    if (n.cpus < 1) {
      throw std::invalid_argument("Farm: every node needs >= 1 CPU slot");
    }
    total_slots_ += n.cpus;
  }
  ss_ = std::make_shared<detail::SharedState>();
  occupancy_.assign(shared_.node_count(), 0);
  usage_.assign(shared_.node_count(), NodeUsage{});
}

Farm::~Farm() {
  if (driver_.joinable()) {
    driver_.join();
  } else {
    // Never started: unblock any await()ers by cancelling the queue.
    const std::scoped_lock lock(ss_->mu);
    for (auto& rec : jobs_) {
      if (rec->result.state == JobState::kQueued) {
        rec->result.state = JobState::kCancelled;
      }
    }
    ss_->cv.notify_all();
  }
}

JobHandle Farm::submit(JobSpec spec) {
  const auto reject = [](const std::string& why) {
    throw std::invalid_argument("Farm::submit: " + why);
  };
  const std::scoped_lock lock(ss_->mu);
  if (started_) {
    reject("the queue is sealed — submit every job before start()");
  }
  spec.settings.validate();  // zero-frame jobs etc. fail here, with context
  if (spec.submit_time_s < 0.0) {
    reject("submit_time_s must be >= 0, got " +
           std::to_string(spec.submit_time_s));
  }
  const int world = spec.world_size();
  if (world > total_slots_) {
    reject("job needs " + std::to_string(world) + " ranks (ncalc " +
           std::to_string(spec.settings.ncalc) +
           " + manager + image generator) but the shared cluster has only " +
           std::to_string(total_slots_) +
           " CPU slots — it can never be scheduled");
  }
  // Cross-job isolation: per-job checkpoints, traces and event logs. Two
  // jobs writing one vault/trace/log would race and entangle recoveries.
  for (const auto& other : jobs_) {
    if (spec.settings.ckpt_vault != nullptr &&
        spec.settings.ckpt_vault == other->spec.settings.ckpt_vault) {
      reject("job '" + spec.name + "' shares a ckpt vault with job '" +
             other->spec.name + "' — checkpoints are per-job");
    }
    if (spec.settings.obs.trace != nullptr &&
        spec.settings.obs.trace == other->spec.settings.obs.trace) {
      reject("job '" + spec.name + "' shares an obs::Trace with job '" +
             other->spec.name + "' — traces are per-job");
    }
    if (spec.settings.events != nullptr &&
        spec.settings.events == other->spec.settings.events) {
      reject("job '" + spec.name + "' shares an EventLog with job '" +
             other->spec.name + "' — event logs are per-job");
    }
  }
  auto rec = std::make_shared<JobRecord>();
  rec->seq = static_cast<int>(jobs_.size());
  if (spec.name.empty()) spec.name = "job" + std::to_string(rec->seq);
  rec->spec = std::move(spec);
  rec->est = estimate_virtual_cost(rec->spec);
  rec->ss = ss_;
  jobs_.push_back(rec);
  return JobHandle(rec);
}

void Farm::start() {
  // lifecycle_mu_ serializes thread launch and join: without it two
  // concurrent wait()ers could both see driver_.joinable() and both
  // join() (UB), or a second start() could return before the first
  // assigned driver_.
  const std::scoped_lock lifecycle(lifecycle_mu_);
  {
    const std::scoped_lock lock(ss_->mu);
    if (started_) return;
    started_ = true;
  }
  driver_ = std::thread([this] { drive(); });
}

void Farm::wait() {
  start();
  {
    const std::scoped_lock lifecycle(lifecycle_mu_);
    if (driver_.joinable()) driver_.join();
  }
  waited_.store(true, std::memory_order_release);
}

Report Farm::run() {
  wait();
  return report_;
}

const Report& Farm::report() const {
  if (!waited_.load(std::memory_order_acquire)) {
    throw std::logic_error("Farm::report: call wait() (or run()) first");
  }
  return report_;
}

// --- Farm: the discrete-event driver --------------------------------------

struct Farm::Running {
  std::shared_ptr<JobRecord> rec;
  Assignment assignment;  // driver-owned copy (no lock needed)
  double start = 0.0;
  double duration = 0.0;  ///< standalone virtual makespan
  double progress = 0.0;  ///< standalone-equivalent seconds completed
  double stretch = 1.0;   ///< current slowdown (>= 1)
  double finish_est = 0.0;
};

namespace {

std::string sanitize_filename(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                    c == '.';
    if (!ok) c = '_';
  }
  return out.empty() ? "job" : out;
}

/// What one launched job produced (worker-thread output; the driver merges
/// it under the lock after joining).
struct LaunchOut {
  std::shared_ptr<JobRecord> rec;
  Assignment assignment;
  std::unique_ptr<obs::Trace> own_trace;  // must outlive the run
  std::string trace_path;
  std::string analysis_path;
  core::ParallelResult res;
  bool skipped = false;  ///< cancel() won the launch race; never ran
  bool ok = false;
  std::string error;
};

}  // namespace

bool Farm::launch_batch(std::vector<std::shared_ptr<JobRecord>> batch,
                        double now, std::vector<Running>& running,
                        std::vector<int>& free_slots) {
  if (batch.empty()) return false;
  bool slots_freed = false;
  std::vector<LaunchOut> outs(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    auto& out = outs[i];
    out.rec = batch[i];
    {
      // Claim the job kQueued -> kRunning atomically: a handle may have
      // cancelled it between the driver's queue sweep and here. If
      // cancel() won, honor it — skip the job, never taking its slots.
      const std::scoped_lock lock(ss_->mu);
      if (out.rec->result.state != JobState::kQueued) {
        out.skipped = true;
        slots_freed = true;  // its budgeted slots stay free: reschedule
        continue;
      }
      out.rec->result.state = JobState::kRunning;
      out.rec->result.start_s = now;
    }
    out.assignment =
        assign_slots(shared_, free_slots, out.rec->spec.world_size());
    for (std::size_t k = 0; k < out.assignment.shared_nodes.size(); ++k) {
      const auto n = static_cast<std::size_t>(out.assignment.shared_nodes[k]);
      free_slots[n] -= out.assignment.ranks_per_node[k];
      occupancy_[n] += out.assignment.ranks_per_node[k];
      usage_[n].peak_ranks = std::max(usage_[n].peak_ranks, occupancy_[n]);
    }
    if (!options_.obs_dir.empty() && !out.rec->spec.settings.obs.tracing()) {
      out.own_trace = std::make_unique<obs::Trace>();
      out.own_trace->set_rank_namespace(out.rec->spec.name);
      out.trace_path = options_.obs_dir + "/" +
                       sanitize_filename(out.rec->spec.name) + ".trace.json";
      out.analysis_path = options_.obs_dir + "/" +
                          sanitize_filename(out.rec->spec.name) +
                          ".analysis.json";
    }
    const std::scoped_lock lock(ss_->mu);
    out.rec->result.assignment = out.assignment;
  }

  // Execute the batch concurrently in wall-clock (each job is its own
  // mp::Runtime with instance-isolated mailboxes/clocks; the only shared
  // mutable substrate is the thread-safe global BufferPool). Results are
  // virtual-time quantities, so the wall-clock interleaving — and the
  // max_parallel_launches cap — cannot change them.
  const std::size_t cap =
      options_.max_parallel_launches > 0
          ? static_cast<std::size_t>(options_.max_parallel_launches)
          : batch.size();
  // Each concurrently-running job gets an even share of the machine's
  // worker-thread budget for its fiber scheduler (workers never affect
  // virtual-time results, only wall-clock drain rate).
  int per_job_workers = options_.workers_per_job;
  if (per_job_workers <= 0) {
    const auto hw = std::max(1u, std::thread::hardware_concurrency());
    const auto concurrent =
        std::max<std::size_t>(1, std::min(cap, batch.size()));
    per_job_workers =
        std::max<int>(1, static_cast<int>(hw / concurrent));
  }
  const auto run_one = [this, per_job_workers](LaunchOut& out) {
    if (out.skipped) return;
    try {
      core::SimSettings eff = out.rec->spec.settings;
      eff.obs.pool_metrics = false;  // pool is process-global; see Report
      if (out.own_trace != nullptr) {
        eff.obs.trace = out.own_trace.get();
        // Farm-provided tracing brings the in-process analysis along:
        // per-job critical-path/straggler reports land next to the trace
        // and the cp summary metrics in the job's ParallelResult.
        eff.obs.analysis_json_path = out.analysis_path;
      }
      if (eff.platform.empty()) eff.platform = options_.platform;
      mp::RuntimeOptions rt;
      rt.recv_timeout_s = options_.recv_timeout_s;
      rt.exec_mode = options_.exec_mode;
      rt.workers = per_job_workers;
      out.res = core::run_parallel(out.rec->spec.scene, eff,
                                   out.assignment.sub_spec,
                                   out.assignment.placement, options_.cost,
                                   rt);
      out.ok = true;
    } catch (const std::exception& e) {
      out.error = e.what();
    } catch (...) {
      out.error = "unknown exception";
    }
  };
  for (std::size_t base = 0; base < outs.size(); base += cap) {
    std::vector<std::thread> workers;
    const std::size_t end = std::min(outs.size(), base + cap);
    workers.reserve(end - base);
    for (std::size_t i = base; i < end; ++i) {
      workers.emplace_back([&run_one, &outs, i] { run_one(outs[i]); });
    }
    for (auto& w : workers) w.join();
  }

  for (auto& out : outs) {
    if (out.skipped) continue;
    if (out.ok && !out.trace_path.empty()) {
      out.own_trace->write_chrome_json(out.trace_path);
    }
    if (out.ok) {
      Running r;
      r.rec = out.rec;
      r.assignment = out.assignment;
      r.start = now;
      r.duration = out.res.animation_s;
      const std::scoped_lock lock(ss_->mu);
      out.rec->result.standalone_makespan_s = out.res.animation_s;
      out.rec->result.fb_hash =
          render::hash_framebuffer(out.res.final_frame);
      out.rec->result.result = std::move(out.res);
      running.push_back(std::move(r));
    } else {
      // Failed during launch: the job completes (failed) at its start
      // time and its slots free immediately — neighbors are unaffected.
      for (std::size_t k = 0; k < out.assignment.shared_nodes.size(); ++k) {
        const auto n =
            static_cast<std::size_t>(out.assignment.shared_nodes[k]);
        free_slots[n] += out.assignment.ranks_per_node[k];
        occupancy_[n] -= out.assignment.ranks_per_node[k];
      }
      slots_freed = true;
      const std::scoped_lock lock(ss_->mu);
      out.rec->result.state = JobState::kFailed;
      out.rec->result.finish_s = now;
      out.rec->result.error = std::move(out.error);
      report_.completion_order.push_back(out.rec->spec.name);
      ++report_.jobs_failed;
      ss_->cv.notify_all();
    }
  }
  return slots_freed;
}

void Farm::recompute_stretch(std::vector<Running>& running) const {
  const double smp = options_.cost.smp_contention;
  for (auto& r : running) {
    double worst = 1.0;
    for (std::size_t k = 0; k < r.assignment.shared_nodes.size(); ++k) {
      const auto n = static_cast<std::size_t>(r.assignment.shared_nodes[k]);
      const int own = r.assignment.ranks_per_node[k];
      // The in-job rate model already charges smp_contention when the job
      // itself shares the node; the farm adds the penalty only when
      // *neighbor* jobs turn an exclusive node into a shared one. Slots
      // are never oversubscribed, so bus sharing is the whole contention.
      if (own == 1 && occupancy_[n] > 1 && smp > 0.0 && smp < 1.0) {
        worst = std::max(worst, 1.0 / smp);
      }
    }
    r.stretch = worst;
  }
}

void Farm::drive() {
  const mp::BufferPool::Stats pool_before = mp::BufferPool::global().stats();

  // Submission set is sealed; specs/seq/est are immutable. Sort arrivals.
  std::vector<std::shared_ptr<JobRecord>> pending = jobs_;
  std::sort(pending.begin(), pending.end(), [](const auto& a, const auto& b) {
    if (a->spec.submit_time_s != b->spec.submit_time_s) {
      return a->spec.submit_time_s < b->spec.submit_time_s;
    }
    return a->seq < b->seq;
  });
  std::size_t next_arrival = 0;

  std::vector<std::shared_ptr<JobRecord>> queued;
  std::vector<Running> running;
  std::vector<int> free_slots(shared_.node_count());
  for (std::size_t n = 0; n < shared_.node_count(); ++n) {
    free_slots[n] = shared_.nodes[n].cpus;
  }

  double t = 0.0;
  constexpr double kInf = std::numeric_limits<double>::infinity();

  for (;;) {
    // Arrivals up to now.
    while (next_arrival < pending.size() &&
           pending[next_arrival]->spec.submit_time_s <= t) {
      queued.push_back(pending[next_arrival++]);
    }

    // Drop cancellations, then admit in policy order with backfill: one
    // ordered pass starts every job that fits the remaining free slots
    // (work conservation — capacity never idles while a runnable job
    // waits; FIFO order is (arrival, seq), SJF order (est, seq)).
    {
      const std::scoped_lock lock(ss_->mu);
      std::erase_if(queued, [](const auto& rec) {
        return rec->result.state != JobState::kQueued;
      });
    }
    std::vector<std::shared_ptr<JobRecord>> order = queued;
    if (options_.policy == Policy::kSjf) {
      std::sort(order.begin(), order.end(),
                [](const auto& a, const auto& b) {
                  if (a->est != b->est) return a->est < b->est;
                  return a->seq < b->seq;
                });
    }
    int total_free = 0;
    for (const int f : free_slots) total_free += f;
    std::vector<std::shared_ptr<JobRecord>> batch;
    for (const auto& rec : order) {
      const int world = rec->spec.world_size();
      if (world <= total_free) {
        batch.push_back(rec);
        total_free -= world;
      }
    }
    for (const auto& rec : batch) {
      queued.erase(std::find(queued.begin(), queued.end(), rec));
    }
    if (launch_batch(std::move(batch), t, running, free_slots)) {
      // A launch failed (or a cancel won the race), so slots the
      // scheduling pass budgeted are free again at this same instant.
      // Re-run the pass before picking t_next: otherwise, with nothing
      // running and nothing arriving, still-queued jobs that now fit
      // would be stranded kQueued forever (await() deadlock). Each
      // re-pass consumes queued jobs, so this terminates.
      continue;
    }

    // The scheduling pass has settled: record the queue-depth breakpoint
    // (overwriting an earlier sample at this same instant — steps within
    // one event collapse to the final depth).
    {
      const int depth = static_cast<int>(queued.size());
      auto& qd = report_.queue_depth;
      if (!qd.empty() && qd.back().first == t) {
        qd.back().second = depth;
      } else if (qd.empty() || qd.back().second != depth) {
        qd.emplace_back(t, depth);
      }
    }

    // Occupancy is now stable until the next event: refresh stretches and
    // projected finishes.
    recompute_stretch(running);
    for (auto& r : running) {
      r.finish_est = t + (r.duration - r.progress) * r.stretch;
    }

    double t_next = kInf;
    if (next_arrival < pending.size()) {
      t_next = pending[next_arrival]->spec.submit_time_s;
    }
    for (const auto& r : running) t_next = std::min(t_next, r.finish_est);
    if (t_next == kInf) break;  // nothing running, nothing arriving

    // Advance the farm clock: every running job drains standalone-
    // equivalent work at 1/stretch, every shared node clock accumulates
    // its resident ranks.
    const double dt = t_next - t;
    if (dt > 0.0) {
      for (auto& r : running) r.progress += dt / r.stretch;
      for (std::size_t n = 0; n < usage_.size(); ++n) {
        usage_[n].busy_rank_s += static_cast<double>(occupancy_[n]) * dt;
      }
    }
    t = t_next;

    // Complete every job projected to finish now (iteration order is
    // admission order — deterministic tiebreak for simultaneous
    // finishes).
    for (auto it = running.begin(); it != running.end();) {
      if (it->finish_est <= t) {
        for (std::size_t k = 0; k < it->assignment.shared_nodes.size();
             ++k) {
          const auto n =
              static_cast<std::size_t>(it->assignment.shared_nodes[k]);
          free_slots[n] += it->assignment.ranks_per_node[k];
          occupancy_[n] -= it->assignment.ranks_per_node[k];
        }
        const std::scoped_lock lock(ss_->mu);
        auto& res = it->rec->result;
        res.state = JobState::kDone;
        res.finish_s = t;
        res.stretch =
            it->duration > 0.0 ? (t - it->start) / it->duration : 1.0;
        report_.completion_order.push_back(it->rec->spec.name);
        ++report_.jobs_done;
        report_.makespan_s = std::max(report_.makespan_s, t);
        report_.total_flow_s += t - it->rec->spec.submit_time_s;
        // SLO samples (completed jobs only). Slowdown compares against
        // the job's own standalone makespan — its ideal contention-free
        // run; a zero ideal (defensive: no real job has one) records the
        // neutral 1.0 instead of dividing.
        const double submit = it->rec->spec.submit_time_s;
        const double turnaround = t - submit;
        report_.wait_q.observe(it->start - submit);
        report_.turnaround_q.observe(turnaround);
        report_.slowdown_q.observe(res.standalone_makespan_s > 0.0
                                       ? turnaround /
                                             res.standalone_makespan_s
                                       : 1.0);
        ss_->cv.notify_all();
        it = running.erase(it);
      } else {
        ++it;
      }
    }
  }

  // Anything still queued was cancelled (admission guarantees every
  // admitted job fits an empty farm, so the queue always drains). The
  // kQueued branch is a safety net: no job may stay non-terminal after
  // the driver exits, or await() would deadlock — if the invariant ever
  // breaks, fail the job loudly instead.
  {
    const std::scoped_lock lock(ss_->mu);
    for (const auto& rec : jobs_) {
      if (rec->result.state == JobState::kCancelled) {
        ++report_.jobs_cancelled;
      } else if (rec->result.state == JobState::kQueued) {
        rec->result.state = JobState::kFailed;
        rec->result.finish_s = t;
        rec->result.error =
            "farm driver exited with the job still queued (scheduler "
            "invariant violation — please report)";
        report_.completion_order.push_back(rec->spec.name);
        ++report_.jobs_failed;
      }
    }
    ss_->cv.notify_all();
  }

  report_.policy = options_.policy;
  report_.nodes = usage_;
  report_.mean_turnaround_s =
      report_.jobs_done > 0
          ? report_.total_flow_s / static_cast<double>(report_.jobs_done)
          : 0.0;

  auto& m = report_.metrics;
  m.counter("psanim_farm_jobs_submitted_total")
      .add(static_cast<double>(jobs_.size()));
  m.counter("psanim_farm_jobs_done_total")
      .add(static_cast<double>(report_.jobs_done));
  m.counter("psanim_farm_jobs_failed_total")
      .add(static_cast<double>(report_.jobs_failed));
  m.counter("psanim_farm_jobs_cancelled_total")
      .add(static_cast<double>(report_.jobs_cancelled));
  m.gauge("psanim_farm_makespan_seconds").set(report_.makespan_s);
  m.counter("psanim_farm_flow_seconds_total").add(report_.total_flow_s);
  int peak = 0;
  for (const auto& u : usage_) peak = std::max(peak, u.peak_ranks);
  m.gauge("psanim_farm_peak_node_ranks").set(static_cast<double>(peak));
  // SLO quantile series (exported as _p50/_p95/_p99 gauges + sum/count in
  // the Prometheus dump). Empty on an all-cancelled farm — quantile()
  // answers 0.0, never NaN.
  m.quantiles("psanim_farm_wait_seconds").merge(report_.wait_q);
  m.quantiles("psanim_farm_turnaround_seconds").merge(report_.turnaround_q);
  m.quantiles("psanim_farm_slowdown").merge(report_.slowdown_q);
  int depth_peak = 0;
  for (const auto& [when, depth] : report_.queue_depth) {
    depth_peak = std::max(depth_peak, depth);
  }
  m.gauge("psanim_farm_queue_depth_peak")
      .set(static_cast<double>(depth_peak));
  const mp::BufferPool::Stats pool_after = mp::BufferPool::global().stats();
  m.counter("psanim_farm_buffer_acquires_total")
      .add(static_cast<double>(pool_after.acquires - pool_before.acquires));
  m.counter("psanim_farm_buffer_pool_hits_total")
      .add(static_cast<double>(pool_after.hits - pool_before.hits));
  m.counter("psanim_farm_buffer_heap_allocs_total")
      .add(static_cast<double>(pool_after.misses - pool_before.misses));
  m.counter("psanim_farm_buffer_releases_total")
      .add(static_cast<double>(pool_after.releases - pool_before.releases));
}

// --- standalone oracle ----------------------------------------------------

core::ParallelResult standalone_run(const JobSpec& spec,
                                    const Assignment& assignment,
                                    const cluster::CostModel& cost,
                                    double recv_timeout_s) {
  core::SimSettings eff = spec.settings;
  eff.obs.trace = nullptr;  // pure re-run: no shared observers, no files
  eff.obs.trace_json_path.clear();
  mp::RuntimeOptions rt;
  rt.recv_timeout_s = recv_timeout_s;
  return core::run_parallel(spec.scene, eff, assignment.sub_spec,
                            assignment.placement, cost, rt);
}

}  // namespace psanim::farm

#include "farm/farm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <stdexcept>
#include <utility>

#include "mp/buffer_pool.hpp"
#include "obs/trace.hpp"
#include "render/compare.hpp"

namespace psanim::farm {

namespace detail {

/// One mutex + condvar for the whole farm: handle queries are rare and
/// driver writes are batched per scheduling event, so a single lock keeps
/// the state machine trivially consistent. Held in a shared_ptr so handles
/// outlive the Farm.
struct SharedState {
  mutable std::mutex mu;
  std::condition_variable cv;
};

struct JobRecord {
  JobSpec spec;   // immutable after submit
  int seq = 0;    // submission sequence (deterministic tiebreak)
  double est = 0; // SJF ranking key
  /// Effective arrival: submit_time_s for root jobs, predecessor finish +
  /// think delay for after_seq jobs. Driver-written; SLO waits measure
  /// from here.
  double arrive_s = 0;
  std::shared_ptr<SharedState> ss;
  JobResult result;  // guarded by ss->mu (state field is the job state)
};

}  // namespace detail

using detail::JobRecord;

// --- JobHandle ------------------------------------------------------------

namespace {

bool terminal(JobState s) {
  return s == JobState::kDone || s == JobState::kFailed ||
         s == JobState::kCancelled;
}

/// Accessor guard: a default-constructed handle refers to no job.
JobRecord& deref(const std::shared_ptr<JobRecord>& rec) {
  if (rec == nullptr) {
    throw std::logic_error(
        "JobHandle: empty handle — only handles returned by Farm::submit "
        "refer to a job");
  }
  return *rec;
}

}  // namespace

const std::string& JobHandle::name() const { return deref(rec_).spec.name; }

JobState JobHandle::poll() const {
  auto& rec = deref(rec_);
  const std::scoped_lock lock(rec.ss->mu);
  return rec.result.state;
}

const JobResult& JobHandle::await() const {
  auto& rec = deref(rec_);
  std::unique_lock lock(rec.ss->mu);
  rec.ss->cv.wait(lock, [&] { return terminal(rec.result.state); });
  return rec.result;
}

bool JobHandle::cancel() {
  auto& rec = deref(rec_);
  const std::scoped_lock lock(rec.ss->mu);
  if (rec.result.state != JobState::kQueued) return false;
  rec.result.state = JobState::kCancelled;
  rec.ss->cv.notify_all();
  return true;
}

// --- Farm: admission ------------------------------------------------------

Farm::Farm(cluster::ClusterSpec shared, FarmOptions options)
    : shared_(std::move(shared)), options_(std::move(options)) {
  if (shared_.node_count() == 0) {
    throw std::invalid_argument("Farm: shared cluster has no nodes");
  }
  for (const auto& n : shared_.nodes) {
    if (n.cpus < 1) {
      throw std::invalid_argument("Farm: every node needs >= 1 CPU slot");
    }
    total_slots_ += n.cpus;
  }
  preemptive_ = (options_.policy == Policy::kPriority ||
                 options_.policy == Policy::kFairShare) &&
                options_.preempt_interval > 0;
  if (!options_.journal_path.empty()) {
    journal_ = std::make_unique<JournalWriter>(options_.journal_path);
  }
  ss_ = std::make_shared<detail::SharedState>();
  occupancy_.assign(shared_.node_count(), 0);
  usage_.assign(shared_.node_count(), NodeUsage{});
}

Farm::~Farm() {
  if (driver_.joinable()) {
    driver_.join();
  } else {
    // Never started: unblock any await()ers by cancelling the queue.
    const std::scoped_lock lock(ss_->mu);
    for (auto& rec : jobs_) {
      if (rec->result.state == JobState::kQueued) {
        rec->result.state = JobState::kCancelled;
      }
    }
    ss_->cv.notify_all();
  }
}

void Farm::journal(JournalType type, const JobRecord& rec, double time_s,
                   std::uint32_t frame) {
  if (journal_ == nullptr) return;
  JournalRecord r;
  r.type = type;
  r.seq = rec.seq;
  r.time_s = time_s;
  r.frame = frame;
  r.state = rec.result.state;
  r.fb_hash = rec.result.fb_hash;
  r.name = rec.spec.name;
  r.tenant = rec.spec.tenant;
  journal_->append(r);
}

JobHandle Farm::submit(JobSpec spec) {
  const auto reject = [](const std::string& why) {
    throw std::invalid_argument("Farm::submit: " + why);
  };
  const std::scoped_lock lock(ss_->mu);
  if (started_) {
    reject("the queue is sealed — submit every job before start()");
  }
  spec.settings.validate();  // zero-frame jobs etc. fail here, with context
  if (spec.submit_time_s < 0.0) {
    reject("submit_time_s must be >= 0, got " +
           std::to_string(spec.submit_time_s));
  }
  if (spec.after_seq >= static_cast<int>(jobs_.size())) {
    reject("after_seq " + std::to_string(spec.after_seq) +
           " must reference an earlier submission (only " +
           std::to_string(jobs_.size()) + " so far)");
  }
  const int world = spec.world_size();
  if (world > total_slots_) {
    reject("job needs " + std::to_string(world) + " ranks (ncalc " +
           std::to_string(spec.settings.ncalc) +
           " + manager + image generator) but the shared cluster has only " +
           std::to_string(total_slots_) +
           " CPU slots — it can never be scheduled");
  }
  // Cross-job isolation: per-job checkpoints, traces and event logs. Two
  // jobs writing one vault/trace/log would race and entangle recoveries.
  // Jobs carrying none of the shared pointers skip the scan, keeping a
  // 10k-job submission burst linear.
  const bool shares_anything = spec.settings.ckpt_vault != nullptr ||
                               spec.settings.obs.trace != nullptr ||
                               spec.settings.events != nullptr;
  for (const auto& other : jobs_) {
    if (!shares_anything) break;
    if (spec.settings.ckpt_vault != nullptr &&
        spec.settings.ckpt_vault == other->spec.settings.ckpt_vault) {
      reject("job '" + spec.name + "' shares a ckpt vault with job '" +
             other->spec.name + "' — checkpoints are per-job");
    }
    if (spec.settings.obs.trace != nullptr &&
        spec.settings.obs.trace == other->spec.settings.obs.trace) {
      reject("job '" + spec.name + "' shares an obs::Trace with job '" +
             other->spec.name + "' — traces are per-job");
    }
    if (spec.settings.events != nullptr &&
        spec.settings.events == other->spec.settings.events) {
      reject("job '" + spec.name + "' shares an EventLog with job '" +
             other->spec.name + "' — event logs are per-job");
    }
  }
  auto rec = std::make_shared<JobRecord>();
  rec->seq = static_cast<int>(jobs_.size());
  if (spec.name.empty()) spec.name = "job" + std::to_string(rec->seq);
  rec->spec = std::move(spec);
  rec->est = estimate_virtual_cost(rec->spec);
  rec->arrive_s = rec->spec.submit_time_s;
  rec->ss = ss_;
  jobs_.push_back(rec);
  journal(JournalType::kSubmit, *rec, rec->spec.submit_time_s);
  return JobHandle(rec);
}

void Farm::start() {
  // lifecycle_mu_ serializes thread launch and join: without it two
  // concurrent wait()ers could both see driver_.joinable() and both
  // join() (UB), or a second start() could return before the first
  // assigned driver_.
  const std::scoped_lock lifecycle(lifecycle_mu_);
  {
    const std::scoped_lock lock(ss_->mu);
    if (started_) return;
    started_ = true;
  }
  driver_ = std::thread([this] { drive(); });
}

void Farm::wait() {
  start();
  {
    const std::scoped_lock lifecycle(lifecycle_mu_);
    if (driver_.joinable()) driver_.join();
  }
  waited_.store(true, std::memory_order_release);
}

Report Farm::run() {
  wait();
  return report_;
}

const Report& Farm::report() const {
  if (!waited_.load(std::memory_order_acquire)) {
    throw std::logic_error("Farm::report: call wait() (or run()) first");
  }
  return report_;
}

std::vector<JobHandle> Farm::handles() const {
  const std::scoped_lock lock(ss_->mu);
  std::vector<JobHandle> out;
  out.reserve(jobs_.size());
  for (const auto& rec : jobs_) out.push_back(JobHandle(rec));
  return out;
}

std::unique_ptr<Farm> Farm::recover(
    const std::string& journal_path, cluster::ClusterSpec shared,
    FarmOptions options, std::vector<JobSpec> specs,
    const std::map<int, std::shared_ptr<ckpt::Vault>>& vaults) {
  if (!options.journal_path.empty() &&
      options.journal_path == journal_path) {
    throw std::invalid_argument(
        "Farm::recover: options.journal_path must not be the journal being "
        "recovered — JournalWriter truncates on open");
  }
  const JournalRecovery rc = recover_journal(journal_path);
  auto farm =
      std::unique_ptr<Farm>(new Farm(std::move(shared), std::move(options)));
  std::map<int, int> seq_map;  // original seq -> recovered seq
  for (const auto& p : rc.pending) {
    if (p.seq < 0 || p.seq >= static_cast<int>(specs.size())) {
      throw std::invalid_argument(
          "Farm::recover: journal names pending job seq " +
          std::to_string(p.seq) + " ('" + p.name + "') but only " +
          std::to_string(specs.size()) +
          " specs were supplied — pass the crashed farm's full submission "
          "list, indexed by original seq");
    }
    JobSpec spec = std::move(specs[static_cast<std::size_t>(p.seq)]);
    if (p.resume_frame) {
      const auto vit = vaults.find(p.seq);
      if (vit == vaults.end() || vit->second == nullptr) {
        throw std::invalid_argument(
            "Farm::recover: job '" + p.name + "' (seq " +
            std::to_string(p.seq) + ") was suspended at checkpoint frame " +
            std::to_string(*p.resume_frame) +
            " but no vault was supplied for it");
      }
      if (!spec.settings.ckpt.enabled() &&
          farm->options_.preempt_interval > 0) {
        // The crashed farm imposed its preempt cadence on this job — the
        // journaled resume frame lives on that snapshot grid.
        spec.settings.ckpt.interval = farm->options_.preempt_interval;
      }
      if (!vit->second->has_sealed(*p.resume_frame)) {
        const auto fallback =
            vit->second->latest_sealed_at_or_before(*p.resume_frame);
        throw std::invalid_argument(
            "Farm::recover: the vault for job '" + p.name +
            "' holds no sealed checkpoint at resume frame " +
            std::to_string(*p.resume_frame) +
            (fallback ? " (latest sealed frame before it: " +
                            std::to_string(*fallback) + ")"
                      : " (no sealed frame precedes it either)"));
      }
      spec.settings.resume_from = p.resume_frame;
      spec.settings.ckpt_vault = vit->second.get();
      farm->recovered_vaults_.push_back(vit->second);
    }
    if (spec.after_seq >= 0) {
      const auto mit = seq_map.find(spec.after_seq);
      // Predecessor already terminal in the journal: the dependency is
      // satisfied — the think delay counts from the recovered farm's t=0.
      spec.after_seq = mit == seq_map.end() ? -1 : mit->second;
    }
    seq_map[p.seq] = static_cast<int>(farm->jobs_.size());
    farm->submit(std::move(spec));
  }
  return farm;
}

// --- Farm: the discrete-event driver --------------------------------------

struct Farm::Running {
  std::shared_ptr<JobRecord> rec;
  Assignment assignment;  // driver-owned copy (no lock needed)
  double start = 0.0;     ///< this segment's launch instant
  double duration = 0.0;  ///< this segment's virtual makespan
  double progress = 0.0;  ///< segment virtual seconds completed
  double stretch = 1.0;   ///< current slowdown (>= 1)
  double finish_est = 0.0;

  // Preemption machinery (preemptive policies only).
  bool preempting = false;        ///< marked; draining to the vacate frame
  std::uint32_t preempt_frame = 0;
  double vacate_progress = 0.0;   ///< segment virtual time of that frame
  double vacate_est = 0.0;
  /// (frame, completion virtual time) of every frame this segment
  /// executed, ascending — where candidate vacate points sit in time
  /// (candidate frames come from ckpt.next_snapshot_at_or_after).
  std::vector<std::pair<std::uint32_t, double>> timeline;
  std::shared_ptr<ckpt::Vault> vault;      ///< holds the sealed snapshots
  ckpt::CkptPolicy ckpt;                   ///< effective policy at launch
  std::optional<std::uint32_t> resume_base;
};

/// One launch the scheduling pass budgeted: which job, onto which slots,
/// and — under a preemptive policy — the checkpoint plumbing (effective
/// policy, the vault that outlives the segment, and the resume frame when
/// this is a restore of a suspended job).
struct Farm::LaunchReq {
  std::shared_ptr<JobRecord> rec;
  Assignment assignment;
  bool restore = false;
  bool migrated = false;  ///< restore landed on different shared nodes
  std::optional<std::uint32_t> resume;
  bool preempt_capable = false;
  ckpt::CkptPolicy ckpt;
  std::shared_ptr<ckpt::Vault> vault;
};

namespace {

std::string sanitize_filename(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                    c == '.';
    if (!ok) c = '_';
  }
  return out.empty() ? "job" : out;
}

/// What one launched job produced (worker-thread output; the driver merges
/// it under the lock after joining).
struct LaunchOut {
  std::unique_ptr<obs::Trace> own_trace;  // must outlive the run
  std::string trace_path;
  std::string analysis_path;
  core::ParallelResult res;
  std::uint64_t fb_hash = 0;  ///< of res.final_frame, on success
  bool skipped = false;  ///< cancel() won the launch race; never ran
  bool ok = false;
  std::string error;
};

}  // namespace

bool Farm::launch_batch(std::vector<LaunchReq> batch, double now,
                        std::vector<Running>& running,
                        std::vector<int>& free_slots) {
  if (batch.empty()) return false;
  bool slots_freed = false;
  std::vector<LaunchOut> outs(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    auto& req = batch[i];
    auto& out = outs[i];
    {
      // Claim the job atomically: a handle may have cancelled a queued job
      // between the driver's queue sweep and here. If cancel() won, honor
      // it — skip the job (its budgeted slots unwind in the merge).
      // Suspended jobs cannot be cancelled, so a restore claim never
      // loses this race.
      const std::scoped_lock lock(ss_->mu);
      const JobState expect =
          req.restore ? JobState::kSuspended : JobState::kQueued;
      if (req.rec->result.state != expect) {
        out.skipped = true;
        slots_freed = true;
        continue;
      }
      req.rec->result.state = JobState::kRunning;
      if (!req.restore) req.rec->result.start_s = now;
      req.rec->result.assignment = req.assignment;
    }
    if (req.restore) {
      journal(JournalType::kRestore, *req.rec, now, *req.resume);
    } else {
      journal(JournalType::kLaunch, *req.rec, now);
    }
    if (!req.restore && !options_.obs_dir.empty() &&
        !req.rec->spec.settings.obs.tracing()) {
      out.own_trace = std::make_unique<obs::Trace>();
      out.own_trace->set_rank_namespace(req.rec->spec.name);
      // Two jobs whose names sanitize identically must not overwrite each
      // other's files: suffix later claimants with their (unique) seq,
      // repeating if a tenant literally named a job "a-5".
      std::string base = sanitize_filename(req.rec->spec.name);
      while (!used_obs_names_.insert(base).second) {
        base += "-" + std::to_string(req.rec->seq);
      }
      out.trace_path = options_.obs_dir + "/" + base + ".trace.json";
      out.analysis_path = options_.obs_dir + "/" + base + ".analysis.json";
    }
  }

  // Execute the batch concurrently in wall-clock (each job is its own
  // mp::Runtime with instance-isolated mailboxes/clocks; the only shared
  // mutable substrate is the thread-safe global BufferPool). Results are
  // virtual-time quantities, so the wall-clock interleaving — and the
  // max_parallel_launches cap — cannot change them.
  const std::size_t cap =
      options_.max_parallel_launches > 0
          ? static_cast<std::size_t>(options_.max_parallel_launches)
          : batch.size();
  // Each concurrently-running job gets an even share of the machine's
  // worker-thread budget for its fiber scheduler (workers never affect
  // virtual-time results, only wall-clock drain rate).
  int per_job_workers = options_.workers_per_job;
  if (per_job_workers <= 0) {
    const auto hw = std::max(1u, std::thread::hardware_concurrency());
    const auto concurrent =
        std::max<std::size_t>(1, std::min(cap, batch.size()));
    per_job_workers =
        std::max<int>(1, static_cast<int>(hw / concurrent));
  }
  const auto run_one = [this, per_job_workers](const LaunchReq& req,
                                               LaunchOut& out) {
    if (out.skipped) return;
    try {
      core::SimSettings eff = req.rec->spec.settings;
      eff.obs.pool_metrics = false;  // pool is process-global; see Report
      if (req.restore) {
        // Restore segments are pure continuations: the first launch
        // already produced the job's trace/analysis/event stream, so a
        // resumed run records nothing (re-appending would double-count
        // frames the DES says were never lost).
        eff.obs = core::ObsSettings{};
        eff.obs.pool_metrics = false;
        eff.events = nullptr;
      } else if (out.own_trace != nullptr) {
        eff.obs.trace = out.own_trace.get();
        // Farm-provided tracing brings the in-process analysis along:
        // per-job critical-path/straggler reports land next to the trace
        // and the cp summary metrics in the job's ParallelResult.
        eff.obs.analysis_json_path = out.analysis_path;
      }
      if (req.preempt_capable) {
        // The preemption contract: snapshots of every candidate vacate
        // frame land in a vault that outlives this segment, and restores
        // pick up from the suspend frame. A job with its own ckpt policy
        // keeps it; one without gets options_.preempt_interval imposed
        // (fb output is checkpoint-invariant, so its results are
        // unchanged — only candidate vacate points appear).
        eff.ckpt = req.ckpt;
        eff.ckpt_vault = req.vault.get();
        eff.resume_from = req.resume;
      }
      if (eff.platform.empty()) eff.platform = options_.platform;
      mp::RuntimeOptions rt;
      rt.recv_timeout_s = options_.recv_timeout_s;
      rt.exec_mode = options_.exec_mode;
      rt.workers = per_job_workers;
      out.res = core::run_parallel(req.rec->spec.scene, eff,
                                   req.assignment.sub_spec,
                                   req.assignment.placement, options_.cost,
                                   rt);
      out.fb_hash = render::hash_framebuffer(out.res.final_frame);
      out.ok = true;
    } catch (const std::exception& e) {
      out.error = e.what();
    } catch (...) {
      out.error = "unknown exception";
    }
  };
  for (std::size_t base = 0; base < outs.size(); base += cap) {
    std::vector<std::thread> workers;
    const std::size_t end = std::min(outs.size(), base + cap);
    workers.reserve(end - base);
    for (std::size_t i = base; i < end; ++i) {
      workers.emplace_back(
          [&run_one, &batch, &outs, i] { run_one(batch[i], outs[i]); });
    }
    for (auto& w : workers) w.join();
  }

  const auto unwind = [&](const Assignment& a) {
    for (std::size_t k = 0; k < a.shared_nodes.size(); ++k) {
      const auto n = static_cast<std::size_t>(a.shared_nodes[k]);
      free_slots[n] += a.ranks_per_node[k];
      occupancy_[n] -= a.ranks_per_node[k];
    }
  };

  // Merge skips and failures first so node peaks (below) are computed
  // from settled occupancy: a launch that never ran must leave zero
  // residency footprint.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    auto& req = batch[i];
    auto& out = outs[i];
    if (out.skipped) {
      unwind(req.assignment);
      release_dependents(req.rec->seq, now);
      continue;
    }
    if (out.ok && req.restore && out.fb_hash != req.rec->result.fb_hash) {
      // The whole point of checkpoint-based preemption is that this can
      // never fire; treat a divergence as a loud failure, not a silent
      // wrong answer.
      out.ok = false;
      out.error =
          "restored run diverged from the pre-preemption framebuffer hash "
          "(determinism violation — please report)";
    }
    if (out.ok) continue;
    // Failed during launch: the job completes (failed) at its start
    // time and its slots free immediately — neighbors are unaffected.
    unwind(req.assignment);
    slots_freed = true;
    {
      const std::scoped_lock lock(ss_->mu);
      req.rec->result.state = JobState::kFailed;
      req.rec->result.finish_s = now;
      req.rec->result.error = std::move(out.error);
      report_.completion_order.push_back(req.rec->spec.name);
      ++report_.jobs_failed;
      ss_->cv.notify_all();
    }
    journal(JournalType::kFinish, *req.rec, now);
    release_dependents(req.rec->seq, now);
  }

  for (std::size_t i = 0; i < batch.size(); ++i) {
    auto& req = batch[i];
    auto& out = outs[i];
    if (out.skipped || !out.ok) continue;
    if (!out.trace_path.empty()) {
      out.own_trace->write_chrome_json(out.trace_path);
    }
    for (std::size_t k = 0; k < req.assignment.shared_nodes.size(); ++k) {
      const auto n = static_cast<std::size_t>(req.assignment.shared_nodes[k]);
      usage_[n].peak_ranks = std::max(usage_[n].peak_ranks, occupancy_[n]);
    }
    Running r;
    r.rec = req.rec;
    r.assignment = req.assignment;
    r.start = now;
    r.duration = out.res.animation_s;
    if (req.preempt_capable) {
      r.vault = req.vault;
      r.ckpt = req.ckpt;
      r.resume_base = req.resume;
      // Per-frame completion timeline — where in segment-virtual time each
      // candidate vacate frame's snapshot becomes available. Rollback
      // replays re-emit frames; the last emission is the surviving one.
      std::map<std::uint32_t, double> fd;
      for (const auto& is : out.res.telemetry.image_frames()) {
        fd[is.frame] = is.frame_complete_time;
      }
      r.timeline.assign(fd.begin(), fd.end());
      if (req.resume) {
        // Resumed frames are replayed from the snapshot, not recomputed:
        // the job re-enters farm time at the checkpoint's virtual instant
        // and owes only the frames past it. animation_s measures just that
        // remainder, while the telemetry timeline (and so progress and
        // every vacate candidate) is absolute — rebase the duration to the
        // absolute scale or the segment gets double-charged and its finish
        // estimate lands in the *past*, dragging the DES clock backwards.
        // This applies to farm restores and to resume_from submissions
        // (recover()ed suspended jobs) alike.
        const auto it = fd.find(*req.resume);
        if (it != fd.end()) r.progress = it->second;
        r.duration = r.progress + out.res.animation_s;
      }
    }
    if (!req.restore && !req.resume && req.rec->est > 0.0) {
      // Calibrate the tenant-estimate -> runtime upper-bound ratio EASY
      // cond-1 backfill scales by (durations are only learned here).
      // Resume-from launches run only a remainder, which would deflate
      // the ratio below a true upper bound.
      est_ratio_max_ =
          std::max(est_ratio_max_, out.res.animation_s / req.rec->est);
    }
    {
      const std::scoped_lock lock(ss_->mu);
      auto& res = req.rec->result;
      if (req.restore) {
        res.migrated = res.migrated || req.migrated;
        if (options_.keep_results) res.result = std::move(out.res);
      } else {
        res.standalone_makespan_s = out.res.animation_s;
        res.fb_hash = out.fb_hash;
        if (options_.keep_results) res.result = std::move(out.res);
      }
    }
    if (req.restore) {
      ++restores_;
      if (req.migrated) ++migrations_;
    }
    running.push_back(std::move(r));
  }
  return slots_freed;
}

void Farm::recompute_stretch(std::vector<Running>& running) const {
  const double smp = options_.cost.smp_contention;
  for (auto& r : running) {
    double worst = 1.0;
    for (std::size_t k = 0; k < r.assignment.shared_nodes.size(); ++k) {
      const auto n = static_cast<std::size_t>(r.assignment.shared_nodes[k]);
      const int own = r.assignment.ranks_per_node[k];
      // The in-job rate model already charges smp_contention when the job
      // itself shares the node; the farm adds the penalty only when
      // *neighbor* jobs turn an exclusive node into a shared one. Slots
      // are never oversubscribed, so bus sharing is the whole contention.
      if (own == 1 && occupancy_[n] > 1 && smp > 0.0 && smp < 1.0) {
        worst = std::max(worst, 1.0 / smp);
      }
    }
    r.stretch = worst;
  }
}

void Farm::release_dependents(int seq, double at) {
  const auto it = dependents_.find(seq);
  if (it == dependents_.end()) return;
  for (auto& dep : it->second) {
    dep->arrive_s = at + dep->spec.submit_time_s;
    arrivals_.emplace_back(dep->arrive_s, dep);
    std::push_heap(arrivals_.begin(), arrivals_.end(),
                   [](const auto& a, const auto& b) {
                     if (a.first != b.first) return a.first > b.first;
                     return a.second->seq > b.second->seq;
                   });
  }
  dependents_.erase(it);
}

void Farm::mark_victims(const std::shared_ptr<JobRecord>& blocked,
                        std::vector<Running>& running, int total_free,
                        double /*now*/) {
  const int needed = blocked->spec.world_size();
  int avail = total_free;
  for (const auto& r : running) {
    if (r.preempting) avail += r.assignment.world_size();
  }
  if (avail >= needed) return;  // enough vacates already in flight

  const auto tu = [&](const std::string& tenant) {
    const auto it = tenant_score_.find(tenant);
    return it == tenant_score_.end() ? 0.0 : it->second;
  };
  // The earliest checkpoint frame this segment has not yet passed
  // (CkptPolicy::next_snapshot_at_or_after walks the candidates): the job
  // drains there (sealing that snapshot) and vacates. Jobs beyond their
  // last snapshot frame finish naturally instead.
  const auto pick_vacate =
      [](const Running& r) -> std::optional<std::pair<std::uint32_t, double>> {
    const std::uint32_t frames = r.rec->spec.settings.frames;
    for (auto f = r.ckpt.next_snapshot_at_or_after(0, frames, r.resume_base);
         f; f = r.ckpt.next_snapshot_at_or_after(*f + 1, frames,
                                                 r.resume_base)) {
      const auto it = std::lower_bound(
          r.timeline.begin(), r.timeline.end(), *f,
          [](const auto& p, std::uint32_t v) { return p.first < v; });
      if (it == r.timeline.end() || it->first != *f) continue;
      if (it->second >= r.progress) return std::make_pair(*f, it->second);
    }
    return std::nullopt;
  };

  struct Cand {
    Running* r;
    double cost;  ///< farm-seconds of slot time lost draining to the ckpt
  };
  std::vector<Cand> cands;
  for (auto& r : running) {
    if (r.preempting) continue;
    if (r.rec->result.preemptions >= options_.max_preemptions_per_job) {
      continue;  // starvation guard: this job keeps its slots
    }
    bool eligible = false;
    if (options_.policy == Policy::kPriority) {
      eligible = r.rec->spec.priority < blocked->spec.priority;
    } else {  // kFairShare: evict over-served tenants for under-served ones
      eligible = r.rec->spec.tenant != blocked->spec.tenant &&
                 tu(r.rec->spec.tenant) > tu(blocked->spec.tenant);
    }
    if (!eligible) continue;
    const auto v = pick_vacate(r);
    if (!v) continue;
    cands.push_back({&r, (v->second - r.progress) * r.stretch});
  }
  // kLeastDeserving (PR-9): lowest priority / most over-served tenant,
  // then the youngest segment (least sunk work re-queued). kCostAware
  // leads with the drain cost — distance to the nearest checkpoint frame
  // in farm time — so the eviction wastes the least slot time, with the
  // deserve ranking and seq as deterministic tie-breaks.
  std::sort(cands.begin(), cands.end(), [&](const Cand& ca, const Cand& cb) {
    const Running* a = ca.r;
    const Running* b = cb.r;
    if (options_.victim_selection == VictimSelection::kCostAware &&
        ca.cost != cb.cost) {
      return ca.cost < cb.cost;
    }
    if (options_.policy == Policy::kPriority) {
      if (a->rec->spec.priority != b->rec->spec.priority) {
        return a->rec->spec.priority < b->rec->spec.priority;
      }
    } else {
      const double ua = tu(a->rec->spec.tenant);
      const double ub = tu(b->rec->spec.tenant);
      if (ua != ub) return ua > ub;
    }
    if (a->start != b->start) return a->start > b->start;
    return a->rec->seq > b->rec->seq;
  });
  for (const Cand& cand : cands) {
    Running* c = cand.r;
    const auto v = pick_vacate(*c);
    c->preempting = true;
    c->preempt_frame = v->first;
    c->vacate_progress = v->second;
    {
      const std::scoped_lock lock(ss_->mu);
      c->rec->result.state = JobState::kPreempting;
    }
    avail += c->assignment.world_size();
    if (avail >= needed) break;
  }
}

void Farm::drive() {
  const mp::BufferPool::Stats pool_before = mp::BufferPool::global().stats();

  const auto arrival_later = [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second->seq > b.second->seq;
  };
  // Submission set is sealed; specs/seq/est are immutable. Root jobs
  // arrive at their submit time; closed-loop jobs (after_seq) are parked
  // until their predecessor terminates.
  for (const auto& rec : jobs_) {
    if (rec->spec.after_seq >= 0) {
      dependents_[rec->spec.after_seq].push_back(rec);
    } else {
      arrivals_.emplace_back(rec->spec.submit_time_s, rec);
    }
  }
  std::make_heap(arrivals_.begin(), arrivals_.end(), arrival_later);

  std::vector<std::shared_ptr<JobRecord>> queued;
  std::vector<Running> running;
  std::vector<int> free_slots(shared_.node_count());
  for (std::size_t n = 0; n < shared_.node_count(); ++n) {
    free_slots[n] = shared_.nodes[n].cpus;
  }

  double t = 0.0;
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // Drop handle-cancelled jobs from the wait queue; a cancelled
  // predecessor releases its closed-loop dependents at the sweep instant.
  const auto sweep = [&](double at) {
    std::vector<std::shared_ptr<JobRecord>> dropped;
    {
      const std::scoped_lock lock(ss_->mu);
      std::erase_if(queued, [&](const auto& rec) {
        const JobState st = rec->result.state;
        if (st == JobState::kQueued || st == JobState::kSuspended) {
          return false;
        }
        dropped.push_back(rec);
        return true;
      });
    }
    for (const auto& rec : dropped) release_dependents(rec->seq, at);
  };

  // Worst-case contention stretch for an assignment: what the job would
  // pay if every exclusive single-rank node it holds on a multi-slot node
  // became shared. Finish estimates taken at this stretch are upper
  // bounds on the true release instants — the property that makes EASY
  // reservations safe to backfill against.
  const auto worst_stretch = [&](const Assignment& a) {
    const double smp = options_.cost.smp_contention;
    if (!(smp > 0.0 && smp < 1.0)) return 1.0;
    for (std::size_t k = 0; k < a.shared_nodes.size(); ++k) {
      if (a.ranks_per_node[k] == 1 &&
          shared_.nodes[static_cast<std::size_t>(a.shared_nodes[k])].cpus >
              1) {
        return 1.0 / smp;
      }
    }
    return 1.0;
  };

  for (;;) {
    // Arrivals up to now.
    while (!arrivals_.empty() && arrivals_.front().first <= t) {
      std::pop_heap(arrivals_.begin(), arrivals_.end(), arrival_later);
      queued.push_back(std::move(arrivals_.back().second));
      arrivals_.pop_back();
    }

    sweep(t);

    // Admit in policy order. kFifo/kSjf backfill: every job that fits
    // starts (work conservation). Preemptive policies reserve for the
    // first job that does not fit, after marking eviction victims for it;
    // with easy_backfill off nothing may jump the blocked head (PR-9
    // strict reservation), with it on later jobs start only when they
    // provably cannot delay the reserved start.
    std::vector<std::shared_ptr<JobRecord>> order = queued;
    const auto tu = [&](const std::string& tenant) {
      const auto it = tenant_score_.find(tenant);
      return it == tenant_score_.end() ? 0.0 : it->second;
    };
    std::sort(order.begin(), order.end(), [&](const auto& a, const auto& b) {
      switch (options_.policy) {
        case Policy::kSjf:
          if (a->est != b->est) return a->est < b->est;
          break;
        case Policy::kPriority:
          if (a->spec.priority != b->spec.priority) {
            return a->spec.priority > b->spec.priority;
          }
          break;
        case Policy::kFairShare: {
          const double ua = tu(a->spec.tenant);
          const double ub = tu(b->spec.tenant);
          if (ua != ub) return ua < ub;
          break;
        }
        case Policy::kFifo:
          break;
      }
      if (a->arrive_s != b->arrive_s) return a->arrive_s < b->arrive_s;
      return a->seq < b->seq;
    });
    int total_free = 0;
    for (const int f : free_slots) total_free += f;
    const auto budget = [&](const Assignment& a) {
      for (std::size_t k = 0; k < a.shared_nodes.size(); ++k) {
        const auto n = static_cast<std::size_t>(a.shared_nodes[k]);
        free_slots[n] -= a.ranks_per_node[k];
        occupancy_[n] += a.ranks_per_node[k];
      }
    };
    // EASY reservation machinery. A Release is a known upper bound on
    // when a set of held slots comes back: running segments release their
    // slots by (remaining work at worst-case stretch); marked victims by
    // their vacate point. Jobs budgeted earlier in this same pass hold
    // slots with *unknown* durations (learned only at launch), so they
    // contribute no release — the reservation estimate errs late, never
    // early.
    struct Release {
      double at = 0.0;
      int seq = 0;
      std::vector<int> nodes;
      std::vector<int> ranks;
    };
    const auto release_of = [](double at, int seq, const Assignment& a) {
      Release rel;
      rel.at = at;
      rel.seq = seq;
      rel.nodes = a.shared_nodes;
      rel.ranks = a.ranks_per_node;
      return rel;
    };
    const auto release_order = [](const Release& a, const Release& b) {
      if (a.at != b.at) return a.at < b.at;
      return a.seq < b.seq;
    };
    const auto collect_releases = [&] {
      std::vector<Release> out;
      out.reserve(running.size());
      for (const auto& r : running) {
        const double work =
            (r.preempting ? r.vacate_progress : r.duration) - r.progress;
        out.push_back(release_of(
            t + std::max(0.0, work) * worst_stretch(r.assignment),
            r.rec->seq, r.assignment));
      }
      std::sort(out.begin(), out.end(), release_order);
      return out;
    };
    // Earliest instant `rec` fits as `sim_free` grows by each release in
    // turn; kInf when even every release is not enough (slots are held by
    // jobs with unknown durations).
    const auto earliest_fit = [&](const std::shared_ptr<JobRecord>& rec,
                                  std::vector<int> sim_free,
                                  const std::vector<Release>& rels) {
      const auto fits = [&] {
        const auto sit = suspended_.find(rec->seq);
        if (sit != suspended_.end()) {
          return match_assignment(shared_, sim_free, sit->second.original)
              .has_value();
        }
        int free_total = 0;
        for (const int f : sim_free) free_total += f;
        return rec->spec.world_size() <= free_total;
      };
      if (fits()) return t;
      for (const auto& rel : rels) {
        for (std::size_t k = 0; k < rel.nodes.size(); ++k) {
          sim_free[static_cast<std::size_t>(rel.nodes[k])] += rel.ranks[k];
        }
        if (fits()) return rel.at;
      }
      return kInf;
    };

    std::vector<LaunchReq> batch;
    std::shared_ptr<JobRecord> reserved;  // the blocked head, if any
    double reserve_at = kInf;
    std::vector<Release> releases;  // valid while reserved != nullptr
    for (const auto& rec : order) {
      const auto sit = suspended_.find(rec->seq);
      const bool is_suspended = sit != suspended_.end();
      const int world = rec->spec.world_size();
      // Slots now? A suspended job re-enters only onto nodes matching its
      // original grant (bit-exactness needs identical rates); anywhere
      // such nodes are free, not necessarily where it ran before.
      std::optional<Assignment> got;
      if (is_suspended) {
        got = match_assignment(shared_, free_slots, sit->second.original);
      } else if (world <= total_free) {
        got = assign_slots(shared_, free_slots, world);
      }
      if (!got) {
        if (!preemptive_) continue;  // kFifo/kSjf: backfill unconditionally
        if (reserved != nullptr) continue;  // one reservation at a time
        // The blocked head. Mark eviction victims for a fresh job (a
        // suspended one waits for matching nodes instead — evicting to
        // re-host it would thrash), then pin its reservation from the
        // DES's own release bounds.
        if (!is_suspended) mark_victims(rec, running, total_free, t);
        reserved = rec;
        releases = collect_releases();
        reserve_at = earliest_fit(rec, free_slots, releases);
        if (reserve_at < kInf) {
          const std::scoped_lock lock(ss_->mu);
          if (rec->result.reserved_at_s < 0.0) {
            rec->result.reserved_at_s = reserve_at;
            ++reservations_;
          }
        }
        if (!options_.easy_backfill) break;  // strict head-of-line (PR 9)
        continue;
      }
      bool backfill = false;
      if (reserved != nullptr) {
        // EASY admission: start `rec` past the blocked head only when the
        // reservation provably survives. Cond-2: it survives even if
        // `rec` never releases its slots. Cond-1: `rec`'s runtime upper
        // bound — exact remaining work for a suspended job, calibrated
        // est_ratio_max_ x est for a fresh one — releases them in time.
        if (reserve_at == kInf) continue;  // no credible reservation yet
        double ub_work = -1.0;
        if (is_suspended) {
          ub_work = sit->second.remaining_s;
        } else if (est_ratio_max_ > 0.0) {
          ub_work = rec->est * est_ratio_max_;
        }
        std::vector<int> sim_free = free_slots;
        for (std::size_t k = 0; k < got->shared_nodes.size(); ++k) {
          sim_free[static_cast<std::size_t>(got->shared_nodes[k])] -=
              got->ranks_per_node[k];
        }
        std::vector<Release> with = releases;
        if (ub_work >= 0.0) {
          with.push_back(release_of(t + ub_work * worst_stretch(*got),
                                    rec->seq, *got));
          std::sort(with.begin(), with.end(), release_order);
        }
        if (earliest_fit(reserved, std::move(sim_free), with) > reserve_at) {
          continue;  // would (or might) delay the reserved start
        }
        releases = std::move(with);  // later candidates see this one too
        backfill = true;
      }
      LaunchReq req;
      req.rec = rec;
      if (is_suspended) {
        req.restore = true;
        req.migrated =
            got->shared_nodes != sit->second.original.shared_nodes;
        req.resume = sit->second.resume_frame;
        req.preempt_capable = true;
        req.ckpt = sit->second.ckpt;
        req.vault = sit->second.vault;
        suspended_.erase(sit);
      } else if (preemptive_) {
        req.preempt_capable = true;
        req.resume = rec->spec.settings.resume_from;
        req.ckpt = rec->spec.settings.ckpt;
        if (!req.ckpt.enabled()) {
          req.ckpt.interval = options_.preempt_interval;
        }
        if (rec->spec.settings.ckpt_vault != nullptr) {
          // Non-owning alias: the tenant's vault outlives the farm run.
          req.vault = std::shared_ptr<ckpt::Vault>(
              std::shared_ptr<void>(), rec->spec.settings.ckpt_vault);
        } else {
          req.vault = std::make_shared<ckpt::Vault>();
        }
      }
      budget(*got);
      total_free -= world;
      req.assignment = std::move(*got);
      if (backfill) {
        ++backfills_;
        const std::scoped_lock lock(ss_->mu);
        rec->result.backfilled = true;
      }
      batch.push_back(std::move(req));
    }
    for (const auto& req : batch) {
      queued.erase(std::find(queued.begin(), queued.end(), req.rec));
    }
    if (launch_batch(std::move(batch), t, running, free_slots)) {
      // A launch failed (or a cancel won the race), so slots the
      // scheduling pass budgeted are free again at this same instant.
      // Re-run the pass before picking t_next: otherwise, with nothing
      // running and nothing arriving, still-queued jobs that now fit
      // would be stranded kQueued forever (await() deadlock). Each
      // re-pass consumes queued jobs, so this terminates.
      continue;
    }

    // The scheduling pass has settled: drop cancellations that landed
    // during it, then record the queue-depth breakpoint (overwriting an
    // earlier sample at this same instant — steps within one event
    // collapse to the final depth).
    sweep(t);
    {
      const int depth = static_cast<int>(queued.size());
      auto& qd = report_.queue_depth;
      if (!qd.empty() && qd.back().first == t) {
        qd.back().second = depth;
      } else if (qd.empty() || qd.back().second != depth) {
        qd.emplace_back(t, depth);
      }
    }

    // Occupancy is now stable until the next event: refresh stretches and
    // projected finish/vacate instants.
    recompute_stretch(running);
    for (auto& r : running) {
      r.finish_est = t + (r.duration - r.progress) * r.stretch;
      if (r.preempting) {
        r.vacate_est = t + (r.vacate_progress - r.progress) * r.stretch;
      }
    }

    double t_next = kInf;
    if (!arrivals_.empty()) t_next = arrivals_.front().first;
    for (const auto& r : running) {
      t_next = std::min(t_next, r.preempting ? r.vacate_est : r.finish_est);
    }
    if (t_next == kInf) break;  // nothing running, nothing arriving

    // Advance the farm clock: every running job drains standalone-
    // equivalent work at 1/stretch, every shared node clock accumulates
    // its resident ranks, every tenant its rank-seconds of service.
    const double dt = t_next - t;
    if (dt > 0.0) {
      // Decayed fair-share: the scheduling score halves every
      // half_life_s of farm time before this interval's service lands.
      // With no half-life the score stays bit-identical to the raw
      // integral (same additions in the same order).
      const double hl = options_.fair_share.half_life_s;
      if (hl > 0.0) {
        const double decay = std::exp2(-dt / hl);
        for (auto& [tenant, score] : tenant_score_) score *= decay;
      }
      for (auto& r : running) {
        r.progress += dt / r.stretch;
        const double add =
            static_cast<double>(r.assignment.world_size()) * dt;
        tenant_used_[r.rec->spec.tenant] += add;
        tenant_score_[r.rec->spec.tenant] += add;
      }
      for (std::size_t n = 0; n < usage_.size(); ++n) {
        usage_[n].busy_rank_s += static_cast<double>(occupancy_[n]) * dt;
      }
    }
    t = t_next;

    // Complete every job projected to finish now (iteration order is
    // admission order — deterministic tiebreak for simultaneous
    // finishes). Preempting jobs never finish — they vacate first.
    for (auto it = running.begin(); it != running.end();) {
      if (!it->preempting && it->finish_est <= t) {
        for (std::size_t k = 0; k < it->assignment.shared_nodes.size();
             ++k) {
          const auto n =
              static_cast<std::size_t>(it->assignment.shared_nodes[k]);
          free_slots[n] += it->assignment.ranks_per_node[k];
          occupancy_[n] -= it->assignment.ranks_per_node[k];
        }
        const double arrive = it->rec->arrive_s;
        {
          const std::scoped_lock lock(ss_->mu);
          auto& res = it->rec->result;
          res.state = JobState::kDone;
          res.finish_s = t;
          // Whole-job slowdown: farm residency (first launch to final
          // finish, suspended epochs included) over the uninterrupted
          // standalone makespan.
          res.stretch = res.standalone_makespan_s > 0.0
                            ? (t - res.start_s) / res.standalone_makespan_s
                            : 1.0;
          report_.completion_order.push_back(it->rec->spec.name);
          ++report_.jobs_done;
          report_.makespan_s = std::max(report_.makespan_s, t);
          report_.total_flow_s += t - arrive;
          // SLO samples (completed jobs only). Slowdown compares against
          // the job's own standalone makespan — its ideal contention-free
          // run; a zero ideal (defensive: no real job has one) records
          // the neutral 1.0 instead of dividing.
          const double turnaround = t - arrive;
          report_.wait_q.observe(res.start_s - arrive);
          report_.turnaround_q.observe(turnaround);
          report_.slowdown_q.observe(res.standalone_makespan_s > 0.0
                                         ? turnaround /
                                               res.standalone_makespan_s
                                         : 1.0);
          ss_->cv.notify_all();
        }
        journal(JournalType::kFinish, *it->rec, t);
        release_dependents(it->rec->seq, t);
        it = running.erase(it);
      } else {
        ++it;
      }
    }

    // Vacate every preempting job whose checkpoint frame is now sealed:
    // free its slots, remember how to restore it, and re-queue it.
    for (auto it = running.begin(); it != running.end();) {
      if (it->preempting && it->vacate_est <= t) {
        for (std::size_t k = 0; k < it->assignment.shared_nodes.size();
             ++k) {
          const auto n =
              static_cast<std::size_t>(it->assignment.shared_nodes[k]);
          free_slots[n] += it->assignment.ranks_per_node[k];
          occupancy_[n] -= it->assignment.ranks_per_node[k];
        }
        SuspendInfo info;
        info.vault = it->vault;
        info.ckpt = it->ckpt;
        info.resume_frame = it->preempt_frame;
        info.remaining_s = it->duration - it->vacate_progress;
        info.original = it->assignment;
        suspended_[it->rec->seq] = std::move(info);
        {
          const std::scoped_lock lock(ss_->mu);
          auto& res = it->rec->result;
          res.state = JobState::kSuspended;
          ++res.preemptions;
          res.preempt_frames.push_back(it->preempt_frame);
          if (res.preemptions == 1) ++report_.jobs_preempted;
        }
        ++preempt_events_;
        journal(JournalType::kPreempt, *it->rec, t, it->preempt_frame);
        queued.push_back(it->rec);
        it = running.erase(it);
      } else {
        ++it;
      }
    }
  }

  // Anything still queued was cancelled (admission guarantees every
  // admitted job fits an empty farm, so the queue always drains). The
  // kQueued/kSuspended branch is a safety net: no job may stay
  // non-terminal after the driver exits, or await() would deadlock — if
  // the invariant ever breaks, fail the job loudly instead.
  {
    const std::scoped_lock lock(ss_->mu);
    for (const auto& rec : jobs_) {
      if (rec->result.backfilled) ++report_.jobs_backfilled;
      if (rec->result.state == JobState::kCancelled) {
        ++report_.jobs_cancelled;
      } else if (rec->result.state == JobState::kQueued ||
                 rec->result.state == JobState::kSuspended) {
        rec->result.state = JobState::kFailed;
        rec->result.finish_s = t;
        rec->result.error =
            "farm driver exited with the job still queued (scheduler "
            "invariant violation — please report)";
        report_.completion_order.push_back(rec->spec.name);
        ++report_.jobs_failed;
      }
    }
    ss_->cv.notify_all();
  }
  for (const auto& rec : jobs_) {
    if (terminal(rec->result.state) && rec->result.state != JobState::kDone &&
        rec->result.finish_s == 0.0 &&
        rec->result.state == JobState::kCancelled) {
      journal(JournalType::kFinish, *rec, t);
    }
  }

  // The queue-depth series ends at zero by construction of the loop above
  // — except when the safety net just failed stranded jobs, or an
  // all-cancelled farm never sampled at all. Close the step series either
  // way (overwriting a same-instant sample keeps timestamps strictly
  // increasing).
  {
    auto& qd = report_.queue_depth;
    if (qd.empty() || qd.back().second != 0) {
      if (!qd.empty() && qd.back().first == t) {
        qd.back().second = 0;
      } else {
        qd.emplace_back(t, 0);
      }
    }
  }

  report_.policy = options_.policy;
  report_.nodes = usage_;
  report_.tenant_rank_s = tenant_used_;
  report_.mean_turnaround_s =
      report_.jobs_done > 0
          ? report_.total_flow_s / static_cast<double>(report_.jobs_done)
          : 0.0;

  auto& m = report_.metrics;
  m.counter("psanim_farm_jobs_submitted_total")
      .add(static_cast<double>(jobs_.size()));
  m.counter("psanim_farm_jobs_done_total")
      .add(static_cast<double>(report_.jobs_done));
  m.counter("psanim_farm_jobs_failed_total")
      .add(static_cast<double>(report_.jobs_failed));
  m.counter("psanim_farm_jobs_cancelled_total")
      .add(static_cast<double>(report_.jobs_cancelled));
  m.counter("psanim_farm_preemptions_total")
      .add(static_cast<double>(preempt_events_));
  m.counter("psanim_farm_restores_total")
      .add(static_cast<double>(restores_));
  m.counter("psanim_farm_migrations_total")
      .add(static_cast<double>(migrations_));
  m.counter("psanim_farm_backfills_total")
      .add(static_cast<double>(backfills_));
  m.counter("psanim_farm_reservations_total")
      .add(static_cast<double>(reservations_));
  m.gauge("psanim_farm_makespan_seconds").set(report_.makespan_s);
  m.counter("psanim_farm_flow_seconds_total").add(report_.total_flow_s);
  int peak = 0;
  for (const auto& u : usage_) peak = std::max(peak, u.peak_ranks);
  m.gauge("psanim_farm_peak_node_ranks").set(static_cast<double>(peak));
  // SLO quantile series (exported as _p50/_p95/_p99 gauges + sum/count in
  // the Prometheus dump). Empty on an all-cancelled farm — quantile()
  // answers 0.0, never NaN.
  m.quantiles("psanim_farm_wait_seconds").merge(report_.wait_q);
  m.quantiles("psanim_farm_turnaround_seconds").merge(report_.turnaround_q);
  m.quantiles("psanim_farm_slowdown").merge(report_.slowdown_q);
  int depth_peak = 0;
  for (const auto& [when, depth] : report_.queue_depth) {
    depth_peak = std::max(depth_peak, depth);
  }
  m.gauge("psanim_farm_queue_depth_peak")
      .set(static_cast<double>(depth_peak));
  const mp::BufferPool::Stats pool_after = mp::BufferPool::global().stats();
  m.counter("psanim_farm_buffer_acquires_total")
      .add(static_cast<double>(pool_after.acquires - pool_before.acquires));
  m.counter("psanim_farm_buffer_pool_hits_total")
      .add(static_cast<double>(pool_after.hits - pool_before.hits));
  m.counter("psanim_farm_buffer_heap_allocs_total")
      .add(static_cast<double>(pool_after.misses - pool_before.misses));
  m.counter("psanim_farm_buffer_releases_total")
      .add(static_cast<double>(pool_after.releases - pool_before.releases));
}

// --- standalone oracle ----------------------------------------------------

core::ParallelResult standalone_run(const JobSpec& spec,
                                    const Assignment& assignment,
                                    const cluster::CostModel& cost,
                                    double recv_timeout_s) {
  core::SimSettings eff = spec.settings;
  eff.obs.trace = nullptr;  // pure re-run: no shared observers, no files
  eff.obs.trace_json_path.clear();
  mp::RuntimeOptions rt;
  rt.recv_timeout_s = recv_timeout_s;
  return core::run_parallel(spec.scene, eff, assignment.sub_spec,
                            assignment.placement, cost, rt);
}

}  // namespace psanim::farm

#pragma once

// psanim::farm job journal — a persistent, versioned, append-only record
// of every scheduling decision (submit / launch / preempt / restore /
// finish), so a farm process that crashes mid-run can recover its queue:
// which jobs were pending, and — for jobs checkpointed out by preemption —
// the snapshot frame their vault can resume them from.
//
// Format, versioned like the snapshot format: a fixed header
// (magic "PSFJ", format version), then framed records
// [u32 payload_len][u32 crc32(payload)][payload]. Each append is flushed,
// so a crash leaves at most one torn record at the tail; the reader stops
// cleanly at the first *short* frame (torn tail == clean end) but fails
// loudly — like a snapshot image from another build — on a bad magic, a
// version skew, or a CRC mismatch over a complete frame: a torn tail is
// always short, so a full-length frame that fails its checksum is
// corruption, and pretending it is a clean end would hide data loss.

#include <cstdint>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "farm/job.hpp"

namespace psanim::farm {

/// Journal format magic ("PSFJ" as little-endian bytes).
inline constexpr std::uint32_t kJournalMagic = 0x4A465350u;
/// Bump on any incompatible record-layout change.
inline constexpr std::uint16_t kJournalVersion = 1;

enum class JournalType : std::uint8_t {
  kSubmit = 0,   ///< job admitted (time = its submit_time_s / think delay)
  kLaunch = 1,   ///< first launch onto slots
  kPreempt = 2,  ///< vacated its slots; `frame` is the sealed ckpt frame
  kRestore = 3,  ///< relaunched; `frame` is the resume_from frame
  kFinish = 4,   ///< terminal; `state` says done/failed/cancelled
};

std::string to_string(JournalType t);

struct JournalRecord {
  JournalType type = JournalType::kSubmit;
  int seq = 0;
  double time_s = 0.0;      ///< farm virtual time of the event
  std::uint32_t frame = 0;  ///< preempt/restore checkpoint frame, else 0
  JobState state = JobState::kQueued;
  std::uint64_t fb_hash = 0;  ///< finish(done) only
  std::string name;
  std::string tenant;
};

/// Append-only writer. Thread-safe (submit runs on the caller's thread,
/// everything else on the driver); every append is flushed to disk.
class JournalWriter {
 public:
  /// Opens (truncating) `path` and writes the header. Throws
  /// std::runtime_error when the file cannot be created.
  explicit JournalWriter(const std::string& path);

  void append(const JournalRecord& rec);

 private:
  std::mutex mu_;
  std::ofstream out_;
  std::string path_;
};

/// Read every intact record. A torn (short) tail frame ends the read
/// cleanly (crash-consistent); a missing/short header, wrong magic,
/// version skew, or CRC mismatch on a complete frame throws
/// std::runtime_error.
std::vector<JournalRecord> read_journal(const std::string& path);

/// What a restarted farm needs to rebuild its queue from a journal.
struct JournalRecovery {
  std::vector<JournalRecord> records;
  struct PendingJob {
    int seq = 0;
    std::string name;
    std::string tenant;
    /// Last journaled preempt checkpoint frame: the job's vault holds a
    /// sealed snapshot there, so a resubmission can resume_from it
    /// instead of recomputing from frame 0. Empty = restart from scratch.
    std::optional<std::uint32_t> resume_frame;
  };
  /// Jobs submitted but never journaled terminal, in submission order.
  std::vector<PendingJob> pending;
};

JournalRecovery recover_journal(const std::string& path);

}  // namespace psanim::farm

#include "farm/journal.hpp"

#include <cstring>
#include <map>
#include <span>
#include <stdexcept>

#include "ckpt/format.hpp"

namespace psanim::farm {

std::string to_string(JournalType t) {
  switch (t) {
    case JournalType::kSubmit:
      return "submit";
    case JournalType::kLaunch:
      return "launch";
    case JournalType::kPreempt:
      return "preempt";
    case JournalType::kRestore:
      return "restore";
    case JournalType::kFinish:
      return "finish";
  }
  return "?";
}

namespace {

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_f64(std::string& out, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

void put_str(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

/// Bounds-checked little-endian cursor; `ok` goes false instead of
/// throwing so a torn tail reads as a clean end-of-journal.
struct Cursor {
  const std::string& buf;
  std::size_t pos = 0;
  bool ok = true;

  bool take(void* dst, std::size_t n) {
    if (!ok || pos + n > buf.size()) {
      ok = false;
      return false;
    }
    std::memcpy(dst, buf.data() + pos, n);
    pos += n;
    return true;
  }
  std::uint8_t u8() {
    std::uint8_t v = 0;
    take(&v, 1);
    return v;
  }
  std::uint32_t u32() {
    std::uint8_t b[4] = {};
    take(b, 4);
    return static_cast<std::uint32_t>(b[0]) |
           (static_cast<std::uint32_t>(b[1]) << 8) |
           (static_cast<std::uint32_t>(b[2]) << 16) |
           (static_cast<std::uint32_t>(b[3]) << 24);
  }
  std::uint64_t u64() {
    const std::uint64_t lo = u32();
    const std::uint64_t hi = u32();
    return lo | (hi << 32);
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    if (!ok || pos + n > buf.size()) {
      ok = false;
      return {};
    }
    std::string s(buf, pos, n);
    pos += n;
    return s;
  }
};

std::string encode(const JournalRecord& rec) {
  std::string p;
  p.push_back(static_cast<char>(rec.type));
  put_u32(p, static_cast<std::uint32_t>(rec.seq));
  put_f64(p, rec.time_s);
  put_u32(p, rec.frame);
  p.push_back(static_cast<char>(rec.state));
  put_u64(p, rec.fb_hash);
  put_str(p, rec.name);
  put_str(p, rec.tenant);
  return p;
}

std::uint32_t payload_crc(const std::string& p) {
  return ckpt::crc32(
      std::span(reinterpret_cast<const std::byte*>(p.data()), p.size()));
}

}  // namespace

JournalWriter::JournalWriter(const std::string& path) : path_(path) {
  out_.open(path, std::ios::binary | std::ios::trunc);
  if (!out_) {
    throw std::runtime_error("JournalWriter: cannot create '" + path + "'");
  }
  std::string hdr;
  put_u32(hdr, kJournalMagic);
  put_u16(hdr, kJournalVersion);
  out_.write(hdr.data(), static_cast<std::streamsize>(hdr.size()));
  out_.flush();
}

void JournalWriter::append(const JournalRecord& rec) {
  const std::string p = encode(rec);
  std::string frame;
  put_u32(frame, static_cast<std::uint32_t>(p.size()));
  put_u32(frame, payload_crc(p));
  frame.append(p);
  const std::scoped_lock lock(mu_);
  out_.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  out_.flush();
  if (!out_) {
    throw std::runtime_error("JournalWriter: write to '" + path_ +
                             "' failed");
  }
}

std::vector<JournalRecord> read_journal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("read_journal: cannot open '" + path + "'");
  }
  std::string buf((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  Cursor c{buf};
  const std::uint32_t magic = c.u32();
  std::uint8_t vb[2] = {};
  c.take(vb, 2);
  if (!c.ok) {
    throw std::runtime_error("read_journal: '" + path +
                             "' is too short to hold a journal header");
  }
  if (magic != kJournalMagic) {
    throw std::runtime_error("read_journal: '" + path +
                             "' is not a farm journal (bad magic)");
  }
  const std::uint16_t version =
      static_cast<std::uint16_t>(vb[0] | (vb[1] << 8));
  if (version != kJournalVersion) {
    throw std::runtime_error(
        "read_journal: '" + path + "' has journal version " +
        std::to_string(version) + ", this build reads version " +
        std::to_string(kJournalVersion));
  }

  std::vector<JournalRecord> out;
  for (;;) {
    const std::uint32_t len = c.u32();
    const std::uint32_t crc = c.u32();
    if (!c.ok || c.pos + len > buf.size()) break;  // torn tail: clean end
    const std::string payload(buf, c.pos, len);
    if (payload_crc(payload) != crc) {
      // The frame is *complete* — every byte the length field claims is
      // present — yet the checksum disagrees. That is corruption (a torn
      // tail is always short), and silently dropping the rest of the
      // journal would turn data loss into a clean-looking recovery.
      throw std::runtime_error(
          "read_journal: '" + path + "' record " +
          std::to_string(out.size()) +
          " has a CRC mismatch on a complete frame — the journal is "
          "corrupt past this point, not torn");
    }
    c.pos += len;
    Cursor pc{payload};
    JournalRecord rec;
    rec.type = static_cast<JournalType>(pc.u8());
    rec.seq = static_cast<int>(pc.u32());
    rec.time_s = pc.f64();
    rec.frame = pc.u32();
    rec.state = static_cast<JobState>(pc.u8());
    rec.fb_hash = pc.u64();
    rec.name = pc.str();
    rec.tenant = pc.str();
    if (!pc.ok) {
      // CRC passed but the payload doesn't decode: a framing/layout bug,
      // not a torn tail — fail as loudly as a version skew would.
      throw std::runtime_error(
          "read_journal: '" + path + "' record " +
          std::to_string(out.size()) +
          " passed its CRC but does not decode as a version " +
          std::to_string(kJournalVersion) + " record");
    }
    out.push_back(std::move(rec));
  }
  return out;
}

JournalRecovery recover_journal(const std::string& path) {
  JournalRecovery rc;
  rc.records = read_journal(path);
  std::map<int, JournalRecovery::PendingJob> pending;
  for (const auto& r : rc.records) {
    switch (r.type) {
      case JournalType::kSubmit: {
        auto& p = pending[r.seq];
        p.seq = r.seq;
        p.name = r.name;
        p.tenant = r.tenant;
        break;
      }
      case JournalType::kPreempt: {
        auto it = pending.find(r.seq);
        if (it != pending.end()) it->second.resume_frame = r.frame;
        break;
      }
      case JournalType::kFinish:
        pending.erase(r.seq);
        break;
      case JournalType::kLaunch:
      case JournalType::kRestore:
        break;
    }
  }
  rc.pending.reserve(pending.size());
  for (auto& [seq, p] : pending) rc.pending.push_back(std::move(p));
  return rc;
}

}  // namespace psanim::farm

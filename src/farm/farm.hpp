#pragma once

// psanim::farm — a multi-job simulation scheduler over one shared virtual
// cluster.
//
// The paper runs one animation on the whole cluster; a production service
// runs many at once. Farm accepts N independent jobs (each its own scene +
// settings), admission-checks them against the shared ClusterSpec, and
// schedules them with a deterministic work-conserving policy (FIFO or
// shortest-virtual-job-first, both with backfill). Every job executes as
// its own mp::Runtime — real threads, instance-isolated mailboxes and
// clocks — over the CPU slots it was granted, and co-scheduled jobs run
// concurrently in wall-clock too.
//
// Two-level virtual time. Each job's *internal* virtual time is exactly
// what a standalone run on its granted sub-cluster would measure — the
// farm never alters a job's inputs, so results (framebuffer, particles,
// makespan) are bit-identical to standalone. The *farm-level* timeline is
// a discrete-event simulation over job arrivals and completions: every
// shared node carries a virtual clock tracking resident ranks, and a job
// co-scheduled with neighbors on an SMP node drains its work slower by the
// bus-sharing factor its standalone run did not have to pay
// (cost.smp_contention, the same constant the in-job rate model uses).
// A job's farm completion time therefore stretches under contention while
// its simulation output does not — contention is modeled, not ignored,
// and determinism survives (the DES depends only on virtual quantities,
// never on wall-clock interleaving).
//
// Capacity is never oversubscribed: a job starts only when every granted
// node has a free CPU slot per rank, so the only cross-job slowdown is the
// SMP bus-sharing penalty of co-residency within a node's slot budget.
//
// Preemption (kPriority / kFairShare). The vault is the preemption
// mechanism: to evict a running job the driver picks the earliest
// checkpoint frame the job has not yet passed, lets it drain there, seals
// that snapshot in the job's per-job vault, frees its slots
// (kPreempting -> kSuspended), and later relaunches it with
// `resume_from = that frame` — on any free nodes whose types match the
// original grant, not necessarily the same ones. Because the resumed run
// reuses the original sub_spec/placement verbatim (only the shared-node
// identities change), its inputs are literally identical and the restored
// animation is bit-identical to the uninterrupted run — the same guarantee
// the Replayer proves for crash recovery, now exercised across nodes.
// There is deliberately no in-memory freeze path; see DESIGN.md.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "ckpt/policy.hpp"
#include "ckpt/vault.hpp"
#include "cluster/cost_model.hpp"
#include "farm/job.hpp"
#include "farm/journal.hpp"
#include "mp/runtime.hpp"
#include "obs/metrics.hpp"

namespace psanim::farm {

struct FarmOptions {
  Policy policy = Policy::kFifo;
  /// Cost model forwarded to every job's run (and the source of the
  /// cross-job SMP contention factor).
  cluster::CostModel cost;
  /// Wall-clock receive timeout forwarded to every job's runtime.
  double recv_timeout_s = 60.0;
  /// When set, every job gets a per-job Chrome trace written to
  /// `<obs_dir>/<job name>.trace.json` plus an in-process obs::analysis
  /// report (critical path / straggler attribution) at
  /// `<obs_dir>/<job name>.analysis.json`, with rank names namespaced by
  /// job ("jobname/manager", ...). Jobs that configured their own obs
  /// settings keep them.
  std::string obs_dir;
  /// Cap on jobs launched concurrently in wall-clock per scheduling event
  /// (0 = no cap). Virtual-time results are identical either way.
  int max_parallel_launches = 0;
  /// Execution core forwarded to every job's runtime (kDefault resolves
  /// through PSANIM_EXEC_MODE, exactly like a standalone run).
  mp::ExecMode exec_mode = mp::ExecMode::kDefault;
  /// Default topology platform (platform::parse form) for jobs whose
  /// settings leave `platform` empty — the farm-wide fabric every tenant
  /// runs on unless a job selects its own. Written into the job's
  /// effective settings before launch, so standalone_run on the recorded
  /// assignment still reproduces the job bit-for-bit only when given the
  /// same settings. Empty = legacy flat model.
  std::string platform;
  /// Fiber scheduler workers per concurrently-launched job. <= 0 splits
  /// the hardware budget evenly across the wall-clock batch (at least one
  /// each), so a farm draining hundreds of jobs shares one machine's worth
  /// of worker threads instead of spawning a full-size pool per job.
  /// Worker counts never change virtual-time results. Ignored by kThreads.
  int workers_per_job = 0;
  /// Checkpoint cadence (frames) imposed on jobs launched under a
  /// preemptive policy whose own settings leave checkpointing off — the
  /// grid of candidate vacate points. <= 0 disables preemption entirely
  /// (kPriority/kFairShare then order the queue but never evict). Jobs
  /// with their own ckpt policy keep it.
  int preempt_interval = 8;
  /// A job checkpointed out this many times is never evicted again
  /// (starvation guard for low-priority tenants under hostile load).
  int max_preemptions_per_job = 4;
  /// EASY backfill (preemptive policies only). When the head of the
  /// policy order is blocked, the driver computes its reservation — the
  /// earliest instant it fits, from the DES's own per-job finish
  /// estimates taken at worst-case contention stretch (upper bounds) —
  /// and starts later queued jobs that provably cannot delay it: either
  /// the reservation stays feasible even if the backfilled job never
  /// releases its slots, or the job's calibrated runtime upper bound ends
  /// before the reserved start needs the slots. Off = PR-9 strict
  /// head-of-line (no job jumps a blocked head).
  bool easy_backfill = false;
  /// How mark_victims ranks eligible victims (see VictimSelection).
  VictimSelection victim_selection = VictimSelection::kLeastDeserving;
  struct FairShareOptions {
    /// Exponential half-life (farm virtual seconds) applied to the
    /// per-tenant service integral that kFairShare orders and selects
    /// victims by — yesterday's hogging decays instead of starving a
    /// tenant forever. <= 0 keeps the full-history integral (PR-9
    /// behavior). Report::tenant_rank_s always stays the raw integral.
    double half_life_s = 0.0;
  };
  FairShareOptions fair_share;
  /// When set, every scheduling decision (submit/launch/preempt/restore/
  /// finish) is appended — versioned, CRC-framed, flushed per record — to
  /// this file, so a crashed farm process can rebuild its queue with
  /// recover_journal(). Empty = no journal.
  std::string journal_path;
  /// Keep each job's full ParallelResult payload in JobResult::result.
  /// Off, only the scalars survive (fb hash, makespan, SLO inputs) — a
  /// 10k-job stress run would otherwise hold every framebuffer at once.
  bool keep_results = true;
};

/// Per-shared-node usage over the whole farm run, fed by the shared node
/// clocks.
struct NodeUsage {
  int peak_ranks = 0;       ///< max resident ranks at any farm-virtual instant
  double busy_rank_s = 0.0; ///< integral of resident ranks over farm time
};

struct Report {
  Policy policy = Policy::kFifo;
  double makespan_s = 0.0;        ///< last job finish (farm virtual time)
  double total_flow_s = 0.0;      ///< sum over jobs of finish - submit
  double mean_turnaround_s = 0.0; ///< total_flow / completed jobs
  std::size_t jobs_done = 0;
  std::size_t jobs_failed = 0;
  std::size_t jobs_cancelled = 0;
  /// Jobs evicted at least once (preemption *events* are the
  /// psanim_farm_preemptions_total counter in `metrics`).
  std::size_t jobs_preempted = 0;
  /// Jobs started past a blocked head under EASY backfill.
  std::size_t jobs_backfilled = 0;
  /// Job names in completion order — deterministic for a fixed submission
  /// set (ordered by finish time, submission sequence as tiebreak).
  std::vector<std::string> completion_order;
  std::vector<NodeUsage> nodes;  ///< indexed by shared-spec node
  /// Scheduler SLO distributions over *completed* jobs, exact-sample
  /// (obs::Quantiles): wait = start - submit, turnaround = finish -
  /// submit, slowdown = turnaround / the job's standalone makespan (its
  /// ideal contention-free run; 1.0 recorded when the ideal is unknown).
  /// Empty when jobs_done == 0 — quantile() then answers 0.0, never NaN.
  obs::Quantiles wait_q;
  obs::Quantiles turnaround_q;
  obs::Quantiles slowdown_q;
  /// Queued-job count breakpoints (farm time, depth) — a step series
  /// sampled after every scheduling pass settles (suspended jobs count:
  /// they are waiting for slots too); deterministic, and always ends at
  /// depth 0 when the driver exits.
  std::vector<std::pair<double, int>> queue_depth;
  /// Per-tenant service: integral of resident ranks over farm time — the
  /// quantity kFairShare equalizes. Keyed by JobSpec::tenant.
  std::map<std::string, double> tenant_rank_s;
  /// Farm-level aggregates: job counts, makespan/flow, per-run buffer-pool
  /// deltas (sampled farm-wide — per-job pool metrics are disabled because
  /// the pool is process-global; see ObsSettings::pool_metrics).
  obs::MetricsRegistry metrics;
};

namespace detail {
struct JobRecord;
struct SharedState;
}  // namespace detail

/// Async handle returned by Farm::submit. Valid (and non-blocking to
/// query) even after the Farm is destroyed.
class JobHandle {
 public:
  /// An empty handle referring to no job; every accessor below throws
  /// std::logic_error until a real handle (from Farm::submit) is assigned.
  JobHandle() = default;

  /// True iff this handle refers to a job (came from Farm::submit).
  bool valid() const noexcept { return rec_ != nullptr; }

  const std::string& name() const;
  /// Current state; never blocks.
  JobState poll() const;
  /// Block until the job reaches a terminal state; returns the result.
  /// The reference stays valid as long as any handle to this job lives.
  const JobResult& await() const;
  /// Cancel a job that is still queued. Returns true if this call
  /// cancelled it; false if it already started, finished or was cancelled.
  /// Running jobs are never aborted — their slots drain normally.
  bool cancel();

 private:
  friend class Farm;
  explicit JobHandle(std::shared_ptr<detail::JobRecord> rec)
      : rec_(std::move(rec)) {}
  std::shared_ptr<detail::JobRecord> rec_;
};

/// The scheduler. Lifecycle: construct over a shared spec, submit jobs
/// (admission-checked), start() to seal the queue and launch the driver,
/// await handles or wait(), then read report(). run() does the last three
/// in one call.
class Farm {
 public:
  explicit Farm(cluster::ClusterSpec shared, FarmOptions options = {});
  ~Farm();

  Farm(const Farm&) = delete;
  Farm& operator=(const Farm&) = delete;

  /// Admission controller. Rejects (throws std::invalid_argument, with an
  /// actionable message) jobs whose settings fail SimSettings::validate(),
  /// whose world (ncalc + 2) exceeds the shared cluster's total CPU slots,
  /// that share a ckpt vault with an already-admitted job (checkpoints are
  /// per-job so one job's recovery cannot stall a neighbor), or that
  /// arrive after start() sealed the queue.
  JobHandle submit(JobSpec spec);

  /// Seal the queue and launch the driver thread. Idempotent submit-side:
  /// further submits throw.
  void start();

  /// Block until every admitted job is terminal. Implies start().
  void wait();

  /// start() + wait() + report().
  Report run();

  /// Live queue recovery: boot a new Farm from a crashed farm's journal.
  /// `recover_journal(journal_path)` names the pending jobs (by original
  /// submission sequence) and, for jobs that were checkpointed out, their
  /// resume frames; the journal records scheduling, not scenes, so the
  /// caller re-supplies the original submission list in `specs` (indexed
  /// by original seq, consumed — scenes are move-only) and, for each
  /// suspended job, the vault holding its
  /// sealed snapshots in `vaults` (keyed by original seq — the per-job
  /// vault the crashed farm was given via SimSettings::ckpt_vault).
  /// Pending jobs are resubmitted in original order — suspended ones with
  /// resume_from pinned to their journaled checkpoint frame, so they
  /// recompute only the remainder and stay bit-identical to the
  /// uninterrupted run. Closed-loop after_seq edges are remapped; an edge
  /// to an already-terminal predecessor becomes an immediate arrival
  /// (think delay from time 0). Throws std::invalid_argument when a
  /// pending seq has no spec, or a suspended job's vault is missing or
  /// holds no sealed snapshot at its resume frame. The returned farm is
  /// not yet started; submit more jobs or run() it.
  static std::unique_ptr<Farm> recover(
      const std::string& journal_path, cluster::ClusterSpec shared,
      FarmOptions options, std::vector<JobSpec> specs,
      const std::map<int, std::shared_ptr<ckpt::Vault>>& vaults);

  /// Aggregate report; valid after wait() returned.
  const Report& report() const;

  /// One handle per admitted job, in submission order — how a caller who
  /// did not submit the jobs itself (a recover()ed farm) reaches results.
  std::vector<JobHandle> handles() const;

  const cluster::ClusterSpec& spec() const { return shared_; }
  const FarmOptions& options() const { return options_; }

 private:
  struct Running;
  struct LaunchReq;

  void drive();  // driver thread body
  /// Returns true when slots the scheduling pass budgeted came back free
  /// (a launch failed or a cancel won the race) — the driver must re-run
  /// the pass at the same instant before advancing time.
  bool launch_batch(std::vector<LaunchReq> batch, double now,
                    std::vector<Running>& running,
                    std::vector<int>& free_slots);
  void recompute_stretch(std::vector<Running>& running) const;
  /// Mark enough lower-ranked running jobs kPreempting that, once they
  /// vacate, `blocked` fits. Never exceeds max_preemptions_per_job.
  void mark_victims(const std::shared_ptr<detail::JobRecord>& blocked,
                    std::vector<Running>& running, int total_free, double now);
  void release_dependents(int seq, double at);
  void journal(JournalType type, const detail::JobRecord& rec, double time_s,
               std::uint32_t frame = 0);

  cluster::ClusterSpec shared_;
  FarmOptions options_;
  int total_slots_ = 0;
  bool preemptive_ = false;  ///< policy preempts and preempt_interval > 0

  std::shared_ptr<detail::SharedState> ss_;
  std::vector<std::shared_ptr<detail::JobRecord>> jobs_;
  bool started_ = false;               // guarded by ss_->mu
  std::atomic<bool> waited_{false};
  std::mutex lifecycle_mu_;  ///< serializes driver_ launch/join across threads
  std::thread driver_;
  Report report_;
  std::unique_ptr<JournalWriter> journal_;

  // Everything below is driver-owned state (farm virtual time): occupancy
  // by shared node (Report::nodes derives from it), per-tenant service,
  // suspended-job restore info, closed-loop arrival releases, and the
  // obs-file names already handed out (collision suffixing).
  std::vector<int> occupancy_;
  std::vector<NodeUsage> usage_;
  std::map<std::string, double> tenant_used_;
  /// kFairShare's scheduling view of tenant_used_: identical when
  /// fair_share.half_life_s <= 0, exponentially decayed otherwise.
  std::map<std::string, double> tenant_score_;
  /// Max observed (segment duration / est) over fresh launches — the
  /// calibration that turns a tenant estimate into a runtime upper bound
  /// for EASY cond-1 backfill. 0 until the first launch lands.
  double est_ratio_max_ = 0.0;
  int backfills_ = 0;     ///< backfilled launch events
  int reservations_ = 0;  ///< jobs that ever pinned a reservation
  struct SuspendInfo {
    /// Farm-owned, or a non-owning alias of the tenant's own vault.
    std::shared_ptr<ckpt::Vault> vault;
    ckpt::CkptPolicy ckpt;  ///< effective policy at launch
    std::uint32_t resume_frame = 0;
    /// Virtual work left past the vacate point — exact, so a suspended
    /// backfill candidate needs no estimate calibration.
    double remaining_s = 0.0;
    Assignment original;
  };
  std::map<int, SuspendInfo> suspended_;
  int preempt_events_ = 0;  ///< vacates (a job may contribute several)
  int restores_ = 0;
  int migrations_ = 0;  ///< restores onto a different shared-node set
  std::map<int, std::vector<std::shared_ptr<detail::JobRecord>>> dependents_;
  std::vector<std::pair<double, std::shared_ptr<detail::JobRecord>>>
      arrivals_;  ///< min-heap by (time, seq)
  std::set<std::string> used_obs_names_;
  /// Vault aliases handed to recover()ed jobs — kept alive for the farm's
  /// lifetime so spec.settings.ckpt_vault raw pointers stay valid even if
  /// the caller drops its map.
  std::vector<std::shared_ptr<ckpt::Vault>> recovered_vaults_;
};

/// Re-run a finished job exactly as the farm ran it, outside the farm:
/// same sub-cluster, same placement, same settings. The returned result is
/// bit-identical to JobResult::result — the demo and the property tests
/// use this as the standalone oracle.
core::ParallelResult standalone_run(const JobSpec& spec,
                                    const Assignment& assignment,
                                    const cluster::CostModel& cost = {},
                                    double recv_timeout_s = 60.0);

}  // namespace psanim::farm

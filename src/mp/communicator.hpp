#pragma once

// Endpoint: one model process's handle into the message-passing runtime.
//
// Provides MPI-flavored blocking point-to-point operations plus virtual
// time accounting. Determinism note: wildcard receives (`src = kAny`) pick
// the queued match with the smallest virtual arrival time, but a message
// that has not been *pushed* yet cannot be picked — so protocol code whose
// timing matters receives from known sender sets (`recv_each`,
// per-source loops), which is how the Fig. 2 protocol is specified anyway
// (every phase knows exactly who talks to whom).

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "mp/mailbox.hpp"
#include "mp/message.hpp"
#include "mp/virtual_clock.hpp"

namespace psanim::mp {

/// Cost of moving one message, as modeled by the cluster layer.
struct MsgCost {
  double send_cpu_s = 0.0;  ///< CPU time charged to the sender
  double wire_s = 0.0;      ///< latency + bytes/bandwidth on the link
  double recv_cpu_s = 0.0;  ///< CPU time charged to the receiver
};

/// Maps (src rank, dst rank, wire bytes) to a message cost. Supplied by
/// the cluster model; tests may use zero_cost_fn().
using LinkCostFn = std::function<MsgCost(int, int, std::size_t)>;

/// A cost function that charges nothing (pure functional testing).
LinkCostFn zero_cost_fn();

/// Per-endpoint traffic counters, used by the exchange-volume experiments
/// (§5.1 / §5.2 report KB exchanged per frame).
struct TrafficStats {
  std::uint64_t msgs_sent = 0;
  std::uint64_t bytes_sent = 0;  ///< wire bytes including envelope
  std::uint64_t msgs_recv = 0;
  std::uint64_t bytes_recv = 0;

  TrafficStats& operator+=(const TrafficStats& o) {
    msgs_sent += o.msgs_sent;
    bytes_sent += o.bytes_sent;
    msgs_recv += o.msgs_recv;
    bytes_recv += o.bytes_recv;
    return *this;
  }
};

class Runtime;

class Endpoint {
 public:
  Endpoint(Runtime& rt, int rank);

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  int rank() const { return rank_; }
  int world_size() const;

  /// Blocking-send semantics: the payload is enqueued at the destination
  /// with a virtual arrival stamp; the sender is charged the send CPU
  /// overhead. (Buffered-send semantics, like MPI_Send on small/medium
  /// messages over an eager protocol.)
  void send(int dst, int tag, std::vector<std::byte> payload);
  void send(int dst, int tag, Writer&& w) { send(dst, tag, w.take()); }
  /// Zero-payload message (markers like end-of-transmission).
  void send_empty(int dst, int tag) {
    send(dst, tag, std::vector<std::byte>{});
  }

  /// Blocking receive; src/tag may be kAny. Advances the clock to the
  /// message's arrival and charges receive overhead.
  Message recv(int src = kAny, int tag = kAny);

  /// recv with a per-call wall-clock deadline; `timeout_s <= 0` inherits
  /// RuntimeOptions::recv_timeout_s. Protocol phases use this so a wedged
  /// peer fails the phase in seconds.
  Message recv_within(int src, int tag, double timeout_s);

  /// Receive exactly one message from every rank in `sources`, in the
  /// deterministic order given. Clock ends at
  /// max(arrivals) + sum(recv overheads) regardless of wall-clock order.
  std::vector<Message> recv_each(std::span<const int> sources, int tag);

  /// Non-blocking probe for a queued matching message.
  bool probe(int src = kAny, int tag = kAny) const;

  /// Virtual-time access.
  VirtualClock& clock() { return clock_; }
  const VirtualClock& clock() const { return clock_; }
  /// Convenience: charge modeled computation. A fault hook may scale the
  /// charge (per-rank compute slowdown).
  void charge(double seconds);

  /// Charge modeled storage I/O (checkpoint vault store/fetch under a
  /// platform disk model). Lands in the comm bucket and is deliberately
  /// not scaled by fault compute factors — a slow CPU does not slow DMA.
  void charge_io(double seconds) { clock_.charge_comm(seconds); }

  /// Frame number stamped onto fault-hook callbacks so injected faults
  /// land in the event log against the right frame.
  void set_trace_frame(std::uint32_t frame) { trace_frame_ = frame; }
  std::uint32_t trace_frame() const { return trace_frame_; }

  const TrafficStats& traffic() const { return traffic_; }
  void reset_traffic() { traffic_ = TrafficStats{}; }

  /// Rank respawn bookkeeping: a role that dies and is re-seeded from a
  /// checkpoint on this endpoint's thread records it here; surfaced in
  /// ProcessResult::restarts.
  void note_restart() { ++restarts_; }
  std::uint32_t restarts() const { return restarts_; }

  /// Sequence number for collective operations; must advance identically
  /// on all ranks (collectives are called in the same order everywhere).
  int next_collective_tag();

 private:
  Runtime& rt_;
  int rank_;
  VirtualClock clock_;
  TrafficStats traffic_;
  int collective_seq_ = 0;
  std::uint32_t trace_frame_ = 0;
  std::uint32_t restarts_ = 0;
};

}  // namespace psanim::mp

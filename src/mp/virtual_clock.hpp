#pragma once

// Per-process virtual clock.
//
// psanim executes the paper's protocol with real threads but measures it
// in *virtual* time: compute work and message costs advance each process's
// clock deterministically, so the simulated makespan of a run is identical
// on any host — including the single-core container this reproduction was
// developed in — and across thread schedules.

namespace psanim::mp {

/// Accumulates a process's virtual "now" plus a breakdown of where the
/// time went (compute, communication CPU overhead, blocked waiting).
class VirtualClock {
 public:
  double now() const { return now_; }

  /// Advance by `s` seconds of modeled computation.
  void charge_compute(double s) {
    now_ += s;
    compute_s_ += s;
  }

  /// Advance by `s` seconds of communication CPU overhead (serialization,
  /// protocol stack).
  void charge_comm(double s) {
    now_ += s;
    comm_s_ += s;
  }

  /// Jump forward to absolute time `t` (message arrival, barrier release).
  /// The gap is accounted as blocked/wait time. No-op if `t` is in the
  /// past — virtual clocks never run backwards.
  void advance_to(double t) {
    if (t > now_) {
      wait_s_ += t - now_;
      now_ = t;
    }
  }

  double compute_seconds() const { return compute_s_; }
  double comm_seconds() const { return comm_s_; }
  double wait_seconds() const { return wait_s_; }

  void reset() { *this = VirtualClock{}; }

 private:
  double now_ = 0.0;
  double compute_s_ = 0.0;
  double comm_s_ = 0.0;
  double wait_s_ = 0.0;
};

}  // namespace psanim::mp

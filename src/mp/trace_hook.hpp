#pragma once

// Message-trace hook: the seam through which the observability subsystem
// watches the message-passing substrate without the substrate knowing about
// traces (same pattern as FaultHook). The runtime notifies an optional hook
// once per logical send (after the arrival stamp is final — retransmissions
// and fault delays already folded in) and once per consumed message on the
// receive side; flagged duplicate copies are invisible to the hook, so every
// reported recv pairs with exactly one reported send via the sequence id.
//
// Determinism contract: implementations mutate only state owned by the
// calling rank's thread (send events fire on the sender, recv events on the
// receiver).

#include <cstddef>
#include <cstdint>

namespace psanim::mp {

class TraceHook {
 public:
  virtual ~TraceHook() = default;

  /// A logical message departed `src` for `dst`. `seq` is the runtime-wide
  /// message sequence id (the flow pairing key), `depart_s`/`arrive_s` its
  /// final virtual timestamps, `frame` the sender's current trace frame.
  virtual void on_send(int src, int dst, int tag, std::uint64_t seq,
                       std::size_t wire_bytes, double depart_s,
                       double arrive_s, std::uint32_t frame) = 0;

  /// `rank` consumed a (non-duplicate) message from `src`. Everything
  /// passed here is virtual-time state — mailbox depth at pop time is
  /// deliberately not exposed, because it reflects how far ahead other OS
  /// threads happen to have run and would leak host-schedule nondeterminism
  /// into otherwise reproducible traces.
  virtual void on_recv(int rank, int src, int tag, std::uint64_t seq,
                       std::size_t wire_bytes, double arrive_s,
                       std::uint32_t frame) = 0;
};

}  // namespace psanim::mp

#pragma once

// Size-classed recycling pool for message payload buffers.
//
// Every payload that travels through the runtime is backed by a
// `std::vector<std::byte>` drawn from this pool and returned to it when the
// owning `Payload` dies. Buffers are binned by power-of-two capacity, so a
// steady-state frame — whose message sizes repeat frame after frame — is
// served entirely from the free lists and performs zero heap allocations on
// the message path. `Stats` counts hits and misses; a miss is exactly one
// heap allocation, which makes the pool the measurement point for the
// wall-clock bench suite's allocation guard.
//
// The pool is process-global and thread-safe (one mutex; the critical
// section is a couple of pointer moves). It deliberately lives in mp with
// no obs dependency — `core::run_parallel` exports the stats deltas into
// `obs::MetricsRegistry` counters after a run.

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace psanim::mp {

class BufferPool {
 public:
  struct Stats {
    std::uint64_t acquires = 0;  ///< total acquire() calls
    std::uint64_t hits = 0;      ///< served from a free list
    std::uint64_t misses = 0;    ///< heap allocations (acquires - hits)
    std::uint64_t releases = 0;  ///< buffers handed back
    std::uint64_t dropped = 0;   ///< released buffers freed (cap/oversize)
  };

  /// The process-wide pool used by Payload/Writer.
  static BufferPool& global();

  /// An empty vector with capacity >= min_capacity. Pool-served when a
  /// buffer of the right size class is free, heap-allocated otherwise.
  std::vector<std::byte> acquire(std::size_t min_capacity);

  /// Hand a buffer back for reuse. Cleared but capacity kept.
  void release(std::vector<std::byte> buf);

  /// Grow `buf` to capacity >= min_capacity preserving contents, sourcing
  /// the replacement from the pool and recycling the old storage.
  void grow(std::vector<std::byte>& buf, std::size_t min_capacity);

  Stats stats() const;
  void reset_stats();

  /// Free every cached buffer (stats untouched). Used by tests/benches to
  /// start from a cold pool.
  void trim();

  /// Number of buffers currently cached across all size classes.
  std::size_t cached_buffers() const;

  /// Disabling turns acquire/release into plain allocate/free so benches
  /// can measure the unpooled baseline in the same process. Also settable
  /// via the PSANIM_DISABLE_BUFFER_POOL environment variable (any
  /// non-empty value other than "0").
  void set_enabled(bool on);
  bool enabled() const;

  BufferPool();
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

 private:
  // Capacities are rounded up to powers of two between 2^kMinClassBits and
  // 2^kMaxClassBits; larger requests bypass the pool entirely.
  static constexpr std::size_t kMinClassBits = 6;   // 64 B
  static constexpr std::size_t kMaxClassBits = 24;  // 16 MiB
  static constexpr std::size_t kClasses = kMaxClassBits - kMinClassBits + 1;
  static constexpr std::size_t kMaxPerClass = 64;

  static std::size_t class_of(std::size_t capacity);

  mutable std::mutex mu_;
  std::vector<std::vector<std::byte>> free_[kClasses];
  Stats stats_;
  bool enabled_ = true;
};

}  // namespace psanim::mp

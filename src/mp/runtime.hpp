#pragma once

// Runtime: spawns one thread per model process and joins them all
// (CP.25-style scoped joining — run() does not return while any process
// thread lives). Exceptions thrown by process bodies are captured and the
// first one (by rank) is rethrown to the caller.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "mp/communicator.hpp"
#include "mp/mailbox.hpp"

namespace psanim::mp {

/// Final state of one process after a run.
struct ProcessResult {
  int rank = 0;
  double finish_time = 0.0;  ///< virtual clock at body return
  double compute_s = 0.0;
  double comm_s = 0.0;
  double wait_s = 0.0;
  /// Times this rank's role died and was respawned from a checkpoint.
  std::uint32_t restarts = 0;
  TrafficStats traffic;
};

class FaultHook;
class TraceHook;

struct RuntimeOptions {
  /// Wall-clock receive timeout; protocol deadlocks fail loudly instead of
  /// hanging forever. Tests lower this.
  double recv_timeout_s = 60.0;
  /// Optional delivery/compute fault hook (not owned; must outlive the
  /// runtime). Null means a perfectly reliable cluster.
  FaultHook* fault = nullptr;
  /// Optional message-trace hook (not owned; must outlive the runtime).
  /// Null means no per-message observability.
  TraceHook* trace = nullptr;
};

class Runtime {
 public:
  Runtime(int world_size, LinkCostFn cost_fn,
          RuntimeOptions options = RuntimeOptions{});

  int world_size() const { return world_size_; }
  const RuntimeOptions& options() const { return options_; }

  /// Execute `body(endpoint)` on every rank concurrently; blocks until all
  /// ranks return, then rethrows the lowest-rank exception if any.
  /// Returns per-rank results ordered by rank.
  std::vector<ProcessResult> run(
      const std::function<void(Endpoint&)>& body);

  // --- used by Endpoint ---
  Mailbox& mailbox(int rank) { return *mailboxes_.at(static_cast<std::size_t>(rank)); }
  MsgCost message_cost(int src, int dst, std::size_t wire_bytes) const {
    return cost_fn_(src, dst, wire_bytes);
  }
  std::uint64_t next_seq() { return seq_.fetch_add(1, std::memory_order_relaxed); }

  /// Per-(src, dst) last virtual arrival, enforcing MPI's non-overtaking
  /// guarantee: a later message on the same ordered pair never arrives
  /// before an earlier one, even if it is much smaller. Only the src
  /// rank's thread touches row src.
  double& last_arrival(int src, int dst) {
    return last_arrival_[static_cast<std::size_t>(src) *
                             static_cast<std::size_t>(world_size_) +
                         static_cast<std::size_t>(dst)];
  }

 private:
  int world_size_;
  LinkCostFn cost_fn_;
  RuntimeOptions options_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<double> last_arrival_;
  std::atomic<std::uint64_t> seq_{0};
};

}  // namespace psanim::mp

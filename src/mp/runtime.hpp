#pragma once

// Runtime: executes one body per model rank and joins them all — run()
// does not return while any rank lives. Exceptions thrown by process
// bodies are captured and the first one (by rank) is rethrown to the
// caller.
//
// Two execution cores share that contract:
//
//  * kFibers (default) — a cooperative scheduler: a small pool of worker
//    threads (RuntimeOptions::workers, default hardware concurrency)
//    drives every rank as a suspended stackful fiber. Blocking receives
//    yield into the scheduler instead of parking an OS thread, so worlds
//    of thousands of ranks run on a laptop without a kernel
//    context-switch storm. See mp/fiber.hpp for the determinism and
//    deadlock-detection story.
//  * kThreads — the original thread-per-rank core, kept as a
//    differential-testing oracle (the golden corpus is checked under
//    both). It refuses worlds beyond kMaxThreadRanks, where spawning one
//    OS thread per rank stops being viable.
//
// Results are bit-identical between the two cores and across worker
// counts: everything observable is virtual-time arithmetic over the
// mailbox's (arrive_time, src, seq) order, which no scheduler choice can
// perturb.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "mp/communicator.hpp"
#include "mp/mailbox.hpp"

namespace psanim::mp {

/// Final state of one process after a run.
struct ProcessResult {
  int rank = 0;
  double finish_time = 0.0;  ///< virtual clock at body return
  double compute_s = 0.0;
  double comm_s = 0.0;
  double wait_s = 0.0;
  /// Times this rank's role died and was respawned from a checkpoint.
  std::uint32_t restarts = 0;
  TrafficStats traffic;
};

class ContentionHook;
class FaultHook;
class TraceHook;
class FiberScheduler;

/// Which execution core drives the ranks.
enum class ExecMode {
  /// Resolve from the PSANIM_EXEC_MODE environment variable ("fibers" |
  /// "threads"); kFibers when unset. CI's differential legs flip the env
  /// var without touching call sites.
  kDefault,
  kFibers,
  kThreads,
};

struct RuntimeOptions {
  /// Wall-clock receive timeout; protocol deadlocks fail loudly instead of
  /// hanging forever. Tests lower this. Under kFibers the deadline also
  /// orders the scheduler's deadlock-victim election (see mp/fiber.hpp).
  double recv_timeout_s = 60.0;
  /// Optional delivery/compute fault hook (not owned; must outlive the
  /// runtime). Null means a perfectly reliable cluster.
  FaultHook* fault = nullptr;
  /// Optional message-trace hook (not owned; must outlive the runtime).
  /// Null means no per-message observability.
  TraceHook* trace = nullptr;
  /// Optional shared-link contention hook (not owned; must outlive the
  /// runtime). Null means contention-free links — the flat model.
  ContentionHook* contention = nullptr;
  /// Execution core; see ExecMode.
  ExecMode exec_mode = ExecMode::kDefault;
  /// Worker threads driving the fiber scheduler; <= 0 means hardware
  /// concurrency (and is clamped to the world size). Ignored by kThreads.
  int workers = 0;
  /// Per-fiber stack bytes; 0 picks default_fiber_stack_bytes(). Ignored
  /// by kThreads.
  std::size_t fiber_stack_bytes = 0;
};

class Runtime {
 public:
  /// Hard ceiling for the thread-per-rank oracle: beyond this, one OS
  /// thread per rank is the scaling bug the fiber core exists to fix, so
  /// kThreads refuses instead of melting the host.
  static constexpr int kMaxThreadRanks = 256;

  Runtime(int world_size, LinkCostFn cost_fn,
          RuntimeOptions options = RuntimeOptions{});

  int world_size() const { return world_size_; }
  const RuntimeOptions& options() const { return options_; }

  /// The core run() will use: options().exec_mode with kDefault resolved
  /// through PSANIM_EXEC_MODE (kFibers when unset).
  ExecMode resolved_exec_mode() const;

  /// Execute `body(endpoint)` on every rank concurrently; blocks until all
  /// ranks return, then rethrows the lowest-rank exception if any.
  /// Returns per-rank results ordered by rank.
  std::vector<ProcessResult> run(
      const std::function<void(Endpoint&)>& body);

  // --- used by Endpoint ---
  Mailbox& mailbox(int rank) { return *mailboxes_.at(static_cast<std::size_t>(rank)); }
  /// Blocking receive for `rank`: routed to the fiber scheduler's yield
  /// point when one is driving this run, to the mailbox's condition
  /// variable otherwise. `vnow` is the caller's virtual clock (ready-queue
  /// ordering; unused by the threaded path).
  Message pop_match_blocking(int rank, int src, int tag, double timeout_s,
                             double vnow);
  MsgCost message_cost(int src, int dst, std::size_t wire_bytes) const {
    return cost_fn_(src, dst, wire_bytes);
  }
  std::uint64_t next_seq() { return seq_.fetch_add(1, std::memory_order_relaxed); }

  /// Per-(src, dst) last virtual arrival, enforcing MPI's non-overtaking
  /// guarantee: a later message on the same ordered pair never arrives
  /// before an earlier one, even if it is much smaller. Only the src
  /// rank's execution context touches row src.
  double& last_arrival(int src, int dst) {
    return last_arrival_[static_cast<std::size_t>(src) *
                             static_cast<std::size_t>(world_size_) +
                         static_cast<std::size_t>(dst)];
  }

 private:
  std::vector<ProcessResult> run_threads(
      const std::function<void(Endpoint&)>& body);
  std::vector<ProcessResult> run_fibers(
      const std::function<void(Endpoint&)>& body);

  int world_size_;
  LinkCostFn cost_fn_;
  RuntimeOptions options_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<double> last_arrival_;
  std::atomic<std::uint64_t> seq_{0};
  /// Non-null exactly while run_fibers is driving ranks.
  FiberScheduler* sched_ = nullptr;
};

}  // namespace psanim::mp

#pragma once

// Per-rank inbox with blocking, filtered receives.
//
// Matching is deterministic in *virtual* time: among the queued messages
// that match a (src, tag) filter, `pop_match` returns the one with the
// smallest (arrive_time, src, seq) triple, not the one that happened to be
// pushed first in wall-clock order. Combined with the protocol's
// known-sender receive loops this makes simulated makespans reproducible
// run-to-run even under arbitrary thread scheduling.
//
// Storage is indexed by (src, tag): each stream gets its own ring queue
// kept sorted by (arrive_time, seq, push order). The protocol's exact
// (src, tag) receives — the hot path — pop the front of one ring in
// O(log #streams) for the map lookup and O(1) for the pop, instead of the
// former O(n) scan over a flat deque. Wildcard receives compare the ring
// fronts, which is O(#streams), still far below O(#messages). Pushes from
// the runtime arrive per-stream in nondecreasing (arrive_time, seq) order
// (MPI non-overtaking + a monotone sender-side seq), so the sorted insert
// degenerates to an O(1) append; the general insert path exists for
// direct-push tests and keeps correctness independent of that property.

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "mp/message.hpp"

namespace psanim::mp {

/// Thrown when a blocking receive exceeds its deadline — a protocol
/// deadlock (e.g. a missing end-of-transmission marker, which the paper
/// calls out as a failure mode) surfaces as this error instead of a hang.
class RecvTimeout : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Multiplier applied to every blocking-receive timeout, read once from
/// PSANIM_TIMEOUT_SCALE. Defaults to 1, or higher under sanitizer builds
/// (TSan/ASan slow wall-clock execution 5-20x while virtual time is
/// unaffected, so unscaled deadlines fire spuriously in chaos tests).
double timeout_scale();

/// Test-only override of the cached scale (pass a value <= 0 to restore
/// the environment-derived default).
void override_timeout_scale(double scale);

/// Throw the canonical receive-timeout error for a (src, tag) filter.
/// Shared by the wall-clock expiry path (Mailbox::pop_match) and the
/// fiber scheduler's protocol-deadlock detection, so both execution modes
/// fail with the identical message.
[[noreturn]] void throw_recv_timeout(int src, int tag);

class Mailbox {
 public:
  /// Enqueue a message (called from the sender's thread).
  void push(Message m);

  /// Block until a message matching (src, tag) is present, then remove and
  /// return the match with the smallest (arrive_time, src, seq).
  /// `src`/`tag` may be kAny. Throws RecvTimeout after `timeout_s` of
  /// wall-clock waiting (scaled by timeout_scale()).
  Message pop_match(int src, int tag, double timeout_s);

  /// Non-blocking variant; nullopt when no match is queued.
  std::optional<Message> try_pop_match(int src, int tag);

  /// True when a matching message is queued (MPI_Iprobe analogue).
  bool probe(int src, int tag) const;

  /// Number of queued messages (any filter).
  std::size_t size() const;

  /// Fiber-runtime integration: called (outside the internal lock) after
  /// every push, so a cooperative scheduler can wake the owning rank's
  /// suspended fiber instead of relying on the condition variable. Set
  /// before the run's first send and cleared after the last rank returns;
  /// an empty function restores pure condition-variable wakeups.
  void set_push_signal(std::function<void()> signal);

 private:
  struct Item {
    Message m;
    std::uint64_t ord = 0;  ///< mailbox-wide push ordinal (stability tiebreak)
  };

  /// Growable ring of Items sorted by (arrive_time, seq, ord). Steady
  /// state is push_back/pop_front with zero allocation.
  class Ring {
   public:
    bool empty() const { return count_ == 0; }
    std::size_t size() const { return count_; }
    const Item& front() const { return at(0); }
    void insert_sorted(Item item);
    Item pop_front();

   private:
    Item& at(std::size_t i) { return buf_[(head_ + i) & (buf_.size() - 1)]; }
    const Item& at(std::size_t i) const {
      return buf_[(head_ + i) & (buf_.size() - 1)];
    }
    void grow();

    std::vector<Item> buf_;  // capacity is a power of two (mask indexing)
    std::size_t head_ = 0;
    std::size_t count_ = 0;
  };

  using Key = std::pair<int, int>;  // (src, tag)

  // Pointer to the ring holding the best match, or nullptr. Caller holds
  // mu_. The map is ordered, so scans visit streams by (src, tag) — the
  // winner is decided purely by the (arrive_time, src, seq, ord) compare.
  Ring* find_match(int src, int tag);
  const Ring* find_match(int src, int tag) const;
  Message pop_from(Ring& ring);
  void gc_empty_rings();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::function<void()> push_signal_;  ///< immutable while ranks are live
  std::map<Key, Ring> rings_;
  std::size_t empty_rings_ = 0;
  std::size_t total_ = 0;
  std::uint64_t next_ord_ = 0;
};

}  // namespace psanim::mp

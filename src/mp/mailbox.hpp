#pragma once

// Per-rank inbox with blocking, filtered receives.
//
// Matching is deterministic in *virtual* time: among the queued messages
// that match a (src, tag) filter, `pop_match` returns the one with the
// smallest (arrive_time, src, seq) triple, not the one that happened to be
// pushed first in wall-clock order. Combined with the protocol's
// known-sender receive loops this makes simulated makespans reproducible
// run-to-run even under arbitrary thread scheduling.

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "mp/message.hpp"

namespace psanim::mp {

/// Thrown when a blocking receive exceeds its deadline — a protocol
/// deadlock (e.g. a missing end-of-transmission marker, which the paper
/// calls out as a failure mode) surfaces as this error instead of a hang.
class RecvTimeout : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Mailbox {
 public:
  /// Enqueue a message (called from the sender's thread).
  void push(Message m);

  /// Block until a message matching (src, tag) is present, then remove and
  /// return the match with the smallest (arrive_time, src, seq).
  /// `src`/`tag` may be kAny. Throws RecvTimeout after `timeout_s` of
  /// wall-clock waiting.
  Message pop_match(int src, int tag, double timeout_s);

  /// Non-blocking variant; nullopt when no match is queued.
  std::optional<Message> try_pop_match(int src, int tag);

  /// True when a matching message is queued (MPI_Iprobe analogue).
  bool probe(int src, int tag) const;

  /// Number of queued messages (any filter).
  std::size_t size() const;

 private:
  // Index of best match in q_, or npos. Caller holds mu_.
  std::size_t find_match(int src, int tag) const;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> q_;
};

}  // namespace psanim::mp

#include "mp/message.hpp"

// Message and the serialization helpers are header-only; this TU anchors
// the library target.

namespace psanim::mp {}

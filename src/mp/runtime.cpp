#include "mp/runtime.hpp"

#include <cstdlib>
#include <cstring>
#include <exception>
#include <stdexcept>
#include <string>
#include <thread>

#include "mp/fiber.hpp"

namespace psanim::mp {

namespace {

/// PSANIM_EXEC_MODE env default, read once ("threads" | "fibers"; anything
/// else — including unset — means fibers, the production core).
ExecMode env_exec_mode() {
  static const ExecMode mode = [] {
    if (const char* env = std::getenv("PSANIM_EXEC_MODE")) {
      if (std::strcmp(env, "threads") == 0) return ExecMode::kThreads;
    }
    return ExecMode::kFibers;
  }();
  return mode;
}

}  // namespace

Runtime::Runtime(int world_size, LinkCostFn cost_fn, RuntimeOptions options)
    : world_size_(world_size),
      cost_fn_(std::move(cost_fn)),
      options_(options) {
  if (world_size <= 0) {
    throw std::invalid_argument("Runtime: world_size must be positive");
  }
  if (!cost_fn_) {
    throw std::invalid_argument("Runtime: cost function must be callable");
  }
  mailboxes_.reserve(static_cast<std::size_t>(world_size));
  for (int i = 0; i < world_size; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
  last_arrival_.assign(static_cast<std::size_t>(world_size) *
                           static_cast<std::size_t>(world_size),
                       0.0);
}

ExecMode Runtime::resolved_exec_mode() const {
  return options_.exec_mode == ExecMode::kDefault ? env_exec_mode()
                                                  : options_.exec_mode;
}

Message Runtime::pop_match_blocking(int rank, int src, int tag,
                                    double timeout_s, double vnow) {
  Mailbox& mbox = mailbox(rank);
  if (sched_ != nullptr && FiberScheduler::on_fiber()) {
    return sched_->pop_match(mbox, src, tag, timeout_s, vnow);
  }
  return mbox.pop_match(src, tag, timeout_s);
}

std::vector<ProcessResult> Runtime::run(
    const std::function<void(Endpoint&)>& body) {
  if (resolved_exec_mode() == ExecMode::kThreads) {
    if (world_size_ > kMaxThreadRanks) {
      throw std::invalid_argument(
          "Runtime: thread-per-rank execution refuses world_size " +
          std::to_string(world_size_) + " (> " +
          std::to_string(kMaxThreadRanks) +
          " OS threads) — use ExecMode::kFibers for large worlds");
    }
    return run_threads(body);
  }
  return run_fibers(body);
}

std::vector<ProcessResult> Runtime::run_threads(
    const std::function<void(Endpoint&)>& body) {
  const auto n = static_cast<std::size_t>(world_size_);
  std::vector<ProcessResult> results(n);
  std::vector<std::exception_ptr> errors(n);

  {
    std::vector<std::jthread> threads;
    threads.reserve(n);
    for (int r = 0; r < world_size_; ++r) {
      threads.emplace_back([this, r, &body, &results, &errors] {
        const auto i = static_cast<std::size_t>(r);
        Endpoint ep(*this, r);
        try {
          body(ep);
        } catch (...) {
          errors[i] = std::current_exception();
        }
        results[i] = ProcessResult{
            .rank = r,
            .finish_time = ep.clock().now(),
            .compute_s = ep.clock().compute_seconds(),
            .comm_s = ep.clock().comm_seconds(),
            .wait_s = ep.clock().wait_seconds(),
            .restarts = ep.restarts(),
            .traffic = ep.traffic(),
        };
      });
    }
    // jthread joins on scope exit; all process threads are done past here.
  }

  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  return results;
}

std::vector<ProcessResult> Runtime::run_fibers(
    const std::function<void(Endpoint&)>& body) {
  const auto n = static_cast<std::size_t>(world_size_);
  std::vector<ProcessResult> results(n);
  std::vector<std::exception_ptr> errors(n);

  FiberScheduler sched(
      world_size_, FiberSchedulerOptions{.workers = options_.workers,
                                         .stack_bytes =
                                             options_.fiber_stack_bytes});

  // Route every mailbox push into the scheduler so a blocked fiber wakes,
  // and every blocking receive into the scheduler's yield point. Cleared
  // on all exit paths — after run() the mailboxes go back to pure
  // condition-variable behavior (direct-push tests rely on it).
  sched_ = &sched;
  for (int r = 0; r < world_size_; ++r) {
    mailbox(r).set_push_signal([this, r] { sched_->notify_push(r); });
  }
  struct Unhook {
    Runtime* rt;
    ~Unhook() {
      for (int r = 0; r < rt->world_size_; ++r) {
        rt->mailbox(r).set_push_signal({});
      }
      rt->sched_ = nullptr;
    }
  } unhook{this};

  sched.run([this, &body, &results, &errors](int r) {
    const auto i = static_cast<std::size_t>(r);
    Endpoint ep(*this, r);
    try {
      body(ep);
    } catch (...) {
      errors[i] = std::current_exception();
    }
    results[i] = ProcessResult{
        .rank = r,
        .finish_time = ep.clock().now(),
        .compute_s = ep.clock().compute_seconds(),
        .comm_s = ep.clock().comm_seconds(),
        .wait_s = ep.clock().wait_seconds(),
        .restarts = ep.restarts(),
        .traffic = ep.traffic(),
    };
  });

  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  return results;
}

}  // namespace psanim::mp

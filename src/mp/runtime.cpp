#include "mp/runtime.hpp"

#include <exception>
#include <stdexcept>
#include <thread>

namespace psanim::mp {

Runtime::Runtime(int world_size, LinkCostFn cost_fn, RuntimeOptions options)
    : world_size_(world_size),
      cost_fn_(std::move(cost_fn)),
      options_(options) {
  if (world_size <= 0) {
    throw std::invalid_argument("Runtime: world_size must be positive");
  }
  if (!cost_fn_) {
    throw std::invalid_argument("Runtime: cost function must be callable");
  }
  mailboxes_.reserve(static_cast<std::size_t>(world_size));
  for (int i = 0; i < world_size; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
  last_arrival_.assign(static_cast<std::size_t>(world_size) *
                           static_cast<std::size_t>(world_size),
                       0.0);
}

std::vector<ProcessResult> Runtime::run(
    const std::function<void(Endpoint&)>& body) {
  const auto n = static_cast<std::size_t>(world_size_);
  std::vector<ProcessResult> results(n);
  std::vector<std::exception_ptr> errors(n);

  {
    std::vector<std::jthread> threads;
    threads.reserve(n);
    for (int r = 0; r < world_size_; ++r) {
      threads.emplace_back([this, r, &body, &results, &errors] {
        const auto i = static_cast<std::size_t>(r);
        Endpoint ep(*this, r);
        try {
          body(ep);
        } catch (...) {
          errors[i] = std::current_exception();
        }
        results[i] = ProcessResult{
            .rank = r,
            .finish_time = ep.clock().now(),
            .compute_s = ep.clock().compute_seconds(),
            .comm_s = ep.clock().comm_seconds(),
            .wait_s = ep.clock().wait_seconds(),
            .restarts = ep.restarts(),
            .traffic = ep.traffic(),
        };
      });
    }
    // jthread joins on scope exit; all process threads are done past here.
  }

  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  return results;
}

}  // namespace psanim::mp

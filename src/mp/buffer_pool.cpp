#include "mp/buffer_pool.hpp"

#include <bit>
#include <cstdlib>
#include <cstring>

namespace psanim::mp {

BufferPool::BufferPool() {
  if (const char* env = std::getenv("PSANIM_DISABLE_BUFFER_POOL")) {
    if (env[0] != '\0' && std::strcmp(env, "0") != 0) enabled_ = false;
  }
}

BufferPool& BufferPool::global() {
  static BufferPool pool;
  return pool;
}

std::size_t BufferPool::class_of(std::size_t capacity) {
  const std::size_t rounded =
      std::bit_ceil(capacity < (std::size_t{1} << kMinClassBits)
                        ? (std::size_t{1} << kMinClassBits)
                        : capacity);
  return static_cast<std::size_t>(std::bit_width(rounded) - 1) - kMinClassBits;
}

std::vector<std::byte> BufferPool::acquire(std::size_t min_capacity) {
  {
    const std::scoped_lock lock(mu_);
    ++stats_.acquires;
    const bool poolable =
        enabled_ && min_capacity <= (std::size_t{1} << kMaxClassBits);
    if (poolable) {
      auto& bin = free_[class_of(min_capacity)];
      if (!bin.empty()) {
        ++stats_.hits;
        std::vector<std::byte> buf = std::move(bin.back());
        bin.pop_back();
        return buf;
      }
    }
    ++stats_.misses;
    if (!poolable) {
      std::vector<std::byte> buf;
      buf.reserve(min_capacity);
      return buf;
    }
  }
  // Miss: allocate a full size class outside the lock so the next release
  // of this buffer files it back into the same bin.
  std::vector<std::byte> buf;
  buf.reserve(std::size_t{1} << (class_of(min_capacity) + kMinClassBits));
  return buf;
}

void BufferPool::release(std::vector<std::byte> buf) {
  if (buf.capacity() == 0) return;
  const std::scoped_lock lock(mu_);
  ++stats_.releases;
  if (!enabled_ || buf.capacity() < (std::size_t{1} << kMinClassBits) ||
      buf.capacity() > (std::size_t{1} << kMaxClassBits)) {
    ++stats_.dropped;
    return;  // buf frees on scope exit
  }
  // File under the largest class the capacity fully covers, so an acquire
  // from that class always gets capacity >= the class size.
  const std::size_t cls =
      static_cast<std::size_t>(std::bit_width(buf.capacity()) - 1) -
      kMinClassBits;
  auto& bin = free_[cls];
  if (bin.size() >= kMaxPerClass) {
    ++stats_.dropped;
    return;
  }
  buf.clear();
  bin.push_back(std::move(buf));
}

void BufferPool::grow(std::vector<std::byte>& buf, std::size_t min_capacity) {
  if (buf.capacity() >= min_capacity) return;
  // Geometric growth keeps amortized appends O(1) even when callers grow
  // one put() at a time.
  std::size_t want = buf.capacity() * 2;
  if (want < min_capacity) want = min_capacity;
  std::vector<std::byte> bigger = acquire(want);
  bigger.resize(buf.size());
  if (!buf.empty()) std::memcpy(bigger.data(), buf.data(), buf.size());
  std::swap(buf, bigger);
  release(std::move(bigger));
}

BufferPool::Stats BufferPool::stats() const {
  const std::scoped_lock lock(mu_);
  return stats_;
}

void BufferPool::reset_stats() {
  const std::scoped_lock lock(mu_);
  stats_ = Stats{};
}

void BufferPool::trim() {
  const std::scoped_lock lock(mu_);
  for (auto& bin : free_) bin.clear();
}

std::size_t BufferPool::cached_buffers() const {
  const std::scoped_lock lock(mu_);
  std::size_t n = 0;
  for (const auto& bin : free_) n += bin.size();
  return n;
}

void BufferPool::set_enabled(bool on) {
  {
    const std::scoped_lock lock(mu_);
    enabled_ = on;
  }
  if (!on) trim();
}

bool BufferPool::enabled() const {
  const std::scoped_lock lock(mu_);
  return enabled_;
}

}  // namespace psanim::mp

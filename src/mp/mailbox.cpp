#include "mp/mailbox.hpp"

#include <chrono>
#include <limits>

namespace psanim::mp {

namespace {
constexpr std::size_t kNpos = std::numeric_limits<std::size_t>::max();

bool matches(const Message& m, int src, int tag) {
  return (src == kAny || m.src == src) && (tag == kAny || m.tag == tag);
}

/// Ordering used to pick among multiple queued matches.
bool earlier(const Message& a, const Message& b) {
  if (a.arrive_time != b.arrive_time) return a.arrive_time < b.arrive_time;
  if (a.src != b.src) return a.src < b.src;
  return a.seq < b.seq;
}
}  // namespace

void Mailbox::push(Message m) {
  {
    const std::scoped_lock lock(mu_);
    q_.push_back(std::move(m));
  }
  cv_.notify_all();
}

std::size_t Mailbox::find_match(int src, int tag) const {
  std::size_t best = kNpos;
  for (std::size_t i = 0; i < q_.size(); ++i) {
    if (!matches(q_[i], src, tag)) continue;
    if (best == kNpos || earlier(q_[i], q_[best])) best = i;
  }
  return best;
}

Message Mailbox::pop_match(int src, int tag, double timeout_s) {
  std::unique_lock lock(mu_);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::duration<double>(timeout_s));
  std::size_t idx = kNpos;
  const bool ok = cv_.wait_until(lock, deadline, [&] {
    idx = find_match(src, tag);
    return idx != kNpos;
  });
  if (!ok) {
    throw RecvTimeout("psanim::mp: receive timed out (src=" +
                      std::to_string(src) + ", tag=" + std::to_string(tag) +
                      ") — likely a missing end-of-transmission marker");
  }
  Message m = std::move(q_[idx]);
  q_.erase(q_.begin() + static_cast<std::ptrdiff_t>(idx));
  return m;
}

std::optional<Message> Mailbox::try_pop_match(int src, int tag) {
  const std::scoped_lock lock(mu_);
  const std::size_t idx = find_match(src, tag);
  if (idx == kNpos) return std::nullopt;
  Message m = std::move(q_[idx]);
  q_.erase(q_.begin() + static_cast<std::ptrdiff_t>(idx));
  return m;
}

bool Mailbox::probe(int src, int tag) const {
  const std::scoped_lock lock(mu_);
  return find_match(src, tag) != kNpos;
}

std::size_t Mailbox::size() const {
  const std::scoped_lock lock(mu_);
  return q_.size();
}

}  // namespace psanim::mp

#include "mp/mailbox.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <limits>
#include <string>

namespace psanim::mp {

namespace {

// Dormant streams above this keep their (empty) rings until a sweep; the
// bound matters because collective tags cycle through a 65536-wide range
// and would otherwise grow the map without limit.
constexpr std::size_t kMaxEmptyRings = 256;

constexpr bool sanitizer_build() {
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  return true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

double env_timeout_scale() {
  if (const char* env = std::getenv("PSANIM_TIMEOUT_SCALE")) {
    char* end = nullptr;
    const double v = std::strtod(env, &end);
    if (end != env && v > 0.0) return v;
  }
  // Sanitizers slow wall-clock execution roughly an order of magnitude
  // while virtual time is unaffected; stretch deadlines to match.
  return sanitizer_build() ? 8.0 : 1.0;
}

// <= 0 means "not yet derived from the environment".
std::atomic<double> g_timeout_scale{-1.0};

}  // namespace

double timeout_scale() {
  double v = g_timeout_scale.load(std::memory_order_relaxed);
  if (v <= 0.0) {
    v = env_timeout_scale();
    g_timeout_scale.store(v, std::memory_order_relaxed);
  }
  return v;
}

void override_timeout_scale(double scale) {
  g_timeout_scale.store(scale, std::memory_order_relaxed);
}

void throw_recv_timeout(int src, int tag) {
  throw RecvTimeout("psanim::mp: receive timed out (src=" +
                    std::to_string(src) + ", tag=" + std::to_string(tag) +
                    ") — likely a missing end-of-transmission marker");
}

// --- Ring -----------------------------------------------------------------

namespace {
/// Within one ring src is constant; sort by (arrive_time, seq) with the
/// push ordinal as a stability tiebreak.
bool item_ring_less(double a_arrive, std::uint64_t a_seq, std::uint64_t a_ord,
                    double b_arrive, std::uint64_t b_seq,
                    std::uint64_t b_ord) {
  if (a_arrive != b_arrive) return a_arrive < b_arrive;
  if (a_seq != b_seq) return a_seq < b_seq;
  return a_ord < b_ord;
}
}  // namespace

void Mailbox::Ring::grow() {
  const std::size_t cap = buf_.empty() ? 8 : buf_.size() * 2;
  std::vector<Item> bigger(cap);
  for (std::size_t i = 0; i < count_; ++i) bigger[i] = std::move(at(i));
  buf_ = std::move(bigger);
  head_ = 0;
}

void Mailbox::Ring::insert_sorted(Item item) {
  if (count_ == buf_.size()) grow();
  const auto less = [](const Item& a, const Item& b) {
    return item_ring_less(a.m.arrive_time, a.m.seq, a.ord, b.m.arrive_time,
                          b.m.seq, b.ord);
  };
  // Fast path: the runtime pushes each stream in nondecreasing order, so
  // new items belong at the tail.
  if (count_ == 0 || !less(item, at(count_ - 1))) {
    at(count_) = std::move(item);
    ++count_;
    return;
  }
  // Out-of-order push (direct-push tests): binary search for the first
  // element greater than `item`, shift the tail right by one slot.
  std::size_t lo = 0;
  std::size_t hi = count_;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (less(item, at(mid))) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  ++count_;
  for (std::size_t i = count_ - 1; i > lo; --i) at(i) = std::move(at(i - 1));
  at(lo) = std::move(item);
}

Mailbox::Item Mailbox::Ring::pop_front() {
  Item item = std::move(at(0));
  head_ = (head_ + 1) & (buf_.size() - 1);
  --count_;
  return item;
}

// --- Mailbox --------------------------------------------------------------

void Mailbox::push(Message m) {
  {
    const std::scoped_lock lock(mu_);
    const auto [it, created] = rings_.try_emplace(Key{m.src, m.tag});
    if (!created && it->second.empty() && empty_rings_ > 0) --empty_rings_;
    it->second.insert_sorted(Item{std::move(m), next_ord_++});
    ++total_;
  }
  cv_.notify_all();
  if (push_signal_) push_signal_();
}

void Mailbox::set_push_signal(std::function<void()> signal) {
  push_signal_ = std::move(signal);
}

const Mailbox::Ring* Mailbox::find_match(int src, int tag) const {
  const auto front_earlier = [](const Item& a, const Item& b) {
    if (a.m.arrive_time != b.m.arrive_time) {
      return a.m.arrive_time < b.m.arrive_time;
    }
    if (a.m.src != b.m.src) return a.m.src < b.m.src;
    if (a.m.seq != b.m.seq) return a.m.seq < b.m.seq;
    return a.ord < b.ord;
  };

  if (src != kAny && tag != kAny) {
    const auto it = rings_.find(Key{src, tag});
    return (it != rings_.end() && !it->second.empty()) ? &it->second
                                                       : nullptr;
  }
  const Ring* best = nullptr;
  const auto consider = [&](const Ring& r) {
    if (r.empty()) return;
    if (best == nullptr || front_earlier(r.front(), best->front())) {
      best = &r;
    }
  };
  if (src != kAny) {
    for (auto it =
             rings_.lower_bound(Key{src, std::numeric_limits<int>::min()});
         it != rings_.end() && it->first.first == src; ++it) {
      consider(it->second);
    }
  } else {
    for (const auto& [key, ring] : rings_) {
      if (tag != kAny && key.second != tag) continue;
      consider(ring);
    }
  }
  return best;
}

Mailbox::Ring* Mailbox::find_match(int src, int tag) {
  return const_cast<Ring*>(
      static_cast<const Mailbox*>(this)->find_match(src, tag));
}

Message Mailbox::pop_from(Ring& ring) {
  Item item = ring.pop_front();
  if (ring.empty()) ++empty_rings_;
  --total_;
  gc_empty_rings();
  return std::move(item.m);
}

void Mailbox::gc_empty_rings() {
  if (empty_rings_ <= kMaxEmptyRings) return;
  for (auto it = rings_.begin(); it != rings_.end();) {
    if (it->second.empty()) {
      it = rings_.erase(it);
    } else {
      ++it;
    }
  }
  empty_rings_ = 0;
}

Message Mailbox::pop_match(int src, int tag, double timeout_s) {
  std::unique_lock lock(mu_);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::duration<double>(
                                timeout_s * timeout_scale()));
  Ring* ring = nullptr;
  const bool ok = cv_.wait_until(lock, deadline, [&] {
    ring = find_match(src, tag);
    return ring != nullptr;
  });
  if (!ok) throw_recv_timeout(src, tag);
  return pop_from(*ring);
}

std::optional<Message> Mailbox::try_pop_match(int src, int tag) {
  const std::scoped_lock lock(mu_);
  Ring* ring = find_match(src, tag);
  if (ring == nullptr) return std::nullopt;
  return pop_from(*ring);
}

bool Mailbox::probe(int src, int tag) const {
  const std::scoped_lock lock(mu_);
  return find_match(src, tag) != nullptr;
}

std::size_t Mailbox::size() const {
  const std::scoped_lock lock(mu_);
  return total_;
}

}  // namespace psanim::mp

#pragma once

// Messages and POD serialization for the psanim message-passing runtime.
//
// A message is a tagged byte payload plus virtual-time stamps. Payloads
// are built with `Writer` and decoded with `Reader`; both operate on
// trivially-copyable types only, mirroring what an MPI derived datatype
// for the paper's particle records would carry.
//
// Payload buffers are pool-backed (see buffer_pool.hpp) and move
// end-to-end: a buffer filled by Writer travels through send, the mailbox
// and recv without being copied, and returns to the pool when the consumed
// Message dies. Copying a Payload is allowed (fault-injected duplicates
// and tests need it) but is an explicit deep copy through the pool.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "mp/buffer_pool.hpp"

namespace psanim::mp {

/// Wildcard rank/tag for receives, analogous to MPI_ANY_SOURCE/MPI_ANY_TAG.
inline constexpr int kAny = -1;

/// Fixed per-message envelope charged to the wire in addition to the
/// payload (source, tag, length — what an MPI header would carry).
inline constexpr std::size_t kEnvelopeBytes = 32;

/// A message body: a byte buffer whose storage is recycled through
/// BufferPool. Vector-like read/write access, implicit construction from a
/// raw byte vector (so `m.payload = writer.take()` keeps working), deep
/// copy on copy, and `detach()` to hand the bytes to code that wants a
/// plain vector.
class Payload {
 public:
  Payload() = default;
  Payload(std::vector<std::byte> bytes) : v_(std::move(bytes)) {}  // NOLINT

  Payload(Payload&& o) noexcept : v_(std::move(o.v_)) {}
  Payload& operator=(Payload&& o) noexcept {
    if (this != &o) {
      reset();
      v_ = std::move(o.v_);
    }
    return *this;
  }

  Payload(const Payload& o) : v_(BufferPool::global().acquire(o.v_.size())) {
    v_.resize(o.v_.size());
    if (!o.v_.empty()) std::memcpy(v_.data(), o.v_.data(), o.v_.size());
  }
  Payload& operator=(const Payload& o) {
    if (this != &o) *this = Payload(o);
    return *this;
  }

  ~Payload() { reset(); }

  std::size_t size() const { return v_.size(); }
  bool empty() const { return v_.empty(); }
  const std::byte* data() const { return v_.data(); }
  std::byte* data() { return v_.data(); }
  const std::byte& operator[](std::size_t i) const { return v_[i]; }
  std::byte& operator[](std::size_t i) { return v_[i]; }
  auto begin() const { return v_.begin(); }
  auto end() const { return v_.end(); }

  operator std::span<const std::byte>() const { return {v_}; }  // NOLINT

  /// Take the bytes out as a plain vector (storage leaves the pool cycle).
  std::vector<std::byte> detach() { return std::move(v_); }

  /// Drop the contents, recycling the storage.
  void reset() {
    if (v_.capacity() != 0) BufferPool::global().release(std::move(v_));
    v_ = {};
  }

 private:
  std::vector<std::byte> v_;
};

/// One in-flight message.
struct Message {
  int src = -1;               ///< sender rank
  int tag = 0;                ///< user tag
  std::uint64_t seq = 0;      ///< per-runtime sequence number (tiebreak)
  double depart_time = 0.0;   ///< sender virtual time at send
  double arrive_time = 0.0;   ///< receiver-side virtual availability time
  bool duplicate = false;     ///< fault-injected copy; receive path discards
  Payload payload;

  std::size_t wire_bytes() const { return payload.size() + kEnvelopeBytes; }
};

/// Thrown when a Reader runs past the end of a payload or a decoded size
/// is implausible — indicates a protocol bug, never silently truncates.
class DecodeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Append-only payload builder. The backing buffer comes from BufferPool
/// and grows geometrically through it, so repeated encode cycles of
/// similar size reuse the same storage with no heap traffic.
class Writer {
 public:
  Writer() = default;
  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;
  Writer(Writer&& o) noexcept : buf_(std::move(o.buf_)) {}
  Writer& operator=(Writer&& o) noexcept {
    if (this != &o) {
      if (buf_.capacity() != 0) BufferPool::global().release(std::move(buf_));
      buf_ = std::move(o.buf_);
    }
    return *this;
  }
  ~Writer() {
    if (buf_.capacity() != 0) BufferPool::global().release(std::move(buf_));
  }

  /// Pre-size the buffer (capacity, not size) for a known encoding.
  void reserve(std::size_t capacity) {
    BufferPool::global().grow(buf_, capacity);
  }

  /// Append `n` uninitialized bytes and return a pointer to them. The
  /// pointer is valid until the next mutating call.
  std::byte* alloc(std::size_t n) {
    BufferPool::global().grow(buf_, buf_.size() + n);
    const std::size_t off = buf_.size();
    buf_.resize(off + n);
    return buf_.data() + off;
  }

  template <typename T>
  void put(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "only trivially copyable types go on the wire");
    std::memcpy(alloc(sizeof(T)), &v, sizeof(T));
  }

  /// Length-prefixed span of PODs.
  template <typename T>
  void put_span(std::span<const T> items) {
    static_assert(std::is_trivially_copyable_v<T>);
    put<std::uint64_t>(items.size());
    if (!items.empty()) {
      std::memcpy(alloc(items.size_bytes()), items.data(),
                  items.size_bytes());
    }
  }

  template <typename T>
  void put_vector(const std::vector<T>& items) {
    put_span(std::span<const T>(items));
  }

  std::size_t size() const { return buf_.size(); }
  std::vector<std::byte> take() { return std::move(buf_); }
  const std::vector<std::byte>& bytes() const { return buf_; }

 private:
  std::vector<std::byte> buf_;
};

/// Sequential payload decoder with bounds checking.
class Reader {
 public:
  explicit Reader(std::span<const std::byte> bytes) : bytes_(bytes) {}
  explicit Reader(const Message& m) : bytes_(m.payload) {}
  // A Reader is a non-owning view. Binding one to a temporary Message
  // (`Reader r(ep.recv(...))`) would release the pooled payload buffer at
  // the end of the declaration statement and leave the Reader dangling —
  // the pool hands the block to a concurrent writer and reads race with
  // its writes. Name the Message first.
  explicit Reader(const Message&&) = delete;

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    require(sizeof(T));
    T v;
    std::memcpy(&v, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  template <typename T>
  std::vector<T> get_vector() {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto n = get<std::uint64_t>();
    if (n > (bytes_.size() - pos_) / sizeof(T)) {
      throw DecodeError("psanim::mp::Reader: vector length exceeds payload");
    }
    std::vector<T> out(static_cast<std::size_t>(n));
    std::memcpy(out.data(), bytes_.data() + pos_, out.size() * sizeof(T));
    pos_ += out.size() * sizeof(T);
    return out;
  }

  /// View of the next `n` raw bytes, consumed without copying. Lets codecs
  /// unpack length-prefixed POD arrays straight out of the payload.
  std::span<const std::byte> raw(std::size_t n) {
    require(n);
    const std::span<const std::byte> view = bytes_.subspan(pos_, n);
    pos_ += n;
    return view;
  }

  std::size_t remaining() const { return bytes_.size() - pos_; }
  bool done() const { return remaining() == 0; }

 private:
  void require(std::size_t n) const {
    if (remaining() < n) {
      throw DecodeError("psanim::mp::Reader: read past end of payload");
    }
  }

  std::span<const std::byte> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace psanim::mp

#pragma once

// Messages and POD serialization for the psanim message-passing runtime.
//
// A message is a tagged byte payload plus virtual-time stamps. Payloads
// are built with `Writer` and decoded with `Reader`; both operate on
// trivially-copyable types only, mirroring what an MPI derived datatype
// for the paper's particle records would carry.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <vector>

namespace psanim::mp {

/// Wildcard rank/tag for receives, analogous to MPI_ANY_SOURCE/MPI_ANY_TAG.
inline constexpr int kAny = -1;

/// Fixed per-message envelope charged to the wire in addition to the
/// payload (source, tag, length — what an MPI header would carry).
inline constexpr std::size_t kEnvelopeBytes = 32;

/// One in-flight message.
struct Message {
  int src = -1;               ///< sender rank
  int tag = 0;                ///< user tag
  std::uint64_t seq = 0;      ///< per-runtime sequence number (tiebreak)
  double depart_time = 0.0;   ///< sender virtual time at send
  double arrive_time = 0.0;   ///< receiver-side virtual availability time
  bool duplicate = false;     ///< fault-injected copy; receive path discards
  std::vector<std::byte> payload;

  std::size_t wire_bytes() const { return payload.size() + kEnvelopeBytes; }
};

/// Thrown when a Reader runs past the end of a payload or a decoded size
/// is implausible — indicates a protocol bug, never silently truncates.
class DecodeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Append-only payload builder.
class Writer {
 public:
  template <typename T>
  void put(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "only trivially copyable types go on the wire");
    const auto* p = reinterpret_cast<const std::byte*>(&v);
    buf_.insert(buf_.end(), p, p + sizeof(T));
  }

  /// Length-prefixed span of PODs.
  template <typename T>
  void put_span(std::span<const T> items) {
    static_assert(std::is_trivially_copyable_v<T>);
    put<std::uint64_t>(items.size());
    const auto* p = reinterpret_cast<const std::byte*>(items.data());
    buf_.insert(buf_.end(), p, p + items.size_bytes());
  }

  template <typename T>
  void put_vector(const std::vector<T>& items) {
    put_span(std::span<const T>(items));
  }

  std::size_t size() const { return buf_.size(); }
  std::vector<std::byte> take() { return std::move(buf_); }
  const std::vector<std::byte>& bytes() const { return buf_; }

 private:
  std::vector<std::byte> buf_;
};

/// Sequential payload decoder with bounds checking.
class Reader {
 public:
  explicit Reader(std::span<const std::byte> bytes) : bytes_(bytes) {}
  explicit Reader(const Message& m) : bytes_(m.payload) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    require(sizeof(T));
    T v;
    std::memcpy(&v, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  template <typename T>
  std::vector<T> get_vector() {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto n = get<std::uint64_t>();
    if (n > (bytes_.size() - pos_) / sizeof(T)) {
      throw DecodeError("psanim::mp::Reader: vector length exceeds payload");
    }
    std::vector<T> out(static_cast<std::size_t>(n));
    std::memcpy(out.data(), bytes_.data() + pos_, out.size() * sizeof(T));
    pos_ += out.size() * sizeof(T);
    return out;
  }

  std::size_t remaining() const { return bytes_.size() - pos_; }
  bool done() const { return remaining() == 0; }

 private:
  void require(std::size_t n) const {
    if (remaining() < n) {
      throw DecodeError("psanim::mp::Reader: read past end of payload");
    }
  }

  std::span<const std::byte> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace psanim::mp

#pragma once

// Shared-link contention hook: the seam through which a platform model
// (src/platform) bends per-message wire time without the message-passing
// substrate knowing about topologies (same pattern as FaultHook and
// TraceHook). The runtime consults an optional hook once per send on the
// sender's context and once per consumed message on the receiver's
// context; both return extra virtual seconds folded into the message's
// arrival time.
//
// Determinism contract: on_send may touch only state keyed by `src` (it
// runs in the sender's program order), on_recv only state keyed by `dst`
// (it runs in the receiver's deterministic (arrive_time, src, seq)
// consume order). Under that contract two runs — any exec mode, any
// worker count — replay identical ledger updates in identical order, so
// contention delays are bit-reproducible.

#include <cstddef>

namespace psanim::mp {

class ContentionHook {
 public:
  virtual ~ContentionHook() = default;

  /// Sender-side egress queueing: called once per Endpoint::send, on the
  /// sender's context, in program order, before the arrival stamp is
  /// computed. Returns extra seconds the transfer waits to enter the wire
  /// behind the sender's own earlier transfers on its uplink (>= 0).
  virtual double on_send(int src, int dst, std::size_t wire_bytes,
                         double depart_s) = 0;

  /// Receiver-side ingress queueing: called once per popped message (real
  /// or duplicate copy — both crossed the wire), on the receiver's
  /// context, before the receiver's clock advances to the arrival.
  /// Returns extra seconds of shared-link queueing to add to the arrival
  /// time (>= 0).
  virtual double on_recv(int src, int dst, std::size_t wire_bytes,
                         double arrive_s) = 0;
};

}  // namespace psanim::mp

#pragma once

// Delivery-fault hook: the seam through which the fault subsystem bends
// the message-passing substrate without the substrate knowing about fault
// plans. The runtime consults an optional hook on every send (to perturb
// delivery) and on every compute charge (to slow a rank down).
//
// Determinism contract: a hook implementation must be a pure function of
// its inputs plus state touched only by the calling rank's thread, so two
// runs with the same plan perturb the same messages by the same amounts.

#include <cstddef>
#include <cstdint>

namespace psanim::mp {

/// What the hook decided to do to one message.
struct SendFaults {
  /// Transmissions lost before one succeeds. The substrate models a
  /// reliable transport over a lossy link: each loss recharges the send
  /// CPU overhead and the hook adds retransmission delay to the wire.
  int retransmits = 0;
  /// Extra seconds added to the message's wire time (retransmission
  /// round-trips, delay spikes, link degradation).
  double extra_wire_s = 0.0;
  /// Deliver a second, flagged copy of the message. The receive path
  /// discards flagged duplicates after charging their arrival.
  bool duplicate = false;
  /// Virtual lag of the duplicate copy behind the original.
  double duplicate_lag_s = 0.0;
};

class FaultHook {
 public:
  virtual ~FaultHook() = default;

  /// Consulted once per Endpoint::send, on the sender's thread, before the
  /// arrival stamp is computed. `base_wire_s` is the unperturbed wire time
  /// for `wire_bytes` on this link; `depart_s` the sender's virtual time.
  virtual SendFaults on_send(int src, int dst, int tag,
                             std::size_t wire_bytes, double depart_s,
                             double base_wire_s, std::uint32_t frame) = 0;

  /// A flagged duplicate reached a receiver and was discarded.
  virtual void on_duplicate_dropped(int rank, int src, double vtime,
                                    std::uint32_t frame) = 0;

  /// Multiplier applied to every compute charge on `rank` at virtual time
  /// `vtime` (2.0 = the rank runs at half speed).
  virtual double compute_factor(int rank, double vtime) const = 0;
};

}  // namespace psanim::mp

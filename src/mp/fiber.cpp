#include "mp/fiber.hpp"

#include <ucontext.h>
#include <unistd.h>

#include <sys/mman.h>

#include <algorithm>
#include <cerrno>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <queue>
#include <stdexcept>
#include <system_error>
#include <thread>
#include <vector>

#include "mp/mailbox.hpp"

// --- sanitizer fiber annotations -------------------------------------------

#if defined(__SANITIZE_THREAD__)
#define PSANIM_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PSANIM_TSAN_FIBERS 1
#endif
#endif

#if defined(__SANITIZE_ADDRESS__)
#define PSANIM_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PSANIM_ASAN_FIBERS 1
#endif
#endif

#if defined(PSANIM_TSAN_FIBERS)
extern "C" {
void* __tsan_get_current_fiber(void);
void* __tsan_create_fiber(unsigned flags);
void __tsan_destroy_fiber(void* fiber);
void __tsan_switch_to_fiber(void* fiber, unsigned flags);
}
#endif

#if defined(PSANIM_ASAN_FIBERS)
#include <pthread.h>
extern "C" {
void __sanitizer_start_switch_fiber(void** fake_stack_save,
                                    const void* bottom, std::size_t size);
void __sanitizer_finish_switch_fiber(void* fake_stack_save,
                                     const void** bottom_old,
                                     std::size_t* size_old);
}
#endif

namespace psanim::mp {

namespace {

constexpr bool sanitizer_build() {
#if defined(PSANIM_TSAN_FIBERS) || defined(PSANIM_ASAN_FIBERS)
  return true;
#else
  return false;
#endif
}

std::size_t page_size() {
  static const std::size_t ps =
      static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return ps;
}

std::size_t round_up_pages(std::size_t bytes) {
  const std::size_t ps = page_size();
  return (bytes + ps - 1) / ps * ps;
}

}  // namespace

std::size_t default_fiber_stack_bytes() {
  // 256 KiB holds the deepest role frames (Calculator + render splat path)
  // with an order of magnitude to spare; instrumented builds get double
  // for redzones and fatter frames. Stacks are lazily committed anonymous
  // pages, so a 1000-rank world reserves virtual space only.
  return sanitizer_build() ? 512u * 1024u : 256u * 1024u;
}

/// One rank's execution context: a guard-paged mmap stack plus the
/// ucontext it is suspended in.
struct Fiber {
  enum class State : std::uint8_t {
    kReady,     ///< in the ready queue (or being handed to a worker)
    kRunning,   ///< executing on some worker right now
    kBlocked,   ///< suspended in pop_match, waiting for a mailbox push
    kFinished,  ///< rank_main returned; never scheduled again
  };

  int rank = 0;
  State state = State::kReady;  // guarded by the scheduler mutex
  ucontext_t ctx{};

  // Block metadata, written by the fiber right before it suspends and
  // published to other threads by the worker's post-switch bookkeeping
  // (same OS thread) under the scheduler mutex.
  int blk_src = kAny;
  int blk_tag = kAny;
  double blk_timeout_s = 0.0;
  double blk_vtime = 0.0;
  bool want_block = false;  ///< fiber asked to suspend (vs finished)
  bool timed_out = false;   ///< set by the deadlock victim pick
  /// Sticky wake token: a push arrived while the fiber was not (yet)
  /// parked; the next suspension attempt re-checks the mailbox instead.
  bool wake_pending = false;

  // mmap'd stack: [guard page][usable stack...]
  std::byte* map_base = nullptr;
  std::size_t map_bytes = 0;
  std::byte* stack_lo = nullptr;  ///< above the guard page
  std::size_t stack_bytes = 0;

  const std::function<void(int)>* entry = nullptr;
  FiberScheduler::Impl* sched = nullptr;

#if defined(PSANIM_TSAN_FIBERS)
  void* tsan_fiber = nullptr;
#endif
#if defined(PSANIM_ASAN_FIBERS)
  void* asan_fake_stack = nullptr;
#endif
};

namespace {

/// The fiber currently executing on this worker thread (null outside the
/// scheduler). Set around every context switch into a fiber.
thread_local Fiber* tl_current_fiber = nullptr;

struct ReadyKey {
  double vtime = 0.0;
  int rank = 0;
  std::uint64_t seq = 0;

  bool operator<(const ReadyKey& o) const {
    if (vtime != o.vtime) return vtime < o.vtime;
    if (rank != o.rank) return rank < o.rank;
    return seq < o.seq;
  }
};

struct ReadyEntry {
  ReadyKey key;
  Fiber* fiber = nullptr;
};

struct ReadyLater {
  // priority_queue pops the *largest*; invert to get the smallest key.
  bool operator()(const ReadyEntry& a, const ReadyEntry& b) const {
    return b.key < a.key;
  }
};

}  // namespace

struct FiberScheduler::Impl {
  const int world;
  const std::size_t stack_bytes;
  int workers = 1;

  std::mutex mu;
  std::condition_variable cv;
  std::priority_queue<ReadyEntry, std::vector<ReadyEntry>, ReadyLater> ready;
  std::uint64_t ready_seq = 0;  ///< monotone enqueue ordinal (guarded by mu)
  int running = 0;   ///< popped from ready, not yet re-parked/finished
  int finished = 0;  ///< fibers whose rank_main returned

  std::vector<Fiber> fibers;

  explicit Impl(int world_size, std::size_t stack)
      : world(world_size), stack_bytes(round_up_pages(stack)) {}

  // --- stack + context plumbing --------------------------------------------

  void allocate(Fiber& f) {
    const std::size_t guard = page_size();
    f.map_bytes = guard + stack_bytes;
#if defined(MAP_STACK)
    constexpr int extra_flags = MAP_STACK;
#else
    constexpr int extra_flags = 0;
#endif
    void* base = ::mmap(nullptr, f.map_bytes, PROT_READ | PROT_WRITE,
                        MAP_PRIVATE | MAP_ANONYMOUS | extra_flags, -1, 0);
    if (base == MAP_FAILED) {
      throw std::system_error(errno, std::generic_category(),
                              "FiberScheduler: mmap of a fiber stack failed "
                              "(lower RuntimeOptions::fiber_stack_bytes or "
                              "the world size)");
    }
    f.map_base = static_cast<std::byte*>(base);
    // Guard page at the low end: stack overflow faults loudly instead of
    // silently corrupting the neighboring fiber's stack.
    if (::mprotect(f.map_base, guard, PROT_NONE) != 0) {
      const int err = errno;
      ::munmap(f.map_base, f.map_bytes);
      f.map_base = nullptr;
      throw std::system_error(err, std::generic_category(),
                              "FiberScheduler: mprotect of a fiber stack "
                              "guard page failed");
    }
    f.stack_lo = f.map_base + guard;
    f.stack_bytes = stack_bytes;
  }

  void release(Fiber& f) {
    if (f.map_base != nullptr) {
      ::munmap(f.map_base, f.map_bytes);
      f.map_base = nullptr;
    }
#if defined(PSANIM_TSAN_FIBERS)
    if (f.tsan_fiber != nullptr) {
      __tsan_destroy_fiber(f.tsan_fiber);
      f.tsan_fiber = nullptr;
    }
#endif
  }

  static void trampoline(unsigned hi, unsigned lo);

  void prepare(Fiber& f, const std::function<void(int)>& rank_main) {
    allocate(f);
    f.entry = &rank_main;
    f.sched = this;
#if defined(PSANIM_TSAN_FIBERS)
    f.tsan_fiber = __tsan_create_fiber(0);
#endif
    if (::getcontext(&f.ctx) != 0) {
      throw std::system_error(errno, std::generic_category(),
                              "FiberScheduler: getcontext failed");
    }
    f.ctx.uc_stack.ss_sp = f.stack_lo;
    f.ctx.uc_stack.ss_size = f.stack_bytes;
    // No uc_link: a fiber may finish on a different worker thread than the
    // one that created it, so the return context is always the *current*
    // worker's, reached explicitly through switch_out_of_fiber.
    f.ctx.uc_link = nullptr;
    const auto p = reinterpret_cast<std::uintptr_t>(&f);
    // makecontext's int-args contract: smuggle the Fiber* as two unsigned
    // halves (the void* hop silences -Wcast-function-type).
    ::makecontext(&f.ctx,
                  reinterpret_cast<void (*)()>(
                      reinterpret_cast<void*>(&trampoline)),
                  2, static_cast<unsigned>(p >> 32),
                  static_cast<unsigned>(p & 0xffffffffu));
  }

  // Per-worker return context (the worker's own stack). tl lifetime spans
  // the worker's whole loop, so fibers can always switch back to it.
  struct WorkerCtx {
    ucontext_t ctx{};
#if defined(PSANIM_TSAN_FIBERS)
    void* tsan_fiber = nullptr;
#endif
#if defined(PSANIM_ASAN_FIBERS)
    const void* stack_bottom = nullptr;
    std::size_t stack_size = 0;
    void* fake_stack = nullptr;
#endif
  };
  static thread_local WorkerCtx* tl_worker;

  /// Worker side: run `f` until it suspends or finishes.
  void switch_into(Fiber* f, WorkerCtx& w) {
    tl_current_fiber = f;
#if defined(PSANIM_ASAN_FIBERS)
    __sanitizer_start_switch_fiber(&w.fake_stack, f->stack_lo,
                                   f->stack_bytes);
#endif
#if defined(PSANIM_TSAN_FIBERS)
    __tsan_switch_to_fiber(f->tsan_fiber, 0);
#endif
    ::swapcontext(&w.ctx, &f->ctx);
#if defined(PSANIM_ASAN_FIBERS)
    __sanitizer_finish_switch_fiber(w.fake_stack, nullptr, nullptr);
#endif
    tl_current_fiber = nullptr;
  }

  /// Fiber side: suspend back to the owning worker. `dying` frees the
  /// ASan fake stack (the fiber never runs again).
  static void switch_out_of_fiber(Fiber* f, bool dying) {
    WorkerCtx& w = *tl_worker;
#if defined(PSANIM_ASAN_FIBERS)
    __sanitizer_start_switch_fiber(dying ? nullptr : &f->asan_fake_stack,
                                   w.stack_bottom, w.stack_size);
#else
    (void)dying;
#endif
#if defined(PSANIM_TSAN_FIBERS)
    __tsan_switch_to_fiber(w.tsan_fiber, 0);
#endif
    ::swapcontext(&f->ctx, &w.ctx);
    // Resumed (possibly on a different worker thread).
#if defined(PSANIM_ASAN_FIBERS)
    __sanitizer_finish_switch_fiber(f->asan_fake_stack, nullptr, nullptr);
#endif
  }

  // --- scheduling ----------------------------------------------------------

  /// Caller holds mu.
  void make_ready(Fiber* f, double vtime) {
    f->state = Fiber::State::kReady;
    ready.push(ReadyEntry{ReadyKey{vtime, f->rank, ready_seq++}, f});
    cv.notify_one();
  }

  /// All live fibers are suspended and nothing is ready: no push can ever
  /// arrive, so the protocol is deadlocked. Elect the blocked fiber with
  /// the earliest virtual deadline (block-time clock + receive timeout,
  /// rank as tiebreak) and resume it with the timeout flag set — it
  /// throws the same RecvTimeout wall-clock expiry used to. Caller holds
  /// mu. Repeated idles drain the remaining victims one by one.
  void time_out_victim() {
    Fiber* victim = nullptr;
    for (auto& f : fibers) {
      if (f.state != Fiber::State::kBlocked) continue;
      if (victim == nullptr) {
        victim = &f;
        continue;
      }
      const double fd = f.blk_vtime + f.blk_timeout_s;
      const double vd = victim->blk_vtime + victim->blk_timeout_s;
      if (fd < vd || (fd == vd && f.rank < victim->rank)) victim = &f;
    }
    // Invariant: running == 0 && ready.empty() && finished < world implies
    // at least one blocked fiber exists (kReady fibers are always in the
    // queue). A null victim would mean scheduler state corruption.
    if (victim == nullptr) std::abort();
    victim->timed_out = true;
    make_ready(victim, victim->blk_vtime);
  }

  /// Post-switch bookkeeping for a fiber that just yielded back. Caller
  /// holds mu. The fiber has fully switched off its stack by now, so it is
  /// safe for another worker to resume it the moment it turns kReady.
  void park_or_finish(Fiber* f) {
    if (!f->want_block) {
      f->state = Fiber::State::kFinished;
      ++finished;
      if (finished == world) cv.notify_all();
      return;
    }
    f->want_block = false;
    if (f->wake_pending) {
      // A push raced the suspension: don't park, re-run the mailbox check.
      f->wake_pending = false;
      make_ready(f, f->blk_vtime);
      return;
    }
    f->state = Fiber::State::kBlocked;
  }

  void worker_main() {
    WorkerCtx w;
#if defined(PSANIM_TSAN_FIBERS)
    w.tsan_fiber = __tsan_get_current_fiber();
#endif
#if defined(PSANIM_ASAN_FIBERS)
    // ASan needs the worker's real stack bounds to switch back onto it.
    {
      pthread_attr_t attr;
      if (pthread_getattr_np(pthread_self(), &attr) == 0) {
        void* base = nullptr;
        std::size_t size = 0;
        pthread_attr_getstack(&attr, &base, &size);
        w.stack_bottom = base;
        w.stack_size = size;
        pthread_attr_destroy(&attr);
      }
    }
#endif
    tl_worker = &w;

    std::unique_lock lock(mu);
    for (;;) {
      cv.wait(lock, [&] {
        return !ready.empty() || running == 0 || finished == world;
      });
      if (!ready.empty()) {
        Fiber* f = ready.top().fiber;
        ready.pop();
        f->state = Fiber::State::kRunning;
        ++running;
        lock.unlock();
        switch_into(f, w);
        lock.lock();
        --running;
        park_or_finish(f);
        continue;
      }
      if (finished == world) return;
      // ready empty, running == 0, fibers remain: protocol deadlock.
      time_out_victim();
    }
  }

  void run(const std::function<void(int)>& rank_main) {
    fibers.resize(static_cast<std::size_t>(world));
    try {
      for (int r = 0; r < world; ++r) {
        Fiber& f = fibers[static_cast<std::size_t>(r)];
        f.rank = r;
        prepare(f, rank_main);
      }
    } catch (...) {
      for (auto& f : fibers) release(f);
      throw;
    }
    {
      const std::scoped_lock lock(mu);
      for (auto& f : fibers) make_ready(&f, 0.0);
    }
    {
      std::vector<std::jthread> pool;
      pool.reserve(static_cast<std::size_t>(workers));
      for (int i = 0; i < workers; ++i) {
        pool.emplace_back([this] { worker_main(); });
      }
    }
    for (auto& f : fibers) release(f);
  }

  Message pop_match(Mailbox& mbox, int src, int tag, double timeout_s,
                    double vnow) {
    Fiber* f = tl_current_fiber;
    for (;;) {
      if (auto m = mbox.try_pop_match(src, tag)) return std::move(*m);
      f->blk_src = src;
      f->blk_tag = tag;
      f->blk_timeout_s = timeout_s;
      f->blk_vtime = vnow;
      f->want_block = true;
      switch_out_of_fiber(f, /*dying=*/false);
      if (f->timed_out) {
        f->timed_out = false;
        throw_recv_timeout(src, tag);
      }
    }
  }

  void notify_push(int rank) {
    const std::scoped_lock lock(mu);
    Fiber& f = fibers[static_cast<std::size_t>(rank)];
    if (f.state == Fiber::State::kBlocked) {
      // Resume at its block-time virtual clock: the ready queue stays
      // ordered by how far each rank's own timeline has advanced.
      make_ready(&f, f.blk_vtime);
    } else if (f.state != Fiber::State::kFinished) {
      f.wake_pending = true;
    }
  }
};

thread_local FiberScheduler::Impl::WorkerCtx* FiberScheduler::Impl::tl_worker =
    nullptr;

void FiberScheduler::Impl::trampoline(unsigned hi, unsigned lo) {
  auto* f = reinterpret_cast<Fiber*>((static_cast<std::uintptr_t>(hi) << 32) |
                                     static_cast<std::uintptr_t>(lo));
#if defined(PSANIM_ASAN_FIBERS)
  __sanitizer_finish_switch_fiber(nullptr, nullptr, nullptr);
#endif
  (*f->entry)(f->rank);
  // Suspend for the last time; park_or_finish sees want_block == false and
  // retires the fiber. Never returns.
  f->want_block = false;
  switch_out_of_fiber(f, /*dying=*/true);
  std::abort();  // unreachable: finished fibers are never rescheduled
}

FiberScheduler::FiberScheduler(int world_size, FiberSchedulerOptions options)
    : impl_(nullptr) {
  if (world_size <= 0) {
    throw std::invalid_argument("FiberScheduler: world_size must be positive");
  }
  const std::size_t stack =
      options.stack_bytes > 0 ? options.stack_bytes
                              : default_fiber_stack_bytes();
  impl_ = new Impl(world_size, stack);
  int w = options.workers;
  if (w <= 0) {
    w = static_cast<int>(std::thread::hardware_concurrency());
    if (w <= 0) w = 1;
  }
  // More workers than ranks just park on the condition variable.
  impl_->workers = std::clamp(w, 1, world_size);
  workers_count_ = impl_->workers;
}

FiberScheduler::~FiberScheduler() { delete impl_; }

void FiberScheduler::run(const std::function<void(int)>& rank_main) {
  impl_->run(rank_main);
}

Message FiberScheduler::pop_match(Mailbox& mbox, int src, int tag,
                                  double timeout_s, double vnow) {
  return impl_->pop_match(mbox, src, tag, timeout_s, vnow);
}

void FiberScheduler::notify_push(int rank) { impl_->notify_push(rank); }

bool FiberScheduler::on_fiber() { return tl_current_fiber != nullptr; }

}  // namespace psanim::mp

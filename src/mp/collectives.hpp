#pragma once

// Collective operations over Endpoints.
//
// Linear (root-loops) algorithms: with the paper's process counts (at most
// 34 including manager and image generator) linear collectives match what
// a 2005 MPICH over Ethernet/Myrinet would do for small messages, and they
// keep virtual-time behaviour easy to reason about. Every rank must call
// the same collectives in the same order.

#include <cstdint>
#include <vector>

#include "mp/communicator.hpp"

namespace psanim::mp {

/// Synchronize all ranks: on return every clock sits at the barrier
/// release time (max of arrivals at root plus release latency per rank).
void barrier(Endpoint& ep);

/// Root's payload is delivered to every rank (root included). Returns the
/// payload on all ranks.
std::vector<std::byte> bcast(Endpoint& ep, int root,
                             std::vector<std::byte> payload = {});

/// Every rank contributes a payload; root receives them ordered by rank
/// (root's own contribution included at its index). Non-root ranks get an
/// empty vector.
std::vector<std::vector<std::byte>> gather(Endpoint& ep, int root,
                                           std::vector<std::byte> payload);

/// Gather + rebroadcast: every rank ends with all contributions by rank.
std::vector<std::vector<std::byte>> allgather(Endpoint& ep,
                                              std::vector<std::byte> payload);

/// Maximum of one double across ranks, known to all ranks on return.
double allreduce_max(Endpoint& ep, double value);

/// Sum of one double across ranks, known to all ranks on return.
double allreduce_sum(Endpoint& ep, double value);

}  // namespace psanim::mp

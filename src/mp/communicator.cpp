#include "mp/communicator.hpp"

#include <algorithm>

#include "mp/contention_hook.hpp"
#include "mp/fault_hook.hpp"
#include "mp/runtime.hpp"
#include "mp/trace_hook.hpp"

namespace psanim::mp {

LinkCostFn zero_cost_fn() {
  return [](int, int, std::size_t) { return MsgCost{}; };
}

Endpoint::Endpoint(Runtime& rt, int rank) : rt_(rt), rank_(rank) {}

int Endpoint::world_size() const { return rt_.world_size(); }

void Endpoint::send(int dst, int tag, std::vector<std::byte> payload) {
  Message m;
  m.src = rank_;
  m.tag = tag;
  m.seq = rt_.next_seq();
  m.payload = std::move(payload);

  const MsgCost cost = rt_.message_cost(rank_, dst, m.wire_bytes());
  clock_.charge_comm(cost.send_cpu_s);

  SendFaults faults;
  if (FaultHook* hook = rt_.options().fault) {
    faults = hook->on_send(rank_, dst, tag, m.wire_bytes(), clock_.now(),
                           cost.wire_s, trace_frame_);
    // Reliable transport over a lossy link: every lost transmission
    // re-runs the sender's host send path before the copy that lands.
    for (int i = 0; i < faults.retransmits; ++i) {
      clock_.charge_comm(cost.send_cpu_s);
    }
  }

  m.depart_time = clock_.now();
  double egress_wait_s = 0.0;
  if (ContentionHook* hook = rt_.options().contention) {
    // Sender-side half of the platform's shared-link model: this rank's
    // own transfers serialize through its host uplink. The sender does
    // not block (buffered-send semantics); the wait pushes arrival out.
    egress_wait_s = hook->on_send(rank_, dst, m.wire_bytes(), m.depart_time);
  }
  m.arrive_time = m.depart_time + egress_wait_s + cost.wire_s +
                  faults.extra_wire_s + cost.recv_cpu_s;
  // Non-overtaking per ordered (src, dst) pair, as MPI guarantees.
  double& last = rt_.last_arrival(rank_, dst);
  if (m.arrive_time < last) m.arrive_time = last;
  last = m.arrive_time;

  traffic_.msgs_sent += 1;
  traffic_.bytes_sent += m.wire_bytes();

  if (TraceHook* hook = rt_.options().trace) {
    // Once per logical message — a fault-injected duplicate copy is a
    // transport artifact, not a second protocol send.
    hook->on_send(rank_, dst, tag, m.seq, m.wire_bytes(), m.depart_time,
                  m.arrive_time, trace_frame_);
  }

  if (faults.duplicate) {
    // The copy trails the original on the same ordered pair, so it keeps
    // the non-overtaking invariant and the receive path can discard it
    // without reordering anything.
    Message dup = m;
    dup.seq = rt_.next_seq();
    dup.duplicate = true;
    dup.arrive_time = last + std::max(faults.duplicate_lag_s, 0.0);
    last = dup.arrive_time;
    rt_.mailbox(dst).push(std::move(m));
    rt_.mailbox(dst).push(std::move(dup));
    return;
  }

  rt_.mailbox(dst).push(std::move(m));
}

Message Endpoint::recv(int src, int tag) { return recv_within(src, tag, 0.0); }

Message Endpoint::recv_within(int src, int tag, double timeout_s) {
  const double limit =
      timeout_s > 0.0 ? timeout_s : rt_.options().recv_timeout_s;
  for (;;) {
    // Routed through the runtime: under the fiber core an empty mailbox
    // suspends this rank's fiber instead of parking an OS thread.
    Message m = rt_.pop_match_blocking(rank_, src, tag, limit, clock_.now());
    if (ContentionHook* hook = rt_.options().contention) {
      // Receiver-side half: queue behind other arrivals sharing this
      // route's links, replayed in the deterministic consume order.
      m.arrive_time +=
          hook->on_recv(m.src, rank_, m.wire_bytes(), m.arrive_time);
    }
    clock_.advance_to(m.arrive_time);
    if (m.duplicate) {
      // Fault-injected copy: the transport layer recognizes and drops it,
      // but its arrival still cost receiver time (already advanced above).
      if (FaultHook* hook = rt_.options().fault) {
        hook->on_duplicate_dropped(rank_, m.src, m.arrive_time,
                                   trace_frame_);
      }
      continue;
    }
    traffic_.msgs_recv += 1;
    traffic_.bytes_recv += m.wire_bytes();
    if (TraceHook* hook = rt_.options().trace) {
      hook->on_recv(rank_, m.src, m.tag, m.seq, m.wire_bytes(),
                    m.arrive_time, trace_frame_);
    }
    return m;
  }
}

void Endpoint::charge(double seconds) {
  if (const FaultHook* hook = rt_.options().fault) {
    seconds *= hook->compute_factor(rank_, clock_.now());
  }
  clock_.charge_compute(seconds);
}

std::vector<Message> Endpoint::recv_each(std::span<const int> sources,
                                         int tag) {
  std::vector<Message> out;
  out.reserve(sources.size());
  for (const int src : sources) out.push_back(recv(src, tag));
  return out;
}

bool Endpoint::probe(int src, int tag) const {
  return rt_.mailbox(rank_).probe(src, tag);
}

int Endpoint::next_collective_tag() {
  // Collective tags live in a reserved high range so they never collide
  // with protocol tags.
  constexpr int kCollectiveBase = 1 << 24;
  return kCollectiveBase + (collective_seq_++ & 0xffff);
}

}  // namespace psanim::mp

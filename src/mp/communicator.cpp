#include "mp/communicator.hpp"

#include <algorithm>

#include "mp/runtime.hpp"

namespace psanim::mp {

LinkCostFn zero_cost_fn() {
  return [](int, int, std::size_t) { return MsgCost{}; };
}

Endpoint::Endpoint(Runtime& rt, int rank) : rt_(rt), rank_(rank) {}

int Endpoint::world_size() const { return rt_.world_size(); }

void Endpoint::send(int dst, int tag, std::vector<std::byte> payload) {
  Message m;
  m.src = rank_;
  m.tag = tag;
  m.seq = rt_.next_seq();
  m.payload = std::move(payload);

  const MsgCost cost = rt_.message_cost(rank_, dst, m.wire_bytes());
  clock_.charge_comm(cost.send_cpu_s);
  m.depart_time = clock_.now();
  m.arrive_time = m.depart_time + cost.wire_s + cost.recv_cpu_s;
  // Non-overtaking per ordered (src, dst) pair, as MPI guarantees.
  double& last = rt_.last_arrival(rank_, dst);
  if (m.arrive_time < last) m.arrive_time = last;
  last = m.arrive_time;

  traffic_.msgs_sent += 1;
  traffic_.bytes_sent += m.wire_bytes();

  rt_.mailbox(dst).push(std::move(m));
}

Message Endpoint::recv(int src, int tag) {
  Message m =
      rt_.mailbox(rank_).pop_match(src, tag, rt_.options().recv_timeout_s);
  clock_.advance_to(m.arrive_time);
  traffic_.msgs_recv += 1;
  traffic_.bytes_recv += m.wire_bytes();
  return m;
}

std::vector<Message> Endpoint::recv_each(std::span<const int> sources,
                                         int tag) {
  std::vector<Message> out;
  out.reserve(sources.size());
  for (const int src : sources) out.push_back(recv(src, tag));
  return out;
}

bool Endpoint::probe(int src, int tag) const {
  return rt_.mailbox(rank_).probe(src, tag);
}

int Endpoint::next_collective_tag() {
  // Collective tags live in a reserved high range so they never collide
  // with protocol tags.
  constexpr int kCollectiveBase = 1 << 24;
  return kCollectiveBase + (collective_seq_++ & 0xffff);
}

}  // namespace psanim::mp

#pragma once

// Stackful fibers and the cooperative scheduler behind
// RuntimeOptions::ExecMode::kFibers.
//
// One model rank = one suspended ucontext fiber, not one OS thread. A
// small pool of worker threads (default: hardware concurrency) drives the
// fibers: a worker pops the ready fiber with the smallest
// (virtual_time, rank, seq) key, context-switches into it, and runs it
// until it either finishes or blocks in a receive with no matching
// message queued. Blocking points that used to park a thread on the
// mailbox's condition variable become yield points into the scheduler;
// a matching push re-inserts the blocked fiber into the ready queue.
//
// Determinism: simulated results never depended on wall-clock scheduling
// in the first place — every observable quantity is a function of virtual
// arrival stamps and the mailbox's (arrive_time, src, seq) matching order,
// which are untouched here. The fiber core is therefore bit-identical to
// the thread-per-rank core for any worker count, including 1; the ordered
// ready queue additionally makes the *execution* order itself reproducible
// for a single worker, which the differential corpus test exploits.
//
// Deadlock detection: the per-receive wall-clock deadline of the threaded
// core is replaced by the scheduler's idle check. When every live fiber is
// suspended in a receive and the ready queue is empty, no message can ever
// arrive again — the scheduler times out the blocked fiber with the
// earliest virtual deadline (block-time virtual clock + its receive
// timeout, rank as tiebreak), which throws the same RecvTimeout the
// threaded core would have thrown, unwinding that fiber's stack. Repeated
// idles time out the remaining fibers one by one, so a wedged protocol
// fails loudly on every affected rank, exactly like wall-clock expiry did.
//
// Sanitizers: stacks are mmap'd with a PROT_NONE guard page, and every
// context switch carries the TSan fiber annotations
// (__tsan_create_fiber/__tsan_switch_to_fiber) and the ASan stack-switch
// annotations, so sanitizer builds stay green.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>

#include "mp/message.hpp"

namespace psanim::mp {

class Mailbox;

struct FiberSchedulerOptions {
  int workers = 0;  ///< worker threads; <= 0 means hardware concurrency
  std::size_t stack_bytes = 0;  ///< per-fiber stack; 0 picks the default
};

/// Default per-fiber stack size (larger under sanitizer builds, whose
/// instrumented frames and redzones are fatter).
std::size_t default_fiber_stack_bytes();

class FiberScheduler {
 public:
  FiberScheduler(int world_size, FiberSchedulerOptions options);
  ~FiberScheduler();

  FiberScheduler(const FiberScheduler&) = delete;
  FiberScheduler& operator=(const FiberScheduler&) = delete;

  /// Drive `rank_main(rank)` for every rank to completion on the worker
  /// pool. `rank_main` must not throw (the runtime's wrapper captures
  /// body exceptions per rank). Callable exactly once.
  void run(const std::function<void(int)>& rank_main);

  /// Blocking receive for the calling fiber: pop the best match from
  /// `mbox`, yielding to the scheduler while no match is queued. Throws
  /// RecvTimeout (same text as Mailbox::pop_match) when the scheduler's
  /// idle check elects this fiber as the deadlock victim. `vnow` is the
  /// caller's virtual clock, used to order the ready queue and to pick
  /// deadlock victims deterministically.
  Message pop_match(Mailbox& mbox, int src, int tag, double timeout_s,
                    double vnow);

  /// Mailbox push notification (rank's inbox got a message): make the
  /// fiber ready if it is blocked, or leave a sticky wake token so an
  /// in-flight suspension re-checks its mailbox instead of parking.
  void notify_push(int rank);

  /// True when the calling thread is executing inside one of this
  /// scheduler's fibers (used to route Endpoint blocking).
  static bool on_fiber();

  int workers() const { return workers_count_; }

  struct Impl;  // implementation detail, defined in fiber.cpp

 private:
  Impl* impl_;
  int workers_count_ = 0;
};

}  // namespace psanim::mp

#include "mp/collectives.hpp"

#include <algorithm>

namespace psanim::mp {

namespace {
/// Ranks other than `root`, ascending.
std::vector<int> others(const Endpoint& ep, int root) {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(ep.world_size()) - 1);
  for (int r = 0; r < ep.world_size(); ++r) {
    if (r != root) out.push_back(r);
  }
  return out;
}
}  // namespace

void barrier(Endpoint& ep) {
  const int tag = ep.next_collective_tag();
  constexpr int root = 0;
  if (ep.rank() == root) {
    const auto srcs = others(ep, root);
    ep.recv_each(srcs, tag);
    for (const int r : srcs) ep.send_empty(r, tag);
  } else {
    ep.send_empty(root, tag);
    ep.recv(root, tag);
  }
}

std::vector<std::byte> bcast(Endpoint& ep, int root,
                             std::vector<std::byte> payload) {
  const int tag = ep.next_collective_tag();
  if (ep.rank() == root) {
    for (int r = 0; r < ep.world_size(); ++r) {
      if (r == root) continue;
      ep.send(r, tag, payload);  // copy per destination
    }
    return payload;
  }
  return ep.recv(root, tag).payload.detach();
}

std::vector<std::vector<std::byte>> gather(Endpoint& ep, int root,
                                           std::vector<std::byte> payload) {
  const int tag = ep.next_collective_tag();
  if (ep.rank() != root) {
    ep.send(root, tag, std::move(payload));
    return {};
  }
  std::vector<std::vector<std::byte>> out(
      static_cast<std::size_t>(ep.world_size()));
  out[static_cast<std::size_t>(root)] = std::move(payload);
  for (const int r : others(ep, root)) {
    out[static_cast<std::size_t>(r)] = ep.recv(r, tag).payload.detach();
  }
  return out;
}

std::vector<std::vector<std::byte>> allgather(Endpoint& ep,
                                              std::vector<std::byte> payload) {
  constexpr int root = 0;
  auto all = gather(ep, root, std::move(payload));
  // Root re-broadcasts the concatenation with per-part length prefixes.
  Writer w;
  if (ep.rank() == root) {
    w.put<std::uint64_t>(all.size());
    for (const auto& part : all) {
      w.put_vector(part);
    }
  }
  auto bytes = bcast(ep, root, w.take());
  if (ep.rank() == root) return all;
  Reader r(bytes);
  const auto n = r.get<std::uint64_t>();
  std::vector<std::vector<std::byte>> out(static_cast<std::size_t>(n));
  for (auto& part : out) part = r.get_vector<std::byte>();
  return out;
}

namespace {
double allreduce(Endpoint& ep, double value, double (*op)(double, double)) {
  Writer w;
  w.put(value);
  const auto parts = allgather(ep, w.take());
  double acc = value;
  bool first = true;
  for (const auto& part : parts) {
    Reader r{std::span<const std::byte>(part)};
    const double v = r.get<double>();
    acc = first ? v : op(acc, v);
    first = false;
  }
  return acc;
}
}  // namespace

double allreduce_max(Endpoint& ep, double value) {
  return allreduce(ep, value,
                   +[](double a, double b) { return std::max(a, b); });
}

double allreduce_sum(Endpoint& ep, double value) {
  return allreduce(ep, value, +[](double a, double b) { return a + b; });
}

}  // namespace psanim::mp

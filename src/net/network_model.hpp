#pragma once

// Network performance models.
//
// The paper evaluates the same library over Myrinet and Fast-Ethernet and
// attributes several results (notably the failure of dynamic load balancing
// for the fountain workload on Fast-Ethernet) to interconnect speed. We
// model a link with the classic latency/bandwidth (alpha-beta) cost:
//
//     time(message) = latency + bytes / bandwidth
//
// which is the level of fidelity the paper's analysis uses. Messages
// between processes on the same node travel over a shared-memory loopback
// link instead of the network.

#include <cstddef>
#include <cstdint>
#include <string>

namespace psanim::net {

/// Interconnect technologies present in the paper's cluster, plus a
/// loopback link for colocated processes and Gigabit for ablations.
enum class Interconnect : std::uint8_t {
  kLoopback,      ///< same-node shared memory transfer
  kFastEthernet,  ///< 100 Mb/s switched Ethernet (all paper nodes)
  kGigabitEthernet,
  kMyrinet,       ///< ~2 Gb/s Myrinet (paper's PIII nodes only)
  kCustom,
};

std::string to_string(Interconnect ic);

/// Bitmask of NICs a node owns. The paper's PIII nodes (E60/E800) carry
/// Myrinet + Fast-Ethernet; the Itanium workstations only Fast-Ethernet.
struct NicSet {
  bool fast_ethernet = true;
  bool gigabit = false;
  bool myrinet = false;

  bool has(Interconnect ic) const;
};

/// Alpha-beta cost model for one link.
struct LinkModel {
  Interconnect kind = Interconnect::kCustom;
  double latency_s = 0.0;        ///< per-message one-way latency (seconds)
  double bandwidth_bps = 1e9;    ///< payload bandwidth (bytes per second)

  /// One-way transfer time for a message of `bytes` payload bytes.
  double cost_s(std::size_t bytes) const {
    return latency_s + static_cast<double>(bytes) / bandwidth_bps;
  }

  static LinkModel loopback();
  static LinkModel fast_ethernet();
  static LinkModel gigabit_ethernet();
  static LinkModel myrinet();
  static LinkModel custom(double latency_s, double bandwidth_bps);
  static LinkModel preset(Interconnect ic);
};

/// Picks the link two nodes will use: loopback when colocated, else the
/// fastest interconnect both NIC sets share, preferring `preferred` when
/// both ends have it. Falls back to Fast-Ethernet (every paper node has
/// it).
LinkModel resolve_link(const NicSet& a, const NicSet& b, bool same_node,
                       Interconnect preferred);

}  // namespace psanim::net

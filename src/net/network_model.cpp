#include "net/network_model.hpp"

namespace psanim::net {

std::string to_string(Interconnect ic) {
  switch (ic) {
    case Interconnect::kLoopback: return "loopback";
    case Interconnect::kFastEthernet: return "fast-ethernet";
    case Interconnect::kGigabitEthernet: return "gigabit-ethernet";
    case Interconnect::kMyrinet: return "myrinet";
    case Interconnect::kCustom: return "custom";
  }
  return "unknown";
}

bool NicSet::has(Interconnect ic) const {
  switch (ic) {
    case Interconnect::kFastEthernet: return fast_ethernet;
    case Interconnect::kGigabitEthernet: return gigabit;
    case Interconnect::kMyrinet: return myrinet;
    case Interconnect::kLoopback:
    case Interconnect::kCustom:
      return false;
  }
  return false;
}

LinkModel LinkModel::loopback() {
  // Shared-memory copy on a 2005-era SMP: ~1 us wakeup, ~800 MB/s memcpy.
  return {Interconnect::kLoopback, 1e-6, 800e6};
}

LinkModel LinkModel::fast_ethernet() {
  // 100 Mb/s switched Ethernet with TCP: ~70 us latency, ~11 MB/s payload.
  return {Interconnect::kFastEthernet, 70e-6, 11e6};
}

LinkModel LinkModel::gigabit_ethernet() {
  return {Interconnect::kGigabitEthernet, 30e-6, 110e6};
}

LinkModel LinkModel::myrinet() {
  // Myrinet 2000 with GM: ~7 us latency, ~240 MB/s payload.
  return {Interconnect::kMyrinet, 7e-6, 240e6};
}

LinkModel LinkModel::custom(double latency_s, double bandwidth_bps) {
  return {Interconnect::kCustom, latency_s, bandwidth_bps};
}

LinkModel LinkModel::preset(Interconnect ic) {
  switch (ic) {
    case Interconnect::kLoopback: return loopback();
    case Interconnect::kFastEthernet: return fast_ethernet();
    case Interconnect::kGigabitEthernet: return gigabit_ethernet();
    case Interconnect::kMyrinet: return myrinet();
    case Interconnect::kCustom: return custom(0.0, 1e12);
  }
  return custom(0.0, 1e12);
}

LinkModel resolve_link(const NicSet& a, const NicSet& b, bool same_node,
                       Interconnect preferred) {
  if (same_node) return LinkModel::loopback();
  if (preferred != Interconnect::kLoopback && a.has(preferred) &&
      b.has(preferred)) {
    return LinkModel::preset(preferred);
  }
  // Fastest common interconnect.
  if (a.myrinet && b.myrinet) return LinkModel::myrinet();
  if (a.gigabit && b.gigabit) return LinkModel::gigabit_ethernet();
  return LinkModel::fast_ethernet();
}

}  // namespace psanim::net

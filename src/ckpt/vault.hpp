#pragma once

// Vault: in-memory checkpoint storage shared by every rank of a run — the
// model's stand-in for a parallel filesystem or peer checkpoint store.
//
// Each rank stores its own snapshot image under (rank, frame); the manager
// seals a Manifest per snapshot frame after collecting every rank's digest
// (size + CRC), which is what makes a checkpoint *coordinated*: a frame is
// restorable only once the manifest says all participating ranks landed
// their images.
//
// Thread safety: store/fetch/seal are mutex-guarded. Images live in a
// std::map, so a fetched image pointer stays valid across later stores
// (node-based storage); a rank only ever overwrites its *own* images, and
// only at points where nobody reads them (replayed captures).

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

namespace psanim::ckpt {

/// One rank's digest inside a sealed manifest.
struct ManifestEntry {
  int rank = -1;
  std::uint64_t bytes = 0;
  std::uint32_t crc = 0;
};

/// The manager's record of one completed coordinated checkpoint.
struct Manifest {
  std::uint32_t frame = 0;
  std::vector<ManifestEntry> entries;  ///< ascending by rank
};

class Vault {
 public:
  Vault() = default;
  Vault(const Vault& o);
  Vault& operator=(const Vault& o);

  void store(int rank, std::uint32_t frame, std::vector<std::byte> image);
  /// Pointer into the vault (stable across stores), or nullptr.
  const std::vector<std::byte>* fetch(int rank, std::uint32_t frame) const;

  void seal(Manifest m);
  std::optional<Manifest> manifest(std::uint32_t frame) const;
  /// Ascending frames with a sealed manifest.
  std::vector<std::uint32_t> sealed_frames() const;
  /// Is `frame` restorable (a sealed manifest exists for it)?
  bool has_sealed(std::uint32_t frame) const;
  /// Latest sealed frame <= `frame`, if any — what a recovery can fall
  /// back to when the exact frame it wanted is missing.
  std::optional<std::uint32_t> latest_sealed_at_or_before(
      std::uint32_t frame) const;

  std::size_t image_count() const;
  std::size_t total_bytes() const;

 private:
  mutable std::mutex mu_;
  std::map<std::pair<int, std::uint32_t>, std::vector<std::byte>> images_;
  std::map<std::uint32_t, Manifest> manifests_;
};

}  // namespace psanim::ckpt

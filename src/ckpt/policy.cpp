#include "ckpt/policy.hpp"

namespace psanim::ckpt {

std::vector<std::uint32_t> CkptPolicy::snapshot_frames(
    std::uint32_t frames, std::optional<std::uint32_t> after) const {
  std::vector<std::uint32_t> out;
  if (!enabled()) return out;
  const auto iv = static_cast<std::uint32_t>(interval);
  for (std::uint32_t f = iv - 1; f + 1 < frames; f += iv) {
    if (after && f <= *after) continue;
    out.push_back(f);
  }
  return out;
}

std::optional<std::uint32_t> CkptPolicy::next_snapshot_at_or_after(
    std::uint32_t frame, std::uint32_t frames,
    std::optional<std::uint32_t> after) const {
  if (!enabled()) return std::nullopt;
  const auto iv = static_cast<std::uint32_t>(interval);
  std::uint32_t lo = frame;
  if (after && *after + 1 > lo) lo = *after + 1;
  // Smallest f >= lo with (f + 1) % iv == 0.
  const std::uint32_t f = lo / iv * iv + iv - 1;
  if (f + 1 >= frames) return std::nullopt;
  return f;
}

bool calc_dead_at(const fault::FaultPlan& plan, const CkptPolicy& policy,
                  int calc, std::uint32_t frame) {
  const auto cf = plan.crash_frame(calc);
  return cf && *cf <= frame && !policy.restarts(*cf);
}

std::vector<int> alive_for_exec(const fault::FaultPlan& plan,
                                const CkptPolicy& policy,
                                std::uint32_t frame, int ncalc) {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(ncalc));
  for (int c = 0; c < ncalc; ++c) {
    if (!calc_dead_at(plan, policy, c, frame)) out.push_back(c);
  }
  return out;
}

}  // namespace psanim::ckpt

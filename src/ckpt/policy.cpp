#include "ckpt/policy.hpp"

namespace psanim::ckpt {

bool calc_dead_at(const fault::FaultPlan& plan, const CkptPolicy& policy,
                  int calc, std::uint32_t frame) {
  const auto cf = plan.crash_frame(calc);
  return cf && *cf <= frame && !policy.restarts(*cf);
}

std::vector<int> alive_for_exec(const fault::FaultPlan& plan,
                                const CkptPolicy& policy,
                                std::uint32_t frame, int ncalc) {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(ncalc));
  for (int c = 0; c < ncalc; ++c) {
    if (!calc_dead_at(plan, policy, c, frame)) out.push_back(c);
  }
  return out;
}

}  // namespace psanim::ckpt

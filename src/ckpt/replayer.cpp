#include "ckpt/replayer.hpp"

#include <cstring>
#include <span>

#include "ckpt/format.hpp"

namespace psanim::ckpt {

namespace {

bool same_image(const render::Framebuffer& a, const render::Framebuffer& b) {
  if (a.width() != b.width() || a.height() != b.height()) return false;
  const auto& ca = a.colors();
  const auto& cb = b.colors();
  return ca.size() == cb.size() &&
         std::memcmp(ca.data(), cb.data(),
                     ca.size() * sizeof(render::Color)) == 0;
}

}  // namespace

Replayer::Replayer(const core::Scene& scene, const core::SimSettings& settings,
                   const cluster::ClusterSpec& spec,
                   const cluster::Placement& placement,
                   const cluster::CostModel& cost,
                   mp::RuntimeOptions rt_options)
    : scene_(scene),
      set_(settings),
      spec_(spec),
      placement_(placement),
      cost_(cost),
      rt_options_(rt_options) {}

ReplayReport Replayer::verify(const Vault& vault,
                              std::uint32_t snapshot_frame,
                              const render::Framebuffer& expected) const {
  ReplayReport rep;
  rep.snapshot_frame = snapshot_frame;

  const auto man = vault.manifest(snapshot_frame);
  if (!man) {
    rep.detail = "no sealed manifest for frame " +
                 std::to_string(snapshot_frame);
    return rep;
  }
  rep.manifest_complete = true;

  for (const auto& e : man->entries) {
    const std::vector<std::byte>* image = vault.fetch(e.rank, snapshot_frame);
    if (!image) {
      rep.detail = "manifest lists rank " + std::to_string(e.rank) +
                   " but its image is missing";
      return rep;
    }
    if (image->size() != e.bytes) {
      rep.detail = "rank " + std::to_string(e.rank) + " image is " +
                   std::to_string(image->size()) + " bytes, manifest says " +
                   std::to_string(e.bytes);
      return rep;
    }
    const std::uint32_t crc =
        crc32(std::span<const std::byte>(image->data(), image->size()));
    if (crc != e.crc) {
      rep.detail = "rank " + std::to_string(e.rank) +
                   " image CRC does not match its sealed digest";
      return rep;
    }
  }
  rep.images_verified = true;

  // Resume in a scratch copy: replayed frames re-capture snapshots, and
  // the oracle must leave the audited vault untouched.
  Vault scratch(vault);
  core::SimSettings resumed = set_;
  resumed.resume_from = snapshot_frame;
  resumed.ckpt_vault = &scratch;
  const core::ParallelResult result = core::run_parallel(
      scene_, resumed, spec_, placement_, cost_, rt_options_);
  rep.frames_replayed = set_.frames - (snapshot_frame + 1);
  rep.framebuffer_identical = same_image(result.final_frame, expected);
  if (!rep.framebuffer_identical) {
    rep.detail = "resumed run's final framebuffer differs from the original";
  }
  return rep;
}

}  // namespace psanim::ckpt

#include "ckpt/state_codec.hpp"

#include <string>

#include "ckpt/format.hpp"
#include "obs/flight_recorder.hpp"

namespace psanim::ckpt {

void encode_store(mp::Writer& w, const psys::SlicedStore& store) {
  w.put<std::int32_t>(store.axis());
  w.put(store.lo());
  w.put(store.hi());
  const auto& slices = store.raw_slices();
  w.put<std::uint64_t>(slices.size());
  for (const auto& slice : slices) w.put_vector(slice);
}

void decode_store(mp::Reader& r, psys::SlicedStore& store) {
  const auto axis = r.get<std::int32_t>();
  if (axis != store.axis()) {
    throw SnapshotError("snapshot store: axis " + std::to_string(axis) +
                        " does not match configured axis " +
                        std::to_string(store.axis()));
  }
  const float lo = r.get<float>();
  const float hi = r.get<float>();
  const auto n = r.get<std::uint64_t>();
  std::vector<std::vector<psys::Particle>> slices;
  slices.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    slices.push_back(r.get_vector<psys::Particle>());
  }
  store.adopt_slices(lo, hi, std::move(slices));
}

void encode_telemetry(mp::Writer& w, const trace::Telemetry& tel) {
  w.put_vector(tel.calc_frames());
  w.put_vector(tel.manager_frames());
  w.put_vector(tel.image_frames());
}

trace::Telemetry decode_telemetry(mp::Reader& r) {
  trace::Telemetry tel;
  for (const auto& s : r.get_vector<trace::CalcFrameStats>()) {
    tel.add_calc(s);
  }
  for (const auto& s : r.get_vector<trace::ManagerFrameStats>()) {
    tel.add_manager(s);
  }
  for (const auto& s : r.get_vector<trace::ImageFrameStats>()) {
    tel.add_image(s);
  }
  return tel;
}

void encode_flight_ring(mp::Writer& w, const obs::RankRecorder& rec,
                        const obs::LabelTable& labels) {
  obs::encode_ring(w, rec, labels);
}

std::vector<obs::SpanRecord> decode_flight_ring(mp::Reader& r,
                                                obs::LabelTable& labels) {
  return obs::decode_ring(r, labels);
}

}  // namespace psanim::ckpt

#pragma once

// Snapshot images: SnapshotWriter assembles one rank's frame-barrier state
// into a self-describing byte image; SnapshotReader validates an image
// (magic, version, per-section CRC) and hands out per-section readers.
//
// Image layout (all little-endian PODs via mp::Writer):
//
//   u32  kSnapshotMagic
//   u8   kFormatMagicByte      -- shared with wire control headers
//   u8   kFormatVersion
//   u8   role                  -- ckpt::Role
//   u8   reserved (0)
//   i32  rank
//   u32  frame                 -- barrier frame the state is valid AFTER
//   u64  seed                  -- root RNG seed (self-description)
//   u32  section_count
//   section_count x:
//     u32  section id
//     u64  payload bytes
//     u32  CRC-32 of payload
//     payload

#include <cstdint>
#include <deque>
#include <vector>

#include "ckpt/format.hpp"
#include "mp/message.hpp"

namespace psanim::ckpt {

struct SnapshotHeader {
  Role role = Role::kManager;
  int rank = -1;
  std::uint32_t frame = 0;
  std::uint64_t seed = 0;
  std::uint32_t section_count = 0;
};

class SnapshotWriter {
 public:
  SnapshotWriter(Role role, int rank, std::uint32_t frame,
                 std::uint64_t seed);

  /// Open a new section and return the writer for its payload. The
  /// reference stays valid until finish() — sections live in a deque.
  mp::Writer& begin_section(SectionId id);

  /// Assemble header + sections into the final image. The writer is spent
  /// afterwards.
  std::vector<std::byte> finish();

 private:
  SnapshotHeader hdr_;
  std::deque<std::pair<SectionId, mp::Writer>> sections_;
};

class SnapshotReader {
 public:
  /// Takes ownership of a copy of the image; throws SnapshotError on bad
  /// magic, version skew, truncation, or any section CRC mismatch.
  explicit SnapshotReader(std::vector<std::byte> image);

  const SnapshotHeader& header() const { return hdr_; }

  bool has(SectionId id) const;
  /// Reader over one section's payload; throws SnapshotError if absent.
  mp::Reader section(SectionId id) const;

 private:
  struct Span {
    SectionId id;
    std::size_t offset;
    std::size_t size;
  };

  std::vector<std::byte> image_;
  SnapshotHeader hdr_;
  std::vector<Span> spans_;
};

}  // namespace psanim::ckpt

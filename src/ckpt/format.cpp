#include "ckpt/format.hpp"

#include <array>

namespace psanim::ckpt {

namespace {

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kCrcTable = make_crc_table();

}  // namespace

std::uint32_t crc32(std::span<const std::byte> bytes) {
  std::uint32_t c = 0xFFFFFFFFu;
  for (const std::byte b : bytes) {
    c = kCrcTable[(c ^ static_cast<std::uint8_t>(b)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace psanim::ckpt

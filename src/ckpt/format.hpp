#pragma once

// psanim::ckpt snapshot format constants and integrity primitives.
//
// A snapshot is a versioned, self-describing binary image of one rank's
// frame-barrier state: a fixed header (magic, format version, role, rank,
// frame, root seed) followed by typed sections, each carrying its own
// length and CRC-32. The format magic byte and version are shared with the
// core wire codecs (core::put_control_header), so a snapshot produced by
// one build and a control message produced by another fail loudly on skew
// instead of misdecoding.
//
// What is NOT in a snapshot, by design of the execution model:
//  * RNG state — every stream is derived fresh from (seed, system, frame,
//    action, calc); the base generators never advance, so the header's
//    seed fully describes them.
//  * Virtual clocks — recovery costs time; clocks never roll back. A
//    kClock section records the readings for forensics only.
//  * Pending exchanges — snapshots are captured at the frame barrier,
//    where the only in-flight messages are image-generator frame acks,
//    whose count is a pure function of (crash frame, epoch start) and is
//    re-derived on rollback.

#include <cstdint>
#include <span>
#include <stdexcept>

namespace psanim::ckpt {

/// First 32 bits of every snapshot image ("PSK1").
inline constexpr std::uint32_t kSnapshotMagic = 0x314B5350u;
/// One-byte format magic shared with the wire control header.
inline constexpr std::uint8_t kFormatMagicByte = 0xA7;
/// Bump on any incompatible change to snapshot or control layouts.
inline constexpr std::uint8_t kFormatVersion = 1;

/// Which role produced a snapshot (restores verify they read their own).
enum class Role : std::uint8_t {
  kManager = 0,
  kImageGen = 1,
  kCalculator = 2,
};

/// Section identifiers. A role writes only the sections it owns; readers
/// look sections up by id, so optional sections can be skipped.
enum class SectionId : std::uint32_t {
  kStores = 1,     ///< per-system sliced particle stores (calculators)
  kDecomps = 2,    ///< per-system decomposition intervals
  kLbState = 3,    ///< per-system load-balancer policy state (manager)
  kTelemetry = 4,  ///< per-frame stats accumulated so far
  kClock = 5,      ///< virtual-clock readings at capture (forensics)
  kFlightRecorder = 6,  ///< bounded ring of recent obs records (optional)
};

/// Thrown on any snapshot integrity failure: bad magic, version skew,
/// CRC mismatch, truncation, or a section/field that contradicts the
/// restoring role's configuration.
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// CRC-32 (IEEE 802.3, reflected) over `bytes`.
std::uint32_t crc32(std::span<const std::byte> bytes);

}  // namespace psanim::ckpt

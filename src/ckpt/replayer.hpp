#pragma once

// Replayer: the checkpoint subsystem's correctness oracle. It re-executes
// a run from a sealed snapshot frame and checks that the resumed run
// reproduces the original's final framebuffer bit-for-bit — the property
// that makes restart-from-checkpoint recovery safe to substitute for
// domain-merge degradation.
//
// Verification happens against a *copy* of the vault: replayed frames
// re-capture their snapshots, and the oracle must not mutate the images
// it is judging.

#include <cstdint>
#include <string>

#include "ckpt/vault.hpp"
#include "cluster/cluster_spec.hpp"
#include "cluster/placement.hpp"
#include "core/simulation.hpp"

namespace psanim::ckpt {

struct ReplayReport {
  std::uint32_t snapshot_frame = 0;
  std::uint32_t frames_replayed = 0;
  /// The vault holds a sealed manifest for the frame.
  bool manifest_complete = false;
  /// Every manifest entry's image is present with matching size and CRC.
  bool images_verified = false;
  /// The resumed run's final framebuffer equals the original's bit-exactly.
  bool framebuffer_identical = false;
  /// First failure, empty when everything checked out.
  std::string detail;

  bool ok() const {
    return manifest_complete && images_verified && framebuffer_identical;
  }
};

class Replayer {
 public:
  /// All references must outlive the Replayer. `settings` is the original
  /// run's configuration (without resume_from).
  Replayer(const core::Scene& scene, const core::SimSettings& settings,
           const cluster::ClusterSpec& spec,
           const cluster::Placement& placement,
           const cluster::CostModel& cost = {},
           mp::RuntimeOptions rt_options = {});

  /// Audit the checkpoint at `snapshot_frame` (manifest + image CRCs),
  /// resume a run from it in a scratch copy of `vault`, and compare the
  /// final framebuffer bit-for-bit against `expected`.
  ReplayReport verify(const Vault& vault, std::uint32_t snapshot_frame,
                      const render::Framebuffer& expected) const;

 private:
  const core::Scene& scene_;
  const core::SimSettings& set_;
  const cluster::ClusterSpec& spec_;
  const cluster::Placement& placement_;
  cluster::CostModel cost_;
  mp::RuntimeOptions rt_options_;
};

}  // namespace psanim::ckpt

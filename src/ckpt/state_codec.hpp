#pragma once

// Bit-exact codecs for role state that has no wire codec of its own.
//
// SlicedStore serialization preserves the per-slice layout — not just the
// particle multiset — because slice iteration order decides RNG
// consumption order in the action phase: restoring the concatenated
// snapshot through insert_batch would re-bucket particles and break
// bit-exact replay (Decomposition already has encode/decode; load-balancer
// state goes through LoadBalancer::save_state/load_state).

#include <vector>

#include "mp/message.hpp"
#include "obs/recorder.hpp"
#include "obs/span.hpp"
#include "psys/store.hpp"
#include "trace/telemetry.hpp"

namespace psanim::ckpt {

void encode_store(mp::Writer& w, const psys::SlicedStore& store);
/// Restores bounds and the exact slice layout into `store`; throws
/// SnapshotError when the serialized axis contradicts the store's.
void decode_store(mp::Reader& r, psys::SlicedStore& store);

void encode_telemetry(mp::Writer& w, const trace::Telemetry& tel);
trace::Telemetry decode_telemetry(mp::Reader& r);

/// kFlightRecorder section payload: the rank's recent-record ring with a
/// self-contained label table (see obs/flight_recorder.hpp).
void encode_flight_ring(mp::Writer& w, const obs::RankRecorder& rec,
                        const obs::LabelTable& labels);
std::vector<obs::SpanRecord> decode_flight_ring(mp::Reader& r,
                                                obs::LabelTable& labels);

}  // namespace psanim::ckpt

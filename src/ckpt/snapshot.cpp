#include "ckpt/snapshot.hpp"

#include <cstring>
#include <string>
#include <type_traits>

namespace psanim::ckpt {

SnapshotWriter::SnapshotWriter(Role role, int rank, std::uint32_t frame,
                               std::uint64_t seed) {
  hdr_.role = role;
  hdr_.rank = rank;
  hdr_.frame = frame;
  hdr_.seed = seed;
}

mp::Writer& SnapshotWriter::begin_section(SectionId id) {
  sections_.emplace_back(id, mp::Writer{});
  return sections_.back().second;
}

std::vector<std::byte> SnapshotWriter::finish() {
  mp::Writer head;
  head.put(kSnapshotMagic);
  head.put(kFormatMagicByte);
  head.put(kFormatVersion);
  head.put(static_cast<std::uint8_t>(hdr_.role));
  head.put<std::uint8_t>(0);  // reserved
  head.put<std::int32_t>(hdr_.rank);
  head.put(hdr_.frame);
  head.put(hdr_.seed);
  head.put<std::uint32_t>(static_cast<std::uint32_t>(sections_.size()));

  std::vector<std::byte> out = head.take();
  for (auto& [id, w] : sections_) {
    const auto& payload = w.bytes();
    mp::Writer sec;
    sec.put(static_cast<std::uint32_t>(id));
    sec.put<std::uint64_t>(payload.size());
    sec.put(crc32(payload));
    const auto& sec_bytes = sec.bytes();
    out.insert(out.end(), sec_bytes.begin(), sec_bytes.end());
    out.insert(out.end(), payload.begin(), payload.end());
  }
  sections_.clear();
  return out;
}

SnapshotReader::SnapshotReader(std::vector<std::byte> image)
    : image_(std::move(image)) {
  std::size_t pos = 0;
  const auto read = [&]<typename T>(std::type_identity<T>) -> T {
    if (image_.size() - pos < sizeof(T)) {
      throw SnapshotError("snapshot: truncated image");
    }
    T v;
    std::memcpy(&v, image_.data() + pos, sizeof(T));
    pos += sizeof(T);
    return v;
  };
  const auto u8 = [&] { return read(std::type_identity<std::uint8_t>{}); };
  const auto u32 = [&] { return read(std::type_identity<std::uint32_t>{}); };

  if (u32() != kSnapshotMagic) {
    throw SnapshotError("snapshot: bad magic — not a psanim snapshot");
  }
  if (u8() != kFormatMagicByte) {
    throw SnapshotError("snapshot: bad format magic byte");
  }
  const auto version = u8();
  if (version != kFormatVersion) {
    throw SnapshotError("snapshot: format version " +
                        std::to_string(version) + ", this build reads " +
                        std::to_string(kFormatVersion));
  }
  hdr_.role = static_cast<Role>(u8());
  u8();  // reserved
  hdr_.rank = read(std::type_identity<std::int32_t>{});
  hdr_.frame = u32();
  hdr_.seed = read(std::type_identity<std::uint64_t>{});
  hdr_.section_count = u32();

  for (std::uint32_t i = 0; i < hdr_.section_count; ++i) {
    const auto id = static_cast<SectionId>(u32());
    const auto size = read(std::type_identity<std::uint64_t>{});
    const auto crc = u32();
    if (size > image_.size() - pos) {
      throw SnapshotError("snapshot: truncated section " +
                          std::to_string(static_cast<std::uint32_t>(id)));
    }
    const auto payload = std::span<const std::byte>(image_).subspan(
        pos, static_cast<std::size_t>(size));
    if (crc32(payload) != crc) {
      throw SnapshotError("snapshot: CRC mismatch in section " +
                          std::to_string(static_cast<std::uint32_t>(id)) +
                          " — image is corrupt");
    }
    spans_.push_back(Span{id, pos, static_cast<std::size_t>(size)});
    pos += static_cast<std::size_t>(size);
  }
}

bool SnapshotReader::has(SectionId id) const {
  for (const auto& s : spans_) {
    if (s.id == id) return true;
  }
  return false;
}

mp::Reader SnapshotReader::section(SectionId id) const {
  for (const auto& s : spans_) {
    if (s.id == id) {
      return mp::Reader{
          std::span<const std::byte>(image_).subspan(s.offset, s.size)};
    }
  }
  throw SnapshotError("snapshot: missing section " +
                      std::to_string(static_cast<std::uint32_t>(id)));
}

}  // namespace psanim::ckpt

#pragma once

// Checkpoint policy: when snapshots are taken and how calculator crashes
// are recovered.
//
// All of the policy's answers are pure functions of (policy, frame), for
// the same reason PR 1's crash membership is a pure function of
// (plan, frame): every role must reach the identical recovery decision at
// the identical frame boundary without extra protocol rounds. A crash at
// frame f is "restart-eligible" iff the policy's recovery mode is restart
// AND a snapshot frame exists strictly before f; then every role rolls
// back to that snapshot and replays, the crashed calculator respawning
// from its own vault image. Otherwise the PR-1 domain-merge degradation
// applies.

#include <cstdint>
#include <optional>
#include <vector>

#include "fault/fault_plan.hpp"
#include "platform/disk.hpp"

namespace psanim::ckpt {

/// What happens when a calculator crash is detected.
enum class RecoveryMode : std::uint8_t {
  /// Always merge the dead domain into a survivor (PR-1 behavior).
  kMergeOnly = 0,
  /// Roll every role back to the latest snapshot before the crash frame,
  /// respawn the dead calculator from its vault image and replay; falls
  /// back to merge when no snapshot precedes the crash.
  kRestart = 1,
};

struct CkptPolicy {
  /// Snapshot after every `interval`-th frame (i.e. after frames
  /// interval-1, 2*interval-1, ...). 0 disables checkpointing; negative
  /// values are rejected by SimSettings::validate().
  std::int32_t interval = 0;
  RecoveryMode recovery = RecoveryMode::kRestart;
  /// Storage the vault's snapshot images are written to / read from. Each
  /// store and fetch charges the owning rank `disk.write_s/read_s(bytes)`
  /// of virtual I/O time. Default: free (the pre-platform behavior). A
  /// platform whose node disk is non-free overrides this per rank.
  platform::DiskModel disk{};

  bool enabled() const { return interval > 0; }

  /// Capture a snapshot after frame `frame` completes?
  bool due_after(std::uint32_t frame) const {
    return enabled() &&
           (frame + 1) % static_cast<std::uint32_t>(interval) == 0;
  }

  /// Latest snapshot frame strictly before `frame`, if any.
  std::optional<std::uint32_t> latest_snapshot_before(
      std::uint32_t frame) const {
    if (!enabled()) return std::nullopt;
    const auto iv = static_cast<std::uint32_t>(interval);
    const std::uint32_t k = frame / iv * iv;
    if (k == 0) return std::nullopt;
    return k - 1;
  }

  /// Is a crash at `crash_frame` recovered by restart-from-checkpoint
  /// (vs. domain merge)?
  bool restarts(std::uint32_t crash_frame) const {
    return recovery == RecoveryMode::kRestart &&
           latest_snapshot_before(crash_frame).has_value();
  }

  /// Ascending snapshot frames usable as suspend points for an animation
  /// of `frames` frames: every f with due_after(f) and f + 1 < frames
  /// (the final frame's snapshot leaves nothing to resume), restricted to
  /// f > after when `after` is set (a run resumed from `after` can only
  /// suspend at a later snapshot). The farm walks this list to pick the
  /// earliest vacate point not yet passed by a job being preempted.
  std::vector<std::uint32_t> snapshot_frames(
      std::uint32_t frames,
      std::optional<std::uint32_t> after = std::nullopt) const;

  /// The earliest usable suspend frame >= `frame` (same restrictions as
  /// snapshot_frames), or nullopt when none remains — the farm's victim
  /// costing query: how far a running job at `frame` must drain before it
  /// can vacate. O(1), no list materialized.
  std::optional<std::uint32_t> next_snapshot_at_or_after(
      std::uint32_t frame, std::uint32_t frames,
      std::optional<std::uint32_t> after = std::nullopt) const;
};

/// Recovery-aware membership: is `calc` permanently dead at the start of
/// `frame`? A restart-recovered calculator is never permanently dead — it
/// is respawned within the frame its crash is detected.
bool calc_dead_at(const fault::FaultPlan& plan, const CkptPolicy& policy,
                  int calc, std::uint32_t frame);

/// Ascending indices of calculators executing frame `frame` (the
/// recovery-aware refinement of FaultPlan::alive_calcs).
std::vector<int> alive_for_exec(const fault::FaultPlan& plan,
                                const CkptPolicy& policy,
                                std::uint32_t frame, int ncalc);

}  // namespace psanim::ckpt

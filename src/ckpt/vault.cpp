#include "ckpt/vault.hpp"

namespace psanim::ckpt {

Vault::Vault(const Vault& o) {
  std::lock_guard lock(o.mu_);
  images_ = o.images_;
  manifests_ = o.manifests_;
}

Vault& Vault::operator=(const Vault& o) {
  if (this == &o) return *this;
  // Lock ordering: copy the source under its own lock first, then swap in
  // under ours — never hold both.
  auto images = [&] {
    std::lock_guard lock(o.mu_);
    return o.images_;
  }();
  auto manifests = [&] {
    std::lock_guard lock(o.mu_);
    return o.manifests_;
  }();
  std::lock_guard lock(mu_);
  images_ = std::move(images);
  manifests_ = std::move(manifests);
  return *this;
}

void Vault::store(int rank, std::uint32_t frame,
                  std::vector<std::byte> image) {
  std::lock_guard lock(mu_);
  images_[{rank, frame}] = std::move(image);
}

const std::vector<std::byte>* Vault::fetch(int rank,
                                           std::uint32_t frame) const {
  std::lock_guard lock(mu_);
  const auto it = images_.find({rank, frame});
  return it == images_.end() ? nullptr : &it->second;
}

void Vault::seal(Manifest m) {
  std::lock_guard lock(mu_);
  manifests_[m.frame] = std::move(m);
}

std::optional<Manifest> Vault::manifest(std::uint32_t frame) const {
  std::lock_guard lock(mu_);
  const auto it = manifests_.find(frame);
  if (it == manifests_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::uint32_t> Vault::sealed_frames() const {
  std::lock_guard lock(mu_);
  std::vector<std::uint32_t> out;
  out.reserve(manifests_.size());
  for (const auto& [frame, m] : manifests_) out.push_back(frame);
  return out;
}

bool Vault::has_sealed(std::uint32_t frame) const {
  std::lock_guard lock(mu_);
  return manifests_.find(frame) != manifests_.end();
}

std::optional<std::uint32_t> Vault::latest_sealed_at_or_before(
    std::uint32_t frame) const {
  std::lock_guard lock(mu_);
  auto it = manifests_.upper_bound(frame);
  if (it == manifests_.begin()) return std::nullopt;
  return std::prev(it)->first;
}

std::size_t Vault::image_count() const {
  std::lock_guard lock(mu_);
  return images_.size();
}

std::size_t Vault::total_bytes() const {
  std::lock_guard lock(mu_);
  std::size_t n = 0;
  for (const auto& [key, img] : images_) n += img.size();
  return n;
}

}  // namespace psanim::ckpt

#pragma once

// Distributed cloth: column-partitioned mass-spring simulation over the
// same message-passing substrate as the particle model.
//
// Because connectivity is fixed, the decomposition is static (each
// calculator owns a contiguous column range) and the per-step
// communication is a ghost exchange: each process ships its two boundary
// columns (the bend springs reach two columns deep) to each neighbor and
// reads the neighbors' in return. The parallel state is BITWISE identical
// to the sequential solver's — forces are evaluated from the same
// start-of-step snapshot in the same stencil order.

#include <vector>

#include "cloth/mesh.hpp"
#include "cloth/solver.hpp"
#include "cluster/cost_model.hpp"
#include "mp/runtime.hpp"

namespace psanim::cloth {

struct ClothCostModel {
  /// Seconds per spring evaluation on the reference machine.
  double spring_cost = 80e-9;
  /// Seconds per node integration.
  double integrate_cost = 40e-9;
  /// Per-node serialization for ghost exchange.
  double pack_cost = 30e-9;
};

struct ClothRunResult {
  double sim_seconds = 0.0;  ///< virtual makespan (max rank finish)
  ClothMesh final_state;     ///< gathered full mesh after the last step
  std::vector<mp::ProcessResult> procs;
};

/// Run `steps` of the mesh on `ncalc` processes placed by `placement` on
/// `spec` (plain ranks 0..ncalc-1; no manager/image generator — the cloth
/// extension demonstrates the substrate, not the full animation model).
ClothRunResult run_cloth_parallel(const ClothMesh& initial, int steps,
                                  float dt,
                                  std::vector<psys::DomainPtr> obstacles,
                                  int ncalc,
                                  const cluster::ClusterSpec& spec,
                                  const cluster::Placement& placement,
                                  const cluster::CostModel& cost = {},
                                  const ClothCostModel& cloth_cost = {});

/// Sequential twin with the same virtual-time accounting; the speedup
/// baseline for bench/ext_cloth_scaling.
struct ClothSeqResult {
  double sim_seconds = 0.0;
  ClothMesh final_state;
};
ClothSeqResult run_cloth_sequential(const ClothMesh& initial, int steps,
                                    float dt,
                                    std::vector<psys::DomainPtr> obstacles,
                                    double rate = 1.0,
                                    const ClothCostModel& cloth_cost = {});

/// Column range [lo, hi) owned by rank r of n (balanced split).
std::pair<int, int> column_range(int cols, int rank, int nranks);

}  // namespace psanim::cloth

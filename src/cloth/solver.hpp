#pragma once

// Cloth integration: per-node spring force evaluation (with an abstract
// neighbor accessor so the distributed solver can substitute ghost
// columns) and a semi-implicit Euler step with obstacle projection.

#include <functional>
#include <optional>
#include <span>

#include "cloth/mesh.hpp"
#include "psys/source_domain.hpp"

namespace psanim::cloth {

/// Reads node state at (r, c); returns nullopt outside the grid. The
/// distributed solver answers from owned columns or ghost columns.
using NodeAccessor =
    std::function<std::optional<std::pair<Vec3, Vec3>>(int r, int c)>;

/// Spring + gravity + drag force on node (r, c), evaluating the stencil
/// in its fixed order (bitwise identical across partitions).
Vec3 node_force(const ClothParams& params, Vec3 pos, Vec3 vel, float mass,
                int r, int c, const NodeAccessor& neighbor);

/// Number of spring evaluations node_force performs for an interior node
/// (cost-model accounting).
std::size_t stencil_size();

/// Semi-implicit Euler step over the whole mesh (sequential reference):
/// forces from the CURRENT state, then v += F/m dt, x += v dt, then
/// project out of obstacles (kill the inward velocity component).
void step_sequential(ClothMesh& mesh, float dt,
                     std::span<const psys::DomainPtr> obstacles);

/// Project a position/velocity pair out of an obstacle if penetrating.
void resolve_obstacle(const psys::Domain& obstacle, Vec3& pos, Vec3& vel);

}  // namespace psanim::cloth

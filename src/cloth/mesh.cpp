#include "cloth/mesh.hpp"

#include <cmath>

namespace psanim::cloth {

const std::vector<SpringStencil>& spring_stencil() {
  using K = SpringStencil::Kind;
  static const std::vector<SpringStencil> stencil = [] {
    const float rt2 = std::sqrt(2.0f);
    return std::vector<SpringStencil>{
        // Structural: the four grid neighbors.
        {0, -1, 1.0f, K::kStructural},
        {0, 1, 1.0f, K::kStructural},
        {-1, 0, 1.0f, K::kStructural},
        {1, 0, 1.0f, K::kStructural},
        // Shear: the four diagonals.
        {-1, -1, rt2, K::kShear},
        {-1, 1, rt2, K::kShear},
        {1, -1, rt2, K::kShear},
        {1, 1, rt2, K::kShear},
        // Bend: two apart along each axis.
        {0, -2, 2.0f, K::kBend},
        {0, 2, 2.0f, K::kBend},
        {-2, 0, 2.0f, K::kBend},
        {2, 0, 2.0f, K::kBend},
    };
  }();
  return stencil;
}

ClothMesh ClothMesh::grid(const ClothParams& params, Vec3 origin, Vec3 dx,
                          Vec3 dy) {
  std::vector<ClothNode> nodes(static_cast<std::size_t>(params.rows) *
                               static_cast<std::size_t>(params.cols));
  const Vec3 ux = dx.normalized() * params.spacing;
  const Vec3 uy = dy.normalized() * params.spacing;
  for (int r = 0; r < params.rows; ++r) {
    for (int c = 0; c < params.cols; ++c) {
      ClothNode n;
      n.pos = origin + ux * static_cast<float>(c) + uy * static_cast<float>(r);
      n.mass = params.mass;
      nodes[static_cast<std::size_t>(r) * static_cast<std::size_t>(params.cols) +
            static_cast<std::size_t>(c)] = n;
    }
  }
  return ClothMesh(params, std::move(nodes));
}

double ClothMesh::kinetic_energy() const {
  double e = 0.0;
  for (const auto& n : nodes_) {
    e += 0.5 * n.mass * static_cast<double>(n.vel.length2());
  }
  return e;
}

}  // namespace psanim::cloth

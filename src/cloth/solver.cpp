#include "cloth/solver.hpp"

namespace psanim::cloth {

std::size_t stencil_size() { return spring_stencil().size(); }

Vec3 node_force(const ClothParams& params, Vec3 pos, Vec3 vel, float mass,
                int r, int c, const NodeAccessor& neighbor) {
  Vec3 force = params.gravity * mass - vel * params.air_drag;
  for (const auto& s : spring_stencil()) {
    const auto other = neighbor(r + s.dr, c + s.dc);
    if (!other) continue;
    const auto& [opos, ovel] = *other;
    const Vec3 d = opos - pos;
    const float len = d.length();
    if (len < 1e-7f) continue;
    const Vec3 dir = d / len;
    const float rest = params.spacing * s.rest_factor;
    const float k = s.kind == SpringStencil::Kind::kStructural
                        ? params.k_structural
                        : (s.kind == SpringStencil::Kind::kShear
                               ? params.k_shear
                               : params.k_bend);
    // Hooke + along-spring damping of the relative velocity.
    const float v_rel = (ovel - vel).dot(dir);
    force += dir * (k * (len - rest) + params.damping * v_rel);
  }
  return force;
}

void resolve_obstacle(const psys::Domain& obstacle, Vec3& pos, Vec3& vel) {
  const psys::SurfaceHit hit = obstacle.surface(pos);
  if (hit.signed_distance >= 0.0f) return;
  pos += hit.normal * (-hit.signed_distance + 1e-4f);
  const float vn = vel.dot(hit.normal);
  if (vn < 0.0f) vel -= hit.normal * vn;  // kill the inward component
}

void step_sequential(ClothMesh& mesh, float dt,
                     std::span<const psys::DomainPtr> obstacles) {
  const ClothParams& p = mesh.params();
  const auto& nodes = mesh.nodes();
  const NodeAccessor read = [&](int r, int c)
      -> std::optional<std::pair<Vec3, Vec3>> {
    if (!mesh.in_grid(r, c)) return std::nullopt;
    const ClothNode& n = nodes[mesh.index(r, c)];
    return std::make_pair(n.pos, n.vel);
  };

  // Forces from the pre-step state, then integrate — matches what the
  // distributed solver computes from its start-of-step ghost snapshot.
  std::vector<Vec3> forces(mesh.node_count());
  for (int r = 0; r < mesh.rows(); ++r) {
    for (int c = 0; c < mesh.cols(); ++c) {
      const ClothNode& n = mesh.node(r, c);
      forces[mesh.index(r, c)] =
          node_force(p, n.pos, n.vel, n.mass, r, c, read);
    }
  }
  for (int r = 0; r < mesh.rows(); ++r) {
    for (int c = 0; c < mesh.cols(); ++c) {
      ClothNode& n = mesh.node(r, c);
      if (n.pinned) continue;
      n.vel += forces[mesh.index(r, c)] * (dt / n.mass);
      n.pos += n.vel * dt;
      for (const auto& obstacle : obstacles) {
        resolve_obstacle(*obstacle, n.pos, n.vel);
      }
    }
  }
}

}  // namespace psanim::cloth

#include "cloth/distributed.hpp"

#include <algorithm>

#include "mp/message.hpp"

namespace psanim::cloth {

namespace {

constexpr int kTagGhost = 200;
constexpr int kTagGather = 201;
/// Bend springs reach two columns deep.
constexpr int kGhostDepth = 2;

static_assert(std::is_trivially_copyable_v<ClothNode>,
              "ghost columns travel as raw bytes");

/// Pack columns [lo, hi) of the mesh.
mp::Writer pack_columns(const ClothMesh& mesh, int lo, int hi) {
  mp::Writer w;
  w.put<std::int32_t>(lo);
  w.put<std::int32_t>(hi);
  std::vector<ClothNode> nodes;
  nodes.reserve(static_cast<std::size_t>(mesh.rows()) *
                static_cast<std::size_t>(std::max(0, hi - lo)));
  for (int c = lo; c < hi; ++c) {
    for (int r = 0; r < mesh.rows(); ++r) {
      nodes.push_back(mesh.node(r, c));
    }
  }
  w.put_vector(nodes);
  return w;
}

void unpack_columns(ClothMesh& mesh, const mp::Message& m) {
  mp::Reader rd(m);
  const int lo = rd.get<std::int32_t>();
  const int hi = rd.get<std::int32_t>();
  const auto nodes = rd.get_vector<ClothNode>();
  std::size_t i = 0;
  for (int c = lo; c < hi; ++c) {
    for (int r = 0; r < mesh.rows(); ++r) {
      mesh.node(r, c) = nodes.at(i++);
    }
  }
}

}  // namespace

std::pair<int, int> column_range(int cols, int rank, int nranks) {
  const int base = cols / nranks;
  const int rem = cols % nranks;
  const int lo = rank * base + std::min(rank, rem);
  const int hi = lo + base + (rank < rem ? 1 : 0);
  return {lo, hi};
}

ClothSeqResult run_cloth_sequential(const ClothMesh& initial, int steps,
                                    float dt,
                                    std::vector<psys::DomainPtr> obstacles,
                                    double rate,
                                    const ClothCostModel& cloth_cost) {
  ClothSeqResult result{0.0, initial};
  for (int s = 0; s < steps; ++s) {
    step_sequential(result.final_state, dt, obstacles);
    const auto n = static_cast<double>(result.final_state.node_count());
    result.sim_seconds +=
        (n * static_cast<double>(stencil_size()) * cloth_cost.spring_cost +
         n * cloth_cost.integrate_cost) /
        rate;
  }
  return result;
}

ClothRunResult run_cloth_parallel(const ClothMesh& initial, int steps,
                                  float dt,
                                  std::vector<psys::DomainPtr> obstacles,
                                  int ncalc,
                                  const cluster::ClusterSpec& spec,
                                  const cluster::Placement& placement,
                                  const cluster::CostModel& cost,
                                  const ClothCostModel& cloth_cost) {
  if (placement.world_size() != ncalc) {
    throw std::invalid_argument(
        "run_cloth_parallel: placement must cover exactly the calculators");
  }
  mp::Runtime rt(ncalc, cluster::make_link_cost_fn(spec, placement, cost));
  const auto rates = cluster::rank_rates(spec, placement, cost.smp_contention);

  // Rank 0 assembles the final mesh here after the gather.
  ClothMesh assembled = initial;

  const auto procs = rt.run([&](mp::Endpoint& ep) {
    const int rank = ep.rank();
    const double rate = rates.at(static_cast<std::size_t>(rank));
    const auto [c0, c1] = column_range(initial.cols(), rank, ncalc);
    ClothMesh mesh = initial;  // full array; only [c0, c1) is authoritative

    const int left = rank - 1;
    const int right = rank + 1;

    std::vector<Vec3> forces(
        static_cast<std::size_t>(mesh.rows()) *
        static_cast<std::size_t>(std::max(0, c1 - c0)));

    const NodeAccessor read = [&](int r, int c)
        -> std::optional<std::pair<Vec3, Vec3>> {
      if (!mesh.in_grid(r, c)) return std::nullopt;
      const ClothNode& n = mesh.node(r, c);
      return std::make_pair(n.pos, n.vel);
    };

    for (int step = 0; step < steps; ++step) {
      // Ghost exchange: boundary columns to each neighbor, theirs back.
      const int send_left_hi = std::min(c1, c0 + kGhostDepth);
      const int send_right_lo = std::max(c0, c1 - kGhostDepth);
      if (left >= 0) {
        ep.charge((send_left_hi - c0) * mesh.rows() * cloth_cost.pack_cost /
                  rate);
        ep.send(left, kTagGhost, pack_columns(mesh, c0, send_left_hi));
      }
      if (right < ncalc) {
        ep.charge((c1 - send_right_lo) * mesh.rows() * cloth_cost.pack_cost /
                  rate);
        ep.send(right, kTagGhost, pack_columns(mesh, send_right_lo, c1));
      }
      if (left >= 0) unpack_columns(mesh, ep.recv(left, kTagGhost));
      if (right < ncalc) unpack_columns(mesh, ep.recv(right, kTagGhost));

      // Forces for owned columns from the start-of-step snapshot.
      for (int c = c0; c < c1; ++c) {
        for (int r = 0; r < mesh.rows(); ++r) {
          const ClothNode& n = mesh.node(r, c);
          forces[static_cast<std::size_t>(c - c0) *
                     static_cast<std::size_t>(mesh.rows()) +
                 static_cast<std::size_t>(r)] =
              node_force(mesh.params(), n.pos, n.vel, n.mass, r, c, read);
        }
      }
      const auto owned = static_cast<double>((c1 - c0) * mesh.rows());
      ep.charge(owned * static_cast<double>(stencil_size()) *
                cloth_cost.spring_cost / rate);

      // Integrate owned nodes.
      for (int c = c0; c < c1; ++c) {
        for (int r = 0; r < mesh.rows(); ++r) {
          ClothNode& n = mesh.node(r, c);
          if (n.pinned) continue;
          n.vel += forces[static_cast<std::size_t>(c - c0) *
                              static_cast<std::size_t>(mesh.rows()) +
                          static_cast<std::size_t>(r)] *
                   (dt / n.mass);
          n.pos += n.vel * dt;
          for (const auto& obstacle : obstacles) {
            resolve_obstacle(*obstacle, n.pos, n.vel);
          }
        }
      }
      ep.charge(owned * cloth_cost.integrate_cost / rate);
    }

    // Gather the owned columns at rank 0.
    if (rank != 0) {
      ep.send(0, kTagGather, pack_columns(mesh, c0, c1));
    } else {
      for (int c = c0; c < c1; ++c) {
        for (int r = 0; r < mesh.rows(); ++r) {
          assembled.node(r, c) = mesh.node(r, c);
        }
      }
      for (int src = 1; src < ncalc; ++src) {
        unpack_columns(assembled, ep.recv(src, kTagGather));
      }
    }
  });

  ClothRunResult result{0.0, std::move(assembled), procs};
  for (const auto& p : procs) {
    result.sim_seconds = std::max(result.sim_seconds, p.finish_time);
  }
  return result;
}

}  // namespace psanim::cloth

#pragma once

// Cloth mesh — the paper's §6 future-work extension: "to include ways of
// interconnecting particles to allow the simulation of fabric".
//
// A rectangular grid of particle nodes connected by structural springs
// (grid neighbors), shear springs (diagonals) and bend springs (two
// apart), the classic Provot (1995) mass-spring cloth. Connectivity is
// FIXED, which changes the distribution problem compared to the free
// particles of the main model: domains (column ranges) never move, and
// neighbor processes exchange ghost columns instead of migrating
// particles.

#include <cstdint>
#include <vector>

#include "math/vec.hpp"

namespace psanim::cloth {

struct ClothNode {
  Vec3 pos;
  Vec3 vel;
  float mass = 0.05f;
  std::uint8_t pinned = 0;  ///< pinned nodes never integrate
};

struct ClothParams {
  int rows = 20;
  int cols = 30;
  float spacing = 0.1f;
  float mass = 0.05f;
  float k_structural = 400.0f;
  float k_shear = 150.0f;
  float k_bend = 50.0f;
  /// Per-spring relative-velocity damping coefficient.
  float damping = 1.0f;
  float air_drag = 0.15f;
  Vec3 gravity{0, -9.8f, 0};
};

/// One spring "stencil" entry: neighbor offset, stiffness class and rest
/// length multiple of the spacing.
struct SpringStencil {
  int dr;
  int dc;
  float rest_factor;
  enum class Kind { kStructural, kShear, kBend } kind;
};

/// The 12-neighbor stencil in a FIXED order (determinism of force sums
/// across sequential and distributed runs depends on this order).
const std::vector<SpringStencil>& spring_stencil();

class ClothMesh {
 public:
  /// Grid in the plane spanned by dx (columns) and dy (rows), with node
  /// (r, c) at origin + dx*c + dy*r. dx/dy are scaled by params.spacing.
  static ClothMesh grid(const ClothParams& params, Vec3 origin, Vec3 dx,
                        Vec3 dy);

  const ClothParams& params() const { return params_; }
  int rows() const { return params_.rows; }
  int cols() const { return params_.cols; }
  std::size_t node_count() const { return nodes_.size(); }

  std::size_t index(int r, int c) const {
    return static_cast<std::size_t>(r) * static_cast<std::size_t>(params_.cols) +
           static_cast<std::size_t>(c);
  }
  bool in_grid(int r, int c) const {
    return r >= 0 && r < params_.rows && c >= 0 && c < params_.cols;
  }

  ClothNode& node(int r, int c) { return nodes_[index(r, c)]; }
  const ClothNode& node(int r, int c) const { return nodes_[index(r, c)]; }
  std::vector<ClothNode>& nodes() { return nodes_; }
  const std::vector<ClothNode>& nodes() const { return nodes_; }

  void pin(int r, int c) { node(r, c).pinned = 1; }

  /// Sum of kinetic energy over nodes (diagnostics, damping tests).
  double kinetic_energy() const;

 private:
  ClothMesh(const ClothParams& params, std::vector<ClothNode> nodes)
      : params_(params), nodes_(std::move(nodes)) {}

  ClothParams params_;
  std::vector<ClothNode> nodes_;
};

}  // namespace psanim::cloth

#pragma once

// Static load balancing (SLB in the tables): the initial equal-width
// domain split is never revisited. The policy simply issues no orders —
// the §5 experiments run it to quantify what the dynamic mechanism buys.

#include "lb/load_balancer.hpp"

namespace psanim::lb {

class StaticLB final : public LoadBalancer {
 public:
  std::string name() const override { return "static"; }
  std::vector<BalanceOrder> evaluate(std::span<const CalcLoad>) override {
    return {};
  }
};

}  // namespace psanim::lb

#include "lb/load_balancer.hpp"

// Interface is header-only; this TU anchors the library target.

namespace psanim::lb {}

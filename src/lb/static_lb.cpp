#include "lb/static_lb.hpp"

// StaticLB is header-only; this TU anchors the library target.

namespace psanim::lb {}

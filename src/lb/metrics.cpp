#include "lb/metrics.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>

#include "math/stats.hpp"

namespace psanim::lb {

double time_imbalance(std::span<const CalcLoad> loads) {
  std::vector<double> times;
  times.reserve(loads.size());
  for (const auto& l : loads) times.push_back(l.time_s);
  return load_imbalance(times);
}

double frame_parallel_efficiency(std::span<const CalcLoad> loads) {
  double work = 0.0;
  double makespan = 0.0;
  for (const auto& l : loads) {
    work += l.time_s * l.power;  // normalize work to the reference machine
    makespan = std::max(makespan, l.time_s);
  }
  return makespan > 0 ? work / makespan : 0.0;
}

std::vector<CalcLoad> apply_orders(std::span<const CalcLoad> loads,
                                   std::span<const BalanceOrder> orders) {
  std::vector<CalcLoad> out(loads.begin(), loads.end());
  for (const auto& o : orders) {
    if (o.op != BalanceOp::kSend) continue;  // each move appears as one send
    for (auto& l : out) {
      if (l.calc == o.calc) {
        const auto moved = std::min<std::uint64_t>(o.count, l.particles);
        l.particles -= moved;
        // Pro-rata time adjustment, as the calculators themselves do.
        if (l.particles + moved > 0) {
          l.time_s *= static_cast<double>(l.particles) /
                      static_cast<double>(l.particles + moved);
        }
      } else if (l.calc == o.partner) {
        l.particles += o.count;
      }
    }
  }
  return out;
}

std::string validate_orders(std::span<const CalcLoad> loads,
                            std::span<const BalanceOrder> orders,
                            bool allow_send_and_receive) {
  std::map<int, int> sends;     // calc -> partner
  std::map<int, int> receives;  // calc -> partner
  for (const auto& o : orders) {
    if (std::abs(o.calc - o.partner) != 1) {
      return "order between non-neighbors " + std::to_string(o.calc) +
             " and " + std::to_string(o.partner);
    }
    auto& dir = o.op == BalanceOp::kSend ? sends : receives;
    if (dir.contains(o.calc)) {
      return "calculator " + std::to_string(o.calc) +
             " ordered to move particles twice in one round";
    }
    dir[o.calc] = o.partner;
  }
  for (const auto& [calc, partner] : sends) {
    const auto it = receives.find(partner);
    if (it == receives.end() || it->second != calc) {
      return "send from " + std::to_string(calc) + " to " +
             std::to_string(partner) + " has no matching receive";
    }
    if (!allow_send_and_receive && receives.contains(calc)) {
      return "calculator " + std::to_string(calc) +
             " both sends and receives (alignment rule violated)";
    }
  }
  for (const auto& [calc, partner] : receives) {
    const auto it = sends.find(partner);
    if (it == sends.end() || it->second != calc) {
      return "receive at " + std::to_string(calc) + " from " +
             std::to_string(partner) + " has no matching send";
    }
  }
  // Every order must reference a known calculator.
  for (const auto& o : orders) {
    const bool known =
        std::any_of(loads.begin(), loads.end(),
                    [&](const CalcLoad& l) { return l.calc == o.calc; });
    if (!known) {
      return "order addressed to unknown calculator " +
             std::to_string(o.calc);
    }
  }
  return {};
}

void observe_balance(obs::MetricsRegistry* reg,
                     std::span<const CalcLoad> loads,
                     std::span<const BalanceOrder> orders) {
  if (!reg) return;
  // Each logical move is one send order paired with one receive order;
  // counting sends matches ManagerFrameStats::balance_orders exactly.
  std::uint64_t sends = 0;
  std::uint64_t particles = 0;
  for (const auto& o : orders) {
    if (o.op != BalanceOp::kSend) continue;
    ++sends;
    particles += o.count;
  }
  reg->counter("psanim_lb_orders_total").add(static_cast<double>(sends));
  reg->counter("psanim_lb_particles_ordered_total")
      .add(static_cast<double>(particles));
  reg->histogram("psanim_lb_imbalance", {1.0, 1.1, 1.25, 1.5, 2.0, 4.0})
      .observe(time_imbalance(loads));
}

}  // namespace psanim::lb

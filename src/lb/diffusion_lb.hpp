#pragma once

// Decentralized diffusion balancing — the paper's future-work direction
// ("to decentralize the load balancing management", §6), implemented here
// as an ablation partner for the centralized pairwise policy.
//
// Every adjacent pair relaxes toward its power-proportional split
// simultaneously, moving only a `diffusion` fraction of the excess per
// round (first-order diffusion, cf. Cybenko 1989). A process may send left
// and receive right in the same round — exactly the "alignment" the
// centralized policy forbids; the ablation bench measures what that buys
// and costs. The evaluate() interface is unchanged so the manager can run
// it drop-in; in a truly decentralized deployment the same arithmetic runs in
// each calculator with neighbor-only information.

#include "lb/load_balancer.hpp"

namespace psanim::lb {

struct DiffusionConfig {
  double diffusion = 0.5;        ///< fraction of the pair excess moved
  double trigger_ratio = 0.10;   ///< per-pair activation threshold
  std::uint64_t min_transfer = 32;
};

class DiffusionLB final : public LoadBalancer {
 public:
  explicit DiffusionLB(DiffusionConfig cfg = {});

  std::string name() const override { return "diffusion"; }
  std::vector<BalanceOrder> evaluate(std::span<const CalcLoad> loads) override;

 private:
  DiffusionConfig cfg_;
};

}  // namespace psanim::lb

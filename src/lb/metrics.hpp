#pragma once

// Balance-quality metrics used by tests and the ablation benches.

#include <span>
#include <vector>

#include "lb/load_balancer.hpp"
#include "obs/metrics.hpp"

namespace psanim::lb {

/// max(time) / mean(time) over the reports; 1.0 is perfect balance.
double time_imbalance(std::span<const CalcLoad> loads);

/// The speedup this frame would achieve over a sequential run on a
/// rate-1.0 machine, given the reports: sum(work) / max(time).
double frame_parallel_efficiency(std::span<const CalcLoad> loads);

/// Apply orders to particle counts (pure bookkeeping — lets tests check a
/// policy's fixed point without running the full protocol).
std::vector<CalcLoad> apply_orders(std::span<const CalcLoad> loads,
                                   std::span<const BalanceOrder> orders);

/// Sanity-check a policy's output against the paper's rules: orders pair
/// up (send matches receive), partners are domain neighbors, and no
/// process both sends and receives. Returns an explanation or empty.
std::string validate_orders(std::span<const CalcLoad> loads,
                            std::span<const BalanceOrder> orders,
                            bool allow_send_and_receive = false);

/// Publish one evaluation's balancing activity into `reg` (no-op when
/// null): order and particle totals plus the reported-time imbalance
/// distribution. This is the single source of the lb_* aggregates, so the
/// metrics dump matches Telemetry's balance counts by construction.
void observe_balance(obs::MetricsRegistry* reg,
                     std::span<const CalcLoad> loads,
                     std::span<const BalanceOrder> orders);

}  // namespace psanim::lb

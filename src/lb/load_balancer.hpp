#pragma once

// Load-balancing policy interface.
//
// After each frame's particle exchange, every calculator reports its load
// (particle count) and the time it took to process its particles —
// recomputed pro-rata for the post-exchange count, exactly as §3.2.4
// prescribes. The manager feeds those reports, per particle system, into a
// policy that may emit orders: "calculator x sends k particles of system s
// to calculator y".

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "mp/message.hpp"

namespace psanim::lb {

/// One calculator's report for one particle system.
struct CalcLoad {
  int calc = 0;               ///< calculator index, 0..n-1
  std::size_t particles = 0;  ///< particles held after the exchange
  double time_s = 0.0;        ///< pro-rata processing time for this count
  /// A-priori processing-power weight (the paper calibrates it from
  /// sequential execution times, §4). Policies may refine it with the
  /// observed particles/time rate.
  double power = 1.0;
};

enum class BalanceOp : std::uint8_t { kSend, kReceive };

/// One order addressed to one calculator.
struct BalanceOrder {
  int calc = 0;     ///< addressee
  int partner = 0;  ///< neighbor it exchanges with
  BalanceOp op = BalanceOp::kSend;
  std::uint64_t count = 0;  ///< particles to move
};

class LoadBalancer {
 public:
  virtual ~LoadBalancer() = default;

  virtual std::string name() const = 0;

  /// Evaluate one system's reports (indexed by calculator, ascending) and
  /// return orders. Called once per system per frame. Implementations may
  /// keep state across calls (the paper's pair alternation does).
  virtual std::vector<BalanceOrder> evaluate(
      std::span<const CalcLoad> loads) = 0;

  /// Checkpoint hooks: serialize whatever evaluate() keeps across calls
  /// (replaying from a snapshot must reproduce the same decisions).
  /// Stateless policies inherit these no-ops.
  virtual void save_state(mp::Writer&) const {}
  virtual void load_state(mp::Reader&) {}
};

}  // namespace psanim::lb

#include "lb/diffusion_lb.hpp"

#include <cmath>

#include "math/stats.hpp"

namespace psanim::lb {

DiffusionLB::DiffusionLB(DiffusionConfig cfg) : cfg_(cfg) {}

std::vector<BalanceOrder> DiffusionLB::evaluate(
    std::span<const CalcLoad> loads) {
  std::vector<BalanceOrder> orders;
  const int n = static_cast<int>(loads.size());
  // Net flow per process, positive = sends to the right neighbor. All
  // pairs relax at once; per-process orders are netted afterwards so a
  // process sends each neighbor at most once.
  for (int i = 0; i + 1 < n; ++i) {
    const CalcLoad& a = loads[static_cast<std::size_t>(i)];
    const CalcLoad& b = loads[static_cast<std::size_t>(i) + 1];
    if (rel_diff(a.time_s, b.time_s) <= cfg_.trigger_ratio) continue;

    // Observed rates only when both sides have them (unit consistency —
    // see DynamicPairwiseLB).
    const bool observed = a.time_s > 0 && a.particles >= 64 &&
                          b.time_s > 0 && b.particles >= 64;
    const double pa = std::max(
        observed ? static_cast<double>(a.particles) / a.time_s : a.power,
        1e-12);
    const double pb = std::max(
        observed ? static_cast<double>(b.particles) / b.time_s : b.power,
        1e-12);
    const auto total = a.particles + b.particles;
    if (total == 0) continue;
    const double target_a =
        static_cast<double>(total) * pa / (pa + pb);
    const double excess_a = static_cast<double>(a.particles) - target_a;
    const auto moving = static_cast<std::uint64_t>(
        std::llround(std::fabs(excess_a) * cfg_.diffusion));
    if (moving < cfg_.min_transfer) continue;

    const int sender = excess_a > 0 ? a.calc : b.calc;
    const int receiver = excess_a > 0 ? b.calc : a.calc;
    orders.push_back({sender, receiver, BalanceOp::kSend, moving});
    orders.push_back({receiver, sender, BalanceOp::kReceive, moving});
  }
  return orders;
}

}  // namespace psanim::lb

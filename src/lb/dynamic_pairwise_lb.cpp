#include "lb/dynamic_pairwise_lb.hpp"

#include <algorithm>
#include <cmath>

#include "math/stats.hpp"

namespace psanim::lb {

DynamicPairwiseLB::DynamicPairwiseLB(DynamicPairwiseConfig cfg) : cfg_(cfg) {}

bool DynamicPairwiseLB::has_rate_sample(const CalcLoad& load) {
  // Tiny samples are noise; below this the prior is more trustworthy.
  constexpr std::size_t kMinSample = 64;
  return load.time_s > 0 && load.particles >= kMinSample;
}

std::pair<double, double> DynamicPairwiseLB::pair_powers(
    const CalcLoad& a, const CalcLoad& b) const {
  if (cfg_.use_observed_rate && has_rate_sample(a) && has_rate_sample(b)) {
    return {static_cast<double>(a.particles) / a.time_s,
            static_cast<double>(b.particles) / b.time_s};
  }
  return {std::max(a.power, 1e-12), std::max(b.power, 1e-12)};
}

std::vector<BalanceOrder> DynamicPairwiseLB::evaluate(
    std::span<const CalcLoad> loads) {
  std::vector<BalanceOrder> orders;
  const int n = static_cast<int>(loads.size());
  if (n < 2) return orders;

  // Alternate which pair leads each round (§3.2.5) — unless there is only
  // one pair, where alternation would just idle every other round.
  const int start = n > 2 ? first_pair_ % 2 : 0;
  first_pair_ ^= 1;

  std::vector<bool> used(static_cast<std::size_t>(n), false);
  for (int i = start; i + 1 < n; ++i) {
    const auto ia = static_cast<std::size_t>(i);
    const auto ib = ia + 1;
    if (used[ia] || used[ib]) continue;
    const CalcLoad& a = loads[ia];
    const CalcLoad& b = loads[ib];

    if (rel_diff(a.time_s, b.time_s) <= cfg_.trigger_ratio) continue;

    const auto [pa, pb] = pair_powers(a, b);
    const auto total = a.particles + b.particles;
    if (total == 0) continue;
    const auto target_a = static_cast<std::uint64_t>(std::llround(
        static_cast<double>(total) * pa / (pa + pb)));

    std::uint64_t moving = 0;
    int sender = 0;
    int receiver = 0;
    if (a.particles > target_a) {
      moving = a.particles - target_a;
      sender = a.calc;
      receiver = b.calc;
    } else {
      moving = target_a - a.particles;
      sender = b.calc;
      receiver = a.calc;
    }

    // "Depending on the amount of particles to be moved ... it may not be
    // interesting to perform the transmission."
    if (moving < cfg_.min_transfer ||
        static_cast<double>(moving) <
            cfg_.min_transfer_fraction * static_cast<double>(total)) {
      continue;
    }

    orders.push_back({sender, receiver, BalanceOp::kSend, moving});
    orders.push_back({receiver, sender, BalanceOp::kReceive, moving});
    used[ia] = true;
    used[ib] = true;
    ++i;  // pair (x+1, x+2) is not evaluated; next candidate is (x+2, x+3)
  }
  return orders;
}

}  // namespace psanim::lb

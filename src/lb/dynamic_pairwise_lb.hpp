#pragma once

// The paper's dynamic load balancer (§3.2.5): centralized at the manager,
// local in effect. Rules, verbatim from the paper:
//
//   * balancing only happens between domain neighbors;
//   * each process either sends or receives in one round, never both
//     ("to avoid alignment of processes");
//   * balancing is pairwise — process x cannot receive from both x-1 and
//     x+1 in the same round;
//   * when pair (x, x+1) balances, pair (x+1, x+2) is skipped and the next
//     candidate is (x+2, x+3);
//   * the index of the first pair evaluated alternates every round so the
//     same pair is not always favored;
//   * a pair balances only if the relative difference of their processing
//     times exceeds a trigger threshold;
//   * the new split is proportional to the processing powers;
//   * transfers below a minimum are not worth the communication and are
//     dropped.

#include "lb/load_balancer.hpp"

namespace psanim::lb {

struct DynamicPairwiseConfig {
  /// Trigger: |t_a - t_b| / max(t_a, t_b) must exceed this.
  double trigger_ratio = 0.20;
  /// Orders moving fewer particles than this are dropped...
  std::uint64_t min_transfer = 32;
  /// ...as are orders moving less than this fraction of the pair's total.
  double min_transfer_fraction = 0.01;
  /// Use the observed particles/time rates as the power estimates when
  /// BOTH members of a pair have processed a meaningful sample; otherwise
  /// the pair falls back to the configured a-priori powers. (Observed
  /// rates are particles/second, priors are relative rates — the two are
  /// only comparable within one unit system, never mixed.)
  bool use_observed_rate = true;
};

class DynamicPairwiseLB final : public LoadBalancer {
 public:
  explicit DynamicPairwiseLB(DynamicPairwiseConfig cfg = {});

  std::string name() const override { return "dynamic-pairwise"; }
  std::vector<BalanceOrder> evaluate(std::span<const CalcLoad> loads) override;

  /// The pair-alternation phase is the one piece of cross-frame state.
  void save_state(mp::Writer& w) const override {
    w.put<std::int32_t>(first_pair_);
  }
  void load_state(mp::Reader& r) override {
    first_pair_ = r.get<std::int32_t>();
  }

  const DynamicPairwiseConfig& config() const { return cfg_; }

  /// True when the report's sample is large enough to trust its
  /// particles/time rate.
  static bool has_rate_sample(const CalcLoad& load);
  /// Power estimates for a pair, in consistent units (see
  /// use_observed_rate). Returns {power_a, power_b}.
  std::pair<double, double> pair_powers(const CalcLoad& a,
                                        const CalcLoad& b) const;

 private:
  DynamicPairwiseConfig cfg_;
  int first_pair_ = 0;  ///< alternates 0/1 each evaluation round
};

}  // namespace psanim::lb

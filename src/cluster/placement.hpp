#pragma once

// Process placement: which node each rank runs on, and the effective
// per-rank compute rate after CPU-slot sharing and SMP memory contention.
//
// Rank convention (fixed across psanim, see core/): rank 0 is the manager,
// rank 1 the image generator, ranks 2..2+n-1 the n calculators. The
// default builders give the manager and the image generator dedicated
// nodes — the paper's testbed always had spare machines (18 nodes, at most
// 16 used for calculators).

#include <vector>

#include "cluster/cluster_spec.hpp"

namespace psanim::cluster {

struct Placement {
  /// node index for each rank; size == world size.
  std::vector<int> node_of_rank;

  int world_size() const { return static_cast<int>(node_of_rank.size()); }
  int node_of(int rank) const {
    return node_of_rank.at(static_cast<std::size_t>(rank));
  }
  /// Number of ranks placed on each node (indexed by node).
  std::vector<int> occupants(const ClusterSpec& spec) const;

  /// Fill CPU slots node by node: node 0 gets its `cpus` ranks first, then
  /// node 1, ... Wraps (oversubscribes) if ranks exceed total slots.
  static Placement block(const ClusterSpec& spec, int nranks);

  /// One rank per node in cycling order: rank i on node i % node_count.
  static Placement round_robin(const ClusterSpec& spec, int nranks);

  /// Paper-style role placement for a spec whose node 0 hosts the manager
  /// and node 1 the image generator; calculators (ranks >= 2) fill the
  /// remaining nodes' CPU slots spreading one-per-node first, then a
  /// second process per node, etc. ("8*B / 16 P." = 2 per dual node).
  static Placement roles(const ClusterSpec& spec, int ncalc);
};

/// Effective compute rate for every rank: node rate scaled by CPU-slot
/// sharing (min(1, cpus/occupants)) and by `smp_contention` when more than
/// one rank shares a node's memory system.
std::vector<double> rank_rates(const ClusterSpec& spec,
                               const Placement& placement,
                               double smp_contention);

}  // namespace psanim::cluster

#pragma once

// Cluster specification: node types, the paper's machines, and builders
// for the experiment configurations of §5.

#include <cstddef>
#include <string>
#include <vector>

#include "cluster/cpu_model.hpp"
#include "net/network_model.hpp"

namespace psanim::cluster {

/// A physical node: CPU model, processor count, memory and NICs.
struct NodeType {
  std::string name;
  CpuModel cpu;
  int cpus = 1;
  double ram_mb = 256;
  net::NicSet nics;

  /// HP NetServer E60 — dual Pentium III 550 MHz ("type A" in the paper).
  static NodeType e60();
  /// HP NetServer E800 — dual Pentium III 1 GHz ("type B").
  static NodeType e800();
  /// HP zx2000 — Itanium II 900 MHz, Fast-Ethernet only ("type C").
  static NodeType zx2000();
  /// Generic single-CPU node with a given relative rate; used in tests.
  static NodeType generic(double rate, int cpus = 1);
};

/// A whole cluster: a list of nodes, a preferred interconnect and the
/// compiler the binaries were built with (compiler affects every node's
/// effective rate; the paper evaluates GCC and ICC builds separately).
struct ClusterSpec {
  std::vector<NodeType> nodes;
  net::Interconnect preferred = net::Interconnect::kFastEthernet;
  Compiler compiler = Compiler::kGcc;
  /// Topology platform description (platform::parse form: a preset name,
  /// DSL, or JSON). Empty or "flat" keeps the legacy per-pair alpha-beta
  /// model — no zone tree, no shared-link contention, bit-identical to
  /// pre-platform behavior.
  std::string platform;

  std::size_t node_count() const { return nodes.size(); }
  /// Effective per-CPU rate of node `i` under this spec's compiler.
  double node_rate(std::size_t i) const {
    return nodes.at(i).cpu.rate(compiler);
  }
  /// Sum over nodes of cpus * rate: the cluster's ideal aggregate power.
  double aggregate_power() const;

  ClusterSpec& add(const NodeType& type, std::size_t count = 1);

  /// `n` identical nodes.
  static ClusterSpec homogeneous(const NodeType& type, std::size_t count,
                                 net::Interconnect preferred,
                                 Compiler compiler);
  /// The full 18-node cluster of §5 (8×E60 + 8×E800 + 2×zx2000).
  static ClusterSpec paper_cluster(net::Interconnect preferred,
                                   Compiler compiler);
};

}  // namespace psanim::cluster

#pragma once

// Cost model: converts model work (particles touched, messages moved) into
// virtual seconds.
//
// Per-particle costs are expressed in seconds *on the reference machine*
// (E800, rate 1.0) and divided by the executing rank's effective rate.
// Constants are calibrated to 2005-era scalar float code (tens of
// nanoseconds per particle-action on a 1 GHz Pentium III); the experiment
// shapes depend only on their ratios to the network costs.

#include <cstddef>

#include "cluster/placement.hpp"
#include "mp/communicator.hpp"
#include "net/network_model.hpp"
#include "platform/platform.hpp"

namespace psanim::cluster {

struct CostModel {
  // --- per-particle compute costs on the reference machine (seconds) ---
  /// Applying one action to one particle. Calibrated high (scalar 2005
  /// code: collision tests, RNG, sqrt per particle on a 1 GHz PIII) so the
  /// compute/comm ratio matches the paper's regimes; see EXPERIMENTS.md
  /// "Calibration".
  double action_cost = 400e-9;
  double create_cost = 300e-9;  ///< manager generates one particle (RNG heavy)
  double move_cost = 40e-9;     ///< integrate one particle position
  double render_cost = 35e-9;   ///< image generator splats one particle
  double collide_pair_cost = 35e-9;  ///< one particle-pair collision test
  double sort_cost = 25e-9;     ///< per element per log2 level when ordering
  /// Per-particle marshaling: copying a record into/out of communication
  /// buffers plus the bucket bookkeeping around it. Dominated by the
  /// every-particle-every-frame ship to the image generator; this is the
  /// parallel version's per-particle tax over the sequential code and the
  /// main reason measured efficiencies sit near the paper's ~50%.
  double pack_cost = 900e-9;

  /// Fixed per-frame bookkeeping charged once per process per frame.
  double frame_overhead_s = 200e-6;

  /// Throughput factor for each of two processes sharing a dual node's
  /// memory bus (the paper's nodes are dual PIII with one shared FSB).
  double smp_contention = 0.85;

  // --- host-side messaging costs, per interconnect ---
  /// Per-message CPU overhead on the reference machine (protocol stack:
  /// TCP for Ethernet, user-level GM for Myrinet, wakeups for loopback).
  double host_overhead_s(net::Interconnect ic) const;
  /// CPU-side copy bandwidth (bytes/s) on the reference machine.
  double host_bandwidth_bps(net::Interconnect ic) const;

  /// Compute seconds for `n` particles at `per_particle` reference cost on
  /// a rank running at `rate`.
  double compute_s(double per_particle, std::size_t n, double rate) const {
    return per_particle * static_cast<double>(n) / rate;
  }

  /// n*log2(n) ordering cost (donation selection in the load balancer).
  double sort_s(std::size_t n, double rate) const;
};

/// Build the message-cost function the mp runtime uses: wire time from the
/// resolved link between the two ranks' nodes, host CPU overheads scaled
/// by each rank's effective rate.
mp::LinkCostFn make_link_cost_fn(const ClusterSpec& spec,
                                 const Placement& placement,
                                 const CostModel& cost);

/// Topology-aware variant: wire time comes from the platform's route
/// (additive latency, bottleneck bandwidth) instead of one resolved link,
/// and host CPU overheads are charged by each endpoint's host-link kind.
/// Same-node traffic stays loopback. `platform` is captured by pointer
/// and must outlive the returned closure; shared-link *contention* is the
/// Fabric's job, not the cost function's.
mp::LinkCostFn make_link_cost_fn(const ClusterSpec& spec,
                                 const Placement& placement,
                                 const CostModel& cost,
                                 const platform::Platform& platform);

}  // namespace psanim::cluster

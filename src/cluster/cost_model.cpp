#include "cluster/cost_model.hpp"

#include <cmath>

namespace psanim::cluster {

double CostModel::host_overhead_s(net::Interconnect ic) const {
  switch (ic) {
    case net::Interconnect::kLoopback: return 0.5e-6;
    case net::Interconnect::kMyrinet: return 3e-6;        // user-level GM
    case net::Interconnect::kGigabitEthernet: return 40e-6;
    // Kernel TCP on a 2001 Fast-Ethernet stack: syscall + checksum +
    // copies; ~120 us per message on the reference PIII.
    case net::Interconnect::kFastEthernet: return 120e-6;
    case net::Interconnect::kCustom: return 10e-6;
  }
  return 10e-6;
}

double CostModel::host_bandwidth_bps(net::Interconnect ic) const {
  switch (ic) {
    case net::Interconnect::kLoopback: return 800e6;
    case net::Interconnect::kMyrinet: return 500e6;  // zero-copy GM DMA
    case net::Interconnect::kGigabitEthernet: return 100e6;
    case net::Interconnect::kFastEthernet: return 60e6;  // TCP copies
    case net::Interconnect::kCustom: return 200e6;
  }
  return 200e6;
}

double CostModel::sort_s(std::size_t n, double rate) const {
  if (n < 2) return 0.0;
  const auto dn = static_cast<double>(n);
  return sort_cost * dn * std::log2(dn) / rate;
}

mp::LinkCostFn make_link_cost_fn(const ClusterSpec& spec,
                                 const Placement& placement,
                                 const CostModel& cost) {
  // Capture everything by value: the returned closure outlives its inputs.
  const auto rates = rank_rates(spec, placement, cost.smp_contention);
  const auto node_of = placement.node_of_rank;
  std::vector<net::NicSet> nics;
  nics.reserve(spec.node_count());
  for (const auto& n : spec.nodes) nics.push_back(n.nics);
  const auto preferred = spec.preferred;
  const CostModel cm = cost;

  return [rates, node_of, nics, preferred, cm](
             int src, int dst, std::size_t bytes) -> mp::MsgCost {
    const auto sn = static_cast<std::size_t>(node_of.at(static_cast<std::size_t>(src)));
    const auto dn = static_cast<std::size_t>(node_of.at(static_cast<std::size_t>(dst)));
    const auto link =
        net::resolve_link(nics[sn], nics[dn], sn == dn, preferred);
    const double host =
        cm.host_overhead_s(link.kind) +
        static_cast<double>(bytes) / cm.host_bandwidth_bps(link.kind);
    return mp::MsgCost{
        .send_cpu_s = host / rates.at(static_cast<std::size_t>(src)),
        .wire_s = link.cost_s(bytes),
        .recv_cpu_s = host / rates.at(static_cast<std::size_t>(dst)),
    };
  };
}

mp::LinkCostFn make_link_cost_fn(const ClusterSpec& spec,
                                 const Placement& placement,
                                 const CostModel& cost,
                                 const platform::Platform& platform) {
  const auto rates = rank_rates(spec, placement, cost.smp_contention);
  const auto node_of = placement.node_of_rank;
  const CostModel cm = cost;
  const platform::Platform* plat = &platform;

  return [rates, node_of, cm, plat](int src, int dst,
                                    std::size_t bytes) -> mp::MsgCost {
    const auto sn =
        static_cast<std::size_t>(node_of.at(static_cast<std::size_t>(src)));
    const auto dn =
        static_cast<std::size_t>(node_of.at(static_cast<std::size_t>(dst)));
    double wire_s = 0.0;
    net::Interconnect src_kind, dst_kind;
    if (sn == dn) {
      const auto lb = net::LinkModel::loopback();
      wire_s = lb.cost_s(bytes);
      src_kind = dst_kind = lb.kind;
    } else {
      const auto w = plat->wire(sn, dn);
      wire_s = w.latency_s + static_cast<double>(bytes) / w.bottleneck_bps;
      src_kind = w.src_kind;
      dst_kind = w.dst_kind;
    }
    const double send_host =
        cm.host_overhead_s(src_kind) +
        static_cast<double>(bytes) / cm.host_bandwidth_bps(src_kind);
    const double recv_host =
        cm.host_overhead_s(dst_kind) +
        static_cast<double>(bytes) / cm.host_bandwidth_bps(dst_kind);
    return mp::MsgCost{
        .send_cpu_s = send_host / rates.at(static_cast<std::size_t>(src)),
        .wire_s = wire_s,
        .recv_cpu_s = recv_host / rates.at(static_cast<std::size_t>(dst)),
    };
  };
}

}  // namespace psanim::cluster

#include "cluster/cluster_spec.hpp"

namespace psanim::cluster {

NodeType NodeType::e60() {
  return NodeType{
      .name = "E60",
      .cpu = CpuModel::pentium3(0.55),
      .cpus = 2,
      .ram_mb = 256,
      .nics = {.fast_ethernet = true, .gigabit = false, .myrinet = true},
  };
}

NodeType NodeType::e800() {
  return NodeType{
      .name = "E800",
      .cpu = CpuModel::pentium3(1.0),
      .cpus = 2,
      .ram_mb = 256,
      .nics = {.fast_ethernet = true, .gigabit = false, .myrinet = true},
  };
}

NodeType NodeType::zx2000() {
  return NodeType{
      .name = "zx2000",
      .cpu = CpuModel::itanium2(0.9),
      .cpus = 1,
      .ram_mb = 1024,
      // The paper's Itanium workstations are only on Fast-Ethernet.
      .nics = {.fast_ethernet = true, .gigabit = false, .myrinet = false},
  };
}

NodeType NodeType::generic(double rate, int cpus) {
  return NodeType{
      .name = "generic",
      .cpu = CpuModel::generic(rate),
      .cpus = cpus,
      .ram_mb = 1024,
      .nics = {.fast_ethernet = true, .gigabit = true, .myrinet = true},
  };
}

double ClusterSpec::aggregate_power() const {
  double total = 0.0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    total += nodes[i].cpus * node_rate(i);
  }
  return total;
}

ClusterSpec& ClusterSpec::add(const NodeType& type, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) nodes.push_back(type);
  return *this;
}

ClusterSpec ClusterSpec::homogeneous(const NodeType& type, std::size_t count,
                                     net::Interconnect preferred,
                                     Compiler compiler) {
  ClusterSpec spec;
  spec.preferred = preferred;
  spec.compiler = compiler;
  spec.add(type, count);
  return spec;
}

ClusterSpec ClusterSpec::paper_cluster(net::Interconnect preferred,
                                       Compiler compiler) {
  ClusterSpec spec;
  spec.preferred = preferred;
  spec.compiler = compiler;
  spec.add(NodeType::e60(), 8);
  spec.add(NodeType::e800(), 8);
  spec.add(NodeType::zx2000(), 2);
  return spec;
}

}  // namespace psanim::cluster

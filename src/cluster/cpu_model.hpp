#pragma once

// CPU and compiler performance model.
//
// The paper's heterogeneity has two axes: CPU (Pentium III at 550 MHz and
// 1 GHz, Itanium II at 900 MHz) and compiler (GNU GCC vs Intel ICC, §5).
// We model a node's particle-processing *rate* as a scalar relative to a
// reference machine (E800: Pentium III 1 GHz with GCC = 1.0), with a
// per-(architecture, compiler) multiplier reproducing the paper's
// observations: ICC is dramatically better than GCC on Itanium (the paper
// uses Itanium+ICC as its best sequential baseline), mildly better on
// IA-32, and the E800 is the best GCC machine.

#include <string>

namespace psanim::cluster {

enum class Compiler { kGcc, kIcc };

enum class CpuArch { kPentium3, kItanium2, kGeneric };

std::string to_string(Compiler c);
std::string to_string(CpuArch a);

/// Multiplier applied to a CPU's base rate for a given compiler.
/// Calibrated constants (see DESIGN.md "Substitutions"): the evaluation
/// only depends on rate *ratios*, which these reproduce.
double compiler_multiplier(CpuArch arch, Compiler c);

/// One processor model.
struct CpuModel {
  std::string name;
  CpuArch arch = CpuArch::kGeneric;
  double clock_ghz = 1.0;
  /// Particle-processing rate with GCC relative to the reference
  /// (Pentium III 1 GHz + GCC == 1.0).
  double base_rate = 1.0;

  /// Effective rate under a compiler. base_rate already bakes in the GCC
  /// baseline, so the multiplier is normalized to GCC == 1 per arch.
  double rate(Compiler c) const {
    return base_rate * compiler_multiplier(arch, c) /
           compiler_multiplier(arch, Compiler::kGcc);
  }

  static CpuModel pentium3(double clock_ghz);
  static CpuModel itanium2(double clock_ghz);
  static CpuModel generic(double rate);
};

}  // namespace psanim::cluster

#include "cluster/placement.hpp"

#include <algorithm>
#include <stdexcept>

namespace psanim::cluster {

std::vector<int> Placement::occupants(const ClusterSpec& spec) const {
  std::vector<int> counts(spec.node_count(), 0);
  for (const int node : node_of_rank) {
    ++counts.at(static_cast<std::size_t>(node));
  }
  return counts;
}

Placement Placement::block(const ClusterSpec& spec, int nranks) {
  if (spec.node_count() == 0) {
    throw std::invalid_argument("Placement::block: empty cluster");
  }
  Placement p;
  p.node_of_rank.reserve(static_cast<std::size_t>(nranks));
  while (p.world_size() < nranks) {
    for (std::size_t n = 0; n < spec.node_count() && p.world_size() < nranks;
         ++n) {
      for (int c = 0; c < spec.nodes[n].cpus && p.world_size() < nranks; ++c) {
        p.node_of_rank.push_back(static_cast<int>(n));
      }
    }
  }
  return p;
}

Placement Placement::round_robin(const ClusterSpec& spec, int nranks) {
  if (spec.node_count() == 0) {
    throw std::invalid_argument("Placement::round_robin: empty cluster");
  }
  Placement p;
  p.node_of_rank.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    p.node_of_rank.push_back(static_cast<int>(
        static_cast<std::size_t>(r) % spec.node_count()));
  }
  return p;
}

Placement Placement::roles(const ClusterSpec& spec, int ncalc) {
  if (spec.node_count() < 3) {
    throw std::invalid_argument(
        "Placement::roles: need at least manager node, image generator "
        "node and one calculator node");
  }
  if (ncalc < 1) {
    throw std::invalid_argument("Placement::roles: need >= 1 calculator");
  }
  Placement p;
  p.node_of_rank = {0, 1};  // manager, image generator
  const auto calc_nodes = spec.node_count() - 2;
  // Spread one per node first, then second CPU slots, and so on; wraps
  // into oversubscription only when calculators exceed total slots.
  for (int i = 0; i < ncalc; ++i) {
    p.node_of_rank.push_back(
        static_cast<int>(2 + static_cast<std::size_t>(i) % calc_nodes));
  }
  return p;
}

std::vector<double> rank_rates(const ClusterSpec& spec,
                               const Placement& placement,
                               double smp_contention) {
  const auto counts = placement.occupants(spec);
  std::vector<double> rates;
  rates.reserve(placement.node_of_rank.size());
  for (const int node : placement.node_of_rank) {
    const auto n = static_cast<std::size_t>(node);
    const int occ = counts.at(n);
    const int cpus = spec.nodes[n].cpus;
    double rate = spec.node_rate(n);
    if (occ > cpus) {
      rate *= static_cast<double>(cpus) / static_cast<double>(occ);
    }
    if (occ > 1) rate *= smp_contention;
    rates.push_back(rate);
  }
  return rates;
}

}  // namespace psanim::cluster

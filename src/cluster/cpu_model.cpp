#include "cluster/cpu_model.hpp"

namespace psanim::cluster {

std::string to_string(Compiler c) {
  return c == Compiler::kGcc ? "gcc" : "icc";
}

std::string to_string(CpuArch a) {
  switch (a) {
    case CpuArch::kPentium3: return "pentium3";
    case CpuArch::kItanium2: return "itanium2";
    case CpuArch::kGeneric: return "generic";
  }
  return "unknown";
}

double compiler_multiplier(CpuArch arch, Compiler c) {
  switch (arch) {
    case CpuArch::kPentium3:
      // ICC was mildly ahead of GCC 3.x on IA-32 scalar float code.
      return c == Compiler::kIcc ? 1.10 : 1.0;
    case CpuArch::kItanium2:
      // EPIC lives or dies by the compiler: GCC's IA-64 scheduling was
      // poor, ICC's software pipelining strong. The paper picks
      // Itanium+ICC as the best sequential combination and finds Itanium
      // "not satisfactory" otherwise.
      return c == Compiler::kIcc ? 2.26 : 1.0;
    case CpuArch::kGeneric:
      return 1.0;
  }
  return 1.0;
}

CpuModel CpuModel::pentium3(double clock_ghz) {
  return CpuModel{
      .name = "PentiumIII-" + std::to_string(static_cast<int>(clock_ghz * 1000)) + "MHz",
      .arch = CpuArch::kPentium3,
      .clock_ghz = clock_ghz,
      // Rates scale with clock within the same microarchitecture.
      .base_rate = clock_ghz / 1.0,
  };
}

CpuModel CpuModel::itanium2(double clock_ghz) {
  return CpuModel{
      .name = "Itanium2-" + std::to_string(static_cast<int>(clock_ghz * 1000)) + "MHz",
      .arch = CpuArch::kItanium2,
      .clock_ghz = clock_ghz,
      // Calibrated so that Itanium+GCC trails the E800 while Itanium+ICC
      // is the fastest sequential machine, as in §5.
      .base_rate = clock_ghz * 0.69,
  };
}

CpuModel CpuModel::generic(double rate) {
  return CpuModel{
      .name = "generic",
      .arch = CpuArch::kGeneric,
      .clock_ghz = rate,
      .base_rate = rate,
  };
}

}  // namespace psanim::cluster

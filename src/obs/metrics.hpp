#pragma once

// psanim::obs metrics registry.
//
// Named counters, gauges, and fixed-bucket histograms. Each rank owns one
// registry (owner-thread mutation contract, like RankRecorder); the manager
// merges all per-rank registries into one at run end, so the instruments
// themselves need no locks. Dumpable as Prometheus text exposition and as
// trace::csv-style tables (sim/report.hpp).
//
// Merge semantics: counters and histograms add; gauges keep the max (a gauge
// here records a per-rank level — queue depth high-water, ring occupancy —
// and "worst across ranks" is the aggregate a run report wants).

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace psanim::obs {

class Counter {
 public:
  void add(double v) { value_ += v; }
  void inc() { value_ += 1.0; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  /// Keep the high-water mark.
  void set_max(double v) {
    if (v > value_) value_ = v;
  }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed upper-bound buckets plus an implicit +Inf bucket, cumulative on
/// export (Prometheus `le` convention).
class Histogram {
 public:
  Histogram() = default;
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);

  const std::vector<double>& upper_bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; size == upper_bounds().size() + 1,
  /// last entry is the +Inf bucket.
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }

  /// Bucket-wise add; throws std::invalid_argument on bound mismatch.
  void merge(const Histogram& other);

 private:
  std::vector<double> bounds_;           // strictly increasing upper bounds
  std::vector<std::uint64_t> counts_;    // bounds_.size() + 1 entries
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// Deterministic exact-sample quantile series. Every observation is kept
/// and percentiles are answered from the sorted sample with the
/// nearest-rank rule (the ceil(q*n)-th smallest, 1-based), so two runs
/// that observe the same multiset report bit-identical p50/p95/p99 — which
/// a fixed-bucket Histogram cannot promise (a p99 inside a bucket is a
/// guess). The cost is O(n) memory; SLO series (per-job waits, per-frame
/// imbalance) are small enough that honesty wins. Empty series answer 0.0,
/// never NaN.
class Quantiles {
 public:
  void observe(double v);

  std::uint64_t count() const { return samples_.size(); }
  double sum() const { return sum_; }

  /// Exact nearest-rank quantile for q in [0, 1]; 0.0 on an empty series.
  double quantile(double q) const;

  /// Samples in ascending order (sorted lazily, cached).
  const std::vector<double>& sorted_samples() const;

  /// Stable merge: interleaves both sorted sample sets with std::merge, so
  /// the merged series is independent of merge grouping/order.
  void merge(const Quantiles& other);

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  double sum_ = 0.0;
};

/// One flattened sample for csv/report output. Histograms flatten to
/// cumulative `name_bucket{le="..."}` rows plus `name_sum` / `name_count`.
struct MetricSample {
  std::string name;
  double value = 0.0;
};

class MetricsRegistry {
 public:
  /// Find-or-create. References stay valid for the registry's lifetime
  /// (std::map nodes are stable).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name,
                       std::vector<double> upper_bounds);
  Quantiles& quantiles(std::string_view name);

  const Counter* find_counter(std::string_view name) const;
  const Gauge* find_gauge(std::string_view name) const;
  const Histogram* find_histogram(std::string_view name) const;
  const Quantiles* find_quantiles(std::string_view name) const;

  double counter_value(std::string_view name) const;
  double gauge_value(std::string_view name) const;

  /// Fold `other` into this registry (counter/histogram add, gauge max).
  void merge(const MetricsRegistry& other);

  /// All metrics flattened to (name, value) rows — counters, gauges, then
  /// histogram groups, each name-sorted; bucket rows stay in le order
  /// (the same row order as the Prometheus text).
  std::vector<MetricSample> samples() const;

  /// Prometheus text exposition (deterministic: name order, fixed number
  /// formatting).
  std::string prometheus() const;

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty() &&
           quantiles_.empty();
  }

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
  std::map<std::string, Quantiles, std::less<>> quantiles_;
};

/// Format a metric value the way both the Prometheus dump and the csv dump
/// do: integral values without a decimal point, others with enough digits
/// to round-trip comparisons in tests.
std::string format_metric_value(double v);

}  // namespace psanim::obs

#pragma once

// Per-rank record buffer + flight ring.
//
// Threading contract (the "lock-free-ish" of the design): every mutating
// method is called only from the owning rank's thread — the same ownership
// argument as Runtime::last_arrival and the fault injector's per-pair
// counters — so the hot append path is a plain vector push with no lock.
// Cross-thread reads happen only after Runtime::run returns (or from the
// owning thread itself, e.g. the checkpoint codec).

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "obs/span.hpp"

namespace psanim::obs {

class RankRecorder {
 public:
  RankRecorder() = default;
  explicit RankRecorder(int rank) : rank_(rank) {}

  int rank() const { return rank_; }

  /// Open a nested span at virtual time `t`; returns its id. Spans form a
  /// stack per rank (protocol phases are properly nested).
  std::uint64_t open_span(std::uint32_t label, std::uint32_t frame, double t);

  /// Close the innermost open span at virtual time `t`.
  void close_span(double t);

  void instant(std::uint32_t label, std::uint32_t frame, double t);

  /// One end of a message flow; `kind` must be kFlowSend or kFlowRecv.
  void flow(RecordKind kind, std::uint64_t flow_id, std::uint32_t label,
            std::uint32_t frame, double t);

  /// Completed records, in begin-time order per rank. Open spans are
  /// visible with end_v == begin_v until closed.
  const std::vector<SpanRecord>& records() const { return records_; }

  std::size_t open_depth() const { return open_.size(); }
  std::uint64_t next_id() const { return next_id_; }

  // --- flight ring -----------------------------------------------------
  /// Keep the most recent `capacity` *completed* records in a bounded ring
  /// (0 disables). The ring is what checkpoints capture: enough recent
  /// history to put the pre-crash timeline into a post-restart trace.
  void enable_ring(std::size_t capacity);
  std::size_t ring_capacity() const { return ring_cap_; }

  /// Ring contents, oldest first.
  std::vector<SpanRecord> ring_snapshot() const;

  /// Re-emit records recovered from a checkpointed ring. Records whose id
  /// is below next_id() were produced by this very recorder earlier in the
  /// run (in-run rollback) and are skipped; fresh ids (restart into a new
  /// run) are appended flagged `replayed` and advance the id counter past
  /// them. Returns how many records were emitted.
  std::size_t emit_recovered(std::span<const SpanRecord> recovered);

 private:
  void finish(const SpanRecord& r);  // ring bookkeeping for completed records

  int rank_ = -1;
  std::vector<SpanRecord> records_;
  std::vector<std::size_t> open_;  // indices into records_ of open spans
  std::uint64_t next_id_ = 1;

  std::vector<SpanRecord> ring_;
  std::size_t ring_cap_ = 0;
  std::size_t ring_head_ = 0;  // next slot to overwrite once full
};

}  // namespace psanim::obs

#include "obs/analysis.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <queue>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace psanim::obs {

namespace {

/// A rank idled here: the latest locally witnessed activity was at
/// `begin_v`, the unblocking message arrived at `end_v`.
struct Blocked {
  double begin_v = 0.0;
  double end_v = 0.0;
  double depart = 0.0;  ///< send time on the sender (when matched)
  int from_rank = -1;
  std::uint32_t label = 0;  ///< tag label id of the flow
  std::uint32_t frame = 0;  ///< recv end's frame
  bool matched = false;
};

/// An innermost-span interval: the part of a span not covered by children.
struct Leaf {
  double begin_v = 0.0;
  double end_v = 0.0;
  std::uint32_t label = 0;
  std::uint32_t frame = 0;
};

struct SpanInfo {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
  double begin_v = 0.0;
  double end_eff = 0.0;  ///< max(end_v, children) — truncated spans extend
  std::uint32_t label = 0;
  std::uint32_t frame = 0;
  std::vector<std::size_t> children;  // indices, in time order
};

struct RankView {
  std::vector<Blocked> blocked;  // disjoint, increasing in time
  std::vector<Leaf> leaves;      // disjoint, increasing in time
  std::vector<SpanInfo> spans;   // open order
  double last_record = 0.0;      // latest fresh record time on this rank
  bool simulating = false;       // has a "simulate" span — a calculator
};

struct FlowSend {
  int rank = -1;
  double depart = 0.0;
};

std::string fmt17(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Build the per-rank view: spans with effective ends, innermost-leaf
/// intervals, and blocked intervals from the witness pass.
RankView build_view(const Trace& trace, int rank,
                    const std::unordered_map<std::uint64_t, FlowSend>& sends,
                    std::uint32_t simulate_label, bool have_simulate) {
  RankView view;
  const auto& records = trace.rank(rank).records();

  // Pass 1: collect fresh spans, map id -> span index, attach children.
  std::unordered_map<std::uint64_t, std::size_t> by_id;
  for (const auto& r : records) {
    if (r.replayed || r.kind != RecordKind::kSpan) continue;
    SpanInfo s;
    s.id = r.id;
    s.parent = r.parent;
    s.begin_v = r.begin_v;
    s.end_eff = r.end_v;
    s.label = r.label;
    s.frame = r.frame;
    by_id.emplace(r.id, view.spans.size());
    view.spans.push_back(std::move(s));
    if (have_simulate && r.label == simulate_label) view.simulating = true;
  }
  for (std::size_t i = 0; i < view.spans.size(); ++i) {
    const auto it = by_id.find(view.spans[i].parent);
    if (it != by_id.end()) view.spans[it->second].children.push_back(i);
  }
  // Children open after their parent, so a reverse sweep sees every
  // child's effective end before its parent needs it (truncated spans —
  // crash left them open with end_v == begin_v — stretch over their
  // children).
  for (std::size_t i = view.spans.size(); i-- > 0;) {
    auto& s = view.spans[i];
    for (const std::size_t c : s.children) {
      s.end_eff = std::max(s.end_eff, view.spans[c].end_eff);
    }
  }
  // Leaf carving: each span minus its children, children in time order.
  for (const auto& s : view.spans) {
    double lo = s.begin_v;
    for (const std::size_t c : s.children) {
      const auto& child = view.spans[c];
      if (child.begin_v > lo) {
        view.leaves.push_back({lo, child.begin_v, s.label, s.frame});
      }
      lo = std::max(lo, child.end_eff);
    }
    if (s.end_eff > lo) view.leaves.push_back({lo, s.end_eff, s.label, s.frame});
  }
  std::sort(view.leaves.begin(), view.leaves.end(),
            [](const Leaf& a, const Leaf& b) { return a.begin_v < b.begin_v; });

  // Pass 2 (witness): records are in begin-time order on one virtual
  // clock. The witness is the latest activity the trace proves happened —
  // the running max of record begins plus every span close at or before
  // the current record. A recv consumed later than the witness means the
  // rank idled for the message.
  std::priority_queue<double, std::vector<double>, std::greater<>> closes;
  double witness = 0.0;
  for (const auto& r : records) {
    if (r.replayed) continue;
    view.last_record = std::max({view.last_record, r.begin_v, r.end_v});
    while (!closes.empty() && closes.top() <= r.begin_v) {
      witness = std::max(witness, closes.top());
      closes.pop();
    }
    if (r.kind == RecordKind::kFlowRecv && r.begin_v > witness) {
      Blocked b;
      b.begin_v = witness;
      b.end_v = r.begin_v;
      b.label = r.label;
      b.frame = r.frame;
      const auto it = sends.find(r.flow);
      if (it != sends.end()) {
        b.matched = true;
        b.from_rank = it->second.rank;
        b.depart = it->second.depart;
      }
      view.blocked.push_back(b);
    }
    witness = std::max(witness, r.begin_v);
    if (r.kind == RecordKind::kSpan && r.end_v > r.begin_v) {
      closes.push(r.end_v);
    }
  }
  return view;
}

constexpr const char* kUntraced = "(untraced)";

/// Builds the path chain backward (latest segment first); reverse at end.
class PathBuilder {
 public:
  PathBuilder(const std::vector<RankView>& views, const LabelTable& labels)
      : views_(views), labels_(labels) {}

  /// Attribute [lo, hi] on `rank` as compute, split at innermost-leaf
  /// boundaries. Every emitted endpoint is one of {lo, hi, a leaf bound},
  /// so the chain telescopes with exact doubles.
  void compute(int rank, double lo, double hi) {
    if (!(hi > lo)) return;
    const auto& leaves = views_[static_cast<std::size_t>(rank)].leaves;
    double cur_hi = hi;
    auto it = std::lower_bound(
        leaves.begin(), leaves.end(), hi,
        [](const Leaf& l, double v) { return l.begin_v < v; });
    for (auto i = static_cast<std::ptrdiff_t>(it - leaves.begin()) - 1;
         i >= 0; --i) {
      const Leaf& leaf = leaves[static_cast<std::size_t>(i)];
      if (leaf.end_v <= lo) break;
      const double leaf_hi = std::min(cur_hi, leaf.end_v);
      if (leaf_hi < cur_hi) {
        push(cur_hi, leaf_hi, rank, -1, 0, SegmentKind::kCompute, kUntraced);
      }
      const double leaf_lo = std::max(lo, leaf.begin_v);
      if (leaf_hi > leaf_lo) {
        push(leaf_hi, leaf_lo, rank, -1, leaf.frame, SegmentKind::kCompute,
             labels_.name(leaf.label));
      }
      cur_hi = leaf_lo;
      if (!(cur_hi > lo)) break;
    }
    if (cur_hi > lo) {
      push(cur_hi, lo, rank, -1, 0, SegmentKind::kCompute, kUntraced);
    }
  }

  void wire(int rank, int from_rank, double lo, double hi,
            std::uint32_t label, std::uint32_t frame) {
    if (!(hi > lo)) return;
    push(hi, lo, rank, from_rank, frame, SegmentKind::kWire,
         labels_.name(label));
  }

  std::vector<PathSegment> take() {
    std::reverse(segments_.begin(), segments_.end());
    return std::move(segments_);
  }

 private:
  void push(double hi, double lo, int rank, int from_rank,
            std::uint32_t frame, SegmentKind kind, std::string label) {
    PathSegment s;
    s.begin_v = lo;
    s.end_v = hi;
    s.rank = rank;
    s.from_rank = from_rank;
    s.frame = frame;
    s.kind = kind;
    s.label = std::move(label);
    segments_.push_back(std::move(s));
  }

  const std::vector<RankView>& views_;
  const LabelTable& labels_;
  std::vector<PathSegment> segments_;
};

CriticalPath critical_path(const std::vector<RankView>& views,
                           const LabelTable& labels,
                           std::size_t total_records) {
  CriticalPath cp;
  for (std::size_t r = 0; r < views.size(); ++r) {
    double last = views[r].last_record;
    for (const auto& s : views[r].spans) last = std::max(last, s.end_eff);
    if (last > cp.makespan_s) {
      cp.makespan_s = last;
      cp.end_rank = static_cast<int>(r);
    }
  }
  if (cp.makespan_s == 0.0) cp.end_rank = -1;  // records only at t == 0
  if (cp.end_rank < 0) return cp;  // empty trace

  PathBuilder path(views, labels);
  int rank = cp.end_rank;
  double cur = cp.makespan_s;
  // Strict progress is guaranteed while message times are positive; the
  // cap is a backstop against degenerate zero-cost models so a malformed
  // trace degrades to a truncated attribution instead of a hang.
  std::size_t iters_left = 2 * total_records + 64;
  while (cur > 0.0) {
    const auto& blocked = views[static_cast<std::size_t>(rank)].blocked;
    auto it = std::upper_bound(
        blocked.begin(), blocked.end(), cur,
        [](double v, const Blocked& b) { return v < b.end_v; });
    if (it == blocked.begin() || iters_left-- == 0) {
      path.compute(rank, 0.0, cur);
      break;
    }
    const Blocked& b = *std::prev(it);
    path.compute(rank, b.end_v, cur);
    if (b.matched && b.depart >= b.begin_v) {
      // The message departed after the receiver stalled: the whole wait is
      // wire, and the chain continues on the sender at the send.
      path.wire(rank, b.from_rank, b.depart, b.end_v, b.label, b.frame);
      rank = b.from_rank;
      cur = b.depart;
    } else {
      // Either the send end is missing (crashed sender) or the message was
      // already in flight when the receiver stalled — the receiver's own
      // earlier work bounds the join, so stay on this rank.
      path.wire(rank, b.matched ? b.from_rank : -1, b.begin_v, b.end_v,
                b.label, b.frame);
      cur = b.begin_v;
    }
  }
  cp.segments = path.take();

  // The chain must tile [0, makespan] with exact doubles — this is the
  // structural form of "summed span costs equal the run makespan".
  double expect = 0.0;
  for (const auto& s : cp.segments) {
    if (s.begin_v != expect || !(s.end_v > s.begin_v)) {
      throw std::logic_error("obs::analysis: critical path chain broke");
    }
    expect = s.end_v;
  }
  if (!cp.segments.empty() && expect != cp.makespan_s) {
    throw std::logic_error("obs::analysis: critical path missed makespan");
  }

  std::map<std::string, double> phase;
  std::map<int, double> ranks;
  for (const auto& s : cp.segments) {
    const double d = s.end_v - s.begin_v;
    ranks[s.rank] += d;
    if (s.kind == SegmentKind::kCompute) {
      cp.compute_s += d;
      phase[s.label] += d;
    } else {
      cp.wire_s += d;
    }
  }
  for (auto& [label, seconds] : phase) cp.by_phase.push_back({label, seconds});
  for (auto& [r, seconds] : ranks) cp.by_rank.push_back({r, seconds});
  return cp;
}

std::vector<FrameAttribution> attribute_frames(
    const std::vector<RankView>& views, const LabelTable& labels,
    std::uint32_t frame_label, bool have_frame) {
  std::vector<FrameAttribution> out;
  if (!have_frame) return out;

  struct FrameOnRank {
    double begin_v = 0.0;
    double end_v = 0.0;
    std::map<std::string, double> phases;  // direct children by label
  };
  // frame -> rank -> span; std::map keeps frames and ranks ordered.
  std::map<std::uint32_t, std::map<int, FrameOnRank>> grid;
  for (std::size_t r = 0; r < views.size(); ++r) {
    if (!views[r].simulating) continue;
    for (const auto& s : views[r].spans) {
      if (s.label != frame_label) continue;
      auto& cell = grid[s.frame][static_cast<int>(r)];
      cell.begin_v = s.begin_v;
      cell.end_v = s.end_eff;
      for (const std::size_t c : s.children) {
        const auto& child = views[r].spans[c];
        cell.phases[labels.name(child.label)] +=
            child.end_eff - child.begin_v;
      }
    }
  }

  for (const auto& [frame, by_rank] : grid) {
    FrameAttribution fa;
    fa.frame = frame;
    double total = 0.0;
    for (const auto& [rank, cell] : by_rank) {
      const double dur = cell.end_v - cell.begin_v;
      total += dur;
      if (dur > fa.slowest_s) {
        fa.slowest_s = dur;
        fa.gating_rank = rank;
      }
    }
    if (fa.gating_rank < 0) continue;
    fa.mean_s = total / static_cast<double>(by_rank.size());
    fa.imbalance = fa.mean_s > 0.0 ? fa.slowest_s / fa.mean_s : 1.0;
    const FrameOnRank& gating = by_rank.at(fa.gating_rank);
    fa.end_s = gating.end_v;

    // The gating phase: where the slowest rank lost the most time
    // relative to the fastest rank that ran the same phase this frame.
    double worst_loss = 0.0;
    for (const auto& [label, dur] : gating.phases) {
      double fastest = dur;
      for (const auto& [rank, cell] : by_rank) {
        const auto it = cell.phases.find(label);
        if (it != cell.phases.end()) fastest = std::min(fastest, it->second);
      }
      if (dur - fastest > worst_loss) {
        worst_loss = dur - fastest;
        fa.gating_phase = label;
      }
    }

    // Compute / wait / wire decomposition of the gating rank's frame span:
    // blocked intervals split into the part the message was still on the
    // wire and the part it idled for other reasons; the rest is compute.
    double blocked_s = 0.0;
    for (const auto& b :
         views[static_cast<std::size_t>(fa.gating_rank)].blocked) {
      const double lo = std::max(b.begin_v, gating.begin_v);
      const double hi = std::min(b.end_v, gating.end_v);
      if (!(hi > lo)) continue;
      blocked_s += hi - lo;
      const double wire_from = b.matched ? std::max(b.begin_v, b.depart)
                                         : b.begin_v;
      const double wlo = std::max(lo, wire_from);
      if (hi > wlo) fa.wire_s += hi - wlo;
    }
    fa.wait_s = blocked_s - fa.wire_s;
    fa.compute_s = (gating.end_v - gating.begin_v) - blocked_s;
    out.push_back(std::move(fa));
  }
  return out;
}

}  // namespace

const char* to_string(SegmentKind k) {
  return k == SegmentKind::kWire ? "wire" : "compute";
}

Analysis analyze(const Trace& trace) {
  const LabelTable& labels = trace.labels();
  // Resolve the two structural label names once. LabelTable has no
  // reverse lookup; probing every id is fine post-run (label sets are
  // tiny) and never observes interning order.
  std::uint32_t simulate_label = 0, frame_label = 0;
  bool have_simulate = false, have_frame = false;
  for (std::uint32_t id = 0; id < labels.size(); ++id) {
    const std::string name = labels.name(id);
    if (name == "simulate") {
      simulate_label = id;
      have_simulate = true;
    } else if (name == "frame") {
      frame_label = id;
      have_frame = true;
    }
  }

  // Flow index: send end of every fresh flow, keyed by the runtime-wide
  // message seq. Rank-order iteration keeps duplicate keys (possible only
  // in multi-epoch traces, which analyze() does not claim to support)
  // resolving deterministically to the first-seen send.
  std::unordered_map<std::uint64_t, FlowSend> sends;
  std::size_t total_records = 0;
  for (int r = 0; r < trace.world_size(); ++r) {
    const auto& records = trace.rank(r).records();
    total_records += records.size();
    for (const auto& rec : records) {
      if (rec.replayed || rec.kind != RecordKind::kFlowSend) continue;
      sends.emplace(rec.flow, FlowSend{r, rec.begin_v});
    }
  }

  std::vector<RankView> views;
  views.reserve(static_cast<std::size_t>(trace.world_size()));
  for (int r = 0; r < trace.world_size(); ++r) {
    views.push_back(
        build_view(trace, r, sends, simulate_label, have_simulate));
  }

  Analysis a;
  a.critical_path = critical_path(views, labels, total_records);
  a.frames = attribute_frames(views, labels, frame_label, have_frame);
  return a;
}

std::string analysis_json(const Analysis& a) {
  const CriticalPath& cp = a.critical_path;
  std::string out;
  out.reserve(4096 + cp.segments.size() * 128 + a.frames.size() * 160);
  out += "{\n  \"schema\": \"psanim-obs-report-v1\",\n";
  out += "  \"makespan_s\": " + fmt17(cp.makespan_s) + ",\n";
  out += "  \"critical_path\": {\n";
  out += "    \"end_rank\": " + std::to_string(cp.end_rank) + ",\n";
  out += "    \"compute_s\": " + fmt17(cp.compute_s) + ",\n";
  out += "    \"wire_s\": " + fmt17(cp.wire_s) + ",\n";
  out += "    \"wire_share\": " + fmt17(cp.wire_share()) + ",\n";
  out += "    \"segments\": [\n";
  for (std::size_t i = 0; i < cp.segments.size(); ++i) {
    const PathSegment& s = cp.segments[i];
    out += "      {\"begin_s\": " + fmt17(s.begin_v) +
           ", \"end_s\": " + fmt17(s.end_v) +
           ", \"rank\": " + std::to_string(s.rank) + ", \"kind\": \"" +
           to_string(s.kind) + "\"";
    if (s.kind == SegmentKind::kWire) {
      out += ", \"from_rank\": " + std::to_string(s.from_rank);
    }
    out += ", \"label\": \"" + json_escape(s.label) +
           "\", \"frame\": " + std::to_string(s.frame) + "}";
    out += i + 1 < cp.segments.size() ? ",\n" : "\n";
  }
  out += "    ],\n    \"by_phase\": [\n";
  for (std::size_t i = 0; i < cp.by_phase.size(); ++i) {
    out += "      {\"label\": \"" + json_escape(cp.by_phase[i].label) +
           "\", \"seconds\": " + fmt17(cp.by_phase[i].seconds) + "}";
    out += i + 1 < cp.by_phase.size() ? ",\n" : "\n";
  }
  out += "    ],\n    \"by_rank\": [\n";
  for (std::size_t i = 0; i < cp.by_rank.size(); ++i) {
    out += "      {\"rank\": " + std::to_string(cp.by_rank[i].rank) +
           ", \"seconds\": " + fmt17(cp.by_rank[i].seconds) + "}";
    out += i + 1 < cp.by_rank.size() ? ",\n" : "\n";
  }
  out += "    ]\n  },\n  \"frames\": [\n";
  for (std::size_t i = 0; i < a.frames.size(); ++i) {
    const FrameAttribution& f = a.frames[i];
    out += "    {\"frame\": " + std::to_string(f.frame) +
           ", \"gating_rank\": " + std::to_string(f.gating_rank) +
           ", \"gating_phase\": \"" + json_escape(f.gating_phase) +
           "\", \"end_s\": " + fmt17(f.end_s) +
           ", \"slowest_s\": " + fmt17(f.slowest_s) +
           ", \"mean_s\": " + fmt17(f.mean_s) +
           ", \"imbalance\": " + fmt17(f.imbalance) +
           ", \"compute_s\": " + fmt17(f.compute_s) +
           ", \"wait_s\": " + fmt17(f.wait_s) +
           ", \"wire_s\": " + fmt17(f.wire_s) + "}";
    out += i + 1 < a.frames.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

void write_analysis_json(const Analysis& a, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    throw std::runtime_error("obs::write_analysis_json: cannot open " + path);
  }
  const std::string text = analysis_json(a);
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
}

void fold_summary(const Analysis& a, MetricsRegistry& m) {
  const CriticalPath& cp = a.critical_path;
  m.counter("psanim_obs_cp_compute_seconds_total").add(cp.compute_s);
  m.counter("psanim_obs_cp_wire_seconds_total").add(cp.wire_s);
  m.counter("psanim_obs_cp_segments_total")
      .add(static_cast<double>(cp.segments.size()));
  m.gauge("psanim_obs_cp_makespan_seconds").set(cp.makespan_s);
  m.gauge("psanim_obs_cp_wire_share").set(cp.wire_share());
  auto& imbalance = m.quantiles("psanim_obs_frame_imbalance");
  double worst = 0.0;
  for (const auto& f : a.frames) {
    imbalance.observe(f.imbalance);
    worst = std::max(worst, f.imbalance);
  }
  m.gauge("psanim_obs_frame_imbalance_max").set(worst);
}

}  // namespace psanim::obs

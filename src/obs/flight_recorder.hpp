#pragma once

// Flight-recorder codec: the bounded ring of recent records a rank carries
// into each checkpoint, and back out of a restore.
//
// The encoding is self-contained: label ids in the global LabelTable are
// interning-order-dependent (thread schedules differ run to run), so the
// ring is written with a local string table and re-interned on decode.
// That makes a snapshot byte-deterministic given the same ring contents,
// and lets a *different* run (restart-into-new-run recovery) adopt the
// records into its own table.

#include <cstddef>
#include <vector>

#include "mp/message.hpp"
#include "obs/recorder.hpp"
#include "obs/span.hpp"

namespace psanim::obs {

/// Serialize `rec`'s flight ring (oldest first) into `w`, resolving label
/// ids through `labels`.
void encode_ring(mp::Writer& w, const RankRecorder& rec,
                 const LabelTable& labels);

/// Decode a ring section encoded by encode_ring, re-interning every label
/// into `labels`. Records come back oldest first with live label ids.
std::vector<SpanRecord> decode_ring(mp::Reader& r, LabelTable& labels);

}  // namespace psanim::obs

#pragma once

// psanim::obs record model.
//
// The observability layer sees a run as a stream of *records* stamped in
// virtual time: phase spans (begin/end), instant markers, and the two ends
// of a message flow (send at the source rank, recv at the destination).
// Records carry interned label ids instead of strings so the hot recording
// path never allocates; the owning Trace's LabelTable resolves names at
// query/export time.

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>
#include <unordered_map>
#include <vector>

namespace psanim::obs {

enum class RecordKind : std::uint8_t {
  kSpan = 0,      ///< a phase with virtual begin/end times
  kInstant = 1,   ///< a point event (begin == end)
  kFlowSend = 2,  ///< message departed this rank (flow id = message seq)
  kFlowRecv = 3,  ///< message consumed by this rank
};

/// One trace record. Trivially copyable so the flight ring can memcpy it;
/// the label id is only meaningful against the trace that produced it (the
/// checkpoint codec re-interns labels on decode).
struct SpanRecord {
  std::uint64_t id = 0;      ///< per-rank sequence; unique within a rank
  std::uint64_t parent = 0;  ///< enclosing span id, 0 = top level
  std::uint64_t flow = 0;    ///< flow pairing key for kFlowSend/kFlowRecv
  double begin_v = 0.0;      ///< virtual seconds
  double end_v = 0.0;        ///< == begin_v for instants and flow ends
  std::uint32_t frame = 0;
  std::uint32_t label = 0;   ///< LabelTable id
  std::int32_t rank = -1;
  RecordKind kind = RecordKind::kInstant;
  /// Re-emitted from a flight-recorder ring after a restore — the record
  /// describes work done before the crash, not work of this epoch.
  std::uint8_t replayed = 0;
  std::uint16_t reserved = 0;
};

static_assert(std::is_trivially_copyable_v<SpanRecord>);

/// Thread-safe string interner shared by every rank of one Trace. Interning
/// happens on role threads (rarely — label sets are small and repeat);
/// resolution happens post-run.
class LabelTable {
 public:
  /// Id of `name`, interning it on first sight. Ids are dense from 0 in
  /// interning order (which may vary with thread schedule — resolve to
  /// strings before comparing traces across runs).
  std::uint32_t intern(std::string_view name);

  /// Resolve an id; returns "?" for ids this table never produced.
  std::string name(std::uint32_t id) const;

  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::deque<std::string> names_;  // deque: stable addresses for the map keys
  std::unordered_map<std::string_view, std::uint32_t> ids_;
};

}  // namespace psanim::obs

#include "obs/recorder.hpp"

#include <algorithm>

#include "obs/span.hpp"

namespace psanim::obs {

std::uint32_t LabelTable::intern(std::string_view name) {
  const std::scoped_lock lock(mu_);
  if (const auto it = ids_.find(name); it != ids_.end()) return it->second;
  names_.emplace_back(name);
  const auto id = static_cast<std::uint32_t>(names_.size() - 1);
  ids_.emplace(std::string_view(names_.back()), id);
  return id;
}

std::string LabelTable::name(std::uint32_t id) const {
  const std::scoped_lock lock(mu_);
  if (id >= names_.size()) return "?";
  return names_[id];
}

std::size_t LabelTable::size() const {
  const std::scoped_lock lock(mu_);
  return names_.size();
}

std::uint64_t RankRecorder::open_span(std::uint32_t label, std::uint32_t frame,
                                      double t) {
  if (records_.empty()) records_.reserve(1024);
  SpanRecord r;
  r.id = next_id_++;
  r.parent = open_.empty() ? 0 : records_[open_.back()].id;
  r.begin_v = r.end_v = t;
  r.frame = frame;
  r.label = label;
  r.rank = rank_;
  r.kind = RecordKind::kSpan;
  open_.push_back(records_.size());
  records_.push_back(r);
  return r.id;
}

void RankRecorder::close_span(double t) {
  if (open_.empty()) return;  // tolerated: a stray close is not worth a crash
  SpanRecord& r = records_[open_.back()];
  open_.pop_back();
  if (t > r.end_v) r.end_v = t;
  finish(r);
}

void RankRecorder::instant(std::uint32_t label, std::uint32_t frame,
                           double t) {
  if (records_.empty()) records_.reserve(1024);
  SpanRecord r;
  r.id = next_id_++;
  r.parent = open_.empty() ? 0 : records_[open_.back()].id;
  r.begin_v = r.end_v = t;
  r.frame = frame;
  r.label = label;
  r.rank = rank_;
  r.kind = RecordKind::kInstant;
  records_.push_back(r);
  finish(r);
}

void RankRecorder::flow(RecordKind kind, std::uint64_t flow_id,
                        std::uint32_t label, std::uint32_t frame, double t) {
  if (records_.empty()) records_.reserve(1024);
  SpanRecord r;
  r.id = next_id_++;
  r.parent = open_.empty() ? 0 : records_[open_.back()].id;
  r.flow = flow_id;
  r.begin_v = r.end_v = t;
  r.frame = frame;
  r.label = label;
  r.rank = rank_;
  r.kind = kind;
  records_.push_back(r);
  finish(r);
}

void RankRecorder::enable_ring(std::size_t capacity) {
  ring_cap_ = capacity;
  ring_.clear();
  ring_.reserve(capacity);
  ring_head_ = 0;
}

void RankRecorder::finish(const SpanRecord& r) {
  if (ring_cap_ == 0) return;
  if (ring_.size() < ring_cap_) {
    ring_.push_back(r);
    return;
  }
  ring_[ring_head_] = r;
  ring_head_ = (ring_head_ + 1) % ring_cap_;
}

std::vector<SpanRecord> RankRecorder::ring_snapshot() const {
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(ring_head_ + i) % ring_.size()]);
  }
  // Completed records enter the ring in close order, which can differ from
  // begin order for nested spans; present oldest-begin first.
  std::stable_sort(out.begin(), out.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     if (a.begin_v != b.begin_v) return a.begin_v < b.begin_v;
                     return a.id < b.id;
                   });
  return out;
}

std::size_t RankRecorder::emit_recovered(
    std::span<const SpanRecord> recovered) {
  std::size_t emitted = 0;
  for (const SpanRecord& in : recovered) {
    if (in.id < next_id_) continue;  // already recorded this run
    SpanRecord r = in;
    r.rank = rank_;
    r.replayed = 1;
    records_.push_back(r);
    next_id_ = r.id + 1;
    finish(r);
    ++emitted;
  }
  return emitted;
}

}  // namespace psanim::obs

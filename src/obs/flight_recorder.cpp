#include "obs/flight_recorder.hpp"

#include <cstdint>
#include <map>
#include <string>

namespace psanim::obs {

void encode_ring(mp::Writer& w, const RankRecorder& rec,
                 const LabelTable& labels) {
  const std::vector<SpanRecord> ring = rec.ring_snapshot();

  // Local string table in first-appearance order: global ids are schedule
  // dependent, remapped ids are a pure function of the ring contents.
  std::map<std::uint32_t, std::uint32_t> local;
  std::vector<std::uint32_t> order;
  for (const SpanRecord& r : ring) {
    if (local.emplace(r.label, static_cast<std::uint32_t>(order.size()))
            .second) {
      order.push_back(r.label);
    }
  }
  w.put<std::uint64_t>(order.size());
  for (const std::uint32_t id : order) {
    const std::string name = labels.name(id);
    w.put_span(std::span<const char>(name.data(), name.size()));
  }
  w.put<std::uint64_t>(ring.size());
  for (const SpanRecord& r : ring) {
    w.put(r.id);
    w.put(r.parent);
    w.put(r.flow);
    w.put(r.begin_v);
    w.put(r.end_v);
    w.put(r.frame);
    w.put(local.at(r.label));
    w.put(r.rank);
    w.put(static_cast<std::uint8_t>(r.kind));
    w.put(r.replayed);
  }
}

std::vector<SpanRecord> decode_ring(mp::Reader& r, LabelTable& labels) {
  const auto nlabels = r.get<std::uint64_t>();
  std::vector<std::uint32_t> live_ids;
  live_ids.reserve(static_cast<std::size_t>(nlabels));
  for (std::uint64_t i = 0; i < nlabels; ++i) {
    const std::vector<char> chars = r.get_vector<char>();
    live_ids.push_back(
        labels.intern(std::string_view(chars.data(), chars.size())));
  }
  const auto n = r.get<std::uint64_t>();
  std::vector<SpanRecord> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    SpanRecord rec;
    rec.id = r.get<std::uint64_t>();
    rec.parent = r.get<std::uint64_t>();
    rec.flow = r.get<std::uint64_t>();
    rec.begin_v = r.get<double>();
    rec.end_v = r.get<double>();
    rec.frame = r.get<std::uint32_t>();
    rec.label = live_ids.at(r.get<std::uint32_t>());
    rec.rank = r.get<std::int32_t>();
    rec.kind = static_cast<RecordKind>(r.get<std::uint8_t>());
    rec.replayed = r.get<std::uint8_t>();
    out.push_back(rec);
  }
  return out;
}

}  // namespace psanim::obs

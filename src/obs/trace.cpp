#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

namespace psanim::obs {

namespace {

constexpr double kBucketsMsgBytes[] = {64,    256,   1024,  4096,
                                       16384, 65536, 262144};

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Virtual seconds -> trace microseconds, fixed precision for determinism.
std::string us(double seconds) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e6);
  return buf;
}

}  // namespace

struct Trace::RankState {
  explicit RankState(int r) : rec(r) {}

  RankRecorder rec;
  MetricsRegistry metrics;

  // Hot-path handles, resolved once so per-message work is pointer chases.
  Counter* msgs_sent = nullptr;
  Counter* bytes_sent = nullptr;
  Counter* msgs_recv = nullptr;
  Counter* bytes_recv = nullptr;
  Histogram* msg_bytes = nullptr;

  void bind_handles() {
    msgs_sent = &metrics.counter("psanim_mp_msgs_sent_total");
    bytes_sent = &metrics.counter("psanim_mp_bytes_sent_total");
    msgs_recv = &metrics.counter("psanim_mp_msgs_recv_total");
    bytes_recv = &metrics.counter("psanim_mp_bytes_recv_total");
    msg_bytes = &metrics.histogram(
        "psanim_mp_msg_bytes",
        {std::begin(kBucketsMsgBytes), std::end(kBucketsMsgBytes)});
  }
};

Trace::Trace() = default;
Trace::~Trace() = default;

void Trace::begin_run(int world_size, std::size_t ring_capacity) {
  ranks_.reserve(static_cast<std::size_t>(world_size));
  while (static_cast<int>(ranks_.size()) < world_size) {
    auto st = std::make_unique<RankState>(static_cast<int>(ranks_.size()));
    st->bind_handles();
    ranks_.push_back(std::move(st));
  }
  for (auto& st : ranks_) st->rec.enable_ring(ring_capacity);
}

Trace::RankState& Trace::state(int r) {
  return *ranks_.at(static_cast<std::size_t>(r));
}

const Trace::RankState& Trace::state(int r) const {
  return *ranks_.at(static_cast<std::size_t>(r));
}

RankRecorder& Trace::rank(int r) { return state(r).rec; }
const RankRecorder& Trace::rank(int r) const { return state(r).rec; }
MetricsRegistry& Trace::metrics(int r) { return state(r).metrics; }
const MetricsRegistry& Trace::metrics(int r) const {
  return state(r).metrics;
}

void Trace::set_rank_name(int r, std::string name) {
  rank_names_[r] = rank_namespace_.empty()
                       ? std::move(name)
                       : rank_namespace_ + "/" + std::move(name);
}

void Trace::set_rank_namespace(std::string ns) {
  rank_namespace_ = std::move(ns);
}

void Trace::name_tag(int tag, std::string name) {
  tag_labels_[tag] = labels_.intern(name);
}

std::uint32_t Trace::tag_label(int tag) {
  // Pre-run name_tag registrations cover the protocol tags; anything else
  // (collective tags, tests) falls through to a generated name. Role
  // threads can race here, so the whole lookup is under a mutex — the map
  // is tiny and the per-message cost is one uncontended lock.
  static std::mutex mu;
  const std::scoped_lock lock(mu);
  const auto it = tag_labels_.find(tag);
  if (it != tag_labels_.end()) return it->second;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "msg tag %d", tag);
  const std::uint32_t id = labels_.intern(buf);
  tag_labels_.emplace(tag, id);
  return id;
}

void Trace::on_send(int src, int dst, int tag, std::uint64_t seq,
                    std::size_t wire_bytes, double depart_s, double arrive_s,
                    std::uint32_t frame) {
  (void)dst;
  (void)arrive_s;
  RankState& st = state(src);
  st.rec.flow(RecordKind::kFlowSend, seq, tag_label(tag), frame, depart_s);
  st.msgs_sent->inc();
  st.bytes_sent->add(static_cast<double>(wire_bytes));
}

void Trace::on_recv(int rank, int src, int tag, std::uint64_t seq,
                    std::size_t wire_bytes, double arrive_s,
                    std::uint32_t frame) {
  (void)src;
  RankState& st = state(rank);
  st.rec.flow(RecordKind::kFlowRecv, seq, tag_label(tag), frame, arrive_s);
  st.msgs_recv->inc();
  st.bytes_recv->add(static_cast<double>(wire_bytes));
  st.msg_bytes->observe(static_cast<double>(wire_bytes));
}

MetricsRegistry Trace::merged_metrics() const {
  MetricsRegistry merged;
  for (const auto& st : ranks_) merged.merge(st->metrics);
  return merged;
}

std::size_t Trace::record_count() const {
  std::size_t n = 0;
  for (const auto& st : ranks_) n += st->rec.records().size();
  return n;
}

std::vector<SpanRecord> Trace::sorted_records() const {
  std::vector<SpanRecord> out;
  out.reserve(record_count());
  for (const auto& st : ranks_) {
    const auto& recs = st->rec.records();
    out.insert(out.end(), recs.begin(), recs.end());
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.begin_v != b.begin_v) return a.begin_v < b.begin_v;
              if (a.rank != b.rank) return a.rank < b.rank;
              return a.id < b.id;
            });
  return out;
}

std::vector<TimelineEntry> Trace::frame_timeline(std::uint32_t frame) const {
  std::vector<TimelineEntry> out;
  for (const auto& st : ranks_) {
    for (const SpanRecord& r : st->rec.records()) {
      if (r.frame != frame) continue;
      TimelineEntry e;
      e.rank = r.rank;
      e.frame = r.frame;
      if (r.kind == RecordKind::kSpan) {
        e.vtime = r.end_v;
        char buf[48];
        std::snprintf(buf, sizeof(buf), " [+%.6fs]", r.end_v - r.begin_v);
        e.text = labels_.name(r.label) + buf;
      } else if (r.kind == RecordKind::kInstant) {
        e.vtime = r.begin_v;
        e.text = labels_.name(r.label);
      } else {
        continue;  // flows are arrows, not timeline rows
      }
      if (r.replayed) e.text += " (replayed)";
      out.push_back(std::move(e));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TimelineEntry& a, const TimelineEntry& b) {
              if (a.vtime != b.vtime) return a.vtime < b.vtime;
              return a.rank < b.rank;
            });
  return out;
}

std::string Trace::chrome_json() const {
  const std::vector<SpanRecord> recs = sorted_records();

  // Flow arrows need both ends; unmatched ends (e.g. frame acks the run
  // finished without draining) would render as dangling arrows, so pair
  // first and emit only complete pairs. Flow ids are message seqs of the
  // run that produced them, so records replayed from a flight ring live in
  // their own id space — a resumed run reuses the same seq values for its
  // fresh messages.
  const auto flow_key = [](const SpanRecord& r) {
    return (r.flow << 1) | r.replayed;
  };
  std::unordered_map<std::uint64_t, const SpanRecord*> sends;
  std::unordered_map<std::uint64_t, const SpanRecord*> recvs;
  for (const SpanRecord& r : recs) {
    if (r.kind == RecordKind::kFlowSend) sends.emplace(flow_key(r), &r);
    if (r.kind == RecordKind::kFlowRecv) recvs.emplace(flow_key(r), &r);
  }
  // Raw flow ids are global send-order sequence values — schedule-
  // dependent, which would make the export differ byte-wise between
  // identical runs. Re-number matched pairs densely in the (deterministic)
  // sorted-record order of their send end.
  std::unordered_map<std::uint64_t, std::uint64_t> flow_ids;
  for (const SpanRecord& r : recs) {
    if (r.kind != RecordKind::kFlowSend) continue;
    const auto key = flow_key(r);
    if (recvs.count(key) != 0) flow_ids.emplace(key, flow_ids.size());
  }

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const std::string& ev) {
    if (!first) out += ",";
    first = false;
    out += "\n" + ev;
  };

  for (const auto& st : ranks_) {
    const int r = st->rec.rank();
    std::string name = "rank " + std::to_string(r);
    if (const auto it = rank_names_.find(r); it != rank_names_.end()) {
      name = it->second;
    }
    emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
         std::to_string(r) + ",\"tid\":0,\"args\":{\"name\":\"" +
         json_escape(name) + "\"}}");
  }

  for (const SpanRecord& r : recs) {
    const std::string head = "{\"name\":\"" +
                             json_escape(labels_.name(r.label)) +
                             "\",\"pid\":" + std::to_string(r.rank) +
                             ",\"tid\":0,\"ts\":" + us(r.begin_v);
    const std::string args = ",\"args\":{\"frame\":" +
                             std::to_string(r.frame) +
                             (r.replayed ? ",\"replayed\":1}" : "}");
    const char* cat = r.replayed ? "replay" : "phase";
    switch (r.kind) {
      case RecordKind::kSpan:
        emit(head + ",\"ph\":\"X\",\"dur\":" + us(r.end_v - r.begin_v) +
             ",\"cat\":\"" + cat + "\"" + args + "}");
        break;
      case RecordKind::kInstant:
        emit(head + ",\"ph\":\"i\",\"s\":\"t\",\"cat\":\"" + cat + "\"" +
             args + "}");
        break;
      case RecordKind::kFlowSend: {
        const auto it = flow_ids.find(flow_key(r));
        if (it == flow_ids.end()) break;
        emit(head + ",\"ph\":\"s\",\"cat\":\"" +
             (r.replayed ? "flow-replay" : "flow") +
             "\",\"id\":" + std::to_string(it->second) + args + "}");
        break;
      }
      case RecordKind::kFlowRecv: {
        // Only keys with a matched send end are in flow_ids.
        const auto it = flow_ids.find(flow_key(r));
        if (it == flow_ids.end()) break;
        emit(head + ",\"ph\":\"f\",\"bp\":\"e\",\"cat\":\"" +
             (r.replayed ? "flow-replay" : "flow") +
             "\",\"id\":" + std::to_string(it->second) + args + "}");
        break;
      }
    }
  }

  out += "\n]}\n";
  return out;
}

void Trace::write_chrome_json(const std::string& path) const {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) {
    throw std::runtime_error("obs::Trace: cannot open trace output path '" +
                             path + "'");
  }
  f << chrome_json();
  if (!f) {
    throw std::runtime_error("obs::Trace: failed writing trace to '" + path +
                             "'");
  }
}

}  // namespace psanim::obs

#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace psanim::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (!(bounds_[i] > bounds_[i - 1])) {
      throw std::invalid_argument(
          "Histogram: upper bounds must be strictly increasing");
    }
  }
}

void Histogram::observe(double v) {
  if (counts_.empty()) counts_.assign(bounds_.size() + 1, 0);
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += v;
}

void Histogram::merge(const Histogram& other) {
  if (bounds_ != other.bounds_) {
    throw std::invalid_argument(
        "Histogram::merge: bucket bounds differ between registries");
  }
  if (counts_.empty()) counts_.assign(bounds_.size() + 1, 0);
  for (std::size_t i = 0; i < counts_.size() && i < other.counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  if (const auto it = counters_.find(name); it != counters_.end()) {
    return it->second;
  }
  return counters_.emplace(std::string(name), Counter{}).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  if (const auto it = gauges_.find(name); it != gauges_.end()) {
    return it->second;
  }
  return gauges_.emplace(std::string(name), Gauge{}).first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> upper_bounds) {
  if (const auto it = histograms_.find(name); it != histograms_.end()) {
    return it->second;
  }
  return histograms_
      .emplace(std::string(name), Histogram(std::move(upper_bounds)))
      .first->second;
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

double MetricsRegistry::counter_value(std::string_view name) const {
  const Counter* c = find_counter(name);
  return c ? c->value() : 0.0;
}

double MetricsRegistry::gauge_value(std::string_view name) const {
  const Gauge* g = find_gauge(name);
  return g ? g->value() : 0.0;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) counter(name).add(c.value());
  for (const auto& [name, g] : other.gauges_) gauge(name).set_max(g.value());
  for (const auto& [name, h] : other.histograms_) {
    histogram(name, h.upper_bounds()).merge(h);
  }
}

std::string format_metric_value(double v) {
  char buf[64];
  if (std::floor(v) == v && std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  }
  return buf;
}

namespace {

/// le-label for a bucket bound ("+Inf" for the overflow bucket).
std::string le_label(double bound, bool inf) {
  return inf ? std::string("+Inf") : format_metric_value(bound);
}

}  // namespace

std::vector<MetricSample> MetricsRegistry::samples() const {
  std::vector<MetricSample> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size() * 4);
  for (const auto& [name, c] : counters_) out.push_back({name, c.value()});
  for (const auto& [name, g] : gauges_) out.push_back({name, g.value()});
  for (const auto& [name, h] : histograms_) {
    std::uint64_t cum = 0;
    const auto& bounds = h.upper_bounds();
    const auto& counts = h.bucket_counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      cum += counts[i];
      const bool inf = i == bounds.size();
      out.push_back({name + "_bucket{le=\"" +
                         le_label(inf ? 0.0 : bounds[i], inf) + "\"}",
                     static_cast<double>(cum)});
    }
    out.push_back({name + "_sum", h.sum()});
    out.push_back({name + "_count", static_cast<double>(h.count())});
  }
  return out;
}

std::string MetricsRegistry::prometheus() const {
  std::string out;
  for (const auto& [name, c] : counters_) {
    out += "# TYPE " + name + " counter\n";
    out += name + " " + format_metric_value(c.value()) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + format_metric_value(g.value()) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    out += "# TYPE " + name + " histogram\n";
    std::uint64_t cum = 0;
    const auto& bounds = h.upper_bounds();
    const auto& counts = h.bucket_counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      cum += counts[i];
      const bool inf = i == bounds.size();
      out += name + "_bucket{le=\"" + le_label(inf ? 0.0 : bounds[i], inf) +
             "\"} " + format_metric_value(static_cast<double>(cum)) + "\n";
    }
    out += name + "_sum " + format_metric_value(h.sum()) + "\n";
    out += name + "_count " +
           format_metric_value(static_cast<double>(h.count())) + "\n";
  }
  return out;
}

}  // namespace psanim::obs

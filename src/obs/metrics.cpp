#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iterator>
#include <stdexcept>

namespace psanim::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (!(bounds_[i] > bounds_[i - 1])) {
      throw std::invalid_argument(
          "Histogram: upper bounds must be strictly increasing");
    }
  }
}

void Histogram::observe(double v) {
  if (counts_.empty()) counts_.assign(bounds_.size() + 1, 0);
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += v;
}

void Histogram::merge(const Histogram& other) {
  if (bounds_ != other.bounds_) {
    throw std::invalid_argument(
        "Histogram::merge: bucket bounds differ between registries");
  }
  if (counts_.empty()) counts_.assign(bounds_.size() + 1, 0);
  for (std::size_t i = 0; i < counts_.size() && i < other.counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void Quantiles::observe(double v) {
  samples_.push_back(v);
  sum_ += v;
  if (samples_.size() > 1 && samples_[samples_.size() - 2] > v) {
    sorted_ = false;
  }
}

void Quantiles::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

const std::vector<double>& Quantiles::sorted_samples() const {
  ensure_sorted();
  return samples_;
}

double Quantiles::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const double n = static_cast<double>(samples_.size());
  auto rank = static_cast<std::size_t>(std::ceil(q * n));
  if (rank > 0) --rank;  // 1-based nearest rank -> 0-based index
  if (rank >= samples_.size()) rank = samples_.size() - 1;
  return samples_[rank];
}

void Quantiles::merge(const Quantiles& other) {
  ensure_sorted();
  other.ensure_sorted();
  std::vector<double> merged;
  merged.reserve(samples_.size() + other.samples_.size());
  std::merge(samples_.begin(), samples_.end(), other.samples_.begin(),
             other.samples_.end(), std::back_inserter(merged));
  samples_ = std::move(merged);
  sorted_ = true;
  sum_ += other.sum_;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  if (const auto it = counters_.find(name); it != counters_.end()) {
    return it->second;
  }
  return counters_.emplace(std::string(name), Counter{}).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  if (const auto it = gauges_.find(name); it != gauges_.end()) {
    return it->second;
  }
  return gauges_.emplace(std::string(name), Gauge{}).first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> upper_bounds) {
  if (const auto it = histograms_.find(name); it != histograms_.end()) {
    return it->second;
  }
  return histograms_
      .emplace(std::string(name), Histogram(std::move(upper_bounds)))
      .first->second;
}

Quantiles& MetricsRegistry::quantiles(std::string_view name) {
  if (const auto it = quantiles_.find(name); it != quantiles_.end()) {
    return it->second;
  }
  return quantiles_.emplace(std::string(name), Quantiles{}).first->second;
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

const Quantiles* MetricsRegistry::find_quantiles(std::string_view name) const {
  const auto it = quantiles_.find(name);
  return it == quantiles_.end() ? nullptr : &it->second;
}

double MetricsRegistry::counter_value(std::string_view name) const {
  const Counter* c = find_counter(name);
  return c ? c->value() : 0.0;
}

double MetricsRegistry::gauge_value(std::string_view name) const {
  const Gauge* g = find_gauge(name);
  return g ? g->value() : 0.0;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) counter(name).add(c.value());
  for (const auto& [name, g] : other.gauges_) gauge(name).set_max(g.value());
  for (const auto& [name, h] : other.histograms_) {
    histogram(name, h.upper_bounds()).merge(h);
  }
  for (const auto& [name, q] : other.quantiles_) quantiles(name).merge(q);
}

std::string format_metric_value(double v) {
  char buf[64];
  if (std::floor(v) == v && std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  }
  return buf;
}

namespace {

/// le-label for a bucket bound ("+Inf" for the overflow bucket).
std::string le_label(double bound, bool inf) {
  return inf ? std::string("+Inf") : format_metric_value(bound);
}

/// The exported percentile points of a Quantiles series (SLO convention).
constexpr struct {
  double q;
  const char* suffix;
} kQuantilePoints[] = {{0.5, "_p50"}, {0.95, "_p95"}, {0.99, "_p99"}};

}  // namespace

std::vector<MetricSample> MetricsRegistry::samples() const {
  std::vector<MetricSample> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size() * 4);
  for (const auto& [name, c] : counters_) out.push_back({name, c.value()});
  for (const auto& [name, g] : gauges_) out.push_back({name, g.value()});
  for (const auto& [name, h] : histograms_) {
    std::uint64_t cum = 0;
    const auto& bounds = h.upper_bounds();
    const auto& counts = h.bucket_counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      cum += counts[i];
      const bool inf = i == bounds.size();
      out.push_back({name + "_bucket{le=\"" +
                         le_label(inf ? 0.0 : bounds[i], inf) + "\"}",
                     static_cast<double>(cum)});
    }
    out.push_back({name + "_sum", h.sum()});
    out.push_back({name + "_count", static_cast<double>(h.count())});
  }
  for (const auto& [name, q] : quantiles_) {
    for (const auto& p : kQuantilePoints) {
      out.push_back({name + p.suffix, q.quantile(p.q)});
    }
    out.push_back({name + "_sum", q.sum()});
    out.push_back({name + "_count", static_cast<double>(q.count())});
  }
  return out;
}

std::string MetricsRegistry::prometheus() const {
  std::string out;
  for (const auto& [name, c] : counters_) {
    out += "# TYPE " + name + " counter\n";
    out += name + " " + format_metric_value(c.value()) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + format_metric_value(g.value()) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    out += "# TYPE " + name + " histogram\n";
    std::uint64_t cum = 0;
    const auto& bounds = h.upper_bounds();
    const auto& counts = h.bucket_counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      cum += counts[i];
      const bool inf = i == bounds.size();
      out += name + "_bucket{le=\"" + le_label(inf ? 0.0 : bounds[i], inf) +
             "\"} " + format_metric_value(static_cast<double>(cum)) + "\n";
    }
    out += name + "_sum " + format_metric_value(h.sum()) + "\n";
    out += name + "_count " +
           format_metric_value(static_cast<double>(h.count())) + "\n";
  }
  for (const auto& [name, q] : quantiles_) {
    for (const auto& p : kQuantilePoints) {
      out += "# TYPE " + name + p.suffix + " gauge\n";
      out += name + p.suffix + " " + format_metric_value(q.quantile(p.q)) +
             "\n";
    }
    out += "# TYPE " + name + "_sum counter\n";
    out += name + "_sum " + format_metric_value(q.sum()) + "\n";
    out += "# TYPE " + name + "_count counter\n";
    out += name + "_count " +
           format_metric_value(static_cast<double>(q.count())) + "\n";
  }
  return out;
}

}  // namespace psanim::obs

#include "obs/role_tracer.hpp"

#include "obs/trace.hpp"

namespace psanim::obs {

RoleTracer::Phase::Phase(RankRecorder* rec, const mp::VirtualClock* clk,
                         std::uint32_t label, std::uint32_t frame)
    : rec_(rec), clk_(clk) {
  if (rec_) rec_->open_span(label, frame, clk_->now());
}

void RoleTracer::Phase::close() {
  if (!rec_) return;
  rec_->close_span(clk_->now());
  rec_ = nullptr;
}

RoleTracer::RoleTracer(Trace* trace, trace::EventLog* events, int rank)
    : events_(events), rank_(rank) {
  if (trace) {
    rec_ = &trace->rank(rank);
    labels_ = &trace->labels();
  }
}

RoleTracer::Phase RoleTracer::phase(const mp::VirtualClock& clk,
                                    std::uint32_t frame,
                                    std::string_view span_name) {
  if (!rec_) return Phase(nullptr, nullptr, 0, 0);
  return Phase(rec_, &clk, labels_->intern(span_name), frame);
}

void RoleTracer::instant(const mp::VirtualClock& clk, std::uint32_t frame,
                         std::string_view label) {
  if (events_) events_->record(clk.now(), rank_, frame, label);
  if (rec_) rec_->instant(labels_->intern(label), frame, clk.now());
}

std::vector<double> phase_seconds_buckets() {
  return {0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0};
}

namespace {

void observe_snapshot(MetricsRegistry* reg, double seconds,
                      std::size_t bytes) {
  if (!reg) return;
  reg->counter("psanim_ckpt_snapshots_total").inc();
  reg->counter("psanim_ckpt_capture_seconds_total").add(seconds);
  reg->counter("psanim_ckpt_bytes_total").add(static_cast<double>(bytes));
}

void observe_restore(MetricsRegistry* reg) {
  if (!reg) return;
  reg->counter("psanim_ckpt_restores_total").inc();
}

}  // namespace

void CalcMetrics::on_frame(const trace::CalcFrameStats& fs) {
  if (!reg) return;
  reg->counter("psanim_exchange_bytes_total")
      .add(static_cast<double>(fs.exchange_bytes));
  reg->counter("psanim_crossers_out_total")
      .add(static_cast<double>(fs.crossers_out));
  reg->counter("psanim_lb_particles_sent_total")
      .add(static_cast<double>(fs.balance_sent));
  reg->gauge("psanim_particles_held").set_max(
      static_cast<double>(fs.particles_held));
  const auto buckets = phase_seconds_buckets();
  reg->histogram("psanim_phase_simulate_seconds", buckets).observe(fs.calc_s);
  reg->histogram("psanim_phase_exchange_seconds", buckets)
      .observe(fs.exchange_s);
  reg->histogram("psanim_phase_balance_seconds", buckets)
      .observe(fs.balance_s);
  reg->histogram("psanim_phase_send_frame_seconds", buckets)
      .observe(fs.send_frame_s);
}

void CalcMetrics::on_snapshot(double seconds, std::size_t bytes) {
  observe_snapshot(reg, seconds, bytes);
}

void CalcMetrics::on_restore() { observe_restore(reg); }

void CalcMetrics::on_nonfinite(std::uint64_t n) {
  if (!reg || n == 0) return;
  reg->counter("psanim_psys_nonfinite_dropped_total")
      .add(static_cast<double>(n));
}

void ManagerMetrics::on_frame(const trace::ManagerFrameStats& ms) {
  if (!reg) return;
  // Order/particle totals come from lb::observe_balance (one source of
  // truth, per evaluation); here only the manager's own frame view.
  reg->counter("psanim_lb_pairs_evaluated_total")
      .add(static_cast<double>(ms.pairs_evaluated));
  reg->histogram("psanim_frame_imbalance", {1.0, 1.1, 1.25, 1.5, 2.0, 4.0})
      .observe(ms.imbalance);
}

void ManagerMetrics::on_snapshot(double seconds, std::size_t bytes) {
  observe_snapshot(reg, seconds, bytes);
}

void ManagerMetrics::on_restore() { observe_restore(reg); }

void ImageGenMetrics::on_frame(const trace::ImageFrameStats& is) {
  if (!reg) return;
  reg->counter("psanim_particles_rendered_total")
      .add(static_cast<double>(is.particles_rendered));
  reg->counter("psanim_gather_bytes_total")
      .add(static_cast<double>(is.gather_bytes));
  reg->histogram("psanim_phase_render_seconds", phase_seconds_buckets())
      .observe(is.render_s);
}

void ImageGenMetrics::on_snapshot(double seconds, std::size_t bytes) {
  observe_snapshot(reg, seconds, bytes);
}

void ImageGenMetrics::on_restore() { observe_restore(reg); }

}  // namespace psanim::obs

#pragma once

// psanim::obs::analysis — turn a recorded Trace into answers.
//
// PR 3 gave the repo raw telemetry: per-rank span stacks in virtual time
// and paired send/recv flow records. This engine consumes that stream
// post-run (or in-process, behind ObsSettings::analysis) and computes
//
//  (a) the critical path through the cross-rank happens-before DAG
//      (span nesting + matched flows): an ordered chain of segments that
//      tiles [0, makespan] exactly, each attributed to a rank and either
//      compute (innermost covering span) or wire (a message in flight),
//      plus per-phase / per-rank cost rollups and the wire share;
//  (b) per-frame straggler and imbalance attribution: which rank's frame
//      span gated each frame, which phase it lost the most time in
//      relative to its fastest peer, and the gating rank's
//      compute / wait / wire decomposition inside the frame;
//
// all as a pure function of the per-rank record streams, so the output is
// bit-identical across ExecMode fibers/threads and worker counts — the
// same determinism contract as the simulation itself.
//
// The blocked-interval detector is conservative: a rank's clock position
// between records is invisible to the trace, so the "witness" time (latest
// record begin plus latest span close at or before the recv) is a lower
// bound on when the rank actually stalled, and wait intervals are upper
// bounds. Wire overlapped by local compute is charged to compute (the
// standard blame rule: hiding communication under computation is free).
// See DESIGN.md key decision #10.

#include <cstdint>
#include <string>
#include <vector>

namespace psanim::obs {

class MetricsRegistry;
class Trace;

enum class SegmentKind : std::uint8_t {
  kCompute = 0,  ///< the rank was (as far as the trace shows) working
  kWire = 1,     ///< the rank idled on a message in flight
};

const char* to_string(SegmentKind k);

/// One link of the critical-path chain. Consecutive segments share their
/// boundary time bit-for-bit: every endpoint is a double copied from a
/// record (or 0.0), never re-derived arithmetically, so the chain
/// telescopes from 0 to the makespan with exact doubles.
struct PathSegment {
  double begin_v = 0.0;
  double end_v = 0.0;
  int rank = -1;       ///< rank the cost is attributed to (wire: receiver)
  int from_rank = -1;  ///< wire only: sender; -1 when the send end is missing
  std::uint32_t frame = 0;
  SegmentKind kind = SegmentKind::kCompute;
  std::string label;  ///< compute: innermost span (or "(untraced)"); wire: tag
};

struct PhaseCost {
  std::string label;
  double seconds = 0.0;
};

struct RankCost {
  int rank = -1;
  double seconds = 0.0;
};

struct CriticalPath {
  /// Latest record time across ranks (fresh records only). The chain tiles
  /// [0, makespan_s]; for a traced run_parallel run this equals the image
  /// generator's last span end.
  double makespan_s = 0.0;
  int end_rank = -1;
  double compute_s = 0.0;
  double wire_s = 0.0;
  std::vector<PathSegment> segments;  ///< time-ordered, contiguous
  std::vector<PhaseCost> by_phase;    ///< compute seconds per label, sorted
  std::vector<RankCost> by_rank;      ///< on-path seconds per rank
  double wire_share() const {
    return makespan_s > 0.0 ? wire_s / makespan_s : 0.0;
  }
};

/// Straggler attribution for one frame, over the simulating ranks (those
/// that record a "simulate" span — calculators). One entry per frame makes
/// the vector itself the imbalance-ratio time series.
struct FrameAttribution {
  std::uint32_t frame = 0;
  int gating_rank = -1;       ///< slowest frame span (ties: lowest rank)
  std::string gating_phase;   ///< child phase with the largest loss vs the
                              ///< fastest rank ("" when spans have no children)
  double end_s = 0.0;         ///< gating rank's frame-span end
  double slowest_s = 0.0;     ///< gating rank's frame-span duration
  double mean_s = 0.0;        ///< mean frame-span duration across ranks
  double imbalance = 1.0;     ///< slowest / mean (1.0 when mean is 0)
  double compute_s = 0.0;     ///< gating rank, inside its frame span
  double wait_s = 0.0;        ///< blocked on a message, wire already gone
  double wire_s = 0.0;        ///< blocked on a message still on the wire
};

struct Analysis {
  CriticalPath critical_path;
  std::vector<FrameAttribution> frames;
};

/// Analyze a single-run trace. Replayed (flight-recorder) records are
/// ignored; records of a crashed rank simply truncate — a recv whose send
/// end is missing is attributed as wire from an unknown sender. Pure
/// function of the per-rank record streams (label ids resolved to strings,
/// interning order never observed).
Analysis analyze(const Trace& trace);

/// Schema-versioned report JSON ("psanim-obs-report-v1"); every double is
/// printed %.17g so byte-equality of two reports is value-equality.
std::string analysis_json(const Analysis& a);
void write_analysis_json(const Analysis& a, const std::string& path);

/// Fold the headline numbers into a metrics registry (psanim_obs_cp_* and
/// psanim_obs_frame_* series) — what run_parallel exports when
/// ObsSettings::analysis is on.
void fold_summary(const Analysis& a, MetricsRegistry& m);

}  // namespace psanim::obs

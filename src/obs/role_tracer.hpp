#pragma once

// RoleTracer: the one observability handle a role carries through its run
// loop. It fans each annotation out to both sinks — the structured span
// stream (obs::Trace) and the legacy flat EventLog — which is what makes
// EventLog a thin adapter over spans: the roles call RoleTracer, and the
// old log keeps its exact historical labels as a projection of the richer
// stream. Every method is null-safe, so a run with observability off costs
// a handful of pointer tests per frame.
//
// The metric helper structs below translate the per-frame stats each role
// already gathers into registry updates, keeping metric names and bucket
// layouts in one place.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "mp/virtual_clock.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/span.hpp"
#include "trace/event_log.hpp"
#include "trace/frame_stats.hpp"

namespace psanim::obs {

class Trace;

class RoleTracer {
 public:
  /// RAII handle for one protocol-phase span. Construction opens the span
  /// at the clock's current virtual time; close() (or destruction) closes
  /// it at the then-current time. Move-only, close() is idempotent.
  class Phase {
   public:
    Phase(RankRecorder* rec, const mp::VirtualClock* clk,
          std::uint32_t label, std::uint32_t frame);
    ~Phase() { close(); }

    Phase(const Phase&) = delete;
    Phase& operator=(const Phase&) = delete;

    void close();

   private:
    RankRecorder* rec_ = nullptr;
    const mp::VirtualClock* clk_ = nullptr;
  };

  RoleTracer() = default;
  RoleTracer(Trace* trace, trace::EventLog* events, int rank);

  bool tracing() const { return rec_ != nullptr; }

  /// Open a span named `span_name` (obs stream only; the legacy log keeps
  /// its historical instants instead).
  Phase phase(const mp::VirtualClock& clk, std::uint32_t frame,
              std::string_view span_name);

  /// Record an instant in both sinks — the obs stream and the EventLog
  /// (same label, same virtual time).
  void instant(const mp::VirtualClock& clk, std::uint32_t frame,
               std::string_view label);

 private:
  RankRecorder* rec_ = nullptr;
  LabelTable* labels_ = nullptr;
  trace::EventLog* events_ = nullptr;
  int rank_ = -1;
};

/// Calculator-side metric updates (null-safe on a disabled registry).
struct CalcMetrics {
  MetricsRegistry* reg = nullptr;

  void on_frame(const trace::CalcFrameStats& fs);
  void on_snapshot(double seconds, std::size_t bytes);
  void on_restore();
  /// `n` more particles dropped for non-finite positions (see
  /// psys::SlicedStore::nonfinite_dropped).
  void on_nonfinite(std::uint64_t n);
};

/// Manager-side metric updates.
struct ManagerMetrics {
  MetricsRegistry* reg = nullptr;

  void on_frame(const trace::ManagerFrameStats& ms);
  void on_snapshot(double seconds, std::size_t bytes);
  void on_restore();
};

/// Image-generator-side metric updates.
struct ImageGenMetrics {
  MetricsRegistry* reg = nullptr;

  void on_frame(const trace::ImageFrameStats& is);
  void on_snapshot(double seconds, std::size_t bytes);
  void on_restore();
};

/// Bucket layout shared by the per-phase virtual-duration histograms
/// (seconds; frame phases run milliseconds to seconds at paper scales).
std::vector<double> phase_seconds_buckets();

}  // namespace psanim::obs

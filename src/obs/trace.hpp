#pragma once

// psanim::obs::Trace — one per run: per-rank recorders + per-rank metrics
// registries + the shared label table, implementing mp::TraceHook so every
// substrate message becomes a pair of flow records and a handful of metric
// updates. Post-run it answers timeline queries and exports Chrome
// trace-event JSON that Perfetto loads directly (one "process" per rank,
// flow arrows from each send to its matching recv).
//
// Reuse across runs composes coherent timelines: begin_run grows the
// recorder set without clearing existing records, so a restart-into-new-run
// recovery (SimSettings::resume_from) appends its epoch to the same trace
// the first run started — which is exactly what the flight recorder needs
// to show pre-crash and replayed frames side by side.

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "mp/trace_hook.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/span.hpp"

namespace psanim::obs {

/// One row of a per-frame timeline (human-oriented; the Fig. 2 bench and
/// debugging print these).
struct TimelineEntry {
  double vtime = 0.0;  ///< spans contribute at their *end* time
  int rank = -1;
  std::uint32_t frame = 0;
  std::string text;  ///< resolved label, spans suffixed with [+dur]
};

class Trace final : public mp::TraceHook {
 public:
  Trace();
  ~Trace() override;

  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  /// Size the per-rank state before Runtime::run. Growing is allowed and
  /// never discards records (see header comment); `ring_capacity` 0 leaves
  /// the flight ring disabled.
  void begin_run(int world_size, std::size_t ring_capacity = 0);

  int world_size() const { return static_cast<int>(ranks_.size()); }

  RankRecorder& rank(int r);
  const RankRecorder& rank(int r) const;
  MetricsRegistry& metrics(int r);
  const MetricsRegistry& metrics(int r) const;

  LabelTable& labels() { return labels_; }
  const LabelTable& labels() const { return labels_; }

  /// Display name for a rank's Perfetto "process" ("manager", "calc 2"...).
  /// A registered namespace (see set_rank_namespace) is prepended.
  void set_rank_name(int r, std::string name);

  /// Prefix every subsequently registered rank name with `ns` + "/". The
  /// farm sets a per-job namespace before handing the trace to
  /// run_parallel, so traces of co-scheduled jobs stay distinguishable
  /// ("job7/manager", "job7/calc 0", ...). Must be set before the run.
  void set_rank_namespace(std::string ns);
  const std::string& rank_namespace() const { return rank_namespace_; }

  /// Human name for a message tag; flow records on both ends use it, so it
  /// must be registered before the run (both threads read it).
  void name_tag(int tag, std::string name);

  /// All per-rank registries folded into one (counters/histograms add,
  /// gauges max).
  MetricsRegistry merged_metrics() const;

  std::size_t record_count() const;

  /// Every record across ranks, sorted by (begin time, rank, id).
  std::vector<SpanRecord> sorted_records() const;

  /// Resolved timeline of one frame across all ranks, sorted by
  /// (vtime, rank). Spans appear at their end time (matching the legacy
  /// EventLog "phase done" convention) with a duration suffix.
  std::vector<TimelineEntry> frame_timeline(std::uint32_t frame) const;

  /// Chrome trace-event JSON (Perfetto-loadable). Only flow pairs where
  /// both ends were traced are emitted as s/f events, so the file never
  /// shows a dangling arrow.
  std::string chrome_json() const;
  void write_chrome_json(const std::string& path) const;

  // --- mp::TraceHook ----------------------------------------------------
  void on_send(int src, int dst, int tag, std::uint64_t seq,
               std::size_t wire_bytes, double depart_s, double arrive_s,
               std::uint32_t frame) override;
  void on_recv(int rank, int src, int tag, std::uint64_t seq,
               std::size_t wire_bytes, double arrive_s,
               std::uint32_t frame) override;

 private:
  struct RankState;

  RankState& state(int r);
  const RankState& state(int r) const;
  std::uint32_t tag_label(int tag);

  LabelTable labels_;
  std::vector<std::unique_ptr<RankState>> ranks_;
  std::map<int, std::uint32_t> tag_labels_;  // tag -> interned label id
  std::map<int, std::string> rank_names_;
  std::string rank_namespace_;
};

}  // namespace psanim::obs

#pragma once

// Thread-safe protocol event log. When a SimSettings enables it, every
// role records its phase transitions with its virtual timestamp; sorting
// by time reproduces Figure 2's per-frame protocol as an executable trace
// (bench/fig2_protocol_trace) and lets tests assert protocol ordering.
//
// Labels are interned: the protocol emits the same few dozen strings
// millions of times in the slow grids, so the hot path stores a small id
// instead of allocating a fresh std::string under the global mutex. The
// public query API still materializes full Events.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace psanim::trace {

struct Event {
  double vtime = 0.0;
  int rank = -1;
  std::uint32_t frame = 0;
  std::string label;
};

class EventLog {
 public:
  void record(double vtime, int rank, std::uint32_t frame,
              std::string_view label);

  /// All events ordered by (vtime, rank, label) — deterministic.
  std::vector<Event> sorted() const;

  /// Events of one frame, ordered.
  std::vector<Event> frame_events(std::uint32_t frame) const;

  std::size_t size() const;
  /// Distinct labels seen so far (the intern table size).
  std::size_t label_count() const;
  void clear();

 private:
  struct Rec {
    double vtime = 0.0;
    int rank = -1;
    std::uint32_t frame = 0;
    std::uint32_t label = 0;  ///< index into names_
  };

  std::uint32_t intern_locked(std::string_view label);

  mutable std::mutex mu_;
  std::vector<Rec> events_;
  // Interned labels: map node strings have stable addresses, so names_
  // can point into the map's keys.
  std::map<std::string, std::uint32_t, std::less<>> ids_;
  std::vector<const std::string*> names_;
};

}  // namespace psanim::trace

#pragma once

// Thread-safe protocol event log. When a SimSettings enables it, every
// role records its phase transitions with its virtual timestamp; sorting
// by time reproduces Figure 2's per-frame protocol as an executable trace
// (bench/fig2_protocol_trace) and lets tests assert protocol ordering.

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace psanim::trace {

struct Event {
  double vtime = 0.0;
  int rank = -1;
  std::uint32_t frame = 0;
  std::string label;
};

class EventLog {
 public:
  void record(double vtime, int rank, std::uint32_t frame,
              std::string label);

  /// All events ordered by (vtime, rank, label) — deterministic.
  std::vector<Event> sorted() const;

  /// Events of one frame, ordered.
  std::vector<Event> frame_events(std::uint32_t frame) const;

  std::size_t size() const;
  void clear();

 private:
  mutable std::mutex mu_;
  std::vector<Event> events_;
};

}  // namespace psanim::trace

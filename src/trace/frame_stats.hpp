#pragma once

// Per-frame, per-process instrumentation records.
//
// The §5 experiments report derived quantities (speedup, particles crossing
// domains per frame, KB exchanged); these structs are the raw series they
// are derived from.

#include <cstddef>
#include <cstdint>

namespace psanim::trace {

/// What one calculator did in one frame.
struct CalcFrameStats {
  std::uint32_t frame = 0;
  int rank = -1;

  std::size_t particles_held = 0;     ///< after exchange, before balancing
  std::size_t particles_created = 0;  ///< received from manager this frame
  std::size_t particles_killed = 0;
  std::size_t crossers_out = 0;   ///< left our domain this frame
  std::size_t crossers_in = 0;    ///< entered from neighbors
  std::size_t balance_sent = 0;   ///< donated by load-balancing order
  std::size_t balance_recv = 0;
  std::size_t sorted_elements = 0;  ///< particles ordered to select donations
  std::uint64_t exchange_bytes = 0;  ///< wire bytes of domain-crossing traffic

  double calc_s = 0.0;      ///< virtual time in the compute phase
  double exchange_s = 0.0;  ///< particle-exchange phase
  double balance_s = 0.0;   ///< load-balance negotiation + transfers
  double send_frame_s = 0.0;  ///< shipping particles to the image generator

  CalcFrameStats& operator+=(const CalcFrameStats& o);
};

/// What the manager observed in one frame (its balancing decisions).
struct ManagerFrameStats {
  std::uint32_t frame = 0;
  std::size_t pairs_evaluated = 0;
  std::size_t balance_orders = 0;      ///< orders actually issued
  std::size_t particles_ordered = 0;   ///< total particles commanded to move
  double max_calc_time_s = 0.0;        ///< slowest reported calculator
  double min_calc_time_s = 0.0;
  double imbalance = 1.0;              ///< max/mean of reported times
};

/// What the image generator did in one frame.
struct ImageFrameStats {
  std::uint32_t frame = 0;
  std::size_t particles_rendered = 0;
  std::uint64_t gather_bytes = 0;
  double render_s = 0.0;
  double frame_complete_time = 0.0;  ///< virtual time the frame finished
};

}  // namespace psanim::trace

#include "trace/frame_stats.hpp"

namespace psanim::trace {

CalcFrameStats& CalcFrameStats::operator+=(const CalcFrameStats& o) {
  particles_held += o.particles_held;
  particles_created += o.particles_created;
  particles_killed += o.particles_killed;
  crossers_out += o.crossers_out;
  crossers_in += o.crossers_in;
  balance_sent += o.balance_sent;
  balance_recv += o.balance_recv;
  sorted_elements += o.sorted_elements;
  exchange_bytes += o.exchange_bytes;
  calc_s += o.calc_s;
  exchange_s += o.exchange_s;
  balance_s += o.balance_s;
  send_frame_s += o.send_frame_s;
  return *this;
}

}  // namespace psanim::trace

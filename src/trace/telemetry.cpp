#include "trace/telemetry.hpp"

#include <algorithm>
#include <map>

namespace psanim::trace {

void Telemetry::merge(const Telemetry& o) {
  calc_.insert(calc_.end(), o.calc_.begin(), o.calc_.end());
  manager_.insert(manager_.end(), o.manager_.begin(), o.manager_.end());
  image_.insert(image_.end(), o.image_.begin(), o.image_.end());
}

std::size_t Telemetry::frame_count() const {
  std::size_t frames = 0;
  for (const auto& s : calc_) {
    frames = std::max(frames, static_cast<std::size_t>(s.frame) + 1);
  }
  for (const auto& s : image_) {
    frames = std::max(frames, static_cast<std::size_t>(s.frame) + 1);
  }
  return frames;
}

double Telemetry::avg_crossers_per_proc_per_frame() const {
  if (calc_.empty()) return 0.0;
  double total = 0.0;
  for (const auto& s : calc_) total += static_cast<double>(s.crossers_out);
  return total / static_cast<double>(calc_.size());
}

double Telemetry::avg_exchange_bytes_per_frame() const {
  const std::size_t frames = frame_count();
  if (frames == 0) return 0.0;
  double total = 0.0;
  for (const auto& s : calc_) total += static_cast<double>(s.exchange_bytes);
  return total / static_cast<double>(frames);
}

std::size_t Telemetry::total_balance_orders() const {
  std::size_t n = 0;
  for (const auto& s : manager_) n += s.balance_orders;
  return n;
}

std::size_t Telemetry::total_balance_particles() const {
  std::size_t n = 0;
  for (const auto& s : manager_) n += s.particles_ordered;
  return n;
}

std::vector<double> Telemetry::imbalance_series() const {
  // Group calculator compute times by frame, then max/mean per frame.
  std::map<std::uint32_t, std::vector<double>> by_frame;
  for (const auto& s : calc_) by_frame[s.frame].push_back(s.calc_s);
  std::vector<double> out;
  out.reserve(by_frame.size());
  for (const auto& [frame, times] : by_frame) {
    out.push_back(load_imbalance(times));
  }
  return out;
}

RunningStats Telemetry::held_stats() const {
  RunningStats rs;
  for (const auto& s : calc_) {
    rs.add(static_cast<double>(s.particles_held));
  }
  return rs;
}

}  // namespace psanim::trace

#pragma once

// Run-level telemetry: collects the per-frame records produced by each
// role process and answers the aggregate questions the paper's evaluation
// asks (average crossers per process per frame, KB exchanged per frame,
// balance activity, imbalance over time).

#include <cstddef>
#include <vector>

#include "math/stats.hpp"
#include "trace/frame_stats.hpp"

namespace psanim::trace {

class Telemetry {
 public:
  void add_calc(const CalcFrameStats& s) { calc_.push_back(s); }
  void add_manager(const ManagerFrameStats& s) { manager_.push_back(s); }
  void add_image(const ImageFrameStats& s) { image_.push_back(s); }

  /// Merge another telemetry (e.g. per-process collections after a run).
  void merge(const Telemetry& o);

  const std::vector<CalcFrameStats>& calc_frames() const { return calc_; }
  const std::vector<ManagerFrameStats>& manager_frames() const {
    return manager_;
  }
  const std::vector<ImageFrameStats>& image_frames() const { return image_; }

  std::size_t frame_count() const;

  /// Mean particles leaving a calculator's domain per frame, averaged over
  /// processes and frames (the paper's "~560" / "~4000" numbers in §5).
  double avg_crossers_per_proc_per_frame() const;

  /// Mean wire bytes of domain-crossing exchange per frame summed over all
  /// processes (the paper's 613 KB / 4375 KB numbers).
  double avg_exchange_bytes_per_frame() const;

  /// Total load-balancing orders over the run.
  std::size_t total_balance_orders() const;
  /// Total particles moved by load balancing over the run.
  std::size_t total_balance_particles() const;

  /// Per-frame imbalance (max/mean of calculator compute times).
  std::vector<double> imbalance_series() const;

  /// Stats over per-frame per-process held particle counts.
  RunningStats held_stats() const;

 private:
  std::vector<CalcFrameStats> calc_;
  std::vector<ManagerFrameStats> manager_;
  std::vector<ImageFrameStats> image_;
};

}  // namespace psanim::trace

#include "trace/table.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace psanim::trace {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: cell count != header count");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << "| " << std::left << std::setw(static_cast<int>(widths[c]))
         << cells[c] << " ";
    }
    os << "|\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << "|" << std::string(widths[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void Table::print(std::ostream& os) const { os << str(); }

}  // namespace psanim::trace

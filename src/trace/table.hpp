#pragma once

// Aligned console tables. The bench binaries print the paper's tables in
// this format so "paper row vs. measured row" can be eyeballed directly.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace psanim::trace {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Add a row; must have as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` decimals; strings pass
  /// through.
  static std::string num(double v, int precision = 2);

  /// Render with column alignment and a header separator.
  std::string str() const;
  void print(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace psanim::trace

#include "trace/csv.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace psanim::trace {

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void CsvWriter::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument(
        "CsvWriter::add_row: cell count != header count");
  }
  rows_.push_back(std::move(cells));
}

std::string CsvWriter::escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char ch : s) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += "\"";
  return out;
}

std::string CsvWriter::str() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) os << ",";
      os << escape(cells[i]);
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void CsvWriter::save(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("CsvWriter: cannot open " + path);
  f << str();
  if (!f) throw std::runtime_error("CsvWriter: write failed for " + path);
}

}  // namespace psanim::trace

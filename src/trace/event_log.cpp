#include "trace/event_log.hpp"

#include <algorithm>

namespace psanim::trace {

std::uint32_t EventLog::intern_locked(std::string_view label) {
  if (const auto it = ids_.find(label); it != ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(names_.size());
  const auto it = ids_.emplace(std::string(label), id).first;
  names_.push_back(&it->first);
  return id;
}

void EventLog::record(double vtime, int rank, std::uint32_t frame,
                      std::string_view label) {
  const std::scoped_lock lock(mu_);
  if (events_.empty()) events_.reserve(1024);
  events_.push_back(Rec{vtime, rank, frame, intern_locked(label)});
}

std::vector<Event> EventLog::sorted() const {
  std::vector<Event> out;
  {
    const std::scoped_lock lock(mu_);
    out.reserve(events_.size());
    for (const Rec& r : events_) {
      out.push_back(Event{r.vtime, r.rank, r.frame, *names_[r.label]});
    }
  }
  std::sort(out.begin(), out.end(), [](const Event& a, const Event& b) {
    if (a.vtime != b.vtime) return a.vtime < b.vtime;
    if (a.rank != b.rank) return a.rank < b.rank;
    return a.label < b.label;
  });
  return out;
}

std::vector<Event> EventLog::frame_events(std::uint32_t frame) const {
  std::vector<Event> out;
  for (auto& e : sorted()) {
    if (e.frame == frame) out.push_back(e);
  }
  return out;
}

std::size_t EventLog::size() const {
  const std::scoped_lock lock(mu_);
  return events_.size();
}

std::size_t EventLog::label_count() const {
  const std::scoped_lock lock(mu_);
  return names_.size();
}

void EventLog::clear() {
  const std::scoped_lock lock(mu_);
  events_.clear();
  ids_.clear();
  names_.clear();
}

}  // namespace psanim::trace

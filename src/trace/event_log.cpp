#include "trace/event_log.hpp"

#include <algorithm>

namespace psanim::trace {

void EventLog::record(double vtime, int rank, std::uint32_t frame,
                      std::string label) {
  const std::scoped_lock lock(mu_);
  events_.push_back(Event{vtime, rank, frame, std::move(label)});
}

std::vector<Event> EventLog::sorted() const {
  std::vector<Event> out;
  {
    const std::scoped_lock lock(mu_);
    out = events_;
  }
  std::sort(out.begin(), out.end(), [](const Event& a, const Event& b) {
    if (a.vtime != b.vtime) return a.vtime < b.vtime;
    if (a.rank != b.rank) return a.rank < b.rank;
    return a.label < b.label;
  });
  return out;
}

std::vector<Event> EventLog::frame_events(std::uint32_t frame) const {
  std::vector<Event> out;
  for (auto& e : sorted()) {
    if (e.frame == frame) out.push_back(e);
  }
  return out;
}

std::size_t EventLog::size() const {
  const std::scoped_lock lock(mu_);
  return events_.size();
}

void EventLog::clear() {
  const std::scoped_lock lock(mu_);
  events_.clear();
}

}  // namespace psanim::trace

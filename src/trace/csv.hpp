#pragma once

// Minimal CSV writer for exporting telemetry series (plots, offline
// analysis). Values containing commas/quotes/newlines are quoted per RFC
// 4180.

#include <string>
#include <vector>

namespace psanim::trace {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Full document text (header + rows).
  std::string str() const;

  /// Write to a file; throws std::runtime_error on I/O failure.
  void save(const std::string& path) const;

 private:
  static std::string escape(const std::string& s);

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace psanim::trace

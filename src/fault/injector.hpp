#pragma once

// Injector: executes a FaultPlan against the mp substrate. Implements
// mp::FaultHook; every per-message decision is hashed from
// (plan.seed, src, dst, tag, per-pair message counter), so the fault
// stream for a given plan is identical across runs regardless of thread
// scheduling. The per-pair counters are touched only by the sending
// rank's thread — the same safety argument as Runtime::last_arrival.

#include <atomic>
#include <cstdint>
#include <vector>

#include "fault/fault_plan.hpp"
#include "mp/fault_hook.hpp"

namespace psanim::trace {
class EventLog;
}

namespace psanim::fault {

/// Aggregate counters over one run, snapshot via Injector::stats().
struct FaultStats {
  std::uint64_t sends_inspected = 0;
  std::uint64_t drops = 0;  ///< lost transmissions (each one retransmitted)
  std::uint64_t duplicates = 0;
  std::uint64_t duplicates_discarded = 0;
  std::uint64_t delay_spikes = 0;
  std::uint64_t degraded_msgs = 0;
  /// Total extra wire seconds injected across all messages.
  double injected_delay_s = 0.0;

  /// How each calculator crash was recovered (filled in by the run
  /// driver, not the injector): restart-from-checkpoint vs. domain merge.
  std::uint64_t restart_recoveries = 0;
  std::uint64_t merge_recoveries = 0;

  std::uint64_t total_faults() const {
    return drops + duplicates + delay_spikes + degraded_msgs;
  }
};

class Injector final : public mp::FaultHook {
 public:
  /// `events` (optional, not owned) receives one record per injected
  /// fault, stamped with the sender's virtual time and current frame.
  Injector(FaultPlan plan, int world_size,
           trace::EventLog* events = nullptr);

  const FaultPlan& plan() const { return plan_; }
  FaultStats stats() const;

  mp::SendFaults on_send(int src, int dst, int tag, std::size_t wire_bytes,
                         double depart_s, double base_wire_s,
                         std::uint32_t frame) override;
  void on_duplicate_dropped(int rank, int src, double vtime,
                            std::uint32_t frame) override;
  double compute_factor(int rank, double vtime) const override;

 private:
  FaultPlan plan_;
  int world_;
  trace::EventLog* events_;
  /// Messages sent so far per ordered (src, dst) pair; row src is only
  /// touched by rank src's thread.
  std::vector<std::uint64_t> pair_sends_;

  std::atomic<std::uint64_t> sends_inspected_{0};
  std::atomic<std::uint64_t> drops_{0};
  std::atomic<std::uint64_t> duplicates_{0};
  std::atomic<std::uint64_t> duplicates_discarded_{0};
  std::atomic<std::uint64_t> delay_spikes_{0};
  std::atomic<std::uint64_t> degraded_msgs_{0};
  /// Nanoseconds, so the hot path needs no atomic<double> CAS loop.
  std::atomic<std::uint64_t> injected_delay_ns_{0};
};

}  // namespace psanim::fault

#pragma once

// FaultPlan: a seeded, declarative description of everything that goes
// wrong in a run — message drops, duplicates, delay spikes, link
// degradation, per-rank compute slowdown, and calculator crashes.
//
// The plan is shared by every role. Crash membership is a pure function
// of (plan, frame), which models a perfect failure detector: when
// calculator c crashes at frame f, every survivor deterministically knows
// it from frame f on and applies the same domain merge locally — no
// group-membership protocol rounds are simulated, only the obituary
// message that gives the manager's detection a virtual-time stamp.

#include <cstdint>
#include <optional>
#include <vector>

#include "net/network_model.hpp"

namespace psanim::fault {

/// Fail-stop death of one calculator (by calculator index, not rank) at
/// the start of frame `at_frame`. Its particles are lost; its domain
/// interval is merged into the nearest surviving neighbor.
struct CrashSpec {
  int calc = 0;
  std::uint32_t at_frame = 0;
};

/// From virtual time `after_s`, every compute charge on `rank` costs
/// `factor` times as much (thermal throttling, a noisy co-tenant, ...).
struct SlowdownSpec {
  int rank = 0;
  double after_s = 0.0;
  double factor = 1.0;
};

/// From virtual time `after_s`, wire time is recomputed against `link`
/// whenever that is slower than the healthy link (a failed switch port
/// renegotiating down, cable fault, ...).
struct DegradeSpec {
  double after_s = 0.0;
  net::LinkModel link = net::LinkModel::fast_ethernet();
};

struct FaultPlan {
  /// Root seed for every per-message fault decision. Two runs with equal
  /// plans perturb exactly the same messages by the same amounts.
  std::uint64_t seed = 1;

  /// Probability each transmission of a message is lost. Losses are
  /// modeled as retransmissions: the sender re-pays its send CPU and the
  /// message's wire time grows by `retransmit_s` per loss, so the
  /// protocol above stays intact (reliable transport over a lossy link).
  double drop_rate = 0.0;
  double retransmit_s = 2e-3;

  /// Probability a message is delivered twice; the copy trails the
  /// original by `duplicate_lag_s` and is discarded by the receive path.
  double duplicate_rate = 0.0;
  double duplicate_lag_s = 0.5e-3;

  /// Probability a message hits a delay spike of `delay_spike_s`
  /// (congested switch queue).
  double delay_rate = 0.0;
  double delay_spike_s = 0.0;

  std::optional<DegradeSpec> degrade;
  std::vector<SlowdownSpec> slowdowns;
  std::vector<CrashSpec> crashes;

  /// Any fault configured at all? (Empty plans skip injector setup.)
  bool any() const;
  /// Any per-message fault (drop/duplicate/delay/degrade)?
  bool message_faults() const;

  /// Frame at which `calc` crashes, if it ever does.
  std::optional<std::uint32_t> crash_frame(int calc) const;
  /// Is `calc` still running at the start of `frame`? (A calculator
  /// crashing at frame f is dead for all frames >= f.)
  bool calc_alive(int calc, std::uint32_t frame) const;
  /// Ascending indices of calculators alive at `frame`.
  std::vector<int> alive_calcs(std::uint32_t frame, int ncalc) const;

  /// Combined slowdown multiplier for `rank` at virtual time `vtime`.
  double compute_factor(int rank, double vtime) const;

  /// Throws std::invalid_argument on nonsense: rates outside [0, 1],
  /// negative delays, crash specs out of range or duplicated, or a crash
  /// schedule that leaves any frame with zero alive calculators.
  void validate(int ncalc, std::uint32_t frames) const;
};

/// Which surviving calculator inherits `dead`'s domain interval: the
/// nearest alive lower index, else the nearest alive higher index.
/// `alive[c]` must already exclude every calculator dead at the merge
/// frame (including others crashing the same frame). Returns -1 when no
/// survivor exists.
int merge_target(const std::vector<char>& alive, int dead);

}  // namespace psanim::fault

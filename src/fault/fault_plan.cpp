#include "fault/fault_plan.hpp"

#include <stdexcept>
#include <string>

namespace psanim::fault {

bool FaultPlan::message_faults() const {
  return drop_rate > 0.0 || duplicate_rate > 0.0 || delay_rate > 0.0 ||
         degrade.has_value();
}

bool FaultPlan::any() const {
  return message_faults() || !slowdowns.empty() || !crashes.empty();
}

std::optional<std::uint32_t> FaultPlan::crash_frame(int calc) const {
  for (const CrashSpec& c : crashes) {
    if (c.calc == calc) return c.at_frame;
  }
  return std::nullopt;
}

bool FaultPlan::calc_alive(int calc, std::uint32_t frame) const {
  const auto cf = crash_frame(calc);
  return !cf || frame < *cf;
}

std::vector<int> FaultPlan::alive_calcs(std::uint32_t frame,
                                        int ncalc) const {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(ncalc));
  for (int c = 0; c < ncalc; ++c) {
    if (calc_alive(c, frame)) out.push_back(c);
  }
  return out;
}

double FaultPlan::compute_factor(int rank, double vtime) const {
  double f = 1.0;
  for (const SlowdownSpec& s : slowdowns) {
    if (s.rank == rank && vtime >= s.after_s) f *= s.factor;
  }
  return f;
}

void FaultPlan::validate(int ncalc, std::uint32_t frames) const {
  auto bad = [](const std::string& what) {
    throw std::invalid_argument("psanim::fault::FaultPlan: " + what);
  };
  auto rate_ok = [](double r) { return r >= 0.0 && r <= 1.0; };
  if (!rate_ok(drop_rate) || !rate_ok(duplicate_rate) || !rate_ok(delay_rate))
    bad("rates must lie in [0, 1]");
  if (retransmit_s < 0.0 || duplicate_lag_s < 0.0 || delay_spike_s < 0.0)
    bad("delays must be non-negative");
  for (const SlowdownSpec& s : slowdowns) {
    if (s.factor <= 0.0) bad("slowdown factor must be positive");
    if (s.after_s < 0.0) bad("slowdown after_s must be non-negative");
  }
  for (const CrashSpec& c : crashes) {
    if (c.calc < 0 || c.calc >= ncalc)
      bad("crash calc index out of range");
    if (c.at_frame >= frames)
      bad("crash frame beyond the run");
    int seen = 0;
    for (const CrashSpec& o : crashes) seen += (o.calc == c.calc);
    if (seen > 1) bad("calculator crashes more than once");
  }
  if (!crashes.empty() && frames > 0 &&
      alive_calcs(frames - 1, ncalc).empty())
    bad("crash schedule leaves no calculator alive");
}

int merge_target(const std::vector<char>& alive, int dead) {
  for (int c = dead - 1; c >= 0; --c) {
    if (alive[static_cast<std::size_t>(c)]) return c;
  }
  for (int c = dead + 1; c < static_cast<int>(alive.size()); ++c) {
    if (alive[static_cast<std::size_t>(c)]) return c;
  }
  return -1;
}

}  // namespace psanim::fault

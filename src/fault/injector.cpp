#include "fault/injector.hpp"

#include <algorithm>
#include <string>

#include "math/rng.hpp"
#include "trace/event_log.hpp"

namespace psanim::fault {

namespace {

/// Uniform [0, 1) draw from a splitmix64 stream.
double roll(std::uint64_t& state) {
  return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

std::uint64_t pair_key(int src, int dst) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
          << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst));
}

}  // namespace

Injector::Injector(FaultPlan plan, int world_size, trace::EventLog* events)
    : plan_(plan),
      world_(world_size),
      events_(events),
      pair_sends_(static_cast<std::size_t>(world_size) *
                  static_cast<std::size_t>(world_size)) {}

FaultStats Injector::stats() const {
  FaultStats s;
  s.sends_inspected = sends_inspected_.load();
  s.drops = drops_.load();
  s.duplicates = duplicates_.load();
  s.duplicates_discarded = duplicates_discarded_.load();
  s.delay_spikes = delay_spikes_.load();
  s.degraded_msgs = degraded_msgs_.load();
  s.injected_delay_s =
      static_cast<double>(injected_delay_ns_.load()) * 1e-9;
  return s;
}

mp::SendFaults Injector::on_send(int src, int dst, int tag,
                                 std::size_t wire_bytes, double depart_s,
                                 double base_wire_s, std::uint32_t frame) {
  mp::SendFaults out;
  if (!plan_.message_faults()) return out;
  sends_inspected_.fetch_add(1, std::memory_order_relaxed);

  const std::size_t row = static_cast<std::size_t>(src) *
                              static_cast<std::size_t>(world_) +
                          static_cast<std::size_t>(dst);
  const std::uint64_t nth = pair_sends_[row]++;
  std::uint64_t state =
      mix_keys(plan_.seed, pair_key(src, dst), nth,
                     static_cast<std::uint64_t>(
                         static_cast<std::uint32_t>(tag)));

  auto note = [&](const char* what) {
    if (events_ != nullptr) {
      events_->record(depart_s, src, frame,
                      std::string("fault: ") + what + " -> rank " +
                          std::to_string(dst));
    }
  };

  if (plan_.drop_rate > 0.0) {
    // Geometric number of lost transmissions, capped so a hostile rate
    // cannot stall a message forever.
    int lost = 0;
    while (lost < 8 && roll(state) < plan_.drop_rate) ++lost;
    if (lost > 0) {
      out.retransmits = lost;
      out.extra_wire_s += static_cast<double>(lost) * plan_.retransmit_s;
      drops_.fetch_add(static_cast<std::uint64_t>(lost),
                       std::memory_order_relaxed);
      note(lost == 1 ? "dropped, retransmitting"
                     : "dropped repeatedly, retransmitting");
    }
  }
  if (plan_.duplicate_rate > 0.0 && roll(state) < plan_.duplicate_rate) {
    out.duplicate = true;
    out.duplicate_lag_s = plan_.duplicate_lag_s;
    duplicates_.fetch_add(1, std::memory_order_relaxed);
    note("duplicated");
  }
  if (plan_.delay_rate > 0.0 && roll(state) < plan_.delay_rate) {
    out.extra_wire_s += plan_.delay_spike_s;
    delay_spikes_.fetch_add(1, std::memory_order_relaxed);
    note("delay spike");
  }
  if (plan_.degrade && depart_s >= plan_.degrade->after_s) {
    const double degraded_wire = plan_.degrade->link.cost_s(wire_bytes);
    if (degraded_wire > base_wire_s) {
      out.extra_wire_s += degraded_wire - base_wire_s;
      // Counted but not logged per message — after the degradation point
      // this fires on nearly every send and would swamp the event log.
      degraded_msgs_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  if (out.extra_wire_s > 0.0) {
    injected_delay_ns_.fetch_add(
        static_cast<std::uint64_t>(out.extra_wire_s * 1e9),
        std::memory_order_relaxed);
  }
  return out;
}

void Injector::on_duplicate_dropped(int rank, int src, double vtime,
                                    std::uint32_t frame) {
  duplicates_discarded_.fetch_add(1, std::memory_order_relaxed);
  if (events_ != nullptr) {
    events_->record(vtime, rank, frame,
                    "fault: duplicate from rank " + std::to_string(src) +
                        " discarded");
  }
}

double Injector::compute_factor(int rank, double vtime) const {
  return plan_.compute_factor(rank, vtime);
}

}  // namespace psanim::fault

#include "render/framebuffer.hpp"

#include <limits>
#include <stdexcept>

namespace psanim::render {

Framebuffer::Framebuffer(int width, int height, Color clear_color)
    : width_(width), height_(height) {
  if (width <= 0 || height <= 0) {
    throw std::invalid_argument("Framebuffer: dimensions must be positive");
  }
  color_.assign(pixel_count(), clear_color);
  depth_.assign(pixel_count(), std::numeric_limits<float>::infinity());
}

void Framebuffer::clear(Color c) {
  color_.assign(pixel_count(), c);
  depth_.assign(pixel_count(), std::numeric_limits<float>::infinity());
}

void Framebuffer::put(int x, int y, Color c, float z) {
  if (!in_bounds(x, y)) return;
  const std::size_t i = index(x, y);
  if (z <= depth_[i]) {
    color_[i] = c;
    depth_[i] = z;
  }
}

void Framebuffer::blend(int x, int y, Color c, float alpha, float z) {
  if (!in_bounds(x, y)) return;
  const std::size_t i = index(x, y);
  if (z <= depth_[i]) {
    color_[i] = blend_over(c, alpha, color_[i]);
  }
}

void Framebuffer::add(int x, int y, Color c, float alpha) {
  if (!in_bounds(x, y)) return;
  const std::size_t i = index(x, y);
  color_[i] = blend_add(c, alpha, color_[i]);
}

}  // namespace psanim::render

#pragma once

// Float framebuffer with a depth channel.

#include <cstddef>
#include <vector>

#include "render/color.hpp"

namespace psanim::render {

class Framebuffer {
 public:
  Framebuffer(int width, int height, Color clear_color = {0, 0, 0});

  int width() const { return width_; }
  int height() const { return height_; }
  std::size_t pixel_count() const {
    return static_cast<std::size_t>(width_) * static_cast<std::size_t>(height_);
  }

  void clear(Color c = {0, 0, 0});

  bool in_bounds(int x, int y) const {
    return x >= 0 && x < width_ && y >= 0 && y < height_;
  }

  Color pixel(int x, int y) const { return color_[index(x, y)]; }
  float depth(int x, int y) const { return depth_[index(x, y)]; }

  /// Overwrite a pixel if `z` passes the depth test (closer = smaller z).
  void put(int x, int y, Color c, float z);

  /// Alpha-blend over the existing pixel; passes if z is not farther than
  /// the stored opaque depth (translucent splats don't write depth).
  void blend(int x, int y, Color c, float alpha, float z);

  /// Additive energy splat (no depth interaction).
  void add(int x, int y, Color c, float alpha);

  const std::vector<Color>& colors() const { return color_; }
  const std::vector<float>& depths() const { return depth_; }
  std::vector<Color>& mutable_colors() { return color_; }
  std::vector<float>& mutable_depths() { return depth_; }

 private:
  std::size_t index(int x, int y) const {
    return static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
           static_cast<std::size_t>(x);
  }

  int width_;
  int height_;
  std::vector<Color> color_;
  std::vector<float> depth_;
};

}  // namespace psanim::render

#pragma once

// External-object rendering. §3.2.4: "It is also [the image generator's]
// responsibility to render external objects that exist in the simulation"
// — ground planes, collision spheres, domain boxes. Drawn as depth-tested
// line work so particles occlude correctly.

#include "math/aabb.hpp"
#include "render/camera.hpp"
#include "render/framebuffer.hpp"

namespace psanim::render {

/// Depth-tested 3-D line segment (DDA in screen space, depth interpolated).
void draw_line(Framebuffer& fb, const Camera& cam, Vec3 a, Vec3 b, Color c);

/// Grid on the y = `height` plane covering [-extent, extent] in x and z.
void draw_ground_grid(Framebuffer& fb, const Camera& cam, float height,
                      float extent, int lines, Color c);

/// Wireframe box.
void draw_box(Framebuffer& fb, const Camera& cam, const Aabb& box, Color c);

/// Three great circles approximating a sphere.
void draw_sphere(Framebuffer& fb, const Camera& cam, Vec3 center, float radius,
                 Color c, int segments = 48);

}  // namespace psanim::render

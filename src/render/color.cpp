#include "render/color.hpp"

#include <cmath>

namespace psanim::render {

Color clamp01(Color c) {
  return {std::clamp(c.x, 0.0f, 1.0f), std::clamp(c.y, 0.0f, 1.0f),
          std::clamp(c.z, 0.0f, 1.0f)};
}

Rgb8 to_rgb8(Color linear) {
  const Color c = clamp01(linear);
  auto enc = [](float v) {
    return static_cast<std::uint8_t>(
        std::lround(std::pow(v, 1.0f / 2.2f) * 255.0f));
  };
  return {enc(c.x), enc(c.y), enc(c.z)};
}

Color blend_over(Color src, float alpha, Color dst) {
  const float a = std::clamp(alpha, 0.0f, 1.0f);
  return src * a + dst * (1.0f - a);
}

Color blend_add(Color src, float alpha, Color dst) {
  return dst + src * std::clamp(alpha, 0.0f, 1.0f);
}

float luminance(Color c) {
  return 0.2126f * c.x + 0.7152f * c.y + 0.0722f * c.z;
}

}  // namespace psanim::render

#pragma once

// Point-splat rasterizer: particles become screen-space discs with alpha
// falloff. Splat order does not affect the final image (blending is
// commutative per mode given the depth rule used), which keeps distributed
// rendering deterministic.

#include <cmath>
#include <span>

#include "psys/particle.hpp"
#include "render/camera.hpp"
#include "render/framebuffer.hpp"

namespace psanim::render {

enum class BlendMode {
  kAdditive,  ///< energy accumulation — order independent
  kOpaque,    ///< depth-tested overwrite — order independent
};

struct SplatStats {
  std::size_t splatted = 0;  ///< particles that landed in the frustum
  std::size_t culled = 0;    ///< behind camera or dead
};

/// Anything with pos/color/alpha/size renders; a dead() member (Particle)
/// is honored when present.
template <typename P>
concept Splattable = requires(const P p) {
  { p.pos } -> std::convertible_to<Vec3>;
  { p.color } -> std::convertible_to<Vec3>;
  { p.alpha } -> std::convertible_to<float>;
  { p.size } -> std::convertible_to<float>;
};

/// Rasterize points into `fb` through `cam`. `size` is a world-space
/// radius; splats smaller than a pixel deposit one coverage-scaled sample.
template <Splattable P>
SplatStats splat_points(Framebuffer& fb, const Camera& cam,
                        std::span<const P> points,
                        BlendMode mode = BlendMode::kAdditive) {
  SplatStats stats;
  for (const auto& p : points) {
    if constexpr (requires { p.dead(); }) {
      if (p.dead()) {
        ++stats.culled;
        continue;
      }
    }
    const auto proj = cam.project(p.pos);
    if (!proj) {
      ++stats.culled;
      continue;
    }
    const float radius_px = std::max(0.0f, p.size * proj->px_per_unit);
    const int cx = static_cast<int>(std::lround(proj->x));
    const int cy = static_cast<int>(std::lround(proj->y));
    if (radius_px <= 0.75f) {
      // Sub-pixel: one sample, alpha scaled by area coverage.
      const float coverage =
          std::min(1.0f, radius_px * radius_px * 4.0f + 0.05f);
      if (mode == BlendMode::kAdditive) {
        fb.add(cx, cy, p.color, p.alpha * coverage);
      } else {
        fb.put(cx, cy, p.color, proj->depth);
      }
      ++stats.splatted;
      continue;
    }
    const int r = static_cast<int>(std::ceil(radius_px));
    const float inv_r2 = 1.0f / (radius_px * radius_px);
    for (int dy = -r; dy <= r; ++dy) {
      for (int dx = -r; dx <= r; ++dx) {
        const float d2 = static_cast<float>(dx * dx + dy * dy);
        const float falloff = 1.0f - d2 * inv_r2;
        if (falloff <= 0.0f) continue;
        if (mode == BlendMode::kAdditive) {
          fb.add(cx + dx, cy + dy, p.color, p.alpha * falloff);
        } else {
          fb.put(cx + dx, cy + dy, p.color, proj->depth);
        }
      }
    }
    ++stats.splatted;
  }
  return stats;
}

/// Particle overload used by the sequential renderer and tests.
SplatStats splat_particles(Framebuffer& fb, const Camera& cam,
                           std::span<const psys::Particle> particles,
                           BlendMode mode = BlendMode::kAdditive);

}  // namespace psanim::render

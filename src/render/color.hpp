#pragma once

// Color helpers for the software renderer. Colors are linear-light RGB in
// [0,1] floats internally; conversion to 8-bit applies a gamma of 2.2 at
// image-write time.

#include <algorithm>
#include <cstdint>

#include "math/vec.hpp"

namespace psanim::render {

using Color = Vec3;  // r, g, b in linear [0, 1]

struct Rgb8 {
  std::uint8_t r = 0, g = 0, b = 0;
  bool operator==(const Rgb8&) const = default;
};

/// Clamp each channel into [0, 1].
Color clamp01(Color c);

/// Linear -> display (gamma 2.2) 8-bit conversion.
Rgb8 to_rgb8(Color linear);

/// Source-over alpha blend: src with coverage `alpha` over dst.
Color blend_over(Color src, float alpha, Color dst);

/// Energy-additive blend (glowing particles), clamped at write time.
Color blend_add(Color src, float alpha, Color dst);

/// Perceived luminance (Rec. 709 weights) of a linear color.
float luminance(Color c);

}  // namespace psanim::render

#pragma once

// Sort-last compositing — the "remote image generation" extension the
// paper lists as future work (WireGL / Pomegranate, §6). Each calculator
// rasterizes its own particles into a private framebuffer; the compositor
// merges the partial images instead of the image generator receiving every
// particle. Gather traffic becomes O(pixels) instead of O(particles).

#include <span>

#include "render/framebuffer.hpp"

namespace psanim::render {

/// Merge additive partial frames: colors sum (the additive blend is
/// commutative and associative, so the composite equals the single-pass
/// render bit-for-bit in exact arithmetic).
void composite_additive(Framebuffer& dst, std::span<const Framebuffer> parts);

/// Merge opaque depth-tested partial frames: per pixel, keep the closest
/// sample across parts.
void composite_depth(Framebuffer& dst, std::span<const Framebuffer> parts);

/// Wire size of one partial frame (color + depth channels), used by the
/// cost model for the distributed-imgen ablation.
std::size_t frame_wire_bytes(const Framebuffer& fb, bool with_depth);

}  // namespace psanim::render

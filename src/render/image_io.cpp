#include "render/image_io.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace psanim::render {

std::string to_ppm(const Framebuffer& fb) {
  std::ostringstream os;
  os << "P6\n" << fb.width() << " " << fb.height() << "\n255\n";
  for (const Color& c : fb.colors()) {
    const Rgb8 px = to_rgb8(c);
    os.put(static_cast<char>(px.r));
    os.put(static_cast<char>(px.g));
    os.put(static_cast<char>(px.b));
  }
  return os.str();
}

void write_ppm(const Framebuffer& fb, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("write_ppm: cannot open " + path);
  const std::string doc = to_ppm(fb);
  f.write(doc.data(), static_cast<std::streamsize>(doc.size()));
  if (!f) throw std::runtime_error("write_ppm: write failed for " + path);
}

std::string to_pgm(const Framebuffer& fb) {
  std::ostringstream os;
  os << "P5\n" << fb.width() << " " << fb.height() << "\n255\n";
  for (const Color& c : fb.colors()) {
    const float y = std::pow(std::min(1.0f, luminance(clamp01(c))), 1.0f / 2.2f);
    os.put(static_cast<char>(std::lround(y * 255.0f)));
  }
  return os.str();
}

void write_pgm(const Framebuffer& fb, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("write_pgm: cannot open " + path);
  const std::string doc = to_pgm(fb);
  f.write(doc.data(), static_cast<std::streamsize>(doc.size()));
  if (!f) throw std::runtime_error("write_pgm: write failed for " + path);
}

}  // namespace psanim::render

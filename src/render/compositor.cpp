#include "render/compositor.hpp"

#include <stdexcept>

namespace psanim::render {

namespace {
void require_same_dims(const Framebuffer& dst,
                       std::span<const Framebuffer> parts) {
  for (const auto& p : parts) {
    if (p.width() != dst.width() || p.height() != dst.height()) {
      throw std::invalid_argument("compositor: frame dimensions differ");
    }
  }
}
}  // namespace

void composite_additive(Framebuffer& dst, std::span<const Framebuffer> parts) {
  require_same_dims(dst, parts);
  auto& out = dst.mutable_colors();
  for (const auto& part : parts) {
    const auto& in = part.colors();
    for (std::size_t i = 0; i < out.size(); ++i) out[i] += in[i];
  }
}

void composite_depth(Framebuffer& dst, std::span<const Framebuffer> parts) {
  require_same_dims(dst, parts);
  auto& out_c = dst.mutable_colors();
  auto& out_z = dst.mutable_depths();
  for (const auto& part : parts) {
    const auto& in_c = part.colors();
    const auto& in_z = part.depths();
    for (std::size_t i = 0; i < out_c.size(); ++i) {
      if (in_z[i] < out_z[i]) {
        out_z[i] = in_z[i];
        out_c[i] = in_c[i];
      }
    }
  }
}

std::size_t frame_wire_bytes(const Framebuffer& fb, bool with_depth) {
  const std::size_t px = fb.pixel_count();
  return px * sizeof(Color) + (with_depth ? px * sizeof(float) : 0);
}

}  // namespace psanim::render

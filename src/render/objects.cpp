#include "render/objects.hpp"

#include <cmath>

namespace psanim::render {

void draw_line(Framebuffer& fb, const Camera& cam, Vec3 a, Vec3 b, Color c) {
  const auto pa = cam.project(a);
  const auto pb = cam.project(b);
  if (!pa || !pb) return;  // segment clipping at the near plane is skipped
  const float dx = pb->x - pa->x;
  const float dy = pb->y - pa->y;
  const int steps =
      std::max(1, static_cast<int>(std::ceil(std::max(std::fabs(dx), std::fabs(dy)))));
  for (int i = 0; i <= steps; ++i) {
    const float t = static_cast<float>(i) / static_cast<float>(steps);
    const float z = pa->depth + (pb->depth - pa->depth) * t;
    fb.put(static_cast<int>(std::lround(pa->x + dx * t)),
           static_cast<int>(std::lround(pa->y + dy * t)), c, z);
  }
}

void draw_ground_grid(Framebuffer& fb, const Camera& cam, float height,
                      float extent, int lines, Color c) {
  for (int i = 0; i <= lines; ++i) {
    const float t = -extent + 2.0f * extent * static_cast<float>(i) /
                                  static_cast<float>(lines);
    draw_line(fb, cam, {t, height, -extent}, {t, height, extent}, c);
    draw_line(fb, cam, {-extent, height, t}, {extent, height, t}, c);
  }
}

void draw_box(Framebuffer& fb, const Camera& cam, const Aabb& box, Color c) {
  const Vec3 lo = box.lo;
  const Vec3 hi = box.hi;
  const Vec3 corners[8] = {
      {lo.x, lo.y, lo.z}, {hi.x, lo.y, lo.z}, {hi.x, hi.y, lo.z},
      {lo.x, hi.y, lo.z}, {lo.x, lo.y, hi.z}, {hi.x, lo.y, hi.z},
      {hi.x, hi.y, hi.z}, {lo.x, hi.y, hi.z}};
  constexpr int edges[12][2] = {{0, 1}, {1, 2}, {2, 3}, {3, 0},
                                {4, 5}, {5, 6}, {6, 7}, {7, 4},
                                {0, 4}, {1, 5}, {2, 6}, {3, 7}};
  for (const auto& e : edges) {
    draw_line(fb, cam, corners[e[0]], corners[e[1]], c);
  }
}

void draw_sphere(Framebuffer& fb, const Camera& cam, Vec3 center, float radius,
                 Color c, int segments) {
  auto circle = [&](Vec3 u, Vec3 v) {
    Vec3 prev = center + u * radius;
    for (int i = 1; i <= segments; ++i) {
      const float a = 2.0f * 3.14159265f * static_cast<float>(i) /
                      static_cast<float>(segments);
      const Vec3 p = center + (u * std::cos(a) + v * std::sin(a)) * radius;
      draw_line(fb, cam, prev, p, c);
      prev = p;
    }
  };
  circle({1, 0, 0}, {0, 1, 0});
  circle({1, 0, 0}, {0, 0, 1});
  circle({0, 1, 0}, {0, 0, 1});
}

}  // namespace psanim::render

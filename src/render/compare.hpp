#pragma once

// Frame comparison utilities: used by tests to prove the parallel pipeline
// produces the same image as the sequential one, and by the distributed
// image-generation ablation.

#include <cstdint>

#include "render/framebuffer.hpp"

namespace psanim::render {

struct ImageDiff {
  double max_abs = 0.0;   ///< max per-channel absolute difference
  double mean_abs = 0.0;  ///< mean per-channel absolute difference
  double psnr_db = 0.0;   ///< peak signal-to-noise ratio (inf -> 999)
  bool same_dims = true;
};

ImageDiff compare(const Framebuffer& a, const Framebuffer& b);

/// Convenience: true when images match within `tol` per channel.
bool images_match(const Framebuffer& a, const Framebuffer& b,
                  double tol = 1e-5);

/// FNV-1a over the raw color and depth planes: the bit-exactness
/// fingerprint the determinism corpus, the farm and the wall-clock bench
/// compare. Equal hashes == byte-identical images.
std::uint64_t hash_framebuffer(const Framebuffer& fb);

}  // namespace psanim::render

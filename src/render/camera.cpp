#include "render/camera.hpp"

#include <cmath>
#include <stdexcept>

namespace psanim::render {

Camera::Camera(Vec3 eye, Vec3 target, Vec3 up, float vfov_deg, int width,
               int height)
    : eye_(eye), width_(width), height_(height) {
  if (width <= 0 || height <= 0) {
    throw std::invalid_argument("Camera: image dimensions must be positive");
  }
  forward_ = (target - eye).normalized();
  right_ = forward_.cross(up).normalized();
  up_ = right_.cross(forward_);
  const float vfov = vfov_deg * 3.14159265358979323846f / 180.0f;
  focal_px_ = (static_cast<float>(height) * 0.5f) / std::tan(vfov * 0.5f);
}

std::optional<Projected> Camera::project(Vec3 world) const {
  const Vec3 rel = world - eye_;
  const float depth = rel.dot(forward_);
  if (depth < kNear) return std::nullopt;
  const float cx = rel.dot(right_);
  const float cy = rel.dot(up_);
  Projected out;
  out.x = static_cast<float>(width_) * 0.5f + focal_px_ * cx / depth;
  out.y = static_cast<float>(height_) * 0.5f - focal_px_ * cy / depth;
  out.depth = depth;
  out.px_per_unit = focal_px_ / depth;
  return out;
}

Camera Camera::framing(Vec3 center, float scene_radius, int width,
                       int height) {
  // Pull back far enough that the scene radius fits the vertical FOV.
  const float vfov_deg = 50.0f;
  const float vfov = vfov_deg * 3.14159265358979323846f / 180.0f;
  const float dist = scene_radius / std::tan(vfov * 0.45f);
  const Vec3 eye = center + Vec3{0, scene_radius * 0.35f, dist};
  return Camera(eye, center, {0, 1, 0}, vfov_deg, width, height);
}

}  // namespace psanim::render

#include "render/splat.hpp"

namespace psanim::render {

SplatStats splat_particles(Framebuffer& fb, const Camera& cam,
                           std::span<const psys::Particle> particles,
                           BlendMode mode) {
  return splat_points(fb, cam, particles, mode);
}

}  // namespace psanim::render

#pragma once

// Pinhole camera: world -> pixel projection for the point-splat renderer.

#include <optional>

#include "math/vec.hpp"

namespace psanim::render {

/// A point projected into the image.
struct Projected {
  float x = 0.0f;       ///< pixel x (fractional)
  float y = 0.0f;       ///< pixel y (fractional)
  float depth = 0.0f;   ///< camera-space distance along the view axis
  float px_per_unit = 0.0f;  ///< pixels covered by one world unit at depth
};

class Camera {
 public:
  /// Look-at constructor. `vfov_deg` is the vertical field of view.
  Camera(Vec3 eye, Vec3 target, Vec3 up, float vfov_deg, int width,
         int height);

  Vec3 eye() const { return eye_; }
  int width() const { return width_; }
  int height() const { return height_; }

  /// Project a world point. nullopt when behind the near plane.
  std::optional<Projected> project(Vec3 world) const;

  /// Default framing for a scene bounding range: eye pulled back on +z,
  /// centered on the box.
  static Camera framing(Vec3 center, float scene_radius, int width,
                        int height);

 private:
  Vec3 eye_;
  Vec3 right_, up_, forward_;  // orthonormal camera basis
  float focal_px_;             // focal length in pixels
  int width_, height_;
  static constexpr float kNear = 0.05f;
};

}  // namespace psanim::render

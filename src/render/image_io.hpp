#pragma once

// Image output: binary PPM (P6) and grayscale PGM (P5). No external image
// libraries — frames are inspectable with any viewer.

#include <string>

#include "render/framebuffer.hpp"

namespace psanim::render {

/// Encode the framebuffer as a binary PPM document.
std::string to_ppm(const Framebuffer& fb);

/// Write PPM to `path`; throws std::runtime_error on I/O failure.
void write_ppm(const Framebuffer& fb, const std::string& path);

/// Encode the luminance channel as binary PGM.
std::string to_pgm(const Framebuffer& fb);
void write_pgm(const Framebuffer& fb, const std::string& path);

}  // namespace psanim::render

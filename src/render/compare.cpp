#include "render/compare.hpp"

#include <cmath>

namespace psanim::render {

ImageDiff compare(const Framebuffer& a, const Framebuffer& b) {
  ImageDiff d;
  if (a.width() != b.width() || a.height() != b.height()) {
    d.same_dims = false;
    d.max_abs = 1.0;
    return d;
  }
  double sum_abs = 0.0;
  double sum_sq = 0.0;
  const auto& ca = a.colors();
  const auto& cb = b.colors();
  for (std::size_t i = 0; i < ca.size(); ++i) {
    const float dc[3] = {ca[i].x - cb[i].x, ca[i].y - cb[i].y,
                         ca[i].z - cb[i].z};
    for (const float v : dc) {
      const double av = std::fabs(static_cast<double>(v));
      d.max_abs = std::max(d.max_abs, av);
      sum_abs += av;
      sum_sq += av * av;
    }
  }
  const double n = static_cast<double>(ca.size()) * 3.0;
  d.mean_abs = n > 0 ? sum_abs / n : 0.0;
  const double mse = n > 0 ? sum_sq / n : 0.0;
  d.psnr_db = mse > 0 ? 10.0 * std::log10(1.0 / mse) : 999.0;
  return d;
}

bool images_match(const Framebuffer& a, const Framebuffer& b, double tol) {
  const ImageDiff d = compare(a, b);
  return d.same_dims && d.max_abs <= tol;
}

namespace {
std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}
}  // namespace

std::uint64_t hash_framebuffer(const Framebuffer& fb) {
  std::uint64_t h = 1469598103934665603ull;
  h = fnv1a(h, fb.colors().data(), fb.colors().size() * sizeof(Color));
  h = fnv1a(h, fb.depths().data(), fb.depths().size() * sizeof(float));
  return h;
}

}  // namespace psanim::render

#pragma once

// Top-level drivers: run the full parallel animation on an emulated
// cluster, or the sequential baseline the paper's speedups divide by.

#include <optional>
#include <vector>

#include "cluster/cost_model.hpp"
#include "core/decomposition.hpp"
#include "core/frame_loop.hpp"
#include "fault/injector.hpp"
#include "mp/runtime.hpp"
#include "obs/metrics.hpp"
#include "render/framebuffer.hpp"
#include "trace/telemetry.hpp"

namespace psanim::core {

struct ParallelResult {
  /// Virtual time until the image generator finished the last frame — the
  /// paper's "time taken to obtain the images".
  double animation_s = 0.0;
  std::vector<mp::ProcessResult> procs;  ///< per-rank clocks and traffic
  trace::Telemetry telemetry;            ///< merged role telemetry
  render::Framebuffer final_frame{1, 1};
  std::vector<Decomposition> final_decomps;  ///< manager's view, per system
  /// Union of all calculators' particles after the last frame, per system
  /// (tests use this for conservation properties).
  std::vector<std::vector<psys::Particle>> final_particles;
  /// What the fault injector actually did (zeros when no plan was set).
  fault::FaultStats fault_stats;
  /// All ranks' metric registries merged (empty unless obs tracing was on).
  obs::MetricsRegistry metrics;
};

/// Run `settings.frames` frames of `scene` on the emulated cluster.
/// `placement` must map world_size_for(settings.ncalc) ranks (manager,
/// image generator, calculators) onto `spec`'s nodes.
ParallelResult run_parallel(const Scene& scene, const SimSettings& settings,
                            const cluster::ClusterSpec& spec,
                            const cluster::Placement& placement,
                            const cluster::CostModel& cost = {},
                            mp::RuntimeOptions rt_options = {});

struct SequentialResult {
  double total_s = 0.0;
  double per_frame_s = 0.0;
  std::size_t final_particles = 0;
  render::Framebuffer final_frame{1, 1};
  /// Final population per system (conservation tests compare against the
  /// parallel union).
  std::vector<std::vector<psys::Particle>> populations;
};

/// Sequential baseline: one process creates, simulates and renders
/// everything at compute rate `rate` (a node's effective rate under the
/// experiment's compiler). Uses the same deterministic streams as the
/// parallel run, so with one calculator the particle evolution matches
/// exactly.
SequentialResult run_sequential(const Scene& scene,
                                const SimSettings& settings, double rate,
                                const cluster::CostModel& cost = {});

}  // namespace psanim::core

#include "core/manager.hpp"

#include <algorithm>
#include <span>
#include <string>

#include "ckpt/snapshot.hpp"
#include "ckpt/state_codec.hpp"
#include "ckpt/vault.hpp"
#include "lb/metrics.hpp"
#include "math/stats.hpp"
#include "obs/trace.hpp"

namespace psanim::core {

Manager::Manager(const SimSettings& settings, const Scene& scene, RoleEnv env,
                 std::vector<double> calc_powers)
    : set_(settings),
      scene_(scene),
      env_(env),
      calc_powers_(std::move(calc_powers)),
      base_rng_(settings.seed),
      alive_(static_cast<std::size_t>(settings.ncalc), 1),
      crash_done_(static_cast<std::size_t>(settings.ncalc), 0),
      tr_(settings.obs.trace, settings.events, kManagerRank),
      metrics_{env.metrics} {
  alive_list_.reserve(static_cast<std::size_t>(settings.ncalc));
  for (int c = 0; c < settings.ncalc; ++c) alive_list_.push_back(c);
  const auto [lo, hi] = initial_interval(set_, scene_);
  decomps_.reserve(scene_.systems.size());
  policies_.reserve(scene_.systems.size());
  for (std::size_t s = 0; s < scene_.systems.size(); ++s) {
    decomps_.emplace_back(set_.axis, lo, hi, set_.ncalc);
    policies_.push_back(make_lb_policy(set_));
  }
}

void Manager::run(mp::Endpoint& ep) {
  // Both sinks at once: the span stream and the legacy EventLog labels
  // (verbatim — tests pin the historical label sequence).
  auto note = [&](std::uint32_t frame, const char* label) {
    tr_.instant(ep.clock(), frame, label);
  };
  std::uint32_t frame = 0;
  if (set_.resume_from) {
    const std::uint32_t f0 = *set_.resume_from;
    // Recoveries completed before the snapshot are baked into it.
    for (const auto& c : set_.fault_plan.crashes) {
      if (c.at_frame <= f0) {
        crash_done_[static_cast<std::size_t>(c.calc)] = 1;
      }
    }
    restore(ep, f0);
    frame = f0 + 1;
  }
  // Suspend bound: validate() guarantees stop_after is a snapshot frame,
  // so the last iteration seals the manifest to resume from. All other
  // gates stay on set_.frames — the executed prefix is bit-identical to
  // the same frames of an uninterrupted run.
  const std::uint32_t end =
      set_.stop_after ? *set_.stop_after + 1 : set_.frames;
  while (frame < end) {
    ep.set_trace_frame(frame);
    ep.charge(env_.cost->frame_overhead_s / env_.rate);
    if (handle_crashes(ep, frame)) continue;  // rolled back; frame rewound
    auto frame_span = tr_.phase(ep.clock(), frame, "frame");
    note(frame, "manager: particle creation");
    {
      auto ph = tr_.phase(ep.clock(), frame, "create");
      create_and_scatter(ep, frame);
    }
    note(frame, "manager: creation scattered");
    {
      auto ph = tr_.phase(ep.clock(), frame, "balance");
      balance(ep, frame);
    }
    note(frame, "manager: new dimensions broadcast");
    if (set_.ckpt.due_after(frame) && frame + 1 < set_.frames) {
      {
        auto ph = tr_.phase(ep.clock(), frame, "snapshot");
        checkpoint_phase(ep, frame);
      }
      note(frame, "checkpoint: manifest sealed");
    }
    frame_span.close();
    ++frame;
  }
}

bool Manager::handle_crashes(mp::Endpoint& ep, std::uint32_t& frame) {
  const auto& plan = set_.fault_plan;
  if (plan.crashes.empty()) return false;
  // Deaths take effect at frame start, in ascending index order, so every
  // role derives the identical recovery sequence.
  std::vector<int> pending;
  for (const auto& c : plan.crashes) {
    if (c.at_frame == frame && !crash_done_[static_cast<std::size_t>(c.calc)]) {
      pending.push_back(c.calc);
    }
  }
  if (pending.empty()) return false;
  std::sort(pending.begin(), pending.end());
  for (const int c : pending) crash_done_[static_cast<std::size_t>(c)] = 1;

  if (set_.ckpt.restarts(frame)) {
    const std::uint32_t f0 = *set_.ckpt.latest_snapshot_before(frame);
    for (const int c : pending) {
      // The dying calculator's last act is an obituary; receiving it
      // stamps the manager's detection after the death in virtual time.
      const mp::Message ob = recv_p(ep, calc_rank(c), kTagCrash);
      mp::Reader r(ob);
      check_control_header(r, "manager liveness check");
      check_frame(r.get<std::uint32_t>(), frame, "manager liveness check");
      tr_.instant(ep.clock(), frame,
                  "recovery: restarting calculator " + std::to_string(c) +
                      " from checkpoint frame " + std::to_string(f0));
    }
    restore(ep, f0);
    frame = f0 + 1;
    return true;
  }

  merge_crashed(ep, frame, pending);
  return false;
}

void Manager::merge_crashed(mp::Endpoint& ep, std::uint32_t frame,
                            const std::vector<int>& dead) {
  // All deaths of this frame are removed from the membership first (a
  // calculator dying now cannot inherit another's domain), then processed
  // in ascending index order.
  for (const int c : dead) alive_[static_cast<std::size_t>(c)] = 0;
  for (const int c : dead) {
    // The dying calculator's last act is an obituary; receiving it stamps
    // the manager's detection after the death in virtual time (the
    // perfect-failure-detector idealization — no timeout rounds modeled).
    const mp::Message ob = recv_p(ep, calc_rank(c), kTagCrash);
    mp::Reader r(ob);
    check_control_header(r, "manager liveness check");
    check_frame(r.get<std::uint32_t>(), frame, "manager liveness check");
    tr_.instant(ep.clock(), frame,
                "recovery: calculator " + std::to_string(c) + " lost");
    const int into = fault::merge_target(alive_, c);
    if (into < 0) {
      throw ProtocolError("manager: no surviving calculator to inherit");
    }
    for (auto& d : decomps_) d.merge_domain(c, into);
    tr_.instant(ep.clock(), frame,
                "recovery: domain of calculator " + std::to_string(c) +
                    " merged into " + std::to_string(into));
  }
  alive_list_.clear();
  for (int c = 0; c < set_.ncalc; ++c) {
    if (alive_[static_cast<std::size_t>(c)]) alive_list_.push_back(c);
  }
}

void Manager::checkpoint_phase(mp::Endpoint& ep, std::uint32_t frame) {
  const double capture_start = ep.clock().now();
  ckpt::SnapshotWriter snap(ckpt::Role::kManager, ep.rank(), frame,
                            set_.seed);
  {
    auto& w = snap.begin_section(ckpt::SectionId::kDecomps);
    w.put<std::uint64_t>(decomps_.size());
    for (const auto& d : decomps_) d.encode(w);
  }
  {
    auto& w = snap.begin_section(ckpt::SectionId::kLbState);
    w.put<std::uint64_t>(policies_.size());
    for (const auto& p : policies_) p->save_state(w);
  }
  {
    auto& w = snap.begin_section(ckpt::SectionId::kTelemetry);
    ckpt::encode_telemetry(w, tel_);
  }
  {
    // Forensics only — virtual clocks are never rolled back on restore.
    auto& w = snap.begin_section(ckpt::SectionId::kClock);
    w.put(ep.clock().now());
  }
  if (set_.obs.flight_recorder && set_.obs.trace) {
    auto& w = snap.begin_section(ckpt::SectionId::kFlightRecorder);
    ckpt::encode_flight_ring(w, set_.obs.trace->rank(ep.rank()),
                             set_.obs.trace->labels());
  }
  std::vector<std::byte> image = snap.finish();
  ep.charge_io(env_.disk.write_s(image.size()));
  metrics_.on_snapshot(ep.clock().now() - capture_start, image.size());
  ckpt::Manifest man;
  man.frame = frame;
  man.entries.push_back(ckpt::ManifestEntry{
      .rank = ep.rank(),
      .bytes = static_cast<std::uint64_t>(image.size()),
      .crc = ckpt::crc32(
          std::span<const std::byte>(image.data(), image.size())),
  });
  set_.ckpt_vault->store(ep.rank(), frame, std::move(image));

  // Collect every participant's digest — the image generator, then the
  // calculators that executed this frame, ascending — and seal the
  // manifest. A sealed frame is the coordinator's promise that every rank
  // can restore from it.
  const auto collect = [&](int rank) {
    const mp::Message m = recv_p(ep, rank, kTagCkptDigest);
    mp::Reader r(m);
    check_control_header(r, "manager checkpoint digest");
    check_frame(r.get<std::uint32_t>(), frame, "manager checkpoint digest");
    const auto from = r.get<std::int32_t>();
    if (from != rank) {
      throw ProtocolError("manager: checkpoint digest claims rank " +
                          std::to_string(from) + ", arrived from " +
                          std::to_string(rank));
    }
    const auto bytes = r.get<std::uint64_t>();
    const auto crc = r.get<std::uint32_t>();
    man.entries.push_back(ckpt::ManifestEntry{rank, bytes, crc});
  };
  collect(kImageGenRank);
  for (const int c : alive_list_) collect(calc_rank(c));
  set_.ckpt_vault->seal(std::move(man));
  if (metrics_.reg) {
    metrics_.reg->counter("psanim_ckpt_manifests_sealed_total").inc();
  }
}

void Manager::restore(mp::Endpoint& ep, std::uint32_t f0) {
  if (!set_.ckpt_vault) {
    throw ProtocolError("manager: restart recovery needs a vault");
  }
  const std::vector<std::byte>* image = set_.ckpt_vault->fetch(ep.rank(), f0);
  if (!image) {
    throw ProtocolError("manager: no checkpoint image for frame " +
                        std::to_string(f0));
  }
  ep.charge_io(env_.disk.read_s(image->size()));
  ckpt::SnapshotReader snap(*image);
  if (snap.header().role != ckpt::Role::kManager ||
      snap.header().rank != ep.rank() || snap.header().frame != f0) {
    throw ProtocolError("manager: checkpoint header does not match");
  }
  {
    auto r = snap.section(ckpt::SectionId::kDecomps);
    const auto n = r.get<std::uint64_t>();
    if (n != decomps_.size()) {
      throw ProtocolError("manager: snapshot decomposition count skew");
    }
    for (auto& d : decomps_) d = Decomposition::decode(r);
  }
  {
    auto r = snap.section(ckpt::SectionId::kLbState);
    const auto n = r.get<std::uint64_t>();
    if (n != policies_.size()) {
      throw ProtocolError("manager: snapshot balancer count skew");
    }
    for (auto& p : policies_) p->load_state(r);
  }
  {
    auto r = snap.section(ckpt::SectionId::kTelemetry);
    tel_ = ckpt::decode_telemetry(r);
  }
  if (set_.obs.trace && snap.has(ckpt::SectionId::kFlightRecorder)) {
    auto r = snap.section(ckpt::SectionId::kFlightRecorder);
    const auto recovered =
        ckpt::decode_flight_ring(r, set_.obs.trace->labels());
    set_.obs.trace->rank(ep.rank()).emit_recovered(recovered);
  }
  refresh_membership(f0 + 1);
  metrics_.on_restore();
  tr_.instant(ep.clock(), f0, "recovery: restored checkpoint");
}

void Manager::refresh_membership(std::uint32_t frame) {
  for (int c = 0; c < set_.ncalc; ++c) {
    alive_[static_cast<std::size_t>(c)] =
        ckpt::calc_dead_at(set_.fault_plan, set_.ckpt, c, frame) ? 0 : 1;
  }
  alive_list_.clear();
  for (int c = 0; c < set_.ncalc; ++c) {
    if (alive_[static_cast<std::size_t>(c)]) alive_list_.push_back(c);
  }
}

void Manager::create_and_scatter(mp::Endpoint& ep, std::uint32_t frame) {
  // One outbox per calculator; each system contributes at most one batch.
  std::vector<std::vector<SystemBatch>> outboxes(
      static_cast<std::size_t>(set_.ncalc));

  for (std::size_t s = 0; s < scene_.systems.size(); ++s) {
    const auto& system = scene_.systems[s];
    // The creation stream depends only on (seed, system, frame): creation
    // is identical no matter how many calculators run (§3.1.3's "creation
    // happens in the same order for all processes").
    Rng rng = base_rng_.derive(0xC0FFEEu, s, frame);
    psys::ActionContext ctx{set_.dt, &rng, 0};
    std::vector<psys::Particle> born;
    for (const psys::Source* src : system.actions().sources()) {
      src->generate(born, ctx);
    }
    ep.charge(
        env_.cost->compute_s(env_.cost->create_cost, born.size(), env_.rate));

    // Partition by owner (§3.2.1: "stored in the structure corresponding
    // to its domain" and sent there). A merged-away (crashed) domain has
    // zero width, so owner_of never routes a particle to a dead rank.
    const Decomposition& d = decomps_[s];
    std::vector<std::vector<psys::Particle>> per_calc(
        static_cast<std::size_t>(set_.ncalc));
    for (const auto& p : born) {
      per_calc[static_cast<std::size_t>(d.owner_of(p.pos.axis(d.axis())))]
          .push_back(p);
    }
    for (int c = 0; c < set_.ncalc; ++c) {
      auto& mine = per_calc[static_cast<std::size_t>(c)];
      if (mine.empty()) continue;
      outboxes[static_cast<std::size_t>(c)].push_back(
          SystemBatch{static_cast<psys::SystemId>(s), std::move(mine)});
    }
  }

  // Every live calculator gets exactly one creation message per frame; an
  // empty batch list is the end-of-transmission marker (§3.2.1).
  for (const int c : alive_list_) {
    ep.send(calc_rank(c), kTagCreate,
            encode_batches(frame, outboxes[static_cast<std::size_t>(c)]));
  }
}

void Manager::balance(mp::Endpoint& ep, std::uint32_t frame) {
  const int n = set_.ncalc;
  // Collect per-system reports from every live calculator (ascending
  // order); dead slots stay empty and are skipped below.
  std::vector<std::vector<LoadEntry>> reports(static_cast<std::size_t>(n));
  for (const int c : alive_list_) {
    reports[static_cast<std::size_t>(c)] =
        decode_load_report(recv_p(ep, calc_rank(c), kTagLoadReport), frame);
  }

  tr_.instant(ep.clock(), frame, "manager: load information received");
  trace::ManagerFrameStats mstats;
  mstats.frame = frame;

  // Per-calculator outgoing orders, accumulated over systems.
  std::vector<std::vector<OrderEntry>> orders_out(
      static_cast<std::size_t>(n));
  std::vector<double> frame_times(static_cast<std::size_t>(n), 0.0);

  const int nalive = static_cast<int>(alive_list_.size());
  for (std::size_t s = 0; s < scene_.systems.size(); ++s) {
    std::vector<lb::CalcLoad> loads;
    loads.reserve(alive_list_.size());
    for (const int c : alive_list_) {
      const LoadEntry& e = reports[static_cast<std::size_t>(c)].at(s);
      loads.push_back(lb::CalcLoad{
          .calc = c,
          .particles = e.particles,
          .time_s = e.time_s,
          .power = calc_powers_.at(static_cast<std::size_t>(c)),
      });
      frame_times[static_cast<std::size_t>(c)] += e.time_s;
    }
    // Evaluation cost: a handful of comparisons per pair.
    ep.charge(env_.cost->compute_s(env_.cost->action_cost,
                                   static_cast<std::size_t>(nalive),
                                   env_.rate));
    mstats.pairs_evaluated +=
        static_cast<std::size_t>(std::max(0, nalive - 1));

    const auto orders = policies_[s]->evaluate(loads);
    lb::observe_balance(env_.metrics, loads, orders);
    for (const auto& o : orders) {
      orders_out[static_cast<std::size_t>(o.calc)].push_back(OrderEntry{
          .system = static_cast<std::uint32_t>(s),
          .is_send = static_cast<std::uint8_t>(o.op == lb::BalanceOp::kSend),
          .partner = o.partner,
          .count = o.count,
      });
      if (o.op == lb::BalanceOp::kSend) {
        ++mstats.balance_orders;
        mstats.particles_ordered += o.count;
      }
    }
  }

  // Imbalance is over the survivors only — a dead slot's zero would
  // otherwise read as a perfectly idle calculator.
  std::vector<double> alive_times;
  alive_times.reserve(alive_list_.size());
  for (const int c : alive_list_) {
    alive_times.push_back(frame_times[static_cast<std::size_t>(c)]);
  }
  if (!alive_times.empty()) {
    mstats.max_calc_time_s =
        *std::max_element(alive_times.begin(), alive_times.end());
    mstats.min_calc_time_s =
        *std::min_element(alive_times.begin(), alive_times.end());
    mstats.imbalance = load_imbalance(alive_times);
  }

  tr_.instant(ep.clock(), frame, "manager: load balancing evaluated");
  // Send orders (possibly empty) to every live calculator — the
  // synchronization point §3.2 requires even when nothing moves.
  for (const int c : alive_list_) {
    ep.send(calc_rank(c), kTagOrders,
            encode_orders(frame, orders_out[static_cast<std::size_t>(c)]));
  }

  // Collect edge proposals from every live calculator (donors fill them
  // in), update the authoritative decompositions, broadcast the new
  // dimensions.
  std::vector<EdgeEntry> changed;
  for (const int c : alive_list_) {
    for (const auto& e :
         decode_edges(recv_p(ep, calc_rank(c), kTagEdgeProposal), frame)) {
      decomps_.at(e.system).set_edge(e.edge_index, e.value);
      changed.push_back(e);
    }
  }
  for (const int c : alive_list_) {
    ep.send(calc_rank(c), kTagDomains, encode_edges(frame, changed));
  }

  tel_.add_manager(mstats);
  metrics_.on_frame(mstats);
}

}  // namespace psanim::core

#pragma once

// Wire protocol: rank layout, message tags and payload codecs for the
// Fig. 2 frame loop.
//
// Rank layout is fixed: rank 0 manager, rank 1 image generator, ranks
// 2..2+n-1 the n calculators. Every payload starts with the frame number;
// receivers verify it, so a protocol ordering bug fails loudly instead of
// silently mixing frames.

#include <cstdint>
#include <vector>

#include "mp/message.hpp"
#include "psys/particle.hpp"
#include "psys/system.hpp"

namespace psanim::core {

inline constexpr int kManagerRank = 0;
inline constexpr int kImageGenRank = 1;
inline constexpr int kFirstCalcRank = 2;

/// Rank of calculator index i (0-based).
constexpr int calc_rank(int index) { return kFirstCalcRank + index; }
/// Calculator index of a rank (undefined for manager/imgen ranks).
constexpr int calc_index(int rank) { return rank - kFirstCalcRank; }
/// World size for n calculators.
constexpr int world_size_for(int ncalc) { return ncalc + kFirstCalcRank; }

/// Message tags (one per protocol phase).
enum Tag : int {
  kTagCreate = 100,        ///< manager -> calculator: new particles
  kTagExchange = 101,      ///< calculator -> calculator: domain crossers
  kTagLoadReport = 102,    ///< calculator -> manager
  kTagOrders = 103,        ///< manager -> calculator: balance orders
  kTagEdgeProposal = 104,  ///< donating calculator -> manager: new edges
  kTagDomains = 105,       ///< manager -> calculator: updated edges
  kTagBalance = 106,       ///< calculator -> calculator: donated particles
  kTagFrame = 107,         ///< calculator -> image generator: render data
  kTagFramePart = 108,     ///< calculator -> image generator: partial image
  kTagGhost = 109,         ///< calculator -> calculator: collision ghosts
  kTagFrameAck = 110,      ///< image generator -> calculator: frame consumed
  kTagCrash = 111,         ///< dying calculator -> manager: obituary
  kTagCkptDigest = 112,    ///< rank -> manager: checkpoint image digest
};

/// Particles of one system, in one message.
struct SystemBatch {
  psys::SystemId system = 0;
  std::vector<psys::Particle> particles;
};

/// One calculator's per-system load report entry (§3.2.4).
struct LoadEntry {
  std::uint32_t system = 0;
  std::uint64_t particles = 0;
  double time_s = 0.0;  ///< pro-rata processing time for this count
};

/// One balance order addressed to the receiving calculator.
struct OrderEntry {
  std::uint32_t system = 0;
  std::uint8_t is_send = 0;  ///< 1 = donate to partner, 0 = receive
  std::int32_t partner = 0;  ///< calculator index
  std::uint64_t count = 0;
};

/// A proposed/announced domain-edge move.
struct EdgeEntry {
  std::uint32_t system = 0;
  std::int32_t edge_index = 0;
  float value = 0.0f;
};

/// Per-particle record shipped to the image generator — position plus
/// shading only, which is all rendering needs (the §4 rewrite's
/// "modifications related to ... communication operations").
struct RenderVertex {
  Vec3 pos;
  Vec3 color;
  float alpha = 1.0f;
  float size = 1.0f;
};

static_assert(std::is_trivially_copyable_v<RenderVertex>);

RenderVertex to_render_vertex(const psys::Particle& p);

/// Wire form of a RenderVertex: 16 bytes. Color is premultiplied by alpha
/// and quantized to 8 bits per channel (the additive blend only needs
/// energy, not exact floats); splat size is quantized against
/// kMaxSplatSize. The gather of every particle every frame is the largest
/// stream in the system, so its record is packed hard.
struct PackedVertex {
  float x = 0, y = 0, z = 0;
  std::uint8_t r = 0, g = 0, b = 0;
  std::uint8_t size_q = 0;
};

static_assert(sizeof(PackedVertex) == 16);
static_assert(std::is_trivially_copyable_v<PackedVertex>);

inline constexpr float kMaxSplatSize = 0.5f;

PackedVertex pack_vertex(const RenderVertex& v);
RenderVertex unpack_vertex(const PackedVertex& p);

// --- codecs ---
//
// Every control payload begins with a two-byte control header — the format
// magic byte and version shared with the ckpt snapshot format
// (ckpt::kFormatMagicByte / kFormatVersion) — followed by the frame
// number. Decoders verify both, so a build-format skew or a misrouted
// payload fails loudly instead of misdecoding.

void put_control_header(mp::Writer& w);
void check_control_header(mp::Reader& r, const char* where);

mp::Writer encode_batches(std::uint32_t frame,
                          const std::vector<SystemBatch>& batches);
std::vector<SystemBatch> decode_batches(const mp::Message& m,
                                        std::uint32_t expect_frame);

mp::Writer encode_load_report(std::uint32_t frame,
                              const std::vector<LoadEntry>& entries);
std::vector<LoadEntry> decode_load_report(const mp::Message& m,
                                          std::uint32_t expect_frame);

mp::Writer encode_orders(std::uint32_t frame,
                         const std::vector<OrderEntry>& orders);
std::vector<OrderEntry> decode_orders(const mp::Message& m,
                                      std::uint32_t expect_frame);

mp::Writer encode_edges(std::uint32_t frame,
                        const std::vector<EdgeEntry>& edges);
std::vector<EdgeEntry> decode_edges(const mp::Message& m,
                                    std::uint32_t expect_frame);

mp::Writer encode_frame_vertices(std::uint32_t frame,
                                 const std::vector<RenderVertex>& verts);
std::vector<RenderVertex> decode_frame_vertices(const mp::Message& m,
                                                std::uint32_t expect_frame);

/// Thrown when a payload's frame number does not match the receiver's
/// current frame — a protocol bug.
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

void check_frame(std::uint32_t got, std::uint32_t expect, const char* where);

}  // namespace psanim::core

#pragma once

// Particle-exchange engine (§3.2.4, first step of the frame-generation
// action): crossers are routed by the global domain map straight to their
// new owner, and every calculator sends every other one exactly one
// exchange message per frame — an empty message doubles as the
// end-of-transmission marker the paper insists on ("otherwise they will
// remain blocked waiting for particles").

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/decomposition.hpp"
#include "core/wire.hpp"
#include "mp/communicator.hpp"

namespace psanim::core {

/// Outboxes: for each calculator index, the system-batches headed there.
using Outboxes = std::vector<std::vector<SystemBatch>>;

/// Route extracted crossers of one system into per-calculator outboxes.
/// Particles the decomposition assigns back to `self` are returned to the
/// caller (can happen right after an edge moved) via `back_home`.
void route_crossers(const Decomposition& decomp, psys::SystemId system,
                    int self, std::vector<psys::Particle>&& crossers,
                    Outboxes& outboxes,
                    std::vector<psys::Particle>& back_home);

struct ExchangeStats {
  std::size_t sent_particles = 0;
  std::size_t received_particles = 0;
  std::uint64_t sent_bytes = 0;  ///< wire bytes of our outgoing messages
};

/// Run the symmetric exchange: send one kTagExchange message to every
/// peer (ascending), then receive one from each (ascending —
/// deterministic virtual-time merge). Received batches are handed to
/// `deliver(system, particles)`. `peers` are calculator indices, must not
/// contain `self`, and must be the same set on every participant (after a
/// crash: the alive set minus self). `timeout_s > 0` bounds each receive.
ExchangeStats exchange_crossers(
    mp::Endpoint& ep, std::uint32_t frame, std::span<const int> peers,
    int self, Outboxes outboxes,
    const std::function<void(psys::SystemId, std::vector<psys::Particle>&&)>&
        deliver,
    double timeout_s = 0.0);

/// Full-membership convenience overload: peers = all of 0..ncalc-1 except
/// `self`.
ExchangeStats exchange_crossers(
    mp::Endpoint& ep, std::uint32_t frame, int ncalc, int self,
    Outboxes outboxes,
    const std::function<void(psys::SystemId, std::vector<psys::Particle>&&)>&
        deliver);

}  // namespace psanim::core

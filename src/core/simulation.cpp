#include "core/simulation.hpp"

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>

#include "ckpt/vault.hpp"
#include "core/calculator.hpp"
#include "mp/buffer_pool.hpp"
#include "core/image_generator.hpp"
#include "core/manager.hpp"
#include "obs/analysis.hpp"
#include "obs/trace.hpp"
#include "platform/fabric.hpp"
#include "platform/parse.hpp"
#include "psys/store.hpp"
#include "render/objects.hpp"
#include "render/splat.hpp"

namespace psanim::core {

namespace {

/// Register the human names the obs trace shows for ranks and message
/// tags (Perfetto process names, flow-arrow labels). Must run before the
/// role threads start — both ends of a flow read the tag table.
void name_trace(obs::Trace& trace, const SimSettings& s) {
  trace.set_rank_name(kManagerRank, "manager");
  trace.set_rank_name(kImageGenRank, "image generator");
  for (int c = 0; c < s.ncalc; ++c) {
    trace.set_rank_name(calc_rank(c), "calc " + std::to_string(c));
  }
  trace.name_tag(kTagCreate, "create");
  trace.name_tag(kTagExchange, "exchange");
  trace.name_tag(kTagLoadReport, "load-report");
  trace.name_tag(kTagOrders, "orders");
  trace.name_tag(kTagEdgeProposal, "edge-proposal");
  trace.name_tag(kTagDomains, "domains");
  trace.name_tag(kTagBalance, "balance");
  trace.name_tag(kTagFrame, "frame");
  trace.name_tag(kTagFramePart, "frame-part");
  trace.name_tag(kTagGhost, "ghost");
  trace.name_tag(kTagFrameAck, "frame-ack");
  trace.name_tag(kTagCrash, "crash");
  trace.name_tag(kTagCkptDigest, "ckpt-digest");
}

/// Fold the injector's tally into the merged registry so one metrics dump
/// covers protocol, checkpointing and the fault layer alike.
void fault_metrics(obs::MetricsRegistry& reg, const fault::FaultStats& fs) {
  reg.counter("psanim_fault_drops_total").add(static_cast<double>(fs.drops));
  reg.counter("psanim_fault_duplicates_total")
      .add(static_cast<double>(fs.duplicates));
  reg.counter("psanim_fault_delay_spikes_total")
      .add(static_cast<double>(fs.delay_spikes));
  reg.counter("psanim_fault_degraded_msgs_total")
      .add(static_cast<double>(fs.degraded_msgs));
  reg.counter("psanim_fault_injected_delay_seconds_total")
      .add(fs.injected_delay_s);
  reg.counter("psanim_fault_restart_recoveries_total")
      .add(static_cast<double>(fs.restart_recoveries));
  reg.counter("psanim_fault_merge_recoveries_total")
      .add(static_cast<double>(fs.merge_recoveries));
}

/// Message-path allocation counters for this run: the buffer pool's global
/// tally is sampled around the run and the deltas exported, so one dump
/// shows both virtual-time results and the wall-clock allocation behavior
/// the pool exists to eliminate (misses == heap allocations).
void pool_metrics(obs::MetricsRegistry& reg,
                  const mp::BufferPool::Stats& before,
                  const mp::BufferPool::Stats& after) {
  const auto delta = [](std::uint64_t a, std::uint64_t b) {
    return static_cast<double>(a - b);
  };
  reg.counter("psanim_mp_buffer_acquires_total")
      .add(delta(after.acquires, before.acquires));
  reg.counter("psanim_mp_buffer_pool_hits_total")
      .add(delta(after.hits, before.hits));
  reg.counter("psanim_mp_buffer_heap_allocs_total")
      .add(delta(after.misses, before.misses));
  reg.counter("psanim_mp_buffer_releases_total")
      .add(delta(after.releases, before.releases));
}

// Concurrent-run detection for the pool export. mp::BufferPool is one
// process-wide instance (thread-safe, but its counters are global), so a
// per-run delta is only attributable when no other run_parallel overlapped
// this one. The farm runs many jobs concurrently; their per-job exports are
// disabled via ObsSettings::pool_metrics, and this guard additionally
// protects ad-hoc concurrent callers.
std::atomic<std::uint64_t> g_runs_started{0};
std::atomic<int> g_runs_active{0};

}  // namespace

ParallelResult run_parallel(const Scene& scene, const SimSettings& settings,
                            const cluster::ClusterSpec& spec,
                            const cluster::Placement& placement,
                            const cluster::CostModel& cost,
                            mp::RuntimeOptions rt_options) {
  settings.validate();
  const int world = world_size_for(settings.ncalc);
  if (placement.world_size() != world) {
    throw std::invalid_argument(
        "run_parallel: placement must cover manager, image generator and "
        "every calculator");
  }
  settings.fault_plan.validate(settings.ncalc, settings.frames);

  // Checkpointing needs a vault; when the caller did not supply one (and
  // so cannot want the images afterwards), the run owns a private one.
  SimSettings eff = settings;
  std::unique_ptr<ckpt::Vault> own_vault;
  if (eff.ckpt.enabled() && eff.ckpt_vault == nullptr) {
    own_vault = std::make_unique<ckpt::Vault>();
    eff.ckpt_vault = own_vault.get();
  }
  if (eff.resume_from &&
      (!eff.ckpt_vault || !eff.ckpt_vault->manifest(*eff.resume_from))) {
    throw std::invalid_argument(
        "run_parallel: resume_from requires a supplied vault holding a "
        "sealed checkpoint for frame " + std::to_string(*eff.resume_from));
  }
  if (eff.stop_after && own_vault) {
    throw std::invalid_argument(
        "run_parallel: stop_after seals a checkpoint to resume from later "
        "— supply a vault that outlives the run (settings.ckpt_vault)");
  }

  const auto rates = cluster::rank_rates(spec, placement, cost.smp_contention);

  // A-priori powers the manager uses for proportional splits — the paper
  // calibrates processing power from sequential execution times (§4),
  // which our rate model is the ground truth of.
  std::vector<double> calc_powers;
  calc_powers.reserve(static_cast<std::size_t>(settings.ncalc));
  for (int c = 0; c < settings.ncalc; ++c) {
    calc_powers.push_back(rates.at(static_cast<std::size_t>(calc_rank(c))));
  }

  // The injector lives here, not in the runtime: one per run, shared by
  // every rank's endpoint through the RuntimeOptions hook seam.
  std::unique_ptr<fault::Injector> injector;
  if (eff.fault_plan.any() && rt_options.fault == nullptr) {
    injector = std::make_unique<fault::Injector>(eff.fault_plan, world,
                                                 eff.events);
    rt_options.fault = injector.get();
  }

  // Observability: the caller's trace, or (own_vault pattern) a private
  // one when only a JSON export path was requested.
  std::unique_ptr<obs::Trace> own_trace;
  obs::Trace* trace = eff.obs.trace;
  if (trace == nullptr && !eff.obs.trace_json_path.empty()) {
    own_trace = std::make_unique<obs::Trace>();
    trace = own_trace.get();
    eff.obs.trace = trace;
  }
  if (trace != nullptr) {
    trace->begin_run(world,
                     eff.obs.flight_recorder ? eff.obs.flight_capacity : 0);
    name_trace(*trace, eff);
    rt_options.trace = trace;
  }

  // Topology platform: the settings' description wins over the spec's.
  // Flat (the default) keeps the legacy per-pair cost function and no
  // contention hook — bit-identical to pre-platform behavior.
  const std::string& plat_desc =
      !platform::is_flat(eff.platform) ? eff.platform : spec.platform;
  std::unique_ptr<platform::Platform> plat;
  std::unique_ptr<platform::Fabric> fabric;
  if (!platform::is_flat(plat_desc)) {
    plat = std::make_unique<platform::Platform>(
        platform::parse(plat_desc, spec.node_count()));
    std::vector<std::size_t> node_of(static_cast<std::size_t>(world));
    for (int r = 0; r < world; ++r) {
      node_of[static_cast<std::size_t>(r)] = static_cast<std::size_t>(
          placement.node_of_rank.at(static_cast<std::size_t>(r)));
    }
    fabric = std::make_unique<platform::Fabric>(*plat, std::move(node_of));
    rt_options.contention = fabric.get();
  }

  const std::uint64_t start_stamp = g_runs_started.fetch_add(1) + 1;
  const bool entered_alone = g_runs_active.fetch_add(1) == 0;
  struct ActiveGuard {
    ~ActiveGuard() { g_runs_active.fetch_sub(1); }
  } active_guard;
  const mp::BufferPool::Stats pool_before = mp::BufferPool::global().stats();

  mp::Runtime runtime(
      world,
      plat ? cluster::make_link_cost_fn(spec, placement, cost, *plat)
           : cluster::make_link_cost_fn(spec, placement, cost),
      rt_options);

  // Per-rank output slots; each thread writes only its own index.
  std::vector<trace::Telemetry> tele(static_cast<std::size_t>(world));
  std::optional<render::Framebuffer> final_frame;
  std::vector<Decomposition> final_decomps;
  std::vector<std::vector<std::vector<psys::Particle>>> final_parts(
      static_cast<std::size_t>(world));

  const auto procs = runtime.run([&](mp::Endpoint& ep) {
    // This rank's checkpoint storage: the platform's node disk when it
    // charges anything, else whatever the checkpoint policy configured.
    platform::DiskModel disk = eff.ckpt.disk;
    if (plat) {
      const auto node = static_cast<std::size_t>(
          placement.node_of_rank.at(static_cast<std::size_t>(ep.rank())));
      if (!plat->disk_of(node).free()) disk = plat->disk_of(node);
    }
    const RoleEnv env{&cost, rates.at(static_cast<std::size_t>(ep.rank())),
                      trace ? &trace->metrics(ep.rank()) : nullptr, disk};
    if (ep.rank() == kManagerRank) {
      Manager m(eff, scene, env, calc_powers);
      m.run(ep);
      tele[static_cast<std::size_t>(ep.rank())] = m.telemetry();
      final_decomps = m.decompositions();
    } else if (ep.rank() == kImageGenRank) {
      ImageGenerator ig(eff, scene, env);
      ig.run(ep);
      tele[static_cast<std::size_t>(ep.rank())] = ig.telemetry();
      final_frame = ig.final_frame();
    } else {
      Calculator c(eff, scene, env, calc_index(ep.rank()));
      c.run(ep);
      tele[static_cast<std::size_t>(ep.rank())] = c.telemetry();
      auto& mine = final_parts[static_cast<std::size_t>(ep.rank())];
      for (std::size_t s = 0; s < scene.systems.size(); ++s) {
        mine.push_back(c.snapshot(static_cast<psys::SystemId>(s)));
      }
    }
  });

  ParallelResult result;
  result.procs = procs;
  // The animation is done when its last image is: the image generator's
  // finishing clock is the run's time-to-images.
  result.animation_s =
      procs.at(static_cast<std::size_t>(kImageGenRank)).finish_time;
  for (const auto& t : tele) result.telemetry.merge(t);
  if (final_frame) result.final_frame = std::move(*final_frame);
  result.final_decomps = std::move(final_decomps);
  if (injector) result.fault_stats = injector->stats();
  // How each crash was recovered — a function of (plan, policy), recorded
  // so experiments can attribute degradation vs. replay cost. Crashes at
  // or before a resume point were already recovered in the original run.
  for (const auto& c : eff.fault_plan.crashes) {
    if (eff.resume_from && c.at_frame <= *eff.resume_from) continue;
    if (eff.stop_after && c.at_frame > *eff.stop_after) continue;
    if (eff.ckpt.restarts(c.at_frame)) {
      ++result.fault_stats.restart_recoveries;
    } else {
      ++result.fault_stats.merge_recoveries;
    }
  }
  result.final_particles.assign(scene.systems.size(), {});
  for (const auto& per_rank : final_parts) {
    for (std::size_t s = 0; s < per_rank.size(); ++s) {
      result.final_particles[s].insert(result.final_particles[s].end(),
                                       per_rank[s].begin(),
                                       per_rank[s].end());
    }
  }
  if (trace != nullptr) {
    result.metrics = trace->merged_metrics();
    fault_metrics(result.metrics, result.fault_stats);
    if (!eff.obs.trace_json_path.empty()) {
      trace->write_chrome_json(eff.obs.trace_json_path);
    }
    if (eff.obs.analyzing()) {
      // Post-hoc critical-path / straggler attribution over the records
      // this run produced. A pure function of the per-rank streams, so the
      // exported numbers inherit the run's bit-determinism.
      const obs::Analysis analysis = obs::analyze(*trace);
      obs::fold_summary(analysis, result.metrics);
      if (!eff.obs.analysis_json_path.empty()) {
        obs::write_analysis_json(analysis, eff.obs.analysis_json_path);
      }
    }
  }
  const mp::BufferPool::Stats pool_after = mp::BufferPool::global().stats();
  // Exclusive iff nothing was active at entry and no run started since.
  const bool exclusive =
      entered_alone && g_runs_started.load() == start_stamp;
  if (eff.obs.pool_metrics && exclusive) {
    pool_metrics(result.metrics, pool_before, pool_after);
  } else if (eff.obs.pool_metrics) {
    result.metrics.counter("psanim_mp_buffer_stats_skipped_shared").inc();
  }
  return result;
}

SequentialResult run_sequential(const Scene& scene,
                                const SimSettings& settings, double rate,
                                const cluster::CostModel& cost) {
  settings.validate();
  // Mirror the single-calculator layout exactly (same SlicedStore, same
  // RNG streams with calculator index 0) so run_parallel(ncalc=1) evolves
  // the identical particle set.
  const Rng base(settings.seed);
  std::vector<psys::SlicedStore> stores;
  stores.reserve(scene.systems.size());
  for (std::size_t s = 0; s < scene.systems.size(); ++s) {
    stores.emplace_back(settings.axis, -Aabb::kHuge, Aabb::kHuge,
                        settings.store_slices);
  }

  render::Camera cam = render::Camera::framing(
      scene.look_center, scene.look_radius, settings.image_width,
      settings.image_height);
  render::Framebuffer fb(settings.image_width, settings.image_height);

  double clock = 0.0;
  for (std::uint32_t frame = 0; frame < settings.frames; ++frame) {
    clock += cost.frame_overhead_s / rate;
    // Creation (same stream as the manager's).
    for (std::size_t s = 0; s < scene.systems.size(); ++s) {
      Rng rng = base.derive(0xC0FFEEu, s, frame);
      psys::ActionContext ctx{settings.dt, &rng, 0};
      std::vector<psys::Particle> born;
      for (const psys::Source* src : scene.systems[s].actions().sources()) {
        src->generate(born, ctx);
      }
      clock += cost.compute_s(cost.create_cost, born.size(), rate);
      stores[s].insert_batch(born);
    }
    // Actions (same streams as calculator 0's, same fused traversal).
    for (std::size_t s = 0; s < scene.systems.size(); ++s) {
      auto& store = stores[s];
      const std::size_t held = store.size();
      psys::FusedPasses fused(
          scene.systems[s].actions(), settings.dt, [&](std::size_t ai) {
            return base.derive(s, frame).derive(ai, /*calc=*/0);
          });
      store.for_each_slice(
          [&](std::span<psys::Particle> ps) { fused.apply(ps); });
      for (const auto& pass : fused.passes()) {
        clock += cost.compute_s(cost.action_cost * pass.action->cost_weight(),
                                held, rate);
      }
      const std::size_t removed = store.compact_dead();
      clock += cost.compute_s(cost.pack_cost, removed, rate);
      // Keep internal slices consistent, as the calculator's exchange
      // scan does (everything stays owned — one domain spans all space).
      store.extract_outside();
    }
    // Render.
    fb.clear({0.02f, 0.02f, 0.03f});
    render::draw_ground_grid(fb, cam, scene.space.lo.y,
                             scene.look_radius * 1.2f, 16,
                             {0.18f, 0.2f, 0.22f});
    const auto px = static_cast<std::size_t>(
        34 * std::max(settings.image_width, settings.image_height));
    clock += cost.compute_s(cost.render_cost, px, rate);
    std::size_t rendered = 0;
    for (auto& store : stores) {
      const auto parts = store.snapshot();
      render::splat_particles(fb, cam, parts, render::BlendMode::kAdditive);
      rendered += parts.size();
    }
    clock += cost.compute_s(cost.render_cost, rendered, rate);
  }

  SequentialResult result;
  result.total_s = clock;
  result.per_frame_s = settings.frames > 0
                           ? clock / static_cast<double>(settings.frames)
                           : 0.0;
  for (const auto& store : stores) result.final_particles += store.size();
  result.final_frame = std::move(fb);
  for (auto& store : stores) result.populations.push_back(store.snapshot());
  return result;
}

}  // namespace psanim::core

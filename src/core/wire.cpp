#include "core/wire.hpp"

#include <cstring>
#include <string>

#include "ckpt/format.hpp"

namespace psanim::core {

void put_control_header(mp::Writer& w) {
  w.put(ckpt::kFormatMagicByte);
  w.put(ckpt::kFormatVersion);
}

void check_control_header(mp::Reader& r, const char* where) {
  const auto magic = r.get<std::uint8_t>();
  if (magic != ckpt::kFormatMagicByte) {
    throw ProtocolError(std::string(where) +
                        ": control payload has bad format magic 0x" +
                        std::to_string(magic) +
                        " — wire/snapshot format skew or misrouted message");
  }
  const auto version = r.get<std::uint8_t>();
  if (version != ckpt::kFormatVersion) {
    throw ProtocolError(std::string(where) + ": control format version " +
                        std::to_string(version) + ", this build speaks " +
                        std::to_string(ckpt::kFormatVersion));
  }
}

RenderVertex to_render_vertex(const psys::Particle& p) {
  return {p.pos, p.color, p.alpha, p.size};
}

namespace {
std::uint8_t quantize01(float v) {
  const float c = v < 0 ? 0.0f : (v > 1 ? 1.0f : v);
  return static_cast<std::uint8_t>(c * 255.0f + 0.5f);
}
}  // namespace

PackedVertex pack_vertex(const RenderVertex& v) {
  PackedVertex p;
  p.x = v.pos.x;
  p.y = v.pos.y;
  p.z = v.pos.z;
  p.r = quantize01(v.color.x * v.alpha);
  p.g = quantize01(v.color.y * v.alpha);
  p.b = quantize01(v.color.z * v.alpha);
  p.size_q = quantize01(v.size / kMaxSplatSize);
  return p;
}

RenderVertex unpack_vertex(const PackedVertex& p) {
  RenderVertex v;
  v.pos = {p.x, p.y, p.z};
  v.color = {static_cast<float>(p.r) / 255.0f,
             static_cast<float>(p.g) / 255.0f,
             static_cast<float>(p.b) / 255.0f};
  v.alpha = 1.0f;  // premultiplied into color
  v.size = static_cast<float>(p.size_q) / 255.0f * kMaxSplatSize;
  return v;
}

void check_frame(std::uint32_t got, std::uint32_t expect, const char* where) {
  if (got != expect) {
    throw ProtocolError(std::string(where) + ": payload for frame " +
                        std::to_string(got) + " arrived in frame " +
                        std::to_string(expect));
  }
}

mp::Writer encode_batches(std::uint32_t frame,
                          const std::vector<SystemBatch>& batches) {
  mp::Writer w;
  put_control_header(w);
  w.put(frame);
  w.put<std::uint32_t>(static_cast<std::uint32_t>(batches.size()));
  for (const auto& b : batches) {
    w.put<std::uint32_t>(b.system);
    w.put_vector(b.particles);
  }
  return w;
}

std::vector<SystemBatch> decode_batches(const mp::Message& m,
                                        std::uint32_t expect_frame) {
  mp::Reader r(m);
  check_control_header(r, "decode_batches");
  check_frame(r.get<std::uint32_t>(), expect_frame, "decode_batches");
  const auto n = r.get<std::uint32_t>();
  std::vector<SystemBatch> out(n);
  for (auto& b : out) {
    b.system = r.get<std::uint32_t>();
    b.particles = r.get_vector<psys::Particle>();
  }
  return out;
}

mp::Writer encode_load_report(std::uint32_t frame,
                              const std::vector<LoadEntry>& entries) {
  mp::Writer w;
  put_control_header(w);
  w.put(frame);
  w.put_vector(entries);
  return w;
}

std::vector<LoadEntry> decode_load_report(const mp::Message& m,
                                          std::uint32_t expect_frame) {
  mp::Reader r(m);
  check_control_header(r, "decode_load_report");
  check_frame(r.get<std::uint32_t>(), expect_frame, "decode_load_report");
  return r.get_vector<LoadEntry>();
}

mp::Writer encode_orders(std::uint32_t frame,
                         const std::vector<OrderEntry>& orders) {
  mp::Writer w;
  put_control_header(w);
  w.put(frame);
  w.put_vector(orders);
  return w;
}

std::vector<OrderEntry> decode_orders(const mp::Message& m,
                                      std::uint32_t expect_frame) {
  mp::Reader r(m);
  check_control_header(r, "decode_orders");
  check_frame(r.get<std::uint32_t>(), expect_frame, "decode_orders");
  return r.get_vector<OrderEntry>();
}

mp::Writer encode_edges(std::uint32_t frame,
                        const std::vector<EdgeEntry>& edges) {
  mp::Writer w;
  put_control_header(w);
  w.put(frame);
  w.put_vector(edges);
  return w;
}

std::vector<EdgeEntry> decode_edges(const mp::Message& m,
                                    std::uint32_t expect_frame) {
  mp::Reader r(m);
  check_control_header(r, "decode_edges");
  check_frame(r.get<std::uint32_t>(), expect_frame, "decode_edges");
  return r.get_vector<EdgeEntry>();
}

mp::Writer encode_frame_vertices(std::uint32_t frame,
                                 const std::vector<RenderVertex>& verts) {
  mp::Writer w;
  w.reserve(2 + sizeof(frame) + sizeof(std::uint64_t) +
            verts.size() * sizeof(PackedVertex));
  put_control_header(w);
  w.put(frame);
  // Pack straight into the payload: the former intermediate
  // vector<PackedVertex> cost an allocation plus a second full copy per
  // frame per calculator. memcpy keeps the write legal at any alignment
  // (the 14-byte header leaves the array unaligned).
  w.put<std::uint64_t>(verts.size());
  std::byte* out = w.alloc(verts.size() * sizeof(PackedVertex));
  for (std::size_t i = 0; i < verts.size(); ++i) {
    const PackedVertex p = pack_vertex(verts[i]);
    std::memcpy(out + i * sizeof(PackedVertex), &p, sizeof(PackedVertex));
  }
  return w;
}

std::vector<RenderVertex> decode_frame_vertices(const mp::Message& m,
                                                std::uint32_t expect_frame) {
  mp::Reader r(m);
  check_control_header(r, "decode_frame_vertices");
  check_frame(r.get<std::uint32_t>(), expect_frame, "decode_frame_vertices");
  // Unpack straight out of the payload (no intermediate packed vector).
  const auto n = r.get<std::uint64_t>();
  if (n > r.remaining() / sizeof(PackedVertex)) {
    throw mp::DecodeError(
        "decode_frame_vertices: vertex count exceeds payload");
  }
  const std::span<const std::byte> raw =
      r.raw(static_cast<std::size_t>(n) * sizeof(PackedVertex));
  std::vector<RenderVertex> verts;
  verts.reserve(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < n; ++i) {
    PackedVertex p;
    std::memcpy(&p, raw.data() + i * sizeof(PackedVertex),
                sizeof(PackedVertex));
    verts.push_back(unpack_vertex(p));
  }
  return verts;
}

}  // namespace psanim::core

#pragma once

// Shared configuration for the Fig. 2 frame loop: the scene being
// animated, the knobs of the §5 experiment grid (space mode, balancing
// mode), and the per-role environment (cost model + effective rate).

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/policy.hpp"
#include "cluster/cost_model.hpp"
#include "fault/fault_plan.hpp"
#include "lb/diffusion_lb.hpp"
#include "lb/dynamic_pairwise_lb.hpp"
#include "lb/load_balancer.hpp"
#include "lb/static_lb.hpp"
#include "math/aabb.hpp"
#include "platform/disk.hpp"
#include "psys/system.hpp"
#include "trace/event_log.hpp"

namespace psanim::ckpt {
class Vault;
}

namespace psanim::obs {
class MetricsRegistry;
class Trace;
}  // namespace psanim::obs

namespace psanim::core {

/// IS / FS in the paper's tables: how the initial domain split covers
/// space. Infinite splits [-kHuge, kHuge]; finite splits the scene's box.
enum class SpaceMode { kInfinite, kFinite };

/// SLB / DLB columns, plus the decentralized future-work policy.
enum class LbMode { kStatic, kDynamicPairwise, kDiffusion };

/// How frames reach the image generator: gather every particle (the
/// paper's design) or composite locally-rendered partial images (the §6
/// remote-image-generation extension).
enum class ImageGenMode { kGatherParticles, kSortLast };

/// §3.3: "there are different ways to combine the processing of more than
/// one system. Depending on the form used, the processing may be more or
/// less efficient." kBundled ships one exchange message per peer per
/// frame carrying every system's crossers; kPerSystem runs a separate
/// exchange round per system (simpler bookkeeping, more messages — the
/// penalty grows with system count and message latency).
enum class SystemCombine { kBundled, kPerSystem };

std::string to_string(SpaceMode m);
std::string to_string(LbMode m);
std::string to_string(ImageGenMode m);
std::string to_string(SystemCombine c);

/// Observability knobs (psanim::obs). Tracing is on when either `trace`
/// is supplied (caller keeps the trace for queries; must outlive the run)
/// or `trace_json_path` is set (run_parallel owns an internal trace and
/// writes the Chrome JSON at run end — the own_vault pattern).
struct ObsSettings {
  obs::Trace* trace = nullptr;
  /// Export the run's Chrome trace-event JSON here ("" = don't write).
  std::string trace_json_path;
  /// Capture a bounded ring of recent records into every checkpoint and
  /// re-emit it on restore (needs tracing on and a checkpoint policy).
  bool flight_recorder = false;
  std::size_t flight_capacity = 256;
  /// Run obs::analyze over the trace at run end and fold the headline
  /// numbers (critical-path compute/wire split, wire share, per-frame
  /// imbalance quantiles) into ParallelResult::metrics as
  /// psanim_obs_cp_* / psanim_obs_frame_* series. Needs tracing on.
  bool analysis = false;
  /// Also write the full schema-versioned analysis report JSON here
  /// ("" = don't write; a non-empty path implies `analysis`).
  std::string analysis_json_path;
  /// Export the process-wide mp::BufferPool stat deltas sampled around this
  /// run as psanim_mp_buffer_* counters. The pool is shared by every
  /// runtime in the process, so the farm turns this off for co-scheduled
  /// jobs (neighbor traffic would be misattributed) and exports one
  /// farm-level delta instead. run_parallel also skips the export on its
  /// own when it detects another run overlapped it in wall-clock.
  bool pool_metrics = true;

  bool tracing() const { return trace != nullptr || !trace_json_path.empty(); }
  bool analyzing() const { return analysis || !analysis_json_path.empty(); }
};

/// The scene: the systems of Algorithm 1 plus the space they play in.
/// Systems are identified by their index in `systems` (§3.1.3). Immutable
/// during a run and shared by const reference across role threads.
struct Scene {
  std::vector<psys::ParticleSystem> systems;
  Aabb space;          ///< finite simulated space (FS mode splits this)
  Vec3 look_center{};  ///< camera framing
  float look_radius = 10.0f;
};

struct SimSettings {
  int ncalc = 4;
  std::uint32_t frames = 60;
  float dt = 1.0f / 30.0f;
  int axis = 0;  ///< decomposition axis (x)
  SpaceMode space = SpaceMode::kFinite;
  LbMode lb = LbMode::kDynamicPairwise;
  lb::DynamicPairwiseConfig dlb;
  lb::DiffusionConfig diffusion;
  ImageGenMode imgen = ImageGenMode::kGatherParticles;
  SystemCombine combine = SystemCombine::kBundled;
  int image_width = 320;
  int image_height = 240;
  /// Write frames as PPM into this directory every `write_every` frames
  /// (0 = never write).
  std::string frame_dir;
  std::uint32_t write_every = 0;
  /// Sub-domain vectors per store (§4); more slices = cheaper donations.
  std::size_t store_slices = 8;
  /// Particle-particle collisions (ghost exchange + spatial hash).
  bool pair_collisions = false;
  float collision_radius = 0.05f;
  float collision_restitution = 0.3f;
  std::uint64_t seed = 0x9d5c0ff5eedULL;
  /// When set, every role records its protocol phase transitions here
  /// (Figure 2 as an executable trace). Must outlive the run.
  trace::EventLog* events = nullptr;
  /// Deterministic faults to inject (drops, duplicates, delay spikes,
  /// degradation, slowdowns, calculator crashes). Default: none. The plan
  /// is shared by every role; crash membership is derived from it
  /// identically everywhere (perfect-failure-detector model).
  fault::FaultPlan fault_plan;
  /// Wall-clock deadline for each protocol-phase receive; 0 inherits
  /// mp::RuntimeOptions::recv_timeout_s. A wedged peer fails the phase
  /// instead of hanging the whole run.
  double phase_timeout_s = 0.0;
  /// Coordinated checkpoint/restore: snapshot cadence and crash-recovery
  /// mode (see ckpt::CkptPolicy). Off by default.
  ckpt::CkptPolicy ckpt;
  /// Where snapshot images land. Null + enabled policy: run_parallel owns
  /// an internal vault. Supply one (it must outlive the run) to keep the
  /// checkpoints for replay/resume across runs.
  ckpt::Vault* ckpt_vault = nullptr;
  /// When set, skip frames 0..resume_from and restore every role from the
  /// sealed checkpoint at `resume_from` in `ckpt_vault` instead — the
  /// Replayer's entry point.
  std::optional<std::uint32_t> resume_from;
  /// Coordinated suspend: execute frames only up to `stop_after` — which
  /// must be a snapshot frame, so its sealed checkpoint is the last thing
  /// the run produces — then return. A later run with
  /// `resume_from = stop_after` over the same vault continues the
  /// animation bit-identically, possibly on different nodes (the farm's
  /// preemption mechanism). The executed prefix is bit-identical to the
  /// same frames of an uninterrupted run: nothing but the loop bound
  /// depends on this knob.
  std::optional<std::uint32_t> stop_after;
  /// Observability: span tracing, metrics, flight recorder (psanim::obs).
  ObsSettings obs;
  /// Topology platform selecting wire costs and shared-link contention
  /// (platform::parse form: preset name, DSL, or JSON). Empty or "flat"
  /// keeps the legacy per-pair alpha-beta model bit-identically. When both
  /// this and the cluster spec's platform are set, this one wins.
  std::string platform;

  /// Reject nonsensical settings (non-positive frame counts, negative
  /// timeouts or checkpoint intervals, ...) with actionable messages.
  /// Throws std::invalid_argument. run_parallel/run_sequential call this.
  void validate() const;
};

/// Instantiate the configured balancing policy (one instance per system —
/// the pair-alternation state is per system, matching the paper's
/// per-system evaluation).
std::unique_ptr<lb::LoadBalancer> make_lb_policy(const SimSettings& s);

/// Build each system's initial decomposition interval along `axis`.
/// Returns {lo, hi} for the chosen space mode.
std::pair<float, float> initial_interval(const SimSettings& s,
                                         const Scene& scene);

/// Per-role execution environment.
struct RoleEnv {
  const cluster::CostModel* cost = nullptr;
  double rate = 1.0;  ///< this rank's effective compute rate
  /// This rank's metrics registry (null = metrics off). Owner-thread
  /// mutation only, like every per-rank obs buffer.
  obs::MetricsRegistry* metrics = nullptr;
  /// Storage model for this rank's checkpoint I/O: the platform's
  /// per-node disk when non-free, else CkptPolicy::disk. Default free —
  /// vault stores/fetches charge nothing, the pre-platform behavior.
  platform::DiskModel disk{};
};

}  // namespace psanim::core

#pragma once

// A calculator process (§3.1.1): applies the actions to its particles,
// moves them, detects collisions, exchanges crossers with the other
// calculators, obeys the manager's balance orders and ships its particles
// to the image generator every frame.

#include <cstdint>
#include <optional>
#include <vector>

#include "collide/spatial_hash.hpp"
#include "core/decomposition.hpp"
#include "core/frame_loop.hpp"
#include "core/wire.hpp"
#include "math/rng.hpp"
#include "mp/communicator.hpp"
#include "obs/role_tracer.hpp"
#include "psys/store.hpp"
#include "render/camera.hpp"
#include "render/framebuffer.hpp"
#include "trace/telemetry.hpp"

namespace psanim::core {

class Calculator {
 public:
  Calculator(const SimSettings& settings, const Scene& scene, RoleEnv env,
             int index);

  void run(mp::Endpoint& ep);

  const trace::Telemetry& telemetry() const { return tel_; }
  int index() const { return idx_; }

  /// Particles currently held (tests inspect the final state).
  std::vector<psys::Particle> snapshot(psys::SystemId s) const {
    return stores_.at(s).snapshot();
  }

 private:
  void receive_created(mp::Endpoint& ep, std::uint32_t frame,
                       trace::CalcFrameStats& fs);
  /// Returns per-system compute time and pre-exchange particle counts.
  void compute_phase(mp::Endpoint& ep, std::uint32_t frame,
                     std::vector<double>& time_per_system,
                     std::vector<std::size_t>& count_per_system,
                     trace::CalcFrameStats& fs);
  void exchange_phase(mp::Endpoint& ep, std::uint32_t frame,
                      trace::CalcFrameStats& fs);
  void collide_phase(mp::Endpoint& ep, std::uint32_t frame,
                     std::vector<double>& time_per_system);
  void report_loads(mp::Endpoint& ep, std::uint32_t frame,
                    const std::vector<double>& time_per_system,
                    const std::vector<std::size_t>& count_per_system);
  void send_frame(mp::Endpoint& ep, std::uint32_t frame,
                  trace::CalcFrameStats& fs);
  void balance_phase(mp::Endpoint& ep, std::uint32_t frame,
                     trace::CalcFrameStats& fs);
  void charge_particles(mp::Endpoint& ep, double per_particle,
                        std::size_t n) const;
  /// Export the stores' non-finite drop counters (delta since last call)
  /// into the metrics registry.
  void report_nonfinite();
  /// Fail-stop: announce the crash to the manager and drop local state.
  void die(mp::Endpoint& ep, std::uint32_t frame);
  /// What the crash sweep at a frame boundary decided.
  enum class CrashOutcome {
    kNone,        ///< nothing pending — run the frame
    kRolledBack,  ///< restart recovery: frame was rewound, re-enter loop
    kDead,        ///< this calculator merge-crashed — thread exits
  };
  /// Detect crashes scheduled for `frame` (not yet handled), pick the
  /// policy's recovery and execute this rank's share of it. May rewind
  /// `frame` to the rollback target.
  CrashOutcome handle_crashes(mp::Endpoint& ep, std::uint32_t& frame);
  /// Merge-mode recovery: mirror the manager's merge bookkeeping for the
  /// (ascending) dead peers (membership is derived from the shared fault
  /// plan — no messages).
  void apply_crashes(mp::Endpoint& ep, std::uint32_t frame,
                     const std::vector<int>& dead);
  /// Snapshot frame-barrier state into the vault + digest to the manager.
  void capture(mp::Endpoint& ep, std::uint32_t frame);
  /// Restore this rank's vault image for snapshot frame `f0`.
  void restore(mp::Endpoint& ep, std::uint32_t f0);
  /// Consume the frame acks in flight across a rollback boundary — their
  /// count, min(frame - epoch_start_, 2), is exact under window-2 flow
  /// control and MPI non-overtaking order.
  void drain_stale_acks(mp::Endpoint& ep, std::uint32_t frame);
  /// Recompute alive_/peers_ for the start of `frame` (recovery-aware).
  void refresh_membership(std::uint32_t frame);
  /// Protocol receive with the per-phase deadline from SimSettings.
  mp::Message recv_p(mp::Endpoint& ep, int src, int tag) {
    return ep.recv_within(src, tag, set_.phase_timeout_s);
  }

  const SimSettings& set_;
  const Scene& scene_;
  RoleEnv env_;
  int idx_;
  std::vector<Decomposition> decomps_;
  std::vector<psys::SlicedStore> stores_;  // one per system
  Rng base_rng_;
  render::Camera cam_;  // used in sort-last mode
  trace::Telemetry tel_;
  /// Crash-recovery membership: who is still running, and the exchange
  /// peer list derived from it (all alive calculators except self).
  std::vector<char> alive_;
  std::vector<int> peers_;
  /// Crashes already handled (by calculator index) — replayed frames must
  /// not re-execute a recovery.
  std::vector<char> crash_done_;
  /// First frame of the current ack epoch: 0 initially, snapshot_frame+1
  /// after every rollback/resume. The window-2 ack for frame f is consumed
  /// iff f - epoch_start_ >= 2.
  std::uint32_t epoch_start_ = 0;
  /// Observability: span/EventLog fan-out and this rank's metric updates.
  obs::RoleTracer tr_;
  obs::CalcMetrics metrics_;
  /// Collision broad-phase grid, lazily built and reused every frame.
  std::optional<collide::SpatialHash> collide_grid_;
  /// Non-finite drops already exported to metrics_.
  std::uint64_t nonfinite_reported_ = 0;
};

}  // namespace psanim::core

#include "core/frame_loop.hpp"

namespace psanim::core {

std::string to_string(SpaceMode m) {
  return m == SpaceMode::kInfinite ? "IS" : "FS";
}

std::string to_string(LbMode m) {
  switch (m) {
    case LbMode::kStatic: return "SLB";
    case LbMode::kDynamicPairwise: return "DLB";
    case LbMode::kDiffusion: return "DIFF";
  }
  return "?";
}

std::string to_string(ImageGenMode m) {
  return m == ImageGenMode::kGatherParticles ? "gather" : "sort-last";
}

std::string to_string(SystemCombine c) {
  return c == SystemCombine::kBundled ? "bundled" : "per-system";
}

std::unique_ptr<lb::LoadBalancer> make_lb_policy(const SimSettings& s) {
  switch (s.lb) {
    case LbMode::kStatic:
      return std::make_unique<lb::StaticLB>();
    case LbMode::kDynamicPairwise:
      return std::make_unique<lb::DynamicPairwiseLB>(s.dlb);
    case LbMode::kDiffusion:
      return std::make_unique<lb::DiffusionLB>(s.diffusion);
  }
  return std::make_unique<lb::StaticLB>();
}

std::pair<float, float> initial_interval(const SimSettings& s,
                                         const Scene& scene) {
  if (s.space == SpaceMode::kInfinite) {
    return {-Aabb::kHuge, Aabb::kHuge};
  }
  return {scene.space.lo.axis(s.axis), scene.space.hi.axis(s.axis)};
}

}  // namespace psanim::core

#include "core/frame_loop.hpp"

#include <filesystem>
#include <stdexcept>
#include <string>

#include "platform/parse.hpp"

namespace psanim::core {

void SimSettings::validate() const {
  const auto fail = [](const std::string& what) {
    throw std::invalid_argument("SimSettings: " + what);
  };
  if (ncalc <= 0) {
    fail("ncalc must be positive, got " + std::to_string(ncalc));
  }
  if (frames == 0) {
    fail("frames must be positive — a zero-frame animation renders nothing");
  }
  if (!(dt > 0.0f)) {
    fail("dt must be positive, got " + std::to_string(dt));
  }
  if (axis < 0 || axis > 2) {
    fail("axis must be 0, 1 or 2 (x/y/z), got " + std::to_string(axis));
  }
  if (image_width <= 0 || image_height <= 0) {
    fail("image dimensions must be positive, got " +
         std::to_string(image_width) + "x" + std::to_string(image_height));
  }
  if (store_slices == 0) {
    fail("store_slices must be positive — each store needs at least one "
         "sub-domain vector");
  }
  if (phase_timeout_s < 0.0) {
    fail("phase_timeout_s must be >= 0 (0 inherits the runtime timeout), "
         "got " + std::to_string(phase_timeout_s));
  }
  if (ckpt.interval < 0) {
    fail("ckpt.interval must be >= 0 (0 disables checkpointing), got " +
         std::to_string(ckpt.interval));
  }
  if (resume_from) {
    if (!ckpt.enabled()) {
      fail("resume_from requires checkpointing enabled (ckpt.interval > 0) "
           "so replayed recovery decisions match the original run");
    }
    if (*resume_from + 1 >= frames) {
      fail("resume_from frame " + std::to_string(*resume_from) +
           " leaves no frame to execute (frames = " + std::to_string(frames) +
           ")");
    }
    if (!ckpt.due_after(*resume_from)) {
      fail("resume_from frame " + std::to_string(*resume_from) +
           " is not a snapshot frame for interval " +
           std::to_string(ckpt.interval));
    }
  }
  if (stop_after) {
    if (!ckpt.enabled()) {
      fail("stop_after requires checkpointing enabled (ckpt.interval > 0) "
           "— suspending means sealing a checkpoint to resume from");
    }
    if (*stop_after + 1 >= frames) {
      fail("stop_after frame " + std::to_string(*stop_after) +
           " leaves nothing to resume (frames = " + std::to_string(frames) +
           ") — run to completion instead");
    }
    if (!ckpt.due_after(*stop_after)) {
      fail("stop_after frame " + std::to_string(*stop_after) +
           " is not a snapshot frame for interval " +
           std::to_string(ckpt.interval) +
           " — the suspend point must seal a checkpoint");
    }
    if (resume_from && *stop_after <= *resume_from) {
      fail("stop_after frame " + std::to_string(*stop_after) +
           " must lie strictly after resume_from frame " +
           std::to_string(*resume_from));
    }
  }
  if (obs.flight_recorder) {
    if (obs.flight_capacity == 0) {
      fail("obs.flight_recorder with obs.flight_capacity == 0 records "
           "nothing — set a positive ring capacity or disable the recorder");
    }
    if (!obs.tracing()) {
      fail("obs.flight_recorder needs tracing on — supply obs.trace or set "
           "obs.trace_json_path");
    }
  }
  if (!platform::is_flat(platform)) {
    // Reject dangling platform names here, where the error still points at
    // the setting, instead of deep inside run_parallel. Exact node-count
    // sizing happens at run time against the cluster spec; validation
    // tries the world size and a minimal size so size-adaptive presets
    // are not falsely rejected.
    try {
      (void)platform::parse(platform, static_cast<std::size_t>(ncalc) + 2);
    } catch (const std::invalid_argument& first) {
      try {
        (void)platform::parse(platform, 2);
      } catch (const std::invalid_argument&) {
        fail("platform '" + platform + "' is not usable: " + first.what());
      }
    }
  }
  if (!obs.trace_json_path.empty()) {
    const std::filesystem::path p(obs.trace_json_path);
    if (std::filesystem::is_directory(p)) {
      fail("obs.trace_json_path '" + obs.trace_json_path +
           "' is a directory — give a file path for the Chrome trace JSON");
    }
    const std::filesystem::path dir = p.parent_path();
    if (!dir.empty() && !std::filesystem::is_directory(dir)) {
      fail("obs.trace_json_path parent directory '" + dir.string() +
           "' does not exist — create it before the run");
    }
  }
  if (obs.analyzing() && !obs.tracing()) {
    fail("obs.analysis needs tracing on — supply obs.trace or set "
         "obs.trace_json_path");
  }
  if (!obs.analysis_json_path.empty()) {
    const std::filesystem::path p(obs.analysis_json_path);
    if (std::filesystem::is_directory(p)) {
      fail("obs.analysis_json_path '" + obs.analysis_json_path +
           "' is a directory — give a file path for the report JSON");
    }
    const std::filesystem::path dir = p.parent_path();
    if (!dir.empty() && !std::filesystem::is_directory(dir)) {
      fail("obs.analysis_json_path parent directory '" + dir.string() +
           "' does not exist — create it before the run");
    }
  }
}

std::string to_string(SpaceMode m) {
  return m == SpaceMode::kInfinite ? "IS" : "FS";
}

std::string to_string(LbMode m) {
  switch (m) {
    case LbMode::kStatic: return "SLB";
    case LbMode::kDynamicPairwise: return "DLB";
    case LbMode::kDiffusion: return "DIFF";
  }
  return "?";
}

std::string to_string(ImageGenMode m) {
  return m == ImageGenMode::kGatherParticles ? "gather" : "sort-last";
}

std::string to_string(SystemCombine c) {
  return c == SystemCombine::kBundled ? "bundled" : "per-system";
}

std::unique_ptr<lb::LoadBalancer> make_lb_policy(const SimSettings& s) {
  switch (s.lb) {
    case LbMode::kStatic:
      return std::make_unique<lb::StaticLB>();
    case LbMode::kDynamicPairwise:
      return std::make_unique<lb::DynamicPairwiseLB>(s.dlb);
    case LbMode::kDiffusion:
      return std::make_unique<lb::DiffusionLB>(s.diffusion);
  }
  return std::make_unique<lb::StaticLB>();
}

std::pair<float, float> initial_interval(const SimSettings& s,
                                         const Scene& scene) {
  if (s.space == SpaceMode::kInfinite) {
    return {-Aabb::kHuge, Aabb::kHuge};
  }
  return {scene.space.lo.axis(s.axis), scene.space.hi.axis(s.axis)};
}

}  // namespace psanim::core

#pragma once

// The image generator process (§3.1.1): collects the particles sent by
// the calculators and renders each frame, plus the external objects in the
// scene. In sort-last mode (§6 extension) it composites partial images
// instead.

#include <cstdint>
#include <string>
#include <vector>

#include "core/frame_loop.hpp"
#include "core/wire.hpp"
#include "mp/communicator.hpp"
#include "obs/role_tracer.hpp"
#include "render/camera.hpp"
#include "render/framebuffer.hpp"
#include "trace/telemetry.hpp"

namespace psanim::core {

class ImageGenerator {
 public:
  ImageGenerator(const SimSettings& settings, const Scene& scene,
                 RoleEnv env);

  void run(mp::Endpoint& ep);

  const trace::Telemetry& telemetry() const { return tel_; }
  /// The last rendered frame.
  const render::Framebuffer& final_frame() const { return fb_; }

 private:
  void render_externals(mp::Endpoint& ep);
  void write_frame_if_due(std::uint32_t frame) const;
  /// Restart-eligible crashes scheduled for `frame`: roll back to the
  /// snapshot and rewind `frame` (returns true). Merge-mode crashes need
  /// no action here — per-frame membership accounts for them.
  bool handle_crashes(mp::Endpoint& ep, std::uint32_t& frame);
  /// Snapshot (telemetry + clock) into the vault + digest to the manager.
  /// The framebuffer is rebuilt from scratch every frame, so it is not
  /// part of the image.
  void capture(mp::Endpoint& ep, std::uint32_t frame);
  /// Restore telemetry from this rank's vault image for frame `f0`.
  void restore(mp::Endpoint& ep, std::uint32_t f0);

  const SimSettings& set_;
  const Scene& scene_;
  RoleEnv env_;
  render::Camera cam_;
  render::Framebuffer fb_;
  trace::Telemetry tel_;
  /// Crashes already handled (by calculator index) — replayed frames must
  /// not re-trigger a rollback.
  std::vector<char> crash_done_;
  /// Observability: span/EventLog fan-out and this rank's metric updates.
  obs::RoleTracer tr_;
  obs::ImageGenMetrics metrics_;
};

}  // namespace psanim::core

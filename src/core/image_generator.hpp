#pragma once

// The image generator process (§3.1.1): collects the particles sent by
// the calculators and renders each frame, plus the external objects in the
// scene. In sort-last mode (§6 extension) it composites partial images
// instead.

#include <cstdint>
#include <string>

#include "core/frame_loop.hpp"
#include "core/wire.hpp"
#include "mp/communicator.hpp"
#include "render/camera.hpp"
#include "render/framebuffer.hpp"
#include "trace/telemetry.hpp"

namespace psanim::core {

class ImageGenerator {
 public:
  ImageGenerator(const SimSettings& settings, const Scene& scene,
                 RoleEnv env);

  void run(mp::Endpoint& ep);

  const trace::Telemetry& telemetry() const { return tel_; }
  /// The last rendered frame.
  const render::Framebuffer& final_frame() const { return fb_; }

 private:
  void render_externals(mp::Endpoint& ep);
  void write_frame_if_due(std::uint32_t frame) const;

  const SimSettings& set_;
  const Scene& scene_;
  RoleEnv env_;
  render::Camera cam_;
  render::Framebuffer fb_;
  trace::Telemetry tel_;
};

}  // namespace psanim::core

#include "core/calculator.hpp"

#include <algorithm>
#include <span>
#include <string>

#include "ckpt/snapshot.hpp"
#include "ckpt/state_codec.hpp"
#include "ckpt/vault.hpp"
#include "collide/pair_collide.hpp"
#include "core/exchange.hpp"
#include "obs/trace.hpp"
#include "render/splat.hpp"

namespace psanim::core {

Calculator::Calculator(const SimSettings& settings, const Scene& scene,
                       RoleEnv env, int index)
    : set_(settings),
      scene_(scene),
      env_(env),
      idx_(index),
      base_rng_(settings.seed),
      cam_(render::Camera::framing(scene.look_center, scene.look_radius,
                                   settings.image_width,
                                   settings.image_height)),
      alive_(static_cast<std::size_t>(settings.ncalc), 1),
      crash_done_(static_cast<std::size_t>(settings.ncalc), 0),
      tr_(settings.obs.trace, settings.events, calc_rank(index)),
      metrics_{env.metrics} {
  peers_.reserve(static_cast<std::size_t>(settings.ncalc));
  for (int c = 0; c < settings.ncalc; ++c) {
    if (c != idx_) peers_.push_back(c);
  }
  const auto [lo, hi] = initial_interval(set_, scene_);
  decomps_.reserve(scene_.systems.size());
  stores_.reserve(scene_.systems.size());
  for (std::size_t s = 0; s < scene_.systems.size(); ++s) {
    decomps_.emplace_back(set_.axis, lo, hi, set_.ncalc);
    const Decomposition& d = decomps_.back();
    stores_.emplace_back(set_.axis, d.domain_lo(idx_), d.domain_hi(idx_),
                         set_.store_slices);
  }
}

void Calculator::charge_particles(mp::Endpoint& ep, double per_particle,
                                  std::size_t n) const {
  ep.charge(env_.cost->compute_s(per_particle, n, env_.rate));
}

void Calculator::report_nonfinite() {
  std::uint64_t total = 0;
  for (const auto& store : stores_) total += store.nonfinite_dropped();
  if (total > nonfinite_reported_) {
    metrics_.on_nonfinite(total - nonfinite_reported_);
    nonfinite_reported_ = total;
  }
}

void Calculator::run(mp::Endpoint& ep) {
  std::vector<double> time_per_system(scene_.systems.size());
  std::vector<std::size_t> count_per_system(scene_.systems.size());
  // Both sinks at once: the span stream and the legacy EventLog labels
  // (verbatim — tests pin Figure 2's exact per-frame label sequence).
  auto note = [&](std::uint32_t frame, const char* label) {
    tr_.instant(ep.clock(), frame, label);
  };
  std::uint32_t frame = 0;
  if (set_.resume_from) {
    const std::uint32_t f0 = *set_.resume_from;
    // Recoveries completed before the snapshot are baked into it.
    for (const auto& c : set_.fault_plan.crashes) {
      if (c.at_frame <= f0) {
        crash_done_[static_cast<std::size_t>(c.calc)] = 1;
      }
    }
    if (ckpt::calc_dead_at(set_.fault_plan, set_.ckpt, idx_, f0 + 1)) {
      return;  // merge-crashed before the snapshot — this rank is gone
    }
    restore(ep, f0);
    epoch_start_ = f0 + 1;
    frame = f0 + 1;
  }
  // Suspend bound (see Manager::run): capture the stop_after snapshot,
  // then exit. Snapshot/ack gates stay on set_.frames.
  const std::uint32_t end =
      set_.stop_after ? *set_.stop_after + 1 : set_.frames;
  while (frame < end) {
    ep.set_trace_frame(frame);
    switch (handle_crashes(ep, frame)) {
      case CrashOutcome::kNone:
        break;
      case CrashOutcome::kRolledBack:
        continue;  // frame was rewound to the snapshot successor
      case CrashOutcome::kDead:
        return;
    }
    ep.charge(env_.cost->frame_overhead_s / env_.rate);
    auto frame_span = tr_.phase(ep.clock(), frame, "frame");
    trace::CalcFrameStats fs;
    fs.frame = frame;
    fs.rank = calc_rank(idx_);

    {
      auto ph = tr_.phase(ep.clock(), frame, "simulate");
      receive_created(ep, frame, fs);
      note(frame, "calculator: addition to local set");
      compute_phase(ep, frame, time_per_system, count_per_system, fs);
    }
    note(frame, "calculator: calculus done");
    {
      auto ph = tr_.phase(ep.clock(), frame, "exchange");
      exchange_phase(ep, frame, fs);
    }
    note(frame, "calculator: particle exchange done");
    if (set_.pair_collisions) {
      auto ph = tr_.phase(ep.clock(), frame, "collide");
      collide_phase(ep, frame, time_per_system);
    }

    // §3.2.4: the reported time must be pro-rata for the post-exchange
    // count, "since the amount of particles of the process changed".
    for (std::size_t s = 0; s < stores_.size(); ++s) {
      const std::size_t now_held = stores_[s].size();
      if (count_per_system[s] > 0) {
        time_per_system[s] *= static_cast<double>(now_held) /
                              static_cast<double>(count_per_system[s]);
      }
      count_per_system[s] = now_held;
      fs.particles_held += now_held;
    }

    report_loads(ep, frame, time_per_system, count_per_system);
    note(frame, "calculator: load information sent");
    // "While the manager evaluates the load balancing, the calculators
    // send the particles to the image generator" (§3.2.5) — the frame goes
    // out before the orders come back.
    {
      auto ph = tr_.phase(ep.clock(), frame, "send-frame");
      send_frame(ep, frame, fs);
    }
    note(frame, "calculator: particles sent to image generator");
    {
      auto ph = tr_.phase(ep.clock(), frame, "balance");
      balance_phase(ep, frame, fs);
    }
    note(frame, "calculator: load balance done, local domains defined");

    tel_.add_calc(fs);
    metrics_.on_frame(fs);
    report_nonfinite();
    if (set_.ckpt.due_after(frame) && frame + 1 < set_.frames) {
      {
        auto ph = tr_.phase(ep.clock(), frame, "snapshot");
        capture(ep, frame);
      }
      note(frame, "checkpoint: snapshot captured");
    }
    frame_span.close();
    ++frame;
  }
}

void Calculator::die(mp::Endpoint& ep, std::uint32_t frame) {
  tr_.instant(ep.clock(), frame, "fault: calculator crashed (fail-stop)");
  // The dying gasp the manager's liveness check consumes; its arrival
  // stamp puts the detection after the death in virtual time.
  mp::Writer w;
  put_control_header(w);
  w.put(frame);
  ep.send(kManagerRank, kTagCrash, std::move(w));
  // Fail-stop: the particles this rank held are gone with it.
  for (auto& store : stores_) store.take_all();
}

Calculator::CrashOutcome Calculator::handle_crashes(mp::Endpoint& ep,
                                                    std::uint32_t& frame) {
  const auto& plan = set_.fault_plan;
  if (plan.crashes.empty()) return CrashOutcome::kNone;
  std::vector<int> pending;
  for (const auto& c : plan.crashes) {
    if (c.at_frame == frame && !crash_done_[static_cast<std::size_t>(c.calc)]) {
      pending.push_back(c.calc);
    }
  }
  if (pending.empty()) return CrashOutcome::kNone;
  std::sort(pending.begin(), pending.end());
  for (const int c : pending) crash_done_[static_cast<std::size_t>(c)] = 1;
  const bool self_dies =
      std::find(pending.begin(), pending.end(), idx_) != pending.end();

  if (set_.ckpt.restarts(frame)) {
    // Coordinated rollback: every role derives the same snapshot frame
    // from (plan, policy) alone, so no extra agreement round is needed.
    const std::uint32_t f0 = *set_.ckpt.latest_snapshot_before(frame);
    if (self_dies) {
      die(ep, frame);
      ep.note_restart();
    }
    drain_stale_acks(ep, frame);
    restore(ep, f0);
    epoch_start_ = f0 + 1;
    frame = f0 + 1;
    return CrashOutcome::kRolledBack;
  }

  if (self_dies) {
    die(ep, frame);
    return CrashOutcome::kDead;
  }
  apply_crashes(ep, frame, pending);
  return CrashOutcome::kNone;
}

void Calculator::apply_crashes(mp::Endpoint& ep, std::uint32_t frame,
                               const std::vector<int>& dead) {
  // Same ascending sweep as Manager::liveness_check: remove all of this
  // frame's deaths from membership first, then merge in index order.
  for (const int c : dead) alive_[static_cast<std::size_t>(c)] = 0;
  for (const int c : dead) {
    const int into = fault::merge_target(alive_, c);
    if (into < 0) {
      throw ProtocolError("calculator: no surviving calculator to inherit");
    }
    for (auto& d : decomps_) d.merge_domain(c, into);
  }
  peers_.clear();
  for (int c = 0; c < set_.ncalc; ++c) {
    if (c != idx_ && alive_[static_cast<std::size_t>(c)]) {
      peers_.push_back(c);
    }
  }
  // Adopt grown bounds (the inheritor's store widens; everyone else's
  // stays put).
  for (std::size_t s = 0; s < stores_.size(); ++s) {
    const Decomposition& d = decomps_[s];
    auto& store = stores_[s];
    const float lo = d.domain_lo(idx_);
    const float hi = d.domain_hi(idx_);
    if (lo != store.lo() || hi != store.hi()) {
      charge_particles(ep, env_.cost->pack_cost, store.size());
      store.reset_bounds(lo, hi);
    }
  }
  tr_.instant(ep.clock(), frame, "recovery: adopted merged domains");
}

void Calculator::capture(mp::Endpoint& ep, std::uint32_t frame) {
  const double capture_start = ep.clock().now();
  ckpt::SnapshotWriter snap(ckpt::Role::kCalculator, ep.rank(), frame,
                            set_.seed);
  {
    auto& w = snap.begin_section(ckpt::SectionId::kStores);
    w.put<std::uint64_t>(stores_.size());
    std::size_t held = 0;
    for (const auto& s : stores_) {
      held += s.size();
      ckpt::encode_store(w, s);
    }
    charge_particles(ep, env_.cost->pack_cost, held);
  }
  {
    auto& w = snap.begin_section(ckpt::SectionId::kDecomps);
    w.put<std::uint64_t>(decomps_.size());
    for (const auto& d : decomps_) d.encode(w);
  }
  {
    auto& w = snap.begin_section(ckpt::SectionId::kTelemetry);
    ckpt::encode_telemetry(w, tel_);
  }
  {
    // Forensics only — virtual clocks are never rolled back on restore.
    auto& w = snap.begin_section(ckpt::SectionId::kClock);
    w.put(ep.clock().now());
  }
  if (set_.obs.flight_recorder && set_.obs.trace) {
    auto& w = snap.begin_section(ckpt::SectionId::kFlightRecorder);
    ckpt::encode_flight_ring(w, set_.obs.trace->rank(ep.rank()),
                             set_.obs.trace->labels());
  }
  std::vector<std::byte> image = snap.finish();
  const auto bytes = static_cast<std::uint64_t>(image.size());
  const std::uint32_t crc =
      ckpt::crc32(std::span<const std::byte>(image.data(), image.size()));
  // Writing the image to stable storage is part of the checkpoint's cost.
  ep.charge_io(env_.disk.write_s(static_cast<std::size_t>(bytes)));
  set_.ckpt_vault->store(ep.rank(), frame, std::move(image));
  metrics_.on_snapshot(ep.clock().now() - capture_start,
                       static_cast<std::size_t>(bytes));
  // Digest to the manager: the coordinator seals the frame's manifest only
  // once every participant's image is accounted for.
  mp::Writer w;
  put_control_header(w);
  w.put(frame);
  w.put<std::int32_t>(ep.rank());
  w.put(bytes);
  w.put(crc);
  ep.send(kManagerRank, kTagCkptDigest, std::move(w));
}

void Calculator::restore(mp::Endpoint& ep, std::uint32_t f0) {
  if (!set_.ckpt_vault) {
    throw ProtocolError("calculator: restart recovery needs a vault");
  }
  const std::vector<std::byte>* image = set_.ckpt_vault->fetch(ep.rank(), f0);
  if (!image) {
    throw ProtocolError("calculator " + std::to_string(idx_) +
                        ": no checkpoint image for frame " +
                        std::to_string(f0));
  }
  ep.charge_io(env_.disk.read_s(image->size()));
  ckpt::SnapshotReader snap(*image);
  if (snap.header().role != ckpt::Role::kCalculator ||
      snap.header().rank != ep.rank() || snap.header().frame != f0) {
    throw ProtocolError("calculator " + std::to_string(idx_) +
                        ": checkpoint header does not match rank/frame");
  }
  {
    auto r = snap.section(ckpt::SectionId::kStores);
    const auto n = r.get<std::uint64_t>();
    if (n != stores_.size()) {
      throw ProtocolError("calculator: snapshot has " + std::to_string(n) +
                          " stores, scene has " +
                          std::to_string(stores_.size()));
    }
    std::size_t held = 0;
    for (auto& s : stores_) {
      ckpt::decode_store(r, s);
      held += s.size();
    }
    charge_particles(ep, env_.cost->pack_cost, held);
  }
  {
    auto r = snap.section(ckpt::SectionId::kDecomps);
    const auto n = r.get<std::uint64_t>();
    if (n != decomps_.size()) {
      throw ProtocolError("calculator: snapshot decomposition count skew");
    }
    for (auto& d : decomps_) d = Decomposition::decode(r);
  }
  {
    auto r = snap.section(ckpt::SectionId::kTelemetry);
    tel_ = ckpt::decode_telemetry(r);
  }
  if (set_.obs.trace && snap.has(ckpt::SectionId::kFlightRecorder)) {
    auto r = snap.section(ckpt::SectionId::kFlightRecorder);
    const auto recovered =
        ckpt::decode_flight_ring(r, set_.obs.trace->labels());
    set_.obs.trace->rank(ep.rank()).emit_recovered(recovered);
  }
  refresh_membership(f0 + 1);
  metrics_.on_restore();
  tr_.instant(ep.clock(), f0, "recovery: restored checkpoint");
}

void Calculator::drain_stale_acks(mp::Endpoint& ep, std::uint32_t frame) {
  // The image generator acked the end of every executed frame of this
  // epoch; we consumed one per frame once two were outstanding. Exactly
  // min(frame - epoch_start_, 2) are still in flight, and non-overtaking
  // delivery guarantees the blocking receives below match them (and not a
  // replayed epoch's acks).
  const std::uint32_t in_flight =
      std::min<std::uint32_t>(frame - epoch_start_, 2);
  for (std::uint32_t i = 0; i < in_flight; ++i) {
    recv_p(ep, kImageGenRank, kTagFrameAck);
  }
}

void Calculator::refresh_membership(std::uint32_t frame) {
  for (int c = 0; c < set_.ncalc; ++c) {
    alive_[static_cast<std::size_t>(c)] =
        ckpt::calc_dead_at(set_.fault_plan, set_.ckpt, c, frame) ? 0 : 1;
  }
  peers_.clear();
  for (int c = 0; c < set_.ncalc; ++c) {
    if (c != idx_ && alive_[static_cast<std::size_t>(c)]) {
      peers_.push_back(c);
    }
  }
}

void Calculator::receive_created(mp::Endpoint& ep, std::uint32_t frame,
                                 trace::CalcFrameStats& fs) {
  const mp::Message m = recv_p(ep, kManagerRank, kTagCreate);
  for (auto& batch : decode_batches(m, frame)) {
    fs.particles_created += batch.particles.size();
    charge_particles(ep, env_.cost->pack_cost, batch.particles.size());
    stores_.at(batch.system).insert_batch(batch.particles);
  }
}

void Calculator::compute_phase(mp::Endpoint& ep, std::uint32_t frame,
                               std::vector<double>& time_per_system,
                               std::vector<std::size_t>& count_per_system,
                               trace::CalcFrameStats& fs) {
  const double phase_start = ep.clock().now();
  for (std::size_t s = 0; s < scene_.systems.size(); ++s) {
    const double t0 = ep.clock().now();
    auto& store = stores_[s];
    const std::size_t held = store.size();
    count_per_system[s] = held;

    // Streams per (system, frame, action, calculator): deterministic for
    // a fixed configuration. Fusing the actions into one store traversal
    // keeps every per-action stream (and hence every virtual-time result)
    // bit-identical to the per-action loop — see psys::FusedPasses.
    psys::FusedPasses fused(
        scene_.systems[s].actions(), set_.dt, [&](std::size_t ai) {
          return base_rng_.derive(s, frame).derive(ai, idx_);
        });
    store.for_each_slice(
        [&](std::span<psys::Particle> ps) { fused.apply(ps); });
    for (const auto& pass : fused.passes()) {
      charge_particles(ep, env_.cost->action_cost * pass.action->cost_weight(),
                       held);
      fs.particles_killed += pass.ctx.killed;
    }
    const std::size_t removed = store.compact_dead();
    charge_particles(ep, env_.cost->pack_cost, removed);

    time_per_system[s] = ep.clock().now() - t0;
  }
  fs.calc_s = ep.clock().now() - phase_start;
}

void Calculator::exchange_phase(mp::Endpoint& ep, std::uint32_t frame,
                                trace::CalcFrameStats& fs) {
  const double phase_start = ep.clock().now();
  const auto deliver = [&](psys::SystemId s,
                           std::vector<psys::Particle>&& ps) {
    charge_particles(ep, env_.cost->pack_cost, ps.size());
    stores_.at(s).insert_batch(ps);
  };
  const auto extract = [&](std::size_t s, Outboxes& outboxes) {
    auto crossers = stores_[s].extract_outside();
    // The §4 sliced layout makes the crosser scan touch only edge checks;
    // charge the scan on what actually crossed plus a per-slice sweep.
    charge_particles(ep, env_.cost->pack_cost, crossers.size());
    std::vector<psys::Particle> back_home;
    route_crossers(decomps_[s], static_cast<psys::SystemId>(s), idx_,
                   std::move(crossers), outboxes, back_home);
    stores_[s].insert_batch(back_home);
  };

  if (set_.combine == SystemCombine::kBundled) {
    // One message per peer per frame carrying every system's crossers.
    Outboxes outboxes(static_cast<std::size_t>(set_.ncalc));
    for (std::size_t s = 0; s < stores_.size(); ++s) extract(s, outboxes);
    const ExchangeStats ex =
        exchange_crossers(ep, frame, peers_, idx_, std::move(outboxes),
                          deliver, set_.phase_timeout_s);
    fs.crossers_out = ex.sent_particles;
    fs.crossers_in = ex.received_particles;
    fs.exchange_bytes = ex.sent_bytes;
  } else {
    // §3.3 alternative: a separate exchange round per system — simpler
    // per-system bookkeeping, systems x (n-1) messages per calculator.
    for (std::size_t s = 0; s < stores_.size(); ++s) {
      Outboxes outboxes(static_cast<std::size_t>(set_.ncalc));
      extract(s, outboxes);
      const ExchangeStats ex =
          exchange_crossers(ep, frame, peers_, idx_, std::move(outboxes),
                            deliver, set_.phase_timeout_s);
      fs.crossers_out += ex.sent_particles;
      fs.crossers_in += ex.received_particles;
      fs.exchange_bytes += ex.sent_bytes;
    }
  }
  fs.exchange_s = ep.clock().now() - phase_start;
}

void Calculator::collide_phase(mp::Endpoint& ep, std::uint32_t frame,
                               std::vector<double>& time_per_system) {
  // Ghost bands go to domain neighbors only — the locality the model's
  // decomposition preserves (§3).
  const float band = set_.collision_radius;
  for (std::size_t s = 0; s < stores_.size(); ++s) {
    const double t0 = ep.clock().now();
    auto& store = stores_[s];
    auto locals = store.take_all();

    // Nearest *alive* neighbor on each side (a crashed domain has zero
    // width, so the band continues into the inheritor's interval).
    const std::vector<int> neighbors = [&] {
      std::vector<int> out;
      for (int c = idx_ - 1; c >= 0; --c) {
        if (alive_[static_cast<std::size_t>(c)]) {
          out.push_back(c);
          break;
        }
      }
      for (int c = idx_ + 1; c < set_.ncalc; ++c) {
        if (alive_[static_cast<std::size_t>(c)]) {
          out.push_back(c);
          break;
        }
      }
      return out;
    }();

    auto ghosts_out = collide::ghost_band(locals, set_.axis, store.lo(),
                                          store.hi(), band);
    charge_particles(ep, env_.cost->pack_cost, ghosts_out.size());
    for (const int nb : neighbors) {
      mp::Writer w = encode_batches(
          frame, {SystemBatch{static_cast<psys::SystemId>(s), ghosts_out}});
      ep.send(calc_rank(nb), kTagGhost, std::move(w));
    }
    std::vector<psys::Particle> ghosts_in;
    for (const int nb : neighbors) {
      for (auto& b :
           decode_batches(recv_p(ep, calc_rank(nb), kTagGhost), frame)) {
        ghosts_in.insert(ghosts_in.end(), b.particles.begin(),
                         b.particles.end());
      }
    }

    // The grid is a member so its cell table and entry storage persist
    // across frames and systems instead of being reallocated per call.
    if (!collide_grid_) collide_grid_.emplace(set_.collision_radius);
    const auto stats = collide::resolve_pair_collisions(
        locals, ghosts_in, set_.collision_radius, set_.collision_restitution,
        &*collide_grid_);
    charge_particles(ep, env_.cost->collide_pair_cost, stats.candidate_pairs);

    store.insert_batch(locals);
    time_per_system[s] += ep.clock().now() - t0;
  }
}

void Calculator::report_loads(mp::Endpoint& ep, std::uint32_t frame,
                              const std::vector<double>& time_per_system,
                              const std::vector<std::size_t>& count_per_system) {
  std::vector<LoadEntry> entries;
  entries.reserve(time_per_system.size());
  for (std::size_t s = 0; s < time_per_system.size(); ++s) {
    entries.push_back(LoadEntry{
        .system = static_cast<std::uint32_t>(s),
        .particles = count_per_system[s],
        .time_s = time_per_system[s],
    });
  }
  ep.send(kManagerRank, kTagLoadReport, encode_load_report(frame, entries));
}

void Calculator::send_frame(mp::Endpoint& ep, std::uint32_t frame,
                            trace::CalcFrameStats& fs) {
  const double phase_start = ep.clock().now();
  // Window-2 flow control: frame payloads are megabytes, far past any MPI
  // eager threshold, so a send completes only against a posted receive.
  // Double buffering at the image generator gives two credits: the send
  // for frame f blocks until frame f-2 was consumed. Without this,
  // calculators would run unboundedly ahead of the renderer; with a
  // deeper window, gather wire time overlaps the next frame's compute.
  if (frame - epoch_start_ >= 2) recv_p(ep, kImageGenRank, kTagFrameAck);
  if (set_.imgen == ImageGenMode::kGatherParticles) {
    std::vector<RenderVertex> verts;
    for (auto& store : stores_) {
      const auto parts = store.snapshot();
      verts.reserve(verts.size() + parts.size());
      for (const auto& p : parts) verts.push_back(to_render_vertex(p));
    }
    charge_particles(ep, env_.cost->pack_cost, verts.size());
    ep.send(kImageGenRank, kTagFrame, encode_frame_vertices(frame, verts));
  } else {
    // Sort-last (§6 extension): rasterize locally, ship the partial image.
    render::Framebuffer fb(set_.image_width, set_.image_height);
    std::size_t rendered = 0;
    for (auto& store : stores_) {
      const auto parts = store.snapshot();
      splat_points(fb, cam_, std::span<const psys::Particle>(parts),
                   render::BlendMode::kAdditive);
      rendered += parts.size();
    }
    charge_particles(ep, env_.cost->render_cost, rendered);
    mp::Writer w;
    w.put(frame);
    w.put_vector(fb.colors());
    ep.send(kImageGenRank, kTagFramePart, std::move(w));
  }
  fs.send_frame_s = ep.clock().now() - phase_start;
}

void Calculator::balance_phase(mp::Endpoint& ep, std::uint32_t frame,
                               trace::CalcFrameStats& fs) {
  const double phase_start = ep.clock().now();
  const auto orders =
      decode_orders(recv_p(ep, kManagerRank, kTagOrders), frame);

  // Donors select particles and derive the new domain edge BEFORE any
  // transfer (§3.2.5: dimensions are negotiated first).
  struct PendingSend {
    std::uint32_t system;
    int partner;
    std::vector<psys::Particle> particles;
  };
  std::vector<PendingSend> pending;
  std::vector<EdgeEntry> proposals;
  for (const auto& o : orders) {
    if (!o.is_send) continue;
    auto& store = stores_.at(o.system);
    const bool toward_left = o.partner < idx_;
    psys::Donation d = toward_left ? store.donate_low(o.count)
                                   : store.donate_high(o.count);
    ep.charge(env_.cost->sort_s(d.sorted_elements, env_.rate));
    // Extraction/copy cost for the donated particles themselves. The
    // receiver has always charged pack_cost per adopted particle (below);
    // the donor previously charged only the boundary sort, so whole-
    // sub-slice donations (sorted_elements == 0) rode for free and the
    // virtual clock undercounted the donor side of every transfer.
    charge_particles(ep, env_.cost->pack_cost, d.particles.size());
    fs.sorted_elements += d.sorted_elements;
    // Every edge between donor and partner moves onto the new boundary —
    // after a crash the pair may not be adjacent (collapsed zero-width
    // domains lie in between), and each of their edges must cross too.
    // Order matters for set_edge's neighbor clamping: raise edges from
    // the high side down, lower them from the low side up. With adjacent
    // partners this degenerates to the single edge min(idx_, partner).
    if (toward_left) {
      for (int e = idx_ - 1; e >= o.partner; --e) {
        proposals.push_back(EdgeEntry{
            .system = o.system, .edge_index = e, .value = d.new_edge});
      }
    } else {
      for (int e = idx_; e < o.partner; ++e) {
        proposals.push_back(EdgeEntry{
            .system = o.system, .edge_index = e, .value = d.new_edge});
      }
    }
    fs.balance_sent += d.particles.size();
    pending.push_back(PendingSend{o.system, o.partner, std::move(d.particles)});
  }

  // Every calculator reports (possibly no) proposals, then receives the
  // consolidated dimensions. "Only after receiving the new domains the
  // calculators effectively start the donation and reception."
  ep.send(kManagerRank, kTagEdgeProposal, encode_edges(frame, proposals));
  const auto changed =
      decode_edges(recv_p(ep, kManagerRank, kTagDomains), frame);
  for (const auto& e : changed) {
    decomps_.at(e.system).set_edge(e.edge_index, e.value);
  }
  for (const auto& e : changed) {
    const Decomposition& d = decomps_.at(e.system);
    auto& store = stores_.at(e.system);
    const float lo = d.domain_lo(idx_);
    const float hi = d.domain_hi(idx_);
    if (lo != store.lo() || hi != store.hi()) {
      charge_particles(ep, env_.cost->pack_cost, store.size());
      store.reset_bounds(lo, hi);
    }
  }

  for (auto& p : pending) {
    mp::Writer w = encode_batches(
        frame, {SystemBatch{p.system, std::move(p.particles)}});
    ep.send(calc_rank(p.partner), kTagBalance, std::move(w));
  }
  for (const auto& o : orders) {
    if (o.is_send) continue;
    const mp::Message m = recv_p(ep, calc_rank(o.partner), kTagBalance);
    for (auto& b : decode_batches(m, frame)) {
      fs.balance_recv += b.particles.size();
      charge_particles(ep, env_.cost->pack_cost, b.particles.size());
      stores_.at(b.system).insert_batch(b.particles);
    }
  }
  fs.balance_s = ep.clock().now() - phase_start;
}

}  // namespace psanim::core

#include "core/decomposition.hpp"

#include <algorithm>
#include <stdexcept>

namespace psanim::core {

Decomposition::Decomposition(int axis, float lo, float hi, int n)
    : axis_(axis), lo_(lo), hi_(hi) {
  if (axis < 0 || axis > 2) {
    throw std::invalid_argument("Decomposition: axis must be 0, 1 or 2");
  }
  if (n < 1) {
    throw std::invalid_argument("Decomposition: need at least one domain");
  }
  if (!(lo < hi)) {
    throw std::invalid_argument("Decomposition: lo must be < hi");
  }
  edges_.reserve(static_cast<std::size_t>(n) - 1);
  for (int i = 1; i < n; ++i) {
    const float t = static_cast<float>(i) / static_cast<float>(n);
    edges_.push_back(lo + (hi - lo) * t);
  }
}

Decomposition Decomposition::infinite_space(int axis, int n) {
  return Decomposition(axis, -Aabb::kHuge, Aabb::kHuge, n);
}

void Decomposition::set_edge(int i, float value) {
  auto& e = edges_.at(static_cast<std::size_t>(i));
  // Edges must stay ordered: clamp between the neighbors.
  const float lo_bound =
      i > 0 ? edges_[static_cast<std::size_t>(i) - 1] : -Aabb::kHuge;
  const float hi_bound = static_cast<std::size_t>(i) + 1 < edges_.size()
                             ? edges_[static_cast<std::size_t>(i) + 1]
                             : Aabb::kHuge;
  e = std::clamp(value, lo_bound, hi_bound);
}

void Decomposition::merge_domain(int dead, int into) {
  if (dead < 0 || dead >= domain_count() || into < 0 ||
      into >= domain_count() || dead == into) {
    throw std::invalid_argument("Decomposition::merge_domain: bad domains");
  }
  // Move edges toward the inheritor in clamp-safe order (set_edge clamps
  // against current neighbors, so edges are relocated from the dead
  // domain's side outward).
  if (into < dead) {
    const float v = domain_hi(dead);
    for (int i = dead - 1; i >= into; --i) set_edge(i, v);
  } else {
    const float v = domain_lo(dead);
    for (int i = dead; i < into; ++i) set_edge(i, v);
  }
}

int Decomposition::owner_of(float key) const {
  // First edge strictly greater than key -> that edge's left domain index.
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), key);
  return static_cast<int>(it - edges_.begin());
}

float Decomposition::domain_lo(int i) const {
  if (i <= 0) return -Aabb::kHuge;
  return edges_.at(static_cast<std::size_t>(i) - 1);
}

float Decomposition::domain_hi(int i) const {
  if (i >= static_cast<int>(edges_.size())) return Aabb::kHuge;
  return edges_.at(static_cast<std::size_t>(i));
}

std::vector<double> Decomposition::nominal_shares() const {
  std::vector<double> shares;
  const int n = domain_count();
  shares.reserve(static_cast<std::size_t>(n));
  const double width = static_cast<double>(hi_) - static_cast<double>(lo_);
  for (int i = 0; i < n; ++i) {
    const double a = std::clamp(static_cast<double>(domain_lo(i)),
                                static_cast<double>(lo_),
                                static_cast<double>(hi_));
    const double b = std::clamp(static_cast<double>(domain_hi(i)),
                                static_cast<double>(lo_),
                                static_cast<double>(hi_));
    shares.push_back(width > 0 ? (b - a) / width : 0.0);
  }
  return shares;
}

void Decomposition::encode(mp::Writer& w) const {
  w.put<std::int32_t>(axis_);
  w.put<float>(lo_);
  w.put<float>(hi_);
  w.put_vector(edges_);
}

Decomposition Decomposition::decode(mp::Reader& r) {
  const auto axis = r.get<std::int32_t>();
  const auto lo = r.get<float>();
  const auto hi = r.get<float>();
  auto edges = r.get_vector<float>();
  // Reconstruct with the right count, then overwrite the edges.
  Decomposition d(axis, lo, hi, static_cast<int>(edges.size()) + 1);
  d.edges_ = std::move(edges);
  return d;
}

}  // namespace psanim::core

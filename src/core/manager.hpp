#pragma once

// The manager process (§3.1.1): creates every particle, scatters them to
// calculators by domain, and runs the load-balancing evaluation each
// frame. It owns the authoritative copy of every system's decomposition.

#include <memory>
#include <vector>

#include "core/decomposition.hpp"
#include "core/frame_loop.hpp"
#include "core/wire.hpp"
#include "math/rng.hpp"
#include "mp/communicator.hpp"
#include "obs/role_tracer.hpp"
#include "trace/telemetry.hpp"

namespace psanim::core {

class Manager {
 public:
  Manager(const SimSettings& settings, const Scene& scene, RoleEnv env,
          std::vector<double> calc_powers);

  /// Execute all frames; called from the manager rank's thread.
  void run(mp::Endpoint& ep);

  const trace::Telemetry& telemetry() const { return tel_; }
  /// Decompositions after the last frame (diagnostics / tests).
  const std::vector<Decomposition>& decompositions() const { return decomps_; }

 private:
  void create_and_scatter(mp::Endpoint& ep, std::uint32_t frame);
  void balance(mp::Endpoint& ep, std::uint32_t frame);
  /// Consume obituaries of calculators whose crash frame is `frame` and
  /// run the policy's recovery: restart-from-checkpoint (returns true,
  /// `frame` rewound to the snapshot successor) or domain merge.
  bool handle_crashes(mp::Endpoint& ep, std::uint32_t& frame);
  /// Merge each dead domain into its nearest surviving neighbor
  /// (ascending; PR-1 degradation path).
  void merge_crashed(mp::Endpoint& ep, std::uint32_t frame,
                     const std::vector<int>& dead);
  /// Coordinated snapshot: capture own state, collect every participant's
  /// digest and seal the frame's manifest in the vault.
  void checkpoint_phase(mp::Endpoint& ep, std::uint32_t frame);
  /// Restore own vault image for snapshot frame `f0`.
  void restore(mp::Endpoint& ep, std::uint32_t f0);
  /// Recompute alive_/alive_list_ for the start of `frame`.
  void refresh_membership(std::uint32_t frame);
  /// Protocol receive with the per-phase deadline from SimSettings.
  mp::Message recv_p(mp::Endpoint& ep, int src, int tag) {
    return ep.recv_within(src, tag, set_.phase_timeout_s);
  }

  const SimSettings& set_;
  const Scene& scene_;
  RoleEnv env_;
  std::vector<double> calc_powers_;  ///< a-priori power weight per calculator
  std::vector<Decomposition> decomps_;
  /// One policy instance per system: pair-alternation state is
  /// per-system, matching the paper's per-system evaluation.
  std::vector<std::unique_ptr<lb::LoadBalancer>> policies_;
  Rng base_rng_;
  trace::Telemetry tel_;
  /// Calculators still running at the current frame (crash recovery).
  std::vector<char> alive_;
  std::vector<int> alive_list_;
  /// Crashes already handled (by calculator index) — replayed frames must
  /// not re-consume an obituary or re-run a recovery.
  std::vector<char> crash_done_;
  /// Observability: span/EventLog fan-out and this rank's metric updates.
  obs::RoleTracer tr_;
  obs::ManagerMetrics metrics_;
};

}  // namespace psanim::core

#include "core/image_generator.hpp"

#include <span>
#include <string>

#include "ckpt/snapshot.hpp"
#include "ckpt/state_codec.hpp"
#include "ckpt/vault.hpp"
#include "obs/trace.hpp"
#include "render/image_io.hpp"
#include "render/objects.hpp"
#include "render/splat.hpp"

namespace psanim::core {

ImageGenerator::ImageGenerator(const SimSettings& settings, const Scene& scene,
                               RoleEnv env)
    : set_(settings),
      scene_(scene),
      env_(env),
      cam_(render::Camera::framing(scene.look_center, scene.look_radius,
                                   settings.image_width,
                                   settings.image_height)),
      fb_(settings.image_width, settings.image_height),
      crash_done_(static_cast<std::size_t>(settings.ncalc), 0),
      tr_(settings.obs.trace, settings.events, kImageGenRank),
      metrics_{env.metrics} {}

void ImageGenerator::render_externals(mp::Endpoint& ep) {
  // §3.2.4: rendering external objects is the image generator's job.
  render::draw_ground_grid(fb_, cam_, scene_.space.lo.y,
                           scene_.look_radius * 1.2f, 16,
                           {0.18f, 0.2f, 0.22f});
  // Charge roughly one splat per grid-line pixel.
  const auto px = static_cast<std::size_t>(
      34 * std::max(set_.image_width, set_.image_height));
  ep.charge(env_.cost->compute_s(env_.cost->render_cost, px, env_.rate));
}

void ImageGenerator::write_frame_if_due(std::uint32_t frame) const {
  if (set_.frame_dir.empty() || set_.write_every == 0) return;
  if (frame % set_.write_every != 0) return;
  render::write_ppm(fb_, set_.frame_dir + "/frame_" + std::to_string(frame) +
                             ".ppm");
}

void ImageGenerator::run(mp::Endpoint& ep) {
  std::uint32_t frame = 0;
  if (set_.resume_from) {
    const std::uint32_t f0 = *set_.resume_from;
    // Recoveries completed before the snapshot are baked into it.
    for (const auto& c : set_.fault_plan.crashes) {
      if (c.at_frame <= f0) {
        crash_done_[static_cast<std::size_t>(c.calc)] = 1;
      }
    }
    restore(ep, f0);
    frame = f0 + 1;
  }
  // Suspend bound (see Manager::run): capture the stop_after snapshot,
  // then exit. Snapshot/ack gates stay on set_.frames.
  const std::uint32_t end =
      set_.stop_after ? *set_.stop_after + 1 : set_.frames;
  while (frame < end) {
    ep.set_trace_frame(frame);
    if (handle_crashes(ep, frame)) continue;  // rolled back; frame rewound
    // Membership under the shared fault plan + recovery policy: gather
    // only from (and ack only to) calculators executing this frame.
    // Alive-at-f is a superset of every later frame's consumers, so no
    // ack a survivor waits for is ever withheld.
    const std::vector<int> alive =
        ckpt::alive_for_exec(set_.fault_plan, set_.ckpt, frame, set_.ncalc);
    ep.charge(env_.cost->frame_overhead_s / env_.rate);
    auto frame_span = tr_.phase(ep.clock(), frame, "frame");
    fb_.clear({0.02f, 0.02f, 0.03f});
    render_externals(ep);

    trace::ImageFrameStats is;
    is.frame = frame;
    const double t0 = ep.clock().now();
    auto render_span = tr_.phase(ep.clock(), frame, "render");

    if (set_.imgen == ImageGenMode::kGatherParticles) {
      for (const int c : alive) {
        const mp::Message m =
            ep.recv_within(calc_rank(c), kTagFrame, set_.phase_timeout_s);
        is.gather_bytes += m.wire_bytes();
        const auto verts = decode_frame_vertices(m, frame);
        splat_points(fb_, cam_, std::span<const RenderVertex>(verts),
                     render::BlendMode::kAdditive);
        ep.charge(env_.cost->compute_s(env_.cost->render_cost, verts.size(),
                                       env_.rate));
        is.particles_rendered += verts.size();
      }
    } else {
      // Sort-last: composite per-calculator partial images.
      for (const int c : alive) {
        const mp::Message m = ep.recv_within(calc_rank(c), kTagFramePart,
                                             set_.phase_timeout_s);
        is.gather_bytes += m.wire_bytes();
        mp::Reader r(m);
        check_frame(r.get<std::uint32_t>(), frame, "image part");
        const auto colors = r.get_vector<render::Color>();
        if (colors.size() != fb_.pixel_count()) {
          throw ProtocolError("image part has wrong pixel count");
        }
        auto& out = fb_.mutable_colors();
        for (std::size_t i = 0; i < out.size(); ++i) out[i] += colors[i];
        // Composite cost: one add per pixel, cheaper than a splat.
        ep.charge(env_.cost->compute_s(env_.cost->render_cost * 0.25,
                                       colors.size(), env_.rate));
      }
    }

    render_span.close();
    is.render_s = ep.clock().now() - t0;
    is.frame_complete_time = ep.clock().now();
    tr_.instant(ep.clock(), frame,
                "image generator: image generation complete");
    tel_.add_image(is);
    metrics_.on_frame(is);
    write_frame_if_due(frame);

    // Release the calculators' next frame sends (rendezvous completion).
    if (frame + 1 < set_.frames) {
      auto ph = tr_.phase(ep.clock(), frame, "frame-barrier");
      for (const int c : alive) {
        ep.send_empty(calc_rank(c), kTagFrameAck);
      }
    }
    if (set_.ckpt.due_after(frame) && frame + 1 < set_.frames) {
      auto ph = tr_.phase(ep.clock(), frame, "snapshot");
      capture(ep, frame);
    }
    frame_span.close();
    ++frame;
  }
}

bool ImageGenerator::handle_crashes(mp::Endpoint& ep, std::uint32_t& frame) {
  const auto& plan = set_.fault_plan;
  if (plan.crashes.empty()) return false;
  bool pending = false;
  for (const auto& c : plan.crashes) {
    if (c.at_frame == frame && !crash_done_[static_cast<std::size_t>(c.calc)]) {
      crash_done_[static_cast<std::size_t>(c.calc)] = 1;
      pending = true;
    }
  }
  if (!pending || !set_.ckpt.restarts(frame)) return false;
  const std::uint32_t f0 = *set_.ckpt.latest_snapshot_before(frame);
  restore(ep, f0);
  frame = f0 + 1;
  return true;
}

void ImageGenerator::capture(mp::Endpoint& ep, std::uint32_t frame) {
  const double capture_start = ep.clock().now();
  ckpt::SnapshotWriter snap(ckpt::Role::kImageGen, ep.rank(), frame,
                            set_.seed);
  {
    auto& w = snap.begin_section(ckpt::SectionId::kTelemetry);
    ckpt::encode_telemetry(w, tel_);
  }
  {
    // Forensics only — virtual clocks are never rolled back on restore.
    auto& w = snap.begin_section(ckpt::SectionId::kClock);
    w.put(ep.clock().now());
  }
  if (set_.obs.flight_recorder && set_.obs.trace) {
    auto& w = snap.begin_section(ckpt::SectionId::kFlightRecorder);
    ckpt::encode_flight_ring(w, set_.obs.trace->rank(ep.rank()),
                             set_.obs.trace->labels());
  }
  std::vector<std::byte> image = snap.finish();
  ep.charge_io(env_.disk.write_s(image.size()));
  metrics_.on_snapshot(ep.clock().now() - capture_start, image.size());
  const auto bytes = static_cast<std::uint64_t>(image.size());
  const std::uint32_t crc =
      ckpt::crc32(std::span<const std::byte>(image.data(), image.size()));
  set_.ckpt_vault->store(ep.rank(), frame, std::move(image));
  mp::Writer w;
  put_control_header(w);
  w.put(frame);
  w.put<std::int32_t>(ep.rank());
  w.put(bytes);
  w.put(crc);
  ep.send(kManagerRank, kTagCkptDigest, std::move(w));
}

void ImageGenerator::restore(mp::Endpoint& ep, std::uint32_t f0) {
  if (!set_.ckpt_vault) {
    throw ProtocolError("image generator: restart recovery needs a vault");
  }
  const std::vector<std::byte>* image = set_.ckpt_vault->fetch(ep.rank(), f0);
  if (!image) {
    throw ProtocolError("image generator: no checkpoint image for frame " +
                        std::to_string(f0));
  }
  ep.charge_io(env_.disk.read_s(image->size()));
  ckpt::SnapshotReader snap(*image);
  if (snap.header().role != ckpt::Role::kImageGen ||
      snap.header().rank != ep.rank() || snap.header().frame != f0) {
    throw ProtocolError("image generator: checkpoint header does not match");
  }
  {
    auto r = snap.section(ckpt::SectionId::kTelemetry);
    tel_ = ckpt::decode_telemetry(r);
  }
  if (set_.obs.trace && snap.has(ckpt::SectionId::kFlightRecorder)) {
    auto r = snap.section(ckpt::SectionId::kFlightRecorder);
    const auto recovered =
        ckpt::decode_flight_ring(r, set_.obs.trace->labels());
    set_.obs.trace->rank(ep.rank()).emit_recovered(recovered);
  }
  metrics_.on_restore();
  tr_.instant(ep.clock(), f0, "recovery: restored checkpoint");
}

}  // namespace psanim::core

#include "core/exchange.hpp"

namespace psanim::core {

void route_crossers(const Decomposition& decomp, psys::SystemId system,
                    int self, std::vector<psys::Particle>&& crossers,
                    Outboxes& outboxes,
                    std::vector<psys::Particle>& back_home) {
  // Group per destination first so each outbox gets one batch per system.
  std::vector<std::vector<psys::Particle>> grouped(outboxes.size());
  for (auto& p : crossers) {
    const int owner = decomp.owner_of(p.pos.axis(decomp.axis()));
    if (owner == self) {
      back_home.push_back(p);
    } else {
      grouped[static_cast<std::size_t>(owner)].push_back(p);
    }
  }
  crossers.clear();
  for (std::size_t c = 0; c < grouped.size(); ++c) {
    if (grouped[c].empty()) continue;
    outboxes[c].push_back(SystemBatch{system, std::move(grouped[c])});
  }
}

ExchangeStats exchange_crossers(
    mp::Endpoint& ep, std::uint32_t frame, std::span<const int> peers,
    int self, Outboxes outboxes,
    const std::function<void(psys::SystemId, std::vector<psys::Particle>&&)>&
        deliver,
    double timeout_s) {
  ExchangeStats stats;
  // Send phase: one message per peer, empty payload = end-of-transmission.
  for (const int c : peers) {
    if (c == self) continue;
    auto& box = outboxes[static_cast<std::size_t>(c)];
    for (const auto& b : box) stats.sent_particles += b.particles.size();
    mp::Writer w = encode_batches(frame, box);
    stats.sent_bytes += w.size() + mp::kEnvelopeBytes;
    ep.send(calc_rank(c), kTagExchange, std::move(w));
  }
  // Receive phase: exactly one message from every peer, ascending order.
  for (const int c : peers) {
    if (c == self) continue;
    const mp::Message m = ep.recv_within(calc_rank(c), kTagExchange,
                                         timeout_s);
    for (auto& batch : decode_batches(m, frame)) {
      stats.received_particles += batch.particles.size();
      deliver(batch.system, std::move(batch.particles));
    }
  }
  return stats;
}

ExchangeStats exchange_crossers(
    mp::Endpoint& ep, std::uint32_t frame, int ncalc, int self,
    Outboxes outboxes,
    const std::function<void(psys::SystemId, std::vector<psys::Particle>&&)>&
        deliver) {
  std::vector<int> peers;
  peers.reserve(static_cast<std::size_t>(ncalc));
  for (int c = 0; c < ncalc; ++c) {
    if (c != self) peers.push_back(c);
  }
  return exchange_crossers(ep, frame, peers, self, std::move(outboxes),
                           deliver);
}

}  // namespace psanim::core

#pragma once

// Per-system 1-D domain decomposition (§3.1.4, Figure 1).
//
// Each particle system's space is cut into n slices along one axis, one
// slice per calculator, in calculator order. All processes know every
// system's current edges — that is what lets a crosser be sent straight to
// its new owner instead of broadcast, and what the balancer mutates when
// it moves particles between neighbors.
//
// The outermost "edges" are conceptual: slice 0 owns everything left of
// edge 0 and slice n-1 everything right of edge n-2, so particles that
// wander outside the nominal space always have an owner. Infinite space
// (IS) is the nominal interval [-kHuge, kHuge]; finite space (FS) the
// scenario's own extent. The paper's Table 1 IS-SLB column is exactly the
// pathology of splitting the huge interval uniformly.

#include <cstdint>
#include <vector>

#include "math/aabb.hpp"
#include "mp/message.hpp"

namespace psanim::core {

class Decomposition {
 public:
  /// Uniform split of [lo, hi] into `n` slices along `axis` (0=x,1=y,2=z).
  Decomposition(int axis, float lo, float hi, int n);

  /// IS-mode split: uniform over [-kHuge, kHuge].
  static Decomposition infinite_space(int axis, int n);

  int axis() const { return axis_; }
  int domain_count() const { return static_cast<int>(edges_.size()) + 1; }
  float nominal_lo() const { return lo_; }
  float nominal_hi() const { return hi_; }

  /// Internal edges, ascending; edge i separates domain i from i+1.
  const std::vector<float>& edges() const { return edges_; }
  void set_edge(int i, float value);

  /// Which calculator owns a particle at coordinate `key`.
  int owner_of(float key) const;

  /// Crash recovery: hand domain `dead`'s whole interval to domain
  /// `into`. Every edge between them moves onto the shared boundary, so
  /// `dead` (and any already-collapsed domain in between) ends up with
  /// zero width — and `owner_of`'s upper_bound never resolves to a
  /// zero-width domain, so the dead calculator owns no coordinate.
  void merge_domain(int dead, int into);

  /// Owned interval of domain i. Edge domains extend to +/-kHuge so every
  /// coordinate has exactly one owner.
  float domain_lo(int i) const;
  float domain_hi(int i) const;

  /// Fraction of the *nominal* interval each domain covers (diagnostics).
  std::vector<double> nominal_shares() const;

  /// Wire round-trip for the manager's domain broadcasts.
  void encode(mp::Writer& w) const;
  static Decomposition decode(mp::Reader& r);

  bool operator==(const Decomposition&) const = default;

 private:
  int axis_;
  float lo_;
  float hi_;
  std::vector<float> edges_;  // n-1 internal edges, ascending
};

}  // namespace psanim::core

#pragma once

// Collision detection helpers on top of psys::Domain surfaces.
//
// The model's whole reason for preserving data locality (§3) is to let the
// user plug in efficient particle collision detection; this module supplies
// that plug-in: segment-vs-surface tests for fast particles, a triangle
// collider (meshes reduce to triangles), and the spatial structures for
// particle-particle tests.

#include <optional>

#include "psys/source_domain.hpp"

namespace psanim::collide {

/// Result of a swept test along segment a -> b.
struct SweepHit {
  float t = 0.0f;   ///< parameter along the segment, in [0, 1]
  Vec3 point;       ///< contact point
  Vec3 normal;      ///< outward surface normal at contact
};

/// Test whether the segment from `a` to `b` crosses the domain's surface
/// (outside -> inside). Bisection on signed distance: robust for every
/// Domain kind at the cost of a few surface() queries. Returns nullopt if
/// both endpoints are on the outside or both inside.
std::optional<SweepHit> sweep_segment(const psys::Domain& surface, Vec3 a,
                                      Vec3 b, int iterations = 12);

/// Triangle as a psys::Domain (samples uniformly, signed distance to the
/// triangle's plane restricted to its footprint).
psys::DomainPtr make_triangle(Vec3 a, Vec3 b, Vec3 c);

}  // namespace psanim::collide

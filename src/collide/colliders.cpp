#include "collide/colliders.hpp"

#include <cmath>

namespace psanim::collide {

using psys::Domain;
using psys::DomainKind;
using psys::SurfaceHit;

std::optional<SweepHit> sweep_segment(const Domain& surface, Vec3 a, Vec3 b,
                                      int iterations) {
  const float da = surface.surface(a).signed_distance;
  const float db = surface.surface(b).signed_distance;
  if (da < 0.0f || db >= 0.0f) return std::nullopt;  // need outside -> inside
  // Bisect for the zero crossing of the signed distance.
  float t_lo = 0.0f;  // outside
  float t_hi = 1.0f;  // inside
  for (int i = 0; i < iterations; ++i) {
    const float t = 0.5f * (t_lo + t_hi);
    const float d = surface.surface(lerp(a, b, t)).signed_distance;
    if (d >= 0.0f) t_lo = t;
    else t_hi = t;
  }
  SweepHit hit;
  hit.t = t_lo;
  hit.point = lerp(a, b, t_lo);
  hit.normal = surface.surface(hit.point).normal;
  return hit;
}

namespace {

class TriangleDomain final : public Domain {
 public:
  TriangleDomain(Vec3 a, Vec3 b, Vec3 c) : a_(a), b_(b), c_(c) {
    n_ = (b - a).cross(c - a).normalized();
  }
  DomainKind kind() const override { return DomainKind::kPlane; }

  Vec3 generate(Rng& rng) const override {
    // Uniform barycentric sample (square-root trick).
    const float r1 = std::sqrt(rng.next_float());
    const float r2 = rng.next_float();
    return a_ * (1 - r1) + b_ * (r1 * (1 - r2)) + c_ * (r1 * r2);
  }

  bool within(Vec3 p) const override {
    return std::fabs(surface(p).signed_distance) <= 1e-5f;
  }

  SurfaceHit surface(Vec3 p) const override {
    const Vec3 closest = closest_point(p);
    const Vec3 d = p - closest;
    const float dist = d.length();
    const float height = (p - a_).dot(n_);
    // If the closest feature is the interior face (distance equals the
    // perpendicular height), report the signed height with the face
    // normal so Bounce reflects off the plane side the particle came from.
    if (dist <= std::fabs(height) + 1e-5f) {
      return {height, n_};
    }
    // Closest feature is an edge/vertex: outside the footprint, positive.
    return {dist, dist > 1e-7f ? d / dist : n_};
  }

  Aabb bounds() const override {
    Aabb box = Aabb::empty();
    box.extend(a_);
    box.extend(b_);
    box.extend(c_);
    return box;
  }

 private:
  /// Ericson, "Real-Time Collision Detection", closest point on triangle.
  Vec3 closest_point(Vec3 p) const {
    const Vec3 ab = b_ - a_;
    const Vec3 ac = c_ - a_;
    const Vec3 ap = p - a_;
    const float d1 = ab.dot(ap);
    const float d2 = ac.dot(ap);
    if (d1 <= 0 && d2 <= 0) return a_;
    const Vec3 bp = p - b_;
    const float d3 = ab.dot(bp);
    const float d4 = ac.dot(bp);
    if (d3 >= 0 && d4 <= d3) return b_;
    const float vc = d1 * d4 - d3 * d2;
    if (vc <= 0 && d1 >= 0 && d3 <= 0) return a_ + ab * (d1 / (d1 - d3));
    const Vec3 cp = p - c_;
    const float d5 = ab.dot(cp);
    const float d6 = ac.dot(cp);
    if (d6 >= 0 && d5 <= d6) return c_;
    const float vb = d5 * d2 - d1 * d6;
    if (vb <= 0 && d2 >= 0 && d6 <= 0) return a_ + ac * (d2 / (d2 - d6));
    const float va = d3 * d6 - d5 * d4;
    if (va <= 0 && (d4 - d3) >= 0 && (d5 - d6) >= 0) {
      return b_ + (c_ - b_) * ((d4 - d3) / ((d4 - d3) + (d5 - d6)));
    }
    const float denom = 1.0f / (va + vb + vc);
    return a_ + ab * (vb * denom) + ac * (vc * denom);
  }

  Vec3 a_, b_, c_, n_;
};

}  // namespace

psys::DomainPtr make_triangle(Vec3 a, Vec3 b, Vec3 c) {
  return std::make_shared<TriangleDomain>(a, b, c);
}

}  // namespace psanim::collide

#include "collide/response.hpp"

namespace psanim::collide {

Vec3 reflect(Vec3 vel, Vec3 normal, float restitution, float friction) {
  const float vn = vel.dot(normal);
  if (vn >= 0.0f) return vel;  // separating already
  const Vec3 normal_part = normal * vn;
  const Vec3 tangent_part = vel - normal_part;
  return tangent_part * (1.0f - friction) - normal_part * restitution;
}

Vec3 resolve_penetration(Vec3 pos, Vec3 normal, float penetration,
                         float epsilon) {
  if (penetration <= 0.0f) return pos;
  return pos + normal * (penetration + epsilon);
}

void sphere_impulse(Vec3& vel_a, float mass_a, Vec3& vel_b, float mass_b,
                    Vec3 normal, float restitution) {
  const Vec3 rel = vel_b - vel_a;
  const float vn = rel.dot(normal);
  if (vn >= 0.0f) return;  // separating
  const float inv_a = mass_a > 0 ? 1.0f / mass_a : 0.0f;
  const float inv_b = mass_b > 0 ? 1.0f / mass_b : 0.0f;
  const float denom = inv_a + inv_b;
  if (denom <= 0.0f) return;
  const float j = -(1.0f + restitution) * vn / denom;
  vel_a -= normal * (j * inv_a);
  vel_b += normal * (j * inv_b);
}

}  // namespace psanim::collide

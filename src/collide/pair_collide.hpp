#pragma once

// Particle-particle collision — the user-pluggable procedure the model's
// locality-preserving decomposition exists to make affordable (§3).
//
// Each calculator resolves collisions among its own particles plus a read-
// only "ghost" band of neighbor particles that lie within one collision
// radius of the shared domain edge. Ghosts influence local particles but
// are never modified (their owner performs the symmetric update on its
// side — both sides see the same pair and apply the same impulse to their
// own particle).

#include <cstddef>
#include <span>
#include <vector>

#include "collide/spatial_hash.hpp"
#include "psys/particle.hpp"

namespace psanim::collide {

struct PairCollideStats {
  std::size_t candidate_pairs = 0;  ///< pairs examined by the broad phase
  std::size_t contacts = 0;         ///< pairs actually colliding
  std::size_t ghost_contacts = 0;   ///< local-vs-ghost contacts
};

/// Resolve collisions among `locals` (updated in place), considering
/// `ghosts` as immovable-by-us partners. `radius` is the collision
/// distance (sum of two particle radii); `restitution` the bounciness.
/// Pass a persistent `grid` (with cell_size == radius) to reuse its
/// storage across calls; with nullptr a grid is built on the spot.
PairCollideStats resolve_pair_collisions(std::span<psys::Particle> locals,
                                         std::span<const psys::Particle> ghosts,
                                         float radius, float restitution,
                                         SpatialHash* grid = nullptr);

/// Particles from `locals` within `band` of either domain edge along
/// `axis` — the ghost band shipped to neighbors.
std::vector<psys::Particle> ghost_band(std::span<const psys::Particle> locals,
                                       int axis, float lo_edge, float hi_edge,
                                       float band);

}  // namespace psanim::collide

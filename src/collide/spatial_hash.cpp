#include "collide/spatial_hash.hpp"

#include <cmath>
#include <stdexcept>

namespace psanim::collide {

namespace {
bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }
}  // namespace

SpatialHash::SpatialHash(float cell_size, std::size_t table_size)
    : cell_size_(cell_size),
      mask_(static_cast<std::uint32_t>(table_size - 1)) {
  if (cell_size <= 0) {
    throw std::invalid_argument("SpatialHash: cell_size must be positive");
  }
  if (!is_power_of_two(table_size)) {
    throw std::invalid_argument("SpatialHash: table_size must be 2^k");
  }
  starts_.assign(table_size + 1, 0);
}

std::uint32_t SpatialHash::hash_cell(std::int32_t cx, std::int32_t cy,
                                     std::int32_t cz) const {
  // Teschner et al. (2003) large-prime cell hash.
  const auto ux = static_cast<std::uint32_t>(cx);
  const auto uy = static_cast<std::uint32_t>(cy);
  const auto uz = static_cast<std::uint32_t>(cz);
  return ((ux * 73856093u) ^ (uy * 19349663u) ^ (uz * 83492791u)) & mask_;
}

std::uint32_t SpatialHash::cell_of(Vec3 p) const {
  return hash_cell(static_cast<std::int32_t>(std::floor(p.x / cell_size_)),
                   static_cast<std::int32_t>(std::floor(p.y / cell_size_)),
                   static_cast<std::int32_t>(std::floor(p.z / cell_size_)));
}

void SpatialHash::build(std::span<const psys::Particle> particles) {
  std::fill(starts_.begin(), starts_.end(), 0u);
  // Counting sort: histogram, prefix-sum, scatter.
  for (const auto& p : particles) ++starts_[cell_of(p.pos) + 1];
  for (std::size_t h = 1; h < starts_.size(); ++h) starts_[h] += starts_[h - 1];
  entries_.resize(particles.size());
  scratch_.assign(starts_.begin(), starts_.end() - 1);
  for (std::uint32_t i = 0; i < particles.size(); ++i) {
    entries_[scratch_[cell_of(particles[i].pos)]++] = i;
  }
}

std::size_t SpatialHash::cell_count_used() const {
  std::size_t used = 0;
  for (std::size_t h = 0; h + 1 < starts_.size(); ++h) {
    if (starts_[h + 1] > starts_[h]) ++used;
  }
  return used;
}

}  // namespace psanim::collide

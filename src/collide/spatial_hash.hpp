#pragma once

// Uniform-grid spatial hash over particles, used by the particle-particle
// collision pass. Cells are cubes of side `cell_size`; neighbor queries
// visit the 27 surrounding cells. Rebuilt each frame (counting sort into a
// flat index), which beats incremental updates for fully dynamic particle
// sets; keep one instance alive across frames so the table, entry and
// cursor storage are reused instead of reallocated per build.

#include <cstdint>
#include <span>
#include <vector>

#include "math/vec.hpp"
#include "psys/particle.hpp"

namespace psanim::collide {

class SpatialHash {
 public:
  /// `cell_size` should be >= the largest collision diameter.
  explicit SpatialHash(float cell_size, std::size_t table_size = 1 << 14);

  /// Rebuild from the given particles (indices refer into this span).
  void build(std::span<const psys::Particle> particles);

  /// Invoke fn(i, j) for every unordered pair (i < j) of particle indices
  /// whose positions are within `radius`. Returns the number of candidate
  /// pairs examined (for cost accounting).
  template <typename Fn>
  std::size_t for_each_pair(std::span<const psys::Particle> particles,
                            float radius, Fn&& fn) const;

  /// Invoke fn(j) for every particle index within `radius` of `p`.
  template <typename Fn>
  std::size_t for_each_near(std::span<const psys::Particle> particles, Vec3 p,
                            float radius, Fn&& fn) const;

  std::size_t cell_count_used() const;
  float cell_size() const { return cell_size_; }

 private:
  std::uint32_t hash_cell(std::int32_t cx, std::int32_t cy,
                          std::int32_t cz) const;
  std::uint32_t cell_of(Vec3 p) const;

  float cell_size_;
  std::uint32_t mask_;
  // Counting-sort layout: starts_[h]..starts_[h+1] indexes into entries_.
  std::vector<std::uint32_t> starts_;
  std::vector<std::uint32_t> entries_;
  // Scatter cursors, kept as a member so a reused grid rebuilds with zero
  // allocations once the vectors reach steady-state capacity.
  std::vector<std::uint32_t> scratch_;
};

// --- template implementations ---

template <typename Fn>
std::size_t SpatialHash::for_each_near(
    std::span<const psys::Particle> particles, Vec3 p, float radius,
    Fn&& fn) const {
  std::size_t examined = 0;
  const float r2 = radius * radius;
  const auto base_x = static_cast<std::int32_t>(std::floor(p.x / cell_size_));
  const auto base_y = static_cast<std::int32_t>(std::floor(p.y / cell_size_));
  const auto base_z = static_cast<std::int32_t>(std::floor(p.z / cell_size_));
  for (std::int32_t dx = -1; dx <= 1; ++dx) {
    for (std::int32_t dy = -1; dy <= 1; ++dy) {
      for (std::int32_t dz = -1; dz <= 1; ++dz) {
        const std::uint32_t h = hash_cell(base_x + dx, base_y + dy, base_z + dz);
        for (std::uint32_t k = starts_[h]; k < starts_[h + 1]; ++k) {
          const std::uint32_t j = entries_[k];
          ++examined;
          if ((particles[j].pos - p).length2() <= r2) fn(j);
        }
      }
    }
  }
  return examined;
}

template <typename Fn>
std::size_t SpatialHash::for_each_pair(
    std::span<const psys::Particle> particles, float radius, Fn&& fn) const {
  std::size_t examined = 0;
  for (std::uint32_t i = 0; i < particles.size(); ++i) {
    examined += for_each_near(particles, particles[i].pos, radius,
                              [&](std::uint32_t j) {
                                if (j > i) fn(i, j);
                              });
  }
  return examined;
}

}  // namespace psanim::collide

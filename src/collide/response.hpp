#pragma once

// Collision response: velocity reflection and penetration resolution,
// shared by the Bounce action, the swept tests and the particle-particle
// solver.

#include "math/vec.hpp"

namespace psanim::collide {

/// Reflect `vel` off a surface with outward `normal`.
/// The normal component is scaled by -restitution, the tangential part by
/// (1 - friction). If the velocity already points away from the surface it
/// is returned unchanged.
Vec3 reflect(Vec3 vel, Vec3 normal, float restitution, float friction);

/// Push a penetrating point out along the normal by `penetration` plus a
/// small epsilon so it doesn't re-collide on the next test.
Vec3 resolve_penetration(Vec3 pos, Vec3 normal, float penetration,
                         float epsilon = 1e-4f);

/// Impulse exchange for two equal-radius spheres (masses honored).
/// Velocities are updated in place; `normal` points from a to b.
void sphere_impulse(Vec3& vel_a, float mass_a, Vec3& vel_b, float mass_b,
                    Vec3 normal, float restitution);

}  // namespace psanim::collide

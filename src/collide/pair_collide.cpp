#include "collide/pair_collide.hpp"

#include <optional>
#include <stdexcept>

#include "collide/response.hpp"

namespace psanim::collide {

PairCollideStats resolve_pair_collisions(std::span<psys::Particle> locals,
                                         std::span<const psys::Particle> ghosts,
                                         float radius, float restitution,
                                         SpatialHash* reuse) {
  PairCollideStats stats;
  if (locals.empty() || radius <= 0) return stats;

  std::optional<SpatialHash> own;
  if (reuse == nullptr) {
    own.emplace(radius);
    reuse = &*own;
  } else if (reuse->cell_size() != radius) {
    throw std::invalid_argument(
        "resolve_pair_collisions: reused grid cell_size != radius");
  }
  SpatialHash& grid = *reuse;
  grid.build(std::span<const psys::Particle>(locals.data(), locals.size()));

  // Local-local pairs: symmetric impulse.
  stats.candidate_pairs += grid.for_each_pair(
      std::span<const psys::Particle>(locals.data(), locals.size()), radius,
      [&](std::uint32_t i, std::uint32_t j) {
        auto& a = locals[i];
        auto& b = locals[j];
        if (a.dead() || b.dead()) return;
        const Vec3 d = b.pos - a.pos;
        const float dist2 = d.length2();
        if (dist2 <= 0 || dist2 > radius * radius) return;
        const Vec3 n = d.normalized();
        sphere_impulse(a.vel, a.mass, b.vel, b.mass, n, restitution);
        ++stats.contacts;
      });

  // Local-ghost pairs: update only the local side; the ghost's owner
  // applies the mirror-image impulse in its own pass.
  for (const auto& g : ghosts) {
    if (g.dead()) continue;
    stats.candidate_pairs += grid.for_each_near(
        std::span<const psys::Particle>(locals.data(), locals.size()), g.pos,
        radius, [&](std::uint32_t i) {
          auto& a = locals[i];
          if (a.dead()) return;
          const Vec3 d = g.pos - a.pos;
          const float dist2 = d.length2();
          if (dist2 <= 0 || dist2 > radius * radius) return;
          const Vec3 n = d.normalized();
          Vec3 ghost_vel = g.vel;  // scratch: ghost not written back
          sphere_impulse(a.vel, a.mass, ghost_vel, g.mass, n, restitution);
          ++stats.contacts;
          ++stats.ghost_contacts;
        });
  }
  return stats;
}

std::vector<psys::Particle> ghost_band(std::span<const psys::Particle> locals,
                                       int axis, float lo_edge, float hi_edge,
                                       float band) {
  std::vector<psys::Particle> out;
  for (const auto& p : locals) {
    if (p.dead()) continue;
    const float k = p.pos.axis(axis);
    if (k - lo_edge < band || hi_edge - k < band) out.push_back(p);
  }
  return out;
}

}  // namespace psanim::collide

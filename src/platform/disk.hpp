#pragma once

// Storage model: per-node disk read/write bandwidth plus a per-operation
// seek/issue latency.
//
// Checkpoint images were free to store and fetch before this model
// existed, which made every checkpoint-interval study optimistic: the
// vault stands in for a parallel filesystem or a node-local scratch disk,
// and on 2005-era clusters writing a multi-megabyte snapshot was often
// *the* cost of a small interval. A DiskModel turns each vault store and
// fetch into virtual seconds the owning rank is charged:
//
//     write(bytes) = seek + bytes / write_bandwidth
//     read(bytes)  = seek + bytes / read_bandwidth
//
// The default model is free (all fields zero), so existing runs — and the
// golden determinism corpus — are bit-identical unless a platform or a
// CkptPolicy opts into a real disk.

#include <cstddef>
#include <string>

namespace psanim::platform {

struct DiskModel {
  /// Sustained read bandwidth in bytes/s; <= 0 means free (no charge).
  double read_bps = 0.0;
  /// Sustained write bandwidth in bytes/s; <= 0 means free (no charge).
  double write_bps = 0.0;
  /// Fixed per-operation latency (head seek, RPC issue) in seconds.
  double seek_s = 0.0;

  /// True when this model charges nothing — the historical behavior.
  bool free() const {
    return read_bps <= 0.0 && write_bps <= 0.0 && seek_s <= 0.0;
  }

  double read_s(std::size_t bytes) const {
    if (free()) return 0.0;
    double t = seek_s;
    if (read_bps > 0.0) t += static_cast<double>(bytes) / read_bps;
    return t;
  }

  double write_s(std::size_t bytes) const {
    if (free()) return 0.0;
    double t = seek_s;
    if (write_bps > 0.0) t += static_cast<double>(bytes) / write_bps;
    return t;
  }

  /// No disk model: reads and writes are free (the pre-platform behavior).
  static DiskModel none() { return {}; }
  /// 2005-era local scratch disk: ~50 MB/s sequential, ~8 ms seek.
  static DiskModel scratch_hdd() { return {50e6, 45e6, 8e-3}; }
  /// NFS over Fast-Ethernet: the wire is the bottleneck, RPC round trip.
  static DiskModel nfs() { return {10e6, 8e6, 2e-3}; }
  /// Striped parallel filesystem: `stripes` scratch disks in parallel.
  static DiskModel pfs(int stripes);
};

std::string to_string(const DiskModel& d);

}  // namespace psanim::platform

#include "platform/disk.hpp"

#include <cstdio>

namespace psanim::platform {

DiskModel DiskModel::pfs(int stripes) {
  const double n = stripes > 0 ? static_cast<double>(stripes) : 1.0;
  DiskModel base = scratch_hdd();
  // Striping multiplies sustained bandwidth; the issue latency stays (one
  // metadata round trip per operation).
  return {base.read_bps * n, base.write_bps * n, base.seek_s};
}

std::string to_string(const DiskModel& d) {
  if (d.free()) return "disk:none";
  char buf[96];
  std::snprintf(buf, sizeof(buf), "disk:read=%g,write=%g,seek=%g", d.read_bps,
                d.write_bps, d.seek_s);
  return buf;
}

}  // namespace psanim::platform

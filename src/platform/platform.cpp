#include "platform/platform.hpp"

#include <cstdio>
#include <stdexcept>
#include <string>

namespace psanim::platform {

namespace {

std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string link_json(const Link& l) {
  return "{\"kind\":\"" + net::to_string(l.kind) +
         "\",\"latency_s\":" + fmt(l.latency_s) +
         ",\"bandwidth_bps\":" + fmt(l.bandwidth_bps) +
         ",\"shared\":" + (l.shared ? "true" : "false") + "}";
}

/// Unordered-pair index for dragonfly global links, i < j among g groups.
std::size_t pair_index(std::size_t i, std::size_t j, std::size_t g) {
  if (i > j) std::swap(i, j);
  return i * (2 * g - i - 1) / 2 + (j - i - 1);
}

}  // namespace

std::string to_string(ZoneKind k) {
  switch (k) {
    case ZoneKind::kCrossbar: return "crossbar";
    case ZoneKind::kFatTree: return "fattree";
    case ZoneKind::kDragonfly: return "dragonfly";
    case ZoneKind::kWan: return "wan";
  }
  return "?";
}

Platform Platform::crossbar(std::size_t n, const Link& host,
                            double backplane_bps) {
  if (n == 0) {
    throw std::invalid_argument("platform: crossbar needs at least one node");
  }
  Platform p;
  p.name = "crossbar";
  p.root.kind = ZoneKind::kCrossbar;
  p.root.nodes = n;
  p.root.host_links.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Link l = host;
    l.name = "host" + std::to_string(i);
    p.root.host_links.push_back(static_cast<LinkId>(p.links.size()));
    p.links.push_back(std::move(l));
  }
  if (backplane_bps > 0.0) {
    Link bp = host;
    bp.name = "xbar";
    bp.bandwidth_bps = backplane_bps;
    bp.latency_s = 0.0;  // fabric crossing; port latency is the host link's
    p.root.backplane = static_cast<LinkId>(p.links.size());
    p.links.push_back(std::move(bp));
  }
  return p;
}

Platform Platform::fat_tree(std::size_t n, std::size_t hosts_per_edge,
                            std::size_t uplinks, const Link& host,
                            const Link& up) {
  if (n == 0 || hosts_per_edge == 0 || uplinks == 0) {
    throw std::invalid_argument(
        "platform: fat-tree needs nodes >= 1, hosts_per_edge >= 1 and "
        "uplinks >= 1");
  }
  Platform p;
  p.name = "fattree";
  p.root.kind = ZoneKind::kFatTree;
  p.root.nodes = n;
  p.root.hosts_per_edge = hosts_per_edge;
  p.root.uplinks = uplinks;
  for (std::size_t i = 0; i < n; ++i) {
    Link l = host;
    l.name = "host" + std::to_string(i);
    p.root.host_links.push_back(static_cast<LinkId>(p.links.size()));
    p.links.push_back(std::move(l));
  }
  const std::size_t edges = (n + hosts_per_edge - 1) / hosts_per_edge;
  for (std::size_t e = 0; e < edges; ++e) {
    for (std::size_t u = 0; u < uplinks; ++u) {
      Link l = up;
      l.name = "edge" + std::to_string(e) + ".up" + std::to_string(u);
      p.root.up_links.push_back(static_cast<LinkId>(p.links.size()));
      p.links.push_back(std::move(l));
    }
  }
  return p;
}

Platform Platform::dragonfly(std::size_t n, std::size_t groups,
                             std::size_t routers,
                             std::size_t hosts_per_router, const Link& term,
                             const Link& local, const Link& global) {
  if (n == 0 || groups == 0 || routers == 0 || hosts_per_router == 0) {
    throw std::invalid_argument(
        "platform: dragonfly needs nodes, groups, routers and "
        "hosts_per_router all >= 1");
  }
  if (groups * routers * hosts_per_router < n) {
    throw std::invalid_argument(
        "platform: dragonfly " + std::to_string(groups) + "x" +
        std::to_string(routers) + "x" + std::to_string(hosts_per_router) +
        " holds " + std::to_string(groups * routers * hosts_per_router) +
        " nodes, needs " + std::to_string(n));
  }
  Platform p;
  p.name = "dragonfly";
  p.root.kind = ZoneKind::kDragonfly;
  p.root.nodes = n;
  p.root.groups = groups;
  p.root.routers = routers;
  p.root.hosts_per_router = hosts_per_router;
  for (std::size_t i = 0; i < n; ++i) {
    Link l = term;
    l.name = "term" + std::to_string(i);
    p.root.host_links.push_back(static_cast<LinkId>(p.links.size()));
    p.links.push_back(std::move(l));
  }
  for (std::size_t g = 0; g < groups; ++g) {
    for (std::size_t r = 0; r < routers; ++r) {
      Link l = local;
      l.name = "local.g" + std::to_string(g) + ".r" + std::to_string(r);
      p.root.up_links.push_back(static_cast<LinkId>(p.links.size()));
      p.links.push_back(std::move(l));
    }
  }
  for (std::size_t i = 0; i < groups; ++i) {
    for (std::size_t j = i + 1; j < groups; ++j) {
      Link l = global;
      l.name = "global.g" + std::to_string(i) + "-g" + std::to_string(j);
      p.root.global_links.push_back(static_cast<LinkId>(p.links.size()));
      p.links.push_back(std::move(l));
    }
  }
  return p;
}

Platform Platform::wan(std::vector<Platform> sites, const Link& wan_link) {
  if (sites.empty()) {
    throw std::invalid_argument("platform: wan needs at least one site");
  }
  Platform p;
  p.name = "wan";
  p.root.kind = ZoneKind::kWan;
  for (std::size_t s = 0; s < sites.size(); ++s) {
    Platform& site = sites[s];
    if (site.root.kind == ZoneKind::kWan) {
      throw std::invalid_argument(
          "platform: wan sites must be leaf zones (crossbar, fattree or "
          "dragonfly), not nested wan zones");
    }
    const auto link_offset = static_cast<LinkId>(p.links.size());
    for (auto& l : site.links) {
      l.name = "site" + std::to_string(s) + "." + l.name;
      p.links.push_back(std::move(l));
    }
    Zone child = std::move(site.root);
    child.first_node = p.root.nodes;
    for (auto& id : child.host_links) id += link_offset;
    for (auto& id : child.up_links) id += link_offset;
    for (auto& id : child.global_links) id += link_offset;
    if (child.backplane != kNoLink) child.backplane += link_offset;
    Link ul = wan_link;
    ul.name = "site" + std::to_string(s) + ".wan";
    child.wan_uplink = static_cast<LinkId>(p.links.size());
    p.links.push_back(std::move(ul));
    p.root.nodes += child.nodes;
    p.root.children.push_back(std::move(child));
  }
  // The sites' disks win per node; an explicit platform-level disk can be
  // set by the caller afterwards.
  for (const Zone& child : p.root.children) {
    (void)child;
  }
  return p;
}

namespace {

/// Path from node `a` up to the zone's border router, in traversal order.
void egress(const Zone& z, std::size_t a, std::vector<LinkId>& out) {
  const std::size_t la = a - z.first_node;
  switch (z.kind) {
    case ZoneKind::kCrossbar:
      out.push_back(z.host_links[la]);
      if (z.backplane != kNoLink) out.push_back(z.backplane);
      return;
    case ZoneKind::kFatTree: {
      out.push_back(z.host_links[la]);
      const std::size_t e = la / z.hosts_per_edge;
      out.push_back(z.up_links[e * z.uplinks + la % z.uplinks]);
      return;
    }
    case ZoneKind::kDragonfly: {
      out.push_back(z.host_links[la]);
      const std::size_t r = la / z.hosts_per_router;
      const std::size_t g = r / z.routers;
      out.push_back(z.up_links[g * z.routers + r % z.routers]);
      // Group 0 hosts the zone's gateway; other groups pay one global hop.
      if (g != 0) out.push_back(z.global_links[pair_index(0, g, z.groups)]);
      return;
    }
    case ZoneKind::kWan:
      throw std::logic_error("platform: nested wan zones are not supported");
  }
}

/// Mirror of egress: border router down to node `b`, in traversal order.
void ingress(const Zone& z, std::size_t b, std::vector<LinkId>& out) {
  const std::size_t lb = b - z.first_node;
  switch (z.kind) {
    case ZoneKind::kCrossbar:
      if (z.backplane != kNoLink) out.push_back(z.backplane);
      out.push_back(z.host_links[lb]);
      return;
    case ZoneKind::kFatTree: {
      const std::size_t e = lb / z.hosts_per_edge;
      out.push_back(z.up_links[e * z.uplinks + lb % z.uplinks]);
      out.push_back(z.host_links[lb]);
      return;
    }
    case ZoneKind::kDragonfly: {
      const std::size_t r = lb / z.hosts_per_router;
      const std::size_t g = r / z.routers;
      if (g != 0) out.push_back(z.global_links[pair_index(0, g, z.groups)]);
      out.push_back(z.up_links[g * z.routers + r % z.routers]);
      out.push_back(z.host_links[lb]);
      return;
    }
    case ZoneKind::kWan:
      throw std::logic_error("platform: nested wan zones are not supported");
  }
}

void route_leaf(const Zone& z, std::size_t a, std::size_t b,
                std::vector<LinkId>& out) {
  const std::size_t la = a - z.first_node;
  const std::size_t lb = b - z.first_node;
  switch (z.kind) {
    case ZoneKind::kCrossbar:
      out.push_back(z.host_links[la]);
      if (z.backplane != kNoLink) out.push_back(z.backplane);
      out.push_back(z.host_links[lb]);
      return;
    case ZoneKind::kFatTree: {
      out.push_back(z.host_links[la]);
      const std::size_t ea = la / z.hosts_per_edge;
      const std::size_t eb = lb / z.hosts_per_edge;
      if (ea != eb) {
        out.push_back(z.up_links[ea * z.uplinks + la % z.uplinks]);
        out.push_back(z.up_links[eb * z.uplinks + lb % z.uplinks]);
      }
      out.push_back(z.host_links[lb]);
      return;
    }
    case ZoneKind::kDragonfly: {
      out.push_back(z.host_links[la]);
      const std::size_t ra = la / z.hosts_per_router;
      const std::size_t rb = lb / z.hosts_per_router;
      const std::size_t ga = ra / z.routers;
      const std::size_t gb = rb / z.routers;
      if (ra != rb) {
        out.push_back(z.up_links[ga * z.routers + ra % z.routers]);
        if (ga != gb) {
          out.push_back(z.global_links[pair_index(ga, gb, z.groups)]);
        }
        out.push_back(z.up_links[gb * z.routers + rb % z.routers]);
      }
      out.push_back(z.host_links[lb]);
      return;
    }
    case ZoneKind::kWan:
      throw std::logic_error("platform: route_leaf on a wan zone");
  }
}

}  // namespace

void Platform::route(std::size_t src, std::size_t dst,
                     std::vector<LinkId>& out) const {
  out.clear();
  if (src >= root.nodes || dst >= root.nodes) {
    throw std::out_of_range("platform: node " +
                            std::to_string(src >= root.nodes ? src : dst) +
                            " outside platform '" + name + "' (" +
                            std::to_string(root.nodes) + " nodes)");
  }
  if (src == dst) return;
  if (root.kind != ZoneKind::kWan) {
    route_leaf(root, src, dst, out);
    return;
  }
  const Zone* za = nullptr;
  const Zone* zb = nullptr;
  for (const Zone& c : root.children) {
    if (c.contains(src)) za = &c;
    if (c.contains(dst)) zb = &c;
  }
  if (za == zb) {
    route_leaf(*za, src, dst, out);
    return;
  }
  egress(*za, src, out);
  out.push_back(za->wan_uplink);
  out.push_back(zb->wan_uplink);
  ingress(*zb, dst, out);
}

Platform::Wire Platform::wire(std::size_t src, std::size_t dst) const {
  Wire w;
  if (src == dst) {
    w.src_kind = w.dst_kind = net::Interconnect::kLoopback;
    w.bottleneck_bps = 0.0;
    return w;
  }
  std::vector<LinkId> r;
  route(src, dst, r);
  for (const LinkId id : r) {
    const Link& l = link(id);
    w.latency_s += l.latency_s;
    if (l.bandwidth_bps < w.bottleneck_bps) w.bottleneck_bps = l.bandwidth_bps;
  }
  w.src_kind = link(r.front()).kind;
  w.dst_kind = link(r.back()).kind;
  return w;
}

namespace {

std::string leaf_json(const Platform& p, const Zone& z) {
  std::string out = "{\"kind\":\"" + to_string(z.kind) + "\"";
  out += ",\"nodes\":" + std::to_string(z.nodes);
  out += ",\"link\":" + link_json(p.link(z.host_links.at(0)));
  switch (z.kind) {
    case ZoneKind::kCrossbar:
      out += ",\"backplane_bps\":" +
             fmt(z.backplane != kNoLink ? p.link(z.backplane).bandwidth_bps
                                        : 0.0);
      break;
    case ZoneKind::kFatTree:
      out += ",\"hosts_per_edge\":" + std::to_string(z.hosts_per_edge);
      out += ",\"uplinks\":" + std::to_string(z.uplinks);
      out += ",\"uplink\":" + link_json(p.link(z.up_links.at(0)));
      break;
    case ZoneKind::kDragonfly:
      out += ",\"groups\":" + std::to_string(z.groups);
      out += ",\"routers\":" + std::to_string(z.routers);
      out += ",\"hosts_per_router\":" + std::to_string(z.hosts_per_router);
      out += ",\"local\":" + link_json(p.link(z.up_links.at(0)));
      out += ",\"global\":" + link_json(p.link(z.global_links.at(0)));
      break;
    case ZoneKind::kWan:
      break;
  }
  out += "}";
  return out;
}

}  // namespace

std::string Platform::describe() const {
  std::string out = "{\"name\":\"" + name + "\"";
  if (!disk.free()) {
    out += ",\"disk\":{\"read_bps\":" + fmt(disk.read_bps) +
           ",\"write_bps\":" + fmt(disk.write_bps) +
           ",\"seek_s\":" + fmt(disk.seek_s) + "}";
  }
  out += ",\"zone\":";
  if (root.kind == ZoneKind::kWan) {
    out += "{\"kind\":\"wan\",\"uplink\":" +
           link_json(link(root.children.at(0).wan_uplink));
    out += ",\"sites\":[";
    for (std::size_t i = 0; i < root.children.size(); ++i) {
      if (i > 0) out += ",";
      out += leaf_json(*this, root.children[i]);
    }
    out += "]}";
  } else {
    out += leaf_json(*this, root);
  }
  out += "}";
  return out;
}

}  // namespace psanim::platform

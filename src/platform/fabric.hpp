#pragma once

// Fabric: deterministic shared-link contention over a Platform.
//
// A Fabric implements the mp::ContentionHook seam with a store-and-share
// fluid model: transfers crossing the same shared link in overlapping
// virtual-time windows queue behind each other, each holding the link for
// `bytes / bandwidth` seconds. Global link ledgers would make virtual
// time depend on wall-clock interleaving (whichever OS thread updates a
// ledger first wins), so the model is split into two halves that each
// touch only rank-owned state:
//
//  * egress (on_send, sender's program order) — a rank's own transfers
//    serialize through its host uplink: back-to-back sends of large
//    frames cannot overlap on one NIC, no matter how the alpha-beta cost
//    overlaps them.
//  * ingress (on_recv, receiver's deterministic consume order) — each
//    receiver keeps a busy-until ledger per shared link its inbound
//    routes cross (excluding the sender-side uplink, which egress already
//    charged). Concurrent arrivals funneling through a shared switch
//    fabric, edge uplink, or the receiver's own host link queue behind
//    each other: start = max(arrive, busy), busy = start + bytes/bw, and
//    the transfer is delayed by the worst lag over its route.
//
// The split deliberately under-counts contention between flows that share
// an interior link but end at *different* receivers — the price of
// bit-reproducibility (see DESIGN key decision #9). It captures the
// protocol's dominant hotspots exactly: a sender fanning frames out and
// a receiver (image generator, manager) fanning results in.
//
// Delays shift virtual timestamps only; message content never depends on
// delivery time (load balancing uses compute-only timings and receives
// pull from known source sets), so a contended platform changes makespans
// but not one pixel of the framebuffer.

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mp/contention_hook.hpp"
#include "platform/platform.hpp"

namespace psanim::platform {

class Fabric final : public mp::ContentionHook {
 public:
  /// `node_of_rank[r]` is the platform node hosting rank r; every entry
  /// must be < platform.node_count(). The platform is not owned and must
  /// outlive the fabric.
  Fabric(const Platform& platform, std::vector<std::size_t> node_of_rank);

  const Platform& platform() const { return platform_; }
  std::size_t node_of(int rank) const {
    return node_of_[static_cast<std::size_t>(rank)];
  }

  // --- mp::ContentionHook ---
  double on_send(int src, int dst, std::size_t wire_bytes,
                 double depart_s) override;
  double on_recv(int src, int dst, std::size_t wire_bytes,
                 double arrive_s) override;

  /// Total egress/ingress queueing charged to `rank` so far. Per-rank
  /// sums are deterministic; read them after Runtime::run returns.
  double egress_wait_s(int rank) const {
    return per_rank_[static_cast<std::size_t>(rank)].egress_wait_s;
  }
  double ingress_wait_s(int rank) const {
    return per_rank_[static_cast<std::size_t>(rank)].ingress_wait_s;
  }

 private:
  struct PerRank {
    /// Virtual time this rank's host uplink finishes its last own send.
    double egress_free_at = 0.0;
    /// Busy-until per shared link crossed by this rank's inbound routes.
    std::unordered_map<LinkId, double> ingress_free_at;
    double egress_wait_s = 0.0;
    double ingress_wait_s = 0.0;
  };

  const Platform& platform_;
  std::vector<std::size_t> node_of_;
  /// Indexed by rank; entry r is touched only from rank r's execution
  /// context (egress fields on send, ingress fields on recv).
  std::vector<PerRank> per_rank_;
};

}  // namespace psanim::platform

#include "platform/parse.hpp"

#include <cctype>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <utility>

namespace psanim::platform {

namespace {

[[noreturn]] void fail(const std::string& msg) {
  throw std::invalid_argument("platform: " + msg);
}

std::string preset_list() {
  std::string out;
  for (const std::string& n : preset_names()) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

double to_double(const std::string& key, const std::string& v) {
  char* end = nullptr;
  const double d = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0') {
    fail("'" + key + "' expects a number, got '" + v + "'");
  }
  return d;
}

std::size_t to_size(const std::string& key, const std::string& v) {
  const double d = to_double(key, v);
  if (d < 0.0 || d != static_cast<double>(static_cast<std::size_t>(d))) {
    fail("'" + key + "' expects a non-negative integer, got '" + v + "'");
  }
  return static_cast<std::size_t>(d);
}

net::Interconnect interconnect_from(const std::string& s) {
  if (s == "loopback") return net::Interconnect::kLoopback;
  if (s == "fast-ethernet") return net::Interconnect::kFastEthernet;
  if (s == "gigabit-ethernet") return net::Interconnect::kGigabitEthernet;
  if (s == "myrinet") return net::Interconnect::kMyrinet;
  if (s == "custom") return net::Interconnect::kCustom;
  fail("unknown interconnect '" + s +
       "' (expected loopback, fast-ethernet, gigabit-ethernet, myrinet or "
       "custom)");
}

Link link_from(net::Interconnect ic) {
  const net::LinkModel m = net::LinkModel::preset(ic);
  Link l;
  l.kind = m.kind;
  l.latency_s = m.latency_s;
  l.bandwidth_bps = m.bandwidth_bps;
  return l;
}

// ---------------------------------------------------------------- presets

Platform preset_crossbar(std::size_t n) {
  return Platform::crossbar(n, link_from(net::Interconnect::kFastEthernet));
}

Platform preset_fattree(std::size_t n, std::size_t uplinks) {
  return Platform::fat_tree(n, /*hosts_per_edge=*/8, uplinks,
                            link_from(net::Interconnect::kFastEthernet),
                            link_from(net::Interconnect::kGigabitEthernet));
}

Platform preset_dragonfly(std::size_t n) {
  const std::size_t routers = 4, hosts_per_router = 4;
  const std::size_t per_group = routers * hosts_per_router;
  std::size_t groups = (n + per_group - 1) / per_group;
  if (groups < 2) groups = 2;
  Link local = link_from(net::Interconnect::kGigabitEthernet);
  local.latency_s = 20e-6;
  Link global = link_from(net::Interconnect::kGigabitEthernet);
  global.latency_s = 100e-6;
  return Platform::dragonfly(n, groups, routers, hosts_per_router,
                             link_from(net::Interconnect::kFastEthernet),
                             local, global);
}

Platform preset_wan2(std::size_t n) {
  if (n < 2) fail("preset 'wan2' needs at least 2 nodes, got " +
                  std::to_string(n));
  const std::size_t n1 = (n + 1) / 2;
  std::vector<Platform> sites;
  sites.push_back(preset_crossbar(n1));
  sites.push_back(preset_crossbar(n - n1));
  Link wan;  // ~T3-class uplink: long haul latency, 2.5 MB/s payload
  wan.kind = net::Interconnect::kCustom;
  wan.latency_s = 30e-3;
  wan.bandwidth_bps = 2.5e6;
  Platform p = Platform::wan(std::move(sites), wan);
  p.name = "wan2";
  return p;
}

// ----------------------------------------------------------------- DSL

using KvList = std::vector<std::pair<std::string, std::string>>;

KvList split_kv(const std::string& body, const std::string& kind) {
  KvList out;
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t comma = body.find(',', pos);
    if (comma == std::string::npos) comma = body.size();
    const std::string item = body.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      fail("'" + kind + "' segment: expected key=value, got '" + item + "'");
    }
    out.emplace_back(item.substr(0, eq), item.substr(eq + 1));
  }
  return out;
}

DiskModel parse_disk(const std::string& body) {
  if (body == "none" || body.empty()) return DiskModel::none();
  if (body == "scratch") return DiskModel::scratch_hdd();
  if (body == "nfs") return DiskModel::nfs();
  if (body.rfind("pfs", 0) == 0 && body.size() > 3) {
    return DiskModel::pfs(
        static_cast<int>(to_size("disk stripes", body.substr(3))));
  }
  DiskModel d;
  for (const auto& [k, v] : split_kv(body, "disk")) {
    if (k == "read") d.read_bps = to_double(k, v);
    else if (k == "write") d.write_bps = to_double(k, v);
    else if (k == "seek") d.seek_s = to_double(k, v);
    else fail("disk segment: unknown key '" + k +
              "' (expected read, write, seek, or a preset none|scratch|nfs|"
              "pfs<stripes>)");
  }
  return d;
}

Platform parse_dsl_topo(const std::string& kind, const std::string& body,
                        std::size_t nodes) {
  const KvList kvs = split_kv(body, kind);
  Link host = link_from(net::Interconnect::kFastEthernet);
  bool host_touched = false;
  auto common = [&](const std::string& k, const std::string& v) {
    if (k == "link") { host = link_from(interconnect_from(v)); }
    else if (k == "bw") { host.bandwidth_bps = to_double(k, v); }
    else if (k == "latency") { host.latency_s = to_double(k, v); }
    else return false;
    host_touched = true;
    return true;
  };

  if (kind == "crossbar") {
    double backplane = 0.0;
    for (const auto& [k, v] : kvs) {
      if (common(k, v)) continue;
      if (k == "backplane") backplane = to_double(k, v);
      else fail("crossbar: unknown key '" + k +
                "' (expected link, bw, latency, backplane)");
    }
    return Platform::crossbar(nodes, host, backplane);
  }
  if (kind == "fattree") {
    std::size_t hpe = 8, up = 2;
    Link uplink = link_from(net::Interconnect::kGigabitEthernet);
    for (const auto& [k, v] : kvs) {
      if (common(k, v)) continue;
      if (k == "hosts_per_edge") hpe = to_size(k, v);
      else if (k == "uplinks") up = to_size(k, v);
      else if (k == "up_bw") uplink.bandwidth_bps = to_double(k, v);
      else if (k == "up_latency") uplink.latency_s = to_double(k, v);
      else fail("fattree: unknown key '" + k +
                "' (expected link, bw, latency, hosts_per_edge, uplinks, "
                "up_bw, up_latency)");
    }
    return Platform::fat_tree(nodes, hpe, up, host, uplink);
  }
  if (kind == "dragonfly") {
    std::size_t groups = 0, routers = 4, hpr = 4;
    Link local = link_from(net::Interconnect::kGigabitEthernet);
    local.latency_s = 20e-6;
    Link global = link_from(net::Interconnect::kGigabitEthernet);
    global.latency_s = 100e-6;
    for (const auto& [k, v] : kvs) {
      if (common(k, v)) continue;
      if (k == "groups") groups = to_size(k, v);
      else if (k == "routers") routers = to_size(k, v);
      else if (k == "hosts_per_router") hpr = to_size(k, v);
      else if (k == "local_bw") local.bandwidth_bps = to_double(k, v);
      else if (k == "local_latency") local.latency_s = to_double(k, v);
      else if (k == "global_bw") global.bandwidth_bps = to_double(k, v);
      else if (k == "global_latency") global.latency_s = to_double(k, v);
      else fail("dragonfly: unknown key '" + k +
                "' (expected link, bw, latency, groups, routers, "
                "hosts_per_router, local_bw/latency, global_bw/latency)");
    }
    if (groups == 0) {
      const std::size_t per_group = routers * hpr;
      if (per_group == 0) fail("dragonfly: routers and hosts_per_router must be >= 1");
      groups = (nodes + per_group - 1) / per_group;
      if (groups < 2) groups = 2;
    }
    return Platform::dragonfly(nodes, groups, routers, hpr, host, local,
                               global);
  }
  if (kind == "wan") {
    std::size_t nsites = 2;
    Link wan;
    wan.kind = net::Interconnect::kCustom;
    wan.latency_s = 30e-3;
    wan.bandwidth_bps = 2.5e6;
    for (const auto& [k, v] : kvs) {
      if (common(k, v)) continue;
      if (k == "sites") nsites = to_size(k, v);
      else if (k == "wan_bw") wan.bandwidth_bps = to_double(k, v);
      else if (k == "wan_latency") wan.latency_s = to_double(k, v);
      else fail("wan: unknown key '" + k +
                "' (expected link, bw, latency, sites, wan_bw, wan_latency)");
    }
    if (nsites == 0 || nsites > nodes) {
      fail("wan: sites must be in [1, nodes]; got sites=" +
           std::to_string(nsites) + " for " + std::to_string(nodes) +
           " nodes");
    }
    std::vector<Platform> sites;
    std::size_t left = nodes;
    for (std::size_t s = 0; s < nsites; ++s) {
      const std::size_t take = (left + (nsites - s) - 1) / (nsites - s);
      sites.push_back(Platform::crossbar(take, host));
      left -= take;
    }
    Platform p = Platform::wan(std::move(sites), wan);
    (void)host_touched;
    return p;
  }
  fail("unknown topology kind '" + kind +
       "' (expected crossbar, fattree, dragonfly or wan; presets: " +
       preset_list() + ")");
}

// --------------------------------------------------------- JSON subset

// Minimal recursive-descent parser for the JSON Platform::describe()
// emits (objects, arrays, strings without escapes, numbers, booleans).
struct Json {
  enum class Type { kNull, kBool, kNum, kStr, kArr, kObj };
  Type type = Type::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<Json> arr;
  std::map<std::string, Json> obj;

  const Json& at(const std::string& key) const {
    const auto it = obj.find(key);
    if (it == obj.end()) fail("JSON description missing key '" + key + "'");
    return it->second;
  }
  const Json* find(const std::string& key) const {
    const auto it = obj.find(key);
    return it == obj.end() ? nullptr : &it->second;
  }
  double as_num(const std::string& key) const {
    const Json& j = at(key);
    if (j.type != Type::kNum) fail("JSON key '" + key + "' is not a number");
    return j.num;
  }
  const std::string& as_str(const std::string& key) const {
    const Json& j = at(key);
    if (j.type != Type::kStr) fail("JSON key '" + key + "' is not a string");
    return j.str;
  }
};

struct JsonParser {
  const std::string& s;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < s.size() &&
           std::isspace(static_cast<unsigned char>(s[pos]))) {
      ++pos;
    }
  }
  char peek() {
    skip_ws();
    if (pos >= s.size()) fail("JSON description ends unexpectedly");
    return s[pos];
  }
  void expect(char c) {
    if (peek() != c) {
      fail(std::string("JSON: expected '") + c + "' at offset " +
           std::to_string(pos) + ", got '" + s[pos] + "'");
    }
    ++pos;
  }

  Json parse_value() {
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return parse_string();
    if (c == 't' || c == 'f') return parse_bool();
    return parse_number();
  }

  Json parse_object() {
    expect('{');
    Json j;
    j.type = Json::Type::kObj;
    if (peek() == '}') { ++pos; return j; }
    for (;;) {
      Json key = parse_string();
      expect(':');
      j.obj.emplace(std::move(key.str), parse_value());
      if (peek() == ',') { ++pos; continue; }
      expect('}');
      return j;
    }
  }

  Json parse_array() {
    expect('[');
    Json j;
    j.type = Json::Type::kArr;
    if (peek() == ']') { ++pos; return j; }
    for (;;) {
      j.arr.push_back(parse_value());
      if (peek() == ',') { ++pos; continue; }
      expect(']');
      return j;
    }
  }

  Json parse_string() {
    expect('"');
    Json j;
    j.type = Json::Type::kStr;
    while (pos < s.size() && s[pos] != '"') {
      if (s[pos] == '\\') fail("JSON: string escapes are not supported");
      j.str += s[pos++];
    }
    if (pos >= s.size()) fail("JSON: unterminated string");
    ++pos;
    return j;
  }

  Json parse_bool() {
    Json j;
    j.type = Json::Type::kBool;
    if (s.compare(pos, 4, "true") == 0) { j.b = true; pos += 4; return j; }
    if (s.compare(pos, 5, "false") == 0) { j.b = false; pos += 5; return j; }
    fail("JSON: bad literal at offset " + std::to_string(pos));
  }

  Json parse_number() {
    const std::size_t start = pos;
    while (pos < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[pos])) || s[pos] == '-' ||
            s[pos] == '+' || s[pos] == '.' || s[pos] == 'e' || s[pos] == 'E')) {
      ++pos;
    }
    if (pos == start) fail("JSON: bad value at offset " + std::to_string(pos));
    Json j;
    j.type = Json::Type::kNum;
    j.num = to_double("number", s.substr(start, pos - start));
    return j;
  }
};

Link json_link(const Json& j) {
  Link l;
  l.kind = interconnect_from(j.as_str("kind"));
  l.latency_s = j.as_num("latency_s");
  l.bandwidth_bps = j.as_num("bandwidth_bps");
  if (const Json* sh = j.find("shared")) {
    if (sh->type != Json::Type::kBool) fail("JSON key 'shared' is not a bool");
    l.shared = sh->b;
  }
  return l;
}

Platform json_leaf(const Json& z) {
  const std::string& kind = z.as_str("kind");
  const auto n = static_cast<std::size_t>(z.as_num("nodes"));
  const Link host = json_link(z.at("link"));
  if (kind == "crossbar") {
    return Platform::crossbar(n, host, z.as_num("backplane_bps"));
  }
  if (kind == "fattree") {
    return Platform::fat_tree(
        n, static_cast<std::size_t>(z.as_num("hosts_per_edge")),
        static_cast<std::size_t>(z.as_num("uplinks")), host,
        json_link(z.at("uplink")));
  }
  if (kind == "dragonfly") {
    return Platform::dragonfly(
        n, static_cast<std::size_t>(z.as_num("groups")),
        static_cast<std::size_t>(z.as_num("routers")),
        static_cast<std::size_t>(z.as_num("hosts_per_router")), host,
        json_link(z.at("local")), json_link(z.at("global")));
  }
  fail("JSON zone kind '" + kind + "' is not a leaf topology");
}

Platform parse_json(const std::string& desc) {
  JsonParser p{desc};
  const Json root = p.parse_value();
  p.skip_ws();
  if (p.pos != desc.size()) {
    fail("JSON: trailing characters after description");
  }
  if (root.type != Json::Type::kObj) fail("JSON description must be an object");
  const Json& zone = root.at("zone");
  Platform out;
  if (zone.as_str("kind") == "wan") {
    const Link uplink = json_link(zone.at("uplink"));
    const Json& sites = zone.at("sites");
    if (sites.type != Json::Type::kArr || sites.arr.empty()) {
      fail("JSON wan zone needs a non-empty 'sites' array");
    }
    std::vector<Platform> leaves;
    for (const Json& site : sites.arr) leaves.push_back(json_leaf(site));
    out = Platform::wan(std::move(leaves), uplink);
  } else {
    out = json_leaf(zone);
  }
  out.name = root.as_str("name");
  if (const Json* d = root.find("disk")) {
    out.disk.read_bps = d->as_num("read_bps");
    out.disk.write_bps = d->as_num("write_bps");
    out.disk.seek_s = d->as_num("seek_s");
  }
  return out;
}

}  // namespace

bool is_flat(const std::string& desc) {
  return desc.empty() || desc == "flat";
}

std::vector<std::string> preset_names() {
  return {"crossbar", "fattree", "fattree-slim", "dragonfly", "wan2"};
}

Platform parse(const std::string& desc, std::size_t nodes) {
  if (is_flat(desc)) {
    fail("'" + desc +
         "' selects the legacy flat model; callers must special-case "
         "is_flat() before parse()");
  }
  std::size_t start = desc.find_first_not_of(" \t\n");
  if (start == std::string::npos) fail("empty description");
  if (desc[start] == '{') {
    Platform p = parse_json(desc);
    if (nodes > 0 && p.node_count() < nodes) {
      fail("description '" + p.name + "' holds " +
           std::to_string(p.node_count()) + " nodes, needs " +
           std::to_string(nodes));
    }
    return p;
  }

  if (nodes == 0) fail("a preset or DSL description needs nodes >= 1");

  // Split off an optional ";disk:..." suffix (any segment order).
  std::string topo;
  DiskModel disk;
  std::size_t pos = 0;
  while (pos < desc.size()) {
    std::size_t semi = desc.find(';', pos);
    if (semi == std::string::npos) semi = desc.size();
    const std::string seg = desc.substr(pos, semi - pos);
    pos = semi + 1;
    if (seg.rfind("disk:", 0) == 0) {
      disk = parse_disk(seg.substr(5));
    } else if (!seg.empty()) {
      if (!topo.empty()) fail("multiple topology segments in '" + desc + "'");
      topo = seg;
    }
  }
  if (topo.empty()) fail("description '" + desc + "' has no topology segment");

  Platform p;
  const std::size_t colon = topo.find(':');
  if (colon == std::string::npos) {
    // Bare name: a preset.
    if (topo == "crossbar") p = preset_crossbar(nodes);
    else if (topo == "fattree") p = preset_fattree(nodes, 4);
    else if (topo == "fattree-slim") p = preset_fattree(nodes, 1);
    else if (topo == "dragonfly") p = preset_dragonfly(nodes);
    else if (topo == "wan2") p = preset_wan2(nodes);
    else fail("unknown platform '" + topo + "' (presets: " + preset_list() +
              "; or a DSL/JSON description — see platform/parse.hpp)");
    if (topo == "fattree-slim") p.name = "fattree-slim";
  } else {
    p = parse_dsl_topo(topo.substr(0, colon), topo.substr(colon + 1), nodes);
  }
  if (!disk.free()) p.disk = disk;
  return p;
}

}  // namespace psanim::platform

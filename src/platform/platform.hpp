#pragma once

// Topology-aware platform model (ROADMAP item 3, in the spirit of
// SimGrid's zone architecture).
//
// `psanim::net` models every node pair as a private alpha-beta pipe; that
// is the fidelity the paper's own analysis uses, but it cannot answer
// capacity questions — a 512-node farm's frames/sec depends on which
// *shared* links its traffic funnels through. A `Platform` is a small
// zone tree: leaf zones lay nodes out under a concrete interconnect
// topology (cluster crossbar, k-ary fat-tree, dragonfly) and an optional
// WAN root zone joins leaf sites over uplinks. Routing maps a
// (src node, dst node) pair to the *ordered list of links traversed*,
// replacing the flat model's single resolved hop:
//
//   crossbar   host_a -> [backplane] -> host_b
//   fat-tree   host_a -> edge uplink_a -> edge uplink_b -> host_b
//   dragonfly  term_a -> local_a -> global(g_a,g_b) -> local_b -> term_b
//   wan        egress(site_a) -> wan uplink_a -> wan uplink_b -> ingress
//
// A transfer's base wire time over a route is latency-additive and
// bottleneck-limited (`sum(latency) + bytes / min(bandwidth)` — the
// store-and-forward pipeline approximation). Shared-link *contention* on
// top of that lives in fabric.hpp.
//
// Node indices are global across the platform and line up with
// `cluster::ClusterSpec` node indices; a platform must be built for at
// least as many nodes as the spec it serves.

#include <cstdint>
#include <string>
#include <vector>

#include "net/network_model.hpp"
#include "platform/disk.hpp"

namespace psanim::platform {

using LinkId = std::uint32_t;
inline constexpr LinkId kNoLink = 0xffffffffu;

/// One physical link. `shared = true` links are fluid resources —
/// concurrent transfers queue behind each other (see fabric.hpp);
/// `shared = false` links are fat pipes (every transfer gets the full
/// bandwidth, e.g. an ideal crossbar backplane).
struct Link {
  std::string name;
  net::Interconnect kind = net::Interconnect::kCustom;
  double latency_s = 0.0;
  double bandwidth_bps = 1e9;
  bool shared = true;
};

enum class ZoneKind : std::uint8_t { kCrossbar, kFatTree, kDragonfly, kWan };

std::string to_string(ZoneKind k);

/// One zone of the platform tree. Leaf zones own the contiguous global
/// node range [first_node, first_node + nodes); a kWan root composes leaf
/// zones as children, each reachable over its own `wan_uplink`.
struct Zone {
  ZoneKind kind = ZoneKind::kCrossbar;
  std::size_t first_node = 0;
  std::size_t nodes = 0;

  // --- topology parameters (meaning depends on kind) ---
  std::size_t hosts_per_edge = 4;    ///< fat-tree: hosts under one edge switch
  std::size_t uplinks = 2;           ///< fat-tree: uplinks per edge switch
  std::size_t groups = 2;            ///< dragonfly: number of groups
  std::size_t routers = 2;           ///< dragonfly: routers per group
  std::size_t hosts_per_router = 2;  ///< dragonfly: hosts per router

  // --- links owned by this zone (indices into Platform::links) ---
  std::vector<LinkId> host_links;    ///< one per node (every leaf kind)
  std::vector<LinkId> up_links;      ///< fat-tree edge uplinks / dragonfly locals
  std::vector<LinkId> global_links;  ///< dragonfly inter-group, pair-indexed
  LinkId backplane = kNoLink;        ///< crossbar switch fabric (optional)
  LinkId wan_uplink = kNoLink;       ///< set on children of a kWan root

  std::vector<Zone> children;  ///< kWan only; leaf zones otherwise empty

  bool contains(std::size_t node) const {
    return node >= first_node && node < first_node + nodes;
  }
};

struct Platform {
  std::string name;
  std::vector<Link> links;
  Zone root;
  /// Default per-node storage; node_disks overrides per node when sized.
  DiskModel disk;
  std::vector<DiskModel> node_disks;

  std::size_t node_count() const { return root.nodes; }
  std::size_t link_count() const { return links.size(); }
  const Link& link(LinkId id) const {
    return links.at(static_cast<std::size_t>(id));
  }
  const DiskModel& disk_of(std::size_t node) const {
    return node < node_disks.size() ? node_disks[node] : disk;
  }

  /// Ordered links the pair (src, dst) traverses; empty when src == dst
  /// (same-node traffic is loopback and never touches the fabric).
  /// Appends into `out` (cleared first) so hot paths can reuse a scratch
  /// vector. Throws std::out_of_range for nodes outside the platform.
  void route(std::size_t src, std::size_t dst, std::vector<LinkId>& out) const;
  std::vector<LinkId> route(std::size_t src, std::size_t dst) const {
    std::vector<LinkId> out;
    route(src, dst, out);
    return out;
  }

  /// Base wire characteristics of a route: additive latency, bottleneck
  /// bandwidth, and the interconnect kinds of the two endpoint host links
  /// (the cluster layer charges per-message host CPU overhead by kind).
  struct Wire {
    double latency_s = 0.0;
    double bottleneck_bps = 1e18;
    net::Interconnect src_kind = net::Interconnect::kCustom;
    net::Interconnect dst_kind = net::Interconnect::kCustom;
  };
  Wire wire(std::size_t src, std::size_t dst) const;

  /// Canonical JSON description; platform::parse() round-trips it.
  std::string describe() const;

  // --- builders (parse.cpp layers the text/JSON loader on these) ---
  /// `n` hosts on one switch; `backplane_bps > 0` adds a shared fabric
  /// link every pair crosses (models switch capacity), 0 = ideal crossbar.
  static Platform crossbar(std::size_t n, const Link& host,
                           double backplane_bps = 0.0);
  /// Two-level k-ary fat-tree: edge switches with `hosts_per_edge` hosts
  /// and `uplinks` parallel uplinks each into an ideal core. Same-edge
  /// pairs stay under the switch; cross-edge pairs pay both uplinks.
  static Platform fat_tree(std::size_t n, std::size_t hosts_per_edge,
                           std::size_t uplinks, const Link& host,
                           const Link& up);
  /// Dragonfly: `groups` groups of `routers` routers with
  /// `hosts_per_router` hosts each; minimal routing (terminal, local,
  /// one global hop between groups).
  static Platform dragonfly(std::size_t n, std::size_t groups,
                            std::size_t routers, std::size_t hosts_per_router,
                            const Link& term, const Link& local,
                            const Link& global);
  /// Root zone joining leaf `sites` over per-site WAN uplinks; global node
  /// indices run site by site in order.
  static Platform wan(std::vector<Platform> sites, const Link& wan_link);
};

}  // namespace psanim::platform

#include "platform/fabric.hpp"

#include <stdexcept>
#include <string>

namespace psanim::platform {

namespace {

/// Seconds a transfer of `bytes` occupies `l`. A non-shared link is a fat
/// pipe — transfers hold it for zero time, so nobody queues behind them.
double hold_s(const Link& l, std::size_t bytes) {
  if (!l.shared || l.bandwidth_bps <= 0.0) return 0.0;
  return static_cast<double>(bytes) / l.bandwidth_bps;
}

}  // namespace

Fabric::Fabric(const Platform& platform, std::vector<std::size_t> node_of_rank)
    : platform_(platform), node_of_(std::move(node_of_rank)) {
  for (const std::size_t node : node_of_) {
    if (node >= platform_.node_count()) {
      throw std::invalid_argument(
          "fabric: rank placed on node " + std::to_string(node) +
          " but platform '" + platform_.name + "' has only " +
          std::to_string(platform_.node_count()) + " nodes");
    }
  }
  per_rank_.resize(node_of_.size());
}

double Fabric::on_send(int src, int dst, std::size_t wire_bytes,
                       double depart_s) {
  const std::size_t a = node_of(src);
  const std::size_t b = node_of(dst);
  if (a == b) return 0.0;  // loopback never touches the fabric

  // Scratch reused across calls; safe because nothing below yields.
  thread_local std::vector<LinkId> route;
  platform_.route(a, b, route);
  if (route.empty()) return 0.0;

  PerRank& st = per_rank_[static_cast<std::size_t>(src)];
  const double hold = hold_s(platform_.link(route.front()), wire_bytes);
  const double start =
      st.egress_free_at > depart_s ? st.egress_free_at : depart_s;
  st.egress_free_at = start + hold;
  const double wait = start - depart_s;
  st.egress_wait_s += wait;
  return wait;
}

double Fabric::on_recv(int src, int dst, std::size_t wire_bytes,
                       double arrive_s) {
  const std::size_t a = node_of(src);
  const std::size_t b = node_of(dst);
  if (a == b) return 0.0;

  thread_local std::vector<LinkId> route;
  platform_.route(a, b, route);
  if (route.size() < 2) return 0.0;

  PerRank& st = per_rank_[static_cast<std::size_t>(dst)];
  double extra = 0.0;
  // Skip the first hop: the sender's egress half already serialized it.
  for (std::size_t i = 1; i < route.size(); ++i) {
    const Link& l = platform_.link(route[i]);
    const double hold = hold_s(l, wire_bytes);
    if (hold <= 0.0) continue;
    double& free_at = st.ingress_free_at[route[i]];
    const double start = free_at > arrive_s ? free_at : arrive_s;
    free_at = start + hold;
    const double lag = start - arrive_s;
    if (lag > extra) extra = lag;
  }
  st.ingress_wait_s += extra;
  return extra;
}

}  // namespace psanim::platform

#pragma once

// Platform description loader: turns a string into a Platform so cluster
// specs, SimSettings, the farm, and the benches can all select platforms
// by name instead of hand-assembling zone trees.
//
// Three description forms are accepted:
//
//  1. Named presets, auto-sized to the requested node count — see
//     preset_names(). E.g. "fattree-slim" for 32 nodes builds edge
//     switches of 8 Fast-Ethernet hosts behind a single uplink each.
//  2. A compact DSL: "<kind>:key=val,key=val[;disk:...]", e.g.
//       "crossbar:link=fast-ethernet,backplane=50e6"
//       "fattree:hosts_per_edge=8,uplinks=2,up_bw=110e6"
//       "dragonfly:groups=4,routers=4,hosts_per_router=4"
//       "wan:sites=2,wan_bw=2.5e6,wan_latency=30e-3"
//       "crossbar:link=gigabit-ethernet;disk:scratch"
//     The disk segment takes a preset (none|scratch|nfs|pfs<stripes>) or
//     "read=..,write=..,seek=.." fields.
//  3. The canonical JSON emitted by Platform::describe() (round-trips).
//
// The name "flat" (or the empty string) is special: it selects *no* zone
// platform — the legacy per-pair alpha-beta model — and is handled by the
// sim layer, never by parse().

#include <cstddef>
#include <string>
#include <vector>

#include "platform/platform.hpp"

namespace psanim::platform {

/// True when `desc` selects the legacy flat model (empty or "flat"):
/// no zone tree, no contention, bit-identical to the pre-platform code.
bool is_flat(const std::string& desc);

/// Built-in preset names (excluding "flat").
std::vector<std::string> preset_names();

/// Build a platform from `desc` sized for at least `nodes` nodes.
/// Presets and DSL topologies are auto-sized to exactly `nodes`; a JSON
/// description carries its own size, which must cover `nodes`. Throws
/// std::invalid_argument (message prefixed "platform:") for unknown
/// names, malformed descriptions, or platforms too small — the message
/// lists the valid presets so a typo is actionable.
Platform parse(const std::string& desc, std::size_t nodes);

}  // namespace psanim::platform

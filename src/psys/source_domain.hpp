#pragma once

// Geometric domains, modeled on McAllister's pDomain.
//
// A Domain serves two purposes, exactly as in the original API: sampling
// (where Source actions generate particle positions/velocities) and
// implicit-surface queries (what Bounce/Sink actions collide particles
// against).

#include <memory>
#include <string>

#include "math/aabb.hpp"
#include "math/rng.hpp"
#include "math/vec.hpp"

namespace psanim::psys {

enum class DomainKind {
  kPoint,
  kLine,
  kBox,
  kSphere,
  kDisc,
  kPlane,
  kCylinder,
};

std::string to_string(DomainKind k);

/// Result of a surface query: signed distance (negative = inside/behind)
/// and outward normal at the closest feature.
struct SurfaceHit {
  float signed_distance = 0.0f;
  Vec3 normal{0, 1, 0};
};

class Domain {
 public:
  virtual ~Domain() = default;

  virtual DomainKind kind() const = 0;

  /// Uniform sample inside/on the domain.
  virtual Vec3 generate(Rng& rng) const = 0;

  /// True if the point lies inside (volumes) / behind the normal (plane).
  virtual bool within(Vec3 p) const = 0;

  /// Signed distance + normal for collision response. For thin domains
  /// (plane, disc) the sign is relative to the normal side.
  virtual SurfaceHit surface(Vec3 p) const = 0;

  /// Conservative bounding box (kHuge extents for unbounded domains).
  virtual Aabb bounds() const = 0;
};

using DomainPtr = std::shared_ptr<const Domain>;

/// Single point (degenerate source; fountains emit here).
DomainPtr make_point(Vec3 p);
/// Segment from a to b.
DomainPtr make_line(Vec3 a, Vec3 b);
/// Axis-aligned box.
DomainPtr make_box(Vec3 lo, Vec3 hi);
/// Solid ball of `radius` around `center`; surface queries treat it as the
/// sphere boundary.
DomainPtr make_sphere(Vec3 center, float radius);
/// Flat disc: center, outward normal, radius.
DomainPtr make_disc(Vec3 center, Vec3 normal, float radius);
/// Infinite plane through `point` with outward `normal`. `within` is true
/// behind the plane (dot(p - point, normal) < 0).
DomainPtr make_plane(Vec3 point, Vec3 normal);
/// Solid cylinder between endpoints a and b with `radius`.
DomainPtr make_cylinder(Vec3 a, Vec3 b, float radius);

}  // namespace psanim::psys

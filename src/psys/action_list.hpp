#pragma once

// Ordered list of actions — Algorithm 1's loop body for one system.

#include <memory>
#include <utility>
#include <vector>

#include "psys/actions.hpp"

namespace psanim::psys {

class ActionList {
 public:
  /// Construct and append an action; returns *this for chaining.
  template <typename T, typename... Args>
  ActionList& add(Args&&... args) {
    actions_.push_back(std::make_unique<const T>(std::forward<Args>(args)...));
    return *this;
  }

  ActionList& append(ActionPtr a) {
    actions_.push_back(std::move(a));
    return *this;
  }

  std::size_t size() const { return actions_.size(); }
  bool empty() const { return actions_.empty(); }
  const Action& operator[](std::size_t i) const { return *actions_.at(i); }

  auto begin() const { return actions_.begin(); }
  auto end() const { return actions_.end(); }

  /// All kCreate actions, in order (the manager runs these).
  std::vector<const Source*> sources() const;

  /// Total creation rate per frame across sources.
  std::size_t creation_rate() const;

  /// Sum of cost weights of non-create actions (used to estimate a frame's
  /// per-particle compute weight).
  double modify_move_weight() const;

 private:
  std::vector<ActionPtr> actions_;
};

/// One frame's non-create actions fused into a single store traversal.
///
/// The naive executor walks every slice once per action; fusing applies
/// the whole action chain to a slice while it is hot in cache, walking the
/// store exactly once per frame. Equivalence with the per-action loop is
/// exact, not approximate: actions are elementwise (each reads and writes
/// only the particle it is applied to), every pass keeps its own RNG
/// stream and context, and slices are visited in the same ascending order
/// — so per-particle action order, per-action RNG consumption order and
/// kill counts all come out bit-identical.
class FusedPasses {
 public:
  /// Per-action execution state, in list order.
  struct Pass {
    const Action* action = nullptr;
    /// 1-based position in the full list counting create actions too —
    /// the historical RNG-stream key.
    std::size_t index = 0;
    Rng rng;
    ActionContext ctx;
  };

  /// Build passes for every non-create action of `list`; `rng_for(index)`
  /// supplies the deterministic stream for the action at that position.
  template <typename RngFor>
  FusedPasses(const ActionList& list, float dt, RngFor&& rng_for) {
    passes_.reserve(list.size());
    std::size_t index = 0;
    for (const auto& action : list) {
      ++index;
      if (action->cls() == ActionClass::kCreate) continue;
      Pass p;
      p.action = action.get();
      p.index = index;
      p.rng = rng_for(index);
      p.ctx = ActionContext{dt, nullptr, 0};
      passes_.push_back(std::move(p));
    }
  }

  /// Apply every pass to one slice, in action order.
  void apply(std::span<Particle> ps);

  const std::vector<Pass>& passes() const { return passes_; }
  bool empty() const { return passes_.empty(); }

  /// Total particles marked dead across all passes.
  std::size_t killed() const;

 private:
  std::vector<Pass> passes_;
};

}  // namespace psanim::psys

#pragma once

// Ordered list of actions — Algorithm 1's loop body for one system.

#include <memory>
#include <utility>
#include <vector>

#include "psys/actions.hpp"

namespace psanim::psys {

class ActionList {
 public:
  /// Construct and append an action; returns *this for chaining.
  template <typename T, typename... Args>
  ActionList& add(Args&&... args) {
    actions_.push_back(std::make_unique<const T>(std::forward<Args>(args)...));
    return *this;
  }

  ActionList& append(ActionPtr a) {
    actions_.push_back(std::move(a));
    return *this;
  }

  std::size_t size() const { return actions_.size(); }
  bool empty() const { return actions_.empty(); }
  const Action& operator[](std::size_t i) const { return *actions_.at(i); }

  auto begin() const { return actions_.begin(); }
  auto end() const { return actions_.end(); }

  /// All kCreate actions, in order (the manager runs these).
  std::vector<const Source*> sources() const;

  /// Total creation rate per frame across sources.
  std::size_t creation_rate() const;

  /// Sum of cost weights of non-create actions (used to estimate a frame's
  /// per-particle compute weight).
  double modify_move_weight() const;

 private:
  std::vector<ActionPtr> actions_;
};

}  // namespace psanim::psys

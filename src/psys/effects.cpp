#include "psys/effects.hpp"

namespace psanim::psys {

ParticleSystem snow_system(const Aabb& area, std::size_t rate_per_frame,
                           float lifetime_s) {
  ActionList al;
  // Emission sheet just below the top of the area, full horizontal extent.
  const float top = area.hi.y;
  Source::Params src;
  src.rate = rate_per_frame;
  src.position_domain =
      make_box({area.lo.x, top - 0.5f, area.lo.z}, {area.hi.x, top, area.hi.z});
  // Mainly vertical fall with sideways drift (wind + flutter).
  src.velocity_domain = make_box({-0.5f, -2.2f, -0.5f}, {0.5f, -1.6f, 0.5f});
  src.color = {0.95f, 0.95f, 1.0f};
  src.size = 0.05f;
  src.lifetime = lifetime_s;
  src.lifetime_jitter = 0.2f * lifetime_s;
  al.add<Source>(src);
  // Flutter: small random acceleration sampled from a ball.
  al.add<RandomAccel>(make_sphere({0, 0, 0}, 1.2f));
  // Collide with the ground plane: snow settles, doesn't bounce much.
  al.add<Bounce>(make_plane({0, area.lo.y, 0}, {0, 1, 0}),
                 /*restitution=*/0.05f, /*friction=*/0.9f);
  al.add<KillOld>();
  al.add<Move>();
  return ParticleSystem("snow", std::move(al));
}

ParticleSystem fountain_system(Vec3 base, std::size_t rate_per_frame,
                               float jet_speed, float spread,
                               float lifetime_s) {
  ActionList al;
  Source::Params src;
  src.rate = rate_per_frame;
  src.position_domain = make_sphere(base, 0.08f);
  // Upward jet with horizontal spread: velocities in a squat cylinder
  // around +y, so trajectories arc outward in x and z.
  src.velocity_domain = make_cylinder({0, jet_speed * 0.85f, 0},
                                      {0, jet_speed * 1.15f, 0}, spread);
  src.color = {0.55f, 0.7f, 1.0f};
  src.color_jitter = {0.06f, 0.06f, 0.06f};
  src.size = 0.04f;
  src.lifetime = lifetime_s;
  src.lifetime_jitter = 0.25f * lifetime_s;
  al.add<Source>(src);
  al.add<Gravity>(Vec3{0, -9.8f, 0});
  // Slight drag so droplets don't accumulate unbounded speed.
  al.add<Damping>(0.98f);
  // Splash on the basin plane at the fountain's base height.
  al.add<Bounce>(make_plane({0, base.y, 0}, {0, 1, 0}),
                 /*restitution=*/0.35f, /*friction=*/0.4f);
  al.add<KillOld>();
  al.add<Move>();
  return ParticleSystem("fountain", std::move(al));
}

ParticleSystem smoke_system(Vec3 base, std::size_t rate_per_frame) {
  ActionList al;
  Source::Params src;
  src.rate = rate_per_frame;
  src.position_domain = make_disc(base, {0, 1, 0}, 0.3f);
  src.velocity_domain = make_box({-0.1f, 0.8f, -0.1f}, {0.1f, 1.4f, 0.1f});
  src.color = {0.4f, 0.4f, 0.42f};
  src.size = 0.15f;
  src.lifetime = 6.0f;
  src.lifetime_jitter = 1.5f;
  al.add<Source>(src);
  al.add<Vortex>(base, Vec3{0, 1, 0}, 2.0f);
  al.add<RandomAccel>(make_sphere({0, 0, 0}, 0.4f));
  al.add<Fade>(0.7f);
  al.add<Grow>(0.12f);
  al.add<KillOld>();
  al.add<Move>();
  return ParticleSystem("smoke", std::move(al));
}

ParticleSystem fireworks_system(Vec3 burst_center,
                                std::size_t rate_per_frame) {
  ActionList al;
  Source::Params src;
  src.rate = rate_per_frame;
  src.position_domain = make_point(burst_center);
  src.velocity_domain = make_sphere({0, 0, 0}, 12.0f);
  src.color = {1.0f, 0.85f, 0.3f};
  src.color_jitter = {0.0f, 0.15f, 0.2f};
  src.size = 0.06f;
  src.lifetime = 2.2f;
  src.lifetime_jitter = 0.6f;
  al.add<Source>(src);
  al.add<Gravity>(Vec3{0, -9.8f, 0});
  al.add<Damping>(0.92f);
  al.add<TargetColor>(Vec3{0.9f, 0.25f, 0.05f}, 0.8f);
  al.add<Fade>(0.45f);
  al.add<KillOld>();
  al.add<Move>();
  return ParticleSystem("fireworks", std::move(al));
}

ParticleSystem waterfall_system(Vec3 ledge_a, Vec3 ledge_b,
                                std::size_t rate_per_frame) {
  ActionList al;
  Source::Params src;
  src.rate = rate_per_frame;
  src.position_domain = make_line(ledge_a, ledge_b);
  src.velocity_domain = make_box({0.6f, -0.4f, -0.1f}, {1.2f, 0.1f, 0.1f});
  src.color = {0.6f, 0.75f, 0.95f};
  src.size = 0.05f;
  src.lifetime = 4.0f;
  src.lifetime_jitter = 0.8f;
  al.add<Source>(src);
  al.add<Gravity>(Vec3{0, -9.8f, 0});
  al.add<SpeedLimit>(0.0f, 18.0f);
  // Basin floor 6 units below the ledge.
  al.add<Bounce>(make_plane({0, ledge_a.y - 6.0f, 0}, {0, 1, 0}),
                 /*restitution=*/0.2f, /*friction=*/0.5f);
  al.add<KillOld>();
  al.add<Move>();
  return ParticleSystem("waterfall", std::move(al));
}

}  // namespace psanim::psys

#include "psys/store.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace psanim::psys {

namespace {
/// Every position component finite — a NaN/inf anywhere makes edge tests
/// and the boundary-slice sort (a strict weak ordering) meaningless.
bool finite_pos(const Particle& p) {
  return std::isfinite(p.pos.x) && std::isfinite(p.pos.y) &&
         std::isfinite(p.pos.z);
}
}  // namespace

SlicedStore::SlicedStore(int axis, float lo, float hi, std::size_t slices)
    : axis_(axis), lo_(lo), hi_(hi), slices_(slices == 0 ? 1 : slices) {
  if (axis < 0 || axis > 2) {
    throw std::invalid_argument("SlicedStore: axis must be 0, 1 or 2");
  }
  if (!(lo <= hi)) {
    throw std::invalid_argument("SlicedStore: lo must be <= hi");
  }
}

std::size_t SlicedStore::size() const {
  std::size_t n = 0;
  for (const auto& s : slices_) n += s.size();
  return n;
}

std::size_t SlicedStore::slice_of(float k) const {
  const float width = hi_ - lo_;
  if (width <= 0.0f) return 0;
  const auto m = static_cast<float>(slices_.size());
  auto i = static_cast<std::ptrdiff_t>((k - lo_) / width * m);
  i = std::clamp<std::ptrdiff_t>(i, 0,
                                 static_cast<std::ptrdiff_t>(slices_.size()) - 1);
  return static_cast<std::size_t>(i);
}

void SlicedStore::insert(const Particle& p) {
  if (!finite_pos(p)) {
    ++nonfinite_dropped_;
    return;
  }
  slices_[slice_of(key(p))].push_back(p);
}

void SlicedStore::insert_batch(std::span<const Particle> ps) {
  for (const auto& p : ps) insert(p);
}

void SlicedStore::reset_bounds(float lo, float hi) {
  if (!(lo <= hi)) {
    throw std::invalid_argument("SlicedStore::reset_bounds: lo must be <= hi");
  }
  std::vector<Particle> all = take_all();
  lo_ = lo;
  hi_ = hi;
  insert_batch(all);
}

void SlicedStore::for_each_slice(
    const std::function<void(std::span<Particle>)>& fn) {
  for (auto& s : slices_) {
    if (!s.empty()) fn(std::span<Particle>(s));
  }
}

std::vector<Particle> SlicedStore::extract_outside() {
  std::vector<Particle> out;
  // Particles that stayed in [lo, hi) but crossed an internal cut; re-filed
  // after the main pass so we never scan a particle twice.
  std::vector<std::pair<std::size_t, Particle>> moved;
  for (std::size_t i = 0; i < slices_.size(); ++i) {
    auto& s = slices_[i];
    std::size_t keep = 0;
    for (std::size_t r = 0; r < s.size(); ++r) {
      if (!finite_pos(s[r])) {
        // An action blew this particle up (NaN/inf position) — it can't be
        // routed or kept without corrupting the layout, so drop it here,
        // the same choice insert() makes.
        ++nonfinite_dropped_;
        continue;
      }
      const float k = key(s[r]);
      if (k < lo_ || k >= hi_) {
        out.push_back(s[r]);
        continue;
      }
      const std::size_t j = slice_of(k);
      if (j != i) {
        moved.emplace_back(j, s[r]);
        continue;
      }
      s[keep++] = s[r];
    }
    s.resize(keep);
  }
  for (const auto& [j, p] : moved) slices_[j].push_back(p);
  return out;
}

std::size_t SlicedStore::compact_dead() {
  std::size_t removed = 0;
  for (auto& s : slices_) {
    const auto it = std::remove_if(s.begin(), s.end(),
                                   [](const Particle& p) { return p.dead(); });
    removed += static_cast<std::size_t>(s.end() - it);
    s.erase(it, s.end());
  }
  return removed;
}

Donation SlicedStore::donate_low(std::size_t count) {
  return donate(count, /*low=*/true);
}

Donation SlicedStore::donate_high(std::size_t count) {
  return donate(count, /*low=*/false);
}

Donation SlicedStore::donate(std::size_t count, bool low) {
  Donation d;
  d.new_edge = low ? lo_ : hi_;
  if (count == 0 || size() == 0) return d;

  const std::size_t total = size();
  std::size_t needed = std::min(count, total);
  d.particles.reserve(needed);

  float extreme_donated = low ? -1e30f : 1e30f;  // max donated / min donated
  auto note_donated = [&](const Particle& p) {
    const float k = key(p);
    extreme_donated = low ? std::max(extreme_donated, k)
                          : std::min(extreme_donated, k);
    d.particles.push_back(p);
  };

  // Visit slices from the donating edge inward.
  const auto m = static_cast<std::ptrdiff_t>(slices_.size());
  for (std::ptrdiff_t step = 0; step < m && needed > 0; ++step) {
    auto& s = slices_[static_cast<std::size_t>(low ? step : m - 1 - step)];
    if (s.empty()) continue;
    if (s.size() <= needed) {
      // Whole sub-slice donated — no sorting required (§4).
      for (const auto& p : s) note_donated(p);
      needed -= s.size();
      s.clear();
      continue;
    }
    // Boundary sub-slice: order by key, take from the donating end.
    std::sort(s.begin(), s.end(), [this](const Particle& a, const Particle& b) {
      return key(a) < key(b);
    });
    d.sorted_elements += s.size();
    if (low) {
      for (std::size_t i = 0; i < needed; ++i) note_donated(s[i]);
      s.erase(s.begin(), s.begin() + static_cast<std::ptrdiff_t>(needed));
    } else {
      const std::size_t start = s.size() - needed;
      for (std::size_t i = start; i < s.size(); ++i) note_donated(s[i]);
      s.resize(start);
    }
    needed = 0;
  }

  // New edge between donated and kept particles. Slices are ordered along
  // the axis, so the first non-empty slice from the donating edge holds
  // the kept extreme.
  if (size() == 0) {
    d.new_edge = low ? hi_ : lo_;
    return d;
  }
  float extreme_kept = low ? 1e30f : -1e30f;
  for (std::ptrdiff_t step = 0; step < m; ++step) {
    const auto& s = slices_[static_cast<std::size_t>(low ? step : m - 1 - step)];
    if (s.empty()) continue;
    for (const auto& p : s) {
      const float k = key(p);
      extreme_kept = low ? std::min(extreme_kept, k) : std::max(extreme_kept, k);
    }
    break;
  }
  // With duplicate keys at the split the two sets cannot be separated
  // exactly; keep the KEPT side's ownership invariant (kept keys stay in
  // the donor's interval) and let tied donated particles bounce back on
  // the next exchange — a one-frame, self-correcting cost.
  if (low) {
    d.new_edge = extreme_donated < extreme_kept
                     ? 0.5f * (extreme_donated + extreme_kept)
                     : extreme_kept;
  } else {
    d.new_edge = extreme_kept < extreme_donated
                     ? 0.5f * (extreme_kept + extreme_donated)
                     : std::nextafter(extreme_kept, 1e30f);
  }
  return d;
}

void SlicedStore::adopt_slices(float lo, float hi,
                               std::vector<std::vector<Particle>> slices) {
  if (!(lo <= hi)) {
    throw std::invalid_argument(
        "SlicedStore::adopt_slices: lo must be <= hi");
  }
  if (slices.empty()) {
    throw std::invalid_argument(
        "SlicedStore::adopt_slices: need at least one slice");
  }
  lo_ = lo;
  hi_ = hi;
  slices_ = std::move(slices);
}

std::vector<Particle> SlicedStore::snapshot() const {
  std::vector<Particle> out;
  out.reserve(size());
  for (const auto& s : slices_) out.insert(out.end(), s.begin(), s.end());
  return out;
}

std::vector<Particle> SlicedStore::take_all() {
  std::vector<Particle> out;
  out.reserve(size());
  for (auto& s : slices_) {
    out.insert(out.end(), s.begin(), s.end());
    s.clear();
  }
  return out;
}

}  // namespace psanim::psys

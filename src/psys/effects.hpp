#pragma once

// Effect presets: ready-made particle systems for the paper's experiments
// and the examples. Snow and fountain follow the §5.1/§5.2 action recipes
// verbatim; the others showcase the wider API.

#include <cstddef>

#include "math/aabb.hpp"
#include "psys/system.hpp"

namespace psanim::psys {

/// §5.1 snow: per frame — create, random acceleration, collide with the
/// ground, eliminate old particles, move. Motion is mainly vertical, so
/// particles tend to stay in their original x-domain.
/// `area`: horizontal extent (x,z) the snow falls over; emission happens
/// near the top (y = area.hi.y).
ParticleSystem snow_system(const Aabb& area, std::size_t rate_per_frame,
                           float lifetime_s = 10.0f);

/// §5.2 fountain: per frame — create, gravity + acceleration, collide,
/// eliminate old, move. Emission is a point jet with horizontal spread, so
/// particles cross x-domains constantly.
ParticleSystem fountain_system(Vec3 base, std::size_t rate_per_frame,
                               float jet_speed = 9.0f,
                               float spread = 0.9f,
                               float lifetime_s = 3.0f);

/// Rising, swirling, fading smoke column (vortex + fade + grow).
ParticleSystem smoke_system(Vec3 base, std::size_t rate_per_frame);

/// Radial burst with gravity and color blend toward embers.
ParticleSystem fireworks_system(Vec3 burst_center, std::size_t rate_per_frame);

/// Sheet of water falling off a ledge into a basin (line source + bounce).
ParticleSystem waterfall_system(Vec3 ledge_a, Vec3 ledge_b,
                                std::size_t rate_per_frame);

}  // namespace psanim::psys

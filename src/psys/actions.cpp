#include "psys/actions.hpp"

#include <cmath>
#include <stdexcept>

namespace psanim::psys {

namespace {
/// Every apply() needs an RNG only if it samples; assert when required.
Rng& require_rng(ActionContext& ctx, const char* who) {
  if (ctx.rng == nullptr) {
    throw std::invalid_argument(std::string(who) +
                                ": ActionContext.rng must be set");
  }
  return *ctx.rng;
}
}  // namespace

Source::Source(Params p) : params_(std::move(p)) {
  if (!params_.position_domain) {
    throw std::invalid_argument("Source: position_domain is required");
  }
  if (!params_.velocity_domain) {
    throw std::invalid_argument("Source: velocity_domain is required");
  }
}

void Source::generate(std::vector<Particle>& out, ActionContext& ctx) const {
  Rng& rng = require_rng(ctx, "Source::generate");
  out.reserve(out.size() + params_.rate);
  for (std::size_t i = 0; i < params_.rate; ++i) {
    Particle p;
    p.pos = params_.position_domain->generate(rng);
    p.prev_pos = p.pos;
    p.vel = params_.velocity_domain->generate(rng);
    p.up = params_.up;
    p.color = params_.color;
    if (params_.color_jitter != Vec3{}) {
      p.color += Vec3{rng.uniform(-params_.color_jitter.x, params_.color_jitter.x),
                      rng.uniform(-params_.color_jitter.y, params_.color_jitter.y),
                      rng.uniform(-params_.color_jitter.z, params_.color_jitter.z)};
    }
    p.size = params_.size;
    p.age = 0.0f;
    p.lifetime = params_.lifetime;
    if (params_.lifetime_jitter > 0) {
      p.lifetime += rng.uniform(-params_.lifetime_jitter, params_.lifetime_jitter);
    }
    p.mass = params_.mass;
    out.push_back(p);
  }
}

void Gravity::apply(std::span<Particle> ps, ActionContext& ctx) const {
  const Vec3 dv = g_ * ctx.dt;
  for (auto& p : ps) {
    if (p.dead()) continue;
    p.vel += dv;
  }
}

void RandomAccel::apply(std::span<Particle> ps, ActionContext& ctx) const {
  Rng& rng = require_rng(ctx, "RandomAccel");
  for (auto& p : ps) {
    if (p.dead()) continue;
    p.vel += domain_->generate(rng) * ctx.dt;
  }
}

void Damping::apply(std::span<Particle> ps, ActionContext& ctx) const {
  const float k = std::pow(per_second_, ctx.dt);
  for (auto& p : ps) {
    if (p.dead()) continue;
    p.vel *= k;
  }
}

void SpeedLimit::apply(std::span<Particle> ps, ActionContext&) const {
  for (auto& p : ps) {
    if (p.dead()) continue;
    const float s2 = p.vel.length2();
    if (s2 <= 0) continue;
    const float s = std::sqrt(s2);
    if (s > max_) p.vel *= max_ / s;
    else if (s < min_) p.vel *= min_ / s;
  }
}

void Bounce::apply(std::span<Particle> ps, ActionContext& ctx) const {
  for (auto& p : ps) {
    if (p.dead()) continue;
    // Where will the particle be after this frame's Move?
    const Vec3 next = p.pos + p.vel * ctx.dt;
    const SurfaceHit hit = obstacle_->surface(next);
    if (hit.signed_distance >= 0.0f) continue;  // not penetrating
    const float vn = p.vel.dot(hit.normal);
    if (vn >= 0.0f) continue;  // already separating
    const Vec3 normal_part = hit.normal * vn;
    const Vec3 tangent_part = p.vel - normal_part;
    p.vel = tangent_part * (1.0f - friction_) - normal_part * restitution_;
  }
}

void Sink::apply(std::span<Particle> ps, ActionContext& ctx) const {
  for (auto& p : ps) {
    if (p.dead()) continue;
    if (region_->within(p.pos) == kill_inside_) {
      p.kill();
      ++ctx.killed;
    }
  }
}

void KillOld::apply(std::span<Particle> ps, ActionContext& ctx) const {
  for (auto& p : ps) {
    if (p.dead()) continue;
    const float limit = age_limit_ > 0 ? age_limit_ : p.lifetime;
    if (limit > 0 && p.age > limit) {
      p.kill();
      ++ctx.killed;
    }
  }
}

void OrbitPoint::apply(std::span<Particle> ps, ActionContext& ctx) const {
  for (auto& p : ps) {
    if (p.dead()) continue;
    const Vec3 d = center_ - p.pos;
    const float dist2 = d.length2() + epsilon_;
    p.vel += d * (magnitude_ * ctx.dt / (dist2 * std::sqrt(dist2)));
  }
}

void Vortex::apply(std::span<Particle> ps, ActionContext& ctx) const {
  for (auto& p : ps) {
    if (p.dead()) continue;
    const Vec3 r = p.pos - center_;
    const Vec3 radial = r - axis_ * r.dot(axis_);
    const float dist = radial.length();
    if (dist < 1e-4f) continue;
    const Vec3 tangent = axis_.cross(radial / dist);
    p.vel += tangent * (magnitude_ * ctx.dt / (1.0f + dist));
  }
}

void Jet::apply(std::span<Particle> ps, ActionContext& ctx) const {
  const Vec3 dv = accel_ * ctx.dt;
  for (auto& p : ps) {
    if (p.dead()) continue;
    if (region_->within(p.pos)) p.vel += dv;
  }
}

void Fade::apply(std::span<Particle> ps, ActionContext& ctx) const {
  const float k = std::pow(per_second_, ctx.dt);
  for (auto& p : ps) {
    if (p.dead()) continue;
    p.alpha *= k;
  }
}

void Grow::apply(std::span<Particle> ps, ActionContext& ctx) const {
  const float ds = per_second_ * ctx.dt;
  for (auto& p : ps) {
    if (p.dead()) continue;
    p.size = std::max(0.0f, p.size + ds);
  }
}

void TargetColor::apply(std::span<Particle> ps, ActionContext& ctx) const {
  const float t = std::min(1.0f, blend_ * ctx.dt);
  for (auto& p : ps) {
    if (p.dead()) continue;
    p.color = lerp(p.color, target_, t);
  }
}

void Move::apply(std::span<Particle> ps, ActionContext& ctx) const {
  for (auto& p : ps) {
    if (p.dead()) continue;
    p.prev_pos = p.pos;
    p.pos += p.vel * ctx.dt;
    p.age += ctx.dt;
    // Orientation follows the velocity for streak rendering.
    if (p.vel.length2() > 1e-12f) p.up = p.vel.normalized();
  }
}

}  // namespace psanim::psys

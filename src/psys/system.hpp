#pragma once

// A particle system: a named action list (Algorithm 1's loop body).
//
// §3.1.3: systems are identified by their position in the creation-order
// vector — creation happens in the same order in every process, so the
// index is a consistent cross-process identifier and particles carry no
// IDs of their own. SystemId is that index.

#include <cstdint>
#include <string>
#include <utility>

#include "psys/action_list.hpp"

namespace psanim::psys {

using SystemId = std::uint32_t;

class ParticleSystem {
 public:
  ParticleSystem(std::string name, ActionList actions)
      : name_(std::move(name)), actions_(std::move(actions)) {}

  const std::string& name() const { return name_; }
  const ActionList& actions() const { return actions_; }

  /// Particles created per frame across the system's sources.
  std::size_t creation_rate() const { return actions_.creation_rate(); }

 private:
  std::string name_;
  ActionList actions_;
};

}  // namespace psanim::psys

#include "psys/particle.hpp"

// Particle is header-only; this TU anchors the library target.

namespace psanim::psys {}

#pragma once

// Actions over particles — the verbs of the particle-system API.
//
// §3.1.5 classifies actions by how they interact with the distribution
// model:
//   * kCreate  — generate particles (run by the manager, which scatters
//                the new particles to calculators by domain);
//   * kModify  — change properties but not position (run locally by each
//                calculator with no communication);
//   * kMove    — change positions (after these, calculators must check
//                whether particles left their domain).
//
// Every action is pure local computation over a span of particles; the
// distribution machinery lives in core/.

#include <memory>
#include <span>
#include <vector>

#include "math/rng.hpp"
#include "psys/particle.hpp"
#include "psys/source_domain.hpp"

namespace psanim::psys {

enum class ActionClass { kCreate, kModify, kMove };

/// Mutable state threaded through one action application.
struct ActionContext {
  float dt = 1.0f / 30.0f;  ///< animation timestep (seconds of scene time)
  Rng* rng = nullptr;       ///< deterministic stream for this application
  std::size_t killed = 0;   ///< particles marked dead by this action
};

class Action {
 public:
  virtual ~Action() = default;

  virtual const char* name() const = 0;
  virtual ActionClass cls() const { return ActionClass::kModify; }

  /// Apply to every (live) particle in `ps`.
  virtual void apply(std::span<Particle> ps, ActionContext& ctx) const = 0;

  /// Relative compute weight: virtual cost = weight * CostModel.action_cost
  /// per particle. Calibrated per action (RNG-heavy actions cost more).
  virtual double cost_weight() const { return 1.0; }
};

using ActionPtr = std::unique_ptr<const Action>;

// ---------------------------------------------------------------------------
// Creation

/// Emits `rate` particles per frame, positions sampled from
/// `position_domain`, velocities from `velocity_domain`.
class Source final : public Action {
 public:
  struct Params {
    std::size_t rate = 0;
    DomainPtr position_domain;
    DomainPtr velocity_domain;
    Vec3 color{1, 1, 1};
    Vec3 color_jitter{0, 0, 0};  ///< uniform +/- per channel
    float size = 1.0f;
    float lifetime = 0.0f;       ///< 0 = immortal
    float lifetime_jitter = 0.0f;
    float mass = 1.0f;
    Vec3 up{0, 1, 0};
  };

  explicit Source(Params p);

  const char* name() const override { return "source"; }
  ActionClass cls() const override { return ActionClass::kCreate; }
  /// kCreate actions are no-ops on existing particles.
  void apply(std::span<Particle>, ActionContext&) const override {}
  double cost_weight() const override { return 2.5; }

  /// Generate this frame's particles into `out` (manager-side).
  void generate(std::vector<Particle>& out, ActionContext& ctx) const;

  std::size_t rate() const { return params_.rate; }
  const Params& params() const { return params_; }

 private:
  Params params_;
};

// ---------------------------------------------------------------------------
// Property modifiers (no repositioning, §3.2.2)

/// vel += g * dt.
class Gravity final : public Action {
 public:
  explicit Gravity(Vec3 g) : g_(g) {}
  const char* name() const override { return "gravity"; }
  void apply(std::span<Particle> ps, ActionContext& ctx) const override;
  double cost_weight() const override { return 0.5; }

 private:
  Vec3 g_;
};

/// vel += sample(accel_domain) * dt — McAllister-style random acceleration
/// (the snow experiment's flutter).
class RandomAccel final : public Action {
 public:
  explicit RandomAccel(DomainPtr accel_domain)
      : domain_(std::move(accel_domain)) {}
  const char* name() const override { return "random-accel"; }
  void apply(std::span<Particle> ps, ActionContext& ctx) const override;
  double cost_weight() const override { return 2.0; }

 private:
  DomainPtr domain_;
};

/// vel *= damping^dt (air drag).
class Damping final : public Action {
 public:
  explicit Damping(float per_second) : per_second_(per_second) {}
  const char* name() const override { return "damping"; }
  void apply(std::span<Particle> ps, ActionContext& ctx) const override;
  double cost_weight() const override { return 0.5; }

 private:
  float per_second_;
};

/// Clamp speed into [min, max].
class SpeedLimit final : public Action {
 public:
  SpeedLimit(float min_speed, float max_speed)
      : min_(min_speed), max_(max_speed) {}
  const char* name() const override { return "speed-limit"; }
  void apply(std::span<Particle> ps, ActionContext& ctx) const override;
  double cost_weight() const override { return 0.6; }

 private:
  float min_;
  float max_;
};

/// Reflect particles off a domain surface with restitution and tangential
/// friction ("simulate collision with object obj" in Algorithm 1).
class Bounce final : public Action {
 public:
  Bounce(DomainPtr obstacle, float restitution, float friction = 0.0f)
      : obstacle_(std::move(obstacle)),
        restitution_(restitution),
        friction_(friction) {}
  const char* name() const override { return "bounce"; }
  void apply(std::span<Particle> ps, ActionContext& ctx) const override;
  double cost_weight() const override { return 1.5; }

 private:
  DomainPtr obstacle_;
  float restitution_;
  float friction_;
};

/// Kill particles inside (or, with kill_inside=false, outside) a domain —
/// "remove particles under the position (x, y, z)" in Algorithm 1 is a
/// Sink on a half-space.
class Sink final : public Action {
 public:
  Sink(DomainPtr region, bool kill_inside = true)
      : region_(std::move(region)), kill_inside_(kill_inside) {}
  const char* name() const override { return "sink"; }
  void apply(std::span<Particle> ps, ActionContext& ctx) const override;
  double cost_weight() const override { return 0.8; }

 private:
  DomainPtr region_;
  bool kill_inside_;
};

/// Kill particles older than their lifetime (or a fixed cutoff).
class KillOld final : public Action {
 public:
  /// age_limit <= 0 means "use each particle's own lifetime".
  explicit KillOld(float age_limit = 0.0f) : age_limit_(age_limit) {}
  const char* name() const override { return "kill-old"; }
  void apply(std::span<Particle> ps, ActionContext& ctx) const override;
  double cost_weight() const override { return 0.3; }

 private:
  float age_limit_;
};

/// Pull particles toward a point with magnitude/epsilon like McAllister's
/// OrbitPoint (gravity well).
class OrbitPoint final : public Action {
 public:
  OrbitPoint(Vec3 center, float magnitude, float epsilon = 0.1f)
      : center_(center), magnitude_(magnitude), epsilon_(epsilon) {}
  const char* name() const override { return "orbit-point"; }
  void apply(std::span<Particle> ps, ActionContext& ctx) const override;
  double cost_weight() const override { return 1.2; }

 private:
  Vec3 center_;
  float magnitude_;
  float epsilon_;
};

/// Swirl around an axis (smoke columns).
class Vortex final : public Action {
 public:
  Vortex(Vec3 center, Vec3 axis, float magnitude)
      : center_(center), axis_(axis.normalized()), magnitude_(magnitude) {}
  const char* name() const override { return "vortex"; }
  void apply(std::span<Particle> ps, ActionContext& ctx) const override;
  double cost_weight() const override { return 1.6; }

 private:
  Vec3 center_;
  Vec3 axis_;
  float magnitude_;
};

/// Constant acceleration applied only inside a region (a jet of wind).
class Jet final : public Action {
 public:
  Jet(DomainPtr region, Vec3 accel)
      : region_(std::move(region)), accel_(accel) {}
  const char* name() const override { return "jet"; }
  void apply(std::span<Particle> ps, ActionContext& ctx) const override;
  double cost_weight() const override { return 1.0; }

 private:
  DomainPtr region_;
  Vec3 accel_;
};

/// Exponential alpha fade (smoke dissipation).
class Fade final : public Action {
 public:
  explicit Fade(float per_second) : per_second_(per_second) {}
  const char* name() const override { return "fade"; }
  void apply(std::span<Particle> ps, ActionContext& ctx) const override;
  double cost_weight() const override { return 0.4; }

 private:
  float per_second_;
};

/// Grow (or shrink) size at a constant rate, clamped at >= 0.
class Grow final : public Action {
 public:
  explicit Grow(float per_second) : per_second_(per_second) {}
  const char* name() const override { return "grow"; }
  void apply(std::span<Particle> ps, ActionContext& ctx) const override;
  double cost_weight() const override { return 0.4; }

 private:
  float per_second_;
};

/// Blend color toward a target.
class TargetColor final : public Action {
 public:
  TargetColor(Vec3 target, float blend_per_second)
      : target_(target), blend_(blend_per_second) {}
  const char* name() const override { return "target-color"; }
  void apply(std::span<Particle> ps, ActionContext& ctx) const override;
  double cost_weight() const override { return 0.6; }

 private:
  Vec3 target_;
  float blend_;
};

// ---------------------------------------------------------------------------
// Movement (§3.2.3)

/// Integrate positions: prev_pos = pos; pos += vel * dt; age += dt.
class Move final : public Action {
 public:
  const char* name() const override { return "move"; }
  ActionClass cls() const override { return ActionClass::kMove; }
  void apply(std::span<Particle> ps, ActionContext& ctx) const override;
  double cost_weight() const override { return 0.7; }
};

}  // namespace psanim::psys

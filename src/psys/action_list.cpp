#include "psys/action_list.hpp"

namespace psanim::psys {

std::vector<const Source*> ActionList::sources() const {
  std::vector<const Source*> out;
  for (const auto& a : actions_) {
    if (const auto* s = dynamic_cast<const Source*>(a.get())) {
      out.push_back(s);
    }
  }
  return out;
}

std::size_t ActionList::creation_rate() const {
  std::size_t total = 0;
  for (const Source* s : sources()) total += s->rate();
  return total;
}

double ActionList::modify_move_weight() const {
  double w = 0.0;
  for (const auto& a : actions_) {
    if (a->cls() != ActionClass::kCreate) w += a->cost_weight();
  }
  return w;
}

void FusedPasses::apply(std::span<Particle> ps) {
  for (Pass& p : passes_) {
    // Re-anchored every call: the rng lives in the (movable) pass itself.
    p.ctx.rng = &p.rng;
    p.action->apply(ps, p.ctx);
  }
}

std::size_t FusedPasses::killed() const {
  std::size_t n = 0;
  for (const Pass& p : passes_) n += p.ctx.killed;
  return n;
}

}  // namespace psanim::psys

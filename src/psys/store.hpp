#pragma once

// Sliced particle storage — the §4 storage optimization.
//
// The paper's rewrite replaces "one vector per domain" with "the domain
// broken into sub-domains, one vector each", for two reasons it states
// explicitly: discovering which particles must be shipped to other
// processes no longer requires comparing every particle against the domain
// edges, and load-balancing donations only need to sort the boundary
// sub-vector instead of the whole domain.
//
// SlicedStore holds one calculator's particles of ONE system, partitioned
// into `m` equal sub-slices of the owned interval [lo, hi) along the
// decomposition axis.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "psys/particle.hpp"

namespace psanim::psys {

/// Result of a donation: the particles removed, the new domain edge
/// between donor and receiver, and how many elements had to be sorted
/// (charged to the virtual clock by the caller).
struct Donation {
  std::vector<Particle> particles;
  float new_edge = 0.0f;
  std::size_t sorted_elements = 0;
};

class SlicedStore {
 public:
  /// `axis`: 0/1/2 for x/y/z; `slices`: number of sub-domain vectors.
  SlicedStore(int axis, float lo, float hi, std::size_t slices = 8);

  int axis() const { return axis_; }
  float lo() const { return lo_; }
  float hi() const { return hi_; }
  std::size_t slice_count() const { return slices_.size(); }
  std::size_t size() const;
  bool empty() const { return size() == 0; }

  /// Particle's coordinate along the decomposition axis.
  float key(const Particle& p) const { return p.pos.axis(axis_); }

  /// Insert one particle (must have key in [lo, hi); out-of-range keys
  /// clamp into the edge slices — the caller routes true crossers away
  /// before inserting). A particle with a non-finite position is DROPPED
  /// and counted in nonfinite_dropped(): a NaN key compares false against
  /// every edge, so it would otherwise land in an arbitrary slice, evade
  /// crossing discovery and corrupt exchange conservation.
  void insert(const Particle& p);
  void insert_batch(std::span<const Particle> ps);

  /// Particles dropped because their position went non-finite (NaN/inf),
  /// at insert or extract. Monotone over the store's lifetime.
  std::uint64_t nonfinite_dropped() const { return nonfinite_dropped_; }

  /// Change the owned interval (after a load-balance boundary move or an
  /// initial decomposition) and redistribute current particles into the
  /// new uniform sub-slices. Particles now outside [lo, hi) stay, clamped
  /// to edge slices; use extract_outside first.
  void reset_bounds(float lo, float hi);

  /// Apply `fn` to every sub-slice (mutable spans).
  void for_each_slice(const std::function<void(std::span<Particle>)>& fn);

  /// Remove and return all particles whose key is outside [lo, hi); also
  /// re-files particles that moved across internal sub-slice cuts. Only
  /// edge membership tests touch every particle once — this is the cheap
  /// post-Move pass the sliced layout exists for.
  std::vector<Particle> extract_outside();

  /// Remove dead particles; returns how many were removed.
  std::size_t compact_dead();

  /// Remove and return the `count` particles with the LOWEST keys (donate
  /// toward the left neighbor, §3.2.5: "the particles with lower x values
  /// are the ones to be donated"). Whole sub-slices are taken unsorted;
  /// only the final partial sub-slice is sorted.
  Donation donate_low(std::size_t count);
  /// Mirror image: highest keys, toward the right neighbor.
  Donation donate_high(std::size_t count);

  /// Gather a copy of every particle (rendering, tests).
  std::vector<Particle> snapshot() const;

  /// The internal per-slice layout (checkpoint serialization — replay is
  /// bit-exact only if the slice order, which drives RNG consumption
  /// order, survives the round trip).
  const std::vector<std::vector<Particle>>& raw_slices() const {
    return slices_;
  }
  /// Checkpoint restore: replace bounds and the whole slice layout
  /// verbatim. `slices` must be non-empty and lo <= hi.
  void adopt_slices(float lo, float hi,
                    std::vector<std::vector<Particle>> slices);

  /// Move all particles out, leaving the store empty.
  std::vector<Particle> take_all();

 private:
  std::size_t slice_of(float k) const;
  Donation donate(std::size_t count, bool low);

  int axis_;
  float lo_;
  float hi_;
  std::vector<std::vector<Particle>> slices_;
  std::uint64_t nonfinite_dropped_ = 0;
};

}  // namespace psanim::psys

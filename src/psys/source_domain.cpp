#include "psys/source_domain.hpp"

#include <algorithm>
#include <cmath>

namespace psanim::psys {

std::string to_string(DomainKind k) {
  switch (k) {
    case DomainKind::kPoint: return "point";
    case DomainKind::kLine: return "line";
    case DomainKind::kBox: return "box";
    case DomainKind::kSphere: return "sphere";
    case DomainKind::kDisc: return "disc";
    case DomainKind::kPlane: return "plane";
    case DomainKind::kCylinder: return "cylinder";
  }
  return "unknown";
}

namespace {

class PointDomain final : public Domain {
 public:
  explicit PointDomain(Vec3 p) : p_(p) {}
  DomainKind kind() const override { return DomainKind::kPoint; }
  Vec3 generate(Rng&) const override { return p_; }
  bool within(Vec3 p) const override { return p == p_; }
  SurfaceHit surface(Vec3 p) const override {
    const Vec3 d = p - p_;
    return {d.length(), d.normalized()};
  }
  Aabb bounds() const override { return {p_, p_}; }

 private:
  Vec3 p_;
};

class LineDomain final : public Domain {
 public:
  LineDomain(Vec3 a, Vec3 b) : a_(a), b_(b) {}
  DomainKind kind() const override { return DomainKind::kLine; }
  Vec3 generate(Rng& rng) const override {
    return lerp(a_, b_, rng.next_float());
  }
  bool within(Vec3 p) const override { return surface(p).signed_distance <= 1e-6f; }
  SurfaceHit surface(Vec3 p) const override {
    const Vec3 ab = b_ - a_;
    const float len2 = ab.length2();
    const float t =
        len2 > 0 ? std::clamp((p - a_).dot(ab) / len2, 0.0f, 1.0f) : 0.0f;
    const Vec3 closest = a_ + ab * t;
    const Vec3 d = p - closest;
    return {d.length(), d.normalized()};
  }
  Aabb bounds() const override {
    Aabb b = Aabb::empty();
    b.extend(a_);
    b.extend(b_);
    return b;
  }

 private:
  Vec3 a_;
  Vec3 b_;
};

class BoxDomain final : public Domain {
 public:
  BoxDomain(Vec3 lo, Vec3 hi) : box_(lo, hi) {}
  DomainKind kind() const override { return DomainKind::kBox; }
  Vec3 generate(Rng& rng) const override {
    return rng.in_box(box_.lo, box_.hi);
  }
  bool within(Vec3 p) const override { return box_.contains(p); }
  SurfaceHit surface(Vec3 p) const override {
    if (!box_.contains(p)) {
      const Vec3 c = box_.clamp(p);
      const Vec3 d = p - c;
      return {d.length(), d.normalized()};
    }
    // Inside: distance to the nearest face, normal pointing out of it.
    float best = box_.hi.x - p.x;
    Vec3 n{1, 0, 0};
    auto consider = [&](float dist, Vec3 normal) {
      if (dist < best) {
        best = dist;
        n = normal;
      }
    };
    consider(p.x - box_.lo.x, {-1, 0, 0});
    consider(box_.hi.y - p.y, {0, 1, 0});
    consider(p.y - box_.lo.y, {0, -1, 0});
    consider(box_.hi.z - p.z, {0, 0, 1});
    consider(p.z - box_.lo.z, {0, 0, -1});
    return {-best, n};
  }
  Aabb bounds() const override { return box_; }

 private:
  Aabb box_;
};

class SphereDomain final : public Domain {
 public:
  SphereDomain(Vec3 c, float r) : c_(c), r_(r) {}
  DomainKind kind() const override { return DomainKind::kSphere; }
  Vec3 generate(Rng& rng) const override {
    return c_ + rng.in_unit_ball() * r_;
  }
  bool within(Vec3 p) const override { return (p - c_).length2() <= r_ * r_; }
  SurfaceHit surface(Vec3 p) const override {
    const Vec3 d = p - c_;
    return {d.length() - r_, d.normalized()};
  }
  Aabb bounds() const override {
    return {c_ - Vec3{r_, r_, r_}, c_ + Vec3{r_, r_, r_}};
  }

 private:
  Vec3 c_;
  float r_;
};

class DiscDomain final : public Domain {
 public:
  DiscDomain(Vec3 c, Vec3 n, float r) : c_(c), n_(n.normalized()), r_(r) {}
  DomainKind kind() const override { return DomainKind::kDisc; }
  Vec3 generate(Rng& rng) const override {
    return c_ + rng.in_disc(r_, n_);
  }
  bool within(Vec3 p) const override {
    const SurfaceHit h = surface(p);
    return std::fabs(h.signed_distance) <= 1e-5f;
  }
  SurfaceHit surface(Vec3 p) const override {
    const Vec3 d = p - c_;
    const float h = d.dot(n_);          // height above disc plane
    const Vec3 in_plane = d - n_ * h;   // projection
    const float rad = in_plane.length();
    if (rad <= r_) {
      // Above/below the disc face: signed by the normal side.
      return {h, n_};
    }
    // Closest point is the disc rim.
    const Vec3 rim = c_ + in_plane * (r_ / rad);
    const Vec3 dd = p - rim;
    return {dd.length() * (h < 0 ? -1.0f : 1.0f), dd.normalized()};
  }
  Aabb bounds() const override {
    const Vec3 r{r_, r_, r_};
    return {c_ - r, c_ + r};
  }

 private:
  Vec3 c_;
  Vec3 n_;
  float r_;
};

class PlaneDomain final : public Domain {
 public:
  PlaneDomain(Vec3 p, Vec3 n) : p_(p), n_(n.normalized()) {}
  DomainKind kind() const override { return DomainKind::kPlane; }
  Vec3 generate(Rng& rng) const override {
    // Sample a unit disc around the anchor point: a plane is unbounded, so
    // "uniform on the plane" is taken near the anchor as McAllister does.
    return p_ + rng.in_disc(1.0f, n_);
  }
  bool within(Vec3 p) const override { return (p - p_).dot(n_) < 0.0f; }
  SurfaceHit surface(Vec3 p) const override {
    return {(p - p_).dot(n_), n_};
  }
  Aabb bounds() const override { return Aabb::infinite(); }

 private:
  Vec3 p_;
  Vec3 n_;
};

class CylinderDomain final : public Domain {
 public:
  CylinderDomain(Vec3 a, Vec3 b, float r)
      : a_(a), axis_(b - a), r_(r) {
    len_ = axis_.length();
    dir_ = len_ > 0 ? axis_ / len_ : Vec3{0, 1, 0};
  }
  DomainKind kind() const override { return DomainKind::kCylinder; }
  Vec3 generate(Rng& rng) const override {
    const float t = rng.next_float();
    return a_ + axis_ * t + rng.in_disc(r_, dir_);
  }
  bool within(Vec3 p) const override {
    const float h = (p - a_).dot(dir_);
    if (h < 0 || h > len_) return false;
    const Vec3 radial = (p - a_) - dir_ * h;
    return radial.length2() <= r_ * r_;
  }
  SurfaceHit surface(Vec3 p) const override {
    const float h = std::clamp((p - a_).dot(dir_), 0.0f, len_);
    const Vec3 on_axis = a_ + dir_ * h;
    const Vec3 radial = p - on_axis;
    const float rad = radial.length();
    return {rad - r_, rad > 0 ? radial / rad : Vec3{1, 0, 0}};
  }
  Aabb bounds() const override {
    Aabb b = Aabb::empty();
    const Vec3 r{r_, r_, r_};
    b.extend(a_ - r);
    b.extend(a_ + r);
    b.extend(a_ + axis_ - r);
    b.extend(a_ + axis_ + r);
    return b;
  }

 private:
  Vec3 a_;
  Vec3 axis_;
  Vec3 dir_;
  float len_ = 0;
  float r_;
};

}  // namespace

DomainPtr make_point(Vec3 p) { return std::make_shared<PointDomain>(p); }
DomainPtr make_line(Vec3 a, Vec3 b) {
  return std::make_shared<LineDomain>(a, b);
}
DomainPtr make_box(Vec3 lo, Vec3 hi) {
  return std::make_shared<BoxDomain>(lo, hi);
}
DomainPtr make_sphere(Vec3 center, float radius) {
  return std::make_shared<SphereDomain>(center, radius);
}
DomainPtr make_disc(Vec3 center, Vec3 normal, float radius) {
  return std::make_shared<DiscDomain>(center, normal, radius);
}
DomainPtr make_plane(Vec3 point, Vec3 normal) {
  return std::make_shared<PlaneDomain>(point, normal);
}
DomainPtr make_cylinder(Vec3 a, Vec3 b, float radius) {
  return std::make_shared<CylinderDomain>(a, b, radius);
}

}  // namespace psanim::psys

#pragma once

// The particle record.
//
// §3.1.2 of the paper fixes four mandatory properties — position,
// orientation, age, velocity — and explicitly does NOT require unique
// particle identifiers. The remaining fields mirror McAllister's Particle
// System API (the library the paper's implementation rewrites): previous
// position (needed for segment collision tests), color/alpha/size for
// rendering, lifetime and mass for kill/physics actions. The record is
// trivially copyable: it is exactly what goes on the wire when particles
// change domains.

#include <cstdint>
#include <type_traits>

#include "math/vec.hpp"

namespace psanim::psys {

struct Particle {
  Vec3 pos;       ///< position (mandatory, §3.1.2)
  Vec3 prev_pos;  ///< position at the previous frame (collision segments)
  Vec3 vel;       ///< velocity (mandatory)
  Vec3 up;        ///< orientation (mandatory)
  Vec3 color;     ///< RGB in [0,1]
  float alpha = 1.0f;
  float size = 1.0f;
  float age = 0.0f;       ///< mandatory; seconds since creation
  float lifetime = 0.0f;  ///< kill threshold used by KillOld (0 = immortal)
  float mass = 1.0f;
  std::uint32_t flags = 0;

  static constexpr std::uint32_t kDead = 1u << 0;

  bool dead() const { return (flags & kDead) != 0; }
  void kill() { flags |= kDead; }
};

static_assert(std::is_trivially_copyable_v<Particle>,
              "particles are exchanged between processes as raw bytes");

/// Wire size of one particle; the §5.1/§5.2 exchange-volume numbers are
/// multiples of this.
inline constexpr std::size_t kParticleBytes = sizeof(Particle);

}  // namespace psanim::psys

#pragma once

// Report formatting shared by the bench binaries: paper-style rows plus
// the telemetry-derived quantities §5 quotes in prose.

#include <string>

#include "obs/metrics.hpp"
#include "sim/runner.hpp"
#include "trace/csv.hpp"
#include "trace/table.hpp"

namespace psanim::sim {

/// Summary of one run for prose-style reporting.
struct RunSummary {
  std::string label;
  double speedup = 0.0;
  double time_reduction = 0.0;          ///< §5.3 percentages
  double crossers_per_proc_frame = 0.0; ///< §5.1 "~560", §5.2 "~4000"
  double exchange_kb_per_frame = 0.0;   ///< §5.1 "613 KB", §5.2 "4375 KB"
  std::size_t balance_orders = 0;
  double mean_imbalance = 1.0;
};

RunSummary summarize(const std::string& label, const SpeedupResult& r);

/// One formatted line: "label: speedup 3.15 (time -68%), ...".
std::string to_line(const RunSummary& s);

/// Flattened metrics as a (name,value) CSV — histograms appear as their
/// cumulative bucket/sum/count samples, same rows as the Prometheus text.
trace::CsvWriter metrics_csv(const obs::MetricsRegistry& reg);

/// Prometheus text exposition written to `path` (throws on I/O failure).
void save_metrics_prometheus(const obs::MetricsRegistry& reg,
                             const std::string& path);

}  // namespace psanim::sim

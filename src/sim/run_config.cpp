#include "sim/run_config.hpp"

#include <stdexcept>

namespace psanim::sim {

std::string RunConfig::label() const {
  std::string out;
  for (std::size_t i = 0; i < groups.size(); ++i) {
    if (i) out += " + ";
    const auto& g = groups[i];
    out += std::to_string(g.nodes) + "*" + g.type.name + "(" +
           std::to_string(g.procs) + "P)";
  }
  out += " = " + std::to_string(total_procs()) + "P";
  return out;
}

BuiltCluster build_cluster(const RunConfig& cfg) {
  if (cfg.groups.empty()) {
    throw std::invalid_argument("build_cluster: config has no node groups");
  }
  BuiltCluster out;
  out.spec.preferred = cfg.network;
  out.spec.compiler = cfg.compiler;
  out.spec.platform = cfg.platform;
  // Dedicated nodes for the manager and the image generator.
  out.spec.add(cfg.groups.front().type, 2);
  for (const auto& g : cfg.groups) {
    if (g.nodes < 1 || g.procs < 1) {
      throw std::invalid_argument("build_cluster: group needs >=1 node/proc");
    }
    out.spec.add(g.type, static_cast<std::size_t>(g.nodes));
  }

  // Ranks: 0 manager on node 0, 1 imgen on node 1, calculators group by
  // group, spread one per node first within the group ("8*B (16 P.)" = 2
  // per dual node).
  out.placement.node_of_rank = {0, 1};
  int node_base = 2;
  for (const auto& g : cfg.groups) {
    for (int p = 0; p < g.procs; ++p) {
      out.placement.node_of_rank.push_back(node_base + p % g.nodes);
    }
    node_base += g.nodes;
  }
  out.ncalc = cfg.total_procs();
  return out;
}

double baseline_rate(const RunConfig& cfg) {
  return cfg.baseline_node.cpu.rate(cfg.compiler);
}

}  // namespace psanim::sim

#include "sim/report.hpp"

#include <fstream>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace psanim::sim {

RunSummary summarize(const std::string& label, const SpeedupResult& r) {
  RunSummary s;
  s.label = label;
  s.speedup = r.speedup;
  s.time_reduction = r.time_reduction;
  const auto& tel = r.parallel.telemetry;
  s.crossers_per_proc_frame = tel.avg_crossers_per_proc_per_frame();
  s.exchange_kb_per_frame = tel.avg_exchange_bytes_per_frame() / 1024.0;
  s.balance_orders = tel.total_balance_orders();
  const auto imb = tel.imbalance_series();
  s.mean_imbalance =
      imb.empty() ? 1.0
                  : std::accumulate(imb.begin(), imb.end(), 0.0) /
                        static_cast<double>(imb.size());
  return s;
}

trace::CsvWriter metrics_csv(const obs::MetricsRegistry& reg) {
  trace::CsvWriter csv({"metric", "value"});
  for (const auto& s : reg.samples()) {
    csv.add_row({s.name, obs::format_metric_value(s.value)});
  }
  return csv;
}

void save_metrics_prometheus(const obs::MetricsRegistry& reg,
                             const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("save_metrics_prometheus: cannot open " + path);
  }
  out << reg.prometheus();
  if (!out) {
    throw std::runtime_error("save_metrics_prometheus: write failed: " + path);
  }
}

std::string to_line(const RunSummary& s) {
  std::ostringstream os;
  os << s.label << ": speedup " << trace::Table::num(s.speedup)
     << " (time -" << trace::Table::num(s.time_reduction * 100, 0)
     << "%), crossers/proc/frame "
     << trace::Table::num(s.crossers_per_proc_frame, 0)
     << ", exchange " << trace::Table::num(s.exchange_kb_per_frame, 0)
     << " KB/frame, balance orders " << s.balance_orders
     << ", mean imbalance " << trace::Table::num(s.mean_imbalance);
  return os.str();
}

}  // namespace psanim::sim

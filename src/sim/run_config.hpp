#pragma once

// Experiment configuration: one row of a §5 table — which nodes run how
// many calculator processes, over which network, compiled how, under which
// space/balancing mode, and which machine the sequential baseline uses.

#include <string>
#include <vector>

#include "cluster/cluster_spec.hpp"
#include "cluster/placement.hpp"
#include "core/frame_loop.hpp"

namespace psanim::sim {

/// "4*B (8 P.)" — `procs` calculator processes spread over `nodes` nodes
/// of `type`.
struct NodeGroup {
  cluster::NodeType type;
  int nodes = 1;
  int procs = 1;
};

struct RunConfig {
  std::vector<NodeGroup> groups;
  net::Interconnect network = net::Interconnect::kMyrinet;
  cluster::Compiler compiler = cluster::Compiler::kGcc;
  core::SpaceMode space = core::SpaceMode::kFinite;
  core::LbMode lb = core::LbMode::kDynamicPairwise;
  /// Machine the sequential time is measured on (Table 1: E800+GCC,
  /// Table 2: Itanium+ICC — "the best performance" combination per table).
  cluster::NodeType baseline_node = cluster::NodeType::e800();
  /// Topology platform description (platform::parse form), forwarded into
  /// the built spec. Empty/"flat" = legacy per-pair model.
  std::string platform;

  int total_procs() const {
    int n = 0;
    for (const auto& g : groups) n += g.procs;
    return n;
  }

  /// "8*B / 16 P." style label for table rows.
  std::string label() const;
};

/// Built cluster: node 0 hosts the manager, node 1 the image generator
/// (same type as the first group — the testbed always had spare nodes),
/// remaining nodes host calculators group by group, processes spread one
/// per node first within each group.
struct BuiltCluster {
  cluster::ClusterSpec spec;
  cluster::Placement placement;
  int ncalc = 0;
};

BuiltCluster build_cluster(const RunConfig& cfg);

/// Effective sequential rate of the baseline machine under the config's
/// compiler.
double baseline_rate(const RunConfig& cfg);

}  // namespace psanim::sim

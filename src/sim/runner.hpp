#pragma once

// Speedup harness: run one experiment row (sequential baseline + parallel
// run) and report the paper's derived quantities.

#include <optional>

#include "core/simulation.hpp"
#include "sim/run_config.hpp"

namespace psanim::sim {

struct SpeedupResult {
  double seq_s = 0.0;
  double par_s = 0.0;
  double speedup = 0.0;
  /// 1 - par/seq, the §5.3 "time was reduced by X%" quantity.
  double time_reduction = 0.0;
  core::ParallelResult parallel;
};

/// Run the row. `settings.ncalc`, `.space` and `.lb` are overwritten from
/// the config. Pass `cached_seq_s` to reuse a baseline measured once per
/// table (the paper's rows within one table share theirs). `rt_options`
/// reaches the parallel run's runtime — chaos experiments use it (and
/// `settings.fault_plan`) to study speedups under degraded clusters.
SpeedupResult run_speedup(const core::Scene& scene, core::SimSettings settings,
                          const RunConfig& cfg,
                          std::optional<double> cached_seq_s = std::nullopt,
                          const cluster::CostModel& cost = {},
                          mp::RuntimeOptions rt_options = {});

/// Just the baseline (for caching across rows).
double measure_sequential(const core::Scene& scene,
                          const core::SimSettings& settings,
                          const RunConfig& cfg,
                          const cluster::CostModel& cost = {});

}  // namespace psanim::sim

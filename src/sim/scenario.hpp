#pragma once

// The paper's two workloads (§5) as ready-made scenes, parameterized by
// scale so benches can run reduced sizes quickly and `--full` sizes
// faithfully (8 systems x 400,000 alive particles each).

#include <cstddef>

#include "core/frame_loop.hpp"

namespace psanim::sim {

struct ScenarioParams {
  std::size_t systems = 8;
  /// Alive-particle target per system once the population is steady.
  std::size_t particles_per_system = 40'000;
  std::uint32_t frames = 40;
  float dt = 1.0f / 30.0f;
  /// Population reaches steady state after this fraction of the run:
  /// particle lifetime = steady_fraction * frames * dt, creation rate =
  /// target / lifetime_frames.
  double steady_fraction = 0.5;

  std::uint32_t lifetime_frames() const {
    const auto f = static_cast<std::uint32_t>(
        steady_fraction * static_cast<double>(frames));
    return f > 0 ? f : 1;
  }
  std::size_t rate_per_frame() const {
    return (particles_per_system + lifetime_frames() - 1) / lifetime_frames();
  }
};

/// §5.1 snow: all systems emit over the same area; motion mainly vertical,
/// load uniform along x.
core::Scene make_snow_scene(const ScenarioParams& p);

/// §5.2 fountain: one fountain per system, scattered irregularly along x
/// ("the particle systems were distributed through the simulated space");
/// motion both horizontal and vertical, load irregular.
core::Scene make_fountain_scene(const ScenarioParams& p);

/// A showcase scene mixing effects (smoke + fireworks + waterfall), used
/// by the examples.
core::Scene make_showcase_scene(std::size_t rate_per_frame = 800);

}  // namespace psanim::sim

#include "sim/scenario.hpp"

#include <cmath>

#include "psys/effects.hpp"

namespace psanim::sim {

core::Scene make_snow_scene(const ScenarioParams& p) {
  core::Scene scene;
  scene.space = Aabb({-10, 0, -10}, {10, 12, 10});
  scene.look_center = {0, 5, 0};
  scene.look_radius = 12.0f;
  const float lifetime =
      static_cast<float>(p.lifetime_frames()) * p.dt;
  for (std::size_t s = 0; s < p.systems; ++s) {
    scene.systems.push_back(
        psys::snow_system(scene.space, p.rate_per_frame(), lifetime));
  }
  return scene;
}

core::Scene make_fountain_scene(const ScenarioParams& p) {
  core::Scene scene;
  // A wide plaza: each fountain's particle cloud (~8 units across) covers
  // only a slice of the 60-unit space, so equal-width domains do NOT hold
  // equal loads — the irregularity §5.2 builds the whole experiment on.
  scene.space = Aabb({-30, 0, -15}, {30, 14, 15});
  scene.look_center = {0, 4, 0};
  scene.look_radius = 30.0f;
  const float lifetime =
      static_cast<float>(p.lifetime_frames()) * p.dt;
  // Random placement (fixed seed): clumps and gaps along x, like real
  // fountains "distributed through the simulated space".
  Rng place(0xF0417A17ULL);
  for (std::size_t s = 0; s < p.systems; ++s) {
    const Vec3 base{place.uniform(-24.0f, 24.0f), 0.0f,
                    place.uniform(-10.0f, 10.0f)};
    scene.systems.push_back(psys::fountain_system(
        base, p.rate_per_frame(), /*jet_speed=*/9.0f, /*spread=*/0.9f,
        lifetime));
  }
  return scene;
}

core::Scene make_showcase_scene(std::size_t rate_per_frame) {
  core::Scene scene;
  scene.space = Aabb({-12, 0, -12}, {12, 14, 12});
  scene.look_center = {0, 5, 0};
  scene.look_radius = 14.0f;
  scene.systems.push_back(psys::smoke_system({-6, 0, 0}, rate_per_frame));
  scene.systems.push_back(psys::fireworks_system({4, 9, -2}, rate_per_frame));
  scene.systems.push_back(psys::waterfall_system({6, 8, 3}, {9, 8, 5},
                                                 rate_per_frame));
  scene.systems.push_back(psys::fountain_system({0, 0, 4}, rate_per_frame));
  return scene;
}

}  // namespace psanim::sim

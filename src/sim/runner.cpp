#include "sim/runner.hpp"

namespace psanim::sim {

double measure_sequential(const core::Scene& scene,
                          const core::SimSettings& settings,
                          const RunConfig& cfg,
                          const cluster::CostModel& cost) {
  return core::run_sequential(scene, settings, baseline_rate(cfg), cost)
      .total_s;
}

SpeedupResult run_speedup(const core::Scene& scene, core::SimSettings settings,
                          const RunConfig& cfg,
                          std::optional<double> cached_seq_s,
                          const cluster::CostModel& cost,
                          mp::RuntimeOptions rt_options) {
  const BuiltCluster built = build_cluster(cfg);
  settings.ncalc = built.ncalc;
  settings.space = cfg.space;
  settings.lb = cfg.lb;

  SpeedupResult out;
  out.seq_s = cached_seq_s ? *cached_seq_s
                           : measure_sequential(scene, settings, cfg, cost);
  out.parallel = core::run_parallel(scene, settings, built.spec,
                                    built.placement, cost, rt_options);
  out.par_s = out.parallel.animation_s;
  out.speedup = out.par_s > 0 ? out.seq_s / out.par_s : 0.0;
  out.time_reduction = out.seq_s > 0 ? 1.0 - out.par_s / out.seq_s : 0.0;
  return out;
}

}  // namespace psanim::sim

// Cloth demo — the paper's §6 future-work direction realized: a fabric
// sheet (interconnected particles) pinned at two corners, draping over a
// sphere, simulated on 4 emulated cluster processes by column
// decomposition and rendered to PPM frames.
//
//   ./build/examples/cloth_demo [output_dir]

#include <cstdio>
#include <filesystem>

#include "cloth/distributed.hpp"
#include "render/camera.hpp"
#include "render/image_io.hpp"
#include "render/objects.hpp"
#include "render/splat.hpp"

namespace {

/// Render the mesh as point splats plus its structural grid lines.
void render_cloth(const psanim::cloth::ClothMesh& mesh,
                  const psanim::render::Camera& cam,
                  psanim::render::Framebuffer& fb) {
  using namespace psanim;
  for (int r = 0; r < mesh.rows(); ++r) {
    for (int c = 0; c < mesh.cols(); ++c) {
      const Vec3 p = mesh.node(r, c).pos;
      if (c + 1 < mesh.cols()) {
        render::draw_line(fb, cam, p, mesh.node(r, c + 1).pos,
                          {0.85f, 0.3f, 0.25f});
      }
      if (r + 1 < mesh.rows()) {
        render::draw_line(fb, cam, p, mesh.node(r + 1, c).pos,
                          {0.85f, 0.3f, 0.25f});
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace psanim;
  const std::string out_dir = argc > 1 ? argv[1] : "cloth_frames";
  std::filesystem::create_directories(out_dir);

  cloth::ClothParams params;
  params.rows = 24;
  params.cols = 32;
  params.spacing = 0.08f;
  cloth::ClothMesh mesh =
      cloth::ClothMesh::grid(params, {-1.24f, 2.2f, -0.9f}, {1, 0, 0},
                             {0, 0, 1});
  mesh.pin(0, 0);
  mesh.pin(0, params.cols - 1);

  const auto sphere = psys::make_sphere({0, 1.2f, 0}, 0.5f);

  const int ncalc = 4;
  const auto spec = cluster::ClusterSpec::homogeneous(
      cluster::NodeType::e800(), ncalc, net::Interconnect::kMyrinet,
      cluster::Compiler::kGcc);
  const auto placement = cluster::Placement::round_robin(spec, ncalc);

  const render::Camera cam({0, 2.2f, 4.2f}, {0, 1.2f, 0}, {0, 1, 0}, 50,
                           480, 360);
  render::Framebuffer fb(480, 360);

  // Simulate in chunks of 12 substeps per rendered frame.
  const float dt = 1.0f / 240.0f;
  double virtual_s = 0.0;
  for (int frame = 0; frame < 40; ++frame) {
    const auto result = cloth::run_cloth_parallel(
        mesh, /*steps=*/12, dt, {{sphere}}, ncalc, spec, placement);
    mesh = result.final_state;
    virtual_s += result.sim_seconds;

    fb.clear({0.03f, 0.03f, 0.05f});
    render::draw_ground_grid(fb, cam, 0.0f, 3.0f, 12, {0.15f, 0.17f, 0.2f});
    render::draw_sphere(fb, cam, {0, 1.2f, 0}, 0.5f, {0.3f, 0.5f, 0.8f});
    render_cloth(mesh, cam, fb);
    render::write_ppm(fb, out_dir + "/cloth_" + std::to_string(frame) +
                              ".ppm");
  }

  std::printf("simulated %d frames x 12 substeps on %d processes\n", 40,
              ncalc);
  std::printf("virtual cluster time: %.3f s; frames in %s/cloth_*.ppm\n",
              virtual_s, out_dir.c_str());
  std::printf("kinetic energy at end: %.5f J (settling)\n",
              mesh.kinetic_energy());
  return 0;
}

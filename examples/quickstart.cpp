// Quickstart: animate snow on an emulated 4-node cluster and compare
// against the sequential baseline — the library's core loop in ~60 lines.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/simulation.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "sim/scenario.hpp"

int main() {
  using namespace psanim;

  // The scene: 8 snow systems over a 20x12x20 space (a reduced-scale
  // version of the paper's §5.1 workload).
  sim::ScenarioParams params;
  params.systems = 8;
  params.particles_per_system = 5'000;
  params.frames = 30;
  const core::Scene scene = sim::make_snow_scene(params);

  core::SimSettings settings;
  settings.frames = params.frames;
  settings.dt = params.dt;

  // The cluster: 4 E800 nodes (dual Pentium III 1 GHz) on Myrinet, one
  // calculator process per node; manager and image generator get their
  // own nodes. Finite space, dynamic load balancing.
  sim::RunConfig cfg;
  cfg.groups = {{cluster::NodeType::e800(), 4, 4}};
  cfg.network = net::Interconnect::kMyrinet;
  cfg.compiler = cluster::Compiler::kGcc;
  cfg.space = core::SpaceMode::kFinite;
  cfg.lb = core::LbMode::kDynamicPairwise;

  const sim::SpeedupResult r = sim::run_speedup(scene, settings, cfg);
  const sim::RunSummary summary = sim::summarize(cfg.label(), r);

  std::printf("sequential: %.3f virtual s for %u frames (%.1f ms/frame)\n",
              r.seq_s, settings.frames, 1e3 * r.seq_s / settings.frames);
  std::printf("parallel:   %.3f virtual s on %s\n", r.par_s,
              cfg.label().c_str());
  std::printf("%s\n", sim::to_line(summary).c_str());
  return 0;
}

// Snow animation — the paper's §5.1 workload end to end, writing actual
// PPM frames you can open or assemble into a video:
//
//   ./build/examples/snow_animation [output_dir]
//   ffmpeg -i out/frame_%d.ppm snow.mp4     # optional
//
// Demonstrates: building a scene from the effect presets, configuring an
// emulated heterogeneous cluster, running with dynamic load balancing and
// reading the per-frame telemetry.

#include <cstdio>
#include <filesystem>

#include "core/simulation.hpp"
#include "sim/run_config.hpp"
#include "sim/scenario.hpp"

int main(int argc, char** argv) {
  using namespace psanim;
  const std::string out_dir = argc > 1 ? argv[1] : "snow_frames";
  std::filesystem::create_directories(out_dir);

  // 4 snow systems, ~6k steady particles each, 48 frames.
  sim::ScenarioParams params;
  params.systems = 4;
  params.particles_per_system = 6'000;
  params.frames = 48;
  const core::Scene scene = sim::make_snow_scene(params);

  core::SimSettings settings;
  settings.frames = params.frames;
  settings.dt = params.dt;
  settings.image_width = 480;
  settings.image_height = 360;
  settings.frame_dir = out_dir;
  settings.write_every = 4;  // every 4th frame to disk
  settings.lb = core::LbMode::kDynamicPairwise;

  // A small heterogeneous cluster: 2 fast + 2 slow nodes. The balancer
  // shifts domain boundaries so the E60s hold fewer particles.
  sim::RunConfig cfg;
  cfg.groups = {{cluster::NodeType::e800(), 2, 2},
                {cluster::NodeType::e60(), 2, 2}};
  cfg.network = net::Interconnect::kMyrinet;
  const auto built = sim::build_cluster(cfg);
  settings.ncalc = built.ncalc;

  const auto result =
      core::run_parallel(scene, settings, built.spec, built.placement);

  std::printf("rendered %u frames in %.3f virtual s (%.1f ms/frame)\n",
              settings.frames, result.animation_s,
              1e3 * result.animation_s / settings.frames);
  std::printf("frames written to %s/frame_*.ppm\n", out_dir.c_str());

  // Final particle counts per calculator: the slow nodes hold less.
  std::printf("final load per calculator (E800, E800, E60, E60):\n");
  for (const auto& c : result.telemetry.calc_frames()) {
    if (c.frame + 1 == settings.frames) {
      std::printf("  rank %d: %zu particles\n", c.rank, c.particles_held);
    }
  }
  std::printf("balance orders issued: %zu\n",
              result.telemetry.total_balance_orders());
  return 0;
}

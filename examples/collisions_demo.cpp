// Particle-particle collision demo — the capability the model's
// locality-preserving decomposition exists to enable (§3): a dense ball
// pit where particles collide with each other across domain boundaries
// via ghost bands, on 4 emulated calculators.
//
//   ./build/examples/collisions_demo

#include <cstdio>

#include "core/simulation.hpp"
#include "psys/effects.hpp"
#include "sim/run_config.hpp"

int main() {
  using namespace psanim;

  // One dense fountain so droplets actually hit each other.
  core::Scene scene;
  scene.space = Aabb({-6, 0, -6}, {6, 10, 6});
  scene.look_center = {0, 3, 0};
  scene.look_radius = 7.0f;
  scene.systems.push_back(psys::fountain_system({0, 0, 0},
                                                /*rate=*/600,
                                                /*jet_speed=*/7.0f,
                                                /*spread=*/0.6f,
                                                /*lifetime=*/2.0f));

  core::SimSettings settings;
  settings.frames = 40;
  settings.pair_collisions = true;
  settings.collision_radius = 0.08f;
  settings.collision_restitution = 0.4f;

  sim::RunConfig cfg;
  cfg.groups = {{cluster::NodeType::e800(), 4, 4}};
  cfg.network = net::Interconnect::kMyrinet;
  const auto built = sim::build_cluster(cfg);
  settings.ncalc = built.ncalc;

  // Run twice: with and without pair collisions, to show the cost and the
  // effect on the virtual clock.
  const auto with = core::run_parallel(scene, settings, built.spec,
                                       built.placement);
  settings.pair_collisions = false;
  const auto without = core::run_parallel(scene, settings, built.spec,
                                          built.placement);

  std::printf("40 frames, 4 calculators, ~%zu particles steady:\n",
              static_cast<std::size_t>(600 * 2.0f * 30));
  std::printf("  without particle-particle collisions: %.3f virtual s\n",
              without.animation_s);
  std::printf("  with collisions (spatial hash + ghost bands): %.3f "
              "virtual s (%.0f%% overhead)\n",
              with.animation_s,
              100.0 * (with.animation_s / without.animation_s - 1.0));
  std::printf(
      "the decomposition keeps neighbors on neighboring processes, so "
      "collision detection only adds a ghost-band exchange (§3).\n");
  return 0;
}

// Effect showcase — smoke, fireworks, waterfall and a fountain in one
// scene, each a separate particle system with its own domains (§3.3:
// several systems simulated simultaneously), rendered to PPM frames.
//
//   ./build/examples/showcase_effects [output_dir]

#include <cstdio>
#include <filesystem>

#include "core/simulation.hpp"
#include "sim/run_config.hpp"
#include "sim/scenario.hpp"

int main(int argc, char** argv) {
  using namespace psanim;
  const std::string out_dir = argc > 1 ? argv[1] : "showcase_frames";
  std::filesystem::create_directories(out_dir);

  const core::Scene scene = sim::make_showcase_scene(/*rate_per_frame=*/900);

  core::SimSettings settings;
  settings.frames = 60;
  settings.image_width = 480;
  settings.image_height = 360;
  settings.frame_dir = out_dir;
  settings.write_every = 5;
  settings.lb = core::LbMode::kDynamicPairwise;

  sim::RunConfig cfg;
  cfg.groups = {{cluster::NodeType::e800(), 6, 6}};
  cfg.network = net::Interconnect::kMyrinet;
  const auto built = sim::build_cluster(cfg);
  settings.ncalc = built.ncalc;

  const auto result =
      core::run_parallel(scene, settings, built.spec, built.placement);

  std::printf("%zu systems (", scene.systems.size());
  for (std::size_t s = 0; s < scene.systems.size(); ++s) {
    std::printf("%s%s", s ? ", " : "", scene.systems[s].name().c_str());
  }
  std::printf(") over %d calculators\n", settings.ncalc);
  std::printf("animation finished in %.3f virtual s; frames in %s\n",
              result.animation_s, out_dir.c_str());

  // Per-system domain shapes at the end: each system balanced on its own
  // (§3.2: the model keeps per-system domains, amounts and times).
  for (std::size_t s = 0; s < result.final_decomps.size(); ++s) {
    const auto shares = result.final_decomps[s].nominal_shares();
    std::printf("  %-10s domain shares:", scene.systems[s].name().c_str());
    for (const double v : shares) std::printf(" %4.0f%%", 100 * v);
    std::printf("\n");
  }
  return 0;
}

// Fountain cluster study — the paper's §5.2 workload as an experiment you
// can poke at: runs the same irregular fountain scene under static and
// dynamic balancing, prints the speedups side by side and exports the
// per-frame imbalance series as CSV for plotting.
//
//   ./build/examples/fountain_cluster [procs] [csv_path]

#include <cstdio>
#include <cstdlib>

#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "sim/scenario.hpp"
#include "trace/csv.hpp"

int main(int argc, char** argv) {
  using namespace psanim;
  const int procs = argc > 1 ? std::atoi(argv[1]) : 8;
  const std::string csv_path =
      argc > 2 ? argv[2] : "fountain_imbalance.csv";

  sim::ScenarioParams params;
  params.systems = 8;
  params.particles_per_system = 6'000;
  params.frames = 40;
  const core::Scene scene = sim::make_fountain_scene(params);

  core::SimSettings settings;
  settings.frames = params.frames;
  settings.dt = params.dt;

  sim::RunConfig cfg;
  cfg.groups = {{cluster::NodeType::e800(), std::min(procs, 8), procs}};
  cfg.network = net::Interconnect::kMyrinet;
  cfg.space = core::SpaceMode::kFinite;

  const double seq_s = sim::measure_sequential(scene, settings, cfg);
  std::printf("sequential: %.3f virtual s\n", seq_s);

  cfg.lb = core::LbMode::kStatic;
  const auto slb = sim::run_speedup(scene, settings, cfg, seq_s);
  cfg.lb = core::LbMode::kDynamicPairwise;
  const auto dlb = sim::run_speedup(scene, settings, cfg, seq_s);

  std::printf("%s\n", sim::to_line(sim::summarize("SLB", slb)).c_str());
  std::printf("%s\n", sim::to_line(sim::summarize("DLB", dlb)).c_str());
  std::printf("dynamic balancing gains %.0f%% over static on this load\n",
              100.0 * (dlb.speedup / slb.speedup - 1.0));

  // Export imbalance-over-time for both runs.
  const auto s_series = slb.parallel.telemetry.imbalance_series();
  const auto d_series = dlb.parallel.telemetry.imbalance_series();
  trace::CsvWriter csv({"frame", "imbalance_slb", "imbalance_dlb"});
  for (std::size_t f = 0; f < std::min(s_series.size(), d_series.size());
       ++f) {
    csv.add_row({std::to_string(f), std::to_string(s_series[f]),
                 std::to_string(d_series[f])});
  }
  csv.save(csv_path);
  std::printf("imbalance series written to %s\n", csv_path.c_str());
  return 0;
}

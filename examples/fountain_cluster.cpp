// Fountain cluster study — the paper's §5.2 workload as an experiment you
// can poke at: runs the same irregular fountain scene under static and
// dynamic balancing, prints the speedups side by side, exports the
// per-frame imbalance series as CSV for plotting, and finishes with a
// chaos run (message drops + delay spikes + one calculator crash) to show
// the fault-recovery path and its price.
//
//   ./build/examples/fountain_cluster [procs] [csv_path]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "ckpt/vault.hpp"
#include "fault/fault_plan.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "sim/scenario.hpp"
#include "trace/csv.hpp"

int main(int argc, char** argv) {
  using namespace psanim;
  const int procs = argc > 1 ? std::atoi(argv[1]) : 8;
  const std::string csv_path =
      argc > 2 ? argv[2] : "bench/data/fountain_imbalance.csv";

  sim::ScenarioParams params;
  params.systems = 8;
  params.particles_per_system = 6'000;
  params.frames = 40;
  const core::Scene scene = sim::make_fountain_scene(params);

  core::SimSettings settings;
  settings.frames = params.frames;
  settings.dt = params.dt;

  sim::RunConfig cfg;
  cfg.groups = {{cluster::NodeType::e800(), std::min(procs, 8), procs}};
  cfg.network = net::Interconnect::kMyrinet;
  cfg.space = core::SpaceMode::kFinite;

  const double seq_s = sim::measure_sequential(scene, settings, cfg);
  std::printf("sequential: %.3f virtual s\n", seq_s);

  cfg.lb = core::LbMode::kStatic;
  const auto slb = sim::run_speedup(scene, settings, cfg, seq_s);
  cfg.lb = core::LbMode::kDynamicPairwise;
  const auto dlb = sim::run_speedup(scene, settings, cfg, seq_s);

  std::printf("%s\n", sim::to_line(sim::summarize("SLB", slb)).c_str());
  std::printf("%s\n", sim::to_line(sim::summarize("DLB", dlb)).c_str());
  std::printf("dynamic balancing gains %.0f%% over static on this load\n",
              100.0 * (dlb.speedup / slb.speedup - 1.0));

  // Export imbalance-over-time for both runs.
  const auto s_series = slb.parallel.telemetry.imbalance_series();
  const auto d_series = dlb.parallel.telemetry.imbalance_series();
  trace::CsvWriter csv({"frame", "imbalance_slb", "imbalance_dlb"});
  for (std::size_t f = 0; f < std::min(s_series.size(), d_series.size());
       ++f) {
    csv.add_row({std::to_string(f), std::to_string(s_series[f]),
                 std::to_string(d_series[f])});
  }
  const auto parent = std::filesystem::path(csv_path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  csv.save(csv_path);
  std::printf("imbalance series written to %s\n", csv_path.c_str());

  // Chaos run: a lossy, jittery network plus a mid-run calculator crash.
  // Everything below is replayed exactly by re-running with the same plan
  // (see EXPERIMENTS.md "Fault injection").
  core::SimSettings chaos = settings;
  chaos.fault_plan.seed = 42;
  chaos.fault_plan.drop_rate = 0.02;
  chaos.fault_plan.delay_rate = 0.05;
  chaos.fault_plan.delay_spike_s = 1e-3;
  chaos.fault_plan.crashes = {{.calc = 1, .at_frame = params.frames / 2}};
  const auto chaotic = sim::run_speedup(scene, chaos, cfg, seq_s);
  const auto& fs = chaotic.parallel.fault_stats;
  std::printf("\nchaos run (seed %llu, calc 1 dies at frame %u):\n",
              static_cast<unsigned long long>(chaos.fault_plan.seed),
              params.frames / 2);
  std::printf("%s\n", sim::to_line(sim::summarize("DLB+chaos", chaotic)).c_str());
  std::printf(
      "  faults: %llu drops, %llu duplicates, %llu delay spikes, "
      "%.3f virtual s of injected delay\n",
      static_cast<unsigned long long>(fs.drops),
      static_cast<unsigned long long>(fs.duplicates),
      static_cast<unsigned long long>(fs.delay_spikes), fs.injected_delay_s);
  std::printf("  survivors finished all %u frames; chaos cost %.0f%% extra "
              "animation time\n",
              params.frames,
              100.0 * (chaotic.par_s / dlb.par_s - 1.0));

  // Same crash, but with coordinated checkpoints every 4 frames: the
  // manager respawns calculator 1 from the last sealed snapshot and the
  // cluster replays the missed frames instead of merging the dead domain
  // away. The vault is external so we can inspect what was captured.
  core::SimSettings resilient = settings;
  resilient.fault_plan.crashes = chaos.fault_plan.crashes;
  resilient.ckpt.interval = 4;
  ckpt::Vault vault;
  resilient.ckpt_vault = &vault;
  const auto restarted = sim::run_speedup(scene, resilient, cfg, seq_s);
  const auto& rs = restarted.parallel.fault_stats;
  std::printf("\ncheckpoint-restart run (interval 4, same crash):\n");
  std::printf("%s\n",
              sim::to_line(sim::summarize("DLB+ckpt", restarted)).c_str());
  std::printf("  recoveries: %llu restart, %llu merge; vault holds %zu "
              "snapshot images (%.1f MiB) across %zu sealed frames\n",
              static_cast<unsigned long long>(rs.restart_recoveries),
              static_cast<unsigned long long>(rs.merge_recoveries),
              vault.image_count(),
              static_cast<double>(vault.total_bytes()) / (1024.0 * 1024.0),
              vault.sealed_frames().size());
  const auto& clean_fb = dlb.parallel.final_frame;
  const auto& ckpt_fb = restarted.parallel.final_frame;
  const bool identical =
      clean_fb.colors().size() == ckpt_fb.colors().size() &&
      std::memcmp(clean_fb.colors().data(), ckpt_fb.colors().data(),
                  clean_fb.colors().size() * sizeof(render::Color)) == 0;
  std::printf("  final frame %s the fault-free run's, bit for bit\n",
              identical ? "MATCHES" : "DIFFERS FROM");
  std::printf("  restart cost %.0f%% extra animation time vs. the "
              "crash-free run (replay + snapshot overhead)\n",
              100.0 * (restarted.par_s / dlb.par_s - 1.0));
  return 0;
}

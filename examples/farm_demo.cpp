// farm_demo: eight simulation jobs sharing one 10-node virtual cluster.
//
// A mixed batch — snow clips, fountain sequences, different seeds, widths
// and lengths — is submitted to psanim::farm and runs *concurrently*: each
// job is its own mp runtime over the CPU slots the scheduler granted it.
// Afterwards every job is re-run standalone on the same assignment and its
// framebuffer hash compared bit-for-bit: the farm may stretch a job's
// completion time (SMP neighbors contend for the bus), but it must never
// change what the job computes. Exits non-zero on any mismatch.

#include <cstdio>
#include <string>
#include <vector>

#include "cluster/cluster_spec.hpp"
#include "farm/farm.hpp"
#include "farm/job.hpp"
#include "render/compare.hpp"
#include "sim/scenario.hpp"

using namespace psanim;

namespace {

farm::JobSpec make_job(int i) {
  const bool snow = i % 2 == 0;
  sim::ScenarioParams p;
  p.systems = 2;
  p.particles_per_system = 500 + 100 * (i % 3);
  p.frames = 6 + 2 * (i % 4);  // mixed lengths: SJF has something to sort
  farm::JobSpec j;
  j.name = (snow ? "snow" : "fountain") + std::to_string(i);
  j.scene = snow ? sim::make_snow_scene(p) : sim::make_fountain_scene(p);
  j.settings.ncalc = 3;  // world 5: manager + image generator + 3 calcs
  j.settings.frames = p.frames;
  j.settings.seed = 0xFA21ull + static_cast<std::uint64_t>(i);
  j.settings.image_width = 96;
  j.settings.image_height = 72;
  return j;
}

}  // namespace

int main() {
  // The shared cluster: 10 heterogeneous quad-CPU nodes, 40 slots. Eight
  // world-5 jobs fill it exactly, and 5 ranks never fit one quad node, so
  // every job spills a rank onto a node a neighbor also occupies — the
  // farm's SMP-contention stretch shows up while results stay identical.
  cluster::ClusterSpec shared;
  shared.add(cluster::NodeType::generic(1.0, 4), 6);
  shared.add(cluster::NodeType::generic(0.7, 4), 4);

  farm::FarmOptions opts;
  opts.policy = farm::Policy::kSjf;
  farm::Farm f(shared, opts);

  std::vector<farm::JobHandle> handles;
  for (int i = 0; i < 8; ++i) handles.push_back(f.submit(make_job(i)));
  const farm::Report report = f.run();

  std::printf("%-10s %-9s %10s %10s %8s %18s %s\n", "job", "state",
              "start_s", "finish_s", "stretch", "fb_hash", "standalone");
  int mismatches = 0;
  for (int i = 0; i < 8; ++i) {
    const farm::JobResult& r = handles[i].await();
    bool match = false;
    if (r.state == farm::JobState::kDone) {
      const auto solo = farm::standalone_run(make_job(i), r.assignment,
                                             f.options().cost,
                                             f.options().recv_timeout_s);
      match = render::hash_framebuffer(solo.final_frame) == r.fb_hash &&
              solo.animation_s == r.standalone_makespan_s;
    }
    if (!match) ++mismatches;
    std::printf("%-10s %-9s %10.6f %10.6f %8.4f %018llx %s\n",
                handles[i].name().c_str(), to_string(r.state).c_str(),
                r.start_s, r.finish_s, r.stretch,
                static_cast<unsigned long long>(r.fb_hash),
                match ? "bit-identical" : "MISMATCH");
  }

  std::printf("\npolicy=%s jobs_done=%zu makespan=%.6f s mean_turnaround=%.6f s\n",
              to_string(report.policy).c_str(), report.jobs_done,
              report.makespan_s, report.mean_turnaround_s);
  std::printf("completion order:");
  for (const auto& name : report.completion_order) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\nper-node peak residency:");
  for (std::size_t n = 0; n < report.nodes.size(); ++n) {
    std::printf(" %d/%d", report.nodes[n].peak_ranks, shared.nodes[n].cpus);
  }
  std::printf("\n");

  if (mismatches != 0) {
    std::fprintf(stderr, "farm_demo: %d job(s) diverged from standalone\n",
                 mismatches);
    return 1;
  }
  std::printf("all 8 jobs bit-identical to their standalone runs\n");
  return 0;
}

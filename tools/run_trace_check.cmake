# Test driver for obs.trace_export_roundtrip: run the exporter, then the
# JSON validator on both artifacts. Variables: EXPORTER, CHECKER, PYTHON,
# WORK_DIR.

execute_process(
  COMMAND ${EXPORTER}
    --json ${WORK_DIR}/obs_trace.json
    --resumed-json ${WORK_DIR}/obs_trace_resumed.json
    --prom ${WORK_DIR}/obs_metrics.prom
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "obs_trace_export failed (${rc})")
endif()

execute_process(
  COMMAND ${PYTHON} ${CHECKER} ${WORK_DIR}/obs_trace.json
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "check_trace.py rejected the faulted-run trace")
endif()

execute_process(
  COMMAND ${PYTHON} ${CHECKER} ${WORK_DIR}/obs_trace_resumed.json
    --expect-replay
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "check_trace.py rejected the resumed-run trace")
endif()

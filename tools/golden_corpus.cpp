// Golden determinism corpus: per-seed framebuffer fingerprints over a
// 16-seed x {snow, fountain} x {static, dynamic-pairwise} grid of small
// parallel runs.
//
// The corpus file is committed (tests/golden/determinism_corpus.txt) and
// pins the simulation's bit-exact behavior: any change to RNG streams,
// decomposition, exchange ordering, balancing decisions or the renderer
// shows up as a hash mismatch against the checked-in values. CI replays a
// 4-run subset in the fast tier; `check` replays everything.
//
// Usage:
//   golden_corpus generate <corpus-file>
//   golden_corpus check    <corpus-file> [--subset N]
//                          [--exec-mode fibers|threads|both]
//
// `generate` is only rerun deliberately, when a change is *supposed* to
// alter results (new RNG layout, renderer change); the diff then documents
// exactly which cells moved.
//
// `--exec-mode both` is the execution-core differential: every replayed
// cell runs under the fiber scheduler AND the thread-per-rank oracle, and
// both emitted lines (framebuffer hash + %.17g makespan) must be
// string-identical to each other and to the committed corpus. CI wires
// this as the determinism.exec_mode_parity fast-tier test.

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/simulation.hpp"
#include "mp/runtime.hpp"
#include "render/compare.hpp"
#include "sim/run_config.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace psanim;

constexpr int kSeeds = 16;
constexpr std::uint64_t kSeedBase = 0x5eedULL;

struct Cell {
  std::string scene;  // "snow" | "fountain"
  std::string lb;     // "slb" | "dlb"
  std::uint64_t seed = 0;
};

std::vector<Cell> grid() {
  std::vector<Cell> cells;
  for (const char* scene : {"snow", "fountain"}) {
    for (const char* lb : {"slb", "dlb"}) {
      for (int s = 0; s < kSeeds; ++s) {
        cells.push_back({scene, lb, kSeedBase + static_cast<std::uint64_t>(s)});
      }
    }
  }
  return cells;
}

struct RunOut {
  std::uint64_t fb_hash = 0;
  double makespan_s = 0.0;
};

RunOut run_cell(const Cell& cell,
                mp::ExecMode exec_mode = mp::ExecMode::kDefault) {
  sim::ScenarioParams p;
  p.systems = 2;
  p.particles_per_system = 400;
  p.frames = 6;
  const core::Scene scene = cell.scene == "snow" ? sim::make_snow_scene(p)
                                                 : sim::make_fountain_scene(p);
  core::SimSettings settings;
  settings.ncalc = 3;
  settings.frames = p.frames;
  settings.seed = cell.seed;
  settings.image_width = 64;
  settings.image_height = 48;
  settings.lb =
      cell.lb == "slb" ? core::LbMode::kStatic : core::LbMode::kDynamicPairwise;

  sim::RunConfig cfg;
  cfg.groups = {{cluster::NodeType::e800(), 3, settings.ncalc}};
  cfg.network = net::Interconnect::kMyrinet;
  const auto built = sim::build_cluster(cfg);
  const auto r =
      core::run_parallel(scene, settings, built.spec, built.placement, {},
                         mp::RuntimeOptions{.recv_timeout_s = 30.0,
                                            .exec_mode = exec_mode});
  return {render::hash_framebuffer(r.final_frame), r.animation_s};
}

std::string line_for(const Cell& cell, const RunOut& out) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "scene=%s lb=%s seed=%" PRIu64 " fb=%016" PRIx64
                " makespan=%.17g",
                cell.scene.c_str(), cell.lb.c_str(), cell.seed, out.fb_hash,
                out.makespan_s);
  return buf;
}

int generate(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "golden_corpus: cannot write %s\n", path.c_str());
    return 2;
  }
  out << "# psanim golden determinism corpus\n"
      << "# 16 seeds x {snow, fountain} x {slb, dlb}; 2 systems, 400\n"
      << "# particles/system, 6 frames, ncalc 3, 64x48 frame. Regenerate\n"
      << "# with: golden_corpus generate <this file>\n";
  for (const Cell& cell : grid()) {
    out << line_for(cell, run_cell(cell)) << "\n";
  }
  std::printf("golden_corpus: wrote %zu cells to %s\n", grid().size(),
              path.c_str());
  return 0;
}

int check(const std::string& path, int subset, const std::string& exec_mode) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "golden_corpus: cannot read %s\n", path.c_str());
    return 2;
  }
  std::vector<std::string> want;
  for (std::string line; std::getline(in, line);) {
    if (!line.empty() && line[0] != '#') want.push_back(line);
  }
  const auto cells = grid();
  if (want.size() != cells.size()) {
    std::fprintf(stderr,
                 "golden_corpus: corpus has %zu cells, the grid has %zu — "
                 "regenerate it\n",
                 want.size(), cells.size());
    return 2;
  }
  // A subset of N spreads across the grid (every stride-th cell), so even
  // N=4 touches both scenes and both balancing modes.
  const std::size_t n = subset > 0
                            ? std::min<std::size_t>(
                                  static_cast<std::size_t>(subset),
                                  cells.size())
                            : cells.size();
  const std::size_t stride = cells.size() / n;
  std::vector<mp::ExecMode> modes;
  if (exec_mode == "fibers") {
    modes = {mp::ExecMode::kFibers};
  } else if (exec_mode == "threads") {
    modes = {mp::ExecMode::kThreads};
  } else if (exec_mode == "both") {
    modes = {mp::ExecMode::kFibers, mp::ExecMode::kThreads};
  } else if (exec_mode.empty()) {
    modes = {mp::ExecMode::kDefault};
  } else {
    std::fprintf(stderr, "golden_corpus: unknown --exec-mode '%s'\n",
                 exec_mode.c_str());
    return 2;
  }
  int mismatches = 0;
  std::size_t replayed = 0;
  for (std::size_t i = 0; i < cells.size(); i += stride) {
    if (replayed >= n) break;
    ++replayed;
    std::string first;
    for (std::size_t m = 0; m < modes.size(); ++m) {
      const char* mode_name = modes[m] == mp::ExecMode::kThreads ? "threads"
                              : modes[m] == mp::ExecMode::kFibers
                                  ? "fibers"
                                  : "default";
      const std::string got = line_for(cells[i], run_cell(cells[i], modes[m]));
      if (got != want[i]) {
        ++mismatches;
        std::fprintf(stderr, "MISMATCH cell %zu (%s)\n  want: %s\n  got:  %s\n",
                     i, mode_name, want[i].c_str(), got.c_str());
      }
      // Cross-core differential: the fiber line and the thread line must be
      // the same *string*, not merely both corpus-clean.
      if (m == 0) {
        first = got;
      } else if (got != first) {
        ++mismatches;
        std::fprintf(stderr,
                     "EXEC-MODE DIVERGENCE cell %zu\n  fibers:  %s\n"
                     "  threads: %s\n",
                     i, first.c_str(), got.c_str());
      }
    }
  }
  std::printf("golden_corpus: replayed %zu/%zu cells (%zu mode%s), "
              "%d mismatches\n",
              replayed, cells.size(), modes.size(),
              modes.size() == 1 ? "" : "s", mismatches);
  return mismatches == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const auto usage = [] {
    std::fprintf(stderr,
                 "usage: golden_corpus generate <file>\n"
                 "       golden_corpus check <file> [--subset N]\n"
                 "                          [--exec-mode fibers|threads|both]\n");
    return 2;
  };
  if (argc < 3) return usage();
  const std::string mode = argv[1];
  const std::string path = argv[2];
  if (mode == "generate") return generate(path);
  if (mode == "check") {
    int subset = 0;
    std::string exec_mode;
    for (int i = 3; i < argc; ++i) {
      if (std::strcmp(argv[i], "--subset") == 0 && i + 1 < argc) {
        subset = std::atoi(argv[++i]);
      } else if (std::strcmp(argv[i], "--exec-mode") == 0 && i + 1 < argc) {
        exec_mode = argv[++i];
      }
    }
    return check(path, subset, exec_mode);
  }
  return usage();
}

// Acceptance artifact for the obs::analysis layer: run the fountain scene
// with span tracing on, analyze the trace in-process, and
//   - print the critical path as a human-readable attribution table
//     (per-phase/per-rank cost, wire share, per-frame gating rank/phase),
//   - write the schema-versioned report JSON ("psanim-obs-report-v1",
//     validated by tools/check_trace.py),
//   - verify the chain *tiles* [0, makespan] with exact doubles (summed
//     segment costs equal the run makespan by telescoping).
// With --selfcheck the same run is repeated under fibers/w1, fibers/w8
// and the thread-per-rank oracle, and the three report JSONs must be
// byte-identical — the analysis inherits the simulation's determinism
// contract.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/simulation.hpp"
#include "obs/analysis.hpp"
#include "obs/trace.hpp"
#include "sim/run_config.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace psanim;

struct RunOut {
  obs::Analysis analysis;
  std::string json;
  double animation_s = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  std::string scene_name = "fountain";
  std::string platform;
  std::string out_path;
  std::size_t systems = 3;
  std::size_t particles = 2'000;
  std::uint32_t frames = 8;
  int ncalc = 4;
  bool selfcheck = false;
  for (int i = 1; i < argc; ++i) {
    const auto arg = [&](const char* name) {
      return std::strcmp(argv[i], name) == 0 && i + 1 < argc;
    };
    if (arg("--scene")) {
      scene_name = argv[++i];
    } else if (arg("--platform")) {
      platform = argv[++i];
    } else if (arg("--out")) {
      out_path = argv[++i];
    } else if (arg("--systems")) {
      systems = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (arg("--particles")) {
      particles = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (arg("--frames")) {
      frames = static_cast<std::uint32_t>(std::atol(argv[++i]));
    } else if (arg("--ncalc")) {
      ncalc = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--selfcheck") == 0) {
      selfcheck = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--scene fountain|snow] [--systems N] "
                   "[--particles N] [--frames N] [--ncalc N] "
                   "[--platform NAME] [--out report.json] [--selfcheck]\n",
                   argv[0]);
      return 2;
    }
  }

  sim::ScenarioParams p;
  p.systems = systems;
  p.particles_per_system = particles;
  p.frames = frames;
  const core::Scene scene = scene_name == "snow" ? sim::make_snow_scene(p)
                                                 : sim::make_fountain_scene(p);

  sim::RunConfig cfg;
  cfg.groups = {{cluster::NodeType::e800(), ncalc, ncalc}};
  cfg.network = net::Interconnect::kMyrinet;
  cfg.platform = platform;
  const auto built = sim::build_cluster(cfg);

  core::SimSettings settings;
  settings.frames = p.frames;
  settings.dt = p.dt;
  settings.ncalc = built.ncalc;
  settings.image_width = 64;
  settings.image_height = 48;

  const auto run = [&](mp::ExecMode mode, int workers) {
    obs::Trace trace;
    core::SimSettings eff = settings;
    eff.obs.trace = &trace;
    mp::RuntimeOptions rt;
    rt.recv_timeout_s = 60.0;
    rt.exec_mode = mode;
    rt.workers = workers;
    const auto r = core::run_parallel(scene, eff, built.spec,
                                      built.placement, {}, rt);
    RunOut out;
    out.analysis = obs::analyze(trace);
    out.json = obs::analysis_json(out.analysis);
    out.animation_s = r.animation_s;
    return out;
  };

  const RunOut base = run(mp::ExecMode::kDefault, 0);
  const obs::CriticalPath& cp = base.analysis.critical_path;

  // The structural acceptance invariant: the chain telescopes from 0 to
  // the makespan with exact doubles, so the summed segment costs equal
  // the makespan by construction (analyze() itself throws if any link
  // breaks — re-verify the endpoints here where a human can see it).
  if (cp.segments.empty() || cp.segments.front().begin_v != 0.0 ||
      cp.segments.back().end_v != cp.makespan_s) {
    std::fprintf(stderr, "FATAL: critical path does not tile the run\n");
    return 1;
  }

  std::printf("# obs_report: %s %zux%zu x%uf, ncalc=%d, platform=%s\n",
              scene_name.c_str(), systems, particles, frames, ncalc,
              platform.empty() ? "flat" : platform.c_str());
  std::printf("trace makespan     : %.9f s (animation %.9f s)\n",
              cp.makespan_s, base.animation_s);
  std::printf("critical path      : %zu segments, ends on rank %d\n",
              cp.segments.size(), cp.end_rank);
  std::printf("  compute on path  : %.9f s (%.1f%%)\n", cp.compute_s,
              100.0 * cp.compute_s / cp.makespan_s);
  std::printf("  wire on path     : %.9f s (%.1f%% wire share)\n", cp.wire_s,
              100.0 * cp.wire_share());
  std::printf("%-18s  %14s  %6s\n", "phase", "on-path_s", "share");
  // by_phase is label-sorted for determinism; present it cost-sorted.
  std::vector<obs::PhaseCost> phases = cp.by_phase;
  std::sort(phases.begin(), phases.end(),
            [](const obs::PhaseCost& a, const obs::PhaseCost& b) {
              if (a.seconds != b.seconds) return a.seconds > b.seconds;
              return a.label < b.label;
            });
  for (const auto& ph : phases) {
    std::printf("%-18s  %14.9f  %5.1f%%\n", ph.label.c_str(), ph.seconds,
                100.0 * ph.seconds / cp.makespan_s);
  }
  std::printf("%-6s  %4s  %-14s  %10s  %10s  %10s  %9s\n", "frame", "rank",
              "gating_phase", "compute_s", "wait_s", "wire_s", "imbalance");
  for (const auto& f : base.analysis.frames) {
    std::printf("%6u  %4d  %-14s  %10.6f  %10.6f  %10.6f  %9.4f\n", f.frame,
                f.gating_rank, f.gating_phase.c_str(), f.compute_s, f.wait_s,
                f.wire_s, f.imbalance);
  }

  if (selfcheck) {
    // The analysis must be a pure function of the record streams: same
    // scene, any execution core, any worker count -> byte-identical JSON.
    const struct {
      const char* name;
      mp::ExecMode mode;
      int workers;
    } legs[] = {{"fibers/w1", mp::ExecMode::kFibers, 1},
                {"fibers/w8", mp::ExecMode::kFibers, 8},
                {"threads", mp::ExecMode::kThreads, 0}};
    for (const auto& leg : legs) {
      const RunOut again = run(leg.mode, leg.workers);
      if (again.json != base.json) {
        std::fprintf(stderr,
                     "FATAL: analysis diverged under %s (report JSON is "
                     "not byte-identical)\n",
                     leg.name);
        return 1;
      }
    }
    std::printf("selfcheck          : fibers/w1 == fibers/w8 == threads "
                "(report byte-identical)\n");
  }

  if (!out_path.empty()) {
    obs::write_analysis_json(base.analysis, out_path);
    std::printf("report             : %s\n", out_path.c_str());
  }
  return 0;
}

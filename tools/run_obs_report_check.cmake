# Test driver for obs.report_roundtrip: run the analysis reporter with the
# cross-core selfcheck, then validate the report JSON's schema and the
# exact critical-path tiling with the Python checker. Variables: REPORTER,
# CHECKER, PYTHON, WORK_DIR.

execute_process(
  COMMAND ${REPORTER} --selfcheck --out ${WORK_DIR}/obs_report.json
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "obs_report failed (${rc})")
endif()

execute_process(
  COMMAND ${PYTHON} ${CHECKER} ${WORK_DIR}/obs_report.json
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "check_trace.py rejected the analysis report")
endif()

#!/usr/bin/env python3
"""Validate a BENCH_*.json emitted by the bench harnesses.

Usage:
    bench_json.py check FILE [--baseline FILE]

The file's "schema" field selects the rule set:

psanim-bench-pr4-v1 (bench/wallclock_suite) — see below.

psanim-bench-pr7-v1 (bench/rank_scaling --out, superseded by pr8):
  - every rank-scaling row of one world size must report a bit-identical
    virtual makespan (scheduling is a wall-clock knob, never a result
    knob);
  - every platform-sweep leg must be run twice with bit-identical
    makespans (deterministic contention), all legs must share one
    framebuffer hash (topology shifts clocks, never pixels), and the slim
    fat-tree leg must separate from the flat leg (the contention model
    actually bites).

psanim-bench-pr8-v1 (bench/rank_scaling --out) — all pr7 rules, plus the
observability gates:
  - every platform-sweep leg carries its critical-path decomposition
    (cp_compute_s + cp_wire_s must cover cp_makespan_s — the trace
    makespan, which itself must not undercut the animation finish — and
    cp_wire_share must land in [0, 1]);
  - the flat leg's critical-path wire share must sit strictly below the
    two-site WAN leg's (a slower fabric must surface as attributed wire
    time, not mystery compute);
  - the farm_slo section's percentiles are monotone (p50 <= p95 <= p99),
    non-negative, slowdowns >= 1, and SJF's p99 wait must not exceed the
    FIFO schedule's makespan (the bound on the latency trade).

psanim-bench-pr8-farm-v1 (bench/farm_throughput --out):
  - per scenario and policy: wait percentiles monotone and non-negative,
    p99 turnaround >= p99 wait, slowdowns >= 1, queue_depth_peak >= 0;
  - scenarios whose sjf_makespan_gate flag is set must report
    sjf_le_fifo_makespan true (the scheduling win the bench itself
    asserts, re-checked from the artifact).

psanim-bench-pr9-farm-v1 (bench/farm_arrivals --out, superseded by pr10):
  - every leg (fifo, priority, priority_rerun, fair_share) drained the
    whole job stream with zero failures, sane SLO percentiles overall and
    per tenant; every leg actually sampled both tenants (a leg with zero
    interactive jobs fails loudly — its latency gates would otherwise
    pass vacuously);
  - both preemptive legs report preemption_events > 0 (the eviction path
    ran) while FIFO reports exactly 0;
  - the headline gate: the interactive tenant's p99 wait under preemptive
    priority sits strictly below its FIFO p99 wait;
  - the priority and priority_rerun legs match field-for-field as literal
    JSON strings (the preemptive DES is deterministic);
  - fair_share delivered nonzero rank-seconds to both tenants.

psanim-bench-pr10-farm-v1 (bench/farm_arrivals --out) — all pr9 rules
over the extended leg set (+ backfill, backfill_costaware,
backfill_costaware_rerun), plus the backfill gates:
  - the backfill leg's makespan stretch over FIFO sits at or below 1.3x
    (EASY backfill repairs the ~2.6x cost of strict head-of-line
    reservation), with the FIFO makespan guarded nonzero so the ratio is
    never a divide-by-zero or a vacuous pass;
  - the backfill leg's interactive p99 wait stays within 2x of the
    strict-priority leg's (the latency win is not given back), with the
    strict-priority value guarded nonzero;
  - both backfill legs actually backfilled (jobs_backfilled > 0) and
    evicted (preemption_events > 0); non-backfilling legs report exactly
    0 backfills;
  - backfill_costaware and its rerun match field-for-field as literal
    JSON strings (the backfill pass + cost-aware victim selection stay
    deterministic).

PR4 rules:

Hard failures (exit 1):
  - schema mismatch or missing sections
  - virtual-time drift: within a scene, the pooled and unpooled variants
    must report bit-identical virtual makespans, framebuffer hashes and
    final particle counts (wall-clock optimizations must not leak into
    virtual-time results). Floats are compared as their literal JSON
    strings, so "identical" means identical down to the last bit.
  - allocation guard: the pooled variant of every scene, and the pooled
    round-trip kernel, must perform at least 2x fewer heap allocations
    on the message path than the unpooled variant.
  - kernel floor: each kernel's measured speedup (legacy_s / optimized_s)
    must be >= its self-declared min_speedup.
  - --baseline: every scene present in both files must report identical
    makespan strings (regression guard across commits).

Soft warnings (exit 0): kernel speedup below 1.0 while still above its
floor, pooled steady-state allocations that are nonzero.

Stdlib only; floats are parsed with parse_float=str so comparisons are
exact string comparisons, immune to float round-tripping.
"""

import argparse
import json
import sys

SCHEMA = "psanim-bench-pr4-v1"
SCHEMA_PR7 = "psanim-bench-pr7-v1"
SCHEMA_PR8 = "psanim-bench-pr8-v1"
SCHEMA_PR8_FARM = "psanim-bench-pr8-farm-v1"
SCHEMA_PR9_FARM = "psanim-bench-pr9-farm-v1"
SCHEMA_PR10_FARM = "psanim-bench-pr10-farm-v1"

_failures = []
_warnings = []


def fail(msg):
    _failures.append(msg)
    print(f"FAIL: {msg}")


def warn(msg):
    _warnings.append(msg)
    print(f"warn: {msg}")


def ok(msg):
    print(f"  ok: {msg}")


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f, parse_float=str)


def variants_of(scene):
    pooled = [v for v in scene.get("variants", []) if v.get("pool") is True]
    unpooled = [v for v in scene.get("variants", []) if v.get("pool") is False]
    if len(pooled) != 1 or len(unpooled) != 1:
        fail(f"scene {scene.get('name')}: expected exactly one pooled and one "
             f"unpooled variant")
        return None, None
    return pooled[0], unpooled[0]


def check_scene(scene):
    name = scene.get("name", "<unnamed>")
    pooled, unpooled = variants_of(scene)
    if pooled is None:
        return

    for field in ("virtual_makespan_s", "fb_hash", "final_particles"):
        a, b = pooled.get(field), unpooled.get(field)
        if a != b:
            fail(f"scene {name}: {field} differs between pool variants "
                 f"({a!r} vs {b!r}) — virtual time leaked wall-clock state")
        else:
            ok(f"scene {name}: {field} identical across variants ({a})")

    pa = int(pooled.get("buffer_heap_allocs", -1))
    ua = int(unpooled.get("buffer_heap_allocs", -1))
    if pa < 0 or ua < 0:
        fail(f"scene {name}: missing buffer_heap_allocs")
    elif pa * 2 > ua:
        fail(f"scene {name}: pooled heap allocs {pa} not >= 2x fewer than "
             f"unpooled {ua}")
    else:
        ratio = (ua / pa) if pa else float("inf")
        ok(f"scene {name}: heap allocs pooled={pa} unpooled={ua} "
           f"({ratio:.1f}x fewer)")


def check_kernel(k):
    name = k.get("name", "<unnamed>")
    try:
        legacy = float(k["legacy_s"])
        optimized = float(k["optimized_s"])
        floor = float(k.get("min_speedup", "1.0"))
    except (KeyError, ValueError) as e:
        fail(f"kernel {name}: bad timing fields ({e})")
        return
    if optimized <= 0:
        fail(f"kernel {name}: nonpositive optimized_s")
        return
    speedup = legacy / optimized
    if speedup < floor:
        fail(f"kernel {name}: speedup {speedup:.2f}x below floor {floor}x")
    elif speedup < 1.0:
        warn(f"kernel {name}: speedup {speedup:.2f}x (above floor, below 1x)")
    else:
        ok(f"kernel {name}: speedup {speedup:.2f}x (floor {floor}x)")


def check_pool_kernel(pk):
    name = pk.get("name", "<unnamed>")
    pa = int(pk.get("pooled_heap_allocs", -1))
    ua = int(pk.get("unpooled_heap_allocs", -1))
    if pa < 0 or ua < 0:
        fail(f"pool_kernel {name}: missing alloc counts")
        return
    if pa * 2 > ua:
        fail(f"pool_kernel {name}: pooled allocs {pa} not >= 2x fewer than "
             f"unpooled {ua}")
    else:
        ok(f"pool_kernel {name}: heap allocs pooled={pa} unpooled={ua}")
    if pa != 0:
        warn(f"pool_kernel {name}: pooled steady state performed {pa} heap "
             f"allocations (expected 0)")


def check_baseline(doc, base):
    base_scenes = {s.get("name"): s for s in base.get("scenes", [])}
    for scene in doc.get("scenes", []):
        name = scene.get("name")
        if name not in base_scenes:
            warn(f"scene {name}: not present in baseline, skipping")
            continue
        a_pooled, _ = variants_of(scene)
        b_pooled, _ = variants_of(base_scenes[name])
        if a_pooled is None or b_pooled is None:
            continue
        a = a_pooled.get("virtual_makespan_s")
        b = b_pooled.get("virtual_makespan_s")
        if a != b:
            fail(f"scene {name}: virtual makespan drifted from baseline "
                 f"({b!r} -> {a!r})")
        else:
            ok(f"scene {name}: makespan matches baseline ({a})")


def check_pr7(doc, baseline=None):
    rows = doc.get("rank_scaling", [])
    if not rows:
        fail("no rank_scaling section")
    by_world = {}
    for r in rows:
        by_world.setdefault(r.get("world"), set()).add(
            r.get("virtual_makespan_s"))
    for world, spans in sorted(by_world.items()):
        if len(spans) != 1:
            fail(f"world {world}: cores disagree on the virtual makespan "
                 f"({sorted(spans)}) — scheduling leaked into results")
        else:
            ok(f"world {world}: {len([r for r in rows if r.get('world') == world])} "
               f"cores share one makespan ({next(iter(spans))})")

    sweep = doc.get("platform_sweep", [])
    if not sweep:
        fail("no platform_sweep section")
        return
    legs = {r.get("platform"): r for r in sweep}
    hashes = set()
    for r in sweep:
        name = r.get("platform", "<unnamed>")
        a, b = r.get("makespan_run1_s"), r.get("makespan_run2_s")
        if a != b:
            fail(f"platform {name}: two runs disagree ({a!r} vs {b!r}) — "
                 f"contention is not deterministic")
        else:
            ok(f"platform {name}: reproducible makespan ({a})")
        hashes.add(r.get("fb_hash"))
    if len(hashes) != 1:
        fail(f"platform sweep: framebuffer hashes differ across platforms "
             f"({sorted(hashes)}) — topology changed pixels")
    else:
        ok(f"platform sweep: one framebuffer hash across "
           f"{len(sweep)} platforms")
    for required in ("flat", "fattree-slim"):
        if required not in legs:
            fail(f"platform sweep: missing required leg {required!r}")
            return
    if (legs["fattree-slim"]["makespan_run1_s"]
            == legs["flat"]["makespan_run1_s"]):
        fail("platform sweep: slim fat-tree makespan equals flat — the "
             "contention model did not separate the topologies")
    else:
        ok(f"platform sweep: fattree-slim ({legs['fattree-slim']['makespan_run1_s']}) "
           f"separates from flat ({legs['flat']['makespan_run1_s']})")

    if baseline:
        base_legs = {r.get("platform"): r
                     for r in baseline.get("platform_sweep", [])}
        for name, r in legs.items():
            if name not in base_legs:
                warn(f"platform {name}: not present in baseline, skipping")
                continue
            a = r.get("makespan_run1_s")
            b = base_legs[name].get("makespan_run1_s")
            if a != b:
                fail(f"platform {name}: makespan drifted from baseline "
                     f"({b!r} -> {a!r})")
            else:
                ok(f"platform {name}: makespan matches baseline ({a})")


def _percentiles_sane(tag, block, kind="seconds"):
    """Monotone, non-negative wait percentiles; p99 turnaround covers p99
    wait; slowdown percentiles >= 1 (a job can never beat its own
    contention-free standalone run)."""
    try:
        w50 = float(block["wait_p50_s"])
        w95 = float(block["wait_p95_s"])
        w99 = float(block["wait_p99_s"])
        t99 = float(block["turnaround_p99_s"])
        s50 = float(block["slowdown_p50"])
        s99 = float(block["slowdown_p99"])
    except (KeyError, ValueError) as e:
        fail(f"{tag}: missing or malformed SLO percentile ({e})")
        return None
    if not (0.0 <= w50 <= w95 <= w99):
        fail(f"{tag}: wait percentiles not monotone "
             f"(p50={w50} p95={w95} p99={w99})")
    elif t99 < w99:
        fail(f"{tag}: p99 turnaround {t99} below p99 wait {w99}")
    elif not (s50 <= s99):
        fail(f"{tag}: slowdown percentiles not monotone ({s50} > {s99})")
    elif int(block.get("jobs_done", 0)) > 0 and not (s50 >= 1.0 - 1e-9):
        fail(f"{tag}: slowdown p50 {s50} below 1 — a job outran its "
             f"standalone self")
    else:
        ok(f"{tag}: wait p50/p95/p99 = {w50}/{w95}/{w99} {kind}, "
           f"slowdown p99 = {s99}")
    return w99


def check_pr8(doc, baseline=None):
    check_pr7(doc, baseline)

    for r in doc.get("platform_sweep", []):
        name = r.get("platform", "<unnamed>")
        try:
            animation = float(r["makespan_run1_s"])
            makespan = float(r["cp_makespan_s"])
            compute = float(r["cp_compute_s"])
            wire = float(r["cp_wire_s"])
            share = float(r["cp_wire_share"])
        except (KeyError, ValueError) as e:
            fail(f"platform {name}: missing critical-path fields ({e})")
            continue
        if abs(compute + wire - makespan) > 1e-9 * max(1.0, makespan):
            fail(f"platform {name}: cp_compute_s + cp_wire_s = "
                 f"{compute + wire} does not cover the trace makespan "
                 f"{makespan}")
        elif makespan < animation - 1e-9 * max(1.0, animation):
            fail(f"platform {name}: trace makespan {makespan} below the "
                 f"animation finish {animation} — the trace missed records")
        elif not 0.0 <= share <= 1.0:
            fail(f"platform {name}: cp_wire_share {share} outside [0, 1]")
        else:
            ok(f"platform {name}: critical path covers the makespan "
               f"({100.0 * share:.1f}% wire)")
    legs = {r.get("platform"): r for r in doc.get("platform_sweep", [])}
    if "flat" in legs and "wan2" in legs:
        flat = float(legs["flat"].get("cp_wire_share", "0"))
        wan = float(legs["wan2"].get("cp_wire_share", "0"))
        if not flat < wan:
            fail(f"critical-path wire share did not rise from flat ({flat}) "
                 f"to wan2 ({wan}) — the slower fabric hid in compute")
        else:
            ok(f"wire share rises flat -> wan2 ({flat} < {wan})")
    else:
        fail("platform sweep missing the flat or wan2 leg")

    slo = doc.get("farm_slo")
    if not isinstance(slo, dict) or "fifo" not in slo or "sjf" not in slo:
        fail("no farm_slo section with fifo + sjf legs")
        return
    for policy in ("fifo", "sjf"):
        block = slo[policy]
        if int(block.get("jobs_done", 0)) <= 0:
            fail(f"farm_slo {policy}: no completed jobs")
        _percentiles_sane(f"farm_slo {policy}", block)
    sjf_w99 = float(slo["sjf"].get("wait_p99_s", "inf"))
    fifo_makespan = float(slo["fifo"].get("makespan_s", "0"))
    if sjf_w99 > fifo_makespan + 1e-9:
        fail(f"farm_slo: SJF p99 wait {sjf_w99} exceeds the FIFO makespan "
             f"{fifo_makespan} — the latency trade went past its bound")
    else:
        ok(f"farm_slo: SJF p99 wait {sjf_w99} within the FIFO makespan "
           f"{fifo_makespan}")


def check_pr8_farm(doc):
    scenarios = doc.get("scenarios", [])
    if not scenarios:
        fail("no scenarios section")
        return
    for sc in scenarios:
        name = sc.get("name", "<unnamed>")
        for policy in ("fifo", "sjf"):
            block = sc.get(policy)
            if not isinstance(block, dict):
                fail(f"scenario {name}: missing {policy} block")
                continue
            if int(block.get("queue_depth_peak", -1)) < 0:
                fail(f"scenario {name} {policy}: bad queue_depth_peak")
            _percentiles_sane(f"scenario {name} {policy}", block)
        if (sc.get("sjf_makespan_gate") is True
                and sc.get("sjf_le_fifo_makespan") is not True):
            fail(f"scenario {name}: SJF makespan exceeded FIFO's — the "
                 f"scheduling win regressed")


_RERUN_FIELDS = ("makespan_s", "wait_p50_s", "wait_p95_s", "wait_p99_s",
                 "turnaround_p99_s", "slowdown_p99", "preemption_events",
                 "migrations", "jobs_preempted")


def _check_arrival_legs(doc, required):
    """Per-leg checks shared by the pr9 and pr10 arrival-stream schemas.

    Returns the legs dict, or None when the document is too malformed to
    gate. Every leg must have drained the full stream, carry sane SLO
    percentiles, and have actually *sampled* both tenants: a leg whose
    interactive (or batch) tenant block is missing or empty fails loudly
    here, because every downstream latency gate over that tenant would
    otherwise pass vacuously.
    """
    legs = doc.get("legs")
    if not isinstance(legs, dict) or any(k not in legs for k in required):
        fail(f"legs section must contain {required}")
        return None
    total = int(doc.get("jobs", -1))
    if total <= 0:
        fail("missing or nonpositive jobs count")
        return None
    for name in required:
        block = legs[name]
        if int(block.get("jobs_done", -1)) != total:
            fail(f"leg {name}: drained {block.get('jobs_done')} of {total} "
                 f"jobs — the scheduler lost work")
        if int(block.get("jobs_failed", -1)) != 0:
            fail(f"leg {name}: {block.get('jobs_failed')} jobs failed")
        if int(block.get("queue_depth_peak", -1)) < 0:
            fail(f"leg {name}: bad queue_depth_peak")
        _percentiles_sane(f"leg {name}", block)
        tenants = block.get("tenants", {})
        for tenant in ("interactive", "batch"):
            if int(tenants.get(tenant, {}).get("jobs", 0)) <= 0:
                fail(f"leg {name}: sampled zero {tenant} jobs — every "
                     f"{tenant}-tenant gate would pass vacuously")
        for tenant, slo in tenants.items():
            try:
                t50 = float(slo["wait_p50_s"])
                t99 = float(slo["wait_p99_s"])
                ts99 = float(slo["slowdown_p99"])
            except (KeyError, ValueError) as e:
                fail(f"leg {name} tenant {tenant}: bad SLO block ({e})")
                continue
            if not (0.0 <= t50 <= t99):
                fail(f"leg {name} tenant {tenant}: wait percentiles not "
                     f"monotone (p50={t50} p99={t99})")
            elif int(slo.get("jobs", 0)) > 0 and ts99 < 1.0 - 1e-9:
                fail(f"leg {name} tenant {tenant}: slowdown p99 {ts99} "
                     f"below 1")
    return legs


def _tenant_p99(legs, leg, tenant):
    """The tenant's p99 wait as a float, or None (already failed) when the
    block is missing — never a KeyError crash on degenerate input."""
    try:
        return float(legs[leg]["tenants"][tenant]["wait_p99_s"])
    except (KeyError, ValueError):
        fail(f"leg {leg}: missing or malformed {tenant} tenant block")
        return None


def _check_preemption_and_rerun(legs, preemptive, rerun_pairs):
    """The preemption-exercised and rerun-identity gates shared by pr9 and
    pr10: every preemptive leg evicted, FIFO never did, and each
    (leg, leg_rerun) pair matches field-for-field as literal JSON strings
    (parse_float=str makes that bit-exact determinism)."""
    for name in preemptive:
        if int(legs[name].get("preemption_events", 0)) <= 0:
            fail(f"leg {name}: a preemptive policy never preempted under a "
                 f"heavy-tailed overload — the eviction path is dead")
        else:
            ok(f"leg {name}: {legs[name]['preemption_events']} preemption "
               f"event(s), {legs[name].get('migrations', 0)} migration(s)")
    if int(legs["fifo"].get("preemption_events", -1)) != 0:
        fail("leg fifo: a non-preemptive policy reported preemptions")
    for a, b, extra in rerun_pairs:
        for field in _RERUN_FIELDS + extra:
            va, vb = legs[a].get(field), legs[b].get(field)
            if va != vb:
                fail(f"{a} vs {b}: {field} differs ({va!r} vs {vb!r}) — "
                     f"the preemptive DES leaked nondeterminism")
        ok(f"{a} leg reproduces bit-identically across reruns")


def _check_headline_interactive(legs):
    """PR-9 headline: preemptive priority must cut the interactive
    tenant's p99 wait below FIFO's. Compared as floats (the values come
    from different legs, so string equality is meaningless here)."""
    fifo_i = _tenant_p99(legs, "fifo", "interactive")
    prio_i = _tenant_p99(legs, "priority", "interactive")
    if fifo_i is None or prio_i is None:
        return
    if not prio_i < fifo_i:
        fail(f"interactive p99 wait under priority ({prio_i}) not below "
             f"FIFO ({fifo_i}) — preemption bought nothing")
    else:
        ok(f"interactive p99 wait: priority {prio_i} < fifo {fifo_i}")


def _check_fair_share_service(legs):
    ranks = legs["fair_share"].get("tenant_rank_s", {})
    for tenant in ("interactive", "batch"):
        if float(ranks.get(tenant, "0")) <= 0.0:
            fail(f"fair_share: tenant {tenant} received no service "
                 f"(tenant_rank_s missing or zero)")


def check_pr9_farm(doc):
    legs = _check_arrival_legs(
        doc, ("fifo", "priority", "priority_rerun", "fair_share"))
    if legs is None:
        return
    _check_preemption_and_rerun(
        legs, preemptive=("priority", "fair_share"),
        rerun_pairs=[("priority", "priority_rerun", ())])
    _check_headline_interactive(legs)
    _check_fair_share_service(legs)


def check_pr10_farm(doc):
    required = ("fifo", "priority", "priority_rerun", "fair_share",
                "backfill", "backfill_costaware", "backfill_costaware_rerun")
    legs = _check_arrival_legs(doc, required)
    if legs is None:
        return
    _check_preemption_and_rerun(
        legs,
        preemptive=("priority", "fair_share", "backfill",
                    "backfill_costaware"),
        rerun_pairs=[("priority", "priority_rerun", ()),
                     ("backfill_costaware", "backfill_costaware_rerun",
                      ("jobs_backfilled",))])
    _check_headline_interactive(legs)
    _check_fair_share_service(legs)

    # Backfill actually ran where it should, and only there.
    for name in ("backfill", "backfill_costaware"):
        if int(legs[name].get("jobs_backfilled", 0)) <= 0:
            fail(f"leg {name}: never backfilled a job — the EASY pass "
                 f"is dead")
        else:
            ok(f"leg {name}: {legs[name]['jobs_backfilled']} job(s) "
               f"backfilled")
    for name in ("fifo", "priority", "fair_share"):
        if int(legs[name].get("jobs_backfilled", -1)) != 0:
            fail(f"leg {name}: a non-backfilling leg reported backfills")

    # The PR-10 headline: EASY backfill caps the batch makespan stretch
    # over FIFO at 1.3x (strict reservation pays ~2.6x), without giving
    # back the interactive-latency win (within 2x of strict priority's
    # p99). Both denominators are guarded: a zero FIFO makespan or a zero
    # strict-priority p99 is a degenerate run that must fail loudly, not
    # divide by zero or bound nothing.
    try:
        fifo_mk = float(legs["fifo"]["makespan_s"])
        bf_mk = float(legs["backfill"]["makespan_s"])
    except (KeyError, ValueError) as e:
        fail(f"fifo/backfill legs missing makespan_s ({e})")
        return
    if not fifo_mk > 0.0:
        fail(f"fifo makespan {fifo_mk} not positive — the stretch gate "
             f"is undefined")
        return
    stretch = bf_mk / fifo_mk
    if stretch > 1.3:
        fail(f"backfill makespan stretch {stretch:.3f}x over FIFO exceeds "
             f"the 1.3x bound ({bf_mk} vs {fifo_mk})")
    else:
        ok(f"backfill makespan stretch {stretch:.3f}x <= 1.3x over FIFO")
    prio_i = _tenant_p99(legs, "priority", "interactive")
    bf_i = _tenant_p99(legs, "backfill", "interactive")
    if prio_i is None or bf_i is None:
        return
    if not prio_i > 0.0:
        fail(f"strict-priority interactive p99 wait {prio_i} not positive "
             f"— the 2x latency bound is vacuous")
    elif bf_i > 2.0 * prio_i:
        fail(f"backfill interactive p99 wait {bf_i} exceeds 2x the "
             f"strict-priority value {prio_i}")
    else:
        ok(f"backfill interactive p99 {bf_i} within 2x of strict "
           f"priority's {prio_i}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    sub = ap.add_subparsers(dest="cmd", required=True)
    chk = sub.add_parser("check", help="validate a BENCH_*.json")
    chk.add_argument("file")
    chk.add_argument("--baseline", help="previous BENCH_*.json to compare "
                     "virtual makespans against")
    args = ap.parse_args()

    doc = load(args.file)
    dispatch = {SCHEMA_PR7: check_pr7, SCHEMA_PR8: check_pr8}
    if doc.get("schema") in dispatch:
        dispatch[doc.get("schema")](
            doc, load(args.baseline) if args.baseline else None)
        print(f"\n{args.file}: {len(_failures)} failure(s), "
              f"{len(_warnings)} warning(s)")
        return 1 if _failures else 0
    if doc.get("schema") == SCHEMA_PR8_FARM:
        check_pr8_farm(doc)
        print(f"\n{args.file}: {len(_failures)} failure(s), "
              f"{len(_warnings)} warning(s)")
        return 1 if _failures else 0
    if doc.get("schema") == SCHEMA_PR9_FARM:
        check_pr9_farm(doc)
        print(f"\n{args.file}: {len(_failures)} failure(s), "
              f"{len(_warnings)} warning(s)")
        return 1 if _failures else 0
    if doc.get("schema") == SCHEMA_PR10_FARM:
        check_pr10_farm(doc)
        print(f"\n{args.file}: {len(_failures)} failure(s), "
              f"{len(_warnings)} warning(s)")
        return 1 if _failures else 0
    if doc.get("schema") != SCHEMA:
        fail(f"schema {doc.get('schema')!r} != {SCHEMA!r}")
    scenes = doc.get("scenes", [])
    kernels = doc.get("kernels", [])
    if not scenes:
        fail("no scenes section")
    if not kernels:
        fail("no kernels section")

    for k in kernels:
        check_kernel(k)
    if "pool_kernel" in doc:
        check_pool_kernel(doc["pool_kernel"])
    else:
        fail("no pool_kernel section")
    for s in scenes:
        check_scene(s)
    if args.baseline:
        check_baseline(doc, load(args.baseline))

    print(f"\n{args.file}: {len(_failures)} failure(s), "
          f"{len(_warnings)} warning(s)")
    return 1 if _failures else 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Unit tests for bench_json.py on synthetic artifacts.

The regression these pin down: check_pr9_farm used to pass vacuously when
a leg sampled zero interactive jobs (the tenant loop skipped the empty
block, the KeyError path never fired for a present-but-empty dict), and a
degenerate zero-makespan FIFO leg would have turned the pr10 stretch gate
into a divide-by-zero. Both must fail *loudly* — nonzero exit with a
diagnostic — never crash, never silently pass.

Runs the checker as a subprocess (its failure tally is module-global
state, so each check gets a fresh interpreter). Stdlib only; invoked by
CTest as tools.bench_json_unit.
"""

import copy
import json
import os
import subprocess
import sys
import tempfile
import unittest

CHECKER = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                       "bench_json.py")


def leg(makespan, *, preempted=0, events=0, backfilled=0,
        interactive_jobs=20, interactive_p99=0.006):
    return {
        "makespan_s": makespan,
        "jobs_done": 100, "jobs_failed": 0,
        "jobs_preempted": preempted, "jobs_backfilled": backfilled,
        "preemption_events": events, "migrations": 0,
        "wait_p50_s": 0.01, "wait_p95_s": 0.05, "wait_p99_s": 0.09,
        "turnaround_p99_s": 0.5, "slowdown_p50": 1.5, "slowdown_p99": 40.0,
        "queue_depth_peak": 30,
        "tenants": {
            "interactive": {"jobs": interactive_jobs, "wait_p50_s": 0.001,
                            "wait_p99_s": interactive_p99,
                            "slowdown_p99": 2.0},
            "batch": {"jobs": 100 - interactive_jobs, "wait_p50_s": 0.02,
                      "wait_p99_s": 1.2, "slowdown_p99": 50.0},
        },
        "tenant_rank_s": {"interactive": 0.4, "batch": 3.6},
    }


def pr9_doc():
    prio = leg(10.4, preempted=19, events=22)
    return {
        "schema": "psanim-bench-pr9-farm-v1",
        "mode": "quick", "jobs": 100, "slots": 32,
        "interarrival_mean_s": 0.001,
        "legs": {
            "fifo": leg(4.0, interactive_p99=1.2),
            "priority": prio,
            "priority_rerun": copy.deepcopy(prio),
            "fair_share": leg(10.4, preempted=19, events=22),
        },
    }


def pr10_doc():
    doc = pr9_doc()
    doc["schema"] = "psanim-bench-pr10-farm-v1"
    bfc = leg(5.2, preempted=12, events=20, backfilled=7,
              interactive_p99=0.009)
    doc["legs"]["backfill"] = leg(5.0, preempted=18, events=22, backfilled=2,
                                  interactive_p99=0.01)
    doc["legs"]["backfill_costaware"] = bfc
    doc["legs"]["backfill_costaware_rerun"] = copy.deepcopy(bfc)
    return doc


class BenchJsonCheck(unittest.TestCase):
    def run_check(self, doc):
        with tempfile.NamedTemporaryFile("w", suffix=".json",
                                         delete=False) as f:
            json.dump(doc, f)
            path = f.name
        try:
            return subprocess.run(
                [sys.executable, CHECKER, "check", path],
                capture_output=True, text=True, timeout=60)
        finally:
            os.unlink(path)

    def assert_fails(self, doc, needle):
        r = self.run_check(doc)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn(needle, r.stdout, r.stdout + r.stderr)
        # Loud means a diagnostic, not a traceback.
        self.assertNotIn("Traceback", r.stderr, r.stderr)

    def test_valid_pr9_passes(self):
        r = self.run_check(pr9_doc())
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_valid_pr10_passes(self):
        r = self.run_check(pr10_doc())
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_pr9_zero_interactive_jobs_fails_loudly(self):
        doc = pr9_doc()
        doc["legs"]["priority"]["tenants"]["interactive"]["jobs"] = 0
        doc["legs"]["priority_rerun"]["tenants"]["interactive"]["jobs"] = 0
        self.assert_fails(doc, "zero interactive jobs")

    def test_pr9_missing_interactive_block_fails_loudly(self):
        doc = pr9_doc()
        for name in ("priority", "priority_rerun"):
            del doc["legs"][name]["tenants"]["interactive"]
        self.assert_fails(doc, "zero interactive jobs")

    def test_pr10_zero_fifo_makespan_fails_not_divides(self):
        doc = pr10_doc()
        doc["legs"]["fifo"]["makespan_s"] = 0.0
        self.assert_fails(doc, "stretch gate")

    def test_pr10_stretch_over_bound_fails(self):
        doc = pr10_doc()
        doc["legs"]["backfill"]["makespan_s"] = 10.4  # 2.6x of fifo's 4.0
        self.assert_fails(doc, "stretch")

    def test_pr10_interactive_regression_fails(self):
        doc = pr10_doc()
        doc["legs"]["backfill"]["tenants"]["interactive"]["wait_p99_s"] = 0.1
        self.assert_fails(doc, "2x the strict-priority value")

    def test_pr10_zero_priority_p99_fails_vacuous_bound(self):
        doc = pr10_doc()
        for name in ("priority", "priority_rerun"):
            doc["legs"][name]["tenants"]["interactive"]["wait_p99_s"] = 0.0
            doc["legs"][name]["tenants"]["interactive"]["wait_p50_s"] = 0.0
        doc["legs"]["backfill"]["tenants"]["interactive"]["wait_p99_s"] = 0.0
        doc["legs"]["backfill"]["tenants"]["interactive"]["wait_p50_s"] = 0.0
        self.assert_fails(doc, "vacuous")

    def test_pr10_dead_backfill_fails(self):
        doc = pr10_doc()
        doc["legs"]["backfill"]["jobs_backfilled"] = 0
        self.assert_fails(doc, "never backfilled")

    def test_pr10_rerun_mismatch_fails(self):
        doc = pr10_doc()
        doc["legs"]["backfill_costaware_rerun"]["jobs_backfilled"] = 8
        self.assert_fails(doc, "backfill_costaware_rerun")

    def test_pr10_lost_jobs_fail(self):
        doc = pr10_doc()
        doc["legs"]["backfill"]["jobs_done"] = 99
        self.assert_fails(doc, "lost work")


if __name__ == "__main__":
    unittest.main()

#!/usr/bin/env python3
"""Validate a psanim observability JSON artifact.

Two dialects, dispatched on document shape:

Chrome trace-event exports (tools/obs_trace_export, or any run with
obs.trace_json_path set) — structural and causal soundness:

  - well-formed JSON with a traceEvents array;
  - every rank (pid) has a process_name metadata event;
  - complete ("X") events have non-negative durations;
  - flow starts ("s") and finishes ("f") pair exactly by (cat, id), the
    finish never precedes its start, and no flow dangles;
  - every event's timestamp is non-negative.

Analysis reports (tools/obs_report, or obs.analysis_json_path — a dict
with "schema": "psanim-obs-report-v1"):

  - the critical-path segment chain telescopes from 0 to the makespan with
    *string-identical* endpoints (doubles are printed %.17g, so string
    equality is bit equality: summed span costs equal the makespan
    exactly);
  - compute_s + wire_s covers the makespan, wire_share is consistent;
  - per-frame rows are sane (imbalance >= 1, decompositions non-negative,
    frames strictly increasing).

Exit status 0 on success; prints the first failure and exits 1 otherwise.

Usage: check_trace.py artifact.json [--expect-replay]
"""

import json
import sys


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_report(path):
    """Validate a psanim-obs-report-v1 analysis report.

    Floats are kept as their literal strings (parse_float=str) so the
    telescoping check compares the %.17g text itself — string equality of
    consecutive endpoints is bit-level equality of the doubles.
    """
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f, parse_float=str)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {path}: {e}")

    def lit(v):
        # Integer-valued doubles print %.17g without a decimal point, so
        # json parses them as int despite parse_float=str; str() restores
        # the literal exactly.
        return v if isinstance(v, str) else str(v)

    cp = doc.get("critical_path")
    if not isinstance(cp, dict):
        fail("critical_path missing")
    makespan = lit(doc.get("makespan_s"))
    segments = cp.get("segments")
    if not isinstance(segments, list) or not segments:
        fail("critical_path.segments missing or empty")

    expect = "0"
    total = 0.0
    wire = 0.0
    for i, s in enumerate(segments):
        if lit(s.get("begin_s")) != expect:
            fail(f"segment {i}: begin_s {s.get('begin_s')!r} != previous "
                 f"end {expect!r} — the chain must telescope bit-exactly")
        begin, end = float(s["begin_s"]), float(s["end_s"])
        if not end > begin:
            fail(f"segment {i}: empty or negative span [{begin}, {end}]")
        kind = s.get("kind")
        if kind not in ("compute", "wire"):
            fail(f"segment {i}: unknown kind {kind!r}")
        if kind == "wire":
            wire += end - begin
            if not isinstance(s.get("from_rank"), int):
                fail(f"segment {i}: wire segment without from_rank")
        if not isinstance(s.get("rank"), int) or s["rank"] < 0:
            fail(f"segment {i}: bad rank {s.get('rank')!r}")
        total += end - begin
        expect = lit(s["end_s"])
    if expect != makespan:
        fail(f"chain ends at {expect!r}, makespan is {makespan!r} — summed "
             f"span costs must equal the run makespan exactly")
    makespan_f = float(makespan)
    if abs(total - makespan_f) > 1e-9 * max(1.0, makespan_f):
        fail(f"segment durations sum to {total}, makespan {makespan_f}")
    cover = float(cp.get("compute_s", "0")) + float(cp.get("wire_s", "0"))
    if abs(cover - makespan_f) > 1e-9 * max(1.0, makespan_f):
        fail(f"compute_s + wire_s = {cover} does not cover the makespan")
    share = float(cp.get("wire_share", "0"))
    if not 0.0 <= share <= 1.0:
        fail(f"wire_share {share} outside [0, 1]")
    if makespan_f > 0 and abs(share - wire / makespan_f) > 1e-9:
        fail(f"wire_share {share} inconsistent with segments ({wire})")

    last_frame = -1
    for i, fr in enumerate(doc.get("frames", [])):
        if fr.get("frame") is None or fr["frame"] <= last_frame:
            fail(f"frame row {i}: frames must be strictly increasing")
        last_frame = fr["frame"]
        if float(fr.get("imbalance", "0")) < 1.0 - 1e-12:
            fail(f"frame {fr['frame']}: imbalance below 1 "
                 f"({fr.get('imbalance')})")
        for key in ("compute_s", "wait_s", "wire_s", "slowest_s", "mean_s"):
            if float(fr.get(key, "0")) < -1e-12:
                fail(f"frame {fr['frame']}: negative {key}")
        if not isinstance(fr.get("gating_rank"), int):
            fail(f"frame {fr['frame']}: gating_rank missing")

    print(f"check_trace: OK: report with {len(segments)} critical-path "
          f"segments ({100.0 * share:.1f}% wire), "
          f"{len(doc.get('frames', []))} frame rows, chain exact")
    return 0


def main(argv):
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        return 2
    path = argv[0]
    expect_replay = "--expect-replay" in argv[1:]

    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {path}: {e}")

    if isinstance(doc, dict) and doc.get("schema") == "psanim-obs-report-v1":
        return check_report(path)

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents missing or empty")

    named_pids = set()
    pids = set()
    flows = {}  # (cat, id) -> start ts
    finished = set()
    replay_events = 0

    for i, e in enumerate(events):
        ph = e.get("ph")
        pid = e.get("pid")
        if ph == "M":
            if e.get("name") == "process_name":
                named_pids.add(pid)
            continue
        pids.add(pid)
        ts = e.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(f"event {i}: bad ts {ts!r}")
        if e.get("cat") == "replay" or (e.get("args") or {}).get("replayed"):
            replay_events += 1
        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"event {i} ({e.get('name')}): bad dur {dur!r}")
        elif ph == "s":
            key = (e.get("cat"), e.get("id"))
            if key in flows:
                fail(f"event {i}: duplicate flow start {key}")
            flows[key] = ts
        elif ph == "f":
            key = (e.get("cat"), e.get("id"))
            if key not in flows:
                fail(f"event {i}: flow finish {key} without a start")
            if key in finished:
                fail(f"event {i}: duplicate flow finish {key}")
            if ts < flows[key]:
                fail(f"event {i}: flow {key} finishes at {ts} before its "
                     f"start at {flows[key]} — acausal message")
            finished.add(key)
        elif ph not in ("i", "I"):
            fail(f"event {i}: unexpected phase {ph!r}")

    dangling = set(flows) - finished
    if dangling:
        fail(f"{len(dangling)} flow(s) dangle without a finish, "
             f"e.g. {sorted(dangling)[:3]}")
    unnamed = pids - named_pids
    if unnamed:
        fail(f"pids without process_name metadata: {sorted(unnamed)}")
    if expect_replay and replay_events == 0:
        fail("--expect-replay: no replayed/flight-recorder events found")

    print(f"check_trace: OK: {len(events)} events, {len(pids)} ranks, "
          f"{len(finished)} flow pairs, {replay_events} replay events")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

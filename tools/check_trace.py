#!/usr/bin/env python3
"""Validate a psanim Chrome trace-event JSON export.

Checks that the file tools/obs_trace_export (or any run with
obs.trace_json_path set) produced is structurally sound and causally
consistent:

  - well-formed JSON with a traceEvents array;
  - every rank (pid) has a process_name metadata event;
  - complete ("X") events have non-negative durations;
  - flow starts ("s") and finishes ("f") pair exactly by (cat, id), the
    finish never precedes its start, and no flow dangles;
  - every event's timestamp is non-negative.

Exit status 0 on success; prints the first failure and exits 1 otherwise.

Usage: check_trace.py trace.json [--expect-replay]
"""

import json
import sys


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main(argv):
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        return 2
    path = argv[0]
    expect_replay = "--expect-replay" in argv[1:]

    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {path}: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents missing or empty")

    named_pids = set()
    pids = set()
    flows = {}  # (cat, id) -> start ts
    finished = set()
    replay_events = 0

    for i, e in enumerate(events):
        ph = e.get("ph")
        pid = e.get("pid")
        if ph == "M":
            if e.get("name") == "process_name":
                named_pids.add(pid)
            continue
        pids.add(pid)
        ts = e.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(f"event {i}: bad ts {ts!r}")
        if e.get("cat") == "replay" or (e.get("args") or {}).get("replayed"):
            replay_events += 1
        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"event {i} ({e.get('name')}): bad dur {dur!r}")
        elif ph == "s":
            key = (e.get("cat"), e.get("id"))
            if key in flows:
                fail(f"event {i}: duplicate flow start {key}")
            flows[key] = ts
        elif ph == "f":
            key = (e.get("cat"), e.get("id"))
            if key not in flows:
                fail(f"event {i}: flow finish {key} without a start")
            if key in finished:
                fail(f"event {i}: duplicate flow finish {key}")
            if ts < flows[key]:
                fail(f"event {i}: flow {key} finishes at {ts} before its "
                     f"start at {flows[key]} — acausal message")
            finished.add(key)
        elif ph not in ("i", "I"):
            fail(f"event {i}: unexpected phase {ph!r}")

    dangling = set(flows) - finished
    if dangling:
        fail(f"{len(dangling)} flow(s) dangle without a finish, "
             f"e.g. {sorted(dangling)[:3]}")
    unnamed = pids - named_pids
    if unnamed:
        fail(f"pids without process_name metadata: {sorted(unnamed)}")
    if expect_replay and replay_events == 0:
        fail("--expect-replay: no replayed/flight-recorder events found")

    print(f"check_trace: OK: {len(events)} events, {len(pids)} ranks, "
          f"{len(finished)} flow pairs, {replay_events} replay events")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

// Acceptance artifact for the observability layer: run the snow scene with
// a calculator crash mid-run and restart-from-checkpoint recovery, with
// span tracing + flight recorder on, and export
//   - the faulted run's Chrome trace-event JSON (Perfetto-loadable:
//     per-rank phase spans, send->recv flow arrows, both the pre-crash
//     epoch and the rolled-back replay of frames 4..5),
//   - a resumed run's JSON, whose trace additionally carries the
//     pre-crash history recovered from the checkpointed flight rings,
//     flagged cat "replay", next to the resumed epoch's fresh spans, and
//   - the faulted run's merged metrics as Prometheus text.
// tools/check_trace.py validates both JSONs' structure and causality
// (pass --expect-replay for the resumed one).

#include <cstdio>
#include <cstring>
#include <string>

#include "ckpt/vault.hpp"
#include "core/simulation.hpp"
#include "core/wire.hpp"
#include "obs/trace.hpp"
#include "sim/report.hpp"
#include "sim/run_config.hpp"
#include "sim/scenario.hpp"

int main(int argc, char** argv) {
  using namespace psanim;

  std::string json_path = "obs_trace.json";
  std::string resumed_path = "obs_trace_resumed.json";
  std::string prom_path = "obs_metrics.prom";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--resumed-json") == 0 && i + 1 < argc) {
      resumed_path = argv[++i];
    } else if (std::strcmp(argv[i], "--prom") == 0 && i + 1 < argc) {
      prom_path = argv[++i];
    } else {
      std::printf(
          "usage: %s [--json out.json] [--resumed-json out.json] "
          "[--prom out.prom]\n",
          argv[0]);
      return 2;
    }
  }

  sim::ScenarioParams p;
  p.systems = 2;
  p.particles_per_system = 600;
  p.frames = 8;
  const core::Scene scene = sim::make_snow_scene(p);

  const auto base_settings = [&] {
    core::SimSettings s;
    s.frames = p.frames;
    s.dt = p.dt;
    s.ncalc = 3;
    s.image_width = 64;
    s.image_height = 48;
    s.phase_timeout_s = 10.0;
    s.ckpt.interval = 2;  // snapshots after frames 1, 3, 5
    return s;
  };

  sim::RunConfig cfg;
  cfg.groups = {{cluster::NodeType::e800(), 3, 3}};
  cfg.network = net::Interconnect::kMyrinet;
  const auto built = sim::build_cluster(cfg);
  const auto run = [&](const core::SimSettings& s) {
    return core::run_parallel(scene, s, built.spec, built.placement, {},
                              mp::RuntimeOptions{.recv_timeout_s = 15.0});
  };

  // Leg 1: the faulted run. Calc 1 dies at frame 5, the run rolls back to
  // the frame-3 snapshot and replays — the trace shows both epochs.
  ckpt::Vault vault;
  core::SimSettings faulted = base_settings();
  faulted.ckpt_vault = &vault;
  faulted.fault_plan.crashes = {{.calc = 1, .at_frame = 5}};
  obs::Trace trace;
  faulted.obs.trace = &trace;
  faulted.obs.flight_recorder = true;
  faulted.obs.flight_capacity = 128;
  const auto r = run(faulted);

  trace.write_chrome_json(json_path);
  sim::save_metrics_prometheus(r.metrics, prom_path);

  // Leg 2: resume from the last sealed checkpoint with a brand-new trace.
  // The flight rings inside the snapshots re-emit the pre-crash history
  // into it (cat "replay"), next to the resumed epoch's fresh spans.
  core::SimSettings resumed = base_settings();
  resumed.ckpt_vault = &vault;
  resumed.resume_from = 5;
  obs::Trace trace2;
  resumed.obs.trace = &trace2;
  resumed.obs.flight_recorder = true;
  resumed.obs.flight_capacity = 128;
  run(resumed);
  trace2.write_chrome_json(resumed_path);

  std::printf("faulted snow run: %u frames, crash calc 1 @ frame 5, "
              "%llu restart recovery\n",
              faulted.frames,
              static_cast<unsigned long long>(
                  r.fault_stats.restart_recoveries));
  std::printf("trace          : %s (%zu records)\n", json_path.c_str(),
              trace.record_count());
  std::printf("resumed trace  : %s (%zu records, flight-recorder replay)\n",
              resumed_path.c_str(), trace2.record_count());
  std::printf("metrics        : %s\n", prom_path.c_str());
  return 0;
}

// Extension bench — scaling of the §6 fabric simulation (interconnected
// particles) by column decomposition, on homogeneous and heterogeneous
// clusters. Fixed connectivity means no load balancing: on heterogeneous
// nodes the slowest process gates every step, which is exactly why the
// paper's free-particle model needs its dynamic balancer — a fixed mesh
// cannot shed load without re-partitioning.

#include <cstdio>

#include "cloth/distributed.hpp"
#include "trace/table.hpp"

int main() {
  using namespace psanim;

  cloth::ClothParams params;
  params.rows = 48;
  params.cols = 96;
  cloth::ClothMesh mesh =
      cloth::ClothMesh::grid(params, {0, 3, 0}, {1, 0, 0}, {0, -1, 0});
  for (int c = 0; c < params.cols; ++c) mesh.pin(0, c);

  const int steps = 120;
  const float dt = 1.0f / 240.0f;

  const auto seq = cloth::run_cloth_sequential(mesh, steps, dt, {});
  std::printf("=== Cloth scaling (48x96 mesh, %d steps) ===\n", steps);
  std::printf("sequential (E800): %.4f virtual s\n\n", seq.sim_seconds);

  trace::Table t({"cluster", "procs", "speedup", "efficiency"});
  for (const int n : {1, 2, 4, 8}) {
    const auto spec = cluster::ClusterSpec::homogeneous(
        cluster::NodeType::e800(), static_cast<std::size_t>(n),
        net::Interconnect::kMyrinet, cluster::Compiler::kGcc);
    const auto par = cloth::run_cloth_parallel(
        mesh, steps, dt, {}, n, spec,
        cluster::Placement::round_robin(spec, n));
    const double speedup = seq.sim_seconds / par.sim_seconds;
    t.add_row({"homogeneous E800", std::to_string(n),
               trace::Table::num(speedup),
               trace::Table::num(100 * speedup / n, 0) + "%"});
  }
  // Heterogeneous: half E800, half E60 — the static column split makes
  // the E60s the bottleneck (no balancing possible with fixed meshes).
  for (const int n : {4, 8}) {
    cluster::ClusterSpec spec;
    spec.preferred = net::Interconnect::kMyrinet;
    spec.compiler = cluster::Compiler::kGcc;
    spec.add(cluster::NodeType::e800(), static_cast<std::size_t>(n / 2));
    spec.add(cluster::NodeType::e60(), static_cast<std::size_t>(n / 2));
    const auto par = cloth::run_cloth_parallel(
        mesh, steps, dt, {}, n, spec,
        cluster::Placement::round_robin(spec, n));
    const double speedup = seq.sim_seconds / par.sim_seconds;
    t.add_row({"half E800 + half E60", std::to_string(n),
               trace::Table::num(speedup),
               trace::Table::num(100 * speedup / n, 0) + "%"});
  }
  std::fputs(t.str().c_str(), stdout);
  std::printf(
      "\nshape: homogeneous scaling is near-linear (ghost exchange is "
      "small); the heterogeneous rows are gated by the E60s' 0.55 rate.\n");
  return 0;
}

// Ablation — remote/distributed image generation (§6 future work, the
// WireGL/Pomegranate direction): instead of gathering every particle to
// one image generator, each calculator rasterizes its own particles and
// the image generator composites partial frames (sort-last).
//
// Gather traffic becomes O(pixels * procs) instead of O(particles), so the
// crossover depends on particle count vs image size: many particles on a
// small image favor sort-last; few particles on a large image favor the
// paper's gather design.

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace psanim;
  const auto args = bench::BenchArgs::parse(argc, argv);
  args.print_header("Ablation: particle gather vs sort-last image generation");

  const core::Scene scene = sim::make_snow_scene(args.scenario);
  core::SimSettings settings = args.settings();

  trace::Table t({"image", "procs", "gather speedup", "gather MB/frame",
                  "sort-last speedup", "sort-last MB/frame"});
  for (const int dim : {160, 480}) {
    for (const int procs : {4, 8, 16}) {
      settings.image_width = dim;
      settings.image_height = dim * 3 / 4;
      const int nodes = std::min(procs, 8);
      auto cfg = bench::e800_row(nodes, procs, core::SpaceMode::kFinite,
                                 core::LbMode::kStatic);
      const double seq = sim::measure_sequential(scene, settings, cfg);

      settings.imgen = core::ImageGenMode::kGatherParticles;
      const auto g = sim::run_speedup(scene, settings, cfg, seq);
      double g_bytes = 0, s_bytes = 0;
      for (const auto& f : g.parallel.telemetry.image_frames()) {
        g_bytes += static_cast<double>(f.gather_bytes);
      }
      g_bytes /= std::max<std::size_t>(1, g.parallel.telemetry.frame_count());

      settings.imgen = core::ImageGenMode::kSortLast;
      const auto s = sim::run_speedup(scene, settings, cfg, seq);
      for (const auto& f : s.parallel.telemetry.image_frames()) {
        s_bytes += static_cast<double>(f.gather_bytes);
      }
      s_bytes /= std::max<std::size_t>(1, s.parallel.telemetry.frame_count());

      t.add_row({std::to_string(dim) + "x" + std::to_string(dim * 3 / 4),
                 std::to_string(procs), trace::Table::num(g.speedup),
                 trace::Table::num(g_bytes / 1e6),
                 trace::Table::num(s.speedup),
                 trace::Table::num(s_bytes / 1e6)});
    }
  }
  settings.imgen = core::ImageGenMode::kGatherParticles;
  bench::print_table(t);
  std::printf(
      "expected shape: sort-last traffic is constant per (image, procs) "
      "while gather traffic follows the particle count; sort-last wins "
      "when particles x 16B exceeds procs x pixels x 12B.\n");
  return 0;
}

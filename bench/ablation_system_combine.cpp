// Ablation — §3.3: "there are different ways to combine the processing
// [of several systems]. Depending on the form used, the processing may be
// more or less efficient."
//
// Bundled: one exchange message per peer per frame with all systems'
// crossers. Per-system: a separate exchange round per system. The
// per-system form pays systems x (n-1) messages per calculator per frame,
// so its penalty grows with the system count and the network's
// per-message cost — negligible on Myrinet, visible on Fast-Ethernet.

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace psanim;
  auto args = bench::BenchArgs::parse(argc, argv);
  args.print_header("Ablation: multi-system combination (§3.3)");

  trace::Table t({"network", "systems", "bundled speedup",
                  "per-system speedup", "penalty"});
  for (const auto net :
       {net::Interconnect::kMyrinet, net::Interconnect::kFastEthernet}) {
    for (const std::size_t systems : {2, 8, 16}) {
      sim::ScenarioParams params = args.scenario;
      params.systems = systems;
      // Hold total work constant across system counts.
      params.particles_per_system =
          args.scenario.particles_per_system * 8 / systems;
      const core::Scene scene = sim::make_fountain_scene(params);

      core::SimSettings settings;
      settings.frames = params.frames;
      settings.dt = params.dt;

      auto cfg = bench::e800_row(8, 8, core::SpaceMode::kFinite,
                                 core::LbMode::kDynamicPairwise);
      cfg.network = net;
      const double seq = sim::measure_sequential(scene, settings, cfg);

      settings.combine = core::SystemCombine::kBundled;
      const auto bundled = sim::run_speedup(scene, settings, cfg, seq);
      settings.combine = core::SystemCombine::kPerSystem;
      const auto per_system = sim::run_speedup(scene, settings, cfg, seq);

      t.add_row({net::to_string(net), std::to_string(systems),
                 trace::Table::num(bundled.speedup),
                 trace::Table::num(per_system.speedup),
                 trace::Table::num(
                     100.0 * (1.0 - per_system.speedup / bundled.speedup),
                     1) + "%"});
    }
  }
  bench::print_table(t);
  std::printf(
      "expected shape: the per-system penalty grows with system count and "
      "is far larger on Fast-Ethernet than on Myrinet.\n");
  return 0;
}

// Ablation — the dynamic balancer's two damping knobs (§3.2.5):
//
//   * trigger ratio ("if the difference between their processing times is
//     bigger than a certain value"): too small and the balancer thrashes,
//     moving particles every frame for no gain; too large and imbalance
//     persists.
//   * minimum transfer ("it may not be interesting to perform the
//     transmission"): drops orders whose communication cost exceeds the
//     rebalancing benefit.
//
// Run on the irregular fountain workload, 8 calculators, Myrinet.

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace psanim;
  const auto args = bench::BenchArgs::parse(argc, argv);
  args.print_header("Ablation: balance trigger / minimum-transfer sweep");

  const core::Scene scene = sim::make_fountain_scene(args.scenario);
  const auto cfg = bench::e800_row(8, 8, core::SpaceMode::kFinite,
                                   core::LbMode::kDynamicPairwise);
  core::SimSettings settings = args.settings();
  const double seq = sim::measure_sequential(scene, settings, cfg);

  {
    trace::Table t({"trigger ratio", "speedup", "balance orders",
                    "particles moved", "mean imbalance"});
    for (const double trigger : {0.02, 0.05, 0.1, 0.2, 0.4, 0.8}) {
      settings.dlb = lb::DynamicPairwiseConfig{};
      settings.dlb.trigger_ratio = trigger;
      const auto r = sim::run_speedup(scene, settings, cfg, seq);
      const auto s = sim::summarize("", r);
      t.add_row({trace::Table::num(trigger), trace::Table::num(r.speedup),
                 std::to_string(s.balance_orders),
                 std::to_string(r.parallel.telemetry.total_balance_particles()),
                 trace::Table::num(s.mean_imbalance)});
    }
    bench::print_table(t);
  }
  {
    trace::Table t({"min transfer", "speedup", "balance orders",
                    "particles moved", "mean imbalance"});
    for (const std::uint64_t min_transfer : {0ULL, 32ULL, 256ULL, 1024ULL,
                                             4096ULL}) {
      settings.dlb = lb::DynamicPairwiseConfig{};
      settings.dlb.min_transfer = min_transfer;
      settings.dlb.min_transfer_fraction = 0.0;
      const auto r = sim::run_speedup(scene, settings, cfg, seq);
      const auto s = sim::summarize("", r);
      t.add_row({std::to_string(min_transfer), trace::Table::num(r.speedup),
                 std::to_string(s.balance_orders),
                 std::to_string(r.parallel.telemetry.total_balance_particles()),
                 trace::Table::num(s.mean_imbalance)});
    }
    bench::print_table(t);
  }
  std::printf(
      "expected shape: a sweet spot at moderate trigger (~0.1-0.2); "
      "trigger 0.8 leaves imbalance unfixed, trigger 0.02 moves particles "
      "constantly for little speedup.\n");
  return 0;
}

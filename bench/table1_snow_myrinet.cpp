// Table 1 — Snow simulation, Myrinet + GNU/GCC, E800 nodes.
//
// Paper rows (speedup vs. sequential E800+GCC):
//   Nodes/Procs   IS-SLB  FS-SLB  IS-DLB  FS-DLB
//   4*B / 4 P.     1.74    1.74    1.73    1.75
//   5*B / 5 P.     0.82    2.49    2.90    2.50
//   6*B / 6 P.     1.74    3.12    2.99    3.11
//   7*B / 7 P.     0.92    3.63    3.15    3.65
//   8*B / 8 P.     1.74    4.14    3.37    4.14
//   8*B / 16 P.    1.73    6.47    3.75    6.37
//
// Shape checks (not absolute numbers): IS-SLB plateaus near the two-domain
// speedup for even process counts and drops below 1 for odd counts (only
// the central domain gets snow); FS-SLB scales best (uniform load, no
// balancing overhead); DLB recovers most of the IS pathology but trails
// FS-SLB at high process counts (balancing communication + convergence).

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace psanim;
  const auto args = bench::BenchArgs::parse(argc, argv);
  args.print_header("Table 1: snow, Myrinet + GCC, E800 nodes");

  const core::Scene scene = sim::make_snow_scene(args.scenario);
  const core::SimSettings settings = args.settings();

  // One sequential baseline per table (all rows share E800+GCC).
  const double seq_s = sim::measure_sequential(
      scene, settings, bench::e800_row(4, 4, core::SpaceMode::kFinite,
                                       core::LbMode::kStatic));
  std::printf("sequential baseline (E800+GCC): %.3f virtual s\n\n", seq_s);

  struct Row {
    int nodes, procs;
    double paper[4];  // IS-SLB, FS-SLB, IS-DLB, FS-DLB
  };
  const Row rows[] = {
      {4, 4, {1.74, 1.74, 1.73, 1.75}},   {5, 5, {0.82, 2.49, 2.90, 2.50}},
      {6, 6, {1.74, 3.12, 2.99, 3.11}},   {7, 7, {0.92, 3.63, 3.15, 3.65}},
      {8, 8, {1.74, 4.14, 3.37, 4.14}},   {8, 16, {1.73, 6.47, 3.75, 6.37}},
  };
  const std::pair<core::SpaceMode, core::LbMode> modes[4] = {
      {core::SpaceMode::kInfinite, core::LbMode::kStatic},
      {core::SpaceMode::kFinite, core::LbMode::kStatic},
      {core::SpaceMode::kInfinite, core::LbMode::kDynamicPairwise},
      {core::SpaceMode::kFinite, core::LbMode::kDynamicPairwise},
  };

  trace::Table t({"Nodes/Procs", "IS-SLB", "(paper)", "FS-SLB", "(paper)",
                  "IS-DLB", "(paper)", "FS-DLB", "(paper)"});
  for (const Row& row : rows) {
    std::vector<std::string> cells;
    cells.push_back(std::to_string(row.nodes) + "*B / " +
                    std::to_string(row.procs) + " P.");
    for (int m = 0; m < 4; ++m) {
      const auto cfg =
          bench::e800_row(row.nodes, row.procs, modes[m].first, modes[m].second);
      const auto r = sim::run_speedup(scene, settings, cfg, seq_s);
      cells.push_back(trace::Table::num(r.speedup));
      cells.push_back(trace::Table::num(row.paper[m]));
    }
    t.add_row(std::move(cells));
  }
  bench::print_table(t);
  return 0;
}

// Figure 2 — "Simulation of one particle system."
//
// The paper's figure is the per-frame protocol flowchart: particle
// creation at the manager, addition to local sets, calculus, particle
// exchange between calculators, load information to the manager, load
// balancing evaluation, new dimensions negotiation, definition of local
// domains, balance transfers, and image generation. This binary runs the
// real protocol with the event log enabled and prints the trace of one
// frame ordered by virtual time — the flowchart, regenerated from the
// executing system.

#include <cstdio>

#include "bench/bench_util.hpp"
#include "core/simulation.hpp"
#include "core/wire.hpp"
#include "trace/event_log.hpp"

int main() {
  using namespace psanim;

  sim::ScenarioParams params;
  params.systems = 1;
  params.particles_per_system = 6000;
  params.frames = 4;
  // An irregular scene so the balancer actually issues orders and the
  // "new dimensions" leg of the flowchart appears in the trace.
  const core::Scene scene = sim::make_fountain_scene(params);

  core::SimSettings settings;
  settings.frames = params.frames;
  settings.dt = params.dt;

  trace::EventLog events;
  settings.events = &events;

  auto cfg = bench::e800_row(3, 3, core::SpaceMode::kFinite,
                             core::LbMode::kDynamicPairwise);
  const auto built = sim::build_cluster(cfg);
  settings.ncalc = built.ncalc;
  settings.space = cfg.space;
  settings.lb = cfg.lb;

  core::run_parallel(scene, settings, built.spec, built.placement);

  std::printf("=== Figure 2: one frame of the simulation protocol ===\n");
  std::printf("(1 system, manager + image generator + 3 calculators;\n");
  std::printf(" frame 2 shown — balancing is warmed up by then)\n\n");
  std::printf("%12s  %-6s  %s\n", "virtual time", "rank", "event");
  for (const auto& e : events.frame_events(2)) {
    const char* who = e.rank == core::kManagerRank ? "mgr"
                      : e.rank == core::kImageGenRank
                          ? "imgen"
                          : "calc";
    std::printf("%10.3f ms  %-3s %2d  %s\n", e.vtime * 1e3, who, e.rank,
                e.label.c_str());
  }
  std::printf("\ntotal protocol events over %u frames: %zu\n", params.frames,
              events.size());
  return 0;
}

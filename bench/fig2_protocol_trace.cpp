// Figure 2 — "Simulation of one particle system."
//
// The paper's figure is the per-frame protocol flowchart: particle
// creation at the manager, addition to local sets, calculus, particle
// exchange between calculators, load information to the manager, load
// balancing evaluation, new dimensions negotiation, definition of local
// domains, balance transfers, and image generation. This binary runs the
// real protocol with span tracing on and prints one frame's timeline from
// the obs span stream — phase spans appear at their end time with their
// virtual duration, instants inline — the flowchart, regenerated from the
// executing system.

#include <cstdio>

#include "bench/bench_util.hpp"
#include "core/simulation.hpp"
#include "core/wire.hpp"
#include "obs/trace.hpp"

int main() {
  using namespace psanim;

  sim::ScenarioParams params;
  params.systems = 1;
  params.particles_per_system = 6000;
  params.frames = 4;
  // An irregular scene so the balancer actually issues orders and the
  // "new dimensions" leg of the flowchart appears in the trace.
  const core::Scene scene = sim::make_fountain_scene(params);

  core::SimSettings settings;
  settings.frames = params.frames;
  settings.dt = params.dt;

  obs::Trace trace;
  settings.obs.trace = &trace;

  auto cfg = bench::e800_row(3, 3, core::SpaceMode::kFinite,
                             core::LbMode::kDynamicPairwise);
  const auto built = sim::build_cluster(cfg);
  settings.ncalc = built.ncalc;
  settings.space = cfg.space;
  settings.lb = cfg.lb;

  core::run_parallel(scene, settings, built.spec, built.placement);

  std::printf("=== Figure 2: one frame of the simulation protocol ===\n");
  std::printf("(1 system, manager + image generator + 3 calculators;\n");
  std::printf(" frame 2 shown — balancing is warmed up by then)\n\n");
  std::printf("%12s  %-6s  %s\n", "virtual time", "rank", "event");
  for (const auto& e : trace.frame_timeline(2)) {
    const char* who = e.rank == core::kManagerRank ? "mgr"
                      : e.rank == core::kImageGenRank
                          ? "imgen"
                          : "calc";
    std::printf("%10.3f ms  %-3s %2d  %s\n", e.vtime * 1e3, who, e.rank,
                e.text.c_str());
  }
  std::printf("\ntotal trace records over %u frames: %zu\n", params.frames,
              trace.record_count());
  return 0;
}

// Google-benchmark microbenches for the hot per-particle paths: action
// application, sliced-store maintenance, spatial hashing, RNG and wire
// packing. These measure REAL nanoseconds on the host (unlike the table
// benches, which report virtual cluster time) — useful when tuning the
// library itself.

#include <benchmark/benchmark.h>

#include "collide/pair_collide.hpp"
#include "collide/spatial_hash.hpp"
#include "core/wire.hpp"
#include "math/rng.hpp"
#include "psys/actions.hpp"
#include "psys/store.hpp"

namespace {

using namespace psanim;

std::vector<psys::Particle> make_particles(std::size_t n,
                                           std::uint64_t seed = 42) {
  Rng rng(seed);
  std::vector<psys::Particle> out(n);
  for (auto& p : out) {
    p.pos = rng.in_box({-10, 0, -10}, {10, 10, 10});
    p.prev_pos = p.pos;
    p.vel = rng.in_unit_ball() * 3.0f;
    p.color = {0.5f, 0.6f, 0.9f};
    p.size = 0.05f;
    p.lifetime = 5.0f;
  }
  return out;
}

void BM_ActionGravity(benchmark::State& state) {
  auto parts = make_particles(static_cast<std::size_t>(state.range(0)));
  psys::Gravity g({0, -9.8f, 0});
  Rng rng(1);
  psys::ActionContext ctx{1.0f / 30.0f, &rng, 0};
  for (auto _ : state) {
    g.apply(parts, ctx);
    benchmark::DoNotOptimize(parts.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ActionGravity)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_ActionRandomAccel(benchmark::State& state) {
  auto parts = make_particles(static_cast<std::size_t>(state.range(0)));
  psys::RandomAccel a(psys::make_sphere({0, 0, 0}, 1.0f));
  Rng rng(1);
  psys::ActionContext ctx{1.0f / 30.0f, &rng, 0};
  for (auto _ : state) {
    a.apply(parts, ctx);
    benchmark::DoNotOptimize(parts.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ActionRandomAccel)->Arg(1 << 10)->Arg(1 << 14);

void BM_ActionBounce(benchmark::State& state) {
  auto parts = make_particles(static_cast<std::size_t>(state.range(0)));
  psys::Bounce b(psys::make_plane({0, 0, 0}, {0, 1, 0}), 0.3f, 0.2f);
  Rng rng(1);
  psys::ActionContext ctx{1.0f / 30.0f, &rng, 0};
  for (auto _ : state) {
    b.apply(parts, ctx);
    benchmark::DoNotOptimize(parts.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ActionBounce)->Arg(1 << 10)->Arg(1 << 14);

void BM_ActionMove(benchmark::State& state) {
  auto parts = make_particles(static_cast<std::size_t>(state.range(0)));
  psys::Move mv;
  Rng rng(1);
  psys::ActionContext ctx{1.0f / 30.0f, &rng, 0};
  for (auto _ : state) {
    mv.apply(parts, ctx);
    benchmark::DoNotOptimize(parts.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ActionMove)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_StoreInsertExtract(benchmark::State& state) {
  const auto parts = make_particles(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    psys::SlicedStore store(0, -10, 10, 8);
    store.insert_batch(parts);
    auto out = store.extract_outside();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StoreInsertExtract)->Arg(1 << 12)->Arg(1 << 16);

void BM_StoreDonate(benchmark::State& state) {
  const auto parts = make_particles(static_cast<std::size_t>(state.range(0)));
  const auto slices = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    state.PauseTiming();
    psys::SlicedStore store(0, -10, 10, slices);
    store.insert_batch(parts);
    state.ResumeTiming();
    auto d = store.donate_low(parts.size() / 4);
    benchmark::DoNotOptimize(d.particles.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) / 4);
}
BENCHMARK(BM_StoreDonate)
    ->Args({1 << 14, 1})
    ->Args({1 << 14, 8})
    ->Args({1 << 14, 32});

void BM_SpatialHashBuild(benchmark::State& state) {
  const auto parts = make_particles(static_cast<std::size_t>(state.range(0)));
  collide::SpatialHash grid(0.25f);
  for (auto _ : state) {
    grid.build(parts);
    benchmark::DoNotOptimize(grid.cell_count_used());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SpatialHashBuild)->Arg(1 << 12)->Arg(1 << 16);

void BM_PairCollide(benchmark::State& state) {
  auto parts = make_particles(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto stats = collide::resolve_pair_collisions(parts, {}, 0.25f, 0.4f);
    benchmark::DoNotOptimize(stats.contacts);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PairCollide)->Arg(1 << 12)->Arg(1 << 14);

void BM_RngNextFloat(benchmark::State& state) {
  Rng rng(7);
  float acc = 0;
  for (auto _ : state) {
    acc += rng.next_float();
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngNextFloat);

void BM_PackVertices(benchmark::State& state) {
  const auto parts = make_particles(static_cast<std::size_t>(state.range(0)));
  std::vector<core::RenderVertex> verts;
  verts.reserve(parts.size());
  for (const auto& p : parts) verts.push_back(core::to_render_vertex(p));
  for (auto _ : state) {
    auto w = core::encode_frame_vertices(0, verts);
    benchmark::DoNotOptimize(w.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PackVertices)->Arg(1 << 12)->Arg(1 << 16);

void BM_ExchangeRoundTrip(benchmark::State& state) {
  const auto parts = make_particles(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto w = core::encode_batches(3, {core::SystemBatch{0, parts}});
    mp::Message m;
    m.payload = w.take();
    auto batches = core::decode_batches(m, 3);
    benchmark::DoNotOptimize(batches.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ExchangeRoundTrip)->Arg(1 << 10)->Arg(1 << 14);

}  // namespace

BENCHMARK_MAIN();

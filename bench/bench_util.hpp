#pragma once

// Shared plumbing for the experiment benches: command-line scale flags and
// paper-vs-measured table assembly.
//
// Every table bench runs a reduced workload by default so the whole bench
// directory finishes in minutes on a laptop; pass --full for the paper's
// 8 x 400,000-particle scale, --frames/--particles/--systems to override.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "sim/report.hpp"
#include "sim/run_config.hpp"
#include "sim/runner.hpp"
#include "sim/scenario.hpp"
#include "trace/table.hpp"

namespace psanim::bench {

struct BenchArgs {
  sim::ScenarioParams scenario;
  bool full = false;

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs a;
    a.scenario.systems = 8;
    a.scenario.particles_per_system = 8'000;
    a.scenario.frames = 30;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value = [&]() -> long {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "missing value for %s\n", arg.c_str());
          std::exit(2);
        }
        return std::strtol(argv[++i], nullptr, 10);
      };
      if (arg == "--full") {
        a.full = true;
        a.scenario.particles_per_system = 400'000;
        a.scenario.frames = 60;
      } else if (arg == "--particles") {
        a.scenario.particles_per_system = static_cast<std::size_t>(value());
      } else if (arg == "--frames") {
        a.scenario.frames = static_cast<std::uint32_t>(value());
      } else if (arg == "--systems") {
        a.scenario.systems = static_cast<std::size_t>(value());
      } else if (arg == "--help" || arg == "-h") {
        std::printf(
            "usage: %s [--full] [--particles N] [--frames N] [--systems N]\n",
            argv[0]);
        std::exit(0);
      } else {
        std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
        std::exit(2);
      }
    }
    return a;
  }

  core::SimSettings settings() const {
    core::SimSettings s;
    s.frames = scenario.frames;
    s.dt = scenario.dt;
    return s;
  }

  void print_header(const char* title) const {
    std::printf("=== %s ===\n", title);
    std::printf(
        "workload: %zu systems x %zu particles (steady), %u frames%s\n\n",
        scenario.systems, scenario.particles_per_system, scenario.frames,
        full ? " [--full paper scale]" : " [reduced scale; --full for paper]");
  }
};

/// Homogeneous E800 row of Tables 1/3: `nodes` E800s running `procs`
/// calculators over Myrinet with GCC, sequential baseline E800+GCC.
inline sim::RunConfig e800_row(int nodes, int procs, core::SpaceMode space,
                               core::LbMode lb) {
  sim::RunConfig cfg;
  cfg.groups = {{cluster::NodeType::e800(), nodes, procs}};
  cfg.network = net::Interconnect::kMyrinet;
  cfg.compiler = cluster::Compiler::kGcc;
  cfg.space = space;
  cfg.lb = lb;
  cfg.baseline_node = cluster::NodeType::e800();
  return cfg;
}

/// Print a completed table plus the shape notes a reader should check.
inline void print_table(const trace::Table& t) {
  std::fputs(t.str().c_str(), stdout);
  std::fputs("\n", stdout);
}

}  // namespace psanim::bench

// farm_throughput: FIFO vs SJF over a jobs x nodes sweep on the shared
// virtual cluster, emitting BENCH_PR8_FARM.json.
//
// Every scenario runs the identical job mix under both policies; all
// reported times are *virtual* (farm DES time), so the numbers are
// bit-reproducible across hosts and runs. Besides the mean-level columns,
// every policy row now carries the scheduler SLO distribution from
// farm::Report — exact-sample p50/p95/p99 of wait, p99 turnaround, p99
// slowdown, and the peak queue depth — validated by tools/bench_json.py
// (percentile monotonicity, non-negativity, slowdown >= 1). The headline
// scenario ("hetero_strand") is the case where queue discipline changes
// makespan on a heterogeneous cluster: FIFO dispatches the long job
// immediately — onto the slow node, the only one free — while SJF keeps it
// queued behind the shorts and it lands on the fast node, cutting the farm
// makespan. The bench exits non-zero if SJF's makespan exceeds FIFO's
// there, so CI keeps the scheduling win honest.
//
// Usage: farm_throughput [--full] [--out BENCH_PR8_FARM.json]

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "cluster/cluster_spec.hpp"
#include "farm/farm.hpp"
#include "farm/job.hpp"
#include "sim/scenario.hpp"

using namespace psanim;

namespace {

struct JobShape {
  std::string name;
  std::string scene;  // "snow" | "fountain"
  int ncalc;
  std::uint32_t frames;
  std::uint64_t seed;
};

struct Scenario {
  std::string name;
  cluster::ClusterSpec spec;
  std::vector<JobShape> jobs;
  bool assert_sjf_le_fifo = false;
};

struct PolicyOut {
  double makespan_s = 0.0;
  double total_flow_s = 0.0;
  double mean_turnaround_s = 0.0;
  std::size_t jobs_done = 0;
  std::vector<std::string> completion_order;
  // Exact-sample SLO percentiles over completed jobs (farm::Report).
  double wait_p50 = 0.0, wait_p95 = 0.0, wait_p99 = 0.0;
  double turnaround_p99 = 0.0;
  double slowdown_p50 = 0.0, slowdown_p99 = 0.0;
  int queue_depth_peak = 0;
};

farm::JobSpec make_job(const JobShape& shape, std::size_t scale_particles) {
  sim::ScenarioParams p;
  p.systems = 2;
  p.particles_per_system = scale_particles;
  p.frames = shape.frames;
  farm::JobSpec j;
  j.name = shape.name;
  j.scene = shape.scene == "snow" ? sim::make_snow_scene(p)
                                  : sim::make_fountain_scene(p);
  j.settings.ncalc = shape.ncalc;
  j.settings.frames = shape.frames;
  j.settings.seed = shape.seed;
  j.settings.image_width = 64;
  j.settings.image_height = 48;
  return j;
}

PolicyOut run_policy(const Scenario& sc, farm::Policy policy,
                     std::size_t scale_particles, bool verbose) {
  farm::FarmOptions opts;
  opts.policy = policy;
  opts.recv_timeout_s = 60.0;
  farm::Farm f(sc.spec, opts);
  std::vector<farm::JobHandle> handles;
  for (const auto& shape : sc.jobs) {
    handles.push_back(f.submit(make_job(shape, scale_particles)));
  }
  const farm::Report r = f.run();
  if (verbose) {
    for (auto& h : handles) {
      const auto& jr = h.await();
      std::printf("    [%s] %-8s start=%.6f finish=%.6f own=%.6f "
                  "stretch=%.4f nodes=",
                  to_string(policy).c_str(), h.name().c_str(), jr.start_s,
                  jr.finish_s, jr.standalone_makespan_s, jr.stretch);
      for (std::size_t k = 0; k < jr.assignment.shared_nodes.size(); ++k) {
        std::printf("%d:%d ", jr.assignment.shared_nodes[k],
                    jr.assignment.ranks_per_node[k]);
      }
      std::printf("\n");
    }
  }
  PolicyOut out;
  out.makespan_s = r.makespan_s;
  out.total_flow_s = r.total_flow_s;
  out.mean_turnaround_s = r.mean_turnaround_s;
  out.jobs_done = r.jobs_done;
  out.completion_order = r.completion_order;
  out.wait_p50 = r.wait_q.quantile(0.5);
  out.wait_p95 = r.wait_q.quantile(0.95);
  out.wait_p99 = r.wait_q.quantile(0.99);
  out.turnaround_p99 = r.turnaround_q.quantile(0.99);
  out.slowdown_p50 = r.slowdown_q.quantile(0.5);
  out.slowdown_p99 = r.slowdown_q.quantile(0.99);
  for (const auto& [t, depth] : r.queue_depth) {
    (void)t;
    if (depth > out.queue_depth_peak) out.queue_depth_peak = depth;
  }
  return out;
}

std::vector<Scenario> make_scenarios() {
  std::vector<Scenario> out;

  // The headline: one fast quad + one half-speed quad. Submit order is
  // adversarial for FIFO: a short job grabs the fast node at t=0, so the
  // long job is dispatched onto the slow node — doubling its service time,
  // and its finish IS the makespan. SJF ranks the long job last; by the
  // time the short queue drains the slow node is mid-short and the fast
  // node frees next, so the long job inherits the fast node. Enough shorts
  // are needed to cover the long job's wait — with too few, the slow node
  // frees first and work-conserving backfill strands the long job there
  // under SJF too (tried: 3 shorts lose, 5 win).
  {
    Scenario sc;
    sc.name = "hetero_strand";
    sc.spec.add(cluster::NodeType::generic(1.0, 4));
    sc.spec.add(cluster::NodeType::generic(0.5, 4));
    sc.jobs = {
        {"short0", "snow", 2, 4, 0xB0},
        {"long0", "fountain", 2, 36, 0xB1},
        {"short1", "snow", 2, 4, 0xB2},
        {"short2", "fountain", 2, 4, 0xB3},
        {"short3", "snow", 2, 4, 0xB4},
        {"short4", "fountain", 2, 4, 0xB5},
    };
    sc.assert_sjf_le_fifo = true;
    out.push_back(std::move(sc));
  }

  // Serial bottleneck: one quad node, jobs run one at a time. Work
  // conservation makes the makespans equal; SJF's win is flow time.
  {
    Scenario sc;
    sc.name = "serial_quad";
    sc.spec.add(cluster::NodeType::generic(1.0, 4));
    sc.jobs = {
        {"long0", "fountain", 2, 16, 0xC0},
        {"short0", "snow", 2, 4, 0xC1},
        {"short1", "snow", 2, 4, 0xC2},
        {"short2", "fountain", 2, 6, 0xC3},
    };
    sc.assert_sjf_le_fifo = true;
    out.push_back(std::move(sc));
  }

  // Wider mix: 6 heterogeneous nodes, 10 jobs of mixed widths/lengths,
  // several waves deep — exercises backfill, placement and the SMP
  // contention stretch together.
  {
    Scenario sc;
    sc.name = "mixed_cluster";
    sc.spec.add(cluster::NodeType::generic(1.0, 4), 2);
    sc.spec.add(cluster::NodeType::generic(0.7, 2), 2);
    sc.spec.add(cluster::NodeType::generic(0.5, 2), 2);
    for (int i = 0; i < 10; ++i) {
      sc.jobs.push_back({"mix" + std::to_string(i),
                         i % 2 ? "fountain" : "snow", 1 + (i % 2),
                         static_cast<std::uint32_t>(4 + 4 * (i % 3)),
                         0xD0 + static_cast<std::uint64_t>(i)});
    }
    out.push_back(std::move(sc));
  }
  return out;
}

void jstr_list(std::FILE* f, const std::vector<std::string>& v) {
  std::fprintf(f, "[");
  for (std::size_t i = 0; i < v.size(); ++i) {
    std::fprintf(f, "\"%s\"%s", v[i].c_str(), i + 1 < v.size() ? ", " : "");
  }
  std::fprintf(f, "]");
}

void jpolicy(std::FILE* f, const char* key, const PolicyOut& p,
             const char* suffix) {
  std::fprintf(f,
               "      \"%s\": {\"makespan_s\": %.17g, \"total_flow_s\": "
               "%.17g, \"mean_turnaround_s\": %.17g, \"jobs_done\": %zu,\n"
               "        \"wait_p50_s\": %.17g, \"wait_p95_s\": %.17g, "
               "\"wait_p99_s\": %.17g,\n"
               "        \"turnaround_p99_s\": %.17g, \"slowdown_p50\": "
               "%.17g, \"slowdown_p99\": %.17g, \"queue_depth_peak\": %d,\n"
               "        \"completion_order\": ",
               key, p.makespan_s, p.total_flow_s, p.mean_turnaround_s,
               p.jobs_done, p.wait_p50, p.wait_p95, p.wait_p99,
               p.turnaround_p99, p.slowdown_p50, p.slowdown_p99,
               p.queue_depth_peak);
  jstr_list(f, p.completion_order);
  std::fprintf(f, "}%s\n", suffix);
}

}  // namespace

int main(int argc, char** argv) {
  bool full = false;
  bool verbose = false;
  const char* out_path = "BENCH_PR8_FARM.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) full = true;
    if (std::strcmp(argv[i], "--verbose") == 0) verbose = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }
  const std::size_t scale_particles = full ? 20'000 : 600;

  const auto scenarios = make_scenarios();
  std::FILE* f = std::fopen(out_path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path);
    return 2;
  }
  std::fprintf(f, "{\n  \"schema\": \"psanim-bench-pr8-farm-v1\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", full ? "full" : "quick");
  std::fprintf(f, "  \"scenarios\": [\n");

  int violations = 0;
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    const auto& sc = scenarios[s];
    const PolicyOut fifo =
        run_policy(sc, farm::Policy::kFifo, scale_particles, verbose);
    const PolicyOut sjf =
        run_policy(sc, farm::Policy::kSjf, scale_particles, verbose);
    int slots = 0;
    for (const auto& n : sc.spec.nodes) slots += n.cpus;

    std::printf("%-14s nodes=%zu slots=%d jobs=%zu | fifo makespan=%.6f "
                "flow=%.6f | sjf makespan=%.6f flow=%.6f\n",
                sc.name.c_str(), sc.spec.node_count(), slots, sc.jobs.size(),
                fifo.makespan_s, fifo.total_flow_s, sjf.makespan_s,
                sjf.total_flow_s);

    const bool sjf_le = sjf.makespan_s <= fifo.makespan_s + 1e-12;
    if (sc.assert_sjf_le_fifo && !sjf_le) {
      std::fprintf(stderr,
                   "VIOLATION %s: sjf makespan %.17g > fifo %.17g\n",
                   sc.name.c_str(), sjf.makespan_s, fifo.makespan_s);
      ++violations;
    }

    std::fprintf(f, "    {\"name\": \"%s\", \"nodes\": %zu, \"slots\": %d, "
                    "\"jobs\": %zu,\n",
                 sc.name.c_str(), sc.spec.node_count(), slots,
                 sc.jobs.size());
    jpolicy(f, "fifo", fifo, ",");
    jpolicy(f, "sjf", sjf, ",");
    std::fprintf(f, "      \"sjf_le_fifo_makespan\": %s, "
                    "\"sjf_makespan_gate\": %s,\n",
                 sjf_le ? "true" : "false",
                 sc.assert_sjf_le_fifo ? "true" : "false");
    std::fprintf(f, "      \"sjf_flow_improvement\": %.17g}%s\n",
                 fifo.total_flow_s > 0.0
                     ? 1.0 - sjf.total_flow_s / fifo.total_flow_s
                     : 0.0,
                 s + 1 < scenarios.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return violations == 0 ? 0 : 1;
}

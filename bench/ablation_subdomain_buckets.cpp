// Ablation — the §4 storage decision: "we now break the domain in sub
// domains and store each one in a separate vector ... to accelerate the
// load balancing process and particle exchanges between processes."
//
// With one flat vector (slices = 1) a donation must sort the whole domain;
// with many sub-slices only the boundary sub-vector is sorted. The virtual
// clock charges n*log2(n) for whatever actually got sorted, so the benefit
// shows up as balance-phase time and total speedup on the irregular
// fountain workload.

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace psanim;
  const auto args = bench::BenchArgs::parse(argc, argv);
  args.print_header("Ablation: sub-domain bucket count (§4 storage layout)");

  const core::Scene scene = sim::make_fountain_scene(args.scenario);
  const auto cfg = bench::e800_row(8, 8, core::SpaceMode::kInfinite,
                                   core::LbMode::kDynamicPairwise);
  core::SimSettings settings = args.settings();
  const double seq = sim::measure_sequential(scene, settings, cfg);

  trace::Table t({"sub-slices", "speedup", "sorted particles (total)",
                  "mean balance ms/frame", "balance orders"});
  for (const std::size_t slices : {1, 2, 4, 8, 16, 32}) {
    settings.store_slices = slices;
    const auto r = sim::run_speedup(scene, settings, cfg, seq);
    double balance_s = 0.0;
    std::size_t n = 0;
    std::size_t sorted = 0;
    for (const auto& c : r.parallel.telemetry.calc_frames()) {
      balance_s += c.balance_s;
      sorted += c.sorted_elements;
      ++n;
    }
    t.add_row({std::to_string(slices), trace::Table::num(r.speedup),
               std::to_string(sorted),
               trace::Table::num(n ? 1e3 * balance_s / static_cast<double>(n)
                                   : 0.0, 3),
               std::to_string(r.parallel.telemetry.total_balance_orders())});
  }
  bench::print_table(t);
  std::printf(
      "expected shape: balance time drops as sub-slices grow (less sorting "
      "per donation), flattening once the boundary slice is small.\n");
  return 0;
}

// Table 3 — Fountain simulation, Myrinet + GNU/GCC, E800 nodes.
//
// Paper rows (speedup vs. sequential E800+GCC):
//   Nodes/Procs   IS-SLB  FS-SLB  IS-DLB  FS-DLB
//   4*B / 4 P.     0.98    1.09    1.49    1.49
//   5*B / 5 P.     0.92    1.19    1.76    1.76
//   6*B / 6 P.     0.98    1.31    2.02    2.05
//   7*B / 7 P.     0.92    1.54    2.34    2.36
//   8*B / 8 P.     0.98    1.86    2.66    2.67
//   8*B / 16 P.    0.98    2.66    3.74    3.82
//
// Shape checks: the fountain load is irregular (one emitter per system at
// scattered x), so dynamic balancing wins at EVERY process count — the
// opposite of Table 1 — and static balancing with finite space scales
// poorly because equal-width domains do not hold equal numbers of
// particles.

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace psanim;
  const auto args = bench::BenchArgs::parse(argc, argv);
  args.print_header("Table 3: fountain, Myrinet + GCC, E800 nodes");

  const core::Scene scene = sim::make_fountain_scene(args.scenario);
  const core::SimSettings settings = args.settings();

  const double seq_s = sim::measure_sequential(
      scene, settings, bench::e800_row(4, 4, core::SpaceMode::kFinite,
                                       core::LbMode::kStatic));
  std::printf("sequential baseline (E800+GCC): %.3f virtual s\n\n", seq_s);

  struct Row {
    int nodes, procs;
    double paper[4];  // IS-SLB, FS-SLB, IS-DLB, FS-DLB
  };
  const Row rows[] = {
      {4, 4, {0.98, 1.09, 1.49, 1.49}},   {5, 5, {0.92, 1.19, 1.76, 1.76}},
      {6, 6, {0.98, 1.31, 2.02, 2.05}},   {7, 7, {0.92, 1.54, 2.34, 2.36}},
      {8, 8, {0.98, 1.86, 2.66, 2.67}},   {8, 16, {0.98, 2.66, 3.74, 3.82}},
  };
  const std::pair<core::SpaceMode, core::LbMode> modes[4] = {
      {core::SpaceMode::kInfinite, core::LbMode::kStatic},
      {core::SpaceMode::kFinite, core::LbMode::kStatic},
      {core::SpaceMode::kInfinite, core::LbMode::kDynamicPairwise},
      {core::SpaceMode::kFinite, core::LbMode::kDynamicPairwise},
  };

  trace::Table t({"Nodes/Procs", "IS-SLB", "(paper)", "FS-SLB", "(paper)",
                  "IS-DLB", "(paper)", "FS-DLB", "(paper)"});
  for (const Row& row : rows) {
    std::vector<std::string> cells;
    cells.push_back(std::to_string(row.nodes) + "*B / " +
                    std::to_string(row.procs) + " P.");
    for (int m = 0; m < 4; ++m) {
      const auto cfg =
          bench::e800_row(row.nodes, row.procs, modes[m].first, modes[m].second);
      const auto r = sim::run_speedup(scene, settings, cfg, seq_s);
      cells.push_back(trace::Table::num(r.speedup));
      cells.push_back(trace::Table::num(row.paper[m]));
    }
    t.add_row(std::move(cells));
  }
  bench::print_table(t);
  return 0;
}

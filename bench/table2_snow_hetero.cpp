// Table 2 — Snow simulation, Fast-Ethernet + Intel ICC, heterogeneous
// node mixes, dynamic load balancing + finite space.
//
// Paper rows (speedup vs. sequential Itanium+ICC, the best sequential
// combination):
//   4*B(4P)  + 4*A(4P)  =  8P   1.36
//   4*B(8P)  + 4*A(8P)  = 16P   1.50
//   8*B(8P)  + 8*A(8P)  = 16P   2.40
//   8*B(16P) + 8*A(16P) = 32P   2.02
//   2*B(2P)  + 2*C(2P)  =  4P   2.67
//   2*B(4P)  + 2*C(2P)  =  6P   3.15
//   4*B(4P)  + 2*C(2P)  =  6P   2.84
//   4*B(8P)  + 2*C(2P)  = 10P   2.61
//
// Shape checks: mixes including Itanium (type C) beat the all-PIII mixes
// (the baseline machine is in the pool); oversubscribing Fast-Ethernet
// with 32 processes LOSES speedup versus 16 (2.40 -> 2.02 in the paper);
// the best configuration is a small, strong mix (2*B(4P) + 2*C(2P)).

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace psanim;
  const auto args = bench::BenchArgs::parse(argc, argv);
  args.print_header(
      "Table 2: snow, Fast-Ethernet + ICC, heterogeneous, FS-DLB");

  const core::Scene scene = sim::make_snow_scene(args.scenario);
  const core::SimSettings settings = args.settings();

  const auto A = cluster::NodeType::e60();
  const auto B = cluster::NodeType::e800();
  const auto C = cluster::NodeType::zx2000();

  auto hetero = [&](std::vector<sim::NodeGroup> groups) {
    sim::RunConfig cfg;
    cfg.groups = std::move(groups);
    cfg.network = net::Interconnect::kFastEthernet;
    cfg.compiler = cluster::Compiler::kIcc;
    cfg.space = core::SpaceMode::kFinite;
    cfg.lb = core::LbMode::kDynamicPairwise;
    cfg.baseline_node = C;  // Itanium+ICC sequential baseline
    return cfg;
  };

  struct Row {
    sim::RunConfig cfg;
    double paper;
  };
  const Row rows[] = {
      {hetero({{B, 4, 4}, {A, 4, 4}}), 1.36},
      {hetero({{B, 4, 8}, {A, 4, 8}}), 1.50},
      {hetero({{B, 8, 8}, {A, 8, 8}}), 2.40},
      {hetero({{B, 8, 16}, {A, 8, 16}}), 2.02},
      {hetero({{B, 2, 2}, {C, 2, 2}}), 2.67},
      {hetero({{B, 2, 4}, {C, 2, 2}}), 3.15},
      {hetero({{B, 4, 4}, {C, 2, 2}}), 2.84},
      {hetero({{B, 4, 8}, {C, 2, 2}}), 2.61},
  };

  const double seq_s =
      sim::measure_sequential(scene, settings, rows[0].cfg);
  std::printf("sequential baseline (Itanium+ICC): %.3f virtual s\n\n", seq_s);

  trace::Table t({"Nodes vs. Processes", "Speedup", "(paper)"});
  for (const Row& row : rows) {
    const auto r = sim::run_speedup(scene, settings, row.cfg, seq_s);
    t.add_row({row.cfg.label(), trace::Table::num(r.speedup),
               trace::Table::num(row.paper)});
  }
  bench::print_table(t);
  return 0;
}

// §5.2 prose results for the fountain simulation:
//
//  * 16 nodes (8 E800 + 8 E60, Myrinet+GCC) reach speedup 4.28 — unlike
//    snow, the extra (slow) nodes pay off because the workload is compute-
//    heavy relative to its communication.
//  * Fast-Ethernet runs "did not result in gain of performance": the best,
//    2*E800 + 2*Itanium with FS-DLB, reached only 1.26 (vs Itanium+ICC).

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace psanim;
  const auto args = bench::BenchArgs::parse(argc, argv);
  args.print_header("§5.2 text: fountain, miscellaneous configurations");

  const core::Scene scene = sim::make_fountain_scene(args.scenario);
  const core::SimSettings settings = args.settings();

  const auto A = cluster::NodeType::e60();
  const auto B = cluster::NodeType::e800();
  const auto C = cluster::NodeType::zx2000();

  trace::Table t({"Configuration", "Speedup", "(paper)", "Baseline"});

  // --- 16 nodes over Myrinet ---
  {
    sim::RunConfig cfg;
    cfg.groups = {{B, 8, 8}, {A, 8, 8}};
    cfg.network = net::Interconnect::kMyrinet;
    cfg.compiler = cluster::Compiler::kGcc;
    cfg.baseline_node = B;
    cfg.space = core::SpaceMode::kFinite;
    cfg.lb = core::LbMode::kDynamicPairwise;
    const double seq = sim::measure_sequential(scene, settings, cfg);
    auto r = sim::run_speedup(scene, settings, cfg, seq);
    t.add_row({"8*B(8P)+8*A(8P)=16P Myrinet FS-DLB",
               trace::Table::num(r.speedup), "4.28", "E800+GCC"});

    // Reference: 8*B alone (Table 3's 2.67) to show the E60s DO help here.
    cfg.groups = {{B, 8, 8}};
    r = sim::run_speedup(scene, settings, cfg, seq);
    t.add_row({"8*B(8P) alone, Myrinet FS-DLB", trace::Table::num(r.speedup),
               "2.67", "E800+GCC"});
  }

  // --- Fast-Ethernet: DLB gains mostly evaporate ---
  {
    sim::RunConfig cfg;
    cfg.groups = {{B, 2, 2}, {C, 2, 2}};
    cfg.network = net::Interconnect::kFastEthernet;
    cfg.compiler = cluster::Compiler::kIcc;
    cfg.baseline_node = C;
    cfg.space = core::SpaceMode::kFinite;
    cfg.lb = core::LbMode::kDynamicPairwise;
    const double seq = sim::measure_sequential(scene, settings, cfg);
    auto r = sim::run_speedup(scene, settings, cfg, seq);
    t.add_row({"2*B(2P)+2*C(2P)=4P FE+ICC FS-DLB",
               trace::Table::num(r.speedup), "1.26", "Itanium+ICC"});

    cfg.groups = {{B, 8, 16}};
    auto r2 = sim::run_speedup(scene, settings, cfg, seq);
    t.add_row({"8*B(16P) FE+ICC FS-DLB", trace::Table::num(r2.speedup), "-",
               "Itanium+ICC"});
  }
  bench::print_table(t);
  std::printf(
      "shape check: the fountain exchanges ~7x more particles than snow "
      "per frame (see bench/exchange_volume), so Fast-Ethernet erases most "
      "of the dynamic balancer's gain.\n");
  return 0;
}

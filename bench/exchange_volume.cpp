// §5.1 / §5.2 exchange-volume measurements:
//
//   snow:     "~560 particles per process per frame belong to another
//              calculator ... 613 Kbytes of data to be exchanged"
//   fountain: "~4000 particles per process per frame ... 4375 Kbytes"
//
// The paper's point is the RATIO: the fountain's horizontal motion makes
// its domain-crossing traffic roughly 7x the snow's, which is what sinks
// dynamic balancing on Fast-Ethernet. This bench measures both workloads
// under the paper's 8-process Myrinet configuration and reports the
// crossing counts, wire volume and the ratio. Absolute counts scale with
// --particles; run with --full for the paper's 400k/system scale.

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace psanim;
  const auto args = bench::BenchArgs::parse(argc, argv);
  args.print_header("Exchange volume: snow vs fountain (§5.1 / §5.2)");

  const core::SimSettings settings = args.settings();
  const auto cfg = bench::e800_row(8, 8, core::SpaceMode::kFinite,
                                   core::LbMode::kDynamicPairwise);

  struct Result {
    double crossers = 0.0;
    double kb_per_frame = 0.0;
  };
  auto measure = [&](const core::Scene& scene) {
    const auto r = sim::run_speedup(scene, settings, cfg, /*cached=*/1.0);
    const auto& tel = r.parallel.telemetry;
    return Result{tel.avg_crossers_per_proc_per_frame(),
                  tel.avg_exchange_bytes_per_frame() / 1024.0};
  };

  const Result snow = measure(sim::make_snow_scene(args.scenario));
  const Result fountain = measure(sim::make_fountain_scene(args.scenario));

  trace::Table t({"Workload", "crossers/proc/frame", "(paper)",
                  "exchange KB/frame", "(paper)"});
  t.add_row({"snow", trace::Table::num(snow.crossers, 0), "560",
             trace::Table::num(snow.kb_per_frame, 0), "613"});
  t.add_row({"fountain", trace::Table::num(fountain.crossers, 0), "4000",
             trace::Table::num(fountain.kb_per_frame, 0), "4375"});
  bench::print_table(t);

  const double count_ratio =
      snow.crossers > 0 ? fountain.crossers / snow.crossers : 0.0;
  const double kb_ratio =
      snow.kb_per_frame > 0 ? fountain.kb_per_frame / snow.kb_per_frame : 0.0;
  std::printf(
      "fountain/snow ratio: %.1fx crossers, %.1fx bytes (paper: ~7.1x both)\n",
      count_ratio, kb_ratio);
  return 0;
}

// §5.1 prose results for the snow simulation that are not in a table:
//
//  * Fast-Ethernet + ICC, 8 E800 nodes (16 processes): speedup 2.56 with
//    DLB, 2.65 with FS-SLB (baseline: sequential Itanium+ICC).
//  * Mixed 4 E800 + 4 E60 nodes (Myrinet+GCC): speedup 2.76 with 8
//    processes and 2.93 with 16.
//  * "The use of eight E60 nodes was only justified when the amount of
//    E800 nodes was lower than seven" — adding the slow nodes to a full
//    E800 set must NOT help much.

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace psanim;
  const auto args = bench::BenchArgs::parse(argc, argv);
  args.print_header("§5.1 text: snow, miscellaneous configurations");

  const core::Scene scene = sim::make_snow_scene(args.scenario);
  const core::SimSettings settings = args.settings();

  const auto A = cluster::NodeType::e60();
  const auto B = cluster::NodeType::e800();
  const auto C = cluster::NodeType::zx2000();

  trace::Table t({"Configuration", "Speedup", "(paper)", "Baseline"});

  // --- Fast-Ethernet + ICC on 8*B, 16 processes ---
  {
    sim::RunConfig cfg;
    cfg.groups = {{B, 8, 16}};
    cfg.network = net::Interconnect::kFastEthernet;
    cfg.compiler = cluster::Compiler::kIcc;
    cfg.baseline_node = C;
    const double seq = sim::measure_sequential(scene, settings, cfg);

    cfg.space = core::SpaceMode::kFinite;
    cfg.lb = core::LbMode::kDynamicPairwise;
    auto r = sim::run_speedup(scene, settings, cfg, seq);
    t.add_row({"8*B/16P FE+ICC FS-DLB", trace::Table::num(r.speedup), "2.56",
               "Itanium+ICC"});

    cfg.lb = core::LbMode::kStatic;
    r = sim::run_speedup(scene, settings, cfg, seq);
    t.add_row({"8*B/16P FE+ICC FS-SLB", trace::Table::num(r.speedup), "2.65",
               "Itanium+ICC"});
  }

  // --- mixed 4*B + 4*A over Myrinet+GCC ---
  {
    sim::RunConfig cfg;
    cfg.groups = {{B, 4, 4}, {A, 4, 4}};
    cfg.network = net::Interconnect::kMyrinet;
    cfg.compiler = cluster::Compiler::kGcc;
    cfg.baseline_node = B;
    cfg.space = core::SpaceMode::kFinite;
    cfg.lb = core::LbMode::kDynamicPairwise;
    const double seq = sim::measure_sequential(scene, settings, cfg);
    auto r = sim::run_speedup(scene, settings, cfg, seq);
    t.add_row({"4*B(4P)+4*A(4P)=8P Myrinet", trace::Table::num(r.speedup),
               "2.76", "E800+GCC"});

    cfg.groups = {{B, 4, 8}, {A, 4, 8}};
    r = sim::run_speedup(scene, settings, cfg, seq);
    t.add_row({"4*B(8P)+4*A(8P)=16P Myrinet", trace::Table::num(r.speedup),
               "2.93", "E800+GCC"});
  }

  // --- do E60s help a full E800 set? ---
  {
    sim::RunConfig cfg;
    cfg.groups = {{B, 8, 8}};
    cfg.network = net::Interconnect::kMyrinet;
    cfg.compiler = cluster::Compiler::kGcc;
    cfg.baseline_node = B;
    cfg.space = core::SpaceMode::kFinite;
    cfg.lb = core::LbMode::kDynamicPairwise;
    const double seq = sim::measure_sequential(scene, settings, cfg);
    auto r8 = sim::run_speedup(scene, settings, cfg, seq);
    t.add_row({"8*B(8P) alone", trace::Table::num(r8.speedup), "4.14",
               "E800+GCC"});

    cfg.groups = {{B, 8, 8}, {A, 8, 8}};
    auto r16 = sim::run_speedup(scene, settings, cfg, seq);
    t.add_row({"8*B(8P)+8*A(8P)=16P", trace::Table::num(r16.speedup), "-",
               "E800+GCC"});
    bench::print_table(t);
    std::printf(
        "shape check: adding 8 E60 processes to 8 E800s changes speedup by "
        "%.0f%% — the paper found the E60s only pay off when fewer than "
        "seven E800s are available.\n",
        100.0 * (r16.speedup / r8.speedup - 1.0));
  }
  return 0;
}

// Observability overhead: what does span tracing + metrics cost?
//
// Two costs matter and they are different currencies:
//   - virtual time: spans charge *zero* virtual seconds, so a traced run
//     must report exactly the same animation time as an untraced one —
//     observability that perturbed the modeled schedule would invalidate
//     every traced experiment. This bench asserts that.
//   - host (wall) time: the recorder's append path and the per-message
//     hook are real work. This bench measures it as wall-clock per frame
//     with tracing off, on, and on + flight recorder, for the snow and
//     fountain scenes.

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.hpp"
#include "core/simulation.hpp"
#include "obs/trace.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct Measured {
  double animation_s = 0.0;  // virtual
  double wall_ms = 0.0;      // host
  std::size_t records = 0;
};

Measured run_once(const psanim::core::Scene& scene,
                  psanim::core::SimSettings settings,
                  const psanim::sim::BuiltCluster& built, bool traced,
                  bool flight) {
  using namespace psanim;
  obs::Trace trace;
  if (traced) {
    settings.obs.trace = &trace;
    settings.obs.flight_recorder = flight;
    if (flight) settings.ckpt.interval = 2;
  }
  const auto t0 = Clock::now();
  const auto r =
      core::run_parallel(scene, settings, built.spec, built.placement);
  const auto t1 = Clock::now();
  Measured m;
  m.animation_s = r.animation_s;
  m.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  m.records = traced ? trace.record_count() : 0;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace psanim;
  auto args = bench::BenchArgs::parse(argc, argv);
  args.print_header("Observability overhead (virtual + wall cost)");

  const auto cfg = bench::e800_row(4, 4, core::SpaceMode::kFinite,
                                   core::LbMode::kDynamicPairwise);
  const auto built = sim::build_cluster(cfg);

  for (const bool snow : {true, false}) {
    const core::Scene scene = snow ? sim::make_snow_scene(args.scenario)
                                   : sim::make_fountain_scene(args.scenario);
    core::SimSettings settings = args.settings();
    settings.ncalc = built.ncalc;
    settings.space = cfg.space;
    settings.lb = cfg.lb;

    const auto off = run_once(scene, settings, built, false, false);
    const auto on = run_once(scene, settings, built, true, false);
    const auto ring = run_once(scene, settings, built, true, true);

    std::printf("%s scene:\n", snow ? "snow" : "fountain");
    std::printf("  tracing off : virtual %9.4f s, wall %8.2f ms\n",
                off.animation_s, off.wall_ms);
    std::printf("  tracing on  : virtual %9.4f s, wall %8.2f ms"
                "  (%zu records, %+.1f%% wall)\n",
                on.animation_s, on.wall_ms, on.records,
                off.wall_ms > 0.0
                    ? (on.wall_ms / off.wall_ms - 1.0) * 100.0
                    : 0.0);
    std::printf("  on + flight : virtual %9.4f s, wall %8.2f ms"
                "  (ckpt every 2 frames)\n",
                ring.animation_s, ring.wall_ms);

    // The invariant the whole layer rests on: tracing charges zero
    // virtual time. (The flight-recorder row enables checkpointing, which
    // legitimately costs virtual time, so only off-vs-on must match.)
    if (off.animation_s != on.animation_s) {
      std::fprintf(stderr,
                   "FAIL: tracing changed virtual time (%.9f != %.9f)\n",
                   off.animation_s, on.animation_s);
      return 1;
    }
    std::printf("  virtual time identical with tracing on: OK\n\n");
  }
  return 0;
}

// Ablation — centralized pairwise balancing (the paper's §3.2.5) vs the
// decentralized diffusion policy it names as future work (§6).
//
// Diffusion relaxes the "each process only sends or receives" alignment
// rule, so it can converge faster on a badly skewed start (IS mode), at
// the cost of more simultaneous transfers. On an already-mild imbalance
// the two should be close.

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace psanim;
  const auto args = bench::BenchArgs::parse(argc, argv);
  args.print_header("Ablation: centralized pairwise vs decentralized diffusion");

  const core::Scene scene = sim::make_fountain_scene(args.scenario);
  const core::SimSettings settings = args.settings();

  trace::Table t({"Procs", "Space", "DLB speedup", "DLB orders",
                  "DIFF speedup", "DIFF orders"});
  for (const auto space : {core::SpaceMode::kFinite, core::SpaceMode::kInfinite}) {
    for (const int procs : {4, 8, 16}) {
      const int nodes = std::min(procs, 8);
      auto cfg = bench::e800_row(nodes, procs, space,
                                 core::LbMode::kDynamicPairwise);
      const double seq = sim::measure_sequential(scene, settings, cfg);
      const auto dlb = sim::run_speedup(scene, settings, cfg, seq);

      cfg.lb = core::LbMode::kDiffusion;
      const auto diff = sim::run_speedup(scene, settings, cfg, seq);

      t.add_row({std::to_string(procs), core::to_string(space),
                 trace::Table::num(dlb.speedup),
                 std::to_string(dlb.parallel.telemetry.total_balance_orders()),
                 trace::Table::num(diff.speedup),
                 std::to_string(diff.parallel.telemetry.total_balance_orders())});
    }
  }
  bench::print_table(t);
  std::printf(
      "expected shape: diffusion converges the IS start faster (better or "
      "equal speedup at 8-16P) while issuing more orders per run.\n");
  return 0;
}

// farm_arrivals: preemptive-scheduling stress bench (PR 9, backfill legs
// PR 10), emitting BENCH_PR10_FARM.json.
//
// One heavy-tailed multi-tenant job stream — an "interactive" tenant
// submitting short high-priority clips into a "batch" tenant's long-job
// background, open-loop Poisson arrivals plus closed-loop think-delay
// chains — replayed on the same 8-node shared cluster under FIFO,
// preemptive priority (PR-9 strict head-of-line reservation), preemptive
// fair-share, and the PR-10 legs: EASY backfill around the blocked head,
// and backfill with preemption-cost-aware victim selection. All legs
// replay the identical stream, so every cross-leg ratio is apples to
// apples. Versus PR 9 the heavy tail is also *wide* (40f -> world 5,
// 120f -> world 8): PR 9's uniform 3-rank jobs left EASY nothing to do —
// a hole every job fits into is never a hole — and its 2.6x "batch
// makespan stretch" turned out to be SMP-contention work inflation, not
// reservation idleness. With wide heads the reservation actually strands
// slots, and the admission decision (cond-1/cond-2 against the DES's own
// release bounds) is exercised thousands of times per leg. All reported
// times are farm-virtual, so every number is bit-reproducible; the
// priority and backfill_costaware legs each run twice and the artifact
// records both so tools/bench_json.py can assert determinism from the
// JSON alone.
//
// The gates, asserted here AND re-checked by tools/bench_json.py check:
//   - preemptive priority cuts the interactive tenant's p99 wait strictly
//     below FIFO's (the PR-9 headline);
//   - the backfill leg must hold the batch makespan stretch over FIFO at
//     <= 1.3x (the PR-9 strict policy paid 2.6x on its stream) while
//     keeping the interactive p99 wait within 2x of the strict-priority
//     value, with jobs actually backfilled — strict reservation's
//     remaining cost shows up in batch queue wait, which backfill cuts;
//   - preemptive legs evict (preemption_events > 0), every leg drains.
//
// Usage: farm_arrivals [--full] [--out BENCH_PR10_FARM.json]
//   quick (default): a few hundred jobs — the CI/perf-tier scale;
//   --full: 10k+ jobs, the committed-artifact scale.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "cluster/cluster_spec.hpp"
#include "farm/farm.hpp"
#include "farm/job.hpp"
#include "obs/metrics.hpp"
#include "sim/scenario.hpp"

using namespace psanim;

namespace {

// splitmix64: tiny, seedable, stdlib-free (std::exponential_distribution
// is implementation-defined, and this artifact must be bit-reproducible).
struct Rng {
  std::uint64_t state;
  std::uint64_t next_u64() {
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
  double uniform() {  // (0, 1]
    return (static_cast<double>(next_u64() >> 11) + 1.0) * 0x1.0p-53;
  }
  double exponential(double mean) { return -std::log(uniform()) * mean; }
};

/// One job of the stream. chain_parent >= 0 makes it closed-loop: it
/// arrives `think_s` after that job terminates instead of at an absolute
/// instant.
struct JobShape {
  std::string tenant;
  int priority = 0;
  std::uint32_t frames = 4;
  int ncalc = 1;  ///< world = ncalc + 2 (manager + image generator)
  double submit_s = 0.0;  ///< absolute arrival (roots) or think delay
  int chain_parent = -1;
  std::uint64_t seed = 0;
};

/// Heavy-tailed batch sizes: mostly 4-frame clips, a thin tail of
/// 120-frame sequences that dominates total work. The tail is also
/// *wide* — long sequences ask for more calculators (40f -> world 5,
/// 120f -> world 8 on 4-slot nodes), which is what gives EASY backfill
/// real holes to fill: a blocked wide head strands slots that narrow
/// jobs provably fit into.
std::uint32_t sample_frames(Rng& rng) {
  const double u = rng.uniform();
  if (u < 0.80) return 4;
  if (u < 0.95) return 12;
  if (u < 0.99) return 40;
  return 120;
}

int ncalc_for(std::uint32_t frames) {
  if (frames >= 120) return 6;  // world 8
  if (frames >= 40) return 3;   // world 5
  return 1;                     // world 3
}

std::vector<JobShape> make_stream(std::size_t jobs, double interarrival_mean) {
  Rng rng{.state = 0x5EEDFA51ull};
  std::vector<JobShape> out;
  out.reserve(jobs);
  double clock = 0.0;
  while (out.size() < jobs) {
    clock += rng.exponential(interarrival_mean);
    JobShape s;
    s.submit_s = clock;
    s.seed = 0x1000 + out.size();
    // One arrival in five is the interactive tenant: short clip, high
    // priority. The rest is batch work carrying the heavy tail.
    if (rng.uniform() < 0.20) {
      s.tenant = "interactive";
      s.priority = 5;
      s.frames = 4;
    } else {
      s.tenant = "batch";
      s.priority = 0;
      s.frames = sample_frames(rng);
      s.ncalc = ncalc_for(s.frames);
    }
    out.push_back(s);
    // Every 10th job spawns a closed-loop follow-up: same tenant, arrives
    // a think delay after its parent terminates.
    if (out.size() % 10 == 0 && out.size() < jobs) {
      JobShape follow = out.back();
      follow.chain_parent = static_cast<int>(out.size() - 1);
      follow.submit_s = 0.5 * interarrival_mean;  // think delay
      follow.frames = 4;
      follow.ncalc = 1;
      follow.seed = 0x2000 + out.size();
      out.push_back(follow);
    }
  }
  return out;
}

farm::JobSpec make_job(const JobShape& shape, std::size_t idx) {
  sim::ScenarioParams p;
  p.systems = 1;
  p.particles_per_system = 40;
  p.frames = shape.frames;
  farm::JobSpec j;
  j.name = "j" + std::to_string(idx);
  j.scene = sim::make_fountain_scene(p);
  j.settings.ncalc = shape.ncalc;
  j.settings.frames = shape.frames;
  j.settings.seed = shape.seed;
  j.settings.image_width = 32;
  j.settings.image_height = 24;
  j.tenant = shape.tenant;
  j.priority = shape.priority;
  j.submit_time_s = shape.submit_s;
  j.after_seq = shape.chain_parent;
  return j;
}

struct TenantSlo {
  double wait_p50 = 0.0, wait_p99 = 0.0;
  double slowdown_p99 = 0.0;
  std::size_t jobs = 0;
};

struct LegOut {
  double makespan_s = 0.0;
  std::size_t jobs_done = 0;
  std::size_t jobs_failed = 0;
  std::size_t jobs_preempted = 0;
  std::size_t jobs_backfilled = 0;
  long preemption_events = 0;
  long migrations = 0;
  double wait_p50 = 0.0, wait_p95 = 0.0, wait_p99 = 0.0;
  double turnaround_p99 = 0.0;
  double slowdown_p50 = 0.0, slowdown_p99 = 0.0;
  int queue_depth_peak = 0;
  std::map<std::string, TenantSlo> tenants;
  std::map<std::string, double> tenant_rank_s;
};

struct LegCfg {
  farm::Policy policy = farm::Policy::kFifo;
  bool easy_backfill = false;
  farm::VictimSelection victim = farm::VictimSelection::kLeastDeserving;
};

LegOut run_leg(const std::vector<JobShape>& stream, const LegCfg& cfg) {
  cluster::ClusterSpec spec;
  spec.add(cluster::NodeType::generic(1.0, 4), 8);  // 32 slots
  farm::FarmOptions opts;
  opts.policy = cfg.policy;
  opts.easy_backfill = cfg.easy_backfill;
  opts.victim_selection = cfg.victim;
  opts.recv_timeout_s = 60.0;
  opts.preempt_interval = 4;  // 4-frame clips stay unpreemptible
  opts.keep_results = false;  // 10k framebuffers would not fit
  farm::Farm f(std::move(spec), opts);
  std::vector<farm::JobHandle> handles;
  handles.reserve(stream.size());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    handles.push_back(f.submit(make_job(stream[i], i)));
  }
  const farm::Report r = f.run();

  LegOut out;
  out.makespan_s = r.makespan_s;
  out.jobs_done = r.jobs_done;
  out.jobs_failed = r.jobs_failed;
  out.jobs_preempted = r.jobs_preempted;
  out.jobs_backfilled = r.jobs_backfilled;
  out.wait_p50 = r.wait_q.quantile(0.5);
  out.wait_p95 = r.wait_q.quantile(0.95);
  out.wait_p99 = r.wait_q.quantile(0.99);
  out.turnaround_p99 = r.turnaround_q.quantile(0.99);
  out.slowdown_p50 = r.slowdown_q.quantile(0.5);
  out.slowdown_p99 = r.slowdown_q.quantile(0.99);
  out.tenant_rank_s = r.tenant_rank_s;
  for (const auto& [t, depth] : r.queue_depth) {
    (void)t;
    out.queue_depth_peak = std::max(out.queue_depth_peak, depth);
  }

  // Per-tenant SLOs, from the job records. Arrival instants: roots carry
  // theirs in the shape; closed-loop jobs arrive a think delay after the
  // parent's terminal instant.
  std::map<std::string, obs::Quantiles> waits, slows;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const auto& jr = handles[i].await();
    if (jr.state != farm::JobState::kDone) continue;
    double arrive = stream[i].submit_s;
    if (stream[i].chain_parent >= 0) {
      arrive = handles[static_cast<std::size_t>(stream[i].chain_parent)]
                   .await()
                   .finish_s +
               stream[i].submit_s;
    }
    waits[stream[i].tenant].observe(jr.start_s - arrive);
    if (jr.standalone_makespan_s > 0.0) {
      slows[stream[i].tenant].observe((jr.finish_s - arrive) /
                                      jr.standalone_makespan_s);
    }
    out.preemption_events += jr.preemptions;
    if (jr.migrated) ++out.migrations;
  }
  for (auto& [tenant, q] : waits) {
    TenantSlo slo;
    slo.jobs = q.count();
    slo.wait_p50 = q.quantile(0.5);
    slo.wait_p99 = q.quantile(0.99);
    slo.slowdown_p99 = slows[tenant].quantile(0.99);
    out.tenants[tenant] = slo;
  }
  return out;
}

void jleg(std::FILE* f, const char* key, const LegOut& l, const char* suffix) {
  std::fprintf(
      f,
      "    \"%s\": {\"makespan_s\": %.17g, \"jobs_done\": %zu, "
      "\"jobs_failed\": %zu,\n"
      "      \"jobs_preempted\": %zu, \"jobs_backfilled\": %zu, "
      "\"preemption_events\": %ld, \"migrations\": %ld,\n"
      "      \"wait_p50_s\": %.17g, \"wait_p95_s\": %.17g, \"wait_p99_s\": "
      "%.17g,\n"
      "      \"turnaround_p99_s\": %.17g, \"slowdown_p50\": %.17g, "
      "\"slowdown_p99\": %.17g,\n"
      "      \"queue_depth_peak\": %d,\n"
      "      \"tenants\": {",
      key, l.makespan_s, l.jobs_done, l.jobs_failed, l.jobs_preempted,
      l.jobs_backfilled, l.preemption_events, l.migrations, l.wait_p50,
      l.wait_p95, l.wait_p99, l.turnaround_p99, l.slowdown_p50,
      l.slowdown_p99, l.queue_depth_peak);
  std::size_t i = 0;
  for (const auto& [tenant, slo] : l.tenants) {
    std::fprintf(f,
                 "\"%s\": {\"jobs\": %zu, \"wait_p50_s\": %.17g, "
                 "\"wait_p99_s\": %.17g, \"slowdown_p99\": %.17g}%s",
                 tenant.c_str(), slo.jobs, slo.wait_p50, slo.wait_p99,
                 slo.slowdown_p99, ++i < l.tenants.size() ? ", " : "");
  }
  std::fprintf(f, "},\n      \"tenant_rank_s\": {");
  i = 0;
  for (const auto& [tenant, rank_s] : l.tenant_rank_s) {
    std::fprintf(f, "\"%s\": %.17g%s", tenant.c_str(), rank_s,
                 ++i < l.tenant_rank_s.size() ? ", " : "");
  }
  std::fprintf(f, "}}%s\n", suffix);
}

}  // namespace

int main(int argc, char** argv) {
  bool full = false;
  const char* out_path = "BENCH_PR10_FARM.json";
  std::size_t jobs_override = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) full = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs_override = static_cast<std::size_t>(std::atol(argv[++i]));
    }
  }
  const std::size_t jobs = jobs_override ? jobs_override : (full ? 10'000 : 300);

  // Calibrate the arrival rate from one standalone probe per job class so
  // offered load stays ~0.9 across cost-model changes. Expected
  // rank-seconds per arrival is the class mix (20% interactive 4f/w3;
  // batch 80/15/4/1% over 4f/w3, 12f/w3, 40f/w5, 120f/w8; every 10th job
  // spawns a 4f/w3 closed-loop follow-up, so 1/11 of all jobs are that
  // class) dotted with each class's measured duration x world.
  struct Probe {
    std::uint32_t frames;
    int ncalc;
    double weight;  // fraction of all jobs in this class
  };
  const double root = 10.0 / 11.0;  // non-follow-up fraction
  const Probe classes[] = {
      {4, 1, root * (0.20 + 0.80 * 0.80) + (1.0 - root)},
      {12, 1, root * 0.80 * 0.15},
      {40, 3, root * 0.80 * 0.04},
      {120, 6, root * 0.80 * 0.01},
  };
  cluster::ClusterSpec probe_cluster;
  probe_cluster.add(cluster::NodeType::generic(1.0, 4), 8);
  double rank_s_per_job = 0.0;
  for (const auto& c : classes) {
    JobShape shape;
    shape.tenant = "probe";
    shape.frames = c.frames;
    shape.ncalc = c.ncalc;
    const int world = c.ncalc + 2;
    const auto assign =
        farm::assign_slots(probe_cluster, std::vector<int>(8, 4), world);
    const double dur =
        farm::standalone_run(make_job(shape, 0), assign).animation_s;
    rank_s_per_job += c.weight * dur * static_cast<double>(world);
    std::printf("probe %3uf/w%d: %.6f virtual s (weight %.4f)\n", c.frames,
                world, dur, c.weight);
  }
  const double interarrival = rank_s_per_job / (32.0 * 0.9);
  std::printf("expected %.6f rank-s/job -> interarrival %.6f s\n",
              rank_s_per_job, interarrival);

  const auto stream = make_stream(jobs, interarrival);
  std::size_t n_interactive = 0;
  for (const auto& s : stream) n_interactive += s.tenant == "interactive";
  std::printf("stream: %zu jobs (%zu interactive, %zu batch)\n",
              stream.size(), n_interactive, stream.size() - n_interactive);

  const LegOut fifo = run_leg(stream, {farm::Policy::kFifo});
  const LegOut prio = run_leg(stream, {farm::Policy::kPriority});
  const LegOut prio2 = run_leg(stream, {farm::Policy::kPriority});
  const LegOut fair = run_leg(stream, {farm::Policy::kFairShare});
  const LegOut bf =
      run_leg(stream, {farm::Policy::kPriority, /*easy_backfill=*/true});
  const LegCfg bfc_cfg{farm::Policy::kPriority, /*easy_backfill=*/true,
                       farm::VictimSelection::kCostAware};
  const LegOut bfc = run_leg(stream, bfc_cfg);
  const LegOut bfc2 = run_leg(stream, bfc_cfg);

  const auto show = [](const char* name, const LegOut& l) {
    const auto it = l.tenants.find("interactive");
    std::printf("%-18s makespan=%.3f done=%zu preempted=%zu backfilled=%zu "
                "events=%ld migrations=%ld | wait p99=%.4f | "
                "interactive p99=%.4f\n",
                name, l.makespan_s, l.jobs_done, l.jobs_preempted,
                l.jobs_backfilled, l.preemption_events, l.migrations,
                l.wait_p99, it != l.tenants.end() ? it->second.wait_p99 : -1.0);
  };
  show("fifo", fifo);
  show("priority", prio);
  show("fair-share", fair);
  show("backfill", bf);
  show("backfill+costaware", bfc);

  // The gates, asserted here AND re-checked from the artifact by
  // tools/bench_json.py (so a stale JSON cannot hide a regression).
  int violations = 0;
  const double fifo_i99 = fifo.tenants.at("interactive").wait_p99;
  const double prio_i99 = prio.tenants.at("interactive").wait_p99;
  if (!(prio_i99 < fifo_i99)) {
    std::fprintf(stderr,
                 "VIOLATION: priority interactive p99 wait %.17g not below "
                 "FIFO's %.17g\n",
                 prio_i99, fifo_i99);
    ++violations;
  }
  if (prio.preemption_events <= 0 || fair.preemption_events <= 0) {
    std::fprintf(stderr, "VIOLATION: a preemptive leg never preempted\n");
    ++violations;
  }
  for (const auto* l : {&fifo, &prio, &prio2, &fair, &bf, &bfc, &bfc2}) {
    if (l->jobs_done != stream.size()) {
      std::fprintf(stderr, "VIOLATION: leg drained %zu of %zu jobs\n",
                   l->jobs_done, stream.size());
      ++violations;
    }
  }
  if (prio.makespan_s != prio2.makespan_s ||
      prio.wait_p99 != prio2.wait_p99 ||
      prio.preemption_events != prio2.preemption_events) {
    std::fprintf(stderr, "VIOLATION: priority legs disagree — the DES "
                         "leaked nondeterminism\n");
    ++violations;
  }
  if (bfc.makespan_s != bfc2.makespan_s || bfc.wait_p99 != bfc2.wait_p99 ||
      bfc.preemption_events != bfc2.preemption_events ||
      bfc.jobs_backfilled != bfc2.jobs_backfilled) {
    std::fprintf(stderr, "VIOLATION: backfill_costaware legs disagree — "
                         "the backfill pass leaked nondeterminism\n");
    ++violations;
  }
  // The PR-10 headline, gated on the backfill leg: with EASY backfill the
  // preemptive policy's batch makespan stays within 1.3x of FIFO's (the
  // PR-9 strict policy paid 2.6x on its stream) without giving back the
  // interactive-latency win (within 2x of strict priority's p99). The
  // costaware leg is a measured ablation and only carries the
  // drain/determinism/backfilled gates.
  if (!(bf.makespan_s <= 1.3 * fifo.makespan_s)) {
    std::fprintf(stderr,
                 "VIOLATION: backfill makespan %.17g exceeds 1.3x FIFO's "
                 "%.17g (stretch %.2fx)\n",
                 bf.makespan_s, fifo.makespan_s,
                 bf.makespan_s / fifo.makespan_s);
    ++violations;
  }
  const double bf_i99 = bf.tenants.at("interactive").wait_p99;
  if (!(bf_i99 <= 2.0 * prio_i99)) {
    std::fprintf(stderr,
                 "VIOLATION: backfill interactive p99 wait %.17g exceeds 2x "
                 "the strict-priority value %.17g\n",
                 bf_i99, prio_i99);
    ++violations;
  }
  for (const auto* l : {&bf, &bfc}) {
    if (l->jobs_backfilled == 0) {
      std::fprintf(stderr, "VIOLATION: %s never backfilled a job\n",
                   l == &bf ? "backfill" : "backfill_costaware");
      ++violations;
    }
  }
  std::printf("batch makespan stretch vs fifo: strict %.2fx -> backfill "
              "%.2fx (costaware %.2fx)\n",
              prio.makespan_s / fifo.makespan_s,
              bf.makespan_s / fifo.makespan_s,
              bfc.makespan_s / fifo.makespan_s);

  std::FILE* f = std::fopen(out_path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path);
    return 2;
  }
  std::fprintf(f, "{\n  \"schema\": \"psanim-bench-pr10-farm-v1\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", full ? "full" : "quick");
  std::fprintf(f, "  \"jobs\": %zu,\n  \"slots\": 32,\n", stream.size());
  std::fprintf(f, "  \"interarrival_mean_s\": %.17g,\n", interarrival);
  std::fprintf(f, "  \"legs\": {\n");
  jleg(f, "fifo", fifo, ",");
  jleg(f, "priority", prio, ",");
  jleg(f, "priority_rerun", prio2, ",");
  jleg(f, "fair_share", fair, ",");
  jleg(f, "backfill", bf, ",");
  jleg(f, "backfill_costaware", bfc, ",");
  jleg(f, "backfill_costaware_rerun", bfc2, "");
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return violations == 0 ? 0 : 1;
}
// farm_arrivals: preemptive-scheduling stress bench (PR 9), emitting
// BENCH_PR9_FARM.json.
//
// One heavy-tailed multi-tenant job stream — an "interactive" tenant
// submitting short high-priority clips into a "batch" tenant's long-job
// background, open-loop Poisson arrivals plus closed-loop think-delay
// chains — replayed under FIFO, preemptive priority and preemptive
// fair-share on the same 8-node shared cluster. All reported times are
// farm-virtual, so every number is bit-reproducible; the priority leg runs
// twice and the artifact records both so tools/bench_json.py can assert
// determinism from the JSON alone.
//
// The headline gate (re-checked by tools/bench_json.py check): the
// interactive tenant's p99 wait under the preemptive priority policy must
// sit strictly below its FIFO p99 wait — preemption exists to buy exactly
// that — with both preemptive legs actually exercising eviction
// (preemption_events > 0) and every leg draining all jobs.
//
// Usage: farm_arrivals [--full] [--out BENCH_PR9_FARM.json]
//   quick (default): a few hundred jobs — the CI/perf-tier scale;
//   --full: 10k+ jobs, the committed-artifact scale.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "cluster/cluster_spec.hpp"
#include "farm/farm.hpp"
#include "farm/job.hpp"
#include "obs/metrics.hpp"
#include "sim/scenario.hpp"

using namespace psanim;

namespace {

// splitmix64: tiny, seedable, stdlib-free (std::exponential_distribution
// is implementation-defined, and this artifact must be bit-reproducible).
struct Rng {
  std::uint64_t state;
  std::uint64_t next_u64() {
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
  double uniform() {  // (0, 1]
    return (static_cast<double>(next_u64() >> 11) + 1.0) * 0x1.0p-53;
  }
  double exponential(double mean) { return -std::log(uniform()) * mean; }
};

/// One job of the stream. chain_parent >= 0 makes it closed-loop: it
/// arrives `think_s` after that job terminates instead of at an absolute
/// instant.
struct JobShape {
  std::string tenant;
  int priority = 0;
  std::uint32_t frames = 4;
  double submit_s = 0.0;  ///< absolute arrival (roots) or think delay
  int chain_parent = -1;
  std::uint64_t seed = 0;
};

/// Heavy-tailed batch sizes: mostly 4-frame clips, a thin tail of
/// 120-frame sequences that dominates total work.
std::uint32_t sample_frames(Rng& rng) {
  const double u = rng.uniform();
  if (u < 0.80) return 4;
  if (u < 0.95) return 12;
  if (u < 0.99) return 40;
  return 120;
}

std::vector<JobShape> make_stream(std::size_t jobs, double interarrival_mean) {
  Rng rng{.state = 0x5EEDFA51ull};
  std::vector<JobShape> out;
  out.reserve(jobs);
  double clock = 0.0;
  while (out.size() < jobs) {
    clock += rng.exponential(interarrival_mean);
    JobShape s;
    s.submit_s = clock;
    s.seed = 0x1000 + out.size();
    // One arrival in five is the interactive tenant: short clip, high
    // priority. The rest is batch work carrying the heavy tail.
    if (rng.uniform() < 0.20) {
      s.tenant = "interactive";
      s.priority = 5;
      s.frames = 4;
    } else {
      s.tenant = "batch";
      s.priority = 0;
      s.frames = sample_frames(rng);
    }
    out.push_back(s);
    // Every 10th job spawns a closed-loop follow-up: same tenant, arrives
    // a think delay after its parent terminates.
    if (out.size() % 10 == 0 && out.size() < jobs) {
      JobShape follow = out.back();
      follow.chain_parent = static_cast<int>(out.size() - 1);
      follow.submit_s = 0.5 * interarrival_mean;  // think delay
      follow.frames = 4;
      follow.seed = 0x2000 + out.size();
      out.push_back(follow);
    }
  }
  return out;
}

farm::JobSpec make_job(const JobShape& shape, std::size_t idx) {
  sim::ScenarioParams p;
  p.systems = 1;
  p.particles_per_system = 40;
  p.frames = shape.frames;
  farm::JobSpec j;
  j.name = "j" + std::to_string(idx);
  j.scene = sim::make_fountain_scene(p);
  j.settings.ncalc = 1;  // world 3: manager + imgen + one calculator
  j.settings.frames = shape.frames;
  j.settings.seed = shape.seed;
  j.settings.image_width = 32;
  j.settings.image_height = 24;
  j.tenant = shape.tenant;
  j.priority = shape.priority;
  j.submit_time_s = shape.submit_s;
  j.after_seq = shape.chain_parent;
  return j;
}

struct TenantSlo {
  double wait_p50 = 0.0, wait_p99 = 0.0;
  double slowdown_p99 = 0.0;
  std::size_t jobs = 0;
};

struct LegOut {
  double makespan_s = 0.0;
  std::size_t jobs_done = 0;
  std::size_t jobs_failed = 0;
  std::size_t jobs_preempted = 0;
  long preemption_events = 0;
  long migrations = 0;
  double wait_p50 = 0.0, wait_p95 = 0.0, wait_p99 = 0.0;
  double turnaround_p99 = 0.0;
  double slowdown_p50 = 0.0, slowdown_p99 = 0.0;
  int queue_depth_peak = 0;
  std::map<std::string, TenantSlo> tenants;
  std::map<std::string, double> tenant_rank_s;
};

LegOut run_leg(const std::vector<JobShape>& stream, farm::Policy policy) {
  cluster::ClusterSpec spec;
  spec.add(cluster::NodeType::generic(1.0, 4), 8);  // 32 slots
  farm::FarmOptions opts;
  opts.policy = policy;
  opts.recv_timeout_s = 60.0;
  opts.preempt_interval = 4;  // 4-frame clips stay unpreemptible
  opts.keep_results = false;  // 10k framebuffers would not fit
  farm::Farm f(std::move(spec), opts);
  std::vector<farm::JobHandle> handles;
  handles.reserve(stream.size());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    handles.push_back(f.submit(make_job(stream[i], i)));
  }
  const farm::Report r = f.run();

  LegOut out;
  out.makespan_s = r.makespan_s;
  out.jobs_done = r.jobs_done;
  out.jobs_failed = r.jobs_failed;
  out.jobs_preempted = r.jobs_preempted;
  out.wait_p50 = r.wait_q.quantile(0.5);
  out.wait_p95 = r.wait_q.quantile(0.95);
  out.wait_p99 = r.wait_q.quantile(0.99);
  out.turnaround_p99 = r.turnaround_q.quantile(0.99);
  out.slowdown_p50 = r.slowdown_q.quantile(0.5);
  out.slowdown_p99 = r.slowdown_q.quantile(0.99);
  out.tenant_rank_s = r.tenant_rank_s;
  for (const auto& [t, depth] : r.queue_depth) {
    (void)t;
    out.queue_depth_peak = std::max(out.queue_depth_peak, depth);
  }

  // Per-tenant SLOs, from the job records. Arrival instants: roots carry
  // theirs in the shape; closed-loop jobs arrive a think delay after the
  // parent's terminal instant.
  std::map<std::string, obs::Quantiles> waits, slows;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const auto& jr = handles[i].await();
    if (jr.state != farm::JobState::kDone) continue;
    double arrive = stream[i].submit_s;
    if (stream[i].chain_parent >= 0) {
      arrive = handles[static_cast<std::size_t>(stream[i].chain_parent)]
                   .await()
                   .finish_s +
               stream[i].submit_s;
    }
    waits[stream[i].tenant].observe(jr.start_s - arrive);
    if (jr.standalone_makespan_s > 0.0) {
      slows[stream[i].tenant].observe((jr.finish_s - arrive) /
                                      jr.standalone_makespan_s);
    }
    out.preemption_events += jr.preemptions;
    if (jr.migrated) ++out.migrations;
  }
  for (auto& [tenant, q] : waits) {
    TenantSlo slo;
    slo.jobs = q.count();
    slo.wait_p50 = q.quantile(0.5);
    slo.wait_p99 = q.quantile(0.99);
    slo.slowdown_p99 = slows[tenant].quantile(0.99);
    out.tenants[tenant] = slo;
  }
  return out;
}

void jleg(std::FILE* f, const char* key, const LegOut& l, const char* suffix) {
  std::fprintf(
      f,
      "    \"%s\": {\"makespan_s\": %.17g, \"jobs_done\": %zu, "
      "\"jobs_failed\": %zu,\n"
      "      \"jobs_preempted\": %zu, \"preemption_events\": %ld, "
      "\"migrations\": %ld,\n"
      "      \"wait_p50_s\": %.17g, \"wait_p95_s\": %.17g, \"wait_p99_s\": "
      "%.17g,\n"
      "      \"turnaround_p99_s\": %.17g, \"slowdown_p50\": %.17g, "
      "\"slowdown_p99\": %.17g,\n"
      "      \"queue_depth_peak\": %d,\n"
      "      \"tenants\": {",
      key, l.makespan_s, l.jobs_done, l.jobs_failed, l.jobs_preempted,
      l.preemption_events, l.migrations, l.wait_p50, l.wait_p95, l.wait_p99,
      l.turnaround_p99, l.slowdown_p50, l.slowdown_p99, l.queue_depth_peak);
  std::size_t i = 0;
  for (const auto& [tenant, slo] : l.tenants) {
    std::fprintf(f,
                 "\"%s\": {\"jobs\": %zu, \"wait_p50_s\": %.17g, "
                 "\"wait_p99_s\": %.17g, \"slowdown_p99\": %.17g}%s",
                 tenant.c_str(), slo.jobs, slo.wait_p50, slo.wait_p99,
                 slo.slowdown_p99, ++i < l.tenants.size() ? ", " : "");
  }
  std::fprintf(f, "},\n      \"tenant_rank_s\": {");
  i = 0;
  for (const auto& [tenant, rank_s] : l.tenant_rank_s) {
    std::fprintf(f, "\"%s\": %.17g%s", tenant.c_str(), rank_s,
                 ++i < l.tenant_rank_s.size() ? ", " : "");
  }
  std::fprintf(f, "}}%s\n", suffix);
}

}  // namespace

int main(int argc, char** argv) {
  bool full = false;
  const char* out_path = "BENCH_PR9_FARM.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) full = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }
  const std::size_t jobs = full ? 10'000 : 300;

  // Calibrate the arrival rate off one 4-frame probe job so offered load
  // stays ~0.9 across cost-model changes: with mean frames ~7.8 and world
  // 3 on 32 slots, interarrival = duration_4f * (7.8 / 4) * 3 / (32 * 0.9).
  const auto probe_shape = JobShape{.tenant = "probe", .frames = 4};
  const auto probe_assign = farm::assign_slots(
      [] {
        cluster::ClusterSpec s;
        s.add(cluster::NodeType::generic(1.0, 4), 8);
        return s;
      }(),
      std::vector<int>(8, 4), 3);
  const double probe_s =
      farm::standalone_run(make_job(probe_shape, 0), probe_assign)
          .animation_s;
  const double interarrival = probe_s * (7.8 / 4.0) * 3.0 / (32.0 * 0.9);
  std::printf("probe 4-frame job: %.6f virtual s -> interarrival %.6f s\n",
              probe_s, interarrival);

  const auto stream = make_stream(jobs, interarrival);
  std::size_t n_interactive = 0;
  for (const auto& s : stream) n_interactive += s.tenant == "interactive";
  std::printf("stream: %zu jobs (%zu interactive, %zu batch)\n",
              stream.size(), n_interactive, stream.size() - n_interactive);

  const LegOut fifo = run_leg(stream, farm::Policy::kFifo);
  const LegOut prio = run_leg(stream, farm::Policy::kPriority);
  const LegOut prio2 = run_leg(stream, farm::Policy::kPriority);
  const LegOut fair = run_leg(stream, farm::Policy::kFairShare);

  const auto show = [](const char* name, const LegOut& l) {
    const auto it = l.tenants.find("interactive");
    std::printf("%-10s makespan=%.3f done=%zu preempted=%zu events=%ld "
                "migrations=%ld | wait p99=%.4f | interactive p99=%.4f\n",
                name, l.makespan_s, l.jobs_done, l.jobs_preempted,
                l.preemption_events, l.migrations, l.wait_p99,
                it != l.tenants.end() ? it->second.wait_p99 : -1.0);
  };
  show("fifo", fifo);
  show("priority", prio);
  show("fair-share", fair);

  // The gates, asserted here AND re-checked from the artifact by
  // tools/bench_json.py (so a stale JSON cannot hide a regression).
  int violations = 0;
  const double fifo_i99 = fifo.tenants.at("interactive").wait_p99;
  const double prio_i99 = prio.tenants.at("interactive").wait_p99;
  if (!(prio_i99 < fifo_i99)) {
    std::fprintf(stderr,
                 "VIOLATION: priority interactive p99 wait %.17g not below "
                 "FIFO's %.17g\n",
                 prio_i99, fifo_i99);
    ++violations;
  }
  if (prio.preemption_events <= 0 || fair.preemption_events <= 0) {
    std::fprintf(stderr, "VIOLATION: a preemptive leg never preempted\n");
    ++violations;
  }
  for (const auto* l : {&fifo, &prio, &prio2, &fair}) {
    if (l->jobs_done != stream.size()) {
      std::fprintf(stderr, "VIOLATION: leg drained %zu of %zu jobs\n",
                   l->jobs_done, stream.size());
      ++violations;
    }
  }
  if (prio.makespan_s != prio2.makespan_s ||
      prio.wait_p99 != prio2.wait_p99 ||
      prio.preemption_events != prio2.preemption_events) {
    std::fprintf(stderr, "VIOLATION: priority legs disagree — the DES "
                         "leaked nondeterminism\n");
    ++violations;
  }

  std::FILE* f = std::fopen(out_path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path);
    return 2;
  }
  std::fprintf(f, "{\n  \"schema\": \"psanim-bench-pr9-farm-v1\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", full ? "full" : "quick");
  std::fprintf(f, "  \"jobs\": %zu,\n  \"slots\": 32,\n", stream.size());
  std::fprintf(f, "  \"interarrival_mean_s\": %.17g,\n", interarrival);
  std::fprintf(f, "  \"legs\": {\n");
  jleg(f, "fifo", fifo, ",");
  jleg(f, "priority", prio, ",");
  jleg(f, "priority_rerun", prio2, ",");
  jleg(f, "fair_share", fair, "");
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return violations == 0 ? 0 : 1;
}
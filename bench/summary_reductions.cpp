// §5.3 comparison between the simulations — the time-reduction summary:
//
//   "The time to simulate snow with Myrinet was reduced by 84% and with
//    Fast-Ethernet by 68%. The second simulation's [fountain] time was
//    reduced by 66% when using Myrinet."
//
// Each percentage is the best configuration of its family. This bench
// reruns the three best configurations and reports 1 - T_par/T_seq.

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace psanim;
  const auto args = bench::BenchArgs::parse(argc, argv);
  args.print_header("§5.3 summary: best-case time reductions");

  const core::SimSettings settings = args.settings();
  const core::Scene snow = sim::make_snow_scene(args.scenario);
  const core::Scene fountain = sim::make_fountain_scene(args.scenario);

  const auto B = cluster::NodeType::e800();
  const auto C = cluster::NodeType::zx2000();

  trace::Table t({"Simulation", "Network", "Best config", "Reduction",
                  "(paper)"});

  {  // Snow over Myrinet: best Table 1 row is 8*B/16P FS-SLB.
    auto cfg = bench::e800_row(8, 16, core::SpaceMode::kFinite,
                               core::LbMode::kStatic);
    const auto r = sim::run_speedup(snow, settings, cfg);
    t.add_row({"snow", "Myrinet", cfg.label(),
               trace::Table::num(r.time_reduction * 100, 0) + "%", "84%"});
  }
  {  // Snow over Fast-Ethernet: best §5.1 row is 8*B/16P FS-SLB, ICC.
    sim::RunConfig cfg;
    cfg.groups = {{B, 8, 16}};
    cfg.network = net::Interconnect::kFastEthernet;
    cfg.compiler = cluster::Compiler::kIcc;
    cfg.baseline_node = C;
    cfg.space = core::SpaceMode::kFinite;
    cfg.lb = core::LbMode::kStatic;
    const auto r = sim::run_speedup(snow, settings, cfg);
    t.add_row({"snow", "Fast-Ethernet", cfg.label(),
               trace::Table::num(r.time_reduction * 100, 0) + "%", "68%"});
  }
  {  // Fountain over Myrinet: best Table 3 row is 8*B/16P FS-DLB.
    auto cfg = bench::e800_row(8, 16, core::SpaceMode::kFinite,
                               core::LbMode::kDynamicPairwise);
    const auto r = sim::run_speedup(fountain, settings, cfg);
    t.add_row({"fountain", "Myrinet", cfg.label(),
               trace::Table::num(r.time_reduction * 100, 0) + "%", "66%"});
  }
  bench::print_table(t);
  std::printf(
      "shape check: snow/Myrinet > snow/FE > none, and fountain/Myrinet "
      "lands near snow/FE — dynamic balancing pays only where the network "
      "can carry it (§5.3).\n");
  return 0;
}

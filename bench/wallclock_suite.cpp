// Wall-clock benchmark suite (PR 4): measures REAL host time and heap
// traffic on the hot paths the virtual-time model abstracts away, and
// emits a machine-checkable BENCH_PR4.json.
//
// Three sections:
//   1. kernels  — optimized vs in-process legacy reference implementations
//      (linear-deque mailbox matching, per-field vertex packing), so the
//      speedup is measured in one binary on one machine.
//   2. pool_kernel — the encode/send/decode round trip with the buffer
//      pool enabled vs disabled, counting heap allocations (pool misses).
//   3. scenes   — reduced table1 snow / table3 fountain runs in pooled and
//      unpooled variants. Virtual makespans, framebuffer hashes and final
//      particle counts must be bit-identical across variants: wall-clock
//      optimizations must never leak into virtual-time results.
//
// `tools/bench_json.py check BENCH_PR4.json` enforces the invariants.
// Doubles are printed with %.17g so equal doubles compare equal as strings.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "core/simulation.hpp"
#include "core/wire.hpp"
#include "math/rng.hpp"
#include "mp/buffer_pool.hpp"
#include "mp/mailbox.hpp"
#include "mp/message.hpp"
#include "sim/run_config.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace psanim;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Best (minimum) wall time of `reps` runs of fn() — the standard way to
/// reject scheduler noise for short kernels.
template <typename Fn>
double best_of(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    const double s = seconds_since(t0);
    if (s < best) best = s;
  }
  return best;
}

// --- legacy reference implementations -------------------------------------

/// The pre-PR4 mailbox: one flat deque, every pop scans all queued
/// messages for the smallest (arrive_time, src, seq) match.
class LegacyMailbox {
 public:
  void push(mp::Message m) { q_.push_back(std::move(m)); }

  mp::Message pop_match(int src, int tag) {
    auto best = q_.end();
    for (auto it = q_.begin(); it != q_.end(); ++it) {
      if (src != mp::kAny && it->src != src) continue;
      if (tag != mp::kAny && it->tag != tag) continue;
      if (best == q_.end() || earlier(*it, *best)) best = it;
    }
    mp::Message m = std::move(*best);
    q_.erase(best);
    return m;
  }

  std::size_t size() const { return q_.size(); }

 private:
  static bool earlier(const mp::Message& a, const mp::Message& b) {
    if (a.arrive_time != b.arrive_time) return a.arrive_time < b.arrive_time;
    if (a.src != b.src) return a.src < b.src;
    return a.seq < b.seq;
  }

  std::deque<mp::Message> q_;
};

/// The pre-PR4 vertex codec: one bounds-checked put/get per field instead
/// of a bulk memcpy of the packed array. Byte layout is identical (the
/// suite asserts it), so only the marshalling cost differs.
mp::Writer legacy_encode_frame_vertices(
    std::uint32_t frame, const std::vector<core::RenderVertex>& verts) {
  mp::Writer w;
  core::put_control_header(w);
  w.put(frame);
  w.put<std::uint64_t>(verts.size());
  for (const auto& v : verts) {
    const core::PackedVertex p = core::pack_vertex(v);
    w.put(p.x);
    w.put(p.y);
    w.put(p.z);
    w.put(p.r);
    w.put(p.g);
    w.put(p.b);
    w.put(p.size_q);
  }
  return w;
}

std::vector<core::RenderVertex> legacy_decode_frame_vertices(
    const mp::Message& m, std::uint32_t expect_frame) {
  mp::Reader r(m);
  core::check_control_header(r, "legacy_decode_frame_vertices");
  core::check_frame(r.get<std::uint32_t>(), expect_frame,
                    "legacy_decode_frame_vertices");
  const auto n = r.get<std::uint64_t>();
  std::vector<core::RenderVertex> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    core::PackedVertex p;
    p.x = r.get<float>();
    p.y = r.get<float>();
    p.z = r.get<float>();
    p.r = r.get<std::uint8_t>();
    p.g = r.get<std::uint8_t>();
    p.b = r.get<std::uint8_t>();
    p.size_q = r.get<std::uint8_t>();
    out.push_back(core::unpack_vertex(p));
  }
  return out;
}

// --- input data -----------------------------------------------------------

std::vector<psys::Particle> make_particles(std::size_t n,
                                           std::uint64_t seed = 42) {
  Rng rng(seed);
  std::vector<psys::Particle> out(n);
  for (auto& p : out) {
    p.pos = rng.in_box({-10, 0, -10}, {10, 10, 10});
    p.prev_pos = p.pos;
    p.vel = rng.in_unit_ball() * 3.0f;
    p.color = {0.5f, 0.6f, 0.9f};
    p.size = 0.05f;
    p.lifetime = 5.0f;
  }
  return out;
}

std::vector<core::RenderVertex> make_verts(std::size_t n) {
  const auto parts = make_particles(n);
  std::vector<core::RenderVertex> verts;
  verts.reserve(parts.size());
  for (const auto& p : parts) verts.push_back(core::to_render_vertex(p));
  return verts;
}

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* b = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= b[i];
    h *= 1099511628211ull;
  }
  return h;
}

// --- results --------------------------------------------------------------

struct KernelResult {
  std::string name;
  std::size_t items = 0;
  int reps = 0;
  double optimized_s = 0.0;
  double legacy_s = 0.0;
  double min_speedup = 1.0;  ///< hard floor enforced by bench_json.py
};

struct PoolKernelResult {
  std::string name;
  std::size_t items = 0;
  int reps = 0;
  double pooled_s = 0.0;
  double unpooled_s = 0.0;
  std::uint64_t pooled_heap_allocs = 0;
  std::uint64_t unpooled_heap_allocs = 0;
};

struct SceneVariant {
  bool pooled = false;
  double wall_s = 0.0;
  double virtual_makespan_s = 0.0;
  std::uint64_t fb_hash = 0;
  std::uint64_t final_particles = 0;
  mp::BufferPool::Stats pool;
};

struct SceneResult {
  std::string name;
  sim::ScenarioParams params;
  int ncalc = 0;
  SceneVariant variants[2];  ///< [0] pooled, [1] unpooled
};

// --- kernel benches -------------------------------------------------------

/// Steady-protocol mailbox pop: kSrcs x kTags streams, arrive times
/// nondecreasing (the runtime's non-overtaking property), popped in the
/// protocol's known-sender order. Pushes happen outside the timed region.
KernelResult bench_mailbox(bool wildcard, std::size_t n, int reps) {
  constexpr int kSrcs = 16;
  constexpr int kTags = 4;
  auto fill = [&](auto& box) {
    for (std::size_t i = 0; i < n; ++i) {
      mp::Message m;
      m.src = static_cast<int>(i % kSrcs);
      m.tag = 200 + static_cast<int>((i / kSrcs) % kTags);
      m.seq = i;
      m.arrive_time = 1e-6 * static_cast<double>(i);
      box.push(std::move(m));
    }
  };

  KernelResult kr;
  kr.name = wildcard ? "mailbox_pop_any" : "mailbox_pop_exact";
  kr.items = n;
  kr.reps = reps;
  kr.min_speedup = 2.0;  // O(1)/O(log) vs O(depth): an order-of-magnitude gap

  kr.optimized_s = best_of(reps, [&] {
    mp::Mailbox mb;
    fill(mb);
    for (std::size_t i = 0; i < n; ++i) {
      const int src = wildcard ? mp::kAny : static_cast<int>(i % kSrcs);
      const int tag =
          wildcard ? mp::kAny : 200 + static_cast<int>((i / kSrcs) % kTags);
      (void)mb.pop_match(src, tag, 10.0);
    }
  });
  kr.legacy_s = best_of(reps, [&] {
    LegacyMailbox mb;
    fill(mb);
    for (std::size_t i = 0; i < n; ++i) {
      const int src = wildcard ? mp::kAny : static_cast<int>(i % kSrcs);
      const int tag =
          wildcard ? mp::kAny : 200 + static_cast<int>((i / kSrcs) % kTags);
      (void)mb.pop_match(src, tag);
    }
  });
  return kr;
}

KernelResult bench_pack(std::size_t n, int reps) {
  const auto verts = make_verts(n);

  // Sanity: the two encoders must produce identical bytes.
  {
    mp::Writer a = core::encode_frame_vertices(7, verts);
    mp::Writer b = legacy_encode_frame_vertices(7, verts);
    if (a.bytes() != b.bytes()) {
      std::fprintf(stderr, "FATAL: legacy/optimized pack bytes differ\n");
      std::exit(1);
    }
  }

  KernelResult kr;
  kr.name = "pack_vertices";
  kr.items = n;
  kr.reps = reps;
  kr.min_speedup = 0.7;  // regression guard; report shows the real speedup
  kr.optimized_s = best_of(reps, [&] {
    mp::Writer w = core::encode_frame_vertices(7, verts);
    volatile std::size_t sink = w.size();
    (void)sink;
  });
  kr.legacy_s = best_of(reps, [&] {
    mp::Writer w = legacy_encode_frame_vertices(7, verts);
    volatile std::size_t sink = w.size();
    (void)sink;
  });
  return kr;
}

KernelResult bench_unpack(std::size_t n, int reps) {
  const auto verts = make_verts(n);
  mp::Message m;
  m.payload = core::encode_frame_vertices(7, verts).take();

  KernelResult kr;
  kr.name = "unpack_vertices";
  kr.items = n;
  kr.reps = reps;
  kr.min_speedup = 0.7;
  kr.optimized_s = best_of(reps, [&] {
    auto out = core::decode_frame_vertices(m, 7);
    volatile std::size_t sink = out.size();
    (void)sink;
  });
  kr.legacy_s = best_of(reps, [&] {
    auto out = legacy_decode_frame_vertices(m, 7);
    volatile std::size_t sink = out.size();
    (void)sink;
  });
  return kr;
}

/// Full message round trip (encode batches -> payload -> decode), pool on
/// vs off. With the pool on, steady state performs zero heap allocations.
PoolKernelResult bench_pool_roundtrip(std::size_t n, int reps) {
  const auto parts = make_particles(n);
  std::vector<core::SystemBatch> batches;
  batches.push_back(core::SystemBatch{0, parts});

  auto round_trip = [&] {
    mp::Writer w = core::encode_batches(3, batches);
    mp::Message m;
    m.payload = w.take();
    auto out = core::decode_batches(m, 3);
    volatile std::size_t sink = out.size();
    (void)sink;
  };

  auto& pool = mp::BufferPool::global();
  PoolKernelResult pr;
  pr.name = "exchange_roundtrip";
  pr.items = n;
  pr.reps = reps;

  pool.trim();
  pool.set_enabled(true);
  round_trip();  // warm the pool: steady state starts at rep 2
  pool.reset_stats();
  pr.pooled_s = best_of(reps, round_trip);
  pr.pooled_heap_allocs = pool.stats().misses;

  pool.set_enabled(false);
  pool.reset_stats();
  pr.unpooled_s = best_of(reps, round_trip);
  pr.unpooled_heap_allocs = pool.stats().misses;
  pool.set_enabled(true);
  return pr;
}

// --- scene benches --------------------------------------------------------

std::uint64_t hash_frame(const render::Framebuffer& fb) {
  std::uint64_t h = 1469598103934665603ull;
  h = fnv1a(h, fb.colors().data(), fb.colors().size() * sizeof(render::Color));
  h = fnv1a(h, fb.depths().data(), fb.depths().size() * sizeof(float));
  return h;
}

SceneResult bench_scene(const std::string& name, const core::Scene& scene,
                        const sim::ScenarioParams& params,
                        const sim::RunConfig& cfg) {
  const sim::BuiltCluster bc = sim::build_cluster(cfg);
  core::SimSettings settings;
  settings.ncalc = bc.ncalc;
  settings.frames = params.frames;
  settings.dt = params.dt;
  settings.space = cfg.space;
  settings.lb = cfg.lb;
  settings.image_width = 160;
  settings.image_height = 120;

  SceneResult sr;
  sr.name = name;
  sr.params = params;
  sr.ncalc = bc.ncalc;

  auto& pool = mp::BufferPool::global();
  for (int v = 0; v < 2; ++v) {
    const bool pooled = (v == 0);
    pool.trim();
    pool.set_enabled(pooled);
    pool.reset_stats();
    const auto t0 = Clock::now();
    const core::ParallelResult res =
        core::run_parallel(scene, settings, bc.spec, bc.placement);
    SceneVariant& out = sr.variants[v];
    out.pooled = pooled;
    out.wall_s = seconds_since(t0);
    out.virtual_makespan_s = res.animation_s;
    out.fb_hash = hash_frame(res.final_frame);
    for (const auto& sys : res.final_particles) out.final_particles += sys.size();
    out.pool = pool.stats();
  }
  pool.set_enabled(true);
  return sr;
}

// --- JSON emission --------------------------------------------------------

void jd(std::FILE* f, const char* key, double v, const char* suffix) {
  std::fprintf(f, "\"%s\": %.17g%s", key, v, suffix);
}

void ju(std::FILE* f, const char* key, std::uint64_t v, const char* suffix) {
  std::fprintf(f, "\"%s\": %llu%s", key, static_cast<unsigned long long>(v),
               suffix);
}

void write_json(const char* path, bool full,
                const std::vector<KernelResult>& kernels,
                const PoolKernelResult& pk,
                const std::vector<SceneResult>& scenes) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"psanim-bench-pr4-v1\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", full ? "full" : "quick");

  std::fprintf(f, "  \"kernels\": [\n");
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    const auto& k = kernels[i];
    std::fprintf(f, "    {\"name\": \"%s\", ", k.name.c_str());
    ju(f, "items", k.items, ", ");
    std::fprintf(f, "\"reps\": %d, ", k.reps);
    jd(f, "optimized_s", k.optimized_s, ", ");
    jd(f, "legacy_s", k.legacy_s, ", ");
    jd(f, "speedup", k.legacy_s / k.optimized_s, ", ");
    jd(f, "min_speedup", k.min_speedup, "}");
    std::fprintf(f, "%s\n", i + 1 < kernels.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");

  std::fprintf(f, "  \"pool_kernel\": {\"name\": \"%s\", ", pk.name.c_str());
  ju(f, "items", pk.items, ", ");
  std::fprintf(f, "\"reps\": %d, ", pk.reps);
  jd(f, "pooled_s", pk.pooled_s, ", ");
  jd(f, "unpooled_s", pk.unpooled_s, ", ");
  ju(f, "pooled_heap_allocs", pk.pooled_heap_allocs, ", ");
  ju(f, "unpooled_heap_allocs", pk.unpooled_heap_allocs, "},\n");

  std::fprintf(f, "  \"scenes\": [\n");
  for (std::size_t i = 0; i < scenes.size(); ++i) {
    const auto& s = scenes[i];
    std::fprintf(f, "    {\"name\": \"%s\", ", s.name.c_str());
    ju(f, "systems", s.params.systems, ", ");
    ju(f, "particles_per_system", s.params.particles_per_system, ", ");
    std::fprintf(f, "\"frames\": %u, \"ncalc\": %d, \"variants\": [\n",
                 s.params.frames, s.ncalc);
    for (int v = 0; v < 2; ++v) {
      const auto& var = s.variants[v];
      std::fprintf(f, "      {\"pool\": %s, ", var.pooled ? "true" : "false");
      jd(f, "wall_s", var.wall_s, ", ");
      jd(f, "virtual_makespan_s", var.virtual_makespan_s, ", ");
      std::fprintf(f, "\"fb_hash\": \"%016llx\", ",
                   static_cast<unsigned long long>(var.fb_hash));
      ju(f, "final_particles", var.final_particles, ", ");
      ju(f, "buffer_acquires", var.pool.acquires, ", ");
      ju(f, "buffer_pool_hits", var.pool.hits, ", ");
      ju(f, "buffer_heap_allocs", var.pool.misses, ", ");
      ju(f, "buffer_releases", var.pool.releases, "}");
      std::fprintf(f, "%s\n", v == 0 ? "," : "");
    }
    std::fprintf(f, "    ]}%s\n", i + 1 < scenes.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool full = false;
  std::string out = "BENCH_PR4.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--full") {
      full = true;
    } else if (arg == "--quick") {
      full = false;
    } else if (arg == "--out" && i + 1 < argc) {
      out = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: %s [--quick|--full] [--out FILE]\n", argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  const std::size_t mb_n = full ? 32768 : 8192;
  const std::size_t pk_n = full ? (1u << 16) : (1u << 14);
  const int reps = full ? 7 : 5;

  std::printf("=== wallclock_suite (%s) ===\n", full ? "full" : "quick");

  std::vector<KernelResult> kernels;
  kernels.push_back(bench_mailbox(/*wildcard=*/false, mb_n, reps));
  kernels.push_back(bench_mailbox(/*wildcard=*/true, mb_n, reps));
  kernels.push_back(bench_pack(pk_n, reps));
  kernels.push_back(bench_unpack(pk_n, reps));
  for (const auto& k : kernels) {
    std::printf("%-20s n=%-7zu optimized %.3f ms  legacy %.3f ms  (%.1fx)\n",
                k.name.c_str(), k.items, k.optimized_s * 1e3, k.legacy_s * 1e3,
                k.legacy_s / k.optimized_s);
  }

  const PoolKernelResult pk = bench_pool_roundtrip(pk_n, reps);
  std::printf(
      "%-20s n=%-7zu pooled %.3f ms (%llu allocs)  unpooled %.3f ms "
      "(%llu allocs)\n",
      pk.name.c_str(), pk.items, pk.pooled_s * 1e3,
      static_cast<unsigned long long>(pk.pooled_heap_allocs),
      pk.unpooled_s * 1e3,
      static_cast<unsigned long long>(pk.unpooled_heap_allocs));

  sim::ScenarioParams params;
  params.systems = full ? 8 : 4;
  params.particles_per_system = full ? 8000 : 1500;
  params.frames = full ? 30 : 12;

  std::vector<SceneResult> scenes;
  scenes.push_back(bench_scene(
      "table1_snow_fs_dlb", sim::make_snow_scene(params), params,
      bench::e800_row(2, 4, core::SpaceMode::kFinite,
                      core::LbMode::kDynamicPairwise)));
  scenes.push_back(bench_scene(
      "table3_fountain_is_slb", sim::make_fountain_scene(params), params,
      bench::e800_row(2, 4, core::SpaceMode::kInfinite,
                      core::LbMode::kStatic)));
  for (const auto& s : scenes) {
    for (const auto& v : s.variants) {
      std::printf(
          "%-22s pool=%d wall %.3f s  virtual %.6f s  allocs %llu "
          "(hits %llu)\n",
          s.name.c_str(), v.pooled ? 1 : 0, v.wall_s, v.virtual_makespan_s,
          static_cast<unsigned long long>(v.pool.misses),
          static_cast<unsigned long long>(v.pool.hits));
    }
    if (s.variants[0].virtual_makespan_s != s.variants[1].virtual_makespan_s ||
        s.variants[0].fb_hash != s.variants[1].fb_hash) {
      std::fprintf(stderr,
                   "FATAL: %s virtual results differ between pool variants\n",
                   s.name.c_str());
      return 1;
    }
  }

  write_json(out.c_str(), full, kernels, pk, scenes);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

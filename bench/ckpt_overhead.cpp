// Checkpoint overhead — what does coordinated snapshotting cost?
//
// Sweeps the ckpt::CkptPolicy interval on the snow (uniform) and fountain
// (irregular) workloads, 8 calculators over Myrinet, and reports the
// animation-time overhead relative to the checkpoint-free run plus the
// storage the vault accumulates (snapshot images + sealed manifests).
// The snapshot phase serializes every store and ships per-rank digests to
// the manager, so cost scales with resident particles and 1/interval.
//
// A final table shows why the overhead is worth paying: with a calculator
// crash mid-run, restart-from-checkpoint replays a few frames instead of
// degrading the domain decomposition for the rest of the animation.

#include "bench/bench_util.hpp"

#include "ckpt/vault.hpp"

namespace {

using namespace psanim;

core::ParallelResult run_with_vault(const core::Scene& scene,
                                    core::SimSettings settings,
                                    const sim::RunConfig& cfg,
                                    ckpt::Vault* vault) {
  const auto built = sim::build_cluster(cfg);
  settings.ncalc = built.ncalc;
  settings.space = cfg.space;
  settings.lb = cfg.lb;
  settings.ckpt_vault = vault;
  return core::run_parallel(scene, settings, built.spec, built.placement);
}

void sweep(const char* title, const core::Scene& scene,
           const core::SimSettings& base, const sim::RunConfig& cfg) {
  std::printf("--- %s ---\n", title);
  trace::Table t({"interval", "snapshots", "animation s", "overhead %",
                  "vault MiB", "images"});
  double base_s = 0.0;
  for (const int interval : {0, 1, 2, 4, 8}) {
    core::SimSettings settings = base;
    settings.ckpt.interval = interval;
    ckpt::Vault vault;
    const auto r = run_with_vault(scene, settings, cfg, &vault);
    if (interval == 0) base_s = r.animation_s;
    const double overhead =
        base_s > 0.0 ? (r.animation_s / base_s - 1.0) * 100.0 : 0.0;
    t.add_row({std::to_string(interval),
               std::to_string(vault.sealed_frames().size()),
               trace::Table::num(r.animation_s), trace::Table::num(overhead),
               trace::Table::num(static_cast<double>(vault.total_bytes()) /
                                 (1024.0 * 1024.0)),
               std::to_string(vault.image_count())});
  }
  bench::print_table(t);
}

void recovery_comparison(const core::Scene& scene,
                         const core::SimSettings& base,
                         const sim::RunConfig& cfg) {
  std::printf("--- fountain, crash at 60%% of the animation ---\n");
  trace::Table t({"recovery", "animation s", "restarts", "merges"});
  core::SimSettings settings = base;
  settings.fault_plan.crashes = {
      {.calc = 1, .at_frame = (settings.frames * 3) / 5}};
  for (const auto mode :
       {ckpt::RecoveryMode::kMergeOnly, ckpt::RecoveryMode::kRestart}) {
    settings.ckpt.interval = 4;
    settings.ckpt.recovery = mode;
    ckpt::Vault vault;
    const auto r = run_with_vault(scene, settings, cfg, &vault);
    t.add_row({mode == ckpt::RecoveryMode::kRestart ? "restart" : "merge-only",
               trace::Table::num(r.animation_s),
               std::to_string(r.fault_stats.restart_recoveries),
               std::to_string(r.fault_stats.merge_recoveries)});
  }
  bench::print_table(t);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace psanim;
  const auto args = bench::BenchArgs::parse(argc, argv);
  args.print_header("Checkpoint overhead: snapshot cost vs. interval");

  const auto cfg = bench::e800_row(8, 8, core::SpaceMode::kFinite,
                                   core::LbMode::kDynamicPairwise);
  const core::SimSettings settings = args.settings();

  sweep("snow (uniform load)", sim::make_snow_scene(args.scenario), settings,
        cfg);
  sweep("fountain (irregular load)", sim::make_fountain_scene(args.scenario),
        settings, cfg);
  recovery_comparison(sim::make_fountain_scene(args.scenario), settings, cfg);

  std::printf(
      "expected shape: overhead falls roughly as 1/interval (interval 1 is "
      "the worst case, a snapshot after every frame); vault bytes grow with "
      "snapshot count x resident particles. In the crash comparison, "
      "merge-only finishes faster but on a degraded decomposition; restart "
      "pays a replay of at most `interval` frames to keep the animation "
      "bit-identical to the fault-free run.\n");
  return 0;
}

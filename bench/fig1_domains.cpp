// Figure 1 — "Example of domains, initially with the same size."
//
// The paper's figure shows the interval [-10, 10] split into four equal
// domains assigned to calculators P1..P4. This binary regenerates that
// figure for the finite-space split, shows the infinite-space split that
// produces Table 1's IS-SLB pathology, and then runs a short balanced
// simulation to show how the dynamic balancer moves the same edges.

#include <cstdio>

#include "bench/bench_util.hpp"
#include "core/decomposition.hpp"
#include "core/simulation.hpp"

using namespace psanim;

namespace {

void print_decomposition(const core::Decomposition& d, float view_lo,
                         float view_hi) {
  constexpr int kWidth = 64;
  std::string ruler(kWidth + 1, '-');
  std::string labels(kWidth + 1, ' ');
  for (int i = 0; i < d.domain_count(); ++i) {
    const float lo = std::max(d.domain_lo(i), view_lo);
    const float hi = std::min(d.domain_hi(i), view_hi);
    if (hi <= lo) continue;
    const auto col = [&](float x) {
      return static_cast<int>((x - view_lo) / (view_hi - view_lo) * kWidth);
    };
    ruler[static_cast<std::size_t>(col(lo))] = '|';
    ruler[static_cast<std::size_t>(col(hi))] = '|';
    const int mid = (col(lo) + col(hi)) / 2;
    const std::string name = "P" + std::to_string(i + 1);
    for (std::size_t k = 0; k < name.size() && mid + k < labels.size(); ++k) {
      labels[static_cast<std::size_t>(mid) + k] = name[k];
    }
  }
  std::printf("  %6.1f %s %.1f\n", view_lo, ruler.c_str(), view_hi);
  std::printf("         %s\n", labels.c_str());
  std::printf("  edges:");
  for (const float e : d.edges()) std::printf(" %.3g", e);
  std::printf("\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc, argv);
  args.scenario.particles_per_system = 4000;
  args.print_header("Figure 1: domain decomposition examples");

  std::printf("Paper's Figure 1: [-10, 10] split into 4 equal domains:\n");
  print_decomposition(core::Decomposition(0, -10.0f, 10.0f, 4), -10, 10);

  std::printf(
      "Infinite space (IS) split for 5 calculators — the emission box\n"
      "[-10, 10] fits inside the CENTRAL domain, so only P3 gets work\n"
      "(Table 1's odd-process IS-SLB pathology):\n");
  print_decomposition(core::Decomposition::infinite_space(0, 5), -2e6f, 2e6f);

  std::printf(
      "Same IS split viewed at the emission scale (all of [-10,10] in P3):\n");
  print_decomposition(core::Decomposition::infinite_space(0, 5), -10, 10);

  // Show what DLB does to the fountain scene's edges.
  const core::Scene scene = sim::make_fountain_scene(args.scenario);
  core::SimSettings settings = args.settings();
  settings.frames = 20;
  auto cfg = bench::e800_row(4, 4, core::SpaceMode::kFinite,
                             core::LbMode::kDynamicPairwise);
  const auto built = sim::build_cluster(cfg);
  settings.ncalc = built.ncalc;
  settings.space = cfg.space;
  settings.lb = cfg.lb;
  const auto result =
      core::run_parallel(scene, settings, built.spec, built.placement);
  std::printf(
      "Fountain scene, FS-DLB, 4 calculators: system 0's domains after\n"
      "%u frames of balancing (equal-size no more — boundaries follow\n"
      "the irregular load):\n",
      settings.frames);
  print_decomposition(result.final_decomps.at(0), -30, 30);
  return 0;
}

// Ablation — interconnect sweep. The paper evaluates Myrinet and
// Fast-Ethernet; Gigabit Ethernet (its related-work machines used it) sits
// between. Both workloads, 8 calculators, FS-DLB, GCC, E800 nodes.
//
// Expected shape: snow (little exchange) degrades mildly from Myrinet to
// Fast-Ethernet; fountain (7x the exchange volume) degrades hard — the
// §5.3 conclusion that DLB needs a high-speed network.
//
// A second sweep re-runs the Table-2 heterogeneous mix (2*B(4P) + 2*C(2P),
// Fast-Ethernet + ICC) under zone platforms — crossbar, slim fat-tree,
// WAN-partitioned — against the flat per-pair model. The flat leg must
// reproduce the legacy-path numbers bit-exactly (the sweep harness itself
// may not perturb results); the zone legs show what shared-link contention
// and long-haul uplinks cost the same workload.

#include <cstdlib>

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace psanim;
  const auto args = bench::BenchArgs::parse(argc, argv);
  args.print_header("Ablation: interconnect sweep (snow vs fountain)");

  const core::SimSettings settings = args.settings();
  const core::Scene snow = sim::make_snow_scene(args.scenario);
  const core::Scene fountain = sim::make_fountain_scene(args.scenario);

  trace::Table t({"Network", "snow speedup", "fountain speedup",
                  "fountain/snow"});
  for (const auto net :
       {net::Interconnect::kMyrinet, net::Interconnect::kGigabitEthernet,
        net::Interconnect::kFastEthernet}) {
    auto cfg = bench::e800_row(8, 8, core::SpaceMode::kFinite,
                               core::LbMode::kDynamicPairwise);
    cfg.network = net;
    const auto rs = sim::run_speedup(snow, settings, cfg);
    const auto rf = sim::run_speedup(fountain, settings, cfg);
    t.add_row({net::to_string(net), trace::Table::num(rs.speedup),
               trace::Table::num(rf.speedup),
               trace::Table::num(rs.speedup > 0 ? rf.speedup / rs.speedup
                                                : 0.0)});
  }
  bench::print_table(t);

  // --- zone-platform sweep on the Table-2 hetero mix -------------------
  auto hetero = [&] {
    sim::RunConfig cfg;
    cfg.groups = {{cluster::NodeType::e800(), 2, 4},
                  {cluster::NodeType::zx2000(), 2, 2}};
    cfg.network = net::Interconnect::kFastEthernet;
    cfg.compiler = cluster::Compiler::kIcc;
    cfg.space = core::SpaceMode::kFinite;
    cfg.lb = core::LbMode::kDynamicPairwise;
    cfg.baseline_node = cluster::NodeType::zx2000();
    return cfg;
  }();
  const double seq_s = sim::measure_sequential(snow, settings, hetero);
  // Today's numbers: the legacy path, before any platform machinery.
  const auto legacy = sim::run_speedup(snow, settings, hetero, seq_s);

  std::printf("Platform sweep: table-2 hetero mix (%s), snow\n",
              hetero.label().c_str());
  trace::Table pt({"Platform", "makespan s", "speedup", "vs flat"});
  for (const char* plat :
       {"flat", "crossbar", "fattree-slim", "wan2"}) {
    auto cfg = hetero;
    cfg.platform = plat;
    const auto r = sim::run_speedup(snow, settings, cfg, seq_s);
    if (std::string(plat) == "flat" &&
        (r.parallel.animation_s != legacy.parallel.animation_s ||
         r.speedup != legacy.speedup)) {
      std::fprintf(stderr,
                   "FATAL: flat platform leg drifted from the legacy path "
                   "(%.17g != %.17g)\n",
                   r.parallel.animation_s, legacy.parallel.animation_s);
      return 1;
    }
    pt.add_row({plat, trace::Table::num(r.parallel.animation_s),
                trace::Table::num(r.speedup),
                trace::Table::num(r.parallel.animation_s /
                                  legacy.parallel.animation_s)});
  }
  bench::print_table(pt);
  return 0;
}

// Ablation — interconnect sweep. The paper evaluates Myrinet and
// Fast-Ethernet; Gigabit Ethernet (its related-work machines used it) sits
// between. Both workloads, 8 calculators, FS-DLB, GCC, E800 nodes.
//
// Expected shape: snow (little exchange) degrades mildly from Myrinet to
// Fast-Ethernet; fountain (7x the exchange volume) degrades hard — the
// §5.3 conclusion that DLB needs a high-speed network.

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace psanim;
  const auto args = bench::BenchArgs::parse(argc, argv);
  args.print_header("Ablation: interconnect sweep (snow vs fountain)");

  const core::SimSettings settings = args.settings();
  const core::Scene snow = sim::make_snow_scene(args.scenario);
  const core::Scene fountain = sim::make_fountain_scene(args.scenario);

  trace::Table t({"Network", "snow speedup", "fountain speedup",
                  "fountain/snow"});
  for (const auto net :
       {net::Interconnect::kMyrinet, net::Interconnect::kGigabitEthernet,
        net::Interconnect::kFastEthernet}) {
    auto cfg = bench::e800_row(8, 8, core::SpaceMode::kFinite,
                               core::LbMode::kDynamicPairwise);
    cfg.network = net;
    const auto rs = sim::run_speedup(snow, settings, cfg);
    const auto rf = sim::run_speedup(fountain, settings, cfg);
    t.add_row({net::to_string(net), trace::Table::num(rs.speedup),
               trace::Table::num(rf.speedup),
               trace::Table::num(rs.speedup > 0 ? rf.speedup / rs.speedup
                                                : 0.0)});
  }
  bench::print_table(t);
  return 0;
}

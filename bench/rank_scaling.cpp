// Rank-count scaling of the execution cores (EXPERIMENTS.md "Execution
// core scaling"): wall-clock cost of driving W-rank worlds through a
// fixed message-passing workload (a two-lap accumulating ring plus one
// allgather), for the fiber scheduler at several worker counts and the
// thread-per-rank oracle where it still applies (W <= 256).
//
// The virtual makespan column is the cross-check: every configuration of
// the same world must report the *same* virtual finish time — scheduling
// is a wall-clock knob, never a result knob. The bench aborts on a
// mismatch.
//
// Usage: rank_scaling [--laps N]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "mp/collectives.hpp"
#include "mp/communicator.hpp"
#include "mp/message.hpp"
#include "mp/runtime.hpp"

namespace {

using namespace psanim;

struct Measured {
  double wall_ms = 0.0;
  double makespan_s = 0.0;  ///< max virtual finish over ranks
};

Measured run_world(int world, mp::ExecMode mode, int workers, int laps) {
  auto cost = [](int, int, std::size_t bytes) {
    return mp::MsgCost{.send_cpu_s = 1e-6,
                       .wire_s = 1e-5 + static_cast<double>(bytes) * 1e-9,
                       .recv_cpu_s = 2e-6};
  };
  mp::Runtime rt(world, cost,
                 mp::RuntimeOptions{.exec_mode = mode, .workers = workers});
  const auto t0 = std::chrono::steady_clock::now();
  const auto results = rt.run([world, laps](mp::Endpoint& ep) {
    const int rank = ep.rank();
    const int right = (rank + 1) % world;
    const int left = (rank + world - 1) % world;
    for (int lap = 0; lap < laps; ++lap) {
      if (rank == 0) {
        mp::Writer w;
        w.put<std::uint64_t>(1);
        ep.send(right, 1, std::move(w));
        ep.recv(left, 1);
      } else {
        mp::Reader r(ep.recv(left, 1));
        mp::Writer w;
        w.put<std::uint64_t>(r.get<std::uint64_t>() + 1);
        ep.send(right, 1, std::move(w));
      }
    }
    mp::Writer w;
    w.put<std::int32_t>(rank);
    mp::allgather(ep, w.take());
  });
  const auto t1 = std::chrono::steady_clock::now();

  Measured m;
  m.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  for (const auto& r : results) {
    if (r.finish_time > m.makespan_s) m.makespan_s = r.finish_time;
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  int laps = 2;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--laps") == 0 && i + 1 < argc) {
      laps = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: %s [--laps N]\n", argv[0]);
      return 2;
    }
  }

  std::printf("# execution-core scaling: ring x%d + allgather\n", laps);
  std::printf("%6s  %-16s  %10s  %18s\n", "world", "core", "wall_ms",
              "virtual_makespan_s");
  for (const int world : {64, 256, 512, 1000}) {
    double reference = -1.0;
    const auto emit = [&](const char* label, const Measured& m) {
      std::printf("%6d  %-16s  %10.2f  %18.9f\n", world, label, m.wall_ms,
                  m.makespan_s);
      if (reference < 0.0) {
        reference = m.makespan_s;
      } else if (m.makespan_s != reference) {
        std::fprintf(stderr,
                     "FATAL: %s diverged at world %d (%.17g != %.17g)\n",
                     label, world, m.makespan_s, reference);
        std::exit(1);
      }
    };
    for (const int workers : {1, 2, 8}) {
      const std::string label = "fibers/w" + std::to_string(workers);
      emit(label.c_str(),
           run_world(world, mp::ExecMode::kFibers, workers, laps));
    }
    if (world <= mp::Runtime::kMaxThreadRanks) {
      emit("threads", run_world(world, mp::ExecMode::kThreads, 0, laps));
    } else {
      std::printf("%6d  %-16s  %10s  %18s\n", world, "threads", "refused",
                  "-");
    }
  }
  std::printf("# every row of a world must share one virtual makespan\n");
  return 0;
}

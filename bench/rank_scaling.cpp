// Rank-count scaling of the execution cores (EXPERIMENTS.md "Execution
// core scaling"): wall-clock cost of driving W-rank worlds through a
// fixed message-passing workload (a two-lap accumulating ring plus one
// allgather), for the fiber scheduler at several worker counts and the
// thread-per-rank oracle where it still applies (W <= 256).
//
// The virtual makespan column is the cross-check: every configuration of
// the same world must report the *same* virtual finish time — scheduling
// is a wall-clock knob, never a result knob. The bench aborts on a
// mismatch.
//
// With --out FILE the bench also runs the platform-topology sweep (flat
// vs crossbar/fat-tree/dragonfly/WAN on a fixed snow workload, every leg
// twice, each leg traced and fed through obs::analysis for its
// critical-path compute/wire split) and a FIFO-vs-SJF farm SLO scenario
// (exact-sample wait/turnaround/slowdown percentiles from farm::Report),
// then writes BENCH_PR8.json: schema-versioned, every double printed
// %.17g, validated by tools/bench_json.py — which gates on the
// critical-path wire share rising from flat to wan2 and on SJF's p99 wait
// staying inside the FIFO-makespan sanity bound. The virtual columns are
// bit-reproducible; wall_ms is informational.
//
// Usage: rank_scaling [--laps N] [--out FILE]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/simulation.hpp"
#include "farm/farm.hpp"
#include "farm/job.hpp"
#include "mp/collectives.hpp"
#include "mp/communicator.hpp"
#include "mp/message.hpp"
#include "mp/runtime.hpp"
#include "obs/analysis.hpp"
#include "obs/trace.hpp"
#include "render/compare.hpp"
#include "sim/run_config.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace psanim;

std::string fmt17(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

struct Measured {
  double wall_ms = 0.0;
  double makespan_s = 0.0;  ///< max virtual finish over ranks
};

Measured run_world(int world, mp::ExecMode mode, int workers, int laps) {
  auto cost = [](int, int, std::size_t bytes) {
    return mp::MsgCost{.send_cpu_s = 1e-6,
                       .wire_s = 1e-5 + static_cast<double>(bytes) * 1e-9,
                       .recv_cpu_s = 2e-6};
  };
  mp::Runtime rt(world, cost,
                 mp::RuntimeOptions{.exec_mode = mode, .workers = workers});
  const auto t0 = std::chrono::steady_clock::now();
  const auto results = rt.run([world, laps](mp::Endpoint& ep) {
    const int rank = ep.rank();
    const int right = (rank + 1) % world;
    const int left = (rank + world - 1) % world;
    for (int lap = 0; lap < laps; ++lap) {
      if (rank == 0) {
        mp::Writer w;
        w.put<std::uint64_t>(1);
        ep.send(right, 1, std::move(w));
        ep.recv(left, 1);
      } else {
        const mp::Message m = ep.recv(left, 1);
        mp::Reader r(m);
        mp::Writer w;
        w.put<std::uint64_t>(r.get<std::uint64_t>() + 1);
        ep.send(right, 1, std::move(w));
      }
    }
    mp::Writer w;
    w.put<std::int32_t>(rank);
    mp::allgather(ep, w.take());
  });
  const auto t1 = std::chrono::steady_clock::now();

  Measured m;
  m.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  for (const auto& r : results) {
    if (r.finish_time > m.makespan_s) m.makespan_s = r.finish_time;
  }
  return m;
}

/// One leg of the platform sweep: the fixed snow workload on 8 E800
/// calculators over Fast-Ethernet, under `platform` (empty = flat). Each
/// leg is traced and fed through obs::analysis, so the sweep reports not
/// just *that* a topology is slower but *where* the extra time sits on
/// the critical path (compute vs wire).
struct SweepLeg {
  double makespan_s = 0.0;  ///< animation_s — image-generator finish
  std::uint64_t fb_hash = 0;
  /// Trace makespan: latest record over all ranks. >= makespan_s, because
  /// the calculators do post-frame bookkeeping (final exchange) after the
  /// image generator has already finished; the critical path tiles *this*.
  double cp_makespan_s = 0.0;
  double cp_compute_s = 0.0;
  double cp_wire_s = 0.0;
  double cp_wire_share = 0.0;
};

SweepLeg run_platform_leg(const std::string& platform) {
  sim::ScenarioParams p;
  p.systems = 4;
  p.particles_per_system = 3'000;
  p.frames = 10;
  const core::Scene scene = sim::make_snow_scene(p);

  sim::RunConfig cfg;
  cfg.groups = {{cluster::NodeType::e800(), 8, 8}};
  cfg.network = net::Interconnect::kFastEthernet;
  cfg.platform = platform;
  const auto built = sim::build_cluster(cfg);

  obs::Trace trace;
  core::SimSettings settings;
  settings.frames = p.frames;
  settings.ncalc = built.ncalc;
  settings.image_width = 64;
  settings.image_height = 48;
  settings.obs.trace = &trace;
  const auto r =
      core::run_parallel(scene, settings, built.spec, built.placement, {},
                         mp::RuntimeOptions{.recv_timeout_s = 60.0});

  const obs::Analysis analysis = obs::analyze(trace);
  SweepLeg leg;
  leg.makespan_s = r.animation_s;
  leg.fb_hash = render::hash_framebuffer(r.final_frame);
  leg.cp_makespan_s = analysis.critical_path.makespan_s;
  leg.cp_compute_s = analysis.critical_path.compute_s;
  leg.cp_wire_s = analysis.critical_path.wire_s;
  leg.cp_wire_share = analysis.critical_path.wire_share();
  return leg;
}

struct ScalingRow {
  int world = 0;
  std::string core;
  double wall_ms = 0.0;
  double makespan_s = 0.0;
};

struct SweepRow {
  std::string platform;
  SweepLeg run1, run2;
};

/// Farm SLO leg: the hetero FIFO-vs-SJF scenario (fast quad + slow quad,
/// one long job submitted adversarially early among five shorts), reduced
/// to the exact-sample wait/turnaround/slowdown percentiles farm::Report
/// now carries. SJF trades the long job's wait for farm makespan; the
/// sanity bound (gated by bench_json.py) is that its p99 wait never
/// exceeds the *FIFO* schedule's makespan — the whole schedule it beat.
struct FarmSloOut {
  double makespan_s = 0.0;
  double wait_p50 = 0.0, wait_p95 = 0.0, wait_p99 = 0.0;
  double turnaround_p99 = 0.0;
  double slowdown_p50 = 0.0, slowdown_p99 = 0.0;
  std::size_t jobs_done = 0;
  int queue_depth_peak = 0;
};

FarmSloOut run_farm_slo(farm::Policy policy) {
  cluster::ClusterSpec spec;
  spec.add(cluster::NodeType::generic(1.0, 4));
  spec.add(cluster::NodeType::generic(0.5, 4));
  farm::FarmOptions opts;
  opts.policy = policy;
  opts.recv_timeout_s = 60.0;
  farm::Farm f(spec, opts);
  const struct {
    const char* name;
    const char* scene;
    std::uint32_t frames;
    std::uint64_t seed;
  } shapes[] = {{"short0", "snow", 4, 0xE0},
                {"long0", "fountain", 36, 0xE1},
                {"short1", "snow", 4, 0xE2},
                {"short2", "fountain", 4, 0xE3},
                {"short3", "snow", 4, 0xE4},
                {"short4", "fountain", 4, 0xE5}};
  for (const auto& shape : shapes) {
    sim::ScenarioParams p;
    p.systems = 2;
    p.particles_per_system = 600;
    p.frames = shape.frames;
    farm::JobSpec j;
    j.name = shape.name;
    j.scene = std::strcmp(shape.scene, "snow") == 0
                  ? sim::make_snow_scene(p)
                  : sim::make_fountain_scene(p);
    j.settings.ncalc = 2;
    j.settings.frames = shape.frames;
    j.settings.seed = shape.seed;
    j.settings.image_width = 64;
    j.settings.image_height = 48;
    f.submit(std::move(j));
  }
  const farm::Report r = f.run();
  FarmSloOut out;
  out.makespan_s = r.makespan_s;
  out.wait_p50 = r.wait_q.quantile(0.5);
  out.wait_p95 = r.wait_q.quantile(0.95);
  out.wait_p99 = r.wait_q.quantile(0.99);
  out.turnaround_p99 = r.turnaround_q.quantile(0.99);
  out.slowdown_p50 = r.slowdown_q.quantile(0.5);
  out.slowdown_p99 = r.slowdown_q.quantile(0.99);
  out.jobs_done = r.jobs_done;
  for (const auto& [t, depth] : r.queue_depth) {
    (void)t;
    if (depth > out.queue_depth_peak) out.queue_depth_peak = depth;
  }
  return out;
}

void jfarm(std::FILE* f, const char* key, const FarmSloOut& p,
           const char* suffix) {
  std::fprintf(f,
               "    \"%s\": {\"makespan_s\": %s, \"jobs_done\": %zu, "
               "\"queue_depth_peak\": %d,\n"
               "      \"wait_p50_s\": %s, \"wait_p95_s\": %s, "
               "\"wait_p99_s\": %s,\n"
               "      \"turnaround_p99_s\": %s, \"slowdown_p50\": %s, "
               "\"slowdown_p99\": %s}%s\n",
               key, fmt17(p.makespan_s).c_str(), p.jobs_done,
               p.queue_depth_peak, fmt17(p.wait_p50).c_str(),
               fmt17(p.wait_p95).c_str(), fmt17(p.wait_p99).c_str(),
               fmt17(p.turnaround_p99).c_str(),
               fmt17(p.slowdown_p50).c_str(), fmt17(p.slowdown_p99).c_str(),
               suffix);
}

void write_json(const std::string& path,
                const std::vector<ScalingRow>& scaling,
                const std::vector<SweepRow>& sweep, const FarmSloOut& fifo,
                const FarmSloOut& sjf, int laps) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fputs("{\n  \"schema\": \"psanim-bench-pr8-v1\",\n", f);
  std::fprintf(f, "  \"workload\": {\"laps\": %d, \"sweep_scene\": "
                  "\"snow 4x3000 x10f, 8*E800, fast-ethernet\"},\n", laps);
  std::fputs("  \"rank_scaling\": [\n", f);
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    const auto& r = scaling[i];
    std::fprintf(f,
                 "    {\"world\": %d, \"core\": \"%s\", \"wall_ms\": %s, "
                 "\"virtual_makespan_s\": %s}%s\n",
                 r.world, r.core.c_str(), fmt17(r.wall_ms).c_str(),
                 fmt17(r.makespan_s).c_str(),
                 i + 1 < scaling.size() ? "," : "");
  }
  std::fputs("  ],\n  \"platform_sweep\": [\n", f);
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const auto& r = sweep[i];
    std::fprintf(f,
                 "    {\"platform\": \"%s\", \"makespan_run1_s\": %s, "
                 "\"makespan_run2_s\": %s, \"fb_hash\": \"%016llx\",\n"
                 "     \"cp_makespan_s\": %s, \"cp_compute_s\": %s, "
                 "\"cp_wire_s\": %s, \"cp_wire_share\": %s}%s\n",
                 r.platform.empty() ? "flat" : r.platform.c_str(),
                 fmt17(r.run1.makespan_s).c_str(),
                 fmt17(r.run2.makespan_s).c_str(),
                 static_cast<unsigned long long>(r.run1.fb_hash),
                 fmt17(r.run1.cp_makespan_s).c_str(),
                 fmt17(r.run1.cp_compute_s).c_str(),
                 fmt17(r.run1.cp_wire_s).c_str(),
                 fmt17(r.run1.cp_wire_share).c_str(),
                 i + 1 < sweep.size() ? "," : "");
  }
  std::fputs("  ],\n  \"farm_slo\": {\n", f);
  jfarm(f, "fifo", fifo, ",");
  jfarm(f, "sjf", sjf, "");
  std::fputs("  }\n}\n", f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  int laps = 2;
  std::string out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--laps") == 0 && i + 1 < argc) {
      laps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--laps N] [--out FILE]\n", argv[0]);
      return 2;
    }
  }
  std::vector<ScalingRow> scaling;

  std::printf("# execution-core scaling: ring x%d + allgather\n", laps);
  std::printf("%6s  %-16s  %10s  %18s\n", "world", "core", "wall_ms",
              "virtual_makespan_s");
  for (const int world : {64, 256, 512, 1000}) {
    double reference = -1.0;
    const auto emit = [&](const char* label, const Measured& m) {
      std::printf("%6d  %-16s  %10.2f  %18.9f\n", world, label, m.wall_ms,
                  m.makespan_s);
      if (reference < 0.0) {
        reference = m.makespan_s;
      } else if (m.makespan_s != reference) {
        std::fprintf(stderr,
                     "FATAL: %s diverged at world %d (%.17g != %.17g)\n",
                     label, world, m.makespan_s, reference);
        std::exit(1);
      }
      scaling.push_back({world, label, m.wall_ms, m.makespan_s});
    };
    for (const int workers : {1, 2, 8}) {
      const std::string label = "fibers/w" + std::to_string(workers);
      emit(label.c_str(),
           run_world(world, mp::ExecMode::kFibers, workers, laps));
    }
    if (world <= mp::Runtime::kMaxThreadRanks) {
      emit("threads", run_world(world, mp::ExecMode::kThreads, 0, laps));
    } else {
      std::printf("%6d  %-16s  %10s  %18s\n", world, "threads", "refused",
                  "-");
    }
  }
  std::printf("# every row of a world must share one virtual makespan\n");

  if (out.empty()) return 0;

  // Platform-topology sweep: same scene on the flat model and on each zone
  // platform, every leg twice. The two runs of a leg must agree bit-for-bit
  // (contention is deterministic), every leg must render the flat leg's
  // pixels (delivery times never change content), and the slim fat-tree
  // must separate measurably from flat (shared uplinks cost time).
  std::printf("\n# platform sweep: snow 4x3000 x10f, 8*E800, fast-ethernet\n");
  std::printf("%-14s  %18s  %16s  %10s\n", "platform", "virtual_makespan_s",
              "fb_hash", "wire_share");
  std::vector<SweepRow> sweep;
  for (const std::string plat :
       {"", "crossbar", "fattree", "fattree-slim", "dragonfly", "wan2"}) {
    SweepRow row;
    row.platform = plat;
    row.run1 = run_platform_leg(plat);
    row.run2 = run_platform_leg(plat);
    if (row.run1.makespan_s != row.run2.makespan_s ||
        row.run1.fb_hash != row.run2.fb_hash ||
        row.run1.cp_compute_s != row.run2.cp_compute_s ||
        row.run1.cp_wire_s != row.run2.cp_wire_s) {
      std::fprintf(stderr,
                   "FATAL: platform '%s' is not reproducible "
                   "(%.17g != %.17g, cp wire %.17g != %.17g)\n",
                   plat.empty() ? "flat" : plat.c_str(),
                   row.run1.makespan_s, row.run2.makespan_s,
                   row.run1.cp_wire_s, row.run2.cp_wire_s);
      return 1;
    }
    if (!sweep.empty() && row.run1.fb_hash != sweep.front().run1.fb_hash) {
      std::fprintf(stderr,
                   "FATAL: platform '%s' changed the rendered pixels\n",
                   plat.c_str());
      return 1;
    }
    std::printf("%-14s  %18.9f  %016llx  %9.1f%%\n",
                plat.empty() ? "flat" : plat.c_str(), row.run1.makespan_s,
                static_cast<unsigned long long>(row.run1.fb_hash),
                100.0 * row.run1.cp_wire_share);
    sweep.push_back(std::move(row));
  }
  const auto find = [&](const char* name) -> const SweepRow& {
    for (const auto& r : sweep) {
      if (r.platform == name) return r;
    }
    std::fprintf(stderr, "FATAL: sweep missing platform '%s'\n", name);
    std::exit(1);
  };
  if (find("fattree-slim").run1.makespan_s == find("").run1.makespan_s) {
    std::fprintf(stderr,
                 "FATAL: slim fat-tree did not separate from the flat "
                 "model\n");
    return 1;
  }
  // The observability acceptance gate: congested/long-haul topologies must
  // surface as critical-path *wire* time, not as mystery compute. The flat
  // model's wire share must sit strictly below the two-site WAN's.
  if (!(find("").run1.cp_wire_share < find("wan2").run1.cp_wire_share)) {
    std::fprintf(stderr,
                 "FATAL: critical-path wire share did not rise from flat "
                 "(%.17g) to wan2 (%.17g)\n",
                 find("").run1.cp_wire_share,
                 find("wan2").run1.cp_wire_share);
    return 1;
  }

  // Farm SLO leg: FIFO vs SJF on the hetero scenario, reduced to the new
  // exact-sample percentiles. SJF may delay the long job (that is the
  // trade), but never past the FIFO schedule's own makespan.
  std::printf("\n# farm SLO: fast quad + slow quad, 1 long + 5 short jobs\n");
  const FarmSloOut fifo = run_farm_slo(farm::Policy::kFifo);
  const FarmSloOut sjf = run_farm_slo(farm::Policy::kSjf);
  std::printf("%-6s  %12s  %12s  %12s  %12s  %12s\n", "policy", "makespan_s",
              "wait_p50_s", "wait_p99_s", "turn_p99_s", "slowdown_p99");
  std::printf("%-6s  %12.6f  %12.6f  %12.6f  %12.6f  %12.4f\n", "fifo",
              fifo.makespan_s, fifo.wait_p50, fifo.wait_p99,
              fifo.turnaround_p99, fifo.slowdown_p99);
  std::printf("%-6s  %12.6f  %12.6f  %12.6f  %12.6f  %12.4f\n", "sjf",
              sjf.makespan_s, sjf.wait_p50, sjf.wait_p99, sjf.turnaround_p99,
              sjf.slowdown_p99);
  if (sjf.wait_p99 > fifo.makespan_s + 1e-12) {
    std::fprintf(stderr,
                 "FATAL: SJF p99 wait %.17g exceeds the FIFO makespan "
                 "%.17g — the latency trade went past its bound\n",
                 sjf.wait_p99, fifo.makespan_s);
    return 1;
  }

  write_json(out, scaling, sweep, fifo, sjf, laps);
  return 0;
}

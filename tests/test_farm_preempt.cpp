// Preemptive farm scheduling suite. The headline property: a job the farm
// checkpoints out of its slots and later restores — possibly on different
// nodes — finishes with framebuffers bit-identical to the uninterrupted
// standalone run, under both execution cores. Around it: fair-share
// ordering, preemption interleaved with the job's own crash recovery
// (chaos), the persistent job journal, and regression coverage for the
// farm accounting fixes (peak-rank inflation on failed launches, obs-file
// name collisions, queue-depth series termination).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "ckpt/vault.hpp"
#include "cluster/cluster_spec.hpp"
#include "core/simulation.hpp"
#include "farm/farm.hpp"
#include "farm/job.hpp"
#include "farm/journal.hpp"
#include "render/compare.hpp"
#include "sim/scenario.hpp"

namespace psanim {
namespace {

using farm::Farm;
using farm::FarmOptions;
using farm::JobSpec;
using farm::JobState;
using farm::JournalRecord;
using farm::JournalType;
using farm::Policy;

core::Scene tiny_scene(std::uint32_t frames) {
  sim::ScenarioParams p;
  p.systems = 2;
  p.particles_per_system = 600;
  p.frames = frames;
  return sim::make_fountain_scene(p);
}

JobSpec tiny_job(const std::string& name, int ncalc, std::uint32_t frames) {
  JobSpec j;
  j.name = name;
  j.scene = tiny_scene(frames);
  j.settings.ncalc = ncalc;
  j.settings.frames = frames;
  j.settings.seed = 42;
  j.settings.image_width = 64;
  j.settings.image_height = 48;
  return j;
}

/// n generic nodes, `cpus` slots each, all rate 1.0 — interchangeable
/// hosts, so a restored job can land anywhere (migration is possible).
cluster::ClusterSpec flat_cluster(std::size_t n, int cpus) {
  cluster::ClusterSpec spec;
  spec.add(cluster::NodeType::generic(1.0, cpus), n);
  return spec;
}

FarmOptions preempt_opts(Policy policy, mp::ExecMode mode) {
  FarmOptions o;
  o.policy = policy;
  o.recv_timeout_s = 30.0;
  o.exec_mode = mode;
  o.preempt_interval = 4;
  return o;
}

bool same_image(const render::Framebuffer& a, const render::Framebuffer& b) {
  return a.colors().size() == b.colors().size() &&
         std::memcmp(a.colors().data(), b.colors().data(),
                     a.colors().size() * sizeof(render::Color)) == 0;
}

/// The canonical eviction-and-migration scenario on 2 nodes x 4 slots:
///  * A (priority 0, world 4) arrives first and takes node 0;
///  * C (priority 1, world 8) needs the whole cluster — A is checkpointed
///    out at its first candidate frame and C takes both nodes;
///  * D (priority 1, world 4) arrives behind C; when C finishes, D (higher
///    priority) grabs node 0, so A's restore must land on node 1 — a
///    migration, proving the vault's cross-node bit-exactness.
struct PreemptScenario {
  farm::JobHandle a, c, d;
  farm::Report report;
};

JobSpec scenario_a_spec() { return tiny_job("A", 2, 12); }

PreemptScenario run_preempt_scenario(mp::ExecMode mode,
                                     const std::string& journal_path = "") {
  FarmOptions o = preempt_opts(Policy::kPriority, mode);
  o.journal_path = journal_path;
  Farm f(flat_cluster(2, 4), o);
  PreemptScenario s;
  auto c_spec = tiny_job("C", 6, 12);
  auto d_spec = tiny_job("D", 2, 12);
  c_spec.priority = 1;
  d_spec.priority = 1;
  c_spec.submit_time_s = 1e-6;  // A must already be running
  d_spec.submit_time_s = 1e-6;
  s.a = f.submit(scenario_a_spec());
  s.c = f.submit(std::move(c_spec));
  s.d = f.submit(std::move(d_spec));
  s.report = f.run();
  return s;
}

// --- the headline property ---------------------------------------------

TEST(FarmPreempt, PreemptedAndMigratedJobStaysBitIdenticalUnderBothCores) {
  for (const auto mode : {mp::ExecMode::kFibers, mp::ExecMode::kThreads}) {
    SCOPED_TRACE(mode == mp::ExecMode::kFibers ? "fibers" : "threads");
    const auto s = run_preempt_scenario(mode);
    const auto& a = s.a.await();
    ASSERT_EQ(a.state, JobState::kDone) << a.error;
    EXPECT_EQ(s.c.await().state, JobState::kDone);
    EXPECT_EQ(s.d.await().state, JobState::kDone);

    // A was evicted exactly once, at its first imposed checkpoint frame,
    // and restored onto a different node than it started on.
    EXPECT_EQ(a.preemptions, 1);
    ASSERT_EQ(a.preempt_frames.size(), 1u);
    EXPECT_EQ(a.preempt_frames[0], 3u);  // interval 4 => frames 3, 7
    EXPECT_TRUE(a.migrated);
    EXPECT_EQ(s.report.jobs_preempted, 1u);
    EXPECT_EQ(s.report.jobs_done, 3u);

    // The high-priority arrival C overtook A despite arriving later.
    const auto& order = s.report.completion_order;
    const auto pos = [&](const std::string& n) {
      return std::find(order.begin(), order.end(), n) - order.begin();
    };
    EXPECT_LT(pos("C"), pos("A"));

    // Bit-exactness across the suspend/restore/migrate cycle: the farm's
    // framebuffer (and its hash, taken at first launch) match an
    // uninterrupted standalone run of the same job on the recorded
    // assignment.
    const auto oracle = farm::standalone_run(scenario_a_spec(), a.assignment);
    EXPECT_EQ(a.fb_hash, render::hash_framebuffer(oracle.final_frame));
    EXPECT_TRUE(same_image(a.result.final_frame, oracle.final_frame));

    // A's farm residency includes a suspended epoch: stretch > 1 even
    // though it never shared a node's bus.
    EXPECT_GT(a.stretch, 1.0);
  }
}

TEST(FarmPreempt, FairShareServesTheUnderServedTenantFirst) {
  // hogA (tenant "hog") holds the whole cluster when meekB (tenant
  // "meek", zero service so far) arrives: fair-share evicts the
  // over-served tenant's job, runs meekB, then restores hogA — and only
  // then hogB, the hog tenant's second job, despite its earlier seq.
  FarmOptions o = preempt_opts(Policy::kFairShare, mp::ExecMode::kDefault);
  Farm f(flat_cluster(1, 4), o);
  const auto make_hog_a = [] {
    auto j = tiny_job("hogA", 2, 12);
    j.tenant = "hog";
    return j;
  };
  auto hog_b = tiny_job("hogB", 2, 12);
  auto meek_b = tiny_job("meekB", 2, 12);
  hog_b.tenant = "hog";
  meek_b.tenant = "meek";
  hog_b.submit_time_s = 1e-6;
  meek_b.submit_time_s = 1e-6;
  auto ha = f.submit(make_hog_a());
  auto hb = f.submit(std::move(hog_b));
  auto mb = f.submit(std::move(meek_b));
  const auto report = f.run();

  ASSERT_EQ(ha.await().state, JobState::kDone) << ha.await().error;
  ASSERT_EQ(hb.await().state, JobState::kDone);
  ASSERT_EQ(mb.await().state, JobState::kDone);
  EXPECT_EQ(ha.await().preemptions, 1);
  // One node: the restore lands exactly where the job started.
  EXPECT_FALSE(ha.await().migrated);
  ASSERT_EQ(report.completion_order.size(), 3u);
  EXPECT_EQ(report.completion_order[0], "meekB");
  EXPECT_EQ(report.completion_order[1], "hogA");
  EXPECT_EQ(report.completion_order[2], "hogB");
  // Both tenants got service, and the report accounts for it.
  EXPECT_GT(report.tenant_rank_s.at("hog"), 0.0);
  EXPECT_GT(report.tenant_rank_s.at("meek"), 0.0);

  const auto oracle = farm::standalone_run(make_hog_a(), ha.await().assignment);
  EXPECT_EQ(ha.await().fb_hash, render::hash_framebuffer(oracle.final_frame));
}

TEST(FarmPreempt, PreemptionInterleavedWithOwnCrashRecoveryStaysBitExact) {
  // Chaos composition: the victim job brings its own checkpoint policy
  // AND a calculator crash it must recover from. The farm preempts it at
  // an early checkpoint; the restored segment then replays the crash and
  // its rollback-recovery — and still lands on the standalone pixels.
  FarmOptions o = preempt_opts(Policy::kPriority, mp::ExecMode::kDefault);
  Farm f(flat_cluster(2, 4), o);
  const auto make_victim = [] {
    auto j = tiny_job("victim", 2, 12);
    j.settings.ckpt.interval = 2;  // its own policy: frames 1,3,5,7,9
    j.settings.fault_plan.crashes = {{.calc = 1, .at_frame = 5}};
    return j;
  };
  auto big = tiny_job("big", 6, 12);
  big.priority = 1;
  big.submit_time_s = 1e-6;
  auto hv = f.submit(make_victim());
  auto hbig = f.submit(std::move(big));
  const auto report = f.run();

  ASSERT_EQ(hv.await().state, JobState::kDone) << hv.await().error;
  ASSERT_EQ(hbig.await().state, JobState::kDone) << hbig.await().error;
  EXPECT_EQ(hv.await().preemptions, 1);
  ASSERT_EQ(hv.await().preempt_frames.size(), 1u);
  EXPECT_EQ(hv.await().preempt_frames[0], 1u);  // its own interval-2 grid
  EXPECT_EQ(report.jobs_preempted, 1u);
  // The restored segment replayed the crash and recovered from it.
  EXPECT_EQ(hv.await().result.fault_stats.restart_recoveries, 1u);

  const auto oracle = farm::standalone_run(make_victim(), hv.await().assignment);
  EXPECT_EQ(hv.await().fb_hash,
            render::hash_framebuffer(oracle.final_frame));
  EXPECT_TRUE(same_image(hv.await().result.final_frame, oracle.final_frame));
}

TEST(FarmPreempt, ReportsAndMetricsCountPreemptionTraffic) {
  const auto s = run_preempt_scenario(mp::ExecMode::kDefault);
  const auto dump = s.report.metrics.prometheus();
  EXPECT_NE(dump.find("psanim_farm_preemptions_total 1"), std::string::npos)
      << dump;
  EXPECT_NE(dump.find("psanim_farm_restores_total 1"), std::string::npos);
  EXPECT_NE(dump.find("psanim_farm_migrations_total 1"), std::string::npos);
}

TEST(FarmPreempt, DeterministicAcrossIdenticalRuns) {
  const auto r1 = run_preempt_scenario(mp::ExecMode::kDefault);
  const auto r2 = run_preempt_scenario(mp::ExecMode::kDefault);
  EXPECT_EQ(r1.report.completion_order, r2.report.completion_order);
  EXPECT_EQ(r1.report.makespan_s, r2.report.makespan_s);
  EXPECT_EQ(r1.report.queue_depth, r2.report.queue_depth);
  EXPECT_EQ(r1.a.await().fb_hash, r2.a.await().fb_hash);
  EXPECT_EQ(r1.a.await().finish_s, r2.a.await().finish_s);
}

// --- closed-loop arrivals ----------------------------------------------

TEST(FarmPreempt, AfterSeqChainsArrivalsBehindThePredecessor) {
  Farm f(flat_cluster(1, 4), preempt_opts(Policy::kFifo,
                                          mp::ExecMode::kDefault));
  auto first = f.submit(tiny_job("first", 2, 6));
  auto chained = tiny_job("chained", 2, 6);
  chained.after_seq = 0;      // after "first" terminates...
  chained.submit_time_s = 0.5;  // ...plus half a virtual second of think
  auto second = f.submit(std::move(chained));
  f.run();
  ASSERT_EQ(first.await().state, JobState::kDone);
  ASSERT_EQ(second.await().state, JobState::kDone);
  EXPECT_GE(second.await().start_s, first.await().finish_s + 0.5);
  // The wait SLO measures from the *release* instant, not absolute zero:
  // an immediately-started chained job waited ~nothing.
  EXPECT_LT(second.await().start_s - (first.await().finish_s + 0.5), 1e-9);
}

TEST(FarmPreempt, AfterSeqMustReferenceAnEarlierSubmission) {
  Farm f(flat_cluster(1, 4), preempt_opts(Policy::kFifo,
                                          mp::ExecMode::kDefault));
  auto bad = tiny_job("bad", 2, 6);
  bad.after_seq = 0;  // no submission 0 exists yet
  EXPECT_THROW(f.submit(std::move(bad)), std::invalid_argument);
}

// --- the job journal ---------------------------------------------------

TEST(FarmJournal, RecordsTheFullPreemptionLifecycle) {
  const std::string path =
      std::filesystem::path(::testing::TempDir()) / "farm_lifecycle.journal";
  const auto s = run_preempt_scenario(mp::ExecMode::kDefault, path);
  ASSERT_EQ(s.a.await().state, JobState::kDone);

  const auto recs = farm::read_journal(path);
  ASSERT_GE(recs.size(), 3u + 3u + 1u + 1u + 3u);
  const auto count = [&](JournalType t) {
    return std::count_if(recs.begin(), recs.end(),
                         [&](const JournalRecord& r) { return r.type == t; });
  };
  EXPECT_EQ(count(JournalType::kSubmit), 3);
  EXPECT_EQ(count(JournalType::kLaunch), 3);
  EXPECT_EQ(count(JournalType::kPreempt), 1);
  EXPECT_EQ(count(JournalType::kRestore), 1);
  EXPECT_EQ(count(JournalType::kFinish), 3);
  for (const auto& r : recs) {
    if (r.type == JournalType::kPreempt || r.type == JournalType::kRestore) {
      EXPECT_EQ(r.name, "A");
      EXPECT_EQ(r.frame, 3u);
    }
  }
  // Every job reached a terminal record: a recovery finds nothing pending.
  EXPECT_TRUE(farm::recover_journal(path).pending.empty());
}

TEST(FarmJournal, RecoveryRebuildsPendingJobsWithResumeFrames) {
  const std::string path =
      std::filesystem::path(::testing::TempDir()) / "farm_recover.journal";
  {
    farm::JournalWriter w(path);
    JournalRecord r;
    r.type = JournalType::kSubmit;
    r.seq = 0;
    r.name = "interrupted";
    r.tenant = "batch";
    w.append(r);
    r.type = JournalType::kLaunch;
    w.append(r);
    r.type = JournalType::kPreempt;
    r.frame = 7;
    w.append(r);
    r = {};
    r.type = JournalType::kSubmit;
    r.seq = 1;
    r.name = "done";
    w.append(r);
    r.type = JournalType::kFinish;
    r.state = JobState::kDone;
    w.append(r);
  }  // the farm process "crashes" here
  const auto rec = farm::recover_journal(path);
  ASSERT_EQ(rec.pending.size(), 1u);
  EXPECT_EQ(rec.pending[0].seq, 0);
  EXPECT_EQ(rec.pending[0].name, "interrupted");
  EXPECT_EQ(rec.pending[0].tenant, "batch");
  ASSERT_TRUE(rec.pending[0].resume_frame.has_value());
  EXPECT_EQ(*rec.pending[0].resume_frame, 7u);
}

TEST(FarmJournal, TornTailEndsCleanlyButSkewFailsLoudly) {
  const std::string path =
      std::filesystem::path(::testing::TempDir()) / "farm_torn.journal";
  {
    farm::JournalWriter w(path);
    JournalRecord r;
    r.type = JournalType::kSubmit;
    r.name = "a";
    w.append(r);
    r.seq = 1;
    r.name = "b";
    w.append(r);
  }
  {
    // A crash mid-append leaves a torn frame at the tail.
    std::ofstream app(path, std::ios::binary | std::ios::app);
    const char garbage[] = "\x40\x00\x00\x00partial";
    app.write(garbage, sizeof(garbage) - 1);
  }
  const auto recs = farm::read_journal(path);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[1].name, "b");

  // Version skew is a different build's journal, not a torn tail: loud.
  {
    std::fstream fix(path,
                     std::ios::binary | std::ios::in | std::ios::out);
    fix.seekp(4);  // u16 version right after the u32 magic
    const char bad = '\x7F';
    fix.write(&bad, 1);
  }
  EXPECT_THROW(farm::read_journal(path), std::runtime_error);
  EXPECT_THROW(farm::read_journal(path + ".does-not-exist"),
               std::runtime_error);
}

// --- live queue recovery -----------------------------------------------

/// The canonical scenario, but job A carries its own vault so the sealed
/// snapshots survive the farm object — the "disk" a crashed farm process
/// leaves behind, alongside its journal.
std::vector<JobSpec> recover_specs(ckpt::Vault* vault_a) {
  std::vector<JobSpec> specs;
  auto a = scenario_a_spec();
  a.settings.ckpt.interval = 4;  // same grid preempt_opts would impose
  a.settings.ckpt_vault = vault_a;
  auto c = tiny_job("C", 6, 12);
  auto d = tiny_job("D", 2, 12);
  c.priority = 1;
  d.priority = 1;
  c.submit_time_s = 1e-6;
  d.submit_time_s = 1e-6;
  specs.push_back(std::move(a));
  specs.push_back(std::move(c));
  specs.push_back(std::move(d));
  return specs;
}

TEST(FarmRecover, BootsFromMidRunJournalAndDrainsToTheSameResults) {
  for (const auto mode : {mp::ExecMode::kFibers, mp::ExecMode::kThreads}) {
    SCOPED_TRACE(mode == mp::ExecMode::kFibers ? "fibers" : "threads");
    const auto dir = std::filesystem::path(::testing::TempDir());
    const std::string suffix =
        mode == mp::ExecMode::kFibers ? "fibers" : "threads";
    const std::string ref_path = dir / ("recover_ref_" + suffix + ".journal");
    const std::string cut_path = dir / ("recover_cut_" + suffix + ".journal");
    const std::string new_path = dir / ("recover_new_" + suffix + ".journal");

    // Reference: the uninterrupted run, journaled, A's snapshots vaulted.
    auto vault = std::make_shared<ckpt::Vault>();
    FarmOptions o = preempt_opts(Policy::kPriority, mode);
    o.journal_path = ref_path;
    std::map<std::string, std::uint64_t> want_hash;
    {
      Farm ref(flat_cluster(2, 4), o);
      std::vector<farm::JobHandle> hs;
      for (auto& spec : recover_specs(vault.get())) {
        hs.push_back(ref.submit(std::move(spec)));
      }
      ref.run();
      for (const auto& h : hs) {
        ASSERT_EQ(h.await().state, JobState::kDone) << h.await().error;
        want_hash[h.name()] = h.await().fb_hash;
      }
      ASSERT_EQ(hs[0].await().preemptions, 1);
    }

    // "Crash" the farm right after it journaled A's eviction: replay the
    // journal prefix through the kPreempt record into a new file.
    {
      farm::JournalWriter w(cut_path);
      for (const auto& r : farm::read_journal(ref_path)) {
        w.append(r);
        if (r.type == JournalType::kPreempt) break;
      }
    }

    // Boot a new farm from the cut journal + a copy of the on-disk vault
    // (the crashed process's memory is gone; its artifacts are not).
    auto vault2 = std::make_shared<ckpt::Vault>(*vault);
    FarmOptions o2 = preempt_opts(Policy::kPriority, mode);
    o2.journal_path = new_path;
    auto farm2 = Farm::recover(cut_path, flat_cluster(2, 4), o2,
                               recover_specs(vault2.get()), {{0, vault2}});
    const auto report = farm2->run();

    // Same completion set, bit-identical framebuffers: the resumed A
    // recomputed only frames past its journaled checkpoint, C and D
    // reran from scratch, and nothing about the crash is visible in the
    // pixels.
    EXPECT_EQ(report.jobs_done, 3u);
    const auto hs = farm2->handles();
    ASSERT_EQ(hs.size(), 3u);
    std::map<std::string, std::uint64_t> got_hash;
    for (const auto& h : hs) {
      ASSERT_EQ(h.await().state, JobState::kDone) << h.await().error;
      got_hash[h.name()] = h.await().fb_hash;
    }
    EXPECT_EQ(got_hash, want_hash);
    // The recovered farm's own journal closes the loop: nothing pending.
    EXPECT_TRUE(farm::recover_journal(new_path).pending.empty());
  }
}

TEST(FarmRecover, MissingVaultOrSnapshotFailsLoudly) {
  const auto dir = std::filesystem::path(::testing::TempDir());
  const std::string path = dir / "recover_errors.journal";
  {
    farm::JournalWriter w(path);
    JournalRecord r;
    r.type = JournalType::kSubmit;
    r.seq = 0;
    r.name = "A";
    w.append(r);
    r.type = JournalType::kLaunch;
    w.append(r);
    r.type = JournalType::kPreempt;
    r.frame = 3;
    w.append(r);
  }
  const auto specs = [] {
    std::vector<JobSpec> v;
    v.push_back(scenario_a_spec());
    return v;
  };
  FarmOptions o = preempt_opts(Policy::kPriority, mp::ExecMode::kDefault);
  // A is suspended at frame 3 but no vault was supplied for seq 0.
  EXPECT_THROW(Farm::recover(path, flat_cluster(2, 4), o, specs(), {}),
               std::invalid_argument);
  // A vault exists but holds no sealed snapshot at the resume frame.
  auto empty_vault = std::make_shared<ckpt::Vault>();
  EXPECT_THROW(Farm::recover(path, flat_cluster(2, 4), o, specs(),
                             {{0, empty_vault}}),
               std::invalid_argument);
  // The pending seq has no spec to rebuild from.
  EXPECT_THROW(
      Farm::recover(path, flat_cluster(2, 4), o, {}, {{0, empty_vault}}),
      std::invalid_argument);
}

// --- accounting regressions --------------------------------------------

TEST(FarmAccounting, FailedLaunchLeavesNoPeakRankFootprint) {
  // A job that dies during launch never resided on its nodes: peak_ranks
  // must stay zero (it used to be charged at claim time and never
  // uncharged).
  Farm f(flat_cluster(2, 4), preempt_opts(Policy::kFifo,
                                          mp::ExecMode::kDefault));
  auto doomed = tiny_job("doomed", 1, 6);
  // Crash a calculator the job does not have: run_parallel rejects the
  // fault plan at launch, failing the job before any frame runs.
  doomed.settings.fault_plan.crashes = {{.calc = 7, .at_frame = 1}};
  auto h = f.submit(std::move(doomed));
  const auto report = f.run();
  ASSERT_EQ(h.await().state, JobState::kFailed);
  for (const auto& n : report.nodes) {
    EXPECT_EQ(n.peak_ranks, 0);
    EXPECT_EQ(n.busy_rank_s, 0.0);
  }
}

TEST(FarmAccounting, CollidingObsFileNamesGetDistinctFiles) {
  // "a b" and "a_b" sanitize to the same file stem; the second claimant
  // must be suffixed with its seq instead of overwriting the first.
  const std::string dir =
      std::filesystem::path(::testing::TempDir()) / "farm_obs_collide";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  FarmOptions o = preempt_opts(Policy::kFifo, mp::ExecMode::kDefault);
  o.obs_dir = dir;
  Farm f(flat_cluster(2, 4), o);
  auto h1 = f.submit(tiny_job("a b", 1, 4));
  auto h2 = f.submit(tiny_job("a_b", 1, 4));
  f.run();
  ASSERT_EQ(h1.await().state, JobState::kDone);
  ASSERT_EQ(h2.await().state, JobState::kDone);
  EXPECT_TRUE(std::filesystem::exists(dir + "/a_b.trace.json"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/a_b-1.trace.json"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/a_b.analysis.json"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/a_b-1.analysis.json"));
}

TEST(FarmAccounting, QueueDepthSeriesAlwaysTerminatesAtZero) {
  // Terminal drops (cancellations) must be swept before the last sample:
  // the step series ends at depth 0 even when jobs never ran.
  Farm f(flat_cluster(1, 4), preempt_opts(Policy::kFifo,
                                          mp::ExecMode::kDefault));
  auto h1 = f.submit(tiny_job("runs", 2, 4));
  auto far = tiny_job("cancelled", 2, 4);
  far.submit_time_s = 1e9;  // arrives long after "runs" finishes
  auto h2 = f.submit(std::move(far));
  EXPECT_TRUE(h2.cancel());
  const auto report = f.run();
  ASSERT_EQ(h1.await().state, JobState::kDone);
  ASSERT_EQ(h2.await().state, JobState::kCancelled);
  ASSERT_FALSE(report.queue_depth.empty());
  EXPECT_EQ(report.queue_depth.back().second, 0);
  for (std::size_t i = 1; i < report.queue_depth.size(); ++i) {
    EXPECT_LT(report.queue_depth[i - 1].first, report.queue_depth[i].first);
  }
}

}  // namespace
}  // namespace psanim